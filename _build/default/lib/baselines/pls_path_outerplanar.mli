(** The FFM+21-style one-round proof labeling scheme for
    path-outerplanarity (paper §3/§5 discussion): every node receives its
    position on P and the positions of the endpoints of the first edge
    drawn above it — Theta(log n) bits total.  Deterministic verifier,
    perfect completeness, perfect soundness at full width.

    [label_bits] truncates every position field to that many bits (values
    sent modulo 2^label_bits); the Theorem 1.8 experiment finds fooling
    instances once 2^label_bits < n. *)

type instance = { graph : Graph.t; witness : int list }
(** [witness] is the Hamiltonian path the honest prover labels against. *)

type result = { verdict : Dip.verdict; stats : Dip.stats }

val run : ?label_bits:int -> instance -> result
