(** Classical one-round proof labeling scheme for spanning-tree
    verification (Korman–Kutten–Peleg): every node is labelled with its
    exact distance to the root — Theta(log n) bits — and checks that its
    tree parent is one closer and the root is at distance 0.  The
    deterministic O(log n) counterpart of the interactive O(1)-bit
    Lemma 2.5 protocol. *)

type result = { verdict : Dip.verdict; stats : Dip.stats }

val run : Graph.t -> parent:int array -> result
