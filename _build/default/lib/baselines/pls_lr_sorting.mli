(** The trivial one-round proof labeling scheme for LR-sorting (paper §3,
    intro sketch): the prover writes every node's path position —
    Theta(log n) bits — and each node checks its path neighbors are at
    positions +-1 and all its outgoing arcs increase.

    [label_bits] caps the label width: positions are sent modulo
    2^label_bits.  At the full width (ceil log2 n) the scheme is complete
    and sound; the lower-bound experiment (Theorem 1.8) exercises the
    truncated regime. *)

type result = { verdict : Dip.verdict; stats : Dip.stats }

val full_width : int -> int

val run : ?label_bits:int -> Dipp_protocols.Lr_sorting.instance -> result
