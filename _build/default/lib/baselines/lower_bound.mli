(** The Theorem 1.8 lower-bound experiment.

    Theorem 1.8 (extending FFM+21): any one-round DIP for the paper's graph
    families with errors below 1/10 needs Omega(log n) proof bits, even with
    a randomized verifier and shared randomness.  The mechanism is
    pigeonhole aliasing: with o(log n) bits, labels cannot carry positions,
    and position-like information is exactly what one-round verifiers need.

    We make the threshold concrete on both horns, using the truncated
    baselines (positions sent modulo 2^label_bits):

    - Soundness horn, on the paper's key primitive (LR-sorting, §3: "the
      key technical barrier ... is a basic sorting verification task"):
      {!fooling_lr} builds a no-instance — one backward arc spanning just
      over 2^label_bits positions — whose aliased labels satisfy every
      local check of {!Pls_lr_sorting}, so the truncated scheme accepts a
      cyclic instance.  Impossible once 2^label_bits >= n.

    - Completeness horn, for path-outerplanarity: {!long_chord_accepts}
      runs {!Pls_path_outerplanar} honestly on a yes-instance whose longest
      chord spans the whole path; the containment checks need exact
      positions, so acceptance requires 2^label_bits >= n.

    Together: below ceil(log2 n) label bits the one-round scheme is either
    unsound or incomplete; the 5-round protocols of Theorems 1.2-1.7 need
    only O(log log n) bits. *)

val fooling_lr : n:int -> label_bits:int -> Dipp_protocols.Lr_sorting.instance option
(** A no-instance accepted by the truncated {!Pls_lr_sorting}; [None] when
    [2^label_bits + 2 >= n] (no aliasing possible). *)

val fooling_accepted : n:int -> label_bits:int -> bool
(** Whether the constructed fooling instance (if any) is accepted. *)

val long_chord_yes : n:int -> Pls_path_outerplanar.instance
(** Path 0..n-1 with the full-span chord (plus a nested filler), a
    yes-instance whose labels need full-width positions. *)

val long_chord_accepts : n:int -> label_bits:int -> bool

val soundness_threshold : n:int -> int
(** Smallest width at which no fooling LR instance exists/is accepted. *)

val completeness_threshold : n:int -> int
(** Smallest width at which the honest long-chord run is accepted. *)
