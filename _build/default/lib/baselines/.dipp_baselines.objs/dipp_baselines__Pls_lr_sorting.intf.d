lib/baselines/pls_lr_sorting.mli: Dip Dipp_protocols
