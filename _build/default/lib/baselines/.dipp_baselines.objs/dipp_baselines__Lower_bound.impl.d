lib/baselines/lower_bound.ml: Array Dip Dipp_protocols Fun Graph List Pls_lr_sorting Pls_path_outerplanar
