lib/baselines/pls_spanning_tree.mli: Dip Graph
