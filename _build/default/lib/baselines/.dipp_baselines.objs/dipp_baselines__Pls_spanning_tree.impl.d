lib/baselines/pls_spanning_tree.ml: Array Bits Dip Graph
