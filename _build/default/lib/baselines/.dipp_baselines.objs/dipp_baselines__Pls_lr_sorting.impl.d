lib/baselines/pls_lr_sorting.ml: Array Bits Dip Dipp_protocols List
