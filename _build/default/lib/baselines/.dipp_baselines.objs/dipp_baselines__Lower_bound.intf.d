lib/baselines/lower_bound.mli: Dipp_protocols Pls_path_outerplanar
