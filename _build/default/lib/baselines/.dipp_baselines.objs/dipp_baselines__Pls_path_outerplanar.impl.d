lib/baselines/pls_path_outerplanar.ml: Array Bits Dip Graph Int List Option
