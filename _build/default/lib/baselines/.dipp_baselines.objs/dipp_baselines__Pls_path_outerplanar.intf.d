lib/baselines/pls_path_outerplanar.mli: Dip Graph
