let fooling_lr ~n ~label_bits =
  let m = 1 lsl label_bits in
  if 2 * m >= n then None
  else begin
    (* Arc from position 2m back to position 1 claims "before" falsely; the
       truncated labels read 0 < 1 and every node accepts. *)
    let path = Array.init n Fun.id in
    Some { Dipp_protocols.Lr_sorting.n; path; arcs = [ (2 * m, 1) ] }
  end

let fooling_accepted ~n ~label_bits =
  match fooling_lr ~n ~label_bits with
  | None -> false
  | Some inst ->
      assert (not (Dipp_protocols.Lr_sorting.is_yes_instance inst));
      let r = Pls_lr_sorting.run ~label_bits inst in
      r.Pls_lr_sorting.verdict.Dip.accepted

let long_chord_yes ~n =
  if n < 6 then invalid_arg "Lower_bound.long_chord_yes";
  let path_edges = List.init (n - 1) (fun i -> (i, i + 1)) in
  let chords = [ (0, n - 1); (1, n - 2) ] in
  let graph = Graph.create ~n (path_edges @ chords) in
  { Pls_path_outerplanar.graph; witness = List.init n Fun.id }

let long_chord_accepts ~n ~label_bits =
  let inst = long_chord_yes ~n in
  (Pls_path_outerplanar.run ~label_bits inst).Pls_path_outerplanar.verdict.Dip.accepted

let ceil_log2 n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  max 1 (go 1)

let soundness_threshold ~n =
  let rec scan w = if w > ceil_log2 n then w else if fooling_accepted ~n ~label_bits:w then scan (w + 1) else w in
  scan 1

let completeness_threshold ~n =
  let rec scan w =
    if w > ceil_log2 n + 1 then w
    else if long_chord_accepts ~n ~label_bits:w then w
    else scan (w + 1)
  in
  scan 1
