lib/gen/gen.mli: Graph Rotation Series_parallel
