lib/gen/gen.ml: Array Fun Graph List Outerplanar Planarity Rng Rotation Series_parallel Traversal
