(** Plain-text graph exchange.

    Edge-list format: one edge per line as two whitespace-separated node
    ids; blank lines and [#] comments ignored; an optional leading line
    [n <count>] pins the node count (otherwise 1 + max id).  DOT output is
    provided for visual inspection of instances and counterexamples. *)

val parse_edge_list : string -> Graph.t
(** Raises [Invalid_argument] with a line-numbered message on malformed
    input. *)

val to_edge_list : Graph.t -> string

val read_file : string -> Graph.t

val write_file : string -> Graph.t -> unit

val to_dot : ?name:string -> ?highlight:Graph.edge list -> Graph.t -> string
(** Undirected DOT; [highlight] edges are drawn bold red (used for
    counterexample edges, e.g. the Theorem 1.8 fooling arc). *)

val rotation_to_dot : Rotation.t -> string
(** DOT with rotation orders recorded as edge port annotations. *)
