lib/graph/outerplanar.ml: Array Biconnectivity Fun Graph Hashtbl Int List Option Planarity Set Traversal
