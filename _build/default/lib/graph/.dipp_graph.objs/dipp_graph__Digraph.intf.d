lib/graph/digraph.mli: Format Graph
