lib/graph/digraph.ml: Array Format Graph Int List Option Queue Set
