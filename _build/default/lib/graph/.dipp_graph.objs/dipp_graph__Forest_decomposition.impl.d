lib/graph/forest_decomposition.ml: Array Degeneracy Graph List
