lib/graph/forest_decomposition.mli: Graph
