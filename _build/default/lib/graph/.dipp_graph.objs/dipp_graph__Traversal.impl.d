lib/graph/traversal.ml: Array Graph Int List Queue
