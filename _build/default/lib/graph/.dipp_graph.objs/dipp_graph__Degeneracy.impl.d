lib/graph/degeneracy.ml: Array Graph
