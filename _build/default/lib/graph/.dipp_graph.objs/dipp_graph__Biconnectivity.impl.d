lib/graph/biconnectivity.ml: Array Graph Int List Queue Set Stack Traversal
