lib/graph/series_parallel.mli: Graph
