lib/graph/planarity.mli: Graph Rotation
