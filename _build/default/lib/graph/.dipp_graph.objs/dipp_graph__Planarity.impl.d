lib/graph/planarity.ml: Array Biconnectivity Fun Graph Hashtbl Int List Option Queue Rotation Set Traversal
