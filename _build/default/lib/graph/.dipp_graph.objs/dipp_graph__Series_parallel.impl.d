lib/graph/series_parallel.ml: Array Graph Hashtbl Int List Option Queue Set Traversal
