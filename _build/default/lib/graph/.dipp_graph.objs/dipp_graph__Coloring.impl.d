lib/graph/coloring.ml: Array Degeneracy Graph
