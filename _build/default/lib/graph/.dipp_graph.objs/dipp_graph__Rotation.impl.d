lib/graph/rotation.ml: Array Fun Graph Hashtbl Int List Rng Traversal
