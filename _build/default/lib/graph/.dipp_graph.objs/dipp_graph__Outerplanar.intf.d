lib/graph/outerplanar.mli: Graph
