lib/graph/rotation.mli: Graph Rng
