lib/graph/graph_io.ml: Array Buffer Graph List Printf Rotation String
