(** Greedy proper colorings.

    Used by the spanning-forest encoding (Lemma 2.3): the paper 4-colors two
    planar minors of G; we 6-color them greedily along a degeneracy order
    (planar => 5-degenerate => 6 colors), keeping labels O(1) bits. *)

val greedy : Graph.t -> int array
(** A proper coloring with colors [0 .. d] where [d] is the degeneracy.
    Colors nodes in reverse peeling order. *)

val is_proper : Graph.t -> int array -> bool
