(** Partitioning the edge set into few rooted forests.

    Lemma 2.4 needs every edge assigned to a forest so that its "accountable"
    endpoint (the child) carries the edge label in a per-forest field of its
    node label.  We insert nodes in reverse degeneracy order; each new node
    brings at most [d] edges to already-present nodes, and each such edge goes
    into its own forest with the new node as the child — so the new node is a
    leaf of each forest at insertion time and no cycle ever forms.  For
    planar graphs [d <= 5], hence at most 5 forests (the paper's optimal is 3
    via arboricity; the constant does not affect any bound — see DESIGN.md). *)

type t = {
  forests : int;  (** Number of forests used. *)
  parent : int array array;
      (** [parent.(f).(v)] is v's parent in forest [f], or [-1] if v is a
          root of (or isolated in) that forest. *)
}

val compute : Graph.t -> t

val forest_of_edge : t -> int -> int -> (int * int) option
(** [forest_of_edge t u v] is [Some (f, child)] where the edge lives in
    forest [f] with [child] the accountable endpoint, or [None] if [(u,v)]
    is in no forest (i.e. not an edge). *)

val is_valid : Graph.t -> t -> bool
(** Every edge in exactly one forest; every forest acyclic. *)
