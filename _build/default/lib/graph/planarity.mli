(** Planarity testing with embedding extraction.

    The Demoucron–Malgrange–Pertuiset (DMP) vertex/path-addition algorithm:
    grow a planar subgraph face by face, embedding one fragment path per
    step, always preferring fragments with a unique admissible face.  O(n^2)
    — ample for the protocol sizes — and constructive: on success it returns
    a rotation system, which the honest prover of Theorem 1.5 hands to the
    embedded-planarity protocol.

    Blocks are embedded independently and merged at cut vertices (inserting
    one block's rotation into a face corner of the other), and components are
    embedded independently. *)

val is_planar : Graph.t -> bool

val embed : Graph.t -> Rotation.t option
(** [Some rot] with [Rotation.is_planar_embedding rot] iff the graph is
    planar. *)
