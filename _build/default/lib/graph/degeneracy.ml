let ordering g =
  let n = Graph.n g in
  let deg = Array.init n (Graph.degree g) in
  let removed = Array.make n false in
  (* Bucket queue over current degrees. *)
  let max_deg = Array.fold_left max 0 deg in
  let buckets = Array.make (max_deg + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
  let order = Array.make n 0 in
  let degeneracy = ref 0 in
  let cursor = ref 0 in
  for i = 0 to n - 1 do
    (* Find the smallest non-empty bucket holding a live node.  [cursor]
       only needs to back up by one per removal, so total work is linear. *)
    if !cursor > 0 then decr cursor;
    let v = ref (-1) in
    while !v = -1 do
      match buckets.(!cursor) with
      | [] -> incr cursor
      | w :: rest ->
          buckets.(!cursor) <- rest;
          if (not removed.(w)) && deg.(w) = !cursor then v := w
    done;
    let v = !v in
    removed.(v) <- true;
    order.(i) <- v;
    degeneracy := max !degeneracy deg.(v);
    Array.iter
      (fun w ->
        if not removed.(w) then begin
          deg.(w) <- deg.(w) - 1;
          buckets.(deg.(w)) <- w :: buckets.(deg.(w))
        end)
      (Graph.neighbors g v)
  done;
  (order, !degeneracy)

let back_degree_bound g ~order =
  let n = Graph.n g in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let best = ref 0 in
  for v = 0 to n - 1 do
    let c = Array.fold_left (fun acc w -> if pos.(w) < pos.(v) then acc + 1 else acc) 0 (Graph.neighbors g v) in
    best := max !best c
  done;
  !best
