(** Series-parallel graphs, SP-trees, and nested ear decompositions.

    The paper's protocols for Theorems 1.6/1.7 rest on Eppstein's
    characterization (paper Lemma 8.1): a graph is (two-terminal)
    series-parallel iff it admits a nested ear decomposition.  We provide:
    recognition by series/parallel reduction with SP-tree extraction, the
    constructive translation SP-tree -> nested ear decomposition, an exact
    checker for ear decompositions, and the degree-<=-2 elimination test for
    treewidth <= 2 (Lemma 8.2 companion). *)

type sp_tree =
  | Edge of int * int
  | Series of sp_tree * sp_tree  (** right terminal of the first = left terminal of the second *)
  | Parallel of sp_tree * sp_tree  (** same terminal pair *)

val terminals : sp_tree -> int * int

val graph_of_sp : n:int -> sp_tree -> Graph.t
(** The graph described by the tree, on node universe [0..n-1].  Raises if
    the tree repeats an edge (the composition would need a multigraph). *)

val decompose : Graph.t -> sp_tree option
(** SP recognition by exhaustive series/parallel reduction on a multigraph
    shadow; [Some t] iff the graph is two-terminal series-parallel (for some
    terminal pair).  Requires a connected graph. *)

val is_series_parallel : Graph.t -> bool

val is_treewidth_le_2 : Graph.t -> bool
(** Repeated elimination of degree-<=-2 vertices (joining the two neighbors
    when needed) empties the graph iff treewidth <= 2. *)

val ears_of_sp : sp_tree -> int list list
(** A nested ear decomposition: ears in dependency order (each non-first
    ear's endpoints lie on an earlier ear); the first ear is a
    terminal-to-terminal path. *)

val check_nested_ears : Graph.t -> int list list -> bool
(** Exact check of Eppstein's three conditions plus edge-partition. *)
