(** Combinatorial embeddings (rotation systems).

    A rotation system assigns every node a cyclic (clockwise) order of its
    incident edges — exactly the distributed input of the planar-embedding
    task (paper §7).  Face tracing plus Euler's formula decides whether the
    rotation system is a planar embedding: a connected graph with rotation
    system has genus [g] where [n - m + f = 2 - 2g], so the embedding is
    planar iff [n - m + f = 2] (more generally [1 + c] faces-adjusted for
    [c] components). *)

type t = {
  graph : Graph.t;
  rot : int array array;
      (** [rot.(v)] lists v's neighbors in clockwise order; must be a
          permutation of [Graph.neighbors graph v]. *)
}

val create : Graph.t -> int array array -> t
(** Validates that each [rot.(v)] is a permutation of v's neighbors. *)

val default : Graph.t -> t
(** Rotation = sorted neighbor order (an arbitrary, usually non-planar,
    embedding). *)

val next_around : t -> v:int -> after:int -> int
(** The neighbor following [after] in the clockwise order at [v]. *)

val prev_around : t -> v:int -> after:int -> int

val faces : t -> (int * int) list list
(** The face walks: every dart (directed edge) appears in exactly one walk.
    The walk following dart [(u, v)] continues with [(v, w)] where [w] is
    the successor of [u] in the clockwise order at [v] (face tracing to the
    left of each dart). *)

val face_count : t -> int

val euler_genus : t -> int
(** [2 - c - n + m - f + c] rearranged: the Euler genus [2c - (n - m + f)
    + ... ]; 0 iff the embedding is planar (spherical). *)

val is_planar_embedding : t -> bool
(** True iff the rotation system embeds the graph in the plane, i.e. Euler
    genus 0. *)

val dual : t -> Graph.t
(** The dual multigraph collapsed to a simple graph: one node per face, an
    edge between two faces that share a primal edge (self-loops from
    bridges and parallel duals are collapsed).  For a planar embedding of a
    connected graph the dual is connected and itself planar. *)

val corrupt_swap : t -> Rng.t -> t option
(** Swap two entries in the rotation of a random node of degree >= 3 whose
    swap changes the face structure — used to build no-instances for the
    embedded-planarity experiments.  [None] if no eligible node exists or
    the perturbation stayed planar. *)
