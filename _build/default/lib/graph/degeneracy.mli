(** Degeneracy orderings.

    Planar graphs are 5-degenerate; this drives both the greedy coloring
    used by the spanning-forest encoding (Lemma 2.3, see DESIGN.md
    substitution 1) and the bounded-arboricity forest partition behind the
    edge-label simulation (Lemma 2.4, substitution 2). *)

val ordering : Graph.t -> int array * int
(** [(order, d)]: a peeling order (repeatedly remove a minimum-degree node)
    as an array of node ids, and the degeneracy [d] — every node has at most
    [d] neighbors later in the order. *)

val back_degree_bound : Graph.t -> order:int array -> int
(** Max number of neighbors a node has among nodes *earlier* in [order]
    (i.e. when inserting nodes in order, the edges each new node brings). *)
