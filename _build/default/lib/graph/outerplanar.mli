(** Outerplanar and path-outerplanar graphs: recognition and witnesses.

    A graph is outerplanar iff adding a universal vertex keeps it planar.
    Biconnected outerplanar graphs have a unique Hamiltonian cycle; a graph
    is path-outerplanar (paper §2) iff it has a Hamiltonian path with all
    non-path edges properly nested above it.  These functions provide the
    honest prover's witnesses (Theorems 1.2, 1.3). *)

val is_outerplanar : Graph.t -> bool

val hamiltonian_cycle : Graph.t -> int list option
(** For a biconnected outerplanar graph with >= 3 nodes: its unique
    Hamiltonian cycle (degree-2 ear peeling).  [None] if the graph is not
    biconnected outerplanar. *)

val check_path_witness : Graph.t -> int list -> bool
(** [check_path_witness g p]: is [p] a Hamiltonian path of [g] whose
    non-path edges are properly nested (no [u < u' < v < v'] crossing)?
    Exact, O(m log m) stack test. *)

val path_witness : Graph.t -> int list option
(** A nesting Hamiltonian path if the graph is path-outerplanar and of
    recognizable shape: biconnected graphs (cycle minus an edge) and
    block-chains (blocks traversed in order, middle blocks entered/exited at
    cycle-adjacent cut vertices).  The result always passes
    {!check_path_witness}; [None] means no witness was found. *)

val is_path_outerplanar : Graph.t -> bool
(** [path_witness] + exact check (complete on the families produced by the
    generators; see DESIGN.md). *)

val triangulate : Graph.t -> Graph.t option
(** Maximal-outerplanar completion of a biconnected outerplanar graph: fan
    chords are added inside every interior face until every inner face is a
    triangle (m = 2n - 3).  [None] if the input is not biconnected
    outerplanar with at least 3 nodes. *)
