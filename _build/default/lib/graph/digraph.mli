(** Directed simple graphs on nodes [0 .. n-1].

    The LR-sorting task (paper §2) takes a directed graph whose yes-instances
    are exactly the DAGs whose unique topological order is the given
    Hamiltonian path.  A directed edge [(u, v)] is the claim "u precedes v". *)

type t

val create : n:int -> (int * int) list -> t
(** Duplicate arcs collapsed; self-loops rejected. *)

val n : t -> int
val m : t -> int
val out_neighbors : t -> int -> int array
val in_neighbors : t -> int -> int array
val mem_arc : t -> int -> int -> bool
val arcs : t -> (int * int) list
val fold_arcs : (int * int -> 'a -> 'a) -> t -> 'a -> 'a

val underlying : t -> Graph.t
(** Forgets orientation (parallel opposite arcs collapse to one edge). *)

val orient : Graph.t -> order:int array -> t
(** [orient g ~order] directs every edge of [g] from the endpoint with the
    smaller [order] value toward the larger; [order] must be injective. *)

val is_acyclic : t -> bool

val topological_sort : t -> int list option
(** A topological order of the nodes, or [None] when the digraph has a
    cycle (i.e. exactly on LR-sorting no-instances). *)

val pp : Format.formatter -> t -> unit
