type t = { forests : int; parent : int array array }

let compute g =
  let n = Graph.n g in
  let order, d = Degeneracy.ordering g in
  let k = max d 1 in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  let parent = Array.init k (fun _ -> Array.make n (-1)) in
  (* Insert in reverse peeling order; node [v]'s neighbors already present
     are those with larger peeling position. Assign v's i-th such edge to
     forest i, with v as the child. *)
  for i = n - 1 downto 0 do
    let v = order.(i) in
    let f = ref 0 in
    Array.iter
      (fun w ->
        if pos.(w) > pos.(v) then begin
          parent.(!f).(v) <- w;
          incr f
        end)
      (Graph.neighbors g v)
  done;
  { forests = k; parent }

let forest_of_edge t u v =
  let rec go f =
    if f >= t.forests then None
    else if t.parent.(f).(u) = v then Some (f, u)
    else if t.parent.(f).(v) = u then Some (f, v)
    else go (f + 1)
  in
  go 0

let is_valid g t =
  let n = Graph.n g in
  (* Each edge in exactly one forest. *)
  let covered =
    Graph.fold_edges
      (fun (u, v) ok ->
        ok
        &&
        let count = ref 0 in
        for f = 0 to t.forests - 1 do
          if t.parent.(f).(u) = v then incr count;
          if t.parent.(f).(v) = u then incr count
        done;
        !count = 1)
      g true
  in
  (* No parent edge outside the graph, and each forest acyclic: following
     parents must terminate.  Parents are "later in insertion", so acyclicity
     holds structurally; we verify it anyway. *)
  let acyclic = ref true in
  for f = 0 to t.forests - 1 do
    let state = Array.make n 0 in
    (* 0 unvisited, 1 in progress, 2 done *)
    for v = 0 to n - 1 do
      if state.(v) = 0 then begin
        let rec climb u trail =
          if state.(u) = 1 then acyclic := false
          else if state.(u) = 0 then begin
            state.(u) <- 1;
            let p = t.parent.(f).(u) in
            if p >= 0 then begin
              if not (Graph.mem_edge g u p) then acyclic := false;
              climb p (u :: trail)
            end
            else List.iter (fun w -> state.(w) <- 2) (u :: trail)
          end
          else List.iter (fun w -> state.(w) <- 2) trail
        in
        climb v []
      end
    done
  done;
  covered && !acyclic
