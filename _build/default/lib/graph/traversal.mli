(** Graph traversals and connectivity. *)

val bfs : Graph.t -> int -> int array
(** [bfs g src] is the array of hop distances from [src]; unreachable nodes
    get [-1]. *)

val components : Graph.t -> int array * int
(** [(comp, k)]: component id per node in [0..k-1]. *)

val is_connected : Graph.t -> bool
(** Vacuously true for the empty graph. *)

val spanning_tree : Graph.t -> int -> int array
(** [spanning_tree g root] is a BFS-tree parent array; [parent.(root) =
    root]; unreachable nodes get [-1]. *)

val dfs_order : Graph.t -> int -> int list
(** Preorder of the DFS from the given root, visiting neighbors in
    ascending id order; only reachable nodes appear. *)

val hamiltonian_path_of_edges : n:int -> Graph.edge list -> int list option
(** If the given edge set forms a Hamiltonian path on [0..n-1], returns the
    node sequence from one designated endpoint (the smaller-id endpoint
    first); otherwise [None].  Used to validate path witnesses. *)
