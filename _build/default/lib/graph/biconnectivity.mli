(** Cut vertices, biconnected components, and the block–cut tree.

    The outerplanarity protocol (paper §6) and the treewidth-2 protocol
    (§8) decompose the graph into biconnected components, root the block–cut
    tree at a component, and run per-component sub-protocols. *)

type t = {
  components : int list array;
      (** Per component: its node list (a node appears in every component it
          belongs to; cut vertices appear in several). *)
  component_edges : Graph.edge list array;
      (** Per component: its edge list.  Every edge is in exactly one. *)
  cut_vertex : bool array;  (** [cut_vertex.(v)] iff removing [v] disconnects. *)
}

val compute : Graph.t -> t
(** Requires a connected graph with at least one node. *)

val is_biconnected : Graph.t -> bool
(** Connected, and no cut vertex.  Graphs with fewer than 3 nodes follow the
    usual convention: a single edge or single node counts as biconnected. *)

(** Rooted block–cut tree.  Tree nodes are either blocks (components) or cut
    vertices; we expose just what the protocols need: per block, its
    distance-to-root (mod nothing — exact) and its separating vertex. *)
type rooted = {
  bc : t;
  root_block : int;
  block_depth : int array;  (** In blocks: #blocks on the path to the root block, root = 0. *)
  separating : int array;
      (** [separating.(b)] is the cut vertex connecting block [b] toward the
          root ([-1] for the root block). *)
  parent_block : int array;  (** Block containing [separating.(b)] one level up; [-1] for root. *)
}

val root : t -> root_block:int -> rooted

val chain_decomposition : Graph.t -> int list list option
(** Schmidt's chain decomposition of a connected graph: DFS tree plus one
    chain per back edge (walk from the upper endpoint down tree edges until
    an already-visited vertex).  Returns the chains in discovery order —
    when the graph is biconnected this is an open ear decomposition: the
    first chain is a cycle and every other chain is a path with distinct
    endpoints on earlier chains.  [None] for trees (no back edges). *)

val is_biconnected_chains : Graph.t -> bool
(** Schmidt's criterion: connected, some chain exists, every edge lies in a
    chain, and the first chain is the only cycle.  Agrees with
    {!is_biconnected} (cross-checked in the tests) for n >= 3. *)
