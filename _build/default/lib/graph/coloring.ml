let greedy g =
  let n = Graph.n g in
  let order, d = Degeneracy.ordering g in
  let color = Array.make n (-1) in
  let used = Array.make (d + 2) false in
  (* Reverse peeling order: each node sees at most [d] colored neighbors. *)
  for i = n - 1 downto 0 do
    let v = order.(i) in
    Array.iter (fun w -> if color.(w) >= 0 && color.(w) <= d + 1 then used.(color.(w)) <- true) (Graph.neighbors g v);
    let c = ref 0 in
    while used.(!c) do incr c done;
    color.(v) <- !c;
    Array.iter (fun w -> if color.(w) >= 0 && color.(w) <= d + 1 then used.(color.(w)) <- false) (Graph.neighbors g v)
  done;
  color

let is_proper g color =
  Graph.fold_edges (fun (u, v) ok -> ok && color.(u) <> color.(v)) g true
