type t = { graph : Graph.t; rot : int array array }

let create graph rot =
  let n = Graph.n graph in
  if Array.length rot <> n then invalid_arg "Rotation.create: length";
  for v = 0 to n - 1 do
    let expected = Array.copy (Graph.neighbors graph v) in
    let got = Array.copy rot.(v) in
    Array.sort Int.compare got;
    Array.sort Int.compare expected;
    if got <> expected then invalid_arg "Rotation.create: rot.(v) not a permutation of neighbors"
  done;
  { graph; rot }

let default graph = { graph; rot = Array.init (Graph.n graph) (fun v -> Array.copy (Graph.neighbors graph v)) }

let index_of a x =
  let rec go i = if a.(i) = x then i else go (i + 1) in
  go 0

let next_around t ~v ~after =
  let r = t.rot.(v) in
  let k = Array.length r in
  r.((index_of r after + 1) mod k)

let prev_around t ~v ~after =
  let r = t.rot.(v) in
  let k = Array.length r in
  r.((index_of r after + k - 1) mod k)

let faces t =
  let n = Graph.n t.graph in
  (* Dart id: position of the dart (u -> v) as index j into rot.(u). *)
  let offset = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    offset.(v + 1) <- offset.(v) + Array.length t.rot.(v)
  done;
  let dart_id u j = offset.(u) + j in
  let visited = Array.make offset.(n) false in
  let out = ref [] in
  for u = 0 to n - 1 do
    Array.iteri
      (fun j _ ->
        if not (visited.(dart_id u j)) then begin
          let walk = ref [] in
          let cu = ref u and cj = ref j in
          let continue = ref true in
          while !continue do
            visited.(dart_id !cu !cj) <- true;
            let v = t.rot.(!cu).(!cj) in
            walk := (!cu, v) :: !walk;
            (* next dart: at v, the successor of [cu] in rotation *)
            let r = t.rot.(v) in
            let k = Array.length r in
            let i = index_of r !cu in
            let nj = (i + 1) mod k in
            cu := v;
            cj := nj;
            if visited.(dart_id !cu !cj) then continue := false
          done;
          out := List.rev !walk :: !out
        end)
      t.rot.(u)
  done;
  List.rev !out

let face_count t = List.length (faces t)

let euler_genus t =
  let n = Graph.n t.graph and m = Graph.m t.graph in
  let f = face_count t in
  let _, c = Traversal.components t.graph in
  (* Euler: n - m + f = 2c - eg  (eg = Euler genus summed over components). *)
  (2 * c) - (n - m + f)

let is_planar_embedding t = euler_genus t = 0

let dual t =
  let fs = faces t in
  let k = List.length fs in
  (* face id per dart *)
  let face_of = Hashtbl.create 16 in
  List.iteri (fun i f -> List.iter (fun d -> Hashtbl.replace face_of d i) f) fs;
  let edges =
    Graph.fold_edges
      (fun (u, v) acc ->
        let f1 = Hashtbl.find face_of (u, v) and f2 = Hashtbl.find face_of (v, u) in
        if f1 <> f2 then (f1, f2) :: acc else acc)
      t.graph []
  in
  Graph.create ~n:k edges

let corrupt_swap t rng =
  let n = Graph.n t.graph in
  let candidates = List.filter (fun v -> Array.length t.rot.(v) >= 3) (List.init n Fun.id) in
  match candidates with
  | [] -> None
  | _ ->
      let arr = Array.of_list candidates in
      let rec attempt tries =
        if tries = 0 then None
        else begin
          let v = arr.(Rng.int rng (Array.length arr)) in
          let r = Array.copy t.rot.(v) in
          let k = Array.length r in
          let i = Rng.int rng k in
          let j = (i + 1 + Rng.int rng (k - 1)) mod k in
          let tmp = r.(i) in
          r.(i) <- r.(j);
          r.(j) <- tmp;
          let rot = Array.copy t.rot in
          rot.(v) <- r;
          let t' = { t with rot } in
          if is_planar_embedding t' then attempt (tries - 1) else Some t'
        end
      in
      attempt 64
