let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 2)) in
    go 3

let next_prime x =
  if x < 0 then invalid_arg "Prime.next_prime";
  let rec go n = if is_prime n then n else go (n + 1) in
  go (x + 1)
