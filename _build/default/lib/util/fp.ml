type t = { p : int }

let create p =
  if not (Prime.is_prime p) then invalid_arg "Fp.create: not prime";
  if p > (1 lsl 31) - 1 then invalid_arg "Fp.create: modulus too large";
  { p }

let of_int t x =
  let r = x mod t.p in
  if r < 0 then r + t.p else r

let add t a b = (a + b) mod t.p
let sub t a b = of_int t (a - b)
let mul t a b = a * b mod t.p

let pow t b e =
  if e < 0 then invalid_arg "Fp.pow";
  let rec go b e acc =
    if e = 0 then acc
    else go (mul t b b) (e lsr 1) (if e land 1 = 1 then mul t acc b else acc)
  in
  go (of_int t b) e 1

let inv t a =
  let a = of_int t a in
  if a = 0 then invalid_arg "Fp.inv: zero";
  pow t a (t.p - 2)

let sample t rng = Rng.int rng t.p

let bit_width t =
  let rec go w = if 1 lsl w >= t.p then w else go (w + 1) in
  go 1
