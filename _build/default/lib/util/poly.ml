let eval f s x =
  List.fold_left (fun acc e -> Fp.mul f acc (Fp.sub f e x)) 1 s

let eval_prefixes f groups x =
  let out = Array.make (List.length groups) 1 in
  let acc = ref 1 in
  List.iteri
    (fun i group ->
      acc := Fp.mul f !acc (eval f group x);
      out.(i) <- !acc)
    groups;
  out

let collision_bound ~size ~p = float_of_int size /. float_of_int p
