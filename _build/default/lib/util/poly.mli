(** Multiset characteristic polynomials over F_p.

    For a multiset [S] of field elements, [phi_S(x) = prod_{s in S} (s - x)].
    Two multisets of size <= k over a universe of size k^c are equal iff
    their polynomials agree, and unequal polynomials collide at a random
    point of F_p with probability <= k/p (polynomial identity testing,
    paper Lemma 2.6). *)

val eval : Fp.t -> int list -> int -> int
(** [eval f s x] is [phi_S(x)] over [f]. *)

val eval_prefixes : Fp.t -> int list list -> int -> int array
(** [eval_prefixes f groups x] returns the running products of
    [phi(x)] where group [i]'s elements are folded in at position [i]:
    [out.(i) = phi_{union of groups 0..i}(x)].  This is the "aggregate up
    the path" shape used by the in-block multiset-equality executions. *)

val collision_bound : size:int -> p:int -> float
(** Upper bound [size/p] on the false-acceptance probability for multisets
    of the given size. *)
