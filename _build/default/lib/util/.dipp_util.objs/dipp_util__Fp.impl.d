lib/util/fp.ml: Prime Rng
