lib/util/poly.ml: Array Fp List
