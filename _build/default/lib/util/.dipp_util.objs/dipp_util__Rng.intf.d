lib/util/rng.mli:
