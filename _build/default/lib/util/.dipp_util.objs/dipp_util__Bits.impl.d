lib/util/bits.ml: Bytes Char Format Int List Rng String
