lib/util/prime.ml:
