lib/util/fp.mli: Rng
