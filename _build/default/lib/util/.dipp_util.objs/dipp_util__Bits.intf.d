lib/util/bits.mli: Format Rng
