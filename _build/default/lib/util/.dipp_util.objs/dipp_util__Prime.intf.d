lib/util/prime.mli:
