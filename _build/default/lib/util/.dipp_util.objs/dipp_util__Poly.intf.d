lib/util/poly.mli: Fp
