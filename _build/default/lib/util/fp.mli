(** Arithmetic in the prime field F_p.

    Elements are represented as ints in [\[0, p)].  All field sizes used by
    the protocols are polylogarithmic in n, far below 2^31, so products fit
    in a native int. *)

type t = { p : int }
(** The field, determined by its prime modulus. *)

val create : int -> t
(** [create p] requires [p] prime and [p*p] representable in an int. *)

val of_int : t -> int -> int
(** Canonical representative (handles negatives). *)

val add : t -> int -> int -> int
val sub : t -> int -> int -> int
val mul : t -> int -> int -> int
val pow : t -> int -> int -> int
val inv : t -> int -> int
val sample : t -> Rng.t -> int
(** Uniform field element. *)

val bit_width : t -> int
(** Bits needed to encode a field element, i.e. [ceil(log2 p)]. *)
