(** Prime search for field sizes.

    The protocols pick the smallest prime above a polylog bound (paper §2,
    multiset equality; §4, block comparisons).  Bounds are small (polylog n),
    so trial division is ample. *)

val is_prime : int -> bool

val next_prime : int -> int
(** [next_prime x] is the smallest prime strictly greater than [x].
    Requires [x >= 0]. *)
