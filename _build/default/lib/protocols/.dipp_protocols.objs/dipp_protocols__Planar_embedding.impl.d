lib/protocols/planar_embedding.ml: Array Dip Forest_encoding Fp Fun Graph Hashtbl Int List Lr_sorting Path_outerplanarity Rng Rotation Spanning_tree_verify Traversal
