lib/protocols/lr_sorting.mli: Bits Dip Fp Graph
