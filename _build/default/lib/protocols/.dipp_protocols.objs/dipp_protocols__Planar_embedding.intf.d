lib/protocols/planar_embedding.mli: Dip Graph Path_outerplanarity Rotation
