lib/protocols/treewidth2_dip.ml: Array Biconnectivity Bits Dip Forest_encoding Fp Fun Graph List Lr_sorting Option Rng Series_parallel Series_parallel_dip Spanning_tree_verify Traversal
