lib/protocols/outerplanarity.mli: Dip Graph Path_outerplanarity
