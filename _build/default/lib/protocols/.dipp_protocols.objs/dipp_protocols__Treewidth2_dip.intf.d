lib/protocols/treewidth2_dip.mli: Dip Graph Series_parallel_dip
