lib/protocols/lr_sorting.ml: Array Bits Dip Fp Fun Graph Hashtbl Int List Map Option Prime Rng
