lib/protocols/planarity.ml: Array Bits Dip Dipp_graph Edge_labels Graph Planar_embedding Rotation Traversal
