lib/protocols/outerplanarity.ml: Array Biconnectivity Bits Dip Forest_encoding Fp Fun Graph List Lr_sorting Option Outerplanar Path_outerplanarity Rng Spanning_tree_verify Traversal
