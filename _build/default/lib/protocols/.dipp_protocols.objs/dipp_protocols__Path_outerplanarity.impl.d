lib/protocols/path_outerplanarity.ml: Array Bits Dip Edge_labels Forest_encoding Fp Fun Graph Hashtbl Int List Lr_sorting Map Option Outerplanar Rng Spanning_tree_verify String Traversal
