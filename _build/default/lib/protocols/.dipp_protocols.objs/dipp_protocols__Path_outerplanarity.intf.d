lib/protocols/path_outerplanarity.mli: Dip Graph Lr_sorting
