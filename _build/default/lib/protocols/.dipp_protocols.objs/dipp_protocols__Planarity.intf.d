lib/protocols/planarity.mli: Dip Graph Planar_embedding
