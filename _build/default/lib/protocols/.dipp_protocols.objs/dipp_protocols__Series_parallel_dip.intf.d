lib/protocols/series_parallel_dip.mli: Dip Graph Path_outerplanarity
