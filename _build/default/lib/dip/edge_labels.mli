(** Edge-label simulation on planar graphs (paper Lemma 2.4).

    Protocols below are described with the prover writing labels on *edges*
    (both endpoints can read them).  On a planar graph the edge set is
    partitioned into O(1) rooted forests; the label of edge (child, parent)
    in forest [f] is carried in field [f] of the child's node label, and the
    parent recognizes the field as theirs via the forest encoding
    (Lemma 2.3).  Total overhead: O(1) fields, i.e. O(l) node-label bits for
    l-bit edge labels.

    Substitution (DESIGN.md #2): degeneracy insertion gives <= 5 forests on
    planar graphs instead of the optimal 3 — the constant is irrelevant to
    every stated bound. *)

type t

val create : Graph.t -> t
(** Computes the forest partition and the per-forest encodings. *)

val forests : t -> int

val setup_labels : t -> Bits.t array
(** The round-1 constant-size part: concatenated forest-encoding labels for
    all forests (what lets endpoints locate each edge's field). *)

val setup_width : t -> int

val carrier : t -> int -> int
(** [carrier t (f)] — internal; exposed for tests. *)

val assign : t -> width:int -> (Graph.edge -> Bits.t) -> Bits.t array
(** Simulates one prover phase of edge labels: [assign t ~width f] packs
    [f e] (which must have exactly [width] bits) for every edge into node
    labels — node v's label is the concatenation over forests of the label
    of its parent edge (zeros when v is a root in that forest). *)

val read_edge : t -> width:int -> labels:Bits.t array -> Graph.edge -> Bits.t
(** What both endpoints of the edge decode from the assignment.  Reading
    uses only the two endpoints' node labels plus the (verified) forest
    structure, mirroring the lemma's locality. *)

val child_of_edge : t -> Graph.edge -> int
(** The accountable endpoint (whose label carries the edge field). *)
