type 'a t = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  runs : 'a list;
  accepting_runs : int;
}

let run ~reps ~seed ~run ~verdict ~stats =
  if reps < 1 then invalid_arg "Amplify.run";
  let runs = List.init reps (fun i -> run ~seed:(seed + (i * 7919) + 1)) in
  let verdicts = List.map verdict runs in
  let accepting_runs = List.length (List.filter (fun v -> v.Dip.accepted) verdicts) in
  let combined_verdict =
    {
      Dip.accepted = accepting_runs = reps;
      rejecting =
        List.sort_uniq Int.compare (List.concat_map (fun v -> v.Dip.rejecting) verdicts);
    }
  in
  let combined_stats = Dip.merge_parallel (List.map stats runs) in
  { verdict = combined_verdict; stats = combined_stats; runs; accepting_runs }

let soundness_error ~single ~reps = single ** float_of_int reps
