(** Constant-size distributed encoding of a rooted spanning forest
    (paper Lemma 2.3).

    The prover contracts every odd-depth node into its parent (graph
    [G_odd]) and every even-depth node into its parent ([G_even]); both are
    minors of a planar graph, hence planar, and get proper colorings.  A
    node's label is its two contraction colors plus its depth parity (we add
    an explicit root bit); each node then recognizes its parent and children
    purely from its own and its neighbors' labels.

    Substitution (DESIGN.md #1): instead of the Four-Color theorem we color
    greedily along a degeneracy order, giving <= 6 colors on planar inputs —
    labels stay O(1) bits. *)

type label = { c1 : int; c2 : int; parity : bool; root : bool }

val encode : Graph.t -> parent:int array -> label array
(** [parent.(v) = -1] marks v a root.  Requires [parent] edges to be graph
    edges and the parent structure to be acyclic (honest prover input). *)

val color_bits : label array -> int
(** Bits needed per color field to serialize this assignment. *)

val width : cbits:int -> int
(** Serialized size of one label given the color field width. *)

val to_bits : cbits:int -> label -> Bits.t
val read : cbits:int -> Bits.Reader.t -> label

(** Local decoding — each function sees only the node's own label and its
    neighbors' labels, as in the model. *)

val parent_candidates : own:label -> nbrs:(int * label) list -> int list
val children_of : own:label -> nbrs:(int * label) list -> int list

val locally_wellformed : own:label -> nbrs:(int * label) list -> bool
(** Root has no parent candidate; a non-root has exactly one. *)

val decode_forest : Graph.t -> label array -> int array option
(** Whole-graph decode (used by tests and by higher protocols after the
    per-node checks passed): parent array with [-1] at roots, or [None] if
    some node is not locally well-formed. *)
