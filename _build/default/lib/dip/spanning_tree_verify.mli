(** Interactive spanning-tree verification (paper Lemma 2.5).

    The paper uses, as a black box, the 3-round constant-proof-size protocol
    of Naor–Parter–Yogev (SODA 2020, §7.1): given a subgraph T (here: parent
    pointers decoded from a Lemma 2.3 forest encoding), decide whether T is
    a spanning tree of the connected communication graph G.  Perfect
    completeness, constant soundness error, amplified by parallel
    repetition.

    The NPY protocol's internals are not reproduced in the paper; this is a
    reconstruction with the same interface and bounds (DESIGN.md #3):

    - Round 1 (prover): the forest encoding itself (recorded by the caller).
    - Round 2 (verifier): per repetition, every node draws [x_v] in F_q and
      every *claimed root* draws a tag of [tag_bits] bits.
    - Round 3 (prover): per repetition, every node gets [s_v] (claimed sum
      of x over its T-subtree, mod q) and [tau_v] (its component root's tag).

    Local checks: (a) s_v = x_v + sum of children's s (a parent-pointer
    cycle forces "sum of x over the cycle component = 0 mod q", caught with
    probability 1 - 1/q); (b) tau equals the parent's tau, roots check their
    own tag; (c) tau_u = tau_v across *every* G-edge (G is connected, so two
    tree components leave a crossing edge whose sides hold independently
    drawn root tags, caught with probability 1 - 2^-tag_bits); (d) the node
    marked root is unique in its component by (b)+(c).

    Per repetition the prover sends q-width + tag_bits bits; [reps]
    repetitions drive the soundness error below (max(1/q, 2^-tag_bits))^reps
    for claims that are wrong in the same way each time; the protocol is
    run with reps = Theta(log log n) by the callers. *)

type coins = { xs : int array array; tags : Bits.t option array array }
(** [xs.(rep).(v)]; [tags.(rep).(v)] is Some for claimed roots. *)

type response = { sums : int array array; taus : Bits.t array array }

val q : int
(** Field size for the sum check (16 => 4 bits). *)

val q_bits : int

val draw_coins : reps:int -> tag_bits:int -> parent:int array -> Rng.t -> coins
(** What the verifier sends in round 2 (public). *)

val honest_response : reps:int -> parent:int array -> coins -> response
(** The honest prover's round-3 labels, computed from the true tree. *)

val coins_to_bits : tag_bits:int -> coins -> Bits.t array
val response_to_bits : tag_bits:int -> response -> Bits.t array
(** Serializations for metering. *)

val verify_node :
  reps:int ->
  parent:int array ->
  children:int list array ->
  graph:Graph.t ->
  coins:coins ->
  response:response ->
  int ->
  bool
(** The local decision at one node: it reads only its own coins, its own and
    its neighbors' response entries, and the (already locally-decoded)
    parent/children pointers. *)

val run :
  ?seed:int ->
  ?reps:int ->
  ?tag_bits:int ->
  Graph.t ->
  parent:int array ->
  Dip.verdict * Dip.stats
(** Standalone execution (rounds 2-3 plus the given structure), used by the
    unit tests and benchmarks for this sub-protocol. *)
