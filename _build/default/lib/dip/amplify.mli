(** Generic parallel repetition.

    The paper repeatedly invokes "standard parallel repetition" to drive a
    constant soundness error down to 2^-l (e.g. after Lemma 2.5).  This
    wrapper runs [reps] independent copies of a protocol (distinct seeds),
    accepts iff all copies accept, and accounts the labels of all copies
    into one stats record (parallel copies concatenate per phase, so proof
    sizes add and rounds stay put). *)

type 'a t = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  runs : 'a list;
  accepting_runs : int;
}

val run :
  reps:int ->
  seed:int ->
  run:(seed:int -> 'a) ->
  verdict:('a -> Dip.verdict) ->
  stats:('a -> Dip.stats) ->
  'a t

val soundness_error : single:float -> reps:int -> float
(** [single^reps] — the predicted residual error. *)
