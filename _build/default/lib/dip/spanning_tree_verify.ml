type coins = { xs : int array array; tags : Bits.t option array array }
type response = { sums : int array array; taus : Bits.t array array }

let q = 16
let q_bits = 4

let children_of_parent parent =
  let n = Array.length parent in
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  children

let draw_coins ~reps ~tag_bits ~parent rng =
  let n = Array.length parent in
  let xs = Array.init reps (fun rep -> Array.init n (fun v -> Rng.int (Rng.split rng ((rep * n) + v)) q)) in
  let tags =
    Array.init reps (fun rep ->
        Array.init n (fun v ->
            if parent.(v) < 0 then Some (Bits.random (Rng.split rng (((reps + rep) * n) + v)) tag_bits)
            else None))
  in
  { xs; tags }

(* The prover's response must tolerate *cheating* parent claims (pointer
   cycles): on a cycle the local equations are unsatisfiable — exactly what
   the verifier exploits — so the prover fixes an arbitrary value at one
   cycle node and propagates; the wrap-around constraint then fails unless
   the random x's happen to cancel. *)
let honest_response ~reps ~parent coins =
  let n = Array.length parent in
  let children = children_of_parent parent in
  let sums = Array.init reps (fun _ -> Array.make n (-1)) in
  let taus = Array.init reps (fun _ -> Array.make n Bits.empty) in
  let tag_bits =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a t -> match t with Some b -> max a (Bits.length b) | None -> a) acc row)
      1 coins.tags
  in
  for rep = 0 to reps - 1 do
    let state = Array.make n 0 in
    (* 0 = fresh, 1 = in progress, 2 = done *)
    let rec sum v =
      if sums.(rep).(v) >= 0 then sums.(rep).(v)
      else if state.(v) = 1 then 0 (* cycle: best-effort placeholder *)
      else begin
        state.(v) <- 1;
        let s = List.fold_left (fun acc c -> (acc + sum c) mod q) coins.xs.(rep).(v) children.(v) in
        state.(v) <- 2;
        sums.(rep).(v) <- s;
        s
      end
    in
    for v = 0 to n - 1 do ignore (sum v) done;
    let tstate = Array.make n 0 in
    let rec tau v =
      if Bits.length taus.(rep).(v) > 0 then taus.(rep).(v)
      else if tstate.(v) = 1 then Bits.of_string (String.make tag_bits '0') (* parent cycle *)
      else begin
        tstate.(v) <- 1;
        let t =
          if parent.(v) < 0 then match coins.tags.(rep).(v) with Some t -> t | None -> Bits.of_string (String.make tag_bits '0')
          else tau parent.(v)
        in
        tstate.(v) <- 2;
        taus.(rep).(v) <- t;
        t
      end
    in
    for v = 0 to n - 1 do ignore (tau v) done
  done;
  { sums; taus }

let coins_to_bits ~tag_bits:_ coins =
  let reps = Array.length coins.xs in
  let n = Array.length coins.xs.(0) in
  Array.init n (fun v ->
      Bits.concat
        (List.concat
           (List.init reps (fun rep ->
                Bits.of_int ~width:q_bits coins.xs.(rep).(v)
                :: (match coins.tags.(rep).(v) with Some t -> [ t ] | None -> [])))))

let response_to_bits ~tag_bits:_ resp =
  let reps = Array.length resp.sums in
  let n = Array.length resp.sums.(0) in
  Array.init n (fun v ->
      Bits.concat
        (List.concat
           (List.init reps (fun rep -> [ Bits.of_int ~width:q_bits resp.sums.(rep).(v); resp.taus.(rep).(v) ]))))

let verify_node ~reps ~parent ~children ~graph ~coins ~response v =
  let ok = ref true in
  for rep = 0 to reps - 1 do
    (* sum check *)
    let expect =
      List.fold_left (fun acc c -> (acc + response.sums.(rep).(c)) mod q) coins.xs.(rep).(v) children.(v)
    in
    if response.sums.(rep).(v) <> expect then ok := false;
    (* tag checks *)
    let tau = response.taus.(rep).(v) in
    (if parent.(v) < 0 then
       match coins.tags.(rep).(v) with
       | Some t -> if not (Bits.equal tau t) then ok := false
       | None -> ok := false
     else if not (Bits.equal tau response.taus.(rep).(parent.(v))) then ok := false);
    Array.iter (fun u -> if not (Bits.equal tau response.taus.(rep).(u)) then ok := false) (Graph.neighbors graph v)
  done;
  !ok

let run ?(seed = 0) ?(reps = 8) ?(tag_bits = 4) g ~parent =
  let n = Graph.n g in
  let meter = Dip.meter () in
  (* Round 1: the structure encoding (charged to the caller normally; we
     charge it here for standalone runs). *)
  let enc = Forest_encoding.encode g ~parent in
  let cbits = Forest_encoding.color_bits enc in
  Dip.record_prover meter (Array.map (Forest_encoding.to_bits ~cbits) enc);
  let rng = Rng.create seed in
  let coins = draw_coins ~reps ~tag_bits ~parent rng in
  Dip.record_verifier meter (coins_to_bits ~tag_bits coins);
  let response = honest_response ~reps ~parent coins in
  Dip.record_prover meter (response_to_bits ~tag_bits response);
  let children = children_of_parent parent in
  let verdict =
    Dip.all_accept ~n (fun v -> verify_node ~reps ~parent ~children ~graph:g ~coins ~response v)
  in
  (verdict, Dip.stats meter)
