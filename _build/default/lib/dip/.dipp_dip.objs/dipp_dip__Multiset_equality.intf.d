lib/dip/multiset_equality.mli: Bits Dip Fp Graph Rng
