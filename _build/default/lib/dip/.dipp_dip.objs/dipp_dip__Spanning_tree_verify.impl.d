lib/dip/spanning_tree_verify.ml: Array Bits Dip Forest_encoding Graph List Rng String
