lib/dip/spanning_tree_verify.mli: Bits Dip Graph Rng
