lib/dip/edge_labels.mli: Bits Graph
