lib/dip/dip.mli: Bits Format
