lib/dip/amplify.ml: Dip Int List
