lib/dip/multiset_equality.ml: Array Bits Dip Fp Graph List Poly Prime Rng
