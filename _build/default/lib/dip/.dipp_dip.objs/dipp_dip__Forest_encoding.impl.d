lib/dip/forest_encoding.ml: Array Bits Coloring Fun Graph List
