lib/dip/edge_labels.ml: Array Bits Forest_decomposition Forest_encoding Graph List String
