lib/dip/amplify.mli: Dip
