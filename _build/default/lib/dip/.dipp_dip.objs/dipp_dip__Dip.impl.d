lib/dip/dip.ml: Array Bits Format List
