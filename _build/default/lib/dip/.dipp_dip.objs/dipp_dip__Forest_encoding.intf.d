lib/dip/forest_encoding.mli: Bits Graph
