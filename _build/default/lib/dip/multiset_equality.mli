(** Two-round multiset equality over a rooted spanning tree
    (paper Lemma 2.6, after Naor–Parter–Yogev).

    Each node holds multisets S1(v), S2(v) of elements from a universe of
    size [k^c]; the task is to decide whether the unions are equal as
    multisets.  The root samples a point z of F_p (p the smallest prime
    above k^{c+1}); the prover assigns every node z plus the evaluations of
    the characteristic polynomials of the two multisets restricted to its
    subtree; aggregation is checked locally up the tree and the root
    compares the two full evaluations.  Perfect completeness; soundness
    error <= k/p; proof size O(log k). *)

type instance = {
  tree : Graph.t;  (** locality graph: at least the tree edges *)
  parent : int array;  (** rooted tree, exactly one -1 *)
  s1 : int list array;
  s2 : int list array;
  k : int;  (** bound on the multiset sizes *)
  universe : int;  (** elements are in [0, universe) *)
}

val field : instance -> Fp.t
(** Smallest prime above [max (k * universe_slack) universe]; see paper
    footnote 10 — p < k^{c+2}, so log p = O(log k). *)

type labels = { z : int; e1 : int array; e2 : int array }

val sample_z : instance -> Rng.t -> int
(** Root's round-1 (verifier) sample. *)

val honest_labels : instance -> z:int -> labels
(** The honest prover's assignment: subtree evaluations of both
    polynomials. *)

val labels_to_bits : instance -> labels -> Bits.t array

val verify_node : instance -> z_sampled:int -> labels -> int -> bool
(** Local check at one node: aggregation consistency with its children, z
    echo consistency with its parent, root compares e1 = e2 and its z. *)

val run : ?seed:int -> instance -> Dip.verdict * Dip.stats
(** Standalone two-round execution with the honest prover. *)
