type instance = {
  tree : Graph.t;
  parent : int array;
  s1 : int list array;
  s2 : int list array;
  k : int;
  universe : int;
}

let field inst =
  let k = max 2 inst.k in
  Fp.create (Prime.next_prime (max (k * k) (max inst.universe 16)))

type labels = { z : int; e1 : int array; e2 : int array }

let sample_z inst rng = Fp.sample (field inst) rng

let children_of_parent parent =
  let n = Array.length parent in
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  children

let honest_labels inst ~z =
  let f = field inst in
  let n = Array.length inst.parent in
  let children = children_of_parent inst.parent in
  let e1 = Array.make n (-1) and e2 = Array.make n (-1) in
  let rec fill which store v =
    if store.(v) >= 0 then store.(v)
    else begin
      let own = Poly.eval f (which v) z in
      let r = List.fold_left (fun acc c -> Fp.mul f acc (fill which store c)) own children.(v) in
      store.(v) <- r;
      r
    end
  in
  for v = 0 to n - 1 do
    ignore (fill (fun v -> inst.s1.(v)) e1 v);
    ignore (fill (fun v -> inst.s2.(v)) e2 v)
  done;
  { z; e1; e2 }

let labels_to_bits inst l =
  let f = field inst in
  let w = Fp.bit_width f in
  Array.init (Array.length inst.parent) (fun v ->
      Bits.concat [ Bits.of_int ~width:w l.z; Bits.of_int ~width:w l.e1.(v); Bits.of_int ~width:w l.e2.(v) ])

let verify_node inst ~z_sampled l v =
  let f = field inst in
  let children = children_of_parent inst.parent in
  let check which store =
    let own = Poly.eval f (which v) l.z in
    let expect = List.fold_left (fun acc c -> Fp.mul f acc store.(c)) own children.(v) in
    store.(v) = expect
  in
  let agg_ok = check (fun v -> inst.s1.(v)) l.e1 && check (fun v -> inst.s2.(v)) l.e2 in
  let z_ok = if inst.parent.(v) < 0 then l.z = z_sampled else true in
  (* z is a single field in this formalization (all nodes see the same
     record); in the bit-level protocol each node carries a z echo checked
     against its parent — the serialization above charges for it. *)
  let root_ok = if inst.parent.(v) < 0 then l.e1.(v) = l.e2.(v) else true in
  agg_ok && z_ok && root_ok

let run ?(seed = 0) inst =
  let n = Array.length inst.parent in
  let meter = Dip.meter () in
  let rng = Rng.create seed in
  let z = sample_z inst rng in
  let f = field inst in
  let w = Fp.bit_width f in
  let coins = Array.init n (fun v -> if inst.parent.(v) < 0 then Bits.of_int ~width:w z else Bits.empty) in
  Dip.record_verifier meter coins;
  let l = honest_labels inst ~z in
  Dip.record_prover meter (labels_to_bits inst l);
  let verdict = Dip.all_accept ~n (fun v -> verify_node inst ~z_sampled:z l v) in
  (verdict, Dip.stats meter)
