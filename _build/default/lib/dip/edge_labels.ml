type t = {
  graph : Graph.t;
  decomp : Forest_decomposition.t;
  encodings : Forest_encoding.label array array;  (** per forest *)
  cbits : int;
}

let create graph =
  let decomp = Forest_decomposition.compute graph in
  let encodings =
    Array.init decomp.Forest_decomposition.forests (fun f ->
        Forest_encoding.encode graph ~parent:decomp.Forest_decomposition.parent.(f))
  in
  let cbits =
    Array.fold_left (fun acc labels -> max acc (Forest_encoding.color_bits labels)) 1 encodings
  in
  { graph; decomp; encodings; cbits }

let forests t = t.decomp.Forest_decomposition.forests

let setup_width t = forests t * Forest_encoding.width ~cbits:t.cbits

let setup_labels t =
  Array.init (Graph.n t.graph) (fun v ->
      Bits.concat
        (List.init (forests t) (fun f -> Forest_encoding.to_bits ~cbits:t.cbits t.encodings.(f).(v))))

let carrier _t f = f

let child_of_edge t (u, v) =
  match Forest_decomposition.forest_of_edge t.decomp u v with
  | Some (_, child) -> child
  | None -> invalid_arg "Edge_labels.child_of_edge: not an edge"

let assign t ~width f =
  let n = Graph.n t.graph in
  Array.init n (fun v ->
      Bits.concat
        (List.init (forests t) (fun fo ->
             let p = t.decomp.Forest_decomposition.parent.(fo).(v) in
             if p < 0 then Bits.of_string (String.make width '0')
             else begin
               let l = f (Graph.normalize_edge v p) in
               if Bits.length l <> width then invalid_arg "Edge_labels.assign: wrong width";
               l
             end)))

let read_edge t ~width ~labels (u, v) =
  match Forest_decomposition.forest_of_edge t.decomp u v with
  | None -> invalid_arg "Edge_labels.read_edge: not an edge"
  | Some (fo, child) -> Bits.sub labels.(child) ~pos:(fo * width) ~len:width
