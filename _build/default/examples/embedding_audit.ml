(* Scenario: validating a claimed planar embedding (Theorem 1.4).

   Each node of a sensor network stores a clockwise ordering of its links
   (e.g. from antenna bearings).  The network wants to check that these
   local orderings are globally consistent with a planar layout — a
   crossed pair of links somewhere would corrupt geographic routing.  The
   embedded-planarity DIP reduces the question to nesting along the Euler
   tour of a spanning tree and certifies it in 5 rounds.

     dune exec examples/embedding_audit.exe *)

open Dipp

let () =
  let g = Gen.planar ~n:150 9 in
  let rot = Option.get (Gen.embedding g) in
  Printf.printf "sensor network: n=%d m=%d faces=%d genus=%d\n" (Graph.n g) (Graph.m g)
    (Rotation.face_count rot) (Rotation.euler_genus rot);

  let r = Planar_embedding.run ~seed:31 ~prover:Planar_embedding.Honest { Planar_embedding.graph = g; rot } in
  Printf.printf "valid embedding:     %s  (proof %db, %d rounds)\n"
    (if r.Planar_embedding.verdict.Dip.accepted then "ACCEPT" else "REJECT")
    r.Planar_embedding.stats.Dip.proof_size_bits r.Planar_embedding.stats.Dip.interaction_rounds;

  (* One node's bearing table gets scrambled: two entries swap.  The
     rotation system now has positive genus — drawn on the plane, some pair
     of links must cross. *)
  match Gen.corrupted_embedding g 77 with
  | None -> print_endline "no corruptible node found"
  | Some bad ->
      Printf.printf "corrupted rotation:  genus=%d\n" (Rotation.euler_genus bad);
      let r =
        Planar_embedding.run ~seed:31 ~prover:Planar_embedding.Crossing_sweep
          { Planar_embedding.graph = g; rot = bad }
      in
      Printf.printf "audit verdict:       %s  (first rejecting nodes: %s)\n"
        (if r.Planar_embedding.verdict.Dip.accepted then "ACCEPT" else "REJECT")
        (String.concat ", "
           (List.map string_of_int
              (List.filteri (fun i _ -> i < 8) r.Planar_embedding.verdict.Dip.rejecting)))
