(* Quickstart: certify that a small graph is outerplanar with the 5-round
   O(log log n)-bit protocol of Theorem 1.3.

     dune exec examples/quickstart.exe *)

open Dipp

let () =
  (* A pentagon with two nested chords, plus a triangle hanging off a cut
     vertex — outerplanar. *)
  let g =
    Graph.create ~n:8
      [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0); (0, 2); (2, 4); (4, 5); (5, 6); (6, 7); (7, 4) ]
  in
  Printf.printf "graph: n=%d m=%d\n" (Graph.n g) (Graph.m g);
  Printf.printf "ground truth (centralized recognition): outerplanar = %b\n\n"
    (Outerplanar.is_outerplanar g);

  (* The honest prover decomposes the graph, commits Hamiltonian paths per
     biconnected block, and runs the interactive proof; each node of the
     distributed verifier then accepts or rejects from its own labels, its
     neighbors' labels, and its own public coins. *)
  let result = Outerplanarity.run ~seed:2024 ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
  Printf.printf "verifier verdict: %s\n"
    (if result.Outerplanarity.verdict.Dip.accepted then "ACCEPT (all nodes)" else "REJECT");
  Format.printf "complexity: %a@." Dip.pp_stats result.Outerplanarity.stats;

  (* Now hand the verifier a non-outerplanar graph (K4 glued in) and let the
     prover cheat as best it can. *)
  let bad = Graph.add_edges g [ (0, 3); (1, 3) ] in
  Printf.printf "\nnon-outerplanar variant: outerplanar = %b\n" (Outerplanar.is_outerplanar bad);
  let result = Outerplanarity.run ~seed:2024 ~prover:Outerplanarity.Component_cheat { Outerplanarity.graph = bad } in
  Printf.printf "cheating prover verdict: %s (rejecting nodes: %s)\n"
    (if result.Outerplanarity.verdict.Dip.accepted then "ACCEPT" else "REJECT")
    (String.concat ", " (List.map string_of_int result.Outerplanarity.verdict.Dip.rejecting))
