(* Scenario: planarity audit of a network overlay.

   A mesh operator claims its overlay topology is planar (so it can be
   printed on a single-layer board / routed without crossings).  The nodes
   of the network run the distributed verifier of Theorem 1.5; the
   operator's controller acts as the prover, computing an embedding and
   answering the two random challenges.  No node ever sees more than its
   own and its neighbors' O(log log n + log Delta)-bit labels.

     dune exec examples/network_audit.exe *)

open Dipp

let audit name g prover =
  let t0 = Sys.time () in
  let r = Planarity.run ~seed:7 ~prover { Planarity.graph = g } in
  Printf.printf "%-28s n=%5d m=%5d Delta=%3d  %-6s  proof=%4db  (%.0f ms)\n" name (Graph.n g)
    (Graph.m g) (Graph.max_degree g)
    (if r.Planarity.verdict.Dip.accepted then "ACCEPT" else "REJECT")
    r.Planarity.stats.Dip.proof_size_bits
    (1000. *. (Sys.time () -. t0))

let () =
  print_endline "== planarity audit of overlay topologies ==";
  (* an honestly planar deployment: city grid with diagonal shortcuts *)
  audit "city-grid overlay" (Gen.planar_bounded_degree ~n:400 3) Planarity.Honest;
  (* a datacenter-style stacked topology *)
  audit "stacked triangulation" (Gen.planar ~n:300 5) Planarity.Honest;
  (* an operator that quietly added crossing express links: the topology now
     contains a subdivided K5 and no honest embedding exists *)
  audit "overlay + express links" (Gen.nonplanar ~n:300 5) Planarity.Best_rotation;
  print_endline "";
  print_endline "The audit needs 5 interaction rounds with the controller; labels stay";
  print_endline "O(log log n + log Delta) bits, exponentially below the Omega(log n)";
  print_endline "required by any non-interactive certificate (Theorem 1.8)."
