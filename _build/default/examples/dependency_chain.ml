(* Scenario: verifying a distributed dependency order (LR-sorting, §4).

   Build agents sit on a release train (a Hamiltonian path: the order in
   which artifacts ship).  Extra arcs are declared dependencies: an arc
   u -> v claims u ships before v.  A backward dependency means a cycle —
   the release plan is infeasible.  LR-sorting is the paper's key
   primitive: the coordinator (prover) convinces every agent of the global
   order using only O(log log n)-bit messages, where any one-round
   certificate would need Omega(log n) bits.

     dune exec examples/dependency_chain.exe *)

open Dipp

let show name inst prover =
  let r = Lr_sorting.run ~seed:5 ~prover inst in
  Printf.printf "%-26s %-6s  proof=%db rounds=%d (blocks=%d of ~log n=%d nodes)\n" name
    (if r.Lr_sorting.verdict.Dip.accepted then "ACCEPT" else "REJECT")
    r.Lr_sorting.stats.Dip.proof_size_bits r.Lr_sorting.stats.Dip.interaction_rounds
    r.Lr_sorting.params.Lr_sorting.Params.nblocks r.Lr_sorting.params.Lr_sorting.Params.block

let () =
  let n = 500 in
  print_endline "== release-train dependency audit (LR-sorting) ==";
  let path, deps = Gen.lr_yes ~n 13 in
  Printf.printf "train of %d artifacts, %d declared dependencies\n" n (List.length deps);
  show "consistent plan" { Lr_sorting.n; path; arcs = deps } Lr_sorting.Honest;

  (* someone declares a dependency against the shipping order *)
  let path, deps = Gen.lr_no ~n 13 in
  let backward = List.find (fun (u, v) -> u > v) deps in
  Printf.printf "\ninjected backward dependency: artifact %d before %d\n" (fst backward) (snd backward);
  show "cheat: forged commitment" { Lr_sorting.n; path; arcs = deps } Lr_sorting.Forge_pairs;
  show "cheat: renumbered blocks" { Lr_sorting.n; path; arcs = deps } Lr_sorting.Shift_positions;
  show "cheat: fake inner edge" { Lr_sorting.n; path; arcs = deps } Lr_sorting.Fake_inner;

  (* reference: the one-round certificate needs full positions *)
  let pls = Pls_lr_sorting.run { Lr_sorting.n; path = Array.init n Fun.id; arcs = [] } in
  Printf.printf "\none-round PLS label for the same train: %d bits (= ceil log2 n)\n"
    pls.Pls_lr_sorting.stats.Dip.proof_size_bits
