(* A bit-level look at one run of the LR-sorting protocol: every label the
   prover assigns and every coin the verifier tosses, round by round, for a
   12-node instance.  Rounds 1/3/5 are prover labels (node labels followed
   by one label per declared arc); rounds 2/4 are the public coins.

     dune exec examples/transcript_demo.exe *)

open Dipp

let () =
  let n = 12 in
  let inst = { Lr_sorting.n; path = Array.init n Fun.id; arcs = [ (0, 4); (1, 3); (5, 9); (6, 8) ] } in
  let r = Lr_sorting.run ~seed:7 ~retain:true ~prover:Lr_sorting.Honest inst in
  Printf.printf "instance: path 0..%d with arcs %s\n" (n - 1)
    (String.concat " " (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) inst.Lr_sorting.arcs));
  Printf.printf "verdict: %s\n\n" (if r.Lr_sorting.verdict.Dip.accepted then "ACCEPT" else "REJECT");
  Format.printf "%a@." (Dip.pp_transcript ~max_nodes:(n + List.length inst.Lr_sorting.arcs)) r.Lr_sorting.transcript;
  Format.printf "schedule: %a  (proof size %db)@." Dip.pp_per_phase r.Lr_sorting.stats
    r.Lr_sorting.stats.Dip.proof_size_bits
