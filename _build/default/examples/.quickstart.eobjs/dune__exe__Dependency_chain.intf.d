examples/dependency_chain.mli:
