examples/dependency_chain.ml: Array Dip Dipp Fun Gen List Lr_sorting Pls_lr_sorting Printf
