examples/transcript_demo.ml: Array Dip Dipp Format Fun List Lr_sorting Printf String
