examples/quickstart.mli:
