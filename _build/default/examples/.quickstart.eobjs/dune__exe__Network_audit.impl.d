examples/network_audit.ml: Dip Dipp Gen Graph Planarity Printf Sys
