examples/transcript_demo.mli:
