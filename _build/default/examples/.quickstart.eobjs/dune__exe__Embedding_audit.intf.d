examples/embedding_audit.mli:
