examples/quickstart.ml: Dip Dipp Format Graph List Outerplanar Outerplanarity Printf String
