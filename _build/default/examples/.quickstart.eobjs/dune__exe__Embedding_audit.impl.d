examples/embedding_audit.ml: Dip Dipp Gen Graph List Option Planar_embedding Printf Rotation String
