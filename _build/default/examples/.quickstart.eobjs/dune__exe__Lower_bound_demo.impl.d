examples/lower_bound_demo.ml: Dip Dipp Format Gen Graph Graph_io List Lower_bound Lr_sorting Printf
