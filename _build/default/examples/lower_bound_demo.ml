(* Scenario: why one round is not enough (Theorem 1.8).

   A skeptic asks: "why pay 5 rounds of interaction when a single label per
   node could certify the order?"  This demo makes the answer concrete:
   shrink the one-round labels below log2 n and either soundness or
   completeness collapses — and it prints the actual fooling instance (as
   DOT) that breaks the truncated scheme.

     dune exec examples/lower_bound_demo.exe *)

open Dipp

let () =
  let n = 512 in
  let logn =
    let rec go w = if 1 lsl w >= n then w else go (w + 1) in
    go 1
  in
  Printf.printf "n = %d, log2 n = %d\n\n" n logn;

  Printf.printf "%6s  %-28s %-28s\n" "bits" "1-round soundness" "1-round completeness";
  for w = 2 to logn do
    let fooled = Lower_bound.fooling_accepted ~n ~label_bits:w in
    let complete = Lower_bound.long_chord_accepts ~n ~label_bits:w in
    Printf.printf "%6d  %-28s %-28s\n" w
      (if fooled then "BROKEN (no-instance accepted)" else "ok")
      (if complete then "ok" else "BROKEN (yes-instance rejected)")
  done;

  (* the fooling instance itself, as a picture *)
  (match Lower_bound.fooling_lr ~n:24 ~label_bits:3 with
  | Some inst ->
      let g = Lr_sorting.underlying_graph inst in
      let bad = List.map (fun (u, v) -> Graph.normalize_edge u v) inst.Lr_sorting.arcs in
      Printf.printf "\nfooling instance for 3-bit labels at n=24 (highlighted arc is the\n";
      Printf.printf "backward dependency the truncated verifier cannot see):\n\n%s\n"
        (Graph_io.to_dot ~name:"fooling" ~highlight:bad g)
  | None -> ());

  (* the interactive protocol is immune at a fraction of the bits *)
  let path, arcs = Gen.lr_yes ~n 3 in
  let r = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest { Lr_sorting.n; path; arcs } in
  Format.printf "5-round DIP at the same n: proof = %db, schedule %a@."
    r.Lr_sorting.stats.Dip.proof_size_bits Dip.pp_per_phase r.Lr_sorting.stats
