(* PLS baselines and the Theorem 1.8 lower-bound experiment. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- LR-sorting PLS ---------------------------------------------------- *)

let test_pls_lr_completeness () =
  for seed = 0 to 9 do
    let path, arcs = Gen.lr_yes ~n:150 seed in
    let r = Pls_lr_sorting.run { Lr_sorting.n = 150; path; arcs } in
    Alcotest.(check bool) "accepts" true r.Pls_lr_sorting.verdict.Dip.accepted
  done

let test_pls_lr_soundness_full_width () =
  for seed = 0 to 9 do
    let path, arcs = Gen.lr_no ~n:150 seed in
    let r = Pls_lr_sorting.run { Lr_sorting.n = 150; path; arcs } in
    Alcotest.(check bool) "rejects" false r.Pls_lr_sorting.verdict.Dip.accepted
  done

let test_pls_lr_one_round_logn () =
  let path, arcs = Gen.lr_yes ~n:1024 3 in
  let r = Pls_lr_sorting.run { Lr_sorting.n = 1024; path; arcs } in
  Alcotest.(check int) "one round" 1 r.Pls_lr_sorting.stats.Dip.interaction_rounds;
  Alcotest.(check int) "log n bits" 10 r.Pls_lr_sorting.stats.Dip.proof_size_bits

(* ---- path-outerplanarity PLS -------------------------------------------- *)

let test_pls_po_completeness () =
  for seed = 0 to 14 do
    let g, w = Gen.path_outerplanar ~n:120 seed in
    let r = Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w } in
    if not r.Pls_path_outerplanar.verdict.Dip.accepted then
      Alcotest.failf "seed %d rejected (%s)" seed
        (String.concat "," (List.map string_of_int r.Pls_path_outerplanar.verdict.Dip.rejecting))
  done

let test_pls_po_soundness () =
  for seed = 0 to 14 do
    let g, w = Gen.path_crossing ~n:120 seed in
    let r = Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w } in
    Alcotest.(check bool) "crossing rejected" false r.Pls_path_outerplanar.verdict.Dip.accepted
  done

let test_pls_po_size () =
  let g, w = Gen.path_outerplanar ~n:1024 1 in
  let r = Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w } in
  Alcotest.(check int) "one round" 1 r.Pls_path_outerplanar.stats.Dip.interaction_rounds;
  (* 3 position fields of 10 bits + 3 flag bits *)
  Alcotest.(check int) "Theta(log n)" 33 r.Pls_path_outerplanar.stats.Dip.proof_size_bits

let prop_pls_po_agrees_with_checker =
  QCheck.Test.make ~name:"pls path-op: verdict matches the exact nesting checker" ~count:40
    QCheck.(triple (int_bound 100000) (int_range 10 100) bool)
    (fun (seed, n, cross) ->
      let g, w = if cross then Gen.path_crossing ~n seed else Gen.path_outerplanar ~n seed in
      let r = Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w } in
      r.Pls_path_outerplanar.verdict.Dip.accepted = Outerplanar.check_path_witness g w)

(* ---- spanning tree PLS ---------------------------------------------------- *)

let test_pls_st () =
  let g = Graph.grid 6 6 in
  let parent = Array.mapi (fun v p -> if p = v then -1 else p) (Traversal.spanning_tree g 0) in
  let r = Pls_spanning_tree.run g ~parent in
  Alcotest.(check bool) "accepts" true r.Pls_spanning_tree.verdict.Dip.accepted;
  Alcotest.(check int) "1 round" 1 r.Pls_spanning_tree.stats.Dip.interaction_rounds;
  Alcotest.(check bool) "log n bits" true (r.Pls_spanning_tree.stats.Dip.proof_size_bits >= 6)

(* ---- Theorem 1.8 lower bound ------------------------------------------------ *)

let test_fooling_exists_below_threshold () =
  List.iter
    (fun n ->
      (* at width log n / 2, a fooling LR instance exists and is accepted *)
      let w = Pls_lr_sorting.full_width n / 2 in
      Alcotest.(check bool) (Printf.sprintf "fooled at n=%d w=%d" n w) true
        (Lower_bound.fooling_accepted ~n ~label_bits:w))
    [ 64; 256; 1024 ]

let test_no_fooling_at_full_width () =
  List.iter
    (fun n ->
      let w = Pls_lr_sorting.full_width n in
      Alcotest.(check bool) "safe at full width" false (Lower_bound.fooling_accepted ~n ~label_bits:w))
    [ 64; 256; 1024 ]

let test_fooling_instance_is_a_no_instance () =
  match Lower_bound.fooling_lr ~n:256 ~label_bits:4 with
  | Some inst -> Alcotest.(check bool) "backward arc" false (Lr_sorting.is_yes_instance inst)
  | None -> Alcotest.fail "expected instance"

let test_soundness_threshold_tracks_logn () =
  List.iter
    (fun n ->
      let t = Lower_bound.soundness_threshold ~n in
      let l = Pls_lr_sorting.full_width n in
      Alcotest.(check bool)
        (Printf.sprintf "threshold %d ~ log n %d" t l)
        true
        (t >= l - 1 && t <= l))
    [ 64; 128; 256; 512; 1024; 4096 ]

let test_completeness_threshold_tracks_logn () =
  List.iter
    (fun n ->
      let t = Lower_bound.completeness_threshold ~n in
      let l = Pls_lr_sorting.full_width n in
      Alcotest.(check bool)
        (Printf.sprintf "threshold %d ~ log n %d" t l)
        true
        (t >= l - 1 && t <= l + 1))
    [ 64; 128; 256; 512; 1024 ]

let test_long_chord_yes_is_yes () =
  let inst = Lower_bound.long_chord_yes ~n:64 in
  Alcotest.(check bool) "valid witness" true
    (Outerplanar.check_path_witness inst.Pls_path_outerplanar.graph inst.Pls_path_outerplanar.witness)

let test_interactive_beats_one_round () =
  (* the headline: at n = 4096, the 5-round DIP label is much smaller than
     the 1-round PLS label, and the PLS cannot shrink (Thm 1.8) *)
  let n = 4096 in
  let g, w = Gen.path_outerplanar ~n 1 in
  let pls = (Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w }).Pls_path_outerplanar.stats in
  let dip =
    (Path_outerplanarity.run ~seed:1 ~prover:Path_outerplanarity.Honest
       { Path_outerplanarity.graph = g; witness = Some w }).Path_outerplanarity.stats
  in
  (* shape check: per-round-per-node bits of the DIP grow like log log n;
     3 log n for the PLS. The DIP constant is larger, so compare growth:
     the PLS label exceeds its own n=64 size by ~3*6 bits while the DIP
     grows by O(1). *)
  let g64, w64 = Gen.path_outerplanar ~n:64 1 in
  let pls64 = (Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g64; witness = w64 }).Pls_path_outerplanar.stats in
  let dip64 =
    (Path_outerplanarity.run ~seed:1 ~prover:Path_outerplanarity.Honest
       { Path_outerplanarity.graph = g64; witness = Some w64 }).Path_outerplanarity.stats
  in
  let pls_growth = pls.Dip.proof_size_bits - pls64.Dip.proof_size_bits in
  let dip_growth = dip.Dip.proof_size_bits - dip64.Dip.proof_size_bits in
  Alcotest.(check bool) "PLS grows by 3 bits per position field per doubling" true (pls_growth >= 15);
  (* the DIP's constant is larger at laptop scales; the asymptotic claim
     shows as growth *rate*: Theta(log log n) vs Theta(log n).  Over this
     64x size increase log n doubles (+100% for the PLS) while log log n
     grows by ~39%; allow the DIP a generous constant. *)
  Alcotest.(check bool) "DIP grows sub-logarithmically" true (dip_growth < 4 * pls_growth)

let () =
  Alcotest.run "baselines"
    [
      ( "pls-lr",
        [
          Alcotest.test_case "completeness" `Quick test_pls_lr_completeness;
          Alcotest.test_case "soundness" `Quick test_pls_lr_soundness_full_width;
          Alcotest.test_case "one round log n" `Quick test_pls_lr_one_round_logn;
        ] );
      ( "pls-path-outerplanar",
        [
          Alcotest.test_case "completeness" `Quick test_pls_po_completeness;
          Alcotest.test_case "soundness" `Quick test_pls_po_soundness;
          Alcotest.test_case "size" `Quick test_pls_po_size;
          qtest prop_pls_po_agrees_with_checker;
        ] );
      ("pls-spanning-tree", [ Alcotest.test_case "basic" `Quick test_pls_st ]);
      ( "lower-bound (Thm 1.8)",
        [
          Alcotest.test_case "fooling below threshold" `Quick test_fooling_exists_below_threshold;
          Alcotest.test_case "safe at full width" `Quick test_no_fooling_at_full_width;
          Alcotest.test_case "fooling is a no-instance" `Quick test_fooling_instance_is_a_no_instance;
          Alcotest.test_case "soundness threshold" `Quick test_soundness_threshold_tracks_logn;
          Alcotest.test_case "completeness threshold" `Quick test_completeness_threshold_tracks_logn;
          Alcotest.test_case "long chord yes" `Quick test_long_chord_yes_is_yes;
          Alcotest.test_case "interaction beats one round" `Slow test_interactive_beats_one_round;
        ] );
    ]
