test/test_graph.ml: Alcotest Array Biconnectivity Coloring Degeneracy Digraph Forest_decomposition Fun Gen Graph Hashtbl Int List Printf QCheck QCheck_alcotest Rng Traversal
