test/test_planarity.ml: Alcotest Array Dip Fun Gen Graph List Option Outerplanar Planar_embedding Planarity Printf QCheck QCheck_alcotest Rotation Traversal
