test/test_path_outerplanarity.ml: Alcotest Dip Fun Gen Graph List Lr_sorting Option Outerplanar Path_outerplanarity Printf QCheck QCheck_alcotest String
