test/test_lr_sorting.ml: Alcotest Array Bits Dip Fp Fun Gen Graph List Lr_sorting Pls_lr_sorting Prime Printf QCheck QCheck_alcotest Rng String
