test/test_dip.ml: Alcotest Array Bits Dip Edge_labels Forest_encoding Gen Graph Int List Multiset_equality QCheck QCheck_alcotest Rng Spanning_tree_verify Traversal
