test/test_outerplanarity.ml: Alcotest Array Biconnectivity Dip Gen Graph List Outerplanar Outerplanarity Path_outerplanarity Printf QCheck QCheck_alcotest String Traversal
