test/test_sp_tw.ml: Alcotest Dip Gen Graph List Printf QCheck QCheck_alcotest Series_parallel Series_parallel_dip String Treewidth2_dip
