test/test_util.ml: Alcotest Array Bits Fp Fun Gen Int List Poly Prime QCheck QCheck_alcotest Rng
