test/test_dip.mli:
