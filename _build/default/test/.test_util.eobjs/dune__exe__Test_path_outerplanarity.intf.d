test/test_path_outerplanarity.mli:
