test/test_sp_tw.mli:
