test/test_gen.ml: Alcotest Biconnectivity Gen Graph Lr_sorting Outerplanar Planar_test QCheck QCheck_alcotest Rotation Series_parallel Traversal
