test/test_lr_sorting.mli:
