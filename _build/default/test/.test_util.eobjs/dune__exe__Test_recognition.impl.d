test/test_recognition.ml: Alcotest Array Biconnectivity Gen Graph Int List Option Outerplanar Planar_test QCheck QCheck_alcotest Rng Rotation Series_parallel
