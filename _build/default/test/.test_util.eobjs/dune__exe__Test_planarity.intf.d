test/test_planarity.mli:
