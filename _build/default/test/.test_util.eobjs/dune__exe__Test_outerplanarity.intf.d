test/test_outerplanarity.mli:
