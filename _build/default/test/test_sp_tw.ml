(* Series-parallel (Theorem 1.6) and treewidth <= 2 (Theorem 1.7)
   protocols. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- series-parallel ---------------------------------------------------- *)

let test_sp_completeness_with_witness () =
  for seed = 0 to 14 do
    let tr, g = Gen.series_parallel ~size:40 seed in
    let ears = Series_parallel.ears_of_sp tr in
    let r =
      Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Honest
        { Series_parallel_dip.graph = g; ears = Some ears }
    in
    if not r.Series_parallel_dip.verdict.Dip.accepted then
      Alcotest.failf "seed %d rejected (%s)" seed
        (String.concat "," (List.map string_of_int r.Series_parallel_dip.verdict.Dip.rejecting))
  done

let test_sp_completeness_derived () =
  for seed = 20 to 29 do
    let _, g = Gen.series_parallel ~size:30 seed in
    let r =
      Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Honest
        { Series_parallel_dip.graph = g; ears = None }
    in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true r.Series_parallel_dip.verdict.Dip.accepted
  done

let test_sp_single_edge () =
  let g = Graph.path_graph 2 in
  let r =
    Series_parallel_dip.run ~prover:Series_parallel_dip.Honest { Series_parallel_dip.graph = g; ears = None }
  in
  Alcotest.(check bool) "edge" true r.Series_parallel_dip.verdict.Dip.accepted

let test_sp_theta () =
  let g = Graph.create ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3); (1, 3) ] in
  let r =
    Series_parallel_dip.run ~prover:Series_parallel_dip.Honest { Series_parallel_dip.graph = g; ears = None }
  in
  Alcotest.(check bool) "theta" true r.Series_parallel_dip.verdict.Dip.accepted

let test_sp_rounds () =
  let tr, g = Gen.series_parallel ~size:30 3 in
  let r =
    Series_parallel_dip.run ~prover:Series_parallel_dip.Honest
      { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
  in
  Alcotest.(check int) "5 rounds" 5 r.Series_parallel_dip.stats.Dip.interaction_rounds

let test_sp_soundness () =
  let rej = ref 0 and tot = ref 0 in
  for seed = 0 to 19 do
    match Gen.series_parallel_no ~size:30 seed with
    | Some (g, ears) ->
        incr tot;
        let r =
          Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Ear_cheat
            { Series_parallel_dip.graph = g; ears = Some ears }
        in
        if not r.Series_parallel_dip.verdict.Dip.accepted then incr rej
    | None -> ()
  done;
  Alcotest.(check bool) "bad edge rejected" true (!tot >= 15 && !rej = !tot)

let test_sp_k4_rejected () =
  let rej = ref 0 in
  for seed = 0 to 9 do
    let r =
      Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Ear_cheat
        { Series_parallel_dip.graph = Graph.complete 4; ears = None }
    in
    if not r.Series_parallel_dip.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check int) "K4 rejected always" 10 !rej

let test_sp_fake_ears_rejected () =
  let rej = ref 0 in
  for seed = 0 to 9 do
    let tr, g = Gen.series_parallel ~size:40 seed in
    let r =
      Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Fake_ears
        { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
    in
    if not r.Series_parallel_dip.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "fake ears rejected" true (!rej >= 9)

let prop_sp_completeness =
  QCheck.Test.make ~name:"sp-dip: perfect completeness" ~count:25
    QCheck.(pair (int_bound 100000) (int_range 4 60))
    (fun (seed, size) ->
      let tr, g = Gen.series_parallel ~size seed in
      let r =
        Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Honest
          { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
      in
      r.Series_parallel_dip.verdict.Dip.accepted)

let prop_sp_soundness =
  QCheck.Test.make ~name:"sp-dip: non-SP rejected w.h.p." ~count:20
    QCheck.(pair (int_bound 100000) (int_range 10 40))
    (fun (seed, size) ->
      match Gen.series_parallel_no ~size seed with
      | None -> QCheck.assume_fail ()
      | Some (g, ears) ->
          let rejected = ref 0 in
          for s = 0 to 2 do
            let r =
              Series_parallel_dip.run ~seed:((seed * 3) + s) ~prover:Series_parallel_dip.Ear_cheat
                { Series_parallel_dip.graph = g; ears = Some ears }
            in
            if not r.Series_parallel_dip.verdict.Dip.accepted then incr rejected
          done;
          !rejected >= 1)

(* ---- treewidth <= 2 ------------------------------------------------------- *)

let test_tw_completeness () =
  for seed = 0 to 9 do
    let g = Gen.treewidth2 ~blocks:4 seed in
    let r = Treewidth2_dip.run ~seed ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true r.Treewidth2_dip.verdict.Dip.accepted
  done

let test_tw_single_block () =
  let _, g = Gen.series_parallel ~size:20 5 in
  let r = Treewidth2_dip.run ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
  Alcotest.(check bool) "single SP block" true r.Treewidth2_dip.verdict.Dip.accepted

let test_tw_tree () =
  let g = Graph.star 15 in
  let r = Treewidth2_dip.run ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
  Alcotest.(check bool) "tree" true r.Treewidth2_dip.verdict.Dip.accepted

let test_tw_rounds () =
  let g = Gen.treewidth2 ~blocks:5 2 in
  let r = Treewidth2_dip.run ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
  Alcotest.(check int) "5 rounds" 5 r.Treewidth2_dip.stats.Dip.interaction_rounds

let test_tw_soundness () =
  let rej = ref 0 and tot = ref 0 in
  for seed = 0 to 14 do
    match Gen.treewidth2_no ~blocks:4 seed with
    | Some g ->
        incr tot;
        let r = Treewidth2_dip.run ~seed ~prover:Treewidth2_dip.Component_cheat { Treewidth2_dip.graph = g } in
        if not r.Treewidth2_dip.verdict.Dip.accepted then incr rej
    | None -> ()
  done;
  Alcotest.(check bool) "tw3 rejected" true (!tot >= 10 && !rej = !tot)

let test_tw_k4_rejected () =
  let rej = ref 0 in
  for seed = 0 to 9 do
    let r =
      Treewidth2_dip.run ~seed ~prover:Treewidth2_dip.Component_cheat
        { Treewidth2_dip.graph = Graph.complete 4 }
    in
    if not r.Treewidth2_dip.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check int) "K4 rejected" 10 !rej

let prop_tw_completeness =
  QCheck.Test.make ~name:"tw2-dip: perfect completeness" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 1 7))
    (fun (seed, blocks) ->
      let g = Gen.treewidth2 ~blocks seed in
      (Treewidth2_dip.run ~seed ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g }).Treewidth2_dip.verdict.Dip.accepted)

let () =
  Alcotest.run "sp_tw"
    [
      ( "series-parallel (Thm 1.6)",
        [
          Alcotest.test_case "completeness (witness)" `Quick test_sp_completeness_with_witness;
          Alcotest.test_case "completeness (derived)" `Quick test_sp_completeness_derived;
          Alcotest.test_case "single edge" `Quick test_sp_single_edge;
          Alcotest.test_case "theta" `Quick test_sp_theta;
          Alcotest.test_case "rounds" `Quick test_sp_rounds;
          Alcotest.test_case "soundness" `Quick test_sp_soundness;
          Alcotest.test_case "K4" `Quick test_sp_k4_rejected;
          Alcotest.test_case "fake ears" `Quick test_sp_fake_ears_rejected;
          qtest prop_sp_completeness;
          qtest prop_sp_soundness;
        ] );
      ( "treewidth <= 2 (Thm 1.7)",
        [
          Alcotest.test_case "completeness" `Quick test_tw_completeness;
          Alcotest.test_case "single block" `Quick test_tw_single_block;
          Alcotest.test_case "tree" `Quick test_tw_tree;
          Alcotest.test_case "rounds" `Quick test_tw_rounds;
          Alcotest.test_case "soundness" `Quick test_tw_soundness;
          Alcotest.test_case "K4" `Quick test_tw_k4_rejected;
          qtest prop_tw_completeness;
        ] );
    ]
