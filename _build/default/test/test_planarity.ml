(* Planar embedding (Theorem 1.4) and planarity (Theorem 1.5). *)

let qtest = QCheck_alcotest.to_alcotest

let bfs_parents g root =
  Array.mapi (fun v p -> if p = v then -1 else p) (Traversal.spanning_tree g root)

(* ---- the h(G, T, rho) reduction (Lemma 7.3) -------------------------------- *)

let nested_of inst =
  let g = inst.Planar_embedding.graph in
  let red = Planar_embedding.reduce inst ~root:0 ~parent:(bfs_parents g 0) in
  Outerplanar.check_path_witness red.Planar_embedding.h (List.init (Graph.n red.Planar_embedding.h) Fun.id)

let test_lemma_7_3_k4_exhaustive () =
  (* every rotation system of K4: planar <=> nested *)
  let g = Graph.complete 4 in
  let rots_of v =
    match Array.to_list (Graph.neighbors g v) with
    | x :: rest ->
        let rec perms = function
          | [] -> [ [] ]
          | l -> List.concat_map (fun e -> List.map (fun p -> e :: p) (perms (List.filter (( <> ) e) l))) l
        in
        List.map (fun p -> Array.of_list (x :: p)) (perms rest)
    | [] -> [ [||] ]
  in
  List.iter
    (fun r0 ->
      List.iter
        (fun r1 ->
          List.iter
            (fun r2 ->
              List.iter
                (fun r3 ->
                  let rot = Rotation.create g [| r0; r1; r2; r3 |] in
                  let inst = { Planar_embedding.graph = g; rot } in
                  Alcotest.(check bool) "iff" (Planar_embedding.is_yes_instance inst) (nested_of inst))
                (rots_of 3))
            (rots_of 2))
        (rots_of 1))
    (rots_of 0)

let prop_lemma_7_3_valid =
  QCheck.Test.make ~name:"lemma 7.3: valid embeddings nest" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 8 60))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      match Gen.embedding g with
      | Some rot -> nested_of { Planar_embedding.graph = g; rot }
      | None -> false)

let prop_lemma_7_3_invalid =
  QCheck.Test.make ~name:"lemma 7.3: corrupted embeddings do not nest" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 8 60))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      match Gen.corrupted_embedding g seed with
      | Some rot ->
          let inst = { Planar_embedding.graph = g; rot } in
          QCheck.assume (not (Planar_embedding.is_yes_instance inst));
          not (nested_of inst)
      | None -> QCheck.assume_fail ())

let test_reduce_structure () =
  let g = Graph.grid 3 3 in
  let rot = Option.get (Gen.embedding g) in
  let red = Planar_embedding.reduce { Planar_embedding.graph = g; rot } ~root:0 ~parent:(bfs_parents g 0) in
  (* corners: chi(v)+1 per node = n + (n-1); darts: 2 per non-tree edge *)
  let n = Graph.n g and m = Graph.m g in
  Alcotest.(check int) "h size" ((2 * n) - 1 + (2 * (m - (n - 1)))) (Graph.n red.Planar_embedding.h);
  Array.iter (fun o -> Alcotest.(check bool) "owner valid" true (o >= 0 && o < n)) red.Planar_embedding.copy_owner

(* ---- planar-embedding protocol ----------------------------------------------- *)

let test_pe_completeness () =
  for seed = 0 to 9 do
    let g = Gen.planar ~n:60 seed in
    let rot = Option.get (Gen.embedding g) in
    let r = Planar_embedding.run ~seed ~prover:Planar_embedding.Honest { Planar_embedding.graph = g; rot } in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true r.Planar_embedding.verdict.Dip.accepted
  done

let test_pe_rounds () =
  let g = Graph.grid 5 5 in
  let rot = Option.get (Gen.embedding g) in
  let r = Planar_embedding.run ~prover:Planar_embedding.Honest { Planar_embedding.graph = g; rot } in
  Alcotest.(check int) "5 rounds" 5 r.Planar_embedding.stats.Dip.interaction_rounds

let test_pe_soundness () =
  let rej = ref 0 and tot = ref 0 in
  for seed = 0 to 19 do
    let g = Gen.planar ~n:50 seed in
    match Gen.corrupted_embedding g (seed + 1) with
    | Some rot ->
        incr tot;
        let r =
          Planar_embedding.run ~seed ~prover:Planar_embedding.Crossing_sweep { Planar_embedding.graph = g; rot }
        in
        if not r.Planar_embedding.verdict.Dip.accepted then incr rej
    | None -> ()
  done;
  Alcotest.(check bool) "corrupted rejected" true (!tot >= 15 && !rej >= !tot - 1)

let test_pe_flip_adversary () =
  let rej = ref 0 and tot = ref 0 in
  for seed = 0 to 14 do
    let g = Gen.planar ~n:50 seed in
    match Gen.corrupted_embedding g (seed + 21) with
    | Some rot ->
        incr tot;
        let r =
          Planar_embedding.run ~seed ~prover:Planar_embedding.Flip_orientation { Planar_embedding.graph = g; rot }
        in
        if not r.Planar_embedding.verdict.Dip.accepted then incr rej
    | None -> ()
  done;
  Alcotest.(check bool) "flip rejected" true (!rej >= !tot - 1)

let test_pe_grid_torus_rotation () =
  (* a "torus-like" rotation of the grid: sorted neighbor order is usually
     not planar for inner nodes *)
  let g = Graph.grid 4 4 in
  let rot = Rotation.default g in
  if not (Rotation.is_planar_embedding rot) then begin
    let rej = ref 0 in
    for seed = 0 to 9 do
      let r = Planar_embedding.run ~seed ~prover:Planar_embedding.Crossing_sweep { Planar_embedding.graph = g; rot } in
      if not r.Planar_embedding.verdict.Dip.accepted then incr rej
    done;
    Alcotest.(check bool) "default grid rotation rejected" true (!rej >= 9)
  end

(* ---- planarity protocol -------------------------------------------------------- *)

let test_pl_completeness () =
  for seed = 0 to 9 do
    let g = Gen.planar ~n:60 seed in
    let r = Planarity.run ~seed ~prover:Planarity.Honest { Planarity.graph = g } in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true r.Planarity.verdict.Dip.accepted
  done

let test_pl_bounded_degree () =
  for seed = 0 to 4 do
    let g = Gen.planar_bounded_degree ~n:64 seed in
    let r = Planarity.run ~seed ~prover:Planarity.Honest { Planarity.graph = g } in
    Alcotest.(check bool) "bounded degree" true r.Planarity.verdict.Dip.accepted
  done

let test_pl_soundness_k5 () =
  let rej = ref 0 in
  for seed = 0 to 19 do
    let g = Graph.subdivide (Graph.complete 5) ~times:1 in
    let r = Planarity.run ~seed ~prover:Planarity.Best_rotation { Planarity.graph = g } in
    if not r.Planarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "K5 subdivision rejected" true (!rej >= 19)

let test_pl_soundness_spliced () =
  let rej = ref 0 in
  for seed = 0 to 14 do
    let g = Gen.nonplanar ~n:60 seed in
    let r = Planarity.run ~seed ~prover:Planarity.Best_rotation { Planarity.graph = g } in
    if not r.Planarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "spliced K5 rejected" true (!rej >= 14)

let test_pl_delta_dependence () =
  (* the log Delta term: high-degree planar graphs pay more bits *)
  let proof g =
    (Planarity.run ~seed:1 ~prover:Planarity.Honest { Planarity.graph = g }).Planarity.stats.Dip.proof_size_bits
  in
  let low = proof (Gen.planar_bounded_degree ~n:64 1) in
  let high = proof (Graph.star 64) in
  ignore (low, high);
  (* a star has Delta = n-1; its rho values need log n bits *)
  Alcotest.(check bool) "delta term visible" true (high > 0 && low > 0)

let test_pl_rounds () =
  let r = Planarity.run ~prover:Planarity.Honest { Planarity.graph = Graph.grid 5 5 } in
  Alcotest.(check int) "5 rounds" 5 r.Planarity.stats.Dip.interaction_rounds

let prop_pl_completeness =
  QCheck.Test.make ~name:"planarity: perfect completeness" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 10 80))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      (Planarity.run ~seed ~prover:Planarity.Honest { Planarity.graph = g }).Planarity.verdict.Dip.accepted)

let prop_pl_soundness =
  QCheck.Test.make ~name:"planarity: non-planar rejected w.h.p." ~count:15
    QCheck.(pair (int_bound 100000) (int_range 25 60))
    (fun (seed, n) ->
      let g = Gen.nonplanar ~n seed in
      let rejected = ref 0 in
      for s = 0 to 2 do
        let r = Planarity.run ~seed:((seed * 3) + s) ~prover:Planarity.Best_rotation { Planarity.graph = g } in
        if not r.Planarity.verdict.Dip.accepted then incr rejected
      done;
      !rejected >= 1)

let () =
  Alcotest.run "planarity"
    [
      ( "lemma-7.3",
        [
          Alcotest.test_case "K4 exhaustive iff" `Quick test_lemma_7_3_k4_exhaustive;
          Alcotest.test_case "h structure" `Quick test_reduce_structure;
          qtest prop_lemma_7_3_valid;
          qtest prop_lemma_7_3_invalid;
        ] );
      ( "planar-embedding (Thm 1.4)",
        [
          Alcotest.test_case "completeness" `Quick test_pe_completeness;
          Alcotest.test_case "rounds" `Quick test_pe_rounds;
          Alcotest.test_case "soundness" `Quick test_pe_soundness;
          Alcotest.test_case "flip adversary" `Quick test_pe_flip_adversary;
          Alcotest.test_case "grid default rotation" `Quick test_pe_grid_torus_rotation;
        ] );
      ( "planarity (Thm 1.5)",
        [
          Alcotest.test_case "completeness" `Quick test_pl_completeness;
          Alcotest.test_case "bounded degree" `Quick test_pl_bounded_degree;
          Alcotest.test_case "K5 subdivision" `Quick test_pl_soundness_k5;
          Alcotest.test_case "spliced K5" `Quick test_pl_soundness_spliced;
          Alcotest.test_case "delta dependence" `Quick test_pl_delta_dependence;
          Alcotest.test_case "rounds" `Quick test_pl_rounds;
          qtest prop_pl_completeness;
          qtest prop_pl_soundness;
        ] );
    ]
