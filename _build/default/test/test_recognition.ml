(* Recognition algorithms: rotation systems / face tracing, DMP planarity,
   outerplanarity, series-parallel, treewidth <= 2. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- Rotation / Euler ------------------------------------------------ *)

let test_faces_triangle () =
  let g = Graph.cycle_graph 3 in
  let rot = Rotation.default g in
  Alcotest.(check int) "two faces" 2 (Rotation.face_count rot);
  Alcotest.(check bool) "planar" true (Rotation.is_planar_embedding rot)

let test_faces_count_dart_cover () =
  let g = Graph.grid 3 3 in
  let rot = Option.get (Planar_test.embed g) in
  let total_darts = List.fold_left (fun acc f -> acc + List.length f) 0 (Rotation.faces rot) in
  Alcotest.(check int) "every dart once" (2 * Graph.m g) total_darts

let test_k4_embeddings () =
  (* K4 has exactly 2 of 16 parent-fixed rotation systems planar *)
  let g = Graph.complete 4 in
  let rots_of v =
    match Array.to_list (Graph.neighbors g v) with
    | x :: rest ->
        let rec perms = function
          | [] -> [ [] ]
          | l -> List.concat_map (fun e -> List.map (fun p -> e :: p) (perms (List.filter (( <> ) e) l))) l
        in
        List.map (fun p -> Array.of_list (x :: p)) (perms rest)
    | [] -> [ [||] ]
  in
  let count = ref 0 in
  List.iter
    (fun r0 ->
      List.iter
        (fun r1 ->
          List.iter
            (fun r2 ->
              List.iter
                (fun r3 ->
                  if Rotation.is_planar_embedding (Rotation.create g [| r0; r1; r2; r3 |]) then incr count)
                (rots_of 3))
            (rots_of 2))
        (rots_of 1))
    (rots_of 0);
  Alcotest.(check int) "2 planar rotations" 2 !count

let test_rotation_validation () =
  let g = Graph.path_graph 3 in
  Alcotest.check_raises "bad rotation"
    (Invalid_argument "Rotation.create: rot.(v) not a permutation of neighbors") (fun () ->
      ignore (Rotation.create g [| [| 1 |]; [| 0; 0 |]; [| 1 |] |]))

let test_corrupt_swap_invalid () =
  let g = Graph.grid 4 4 in
  let rot = Option.get (Planar_test.embed g) in
  match Rotation.corrupt_swap rot (Rng.create 3) with
  | Some bad -> Alcotest.(check bool) "nonzero genus" false (Rotation.is_planar_embedding bad)
  | None -> Alcotest.fail "expected a corruption"

(* ---- Planarity -------------------------------------------------------- *)

let test_planarity_known () =
  Alcotest.(check bool) "K4" true (Planar_test.is_planar (Graph.complete 4));
  Alcotest.(check bool) "K5" false (Planar_test.is_planar (Graph.complete 5));
  Alcotest.(check bool) "K33" false (Planar_test.is_planar (Graph.complete_bipartite 3 3));
  Alcotest.(check bool) "K5 subdivided" false (Planar_test.is_planar (Graph.subdivide (Graph.complete 5) ~times:3));
  Alcotest.(check bool) "K33 subdivided" false (Planar_test.is_planar (Graph.subdivide (Graph.complete_bipartite 3 3) ~times:2));
  Alcotest.(check bool) "grid" true (Planar_test.is_planar (Graph.grid 7 9));
  Alcotest.(check bool) "tree" true (Planar_test.is_planar (Graph.star 30));
  Alcotest.(check bool) "petersen" false
    (Planar_test.is_planar
       (Graph.create ~n:10
          [ (0,1);(1,2);(2,3);(3,4);(4,0);(5,7);(7,9);(9,6);(6,8);(8,5);(0,5);(1,6);(2,7);(3,8);(4,9) ]))

let test_planarity_disconnected () =
  let g, _ = Graph.union_disjoint [ Graph.complete 4; Graph.cycle_graph 5 ] in
  Alcotest.(check bool) "disconnected planar" true (Planar_test.is_planar g);
  let g2, _ = Graph.union_disjoint [ Graph.complete 5; Graph.cycle_graph 5 ] in
  Alcotest.(check bool) "disconnected nonplanar" false (Planar_test.is_planar g2)

let test_embed_valid () =
  List.iter
    (fun g ->
      match Planar_test.embed g with
      | Some rot -> Alcotest.(check bool) "genus 0" true (Rotation.is_planar_embedding rot)
      | None -> Alcotest.fail "planar graph must embed")
    [ Graph.complete 4; Graph.grid 5 5; Graph.cycle_graph 9; Graph.star 12; Gen.planar ~n:100 3 ]

let prop_generated_planar_embeds =
  QCheck.Test.make ~name:"planarity: generated planar graphs embed with genus 0" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 10 80))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      match Planar_test.embed g with
      | Some rot -> Rotation.is_planar_embedding rot
      | None -> false)

let prop_nonplanar_detected =
  QCheck.Test.make ~name:"planarity: spliced K5 detected" ~count:20
    QCheck.(pair (int_bound 10000) (int_range 25 60))
    (fun (seed, n) -> not (Planar_test.is_planar (Gen.nonplanar ~n seed)))

let prop_euler_bound =
  QCheck.Test.make ~name:"planarity: embedded graphs satisfy m <= 3n - 6" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 10 60))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      Graph.m g <= (3 * Graph.n g) - 6 || Graph.n g < 3)

(* ---- Outerplanarity --------------------------------------------------- *)

let test_outerplanar_known () =
  Alcotest.(check bool) "cycle" true (Outerplanar.is_outerplanar (Graph.cycle_graph 9));
  Alcotest.(check bool) "path" true (Outerplanar.is_outerplanar (Graph.path_graph 9));
  Alcotest.(check bool) "K4" false (Outerplanar.is_outerplanar (Graph.complete 4));
  Alcotest.(check bool) "K23" false (Outerplanar.is_outerplanar (Graph.complete_bipartite 2 3));
  Alcotest.(check bool) "grid 2xk" true (Outerplanar.is_outerplanar (Graph.grid 2 2));
  Alcotest.(check bool) "grid 3x3" false (Outerplanar.is_outerplanar (Graph.grid 3 3))

let test_ham_cycle_extraction () =
  for seed = 0 to 9 do
    let g = Gen.biconnected_outerplanar ~n:20 seed in
    match Outerplanar.hamiltonian_cycle g with
    | Some cyc ->
        Alcotest.(check int) "covers all" 20 (List.length (List.sort_uniq Int.compare cyc));
        let arr = Array.of_list cyc in
        let k = Array.length arr in
        for i = 0 to k - 1 do
          Alcotest.(check bool) "cycle edge" true (Graph.mem_edge g arr.(i) arr.((i + 1) mod k))
        done
    | None -> Alcotest.fail "biconnected outerplanar has a Hamiltonian cycle"
  done

let test_ham_cycle_none_for_k4 () =
  Alcotest.(check bool) "K4 has no outerplanar ham cycle" true
    (Outerplanar.hamiltonian_cycle (Graph.complete 4) = None)

let test_check_path_witness () =
  let g = Graph.create ~n:6 [ (0,1);(1,2);(2,3);(3,4);(4,5);(0,3);(0,5) ] in
  Alcotest.(check bool) "nested ok" true (Outerplanar.check_path_witness g [0;1;2;3;4;5]);
  let bad = Graph.add_edges g [ (1, 4) ] in
  Alcotest.(check bool) "crossing detected" false (Outerplanar.check_path_witness bad [0;1;2;3;4;5]);
  Alcotest.(check bool) "not a ham path" false (Outerplanar.check_path_witness g [0;1;2;3;5;4])

let test_check_witness_shared_endpoints () =
  (* edges sharing endpoints never cross *)
  let g = Graph.create ~n:5 [ (0,1);(1,2);(2,3);(3,4);(0,2);(0,3);(0,4) ] in
  Alcotest.(check bool) "fan nests" true (Outerplanar.check_path_witness g [0;1;2;3;4])

let test_triangulate_known () =
  (* the 5-cycle triangulates to 2n-3 = 7 edges *)
  match Outerplanar.triangulate (Graph.cycle_graph 5) with
  | Some t ->
      Alcotest.(check int) "edges" 7 (Graph.m t);
      Alcotest.(check bool) "outerplanar" true (Outerplanar.is_outerplanar t)
  | None -> Alcotest.fail "cycle triangulates"

let test_triangulate_rejects_k4 () =
  Alcotest.(check bool) "K4" true (Outerplanar.triangulate (Graph.complete 4) = None);
  Alcotest.(check bool) "path" true (Outerplanar.triangulate (Graph.path_graph 5) = None)

let prop_triangulate_maximal =
  QCheck.Test.make ~name:"outerplanar: triangulate reaches m = 2n - 3 and stays outerplanar"
    ~count:30
    QCheck.(pair (int_bound 10000) (int_range 4 40))
    (fun (seed, n) ->
      let g = Gen.biconnected_outerplanar ~n seed in
      match Outerplanar.triangulate g with
      | Some t ->
          Graph.m t = (2 * Graph.n t) - 3
          && Outerplanar.is_outerplanar t
          && Biconnectivity.is_biconnected t
          && List.for_all (fun e -> List.mem e (Graph.edges t)) (Graph.edges g)
      | None -> false)

let prop_maximal_outerplanar_path_witness =
  QCheck.Test.make ~name:"outerplanar: maximal graphs still admit nesting paths" ~count:20
    QCheck.(pair (int_bound 10000) (int_range 4 30))
    (fun (seed, n) ->
      let g = Gen.maximal_outerplanar ~n seed in
      match Outerplanar.path_witness g with
      | Some w -> Outerplanar.check_path_witness g w
      | None -> false)

let prop_path_witness_valid =
  QCheck.Test.make ~name:"outerplanar: generated witnesses verify" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 5 80))
    (fun (seed, n) ->
      let g, w = Gen.path_outerplanar ~n seed in
      Outerplanar.check_path_witness g w)

let prop_find_path_witness =
  QCheck.Test.make ~name:"outerplanar: path_witness found on biconnected blocks" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 5 40))
    (fun (seed, n) ->
      let g = Gen.biconnected_outerplanar ~n seed in
      match Outerplanar.path_witness g with
      | Some p -> Outerplanar.check_path_witness g p
      | None -> false)

let prop_crossing_instances_rejected =
  QCheck.Test.make ~name:"outerplanar: K4-triple instances are not outerplanar" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 10 60))
    (fun (seed, n) ->
      let g, _ = Gen.path_crossing ~n seed in
      not (Outerplanar.is_outerplanar g))

(* ---- Series-parallel / treewidth -------------------------------------- *)

let test_sp_known () =
  Alcotest.(check bool) "K4" false (Series_parallel.is_series_parallel (Graph.complete 4));
  Alcotest.(check bool) "path" true (Series_parallel.is_series_parallel (Graph.path_graph 6));
  Alcotest.(check bool) "cycle" true (Series_parallel.is_series_parallel (Graph.cycle_graph 6));
  Alcotest.(check bool) "theta" true
    (Series_parallel.is_series_parallel (Graph.create ~n:4 [ (0,1);(1,2);(2,3);(0,3);(1,3) ]));
  Alcotest.(check bool) "K4 subdivided" false
    (Series_parallel.is_series_parallel (Graph.subdivide (Graph.complete 4) ~times:1))

let test_tw2_known () =
  Alcotest.(check bool) "K4" false (Series_parallel.is_treewidth_le_2 (Graph.complete 4));
  Alcotest.(check bool) "tree" true (Series_parallel.is_treewidth_le_2 (Graph.star 10));
  Alcotest.(check bool) "cycle" true (Series_parallel.is_treewidth_le_2 (Graph.cycle_graph 10));
  Alcotest.(check bool) "grid3" false (Series_parallel.is_treewidth_le_2 (Graph.grid 3 3));
  Alcotest.(check bool) "K4 subdivided" false
    (Series_parallel.is_treewidth_le_2 (Graph.subdivide (Graph.complete 4) ~times:2))

let test_sp_decompose_terminals () =
  let g = Graph.create ~n:4 [ (0,1);(1,2);(2,3);(0,3);(1,3) ] in
  match Series_parallel.decompose g with
  | Some t ->
      let s, e = Series_parallel.terminals t in
      Alcotest.(check bool) "terminals are nodes" true (s >= 0 && s < 4 && e >= 0 && e < 4 && s <> e)
  | None -> Alcotest.fail "theta graph is SP"

let prop_sp_recognition_roundtrip =
  QCheck.Test.make ~name:"sp: generated SP graphs are recognized" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 4 60))
    (fun (seed, size) ->
      let _, g = Gen.series_parallel ~size seed in
      Series_parallel.is_series_parallel g)

let prop_sp_graph_of_decompose =
  QCheck.Test.make ~name:"sp: decompose reproduces the edge set" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 4 40))
    (fun (seed, size) ->
      let _, g = Gen.series_parallel ~size seed in
      match Series_parallel.decompose g with
      | Some t -> Graph.equal g (Series_parallel.graph_of_sp ~n:(Graph.n g) t)
      | None -> false)

let prop_ears_valid =
  QCheck.Test.make ~name:"sp: ears_of_sp passes check_nested_ears" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 4 60))
    (fun (seed, size) ->
      let tr, g = Gen.series_parallel ~size seed in
      Series_parallel.check_nested_ears g (Series_parallel.ears_of_sp tr))

let prop_ears_from_recognition =
  QCheck.Test.make ~name:"sp: ears from decompose pass the checker" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 4 40))
    (fun (seed, size) ->
      let _, g = Gen.series_parallel ~size seed in
      match Series_parallel.decompose g with
      | Some t -> Series_parallel.check_nested_ears g (Series_parallel.ears_of_sp t)
      | None -> false)

let prop_sp_implies_tw2 =
  QCheck.Test.make ~name:"sp: series-parallel implies treewidth <= 2" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 4 50))
    (fun (seed, size) ->
      let _, g = Gen.series_parallel ~size seed in
      Series_parallel.is_treewidth_le_2 g)

let prop_sp_implies_planar =
  QCheck.Test.make ~name:"sp: series-parallel implies planar" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 4 50))
    (fun (seed, size) ->
      let _, g = Gen.series_parallel ~size seed in
      Planar_test.is_planar g)

let test_check_nested_ears_rejects () =
  (* ear with interior node reused *)
  let g = Graph.create ~n:4 [ (0,1);(1,2);(2,3);(0,3);(0,2) ] in
  Alcotest.(check bool) "bad decomposition rejected" false
    (Series_parallel.check_nested_ears g [ [0;1;2]; [0;1;3] ]);
  (* edges not partitioned *)
  Alcotest.(check bool) "missing edges rejected" false
    (Series_parallel.check_nested_ears g [ [0;1;2;3] ])

let () =
  Alcotest.run "recognition"
    [
      ( "rotation",
        [
          Alcotest.test_case "triangle faces" `Quick test_faces_triangle;
          Alcotest.test_case "dart cover" `Quick test_faces_count_dart_cover;
          Alcotest.test_case "K4 embeddings" `Quick test_k4_embeddings;
          Alcotest.test_case "validation" `Quick test_rotation_validation;
          Alcotest.test_case "corrupt swap" `Quick test_corrupt_swap_invalid;
        ] );
      ( "planarity",
        [
          Alcotest.test_case "known graphs" `Quick test_planarity_known;
          Alcotest.test_case "disconnected" `Quick test_planarity_disconnected;
          Alcotest.test_case "embeddings valid" `Quick test_embed_valid;
          qtest prop_generated_planar_embeds;
          qtest prop_nonplanar_detected;
          qtest prop_euler_bound;
        ] );
      ( "outerplanarity",
        [
          Alcotest.test_case "known graphs" `Quick test_outerplanar_known;
          Alcotest.test_case "ham cycle extraction" `Quick test_ham_cycle_extraction;
          Alcotest.test_case "K4 no cycle" `Quick test_ham_cycle_none_for_k4;
          Alcotest.test_case "path witness checker" `Quick test_check_path_witness;
          Alcotest.test_case "shared endpoints" `Quick test_check_witness_shared_endpoints;
          Alcotest.test_case "triangulate cycle" `Quick test_triangulate_known;
          Alcotest.test_case "triangulate rejects" `Quick test_triangulate_rejects_k4;
          qtest prop_triangulate_maximal;
          qtest prop_maximal_outerplanar_path_witness;
          qtest prop_path_witness_valid;
          qtest prop_find_path_witness;
          qtest prop_crossing_instances_rejected;
        ] );
      ( "series-parallel",
        [
          Alcotest.test_case "known graphs" `Quick test_sp_known;
          Alcotest.test_case "treewidth known" `Quick test_tw2_known;
          Alcotest.test_case "terminals" `Quick test_sp_decompose_terminals;
          Alcotest.test_case "bad ears rejected" `Quick test_check_nested_ears_rejects;
          qtest prop_sp_recognition_roundtrip;
          qtest prop_sp_graph_of_decompose;
          qtest prop_ears_valid;
          qtest prop_ears_from_recognition;
          qtest prop_sp_implies_tw2;
          qtest prop_sp_implies_planar;
        ] );
    ]
