(* Generators: every yes-generator produces members of its family, every
   no-generator provably produces non-members, all seeded-deterministic. *)

let qtest = QCheck_alcotest.to_alcotest

let seed_n = QCheck.(pair (int_bound 100000) (int_range 8 80))

let prop_lr_yes_valid =
  QCheck.Test.make ~name:"gen: lr_yes is a yes-instance" ~count:50 seed_n (fun (seed, n) ->
      let path, arcs = Gen.lr_yes ~n seed in
      let inst = { Lr_sorting.n; path; arcs } in
      Lr_sorting.validate_instance inst;
      Lr_sorting.is_yes_instance inst)

let prop_lr_no_invalid =
  QCheck.Test.make ~name:"gen: lr_no is a no-instance" ~count:50 seed_n (fun (seed, n) ->
      let path, arcs = Gen.lr_no ~n seed in
      let inst = { Lr_sorting.n; path; arcs } in
      Lr_sorting.validate_instance inst;
      not (Lr_sorting.is_yes_instance inst))

let prop_path_outerplanar_valid =
  QCheck.Test.make ~name:"gen: path_outerplanar verifies" ~count:50 seed_n (fun (seed, n) ->
      let g, w = Gen.path_outerplanar ~n seed in
      Outerplanar.check_path_witness g w && Outerplanar.is_outerplanar g)

let prop_path_crossing_invalid =
  QCheck.Test.make ~name:"gen: path_crossing is not outerplanar" ~count:50 seed_n (fun (seed, n) ->
      let g, _ = Gen.path_crossing ~n seed in
      not (Outerplanar.is_outerplanar g))

let prop_outerplanar_valid =
  QCheck.Test.make ~name:"gen: outerplanar blocks verify" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 1 8))
    (fun (seed, blocks) ->
      let g = Gen.outerplanar ~blocks seed in
      Traversal.is_connected g && Outerplanar.is_outerplanar g)

let prop_outerplanar_no_invalid =
  QCheck.Test.make ~name:"gen: outerplanar_no is not outerplanar" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 1 8))
    (fun (seed, blocks) -> not (Outerplanar.is_outerplanar (Gen.outerplanar_no ~blocks seed)))

let prop_biconnected_outerplanar =
  QCheck.Test.make ~name:"gen: biconnected_outerplanar is both" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 4 50))
    (fun (seed, n) ->
      let g = Gen.biconnected_outerplanar ~n seed in
      Biconnectivity.is_biconnected g && Outerplanar.is_outerplanar g)

let prop_planar_valid =
  QCheck.Test.make ~name:"gen: planar is planar and connected" ~count:40 seed_n (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      Traversal.is_connected g && Planar_test.is_planar g)

let prop_planar_bounded_degree =
  QCheck.Test.make ~name:"gen: bounded-degree planar has Delta <= 8" ~count:30 seed_n
    (fun (seed, n) ->
      let g = Gen.planar_bounded_degree ~n seed in
      Planar_test.is_planar g && Graph.max_degree g <= 8)

let prop_nonplanar_invalid =
  QCheck.Test.make ~name:"gen: nonplanar is non-planar but connected" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 25 70))
    (fun (seed, n) ->
      let g = Gen.nonplanar ~n seed in
      Traversal.is_connected g && not (Planar_test.is_planar g))

let prop_nonplanar_k33_invalid =
  QCheck.Test.make ~name:"gen: nonplanar_k33 is non-planar but connected" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 25 60))
    (fun (seed, n) ->
      let g = Gen.nonplanar_k33 ~n seed in
      Traversal.is_connected g && not (Planar_test.is_planar g))

let prop_maximal_outerplanar_gen =
  QCheck.Test.make ~name:"gen: maximal_outerplanar has m = 2n-3" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 4 40))
    (fun (seed, n) ->
      let g = Gen.maximal_outerplanar ~n seed in
      Graph.m g = (2 * Graph.n g) - 3 && Outerplanar.is_outerplanar g)

let prop_embedding_valid =
  QCheck.Test.make ~name:"gen: embedding has genus 0" ~count:30 seed_n (fun (seed, n) ->
      match Gen.embedding (Gen.planar ~n seed) with
      | Some rot -> Rotation.is_planar_embedding rot
      | None -> false)

let prop_corrupted_invalid =
  QCheck.Test.make ~name:"gen: corrupted embedding has genus > 0" ~count:30 seed_n
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      match Gen.corrupted_embedding g seed with
      | Some rot -> not (Rotation.is_planar_embedding rot)
      | None -> true (* no corruptible node of degree >= 3 *))

let prop_sp_valid =
  QCheck.Test.make ~name:"gen: series_parallel recognized" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 4 60))
    (fun (seed, size) ->
      let tr, g = Gen.series_parallel ~size seed in
      Series_parallel.is_series_parallel g
      && Series_parallel.check_nested_ears g (Series_parallel.ears_of_sp tr))

let prop_sp_no_invalid =
  QCheck.Test.make ~name:"gen: series_parallel_no is not SP" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 10 40))
    (fun (seed, size) ->
      match Gen.series_parallel_no ~size seed with
      | Some (g, _) -> not (Series_parallel.is_series_parallel g)
      | None -> true)

let prop_tw2_valid =
  QCheck.Test.make ~name:"gen: treewidth2 has tw <= 2" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 1 8))
    (fun (seed, blocks) ->
      let g = Gen.treewidth2 ~blocks seed in
      Traversal.is_connected g && Series_parallel.is_treewidth_le_2 g)

let prop_tw2_no_invalid =
  QCheck.Test.make ~name:"gen: treewidth2_no has tw > 2" ~count:20
    QCheck.(pair (int_bound 100000) (int_range 2 6))
    (fun (seed, blocks) ->
      match Gen.treewidth2_no ~blocks seed with
      | Some g -> not (Series_parallel.is_treewidth_le_2 g)
      | None -> true)

let test_determinism () =
  let g1 = Gen.planar ~n:50 7 and g2 = Gen.planar ~n:50 7 in
  Alcotest.(check bool) "same graph" true (Graph.equal g1 g2);
  let g3 = Gen.planar ~n:50 8 in
  Alcotest.(check bool) "different seed differs" false (Graph.equal g1 g3)

let () =
  Alcotest.run "gen"
    [
      ( "lr",
        [ qtest prop_lr_yes_valid; qtest prop_lr_no_invalid ] );
      ( "outerplanar",
        [
          qtest prop_path_outerplanar_valid;
          qtest prop_path_crossing_invalid;
          qtest prop_outerplanar_valid;
          qtest prop_outerplanar_no_invalid;
          qtest prop_biconnected_outerplanar;
        ] );
      ( "planar",
        [
          qtest prop_planar_valid;
          qtest prop_planar_bounded_degree;
          qtest prop_nonplanar_invalid;
          qtest prop_nonplanar_k33_invalid;
          qtest prop_maximal_outerplanar_gen;
          qtest prop_embedding_valid;
          qtest prop_corrupted_invalid;
        ] );
      ( "sp-tw",
        [ qtest prop_sp_valid; qtest prop_sp_no_invalid; qtest prop_tw2_valid; qtest prop_tw2_no_invalid ] );
      ("misc", [ Alcotest.test_case "determinism" `Quick test_determinism ]);
    ]
