(* Edge cases across the protocol stack: degenerate sizes, invalid inputs,
   trivial families, and amplified runs. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- degenerate sizes -------------------------------------------------- *)

let test_lr_two_nodes () =
  let inst = { Lr_sorting.n = 2; path = [| 0; 1 |]; arcs = [] } in
  let r = Lr_sorting.run ~prover:Lr_sorting.Honest inst in
  Alcotest.(check bool) "n=2 accepted" true r.Lr_sorting.verdict.Dip.accepted

let test_path_op_single_edge () =
  let r =
    Path_outerplanarity.run ~prover:Path_outerplanarity.Honest
      { Path_outerplanarity.graph = Graph.path_graph 2; witness = Some [ 0; 1 ] }
  in
  Alcotest.(check bool) "single edge accepted" true r.Path_outerplanarity.verdict.Dip.accepted

let test_outerplanarity_triangle () =
  let r = Outerplanarity.run ~prover:Outerplanarity.Honest { Outerplanarity.graph = Graph.cycle_graph 3 } in
  Alcotest.(check bool) "triangle accepted" true r.Outerplanarity.verdict.Dip.accepted

let test_planarity_tree () =
  let r = Planarity.run ~prover:Planarity.Honest { Planarity.graph = Graph.star 9 } in
  Alcotest.(check bool) "tree accepted" true r.Planarity.verdict.Dip.accepted

let test_planar_embedding_path () =
  let g = Graph.path_graph 6 in
  let rot = Rotation.default g in
  Alcotest.(check bool) "path rotation planar" true (Rotation.is_planar_embedding rot);
  let r = Planar_embedding.run ~prover:Planar_embedding.Honest { Planar_embedding.graph = g; rot } in
  Alcotest.(check bool) "path accepted" true r.Planar_embedding.verdict.Dip.accepted

let test_sp_triangle () =
  let r =
    Series_parallel_dip.run ~prover:Series_parallel_dip.Honest
      { Series_parallel_dip.graph = Graph.cycle_graph 3; ears = None }
  in
  Alcotest.(check bool) "triangle accepted" true r.Series_parallel_dip.verdict.Dip.accepted

let test_tw2_path () =
  let r = Treewidth2_dip.run ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = Graph.path_graph 8 } in
  Alcotest.(check bool) "path accepted" true r.Treewidth2_dip.verdict.Dip.accepted

(* ---- invalid inputs ----------------------------------------------------- *)

let test_disconnected_rejected_by_api () =
  let g, _ = Graph.union_disjoint [ Graph.cycle_graph 3; Graph.cycle_graph 3 ] in
  Alcotest.check_raises "outerplanarity" (Invalid_argument "Outerplanarity.run: need a connected graph")
    (fun () -> ignore (Outerplanarity.run ~prover:Outerplanarity.Honest { Outerplanarity.graph = g }));
  Alcotest.check_raises "planarity" (Invalid_argument "Planarity.run: need a connected graph") (fun () ->
      ignore (Planarity.run ~prover:Planarity.Honest { Planarity.graph = g }))

let test_params_block_too_small () =
  Alcotest.check_raises "block < log n"
    (Invalid_argument "Lr_sorting.Params.make: block too small for position bits") (fun () ->
      ignore (Lr_sorting.Params.make ~block:3 4096))

(* ---- wrong-family cross checks ------------------------------------------ *)

let test_planarity_accepts_outerplanar () =
  (* outerplanar implies planar: the planarity protocol must accept *)
  let g = Gen.outerplanar ~blocks:3 4 in
  let r = Planarity.run ~seed:2 ~prover:Planarity.Honest { Planarity.graph = g } in
  Alcotest.(check bool) "outerplanar is planar" true r.Planarity.verdict.Dip.accepted

let test_outerplanarity_rejects_planar_nonouterplanar () =
  (* the 3x3 grid is planar but not outerplanar *)
  let rej = ref 0 in
  for seed = 0 to 9 do
    let r =
      Outerplanarity.run ~seed ~prover:Outerplanarity.Component_cheat { Outerplanarity.graph = Graph.grid 3 3 }
    in
    if not r.Outerplanarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "grid rejected" true (!rej >= 9)

let test_sp_rejects_grid () =
  let rej = ref 0 in
  for seed = 0 to 9 do
    let r =
      Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Ear_cheat
        { Series_parallel_dip.graph = Graph.grid 3 3; ears = None }
    in
    if not r.Series_parallel_dip.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check int) "grid rejected" 10 !rej

let test_tw2_accepts_outerplanar () =
  (* outerplanar implies treewidth <= 2 *)
  let g = Gen.outerplanar ~blocks:3 6 in
  let r = Treewidth2_dip.run ~seed:1 ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
  Alcotest.(check bool) "outerplanar has tw <= 2" true r.Treewidth2_dip.verdict.Dip.accepted

let prop_family_inclusions =
  QCheck.Test.make ~name:"family chain: path-outerplanar => outerplanar => planar & tw<=2" ~count:25
    QCheck.(pair (int_bound 100000) (int_range 6 60))
    (fun (seed, n) ->
      let g, w = Gen.path_outerplanar ~n seed in
      Outerplanar.check_path_witness g w
      && Outerplanar.is_outerplanar g
      && Planar_test.is_planar g
      && Series_parallel.is_treewidth_le_2 g)

(* ---- amplified protocol runs --------------------------------------------- *)

let test_amplified_lr () =
  let path, arcs = Gen.lr_yes ~n:100 3 in
  let inst = { Lr_sorting.n = 100; path; arcs } in
  let a =
    Amplify.run ~reps:3 ~seed:1
      ~run:(fun ~seed -> Lr_sorting.run ~seed ~prover:Lr_sorting.Honest inst)
      ~verdict:(fun r -> r.Lr_sorting.verdict)
      ~stats:(fun r -> r.Lr_sorting.stats)
  in
  Alcotest.(check bool) "amplified completeness" true a.Amplify.verdict.Dip.accepted;
  Alcotest.(check int) "still 5 rounds" 5 a.Amplify.stats.Dip.interaction_rounds

let test_amplified_lr_soundness () =
  let path, arcs = Gen.lr_no ~n:100 3 in
  let inst = { Lr_sorting.n = 100; path; arcs } in
  let a =
    Amplify.run ~reps:3 ~seed:1
      ~run:(fun ~seed -> Lr_sorting.run ~seed ~prover:Lr_sorting.Forge_pairs inst)
      ~verdict:(fun r -> r.Lr_sorting.verdict)
      ~stats:(fun r -> r.Lr_sorting.stats)
  in
  Alcotest.(check bool) "amplified soundness" false a.Amplify.verdict.Dip.accepted

(* ---- seeds do not change verdicts on honest yes-instances ----------------- *)

let prop_seed_invariance =
  QCheck.Test.make ~name:"completeness holds for every seed (perfectness)" ~count:40
    QCheck.(triple (int_bound 100000) (int_bound 100000) (int_range 10 120))
    (fun (gseed, pseed, n) ->
      let g, w = Gen.path_outerplanar ~n gseed in
      (Path_outerplanarity.run ~seed:pseed ~prover:Path_outerplanarity.Honest
         { Path_outerplanarity.graph = g; witness = Some w })
        .Path_outerplanarity.verdict.Dip.accepted)

let () =
  Alcotest.run "edge_cases"
    [
      ( "degenerate sizes",
        [
          Alcotest.test_case "lr n=2" `Quick test_lr_two_nodes;
          Alcotest.test_case "path-op single edge" `Quick test_path_op_single_edge;
          Alcotest.test_case "outerplanarity triangle" `Quick test_outerplanarity_triangle;
          Alcotest.test_case "planarity tree" `Quick test_planarity_tree;
          Alcotest.test_case "embedding path" `Quick test_planar_embedding_path;
          Alcotest.test_case "sp triangle" `Quick test_sp_triangle;
          Alcotest.test_case "tw2 path" `Quick test_tw2_path;
        ] );
      ( "invalid inputs",
        [
          Alcotest.test_case "disconnected" `Quick test_disconnected_rejected_by_api;
          Alcotest.test_case "block too small" `Quick test_params_block_too_small;
        ] );
      ( "family relations",
        [
          Alcotest.test_case "planarity accepts outerplanar" `Quick test_planarity_accepts_outerplanar;
          Alcotest.test_case "outerplanarity rejects grid" `Quick test_outerplanarity_rejects_planar_nonouterplanar;
          Alcotest.test_case "sp rejects grid" `Quick test_sp_rejects_grid;
          Alcotest.test_case "tw2 accepts outerplanar" `Quick test_tw2_accepts_outerplanar;
          qtest prop_family_inclusions;
        ] );
      ( "amplified",
        [
          Alcotest.test_case "completeness" `Quick test_amplified_lr;
          Alcotest.test_case "soundness" `Quick test_amplified_lr_soundness;
        ] );
      ("seed invariance", [ qtest prop_seed_invariance ]);
    ]
