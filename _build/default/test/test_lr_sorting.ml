(* The LR-sorting protocol (Lemma 4.1): completeness, soundness against all
   adversaries, round count, proof-size scaling. *)

let qtest = QCheck_alcotest.to_alcotest

let yes_instance ~n seed =
  let path, arcs = Gen.lr_yes ~n seed in
  { Lr_sorting.n; path; arcs }

let no_instance ~n seed =
  let path, arcs = Gen.lr_no ~n seed in
  { Lr_sorting.n; path; arcs }

(* ---- instance validation ------------------------------------------------ *)

let test_validate_rejects_non_permutation () =
  Alcotest.check_raises "perm" (Invalid_argument "Lr_sorting: path not a permutation") (fun () ->
      Lr_sorting.validate_instance { Lr_sorting.n = 3; path = [| 0; 0; 2 |]; arcs = [] })

let test_validate_rejects_path_duplicate () =
  Alcotest.check_raises "dup" (Invalid_argument "Lr_sorting: arc duplicates a path edge") (fun () ->
      Lr_sorting.validate_instance { Lr_sorting.n = 3; path = [| 0; 1; 2 |]; arcs = [ (1, 0) ] })

let test_yes_no_classification () =
  Alcotest.(check bool) "yes" true (Lr_sorting.is_yes_instance (yes_instance ~n:100 1));
  Alcotest.(check bool) "no" false (Lr_sorting.is_yes_instance (no_instance ~n:100 1))

let test_underlying_graph () =
  let inst = { Lr_sorting.n = 4; path = [| 0; 1; 2; 3 |]; arcs = [ (0, 2) ] } in
  let g = Lr_sorting.underlying_graph inst in
  Alcotest.(check int) "m" 4 (Graph.m g)

(* ---- params -------------------------------------------------------------- *)

let test_params_block_sizes () =
  let p = Lr_sorting.Params.make 1024 in
  Alcotest.(check int) "block" 10 p.Lr_sorting.Params.block;
  Alcotest.(check int) "nblocks" 102 p.Lr_sorting.Params.nblocks;
  Alcotest.(check bool) "prime" true (Prime.is_prime p.Lr_sorting.Params.p.Fp.p)

let test_params_tiny () =
  let p = Lr_sorting.Params.make 1 in
  Alcotest.(check int) "block >= 2" 2 p.Lr_sorting.Params.block;
  Alcotest.(check int) "one block" 1 p.Lr_sorting.Params.nblocks

let test_params_field_ordering () =
  let p = Lr_sorting.Params.make 4096 in
  Alcotest.(check bool) "p2 dominates" true
    (p.Lr_sorting.Params.p2.Fp.p > p.Lr_sorting.Params.p.Fp.p * p.Lr_sorting.Params.block)

(* ---- completeness --------------------------------------------------------- *)

let test_completeness_exhaustive_seeds () =
  for seed = 0 to 29 do
    let inst = yes_instance ~n:150 seed in
    let r = Lr_sorting.run ~seed ~prover:Lr_sorting.Honest inst in
    if not r.Lr_sorting.verdict.Dip.accepted then
      Alcotest.failf "seed %d rejected (nodes %s)" seed
        (String.concat "," (List.map string_of_int r.Lr_sorting.verdict.Dip.rejecting))
  done

let test_completeness_small_n () =
  (* exercise the degenerate single-block and tiny-block layouts *)
  List.iter
    (fun n ->
      for seed = 0 to 4 do
        let inst = yes_instance ~n seed in
        let r = Lr_sorting.run ~seed ~prover:Lr_sorting.Honest inst in
        Alcotest.(check bool) (Printf.sprintf "n=%d seed=%d" n seed) true r.Lr_sorting.verdict.Dip.accepted
      done)
    [ 2; 3; 4; 5; 7; 8; 9; 15; 16; 17; 33 ]

let test_completeness_no_arcs () =
  let inst = { Lr_sorting.n = 64; path = Array.init 64 Fun.id; arcs = [] } in
  let r = Lr_sorting.run ~prover:Lr_sorting.Honest inst in
  Alcotest.(check bool) "bare path accepted" true r.Lr_sorting.verdict.Dip.accepted

let test_completeness_shuffled_path () =
  (* node ids independent of positions *)
  for seed = 0 to 9 do
    let n = 80 in
    let rng = Rng.create (seed + 99) in
    let path = Array.init n Fun.id in
    Rng.shuffle rng path;
    (* forward arcs by position *)
    let arcs =
      let acc = ref [] in
      for _ = 1 to 2 * n do
        let i = Rng.int rng n and j = Rng.int rng n in
        let l = min i j and r = max i j in
        if r - l >= 2 then acc := (path.(l), path.(r)) :: !acc
      done;
      List.sort_uniq compare !acc
    in
    let inst = { Lr_sorting.n; path; arcs } in
    let r = Lr_sorting.run ~seed ~prover:Lr_sorting.Honest inst in
    Alcotest.(check bool) "shuffled ids accepted" true r.Lr_sorting.verdict.Dip.accepted
  done

let prop_completeness =
  QCheck.Test.make ~name:"lr: perfect completeness" ~count:40
    QCheck.(pair (int_bound 100000) (int_range 10 400))
    (fun (seed, n) ->
      let inst = yes_instance ~n seed in
      (Lr_sorting.run ~seed ~prover:Lr_sorting.Honest inst).Lr_sorting.verdict.Dip.accepted)

(* ---- rounds & proof size --------------------------------------------------- *)

let test_five_rounds () =
  let r = Lr_sorting.run ~prover:Lr_sorting.Honest (yes_instance ~n:200 1) in
  Alcotest.(check int) "5 rounds" 5 r.Lr_sorting.stats.Dip.interaction_rounds;
  Alcotest.(check (list bool)) "P-V-P-V-P"
    [ true; false; true; false; true ]
    (List.map (fun p -> p = Dip.Prover_phase) r.Lr_sorting.stats.Dip.phases)

let test_proof_size_loglog_growth () =
  (* doubling n repeatedly adds only O(1) bits: compare growth against the
     log n baseline *)
  let size n = (Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest (yes_instance ~n 42)).Lr_sorting.stats.Dip.proof_size_bits in
  let s256 = size 256 and s16k = size 16384 in
  Alcotest.(check bool) "grows" true (s16k >= s256);
  (* n grew 64x (6 doublings); log n proof would grow by ~6 * (bits per
     position) which is > 40 bits for the trivial PLS; ours should add far
     less *)
  Alcotest.(check bool) "sub-logarithmic growth" true (s16k - s256 < 40)

let test_proof_size_smaller_than_pls_at_scale () =
  let n = 65536 in
  let inst = yes_instance ~n 7 in
  let dip = (Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest inst).Lr_sorting.stats.Dip.proof_size_bits in
  ignore dip;
  (* per-node per-round label: compare against n needing 16-bit positions *)
  Alcotest.(check bool) "positions need 16 bits" true (Pls_lr_sorting.full_width n = 16)

(* ---- soundness ------------------------------------------------------------- *)

let rejection_rate prover ~n ~trials =
  let rej = ref 0 in
  for seed = 0 to trials - 1 do
    let inst = no_instance ~n seed in
    let r = Lr_sorting.run ~seed:((seed * 13) + 1) ~prover inst in
    if not r.Lr_sorting.verdict.Dip.accepted then incr rej
  done;
  float_of_int !rej /. float_of_int trials

let test_soundness_forge () =
  Alcotest.(check bool) "forge rejected" true (rejection_rate Lr_sorting.Forge_pairs ~n:200 ~trials:40 >= 0.95)

let test_soundness_shift () =
  Alcotest.(check bool) "shift rejected" true (rejection_rate Lr_sorting.Shift_positions ~n:200 ~trials:40 >= 0.95)

let test_soundness_fake_inner () =
  Alcotest.(check bool) "fake-inner rejected" true (rejection_rate Lr_sorting.Fake_inner ~n:200 ~trials:40 >= 0.95)

let test_soundness_honest_labels_on_no_instance () =
  (* even the honest labelling procedure cannot make a no-instance pass *)
  Alcotest.(check bool) "honest-on-no rejected" true (rejection_rate Lr_sorting.Honest ~n:200 ~trials:40 >= 0.95)

let test_soundness_inner_block_violation () =
  (* backward arc within one block: caught deterministically by the index
     comparison *)
  let n = 64 in
  let inst = { Lr_sorting.n; path = Array.init n Fun.id; arcs = [ (4, 2) ] } in
  (* positions 4 -> 2 inside block 0 *)
  let r = Lr_sorting.run ~seed:5 ~prover:Lr_sorting.Honest inst in
  Alcotest.(check bool) "rejected" false r.Lr_sorting.verdict.Dip.accepted

let test_soundness_adjacent_block_violation () =
  let n = 64 in
  (* block size 6: arc from position 7 back to 4 crosses one boundary *)
  let inst = { Lr_sorting.n; path = Array.init n Fun.id; arcs = [ (7, 4 ) ] } in
  let rej = ref 0 in
  for seed = 0 to 19 do
    let r = Lr_sorting.run ~seed ~prover:Lr_sorting.Forge_pairs inst in
    if not r.Lr_sorting.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "rejected" true (!rej >= 19)

let prop_soundness_random_adversary_choice =
  QCheck.Test.make ~name:"lr: every adversary loses w.h.p." ~count:30
    QCheck.(triple (int_bound 100000) (int_range 20 300) (int_bound 2))
    (fun (seed, n, which) ->
      let prover =
        match which with 0 -> Lr_sorting.Forge_pairs | 1 -> Lr_sorting.Shift_positions | _ -> Lr_sorting.Fake_inner
      in
      let inst = no_instance ~n seed in
      (* individual runs may survive with prob 1/polylog; retry 3 seeds and
         require at least one rejection to keep flakiness negligible *)
      let rejected = ref 0 in
      for s = 0 to 2 do
        let r = Lr_sorting.run ~seed:((seed * 7) + s) ~prover inst in
        if not r.Lr_sorting.verdict.Dip.accepted then incr rejected
      done;
      !rejected >= 1)

(* soundness error shrinks with c *)
let test_soundness_c_parameter () =
  let rate c =
    let rej = ref 0 in
    for seed = 0 to 29 do
      let inst = no_instance ~n:60 seed in
      let r = Lr_sorting.run ~seed ~c ~prover:Lr_sorting.Shift_positions inst in
      if not r.Lr_sorting.verdict.Dip.accepted then incr rej
    done;
    !rej
  in
  Alcotest.(check bool) "larger c at least as sound" true (rate 4 >= rate 2 - 2)

let test_determinism () =
  let inst = yes_instance ~n:120 5 in
  let a = Lr_sorting.run ~seed:9 ~prover:Lr_sorting.Honest inst in
  let b = Lr_sorting.run ~seed:9 ~prover:Lr_sorting.Honest inst in
  Alcotest.(check bool) "verdicts equal" true
    (a.Lr_sorting.verdict.Dip.accepted = b.Lr_sorting.verdict.Dip.accepted);
  Alcotest.(check int) "sizes equal" a.Lr_sorting.stats.Dip.proof_size_bits b.Lr_sorting.stats.Dip.proof_size_bits;
  Alcotest.(check int) "totals equal" a.Lr_sorting.stats.Dip.total_prover_bits b.Lr_sorting.stats.Dip.total_prover_bits

let test_retained_transcript () =
  let inst = yes_instance ~n:40 2 in
  let r = Lr_sorting.run ~seed:1 ~retain:true ~prover:Lr_sorting.Honest inst in
  Alcotest.(check int) "five rounds retained" 5 (List.length r.Lr_sorting.transcript);
  let r2 = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest inst in
  Alcotest.(check int) "not retained by default" 0 (List.length r2.Lr_sorting.transcript);
  (* retained sizes match the metered stats *)
  let max_bits =
    List.fold_left
      (fun acc (ph, labels) ->
        if ph = Dip.Prover_phase then Array.fold_left (fun a l -> max a (Bits.length l)) acc labels else acc)
      0 r.Lr_sorting.transcript
  in
  Alcotest.(check int) "transcript agrees with meter" r.Lr_sorting.stats.Dip.proof_size_bits max_bits

let () =
  Alcotest.run "lr_sorting"
    [
      ( "instances",
        [
          Alcotest.test_case "validate permutation" `Quick test_validate_rejects_non_permutation;
          Alcotest.test_case "validate path duplicate" `Quick test_validate_rejects_path_duplicate;
          Alcotest.test_case "yes/no classification" `Quick test_yes_no_classification;
          Alcotest.test_case "underlying graph" `Quick test_underlying_graph;
        ] );
      ( "params",
        [
          Alcotest.test_case "block sizes" `Quick test_params_block_sizes;
          Alcotest.test_case "tiny n" `Quick test_params_tiny;
          Alcotest.test_case "field ordering" `Quick test_params_field_ordering;
        ] );
      ( "completeness",
        [
          Alcotest.test_case "30 seeds" `Quick test_completeness_exhaustive_seeds;
          Alcotest.test_case "small n" `Quick test_completeness_small_n;
          Alcotest.test_case "no arcs" `Quick test_completeness_no_arcs;
          Alcotest.test_case "shuffled ids" `Quick test_completeness_shuffled_path;
          qtest prop_completeness;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "five rounds" `Quick test_five_rounds;
          Alcotest.test_case "loglog growth" `Slow test_proof_size_loglog_growth;
          Alcotest.test_case "PLS width reference" `Quick test_proof_size_smaller_than_pls_at_scale;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "forge pairs" `Quick test_soundness_forge;
          Alcotest.test_case "shift positions" `Quick test_soundness_shift;
          Alcotest.test_case "fake inner" `Quick test_soundness_fake_inner;
          Alcotest.test_case "honest on no-instance" `Quick test_soundness_honest_labels_on_no_instance;
          Alcotest.test_case "inner-block violation" `Quick test_soundness_inner_block_violation;
          Alcotest.test_case "adjacent-block violation" `Quick test_soundness_adjacent_block_violation;
          Alcotest.test_case "c parameter" `Quick test_soundness_c_parameter;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "retained transcript" `Quick test_retained_transcript;
          qtest prop_soundness_random_adversary_choice;
        ] );
    ]
