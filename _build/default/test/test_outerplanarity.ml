(* Outerplanarity protocols (Theorems 6.1 and 1.3). *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- Theorem 6.1: biconnected ---------------------------------------------- *)

let test_biconnected_completeness () =
  for seed = 0 to 14 do
    let g = Gen.biconnected_outerplanar ~n:30 seed in
    let r = Outerplanarity.run_biconnected ~seed ~prover:Path_outerplanarity.Honest g in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true r.Path_outerplanarity.verdict.Dip.accepted
  done

let test_biconnected_cycle () =
  let r = Outerplanarity.run_biconnected ~prover:Path_outerplanarity.Honest (Graph.cycle_graph 20) in
  Alcotest.(check bool) "cycle" true r.Path_outerplanarity.verdict.Dip.accepted

let test_biconnected_k4_rejected () =
  let rej = ref 0 in
  for seed = 0 to 19 do
    let r = Outerplanarity.run_biconnected ~seed ~prover:Path_outerplanarity.Crossing_sweep (Graph.complete 4) in
    if not r.Path_outerplanarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "K4 rejected" true (!rej = 20)

let test_biconnected_path_not_closed () =
  (* a bare path is path-outerplanar but NOT biconnected outerplanar: no
     closing edge between the endpoints *)
  let r = Outerplanarity.run_biconnected ~prover:Path_outerplanarity.Honest (Graph.path_graph 10) in
  Alcotest.(check bool) "open path rejected" false r.Path_outerplanarity.verdict.Dip.accepted

(* ---- Theorem 1.3: general --------------------------------------------------- *)

let test_general_completeness () =
  for seed = 0 to 14 do
    let g = Gen.outerplanar ~blocks:5 seed in
    let r = Outerplanarity.run ~seed ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
    if not r.Outerplanarity.verdict.Dip.accepted then
      Alcotest.failf "seed %d rejected (%s)" seed
        (String.concat "," (List.map string_of_int r.Outerplanarity.verdict.Dip.rejecting))
  done

let test_general_single_block () =
  let g = Gen.biconnected_outerplanar ~n:25 3 in
  let r = Outerplanarity.run ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
  Alcotest.(check bool) "single block" true r.Outerplanarity.verdict.Dip.accepted

let test_general_tree () =
  (* trees are outerplanar; every block is a bridge *)
  let g = Graph.star 12 in
  let r = Outerplanarity.run ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
  Alcotest.(check bool) "star" true r.Outerplanarity.verdict.Dip.accepted

let test_general_rounds () =
  let g = Gen.outerplanar ~blocks:6 2 in
  let r = Outerplanarity.run ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
  Alcotest.(check int) "5 rounds" 5 r.Outerplanarity.stats.Dip.interaction_rounds

let test_general_soundness () =
  let rej = ref 0 and tot = ref 0 in
  for seed = 0 to 19 do
    let g = Gen.outerplanar_no ~blocks:4 seed in
    if (not (Outerplanar.is_outerplanar g)) && Traversal.is_connected g then begin
      incr tot;
      let r = Outerplanarity.run ~seed ~prover:Outerplanarity.Component_cheat { Outerplanarity.graph = g } in
      if not r.Outerplanarity.verdict.Dip.accepted then incr rej
    end
  done;
  Alcotest.(check bool) "bad component rejected" true (!tot > 10 && !rej = !tot)

let test_merge_cheat_rejected () =
  let rej = ref 0 in
  for seed = 0 to 19 do
    let g = Gen.outerplanar ~blocks:5 seed in
    let r = Outerplanarity.run ~seed ~prover:Outerplanarity.Merge_components { Outerplanarity.graph = g } in
    if not r.Outerplanarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "merge cheat rejected" true (!rej >= 19)

let test_component_results_counted () =
  let g = Gen.outerplanar ~blocks:4 7 in
  let bc = Biconnectivity.compute g in
  let big = List.length (List.filter (fun c -> List.length c >= 3) (Array.to_list bc.Biconnectivity.components)) in
  let r = Outerplanarity.run ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
  Alcotest.(check int) "one run per big block" big (List.length r.Outerplanarity.component_results)

let prop_general_completeness =
  QCheck.Test.make ~name:"outerplanarity: perfect completeness" ~count:25
    QCheck.(pair (int_bound 100000) (int_range 1 10))
    (fun (seed, blocks) ->
      let g = Gen.outerplanar ~blocks seed in
      (Outerplanarity.run ~seed ~prover:Outerplanarity.Honest { Outerplanarity.graph = g }).Outerplanarity.verdict.Dip.accepted)

let prop_general_soundness =
  QCheck.Test.make ~name:"outerplanarity: non-outerplanar rejected w.h.p." ~count:20
    QCheck.(pair (int_bound 100000) (int_range 2 8))
    (fun (seed, blocks) ->
      let g = Gen.outerplanar_no ~blocks seed in
      QCheck.assume (not (Outerplanar.is_outerplanar g));
      let rejected = ref 0 in
      for s = 0 to 2 do
        let r =
          Outerplanarity.run ~seed:((seed * 3) + s) ~prover:Outerplanarity.Component_cheat
            { Outerplanarity.graph = g }
        in
        if not r.Outerplanarity.verdict.Dip.accepted then incr rejected
      done;
      !rejected >= 1)

let () =
  Alcotest.run "outerplanarity"
    [
      ( "biconnected (Thm 6.1)",
        [
          Alcotest.test_case "completeness" `Quick test_biconnected_completeness;
          Alcotest.test_case "cycle" `Quick test_biconnected_cycle;
          Alcotest.test_case "K4 rejected" `Quick test_biconnected_k4_rejected;
          Alcotest.test_case "open path rejected" `Quick test_biconnected_path_not_closed;
        ] );
      ( "general (Thm 1.3)",
        [
          Alcotest.test_case "completeness" `Quick test_general_completeness;
          Alcotest.test_case "single block" `Quick test_general_single_block;
          Alcotest.test_case "tree" `Quick test_general_tree;
          Alcotest.test_case "rounds" `Quick test_general_rounds;
          Alcotest.test_case "soundness" `Quick test_general_soundness;
          Alcotest.test_case "merge cheat" `Quick test_merge_cheat_rejected;
          Alcotest.test_case "component accounting" `Quick test_component_results_counted;
          qtest prop_general_completeness;
          qtest prop_general_soundness;
        ] );
    ]
