(* The path-outerplanarity protocol (Theorem 1.2). *)

let qtest = QCheck_alcotest.to_alcotest

let run_honest ?(seed = 0) g w =
  Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Honest
    { Path_outerplanarity.graph = g; witness = Some w }

(* ---- completeness --------------------------------------------------------- *)

let test_completeness_random () =
  for seed = 0 to 19 do
    let g, w = Gen.path_outerplanar ~n:120 seed in
    let r = run_honest ~seed g w in
    if not r.Path_outerplanarity.verdict.Dip.accepted then
      Alcotest.failf "seed %d rejected (nodes %s)" seed
        (String.concat "," (List.map string_of_int r.Path_outerplanarity.verdict.Dip.rejecting))
  done

let test_completeness_bare_path () =
  let r = run_honest (Graph.path_graph 50) (List.init 50 Fun.id) in
  Alcotest.(check bool) "bare path" true r.Path_outerplanarity.verdict.Dip.accepted

let test_completeness_snake_triangulation () =
  (* chords (2i, 2i+2) share endpoints pairwise: a triangulation strip that
     nests over the identity path *)
  let n = 40 in
  let chords = List.init ((n - 2) / 2) (fun i -> (2 * i, (2 * i) + 2)) in
  let g = Graph.create ~n (List.init (n - 1) (fun i -> (i, i + 1)) @ chords) in
  let r = run_honest g (List.init n Fun.id) in
  Alcotest.(check bool) "snake" true r.Path_outerplanarity.verdict.Dip.accepted

let test_completeness_full_fan () =
  let n = 30 in
  let g = Graph.create ~n (List.init (n - 1) (fun i -> (i, i + 1)) @ List.init (n - 2) (fun i -> (0, i + 2))) in
  let r = run_honest g (List.init n Fun.id) in
  Alcotest.(check bool) "fan" true r.Path_outerplanarity.verdict.Dip.accepted

let test_completeness_witness_derived () =
  (* no witness given: the prover recognizes the graph itself *)
  for seed = 0 to 4 do
    let g = Gen.biconnected_outerplanar ~n:25 seed in
    let r =
      Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Honest
        { Path_outerplanarity.graph = g; witness = None }
    in
    Alcotest.(check bool) "derived witness accepted" true r.Path_outerplanarity.verdict.Dip.accepted
  done

let test_completeness_tiny () =
  List.iter
    (fun n ->
      let g, w = Gen.path_outerplanar ~n 3 in
      let r = run_honest g w in
      Alcotest.(check bool) (Printf.sprintf "n=%d" n) true r.Path_outerplanarity.verdict.Dip.accepted)
    [ 2; 3; 4; 5; 6 ]

let test_completeness_maximal_outerplanar () =
  (* the densest yes-instances: m = 2n - 3 *)
  for seed = 0 to 4 do
    let g = Gen.maximal_outerplanar ~n:40 seed in
    let w = Option.get (Outerplanar.path_witness g) in
    let r = run_honest ~seed g w in
    Alcotest.(check bool) (Printf.sprintf "seed %d" seed) true r.Path_outerplanarity.verdict.Dip.accepted
  done

let prop_completeness =
  QCheck.Test.make ~name:"path-op: perfect completeness" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 8 200))
    (fun (seed, n) ->
      let g, w = Gen.path_outerplanar ~n seed in
      (run_honest ~seed g w).Path_outerplanarity.verdict.Dip.accepted)

(* ---- rounds & size --------------------------------------------------------- *)

let test_rounds () =
  let g, w = Gen.path_outerplanar ~n:100 1 in
  let r = run_honest g w in
  Alcotest.(check int) "5 rounds" 5 r.Path_outerplanarity.stats.Dip.interaction_rounds

let test_lr_subprotocol_present () =
  let g, w = Gen.path_outerplanar ~n:100 1 in
  let r = run_honest g w in
  match r.Path_outerplanarity.lr with
  | Some lr -> Alcotest.(check bool) "lr accepted" true lr.Lr_sorting.verdict.Dip.accepted
  | None -> Alcotest.fail "lr sub-protocol should run on a valid path"

let test_size_growth () =
  let size n =
    let g, w = Gen.path_outerplanar ~n 11 in
    (run_honest ~seed:2 g w).Path_outerplanarity.stats.Dip.proof_size_bits
  in
  let s256 = size 256 and s4096 = size 4096 in
  Alcotest.(check bool) "slow growth over 16x" true (s4096 - s256 < 60)

(* ---- soundness -------------------------------------------------------------- *)

let crossing_rejection prover ~trials =
  let rej = ref 0 in
  for seed = 0 to trials - 1 do
    let g, w = Gen.path_crossing ~n:100 seed in
    let r =
      Path_outerplanarity.run ~seed:((seed * 5) + 2) ~prover { Path_outerplanarity.graph = g; witness = Some w }
    in
    if not r.Path_outerplanarity.verdict.Dip.accepted then incr rej
  done;
  !rej

let test_soundness_crossing_sweep () =
  Alcotest.(check bool) "sweep rejected" true (crossing_rejection Path_outerplanarity.Crossing_sweep ~trials:30 >= 29)

let test_soundness_flip_orientation () =
  Alcotest.(check bool) "flip rejected" true (crossing_rejection Path_outerplanarity.Flip_orientation ~trials:30 >= 29)

let test_soundness_honest_labels () =
  Alcotest.(check bool) "honest-on-no rejected" true (crossing_rejection Path_outerplanarity.Honest ~trials:30 >= 29)

let test_soundness_fake_path () =
  let rej = ref 0 in
  for seed = 0 to 29 do
    let g, w = Gen.path_outerplanar ~n:100 seed in
    let r =
      Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Fake_path
        { Path_outerplanarity.graph = g; witness = Some w }
    in
    if not r.Path_outerplanarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "fake path rejected" true (!rej >= 29)

let test_soundness_k23 () =
  (* K_{2,3} with a Hamiltonian path: not outerplanar *)
  let g = Graph.complete_bipartite 2 3 in
  (* parts {0,1} and {2,3,4}: path 2-0-3-1-4 *)
  let w = [ 2; 0; 3; 1; 4 ] in
  let rej = ref 0 in
  for seed = 0 to 19 do
    let r =
      Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Crossing_sweep
        { Path_outerplanarity.graph = g; witness = Some w }
    in
    if not r.Path_outerplanarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "K23 rejected" true (!rej >= 19)

let test_soundness_k4 () =
  let g = Graph.complete 4 in
  let w = [ 0; 1; 2; 3 ] in
  let rej = ref 0 in
  for seed = 0 to 19 do
    let r =
      Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Crossing_sweep
        { Path_outerplanarity.graph = g; witness = Some w }
    in
    if not r.Path_outerplanarity.verdict.Dip.accepted then incr rej
  done;
  Alcotest.(check bool) "K4 rejected" true (!rej >= 19)

let prop_soundness =
  QCheck.Test.make ~name:"path-op: crossing instances rejected w.h.p." ~count:25
    QCheck.(pair (int_bound 100000) (int_range 12 150))
    (fun (seed, n) ->
      let g, w = Gen.path_crossing ~n seed in
      let rejected = ref 0 in
      for s = 0 to 2 do
        let r =
          Path_outerplanarity.run ~seed:((seed * 3) + s) ~prover:Path_outerplanarity.Crossing_sweep
            { Path_outerplanarity.graph = g; witness = Some w }
        in
        if not r.Path_outerplanarity.verdict.Dip.accepted then incr rejected
      done;
      !rejected >= 1)

let () =
  Alcotest.run "path_outerplanarity"
    [
      ( "completeness",
        [
          Alcotest.test_case "random instances" `Quick test_completeness_random;
          Alcotest.test_case "bare path" `Quick test_completeness_bare_path;
          Alcotest.test_case "snake triangulation" `Quick test_completeness_snake_triangulation;
          Alcotest.test_case "fan" `Quick test_completeness_full_fan;
          Alcotest.test_case "derived witness" `Quick test_completeness_witness_derived;
          Alcotest.test_case "tiny instances" `Quick test_completeness_tiny;
          Alcotest.test_case "maximal outerplanar" `Quick test_completeness_maximal_outerplanar;
          qtest prop_completeness;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "rounds" `Quick test_rounds;
          Alcotest.test_case "lr sub-protocol" `Quick test_lr_subprotocol_present;
          Alcotest.test_case "size growth" `Slow test_size_growth;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "crossing sweep" `Quick test_soundness_crossing_sweep;
          Alcotest.test_case "flip orientation" `Quick test_soundness_flip_orientation;
          Alcotest.test_case "honest labels" `Quick test_soundness_honest_labels;
          Alcotest.test_case "fake path" `Quick test_soundness_fake_path;
          Alcotest.test_case "K23" `Quick test_soundness_k23;
          Alcotest.test_case "K4" `Quick test_soundness_k4;
          qtest prop_soundness;
        ] );
    ]
