(* Graph substrate: structure, traversal, biconnectivity, degeneracy,
   coloring, forest decomposition. *)

let qtest = QCheck_alcotest.to_alcotest

let random_connected_graph seed ~n ~extra =
  (* random spanning tree + extra random edges *)
  let rng = Rng.create seed in
  let perm = Array.init n Fun.id in
  Rng.shuffle rng perm;
  let edges = ref [] in
  for i = 1 to n - 1 do
    edges := (perm.(i), perm.(Rng.int rng i)) :: !edges
  done;
  for _ = 1 to extra do
    let a = Rng.int rng n and b = Rng.int rng n in
    if a <> b then edges := (a, b) :: !edges
  done;
  Graph.create ~n (List.map (fun (a, b) -> Graph.normalize_edge a b) !edges)

let graph_arb =
  QCheck.make
    ~print:(fun (seed, n, extra) -> Printf.sprintf "seed=%d n=%d extra=%d" seed n extra)
    QCheck.Gen.(triple (int_bound 10000) (int_range 2 60) (int_bound 80))

(* ---- Graph basics --------------------------------------------------- *)

let test_create_dedup () =
  let g = Graph.create ~n:4 [ (0, 1); (1, 0); (2, 3); (2, 3) ] in
  Alcotest.(check int) "m" 2 (Graph.m g)

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph: self-loop") (fun () ->
      ignore (Graph.create ~n:3 [ (1, 1) ]))

let test_out_of_range_rejected () =
  Alcotest.check_raises "range" (Invalid_argument "Graph: node out of range") (fun () ->
      ignore (Graph.create ~n:3 [ (0, 5) ]))

let test_neighbors_sorted () =
  let g = Graph.create ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_mem_edge () =
  let g = Graph.cycle_graph 6 in
  Alcotest.(check bool) "member" true (Graph.mem_edge g 5 0);
  Alcotest.(check bool) "not member" false (Graph.mem_edge g 0 3);
  Alcotest.(check bool) "self" false (Graph.mem_edge g 2 2)

let test_constructions () =
  Alcotest.(check int) "path m" 9 (Graph.m (Graph.path_graph 10));
  Alcotest.(check int) "cycle m" 10 (Graph.m (Graph.cycle_graph 10));
  Alcotest.(check int) "K5 m" 10 (Graph.m (Graph.complete 5));
  Alcotest.(check int) "K33 m" 9 (Graph.m (Graph.complete_bipartite 3 3));
  Alcotest.(check int) "grid m" 12 (Graph.m (Graph.grid 3 3));
  Alcotest.(check int) "star deg" 9 (Graph.degree (Graph.star 10) 0)

let test_subdivide () =
  let g = Graph.subdivide (Graph.complete 4) ~times:2 in
  Alcotest.(check int) "n" (4 + (6 * 2)) (Graph.n g);
  Alcotest.(check int) "m" (6 * 3) (Graph.m g);
  Alcotest.(check int) "max degree preserved" 3 (Graph.max_degree g)

let test_induced () =
  let g = Graph.complete 5 in
  let sub, back = Graph.induced g [ 1; 3; 4 ] in
  Alcotest.(check int) "n" 3 (Graph.n sub);
  Alcotest.(check int) "m" 3 (Graph.m sub);
  Alcotest.(check (array int)) "back map" [| 1; 3; 4 |] back

let test_relabel () =
  let g = Graph.path_graph 3 in
  let g' = Graph.relabel g ~perm:[| 2; 0; 1 |] in
  Alcotest.(check bool) "edge 2-0" true (Graph.mem_edge g' 2 0);
  Alcotest.(check bool) "edge 0-1" true (Graph.mem_edge g' 0 1);
  Alcotest.(check bool) "no edge 2-1" false (Graph.mem_edge g' 2 1)

let test_union_disjoint () =
  let g, maps = Graph.union_disjoint [ Graph.path_graph 3; Graph.cycle_graph 3 ] in
  Alcotest.(check int) "n" 6 (Graph.n g);
  Alcotest.(check int) "m" 5 (Graph.m g);
  Alcotest.(check int) "offset" 3 maps.(1).(0)

let prop_degree_sum =
  QCheck.Test.make ~name:"graph: sum of degrees = 2m" ~count:100 graph_arb (fun (seed, n, extra) ->
      let g = random_connected_graph seed ~n ~extra in
      let sum = List.fold_left (fun acc v -> acc + Graph.degree g v) 0 (List.init n Fun.id) in
      sum = 2 * Graph.m g)

let prop_edges_normalized =
  QCheck.Test.make ~name:"graph: edges normalized and unique" ~count:100 graph_arb
    (fun (seed, n, extra) ->
      let g = random_connected_graph seed ~n ~extra in
      let es = Graph.edges g in
      List.for_all (fun (u, v) -> u < v) es && List.length (List.sort_uniq compare es) = List.length es)

(* ---- Digraph -------------------------------------------------------- *)

let test_digraph_basic () =
  let d = Digraph.create ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 2) ] in
  Alcotest.(check bool) "arc" true (Digraph.mem_arc d 0 1);
  Alcotest.(check bool) "no reverse" false (Digraph.mem_arc d 1 0);
  Alcotest.(check (array int)) "out" [| 1; 2 |] (Digraph.out_neighbors d 0);
  Alcotest.(check (array int)) "in of 3" [| 2 |] (Digraph.in_neighbors d 3);
  Alcotest.(check (array int)) "in of 2" [| 0; 1 |] (Digraph.in_neighbors d 2)

let test_digraph_acyclic () =
  let dag = Digraph.create ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check bool) "dag" true (Digraph.is_acyclic dag);
  let cyc = Digraph.create ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "cycle" false (Digraph.is_acyclic cyc)

let test_digraph_orient () =
  let g = Graph.cycle_graph 5 in
  let order = [| 0; 1; 2; 3; 4 |] in
  let d = Digraph.orient g ~order in
  Alcotest.(check bool) "acyclic orientation" true (Digraph.is_acyclic d);
  Alcotest.(check bool) "wrap arc direction" true (Digraph.mem_arc d 0 4)

(* ---- Traversal ------------------------------------------------------ *)

let test_bfs_distances () =
  let g = Graph.grid 3 3 in
  let d = Traversal.bfs g 0 in
  Alcotest.(check int) "corner" 4 d.(8);
  Alcotest.(check int) "center" 2 d.(4);
  Alcotest.(check int) "self" 0 d.(0)

let test_components () =
  let g = Graph.create ~n:6 [ (0, 1); (2, 3); (3, 4) ] in
  let comp, k = Traversal.components g in
  Alcotest.(check int) "count" 3 k;
  Alcotest.(check bool) "same comp" true (comp.(2) = comp.(4));
  Alcotest.(check bool) "diff comp" true (comp.(0) <> comp.(5))

let test_spanning_tree () =
  let g = Graph.grid 4 4 in
  let p = Traversal.spanning_tree g 0 in
  Alcotest.(check int) "root self" 0 p.(0);
  (* every node reaches the root *)
  for v = 0 to 15 do
    let rec climb u steps =
      if steps > 16 then false else if u = 0 then true else climb p.(u) (steps + 1)
    in
    Alcotest.(check bool) "reaches root" true (climb v 0)
  done

let test_ham_path_of_edges () =
  Alcotest.(check (option (list int)))
    "path" (Some [ 0; 1; 2; 3 ])
    (Traversal.hamiltonian_path_of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ]);
  Alcotest.(check (option (list int)))
    "branching rejected" None
    (Traversal.hamiltonian_path_of_edges ~n:4 [ (0, 1); (1, 2); (1, 3) ]);
  Alcotest.(check (option (list int)))
    "cycle+path rejected" None
    (Traversal.hamiltonian_path_of_edges ~n:5 [ (0, 1); (2, 3); (3, 4); (2, 4) ]);
  Alcotest.(check (option (list int))) "single node" (Some [ 0 ]) (Traversal.hamiltonian_path_of_edges ~n:1 [])

(* ---- Biconnectivity -------------------------------------------------- *)

let test_biconnected_cycle () =
  Alcotest.(check bool) "cycle" true (Biconnectivity.is_biconnected (Graph.cycle_graph 8));
  Alcotest.(check bool) "path" false (Biconnectivity.is_biconnected (Graph.path_graph 5));
  Alcotest.(check bool) "K4" true (Biconnectivity.is_biconnected (Graph.complete 4))

let test_cut_vertices () =
  (* two triangles sharing node 2 *)
  let g = Graph.create ~n:5 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4) ] in
  let bc = Biconnectivity.compute g in
  Alcotest.(check int) "components" 2 (Array.length bc.Biconnectivity.components);
  Alcotest.(check bool) "cut 2" true bc.Biconnectivity.cut_vertex.(2);
  Alcotest.(check bool) "not cut 0" false bc.Biconnectivity.cut_vertex.(0)

let test_block_cut_rooted () =
  let g = Graph.create ~n:7 [ (0, 1); (1, 2); (0, 2); (2, 3); (3, 4); (2, 4); (4, 5); (5, 6); (4, 6) ] in
  let bc = Biconnectivity.compute g in
  let rooted = Biconnectivity.root bc ~root_block:0 in
  let depths = Array.to_list rooted.Biconnectivity.block_depth in
  Alcotest.(check (list int)) "depths" [ 0; 1; 2 ] (List.sort Int.compare depths)

let prop_block_edges_partition =
  QCheck.Test.make ~name:"biconnectivity: blocks partition the edges" ~count:60 graph_arb
    (fun (seed, n, extra) ->
      let g = random_connected_graph seed ~n ~extra in
      let bc = Biconnectivity.compute g in
      let all = List.concat (Array.to_list bc.Biconnectivity.component_edges) in
      List.sort compare all = Graph.edges g)

let prop_cut_vertex_truth =
  QCheck.Test.make ~name:"biconnectivity: cut vertices disconnect" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_bound 10000) (int_range 4 25)))
    (fun (seed, n) ->
      let g = random_connected_graph seed ~n ~extra:(n / 2) in
      let bc = Biconnectivity.compute g in
      List.for_all
        (fun v ->
          let others = List.filter (fun u -> u <> v) (List.init n Fun.id) in
          let sub, _ = Graph.induced g others in
          let disconnects = not (Traversal.is_connected sub) in
          bc.Biconnectivity.cut_vertex.(v) = disconnects)
        (List.init n Fun.id))

(* ---- Chain decomposition (Schmidt) ------------------------------------ *)

let test_chains_cycle () =
  match Biconnectivity.chain_decomposition (Graph.cycle_graph 6) with
  | Some [ chain ] ->
      Alcotest.(check int) "one chain, closed" 7 (List.length chain);
      Alcotest.(check bool) "cycle" true (List.hd chain = List.nth chain 6)
  | _ -> Alcotest.fail "cycle has exactly one chain"

let test_chains_tree () =
  Alcotest.(check bool) "tree has no chains" true
    (Biconnectivity.chain_decomposition (Graph.star 6) = None)

let prop_chains_agree_with_tarjan =
  QCheck.Test.make ~name:"biconnectivity: Schmidt agrees with Tarjan" ~count:80 graph_arb
    (fun (seed, n, extra) ->
      let g = random_connected_graph seed ~n ~extra in
      Biconnectivity.is_biconnected g = Biconnectivity.is_biconnected_chains g)

let prop_chains_are_open_ears =
  QCheck.Test.make ~name:"biconnectivity: chains of a biconnected graph are open ears" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 4 40))
    (fun (seed, n) ->
      let g = Gen.biconnected_outerplanar ~n seed in
      match Biconnectivity.chain_decomposition g with
      | Some (first :: rest) ->
          let covered = Hashtbl.create 16 in
          List.iter (fun v -> Hashtbl.replace covered v ()) first;
          List.hd first = List.nth first (List.length first - 1)
          && List.for_all
               (fun chain ->
                 match chain with
                 | a :: _ ->
                     let b = List.nth chain (List.length chain - 1) in
                     let interior = List.filteri (fun i _ -> i > 0 && i < List.length chain - 1) chain in
                     let ok =
                       a <> b
                       && Hashtbl.mem covered a && Hashtbl.mem covered b
                       && List.for_all (fun v -> not (Hashtbl.mem covered v)) interior
                     in
                     List.iter (fun v -> Hashtbl.replace covered v ()) interior;
                     ok
                 | [] -> false)
               rest
      | _ -> false)

(* ---- Degeneracy / coloring / forests --------------------------------- *)

let test_degeneracy_values () =
  Alcotest.(check int) "tree" 1 (snd (Degeneracy.ordering (Graph.path_graph 10)));
  Alcotest.(check int) "cycle" 2 (snd (Degeneracy.ordering (Graph.cycle_graph 10)));
  Alcotest.(check int) "K5" 4 (snd (Degeneracy.ordering (Graph.complete 5)))

let test_planar_degeneracy_le_5 () =
  for seed = 0 to 9 do
    let g = Gen.planar ~n:80 seed in
    Alcotest.(check bool) "<= 5" true (snd (Degeneracy.ordering g) <= 5)
  done

let prop_coloring_proper =
  QCheck.Test.make ~name:"coloring: greedy is proper" ~count:60 graph_arb (fun (seed, n, extra) ->
      let g = random_connected_graph seed ~n ~extra in
      Coloring.is_proper g (Coloring.greedy g))

let prop_coloring_degeneracy_bound =
  QCheck.Test.make ~name:"coloring: <= degeneracy + 1 colors" ~count:60 graph_arb
    (fun (seed, n, extra) ->
      let g = random_connected_graph seed ~n ~extra in
      let colors = Coloring.greedy g in
      let _, d = Degeneracy.ordering g in
      Array.for_all (fun c -> c <= d) colors)

let prop_forest_decomposition_valid =
  QCheck.Test.make ~name:"forest decomposition: valid partition into forests" ~count:60 graph_arb
    (fun (seed, n, extra) ->
      let g = random_connected_graph seed ~n ~extra in
      Forest_decomposition.is_valid g (Forest_decomposition.compute g))

let test_forest_planar_count () =
  for seed = 0 to 9 do
    let g = Gen.planar ~n:60 seed in
    let d = Forest_decomposition.compute g in
    Alcotest.(check bool) "<= 5 forests" true (d.Forest_decomposition.forests <= 5)
  done

let test_forest_of_edge () =
  let g = Graph.cycle_graph 5 in
  let d = Forest_decomposition.compute g in
  Graph.iter_edges
    (fun (u, v) ->
      match Forest_decomposition.forest_of_edge d u v with
      | Some (f, child) ->
          Alcotest.(check bool) "child endpoint" true (child = u || child = v);
          Alcotest.(check bool) "forest in range" true (f >= 0 && f < d.Forest_decomposition.forests)
      | None -> Alcotest.fail "edge not covered")
    g

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "dedup" `Quick test_create_dedup;
          Alcotest.test_case "self loop" `Quick test_self_loop_rejected;
          Alcotest.test_case "out of range" `Quick test_out_of_range_rejected;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "mem_edge" `Quick test_mem_edge;
          Alcotest.test_case "constructions" `Quick test_constructions;
          Alcotest.test_case "subdivide" `Quick test_subdivide;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "relabel" `Quick test_relabel;
          Alcotest.test_case "union disjoint" `Quick test_union_disjoint;
          qtest prop_degree_sum;
          qtest prop_edges_normalized;
        ] );
      ( "digraph",
        [
          Alcotest.test_case "basic" `Quick test_digraph_basic;
          Alcotest.test_case "acyclic" `Quick test_digraph_acyclic;
          Alcotest.test_case "orient" `Quick test_digraph_orient;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs_distances;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "spanning tree" `Quick test_spanning_tree;
          Alcotest.test_case "hamiltonian path of edges" `Quick test_ham_path_of_edges;
        ] );
      ( "biconnectivity",
        [
          Alcotest.test_case "biconnected" `Quick test_biconnected_cycle;
          Alcotest.test_case "cut vertices" `Quick test_cut_vertices;
          Alcotest.test_case "rooted block-cut" `Quick test_block_cut_rooted;
          qtest prop_block_edges_partition;
          qtest prop_cut_vertex_truth;
          Alcotest.test_case "chains: cycle" `Quick test_chains_cycle;
          Alcotest.test_case "chains: tree" `Quick test_chains_tree;
          qtest prop_chains_agree_with_tarjan;
          qtest prop_chains_are_open_ears;
        ] );
      ( "degeneracy-coloring-forests",
        [
          Alcotest.test_case "degeneracy values" `Quick test_degeneracy_values;
          Alcotest.test_case "planar degeneracy <= 5" `Quick test_planar_degeneracy_le_5;
          qtest prop_coloring_proper;
          qtest prop_coloring_degeneracy_bound;
          qtest prop_forest_decomposition_valid;
          Alcotest.test_case "planar forests <= 5" `Quick test_forest_planar_count;
          Alcotest.test_case "forest_of_edge" `Quick test_forest_of_edge;
        ] );
    ]
