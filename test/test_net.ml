(* The fault-injecting network runtime (lib/net) and its sweep layer.

   Contracts under test:
   - completeness: with a reliable network every honest protocol accepts,
     in both fidelity tiers (semantic adapters and the checksummed
     transport wrapper), in both decision modes;
   - fault semantics: total drop starves Strict but not a quorum-free
     Degrade; total corruption flips semantic decisions but is absorbed by
     the checksummed transport; a certain crash kills acceptance; a larger
     retry budget recovers more frames;
   - determinism: a run is a pure function of (protocol, config, model,
     seed), and the sweep report is byte-identical across worker counts. *)

let seed = 1234

let planar_instance n =
  let g = Gen.planar ~n 7 in
  let parent =
    Array.mapi (fun v pv -> if pv = v then -1 else pv) (Traversal.spanning_tree g 0)
  in
  (g, parent)

let protocols () =
  let g, parent = planar_instance 60 in
  [
    Net_protocols.pls_spanning_tree ~graph:g ~parent;
    Net_protocols.st_verify ~reps:3 ~seed:5 g ~parent;
    (let r = Planarity.run ~seed:3 ~prover:Planarity.Honest { Planarity.graph = g } in
     Net_protocols.transport ~name:"planarity" ~graph:g ~stats:r.Planarity.stats
       ~verdict:r.Planarity.verdict);
  ]

(* ---- completeness on a reliable network ------------------------------- *)

let test_reliable_completeness () =
  List.iter
    (fun proto ->
      List.iter
        (fun mode ->
          let r =
            Net.execute ~mode ~rng:(Rng.create seed) ~model:Fault.reliable proto
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s accepts on a reliable network" proto.Net.name)
            true r.Net.accepted;
          Alcotest.(check (list int))
            (Printf.sprintf "%s: no rejecting nodes" proto.Net.name)
            [] r.Net.rejecting;
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s: full neighborhoods heard" proto.Net.name)
            1.0 r.Net.heard;
          Alcotest.(check int)
            (Printf.sprintf "%s: nothing dropped" proto.Net.name)
            0 r.Net.stats.Net.dropped)
        [ Net.Strict; Net.Degrade { quorum = 0.8 } ])
    (protocols ())

let test_mseq_adapter_completeness () =
  let g, parent = planar_instance 40 in
  let tree_edges = ref [] in
  Array.iteri (fun v p -> if p >= 0 then tree_edges := (v, p) :: !tree_edges) parent;
  let tree = Graph.create ~n:(Graph.n g) !tree_edges in
  let s1 = Array.init (Graph.n g) (fun v -> [ v mod 7; (v * 3) mod 7 ]) in
  let s2 = Array.map List.rev s1 in
  let inst = { Multiset_equality.tree; parent; s1; s2; k = 2; universe = 7 } in
  let proto = Net_protocols.multiset_eq ~seed:9 inst in
  let r = Net.execute ~rng:(Rng.create seed) ~model:Fault.reliable proto in
  Alcotest.(check bool) "multiset-eq accepts on a reliable network" true r.Net.accepted

(* ---- fault semantics --------------------------------------------------- *)

let test_total_drop () =
  let g, parent = planar_instance 60 in
  let proto = Net_protocols.pls_spanning_tree ~graph:g ~parent in
  let strict =
    Net.execute ~mode:Net.Strict ~rng:(Rng.create seed) ~model:(Fault.drop ~rate:1.0) proto
  in
  Alcotest.(check bool) "strict: total drop rejects" false strict.Net.accepted;
  Alcotest.(check (float 1e-9)) "nothing heard" 0.0 strict.Net.heard;
  (* with no quorum requirement, nodes decide from what arrived — here
     nothing, so every check degrades to vacuous truth *)
  let degrade =
    Net.execute
      ~mode:(Net.Degrade { quorum = 0.0 })
      ~rng:(Rng.create seed) ~model:(Fault.drop ~rate:1.0) proto
  in
  Alcotest.(check bool) "degrade quorum=0: total drop accepts" true degrade.Net.accepted

let test_total_corruption_semantic_vs_checksum () =
  let g, parent = planar_instance 60 in
  let model = Fault.corrupt ~rate:1.0 in
  (* semantic tier: every frame arrives with a flipped bit, the decoded
     depth disagrees with the parent, the proof fails *)
  let semantic = Net_protocols.pls_spanning_tree ~graph:g ~parent in
  let r = Net.execute ~rng:(Rng.create seed) ~model semantic in
  Alcotest.(check bool) "semantic: total corruption rejects" false r.Net.accepted;
  Alcotest.(check bool) "corruption was injected" true (r.Net.stats.Net.corrupted > 0);
  (* transport tier: the frame check discards every corrupted copy, and
     with corruption certain no retransmission can get a clean frame
     through — Strict starves *)
  let pr = Planarity.run ~seed:3 ~prover:Planarity.Honest { Planarity.graph = g } in
  let wrapped =
    Net_protocols.transport ~name:"planarity" ~graph:g ~stats:pr.Planarity.stats
      ~verdict:pr.Planarity.verdict
  in
  let r = Net.execute ~mode:Net.Strict ~rng:(Rng.create seed) ~model wrapped in
  Alcotest.(check bool) "checksum: certain corruption starves strict" false r.Net.accepted;
  Alcotest.(check (float 1e-9)) "no corrupted frame was recorded" 0.0 r.Net.heard;
  (* at a recoverable rate a large enough retry budget pushes a clean copy
     of every frame through (0.2^8 per-message starvation odds) *)
  let config = { Net.default_config with Net.retries = 7; Net.deadline = 1000 } in
  let r =
    Net.execute ~config ~mode:Net.Strict ~rng:(Rng.create seed)
      ~model:(Fault.corrupt ~rate:0.2) wrapped
  in
  Alcotest.(check bool) "checksum: 20% corruption is absorbed" true r.Net.accepted

let test_certain_crash () =
  let g, parent = planar_instance 60 in
  let proto = Net_protocols.pls_spanning_tree ~graph:g ~parent in
  let r = Net.execute ~rng:(Rng.create seed) ~model:(Fault.crash ~rate:1.0) proto in
  Alcotest.(check bool) "everyone crashes: rejected" false r.Net.accepted;
  Alcotest.(check int) "all nodes crashed" (Graph.n g) (List.length r.Net.crashed_nodes)

let test_retries_recover_frames () =
  let g, parent = planar_instance 60 in
  let proto = Net_protocols.pls_spanning_tree ~graph:g ~parent in
  let heard_with retries =
    let config = { Net.default_config with Net.retries } in
    (Net.execute ~config ~rng:(Rng.create seed) ~model:(Fault.drop ~rate:0.3) proto).Net.heard
  in
  let none = heard_with 0 and many = heard_with 4 in
  Alcotest.(check bool)
    (Printf.sprintf "retries recover frames (%.3f -> %.3f)" none many)
    true (many > none)

(* ---- determinism ------------------------------------------------------- *)

let test_execute_deterministic () =
  let g, parent = planar_instance 60 in
  let proto = Net_protocols.st_verify ~reps:3 ~seed:5 g ~parent in
  let run () =
    let r = Net.execute ~rng:(Rng.create seed) ~model:(Fault.chaos ~rate:0.1) proto in
    Format.asprintf "%b %a %a" r.Net.accepted
      (Format.pp_print_list Format.pp_print_int)
      r.Net.rejecting Net.pp_stats r.Net.stats
  in
  Alcotest.(check string) "same seed, same execution" (run ()) (run ())

let sweep_report jobs =
  let fam = Fault_sweep.pls_family ~n:40 in
  let points =
    List.concat_map
      (fun rate ->
        [
          Fault_sweep.run_point ~jobs ~seed fam (Fault.drop ~rate) rate Fault_sweep.Strict 6;
          Fault_sweep.run_point ~jobs ~seed fam (Fault.crash ~rate) rate Fault_sweep.Degrade 6;
        ])
      [ 0.0; 0.2 ]
  in
  Fault_sweep.report_string ~seed points

let test_sweep_identical_across_jobs () =
  let r1 = sweep_report 1 in
  Alcotest.(check string) "jobs=2 byte-identical to jobs=1" r1 (sweep_report 2);
  Alcotest.(check string) "jobs=4 byte-identical to jobs=1" r1 (sweep_report 4)

let test_zero_rate_sweep_accepts () =
  List.iter
    (fun fam ->
      List.iter
        (fun (_, ctor) ->
          let p =
            Fault_sweep.run_point ~jobs:2 ~seed fam (ctor 0.0) 0.0 Fault_sweep.Strict 4
          in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s at rate 0: all honest runs accept" p.Fault_sweep.fam
               p.Fault_sweep.fault)
            p.Fault_sweep.trials p.Fault_sweep.accepted)
        Fault_sweep.model_ctors)
    [ Fault_sweep.pls_family ~n:40; Fault_sweep.st_family ~n:30 ~reps:2;
      Fault_sweep.planarity_family ~n:30 ]

let () =
  Alcotest.run "net"
    [
      ( "completeness",
        [
          Alcotest.test_case "reliable network, both tiers, both modes" `Quick
            test_reliable_completeness;
          Alcotest.test_case "multiset-eq adapter" `Quick test_mseq_adapter_completeness;
          Alcotest.test_case "rate-0 sweep points" `Quick test_zero_rate_sweep_accepts;
        ] );
      ( "faults",
        [
          Alcotest.test_case "total drop: strict starves, degrade survives" `Quick
            test_total_drop;
          Alcotest.test_case "corruption: semantic flips, checksum absorbs" `Quick
            test_total_corruption_semantic_vs_checksum;
          Alcotest.test_case "certain crash" `Quick test_certain_crash;
          Alcotest.test_case "retries recover frames" `Quick test_retries_recover_frames;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "execute is seed-pure" `Quick test_execute_deterministic;
          Alcotest.test_case "sweep report identical for 1/2/4 domains" `Quick
            test_sweep_identical_across_jobs;
        ] );
    ]
