(* Unit + property tests for the bit/field substrate. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- Bits ---------------------------------------------------------- *)

let test_bits_roundtrip () =
  for width = 1 to 20 do
    let v = (1 lsl width) - 1 in
    Alcotest.(check int) "max value" v Bits.(to_int (of_int ~width v));
    Alcotest.(check int) "zero" 0 Bits.(to_int (of_int ~width 0))
  done

let test_bits_get () =
  let b = Bits.of_string "10110" in
  Alcotest.(check bool) "bit 0" true (Bits.get b 0);
  Alcotest.(check bool) "bit 1" false (Bits.get b 1);
  Alcotest.(check bool) "bit 2" true (Bits.get b 2);
  Alcotest.(check int) "length" 5 (Bits.length b)

let test_bits_append () =
  let a = Bits.of_string "101" and b = Bits.of_string "0011" in
  Alcotest.(check string) "append" "1010011" (Bits.to_string (Bits.append a b));
  Alcotest.(check string) "concat" "1010011101" (Bits.to_string (Bits.concat [ a; b; a ]))

let test_bits_sub () =
  let b = Bits.of_string "110010111" in
  Alcotest.(check string) "sub" "0010" (Bits.to_string (Bits.sub b ~pos:2 ~len:4))

let test_bits_writer_reader () =
  let w = Bits.Writer.create () in
  Bits.Writer.int w ~width:7 93;
  Bits.Writer.bool w true;
  Bits.Writer.int w ~width:3 5;
  let r = Bits.Reader.of_bits (Bits.Writer.contents w) in
  Alcotest.(check int) "int field" 93 (Bits.Reader.int r ~width:7);
  Alcotest.(check bool) "bool field" true (Bits.Reader.bool r);
  Alcotest.(check int) "second int" 5 (Bits.Reader.int r ~width:3);
  Alcotest.(check int) "drained" 0 (Bits.Reader.remaining r)

let test_bits_reader_underflow () =
  let r = Bits.Reader.of_bits (Bits.of_string "10") in
  Alcotest.check_raises "underflow" Bits.Reader.Underflow (fun () ->
      ignore (Bits.Reader.int r ~width:3))

let test_bits_range_errors () =
  (* the checked accessors name the offending index/slice and the length *)
  let b = Bits.of_string "10110" in
  Alcotest.check_raises "get past the end"
    (Invalid_argument "Bits.get: index 5 out of range [0, 5)")
    (fun () -> ignore (Bits.get b 5));
  Alcotest.check_raises "negative index"
    (Invalid_argument "Bits.get: index -1 out of range [0, 5)")
    (fun () -> ignore (Bits.get b (-1)));
  Alcotest.check_raises "slice past the end"
    (Invalid_argument "Bits.sub: slice [3, 3+4) out of range for length 5")
    (fun () -> ignore (Bits.sub b ~pos:3 ~len:4));
  Alcotest.check_raises "negative slice position"
    (Invalid_argument "Bits.sub: slice [-1, -1+2) out of range for length 5")
    (fun () -> ignore (Bits.sub b ~pos:(-1) ~len:2))

let test_bits_flat_range_errors () =
  (* the flat reader keeps the named-index error convention of the checked
     Bits accessors: same [pos, pos+len) slice format, same length report *)
  let b = Bits.of_string "10110" in
  Alcotest.check_raises "flat slice past the end"
    (Invalid_argument "Bits_flat.read_int: slice [3, 3+4) out of range for length 5")
    (fun () -> ignore (Bits_flat.read_int b ~pos:3 ~width:4));
  Alcotest.check_raises "flat negative slice position"
    (Invalid_argument "Bits_flat.read_int: slice [-1, -1+2) out of range for length 5")
    (fun () -> ignore (Bits_flat.read_int b ~pos:(-1) ~width:2));
  let d = Bits_flat.Dec.of_bits b in
  Alcotest.check_raises "flat decoder underflow is Reader.Underflow" Bits.Reader.Underflow
    (fun () -> ignore (Bits_flat.Dec.int d ~width:6));
  (* same terse convention as Bits.of_int, whose encoder these mirror *)
  Alcotest.check_raises "flat encoder width validation"
    (Invalid_argument "Bits_flat.Enc.int: width")
    (fun () -> ignore (Bits_flat.Enc.int (Bits_flat.Enc.create 8) ~width:63 1));
  Alcotest.check_raises "flat encoder value validation"
    (Invalid_argument "Bits_flat.Enc.int: value")
    (fun () -> ignore (Bits_flat.Enc.int (Bits_flat.Enc.create 8) ~width:2 4))

let test_bits_flat_agrees_with_checked () =
  (* in range, the flat reader agrees with the checked Reader bit for bit *)
  let w = Bits.Writer.create () in
  Bits.Writer.int w ~width:7 93;
  Bits.Writer.bool w true;
  Bits.Writer.int w ~width:3 5;
  let b = Bits.Writer.contents w in
  Alcotest.(check int) "read_int at 0" 93 (Bits_flat.read_int b ~pos:0 ~width:7);
  Alcotest.(check int) "read_int mid" 5 (Bits_flat.read_int b ~pos:8 ~width:3);
  Alcotest.(check int) "unsafe_int agrees in range" (Bits_flat.read_int b ~pos:1 ~width:9)
    (Bits_flat.unsafe_int b ~pos:1 ~width:9);
  let d = Bits_flat.Dec.of_bits b in
  Alcotest.(check int) "dec int" 93 (Bits_flat.Dec.int d ~width:7);
  Alcotest.(check bool) "dec bool" true (Bits_flat.Dec.bool d);
  Alcotest.(check int) "dec second int" 5 (Bits_flat.Dec.int d ~width:3);
  Alcotest.(check int) "dec drained" 0 (Bits_flat.Dec.remaining d)

let test_bits_flat_capacity_reuse () =
  (* [?capacity] preallocates ahead of the per-label hint; reset-reuse on a
     preallocated encoder must produce exactly what a fresh exact-size
     encoder produces, both under and over the hint *)
  let encode enc fields =
    List.iter (fun (width, v) -> Bits_flat.Enc.int enc ~width v) fields;
    Bits_flat.Enc.to_bits enc
  in
  let fresh fields =
    encode (Bits_flat.Enc.create (List.fold_left (fun a (w, _) -> a + w) 0 fields)) fields
  in
  let small = [ (3, 5); (1, 1) ] in
  let large = [ (30, 12345); (30, 999_999); (30, 7) ] in
  let e = Bits_flat.Enc.create ~capacity:256 4 in
  Alcotest.(check bool) "preallocated encoder, small label" true
    (Bits.equal (fresh small) (encode e small));
  Bits_flat.Enc.reset e;
  Alcotest.(check bool) "reset-reuse past the hint stays within capacity" true
    (Bits.equal (fresh large) (encode e large));
  Bits_flat.Enc.reset e;
  Alcotest.(check bool) "reset-reuse back to a small label leaks nothing" true
    (Bits.equal (fresh small) (encode e small));
  (* capacity smaller than the hint is inert, and overflowing both still
     grows transparently *)
  let tiny = Bits_flat.Enc.create ~capacity:1 2 in
  Alcotest.(check bool) "growth past hint and capacity" true
    (Bits.equal (fresh large) (encode tiny large))

let test_bits_unsafe_sub () =
  (* in range, unsafe_sub agrees with sub; past the logical length it
     reads zeroed padding without raising — hence the lint gate *)
  let b = Bits.of_string "110010111" in
  Alcotest.(check string) "in-range agrees with sub"
    (Bits.to_string (Bits.sub b ~pos:2 ~len:4))
    (Bits.to_string (Bits.unsafe_sub b ~pos:2 ~len:4));
  Alcotest.(check string) "padding reads as zeros" "1110000"
    (Bits.to_string (Bits.unsafe_sub b ~pos:6 ~len:7))

let test_bits_equal () =
  Alcotest.(check bool) "equal" true (Bits.equal (Bits.of_string "101") (Bits.of_string "101"));
  Alcotest.(check bool) "length differs" false (Bits.equal (Bits.of_string "1010") (Bits.of_string "101"));
  Alcotest.(check bool) "content differs" false (Bits.equal (Bits.of_string "100") (Bits.of_string "101"))

let prop_bits_string_roundtrip =
  QCheck.Test.make ~name:"bits: of_string/to_string roundtrip" ~count:200
    QCheck.(string_gen_of_size (Gen.int_bound 64) (Gen.oneofl [ '0'; '1' ]))
    (fun s -> Bits.to_string (Bits.of_string s) = s)

let prop_bits_int_roundtrip =
  QCheck.Test.make ~name:"bits: of_int/to_int roundtrip" ~count:500
    QCheck.(pair (int_range 1 30) (int_bound 1000000))
    (fun (width, v) ->
      QCheck.assume (v < 1 lsl width);
      Bits.to_int (Bits.of_int ~width v) = v)

let prop_bits_append_length =
  QCheck.Test.make ~name:"bits: |a ++ b| = |a| + |b|" ~count:200
    QCheck.(pair small_nat small_nat)
    (fun (x, y) ->
      let rng = Rng.create (x + (1000 * y)) in
      let a = Bits.random rng (x mod 100) and b = Bits.random rng (y mod 100) in
      Bits.length (Bits.append a b) = Bits.length a + Bits.length b)

(* ---- Min_heap ------------------------------------------------------ *)

let test_heap_basic () =
  let h = Min_heap.create ~capacity:2 ~dummy:"-" () in
  Alcotest.(check bool) "fresh heap empty" true (Min_heap.is_empty h);
  Min_heap.push h ~k0:3 ~k1:0 ~k2:0 "c";
  Min_heap.push h ~k0:1 ~k1:2 ~k2:0 "b";
  Min_heap.push h ~k0:1 ~k1:1 ~k2:9 "a";
  Alcotest.(check int) "size" 3 (Min_heap.size h);
  Alcotest.(check (option (triple int int int))) "min key" (Some (1, 1, 9)) (Min_heap.min_key h);
  Alcotest.(check (option int)) "min k0" (Some 1) (Min_heap.min_k0 h);
  (match Min_heap.pop_min h with
  | Some (1, 1, 9, "a") -> ()
  | _ -> Alcotest.fail "wrong min");
  (match Min_heap.pop_min h with
  | Some (1, 2, 0, "b") -> ()
  | _ -> Alcotest.fail "wrong second");
  Min_heap.clear h;
  Alcotest.(check bool) "cleared" true (Min_heap.is_empty h);
  Alcotest.(check (option int)) "no min" None (Min_heap.min_k0 h)

let prop_heap_pop_sorted =
  QCheck.Test.make ~name:"min_heap: drain order is the sorted key order" ~count:200
    QCheck.(list_of_size (Gen.int_bound 200) (triple (int_bound 50) (int_bound 50) (int_bound 50)))
    (fun keys ->
      let h = Min_heap.create ~dummy:(-1) () in
      List.iteri (fun i (a, b, c) -> Min_heap.push h ~k0:a ~k1:b ~k2:c i) keys;
      let rec drain acc =
        match Min_heap.pop_min h with
        | None -> List.rev acc
        | Some (a, b, c, _) -> drain ((a, b, c) :: acc)
      in
      drain [] = List.sort compare keys)

let prop_heap_interleaved_model =
  (* alternate random pushes and pops against a sorted-list model; unique
     keys via the insertion counter so the model's order is total *)
  QCheck.Test.make ~name:"min_heap: interleaved push/pop matches a sorted-list model" ~count:100
    QCheck.(list_of_size (Gen.int_bound 300) (pair (int_bound 100) bool))
    (fun ops ->
      let h = Min_heap.create ~capacity:1 ~dummy:(-1) () in
      let model = ref [] in
      let counter = ref 0 in
      List.for_all
        (fun (t, is_pop) ->
          if is_pop then
            match (Min_heap.pop_min h, !model) with
            | None, [] -> true
            | Some (a, b, c, v), k :: rest ->
                model := rest;
                (a, b, c, v) = k
            | _ -> false
          else begin
            incr counter;
            Min_heap.push h ~k0:t ~k1:!counter ~k2:0 !counter;
            model := List.sort compare ((t, !counter, 0, !counter) :: !model);
            Min_heap.size h = List.length !model
          end)
        ops)

(* ---- Rng ----------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independent () =
  let base = Rng.create 7 in
  let a = Rng.split base 1 and b = Rng.split base 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_reproducible () =
  let x = Rng.bits64 (Rng.split (Rng.create 5) 9) in
  let y = Rng.bits64 (Rng.split (Rng.create 5) 9) in
  Alcotest.(check int64) "split reproducible" x y

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_uniformish () =
  let rng = Rng.create 11 in
  let counts = Array.make 8 0 in
  for _ = 1 to 8000 do
    let v = Rng.int rng 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 800 && c < 1200)) counts

let test_rng_shuffle_permutation () =
  let rng = Rng.create 13 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ---- split_string domain separation (rng.mli invariant) ------------- *)

let streams_differ a b =
  (* 64 draws from truly independent streams collide with probability ~2^-58
     per draw; any overlap beyond noise means the keys were conflated. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  !same < 4

let key_gen =
  QCheck.string_gen_of_size (QCheck.Gen.int_range 0 24) QCheck.Gen.printable

let prop_split_string_empty_vs_any =
  QCheck.Test.make ~name:"rng: split_string \"\" differs from any non-empty key" ~count:100
    QCheck.(pair (int_bound 10000) key_gen)
    (fun (seed, key) ->
      QCheck.assume (key <> "");
      let base = Rng.create seed in
      streams_differ (Rng.split_string base "") (Rng.split_string base key))

let prop_split_string_prefix_keys =
  QCheck.Test.make ~name:"rng: split_string on a proper prefix differs from the full key" ~count:100
    QCheck.(triple (int_bound 10000) key_gen (string_gen_of_size (Gen.int_range 1 12) Gen.printable))
    (fun (seed, key, suffix) ->
      let base = Rng.create seed in
      streams_differ (Rng.split_string base key) (Rng.split_string base (key ^ suffix)))

let prop_split_string_stable =
  QCheck.Test.make ~name:"rng: split_string ignores how much of the parent was consumed" ~count:100
    QCheck.(triple (int_bound 10000) key_gen (int_range 0 20))
    (fun (seed, key, draws) ->
      let fresh = Rng.create seed in
      let consumed = Rng.create seed in
      for _ = 1 to draws do
        ignore (Rng.bits64 consumed)
      done;
      Rng.bits64 (Rng.split_string fresh key) = Rng.bits64 (Rng.split_string consumed key))

(* ---- Sha256 --------------------------------------------------------- *)

let test_sha256_vectors () =
  (* FIPS 180-4 test vectors *)
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex "");
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex "abc");
  Alcotest.(check string) "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_million_a () =
  Alcotest.(check string) "10^6 x a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (String.make 1_000_000 'a'))

let test_sha256_bytes_and_hex_of_raw () =
  let raw = Sha256.digest_string "abc" in
  Alcotest.(check int) "raw is 32 bytes" 32 (String.length raw);
  Alcotest.(check string) "hex_of_raw agrees" (Sha256.hex "abc") (Sha256.hex_of_raw raw);
  Alcotest.(check string) "digest_bytes agrees" raw
    (Sha256.digest_bytes (Bytes.of_string "abc"))

(* ---- Prime / Fp ---------------------------------------------------- *)

let test_primes_small () =
  Alcotest.(check (list bool)) "primality"
    [ false; false; true; true; false; true; false; true; false; false ]
    (List.map Prime.is_prime [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])

let test_next_prime () =
  Alcotest.(check int) "next_prime 10" 11 (Prime.next_prime 10);
  Alcotest.(check int) "next_prime 13" 17 (Prime.next_prime 13);
  Alcotest.(check int) "next_prime 1" 2 (Prime.next_prime 1);
  Alcotest.(check int) "next_prime 1000" 1009 (Prime.next_prime 1000)

let test_fp_ops () =
  let f = Fp.create 101 in
  Alcotest.(check int) "add" 3 (Fp.add f 52 52);
  Alcotest.(check int) "sub" 99 (Fp.sub f 3 5);
  Alcotest.(check int) "mul" (50 * 50 mod 101) (Fp.mul f 50 50);
  Alcotest.(check int) "pow" (Fp.mul f 7 (Fp.mul f 7 7)) (Fp.pow f 7 3);
  Alcotest.(check int) "fermat" 1 (Fp.pow f 5 100)

let test_fp_inverse () =
  let f = Fp.create 97 in
  for a = 1 to 96 do
    Alcotest.(check int) "a * a^-1 = 1" 1 (Fp.mul f a (Fp.inv f a))
  done

let test_fp_bit_width () =
  Alcotest.(check int) "width 101" 7 (Fp.bit_width (Fp.create 101));
  Alcotest.(check int) "width 2" 1 (Fp.bit_width (Fp.create 2));
  Alcotest.(check int) "width 257" 9 (Fp.bit_width (Fp.create 257))

(* ---- Poly ---------------------------------------------------------- *)

let test_poly_eval () =
  let f = Fp.create 101 in
  (* phi_{1,2,3}(x) = (1-x)(2-x)(3-x) at x=5: (-4)(-3)(-2) = -24 = 77 *)
  Alcotest.(check int) "eval" (Fp.of_int f (-24)) (Poly.eval f [ 1; 2; 3 ] 5)

let test_poly_multiset_order_invariance () =
  let f = Fp.create 211 in
  Alcotest.(check int) "order invariant" (Poly.eval f [ 4; 9; 9; 2 ] 17) (Poly.eval f [ 9; 2; 4; 9 ] 17)

let test_poly_prefixes () =
  let f = Fp.create 211 in
  let groups = [ [ 1; 2 ]; []; [ 3 ]; [ 4; 5 ] ] in
  let p = Poly.eval_prefixes f groups 7 in
  Alcotest.(check int) "prefix 0" (Poly.eval f [ 1; 2 ] 7) p.(0);
  Alcotest.(check int) "prefix 1" p.(0) p.(1);
  Alcotest.(check int) "prefix 2" (Poly.eval f [ 1; 2; 3 ] 7) p.(2);
  Alcotest.(check int) "prefix 3" (Poly.eval f [ 1; 2; 3; 4; 5 ] 7) p.(3)

let prop_poly_identity_testing =
  QCheck.Test.make ~name:"poly: distinct multisets collide rarely" ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 8) (int_bound 30)) small_nat)
    (fun (s, salt) ->
      let f = Fp.create 1009 in
      let s' = List.map (fun x -> x + 1) s in
      QCheck.assume (List.sort compare s <> List.sort compare s');
      (* count collisions over many random points: must be well under k/p *)
      let rng = Rng.create salt in
      let collisions = ref 0 in
      for _ = 1 to 100 do
        let z = Fp.sample f rng in
        if Poly.eval f s z = Poly.eval f s' z then incr collisions
      done;
      !collisions <= 3)

let () =
  Alcotest.run "util"
    [
      ( "bits",
        [
          Alcotest.test_case "int roundtrip" `Quick test_bits_roundtrip;
          Alcotest.test_case "get" `Quick test_bits_get;
          Alcotest.test_case "append/concat" `Quick test_bits_append;
          Alcotest.test_case "sub" `Quick test_bits_sub;
          Alcotest.test_case "writer/reader" `Quick test_bits_writer_reader;
          Alcotest.test_case "reader underflow" `Quick test_bits_reader_underflow;
          Alcotest.test_case "range errors" `Quick test_bits_range_errors;
          Alcotest.test_case "flat range errors" `Quick test_bits_flat_range_errors;
          Alcotest.test_case "flat agrees with checked" `Quick test_bits_flat_agrees_with_checked;
          Alcotest.test_case "flat capacity preallocation" `Quick test_bits_flat_capacity_reuse;
          Alcotest.test_case "unsafe_sub" `Quick test_bits_unsafe_sub;
          Alcotest.test_case "equal" `Quick test_bits_equal;
          qtest prop_bits_string_roundtrip;
          qtest prop_bits_int_roundtrip;
          qtest prop_bits_append_length;
        ] );
      ( "min-heap",
        [
          Alcotest.test_case "push/pop/clear" `Quick test_heap_basic;
          qtest prop_heap_pop_sorted;
          qtest prop_heap_interleaved_model;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "split reproducible" `Quick test_rng_split_reproducible;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "uniform-ish" `Quick test_rng_uniformish;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          qtest prop_split_string_empty_vs_any;
          qtest prop_split_string_prefix_keys;
          qtest prop_split_string_stable;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS vectors" `Quick test_sha256_vectors;
          Alcotest.test_case "million a" `Quick test_sha256_million_a;
          Alcotest.test_case "raw digest" `Quick test_sha256_bytes_and_hex_of_raw;
        ] );
      ( "field",
        [
          Alcotest.test_case "small primes" `Quick test_primes_small;
          Alcotest.test_case "next_prime" `Quick test_next_prime;
          Alcotest.test_case "fp ops" `Quick test_fp_ops;
          Alcotest.test_case "fp inverse" `Quick test_fp_inverse;
          Alcotest.test_case "fp bit width" `Quick test_fp_bit_width;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval" `Quick test_poly_eval;
          Alcotest.test_case "multiset order invariance" `Quick test_poly_multiset_order_invariance;
          Alcotest.test_case "prefixes" `Quick test_poly_prefixes;
          qtest prop_poly_identity_testing;
        ] );
    ]
