(* dipp-lint: the static DIP-model-compliance analyzer (ANALYSIS.md).

   Fixture snippets check that every rule fires on known-bad code and
   stays quiet on sanctioned idioms; the final test runs the analyzer
   over the real library tree and asserts the gate invariant: zero
   findings. *)

module Lint = Dipp_analysis.Lint_rules
module Report = Dipp_analysis.Report

let rules_of findings = List.sort_uniq String.compare (List.map (fun f -> f.Report.rule) findings)
let lint src = Lint.lint_source ~filename:"fixture.ml" src

let check_fires what rule src =
  Alcotest.(check bool)
    (what ^ ": " ^ rule ^ " fires")
    true
    (List.mem rule (rules_of (lint src)))

let check_clean what src =
  Alcotest.(check (list string)) (what ^ ": no findings") [] (rules_of (lint src))

(* ---- locality audit --------------------------------------------------- *)

let test_locality_traversal () =
  check_fires "fold_edges in verify" "locality-traversal"
    "let verify v = Graph.fold_edges (fun _ acc -> acc + v) g 0 = 0";
  check_fires "edges in a *_check fn" "locality-traversal"
    "let consistency_check v = List.length (Graph.edges g) + v";
  check_fires "iter_edges in decide" "locality-traversal"
    "let decide v = Graph.iter_edges (fun _ -> ()) g; v";
  (* the sanctioned neighbor API is fine, and non-decision functions may
     traverse globally *)
  check_clean "neighbors in verify"
    "let verify v = Array.exists (fun u -> labels.(u) < labels.(v)) (Graph.neighbors g v)";
  check_clean "fold_edges outside decision fns"
    "let count_all g = Graph.fold_edges (fun _ acc -> acc + 1) g 0"

let test_locality_index () =
  check_fires "captured global node id" "locality-index"
    "let verify v = labels.(leftmost_node) = labels.(v)";
  check_fires "captured id in arithmetic" "locality-index"
    "let decide v = coins.(root + 1) + v";
  check_fires "outer function computes the index" "locality-index"
    "let verify v = labels.(pick ()) = labels.(v)";
  (* ...but indices built from parameters, bound neighbors, nested
     sanctioned reads, constants and operators are local *)
  check_clean "parameter and neighbor indices"
    "let verify v =\n\
    \  let ok = ref true in\n\
    \  Array.iter (fun u -> if labels.(u) > labels.(v) + 1 then ok := false) (Graph.neighbors g v);\n\
    \  (match parents.(v) with p -> if labels.(p) land 1 <> 0 then ok := false);\n\
    \  !ok";
  check_clean "nested read rooted at the node"
    "let verify v = labels.(parent.(v)) - labels.(v)"

let test_locality_containers () =
  check_fires "Bytes.get with captured index" "locality-index"
    "let verify v = Bytes.get buf global_pos";
  check_fires "Array.unsafe_get with captured index" "locality-index"
    "let verify v = Array.unsafe_get labels hub = v";
  check_fires "Hashtbl.find-backed label store" "locality-index"
    "let decide v = Hashtbl.find tbl root_id + v";
  check_clean "Hashtbl keyed by the node" "let verify v = Hashtbl.mem tbl v"

(* ---- typed information-flow (flow-locality) --------------------------- *)

let test_flow_locality () =
  (* The laundering hole the syntactic rule concedes: a non-local node id
     parked in a local slot.  The flow rule must catch it AND the
     syntactic rule must (still) miss it — that asymmetry is the point. *)
  let launder =
    "let verify v =\n\
    \  let slot = Array.make 1 0 in\n\
    \  slot.(0) <- leftmost_node;\n\
    \  labels.(slot.(0)) = labels.(v)"
  in
  check_fires "array-slot laundering" "flow-locality" launder;
  Alcotest.(check bool)
    "syntactic locality-index provably misses the laundering" false
    (List.mem "locality-index" (rules_of (lint launder)));
  check_fires "ref laundering" "flow-locality"
    "let decide v =\n  let r = ref 0 in\n  r := hidden;\n  labels.(!r) + v";
  check_fires "laundering through a local helper" "flow-locality"
    "let verify v =\n  let pick () = leftmost_node in\n  labels.(pick ()) = labels.(v)";
  check_clean "neighbor-derived indices stay clean"
    "let verify v = Array.for_all (fun u -> labels.(u) <= labels.(v)) (Graph.neighbors g v)";
  check_clean "local arithmetic stays clean"
    "let decide v =\n  let slot = Array.make 1 0 in\n  slot.(0) <- v + 1;\n  labels.(slot.(0))"

(* ---- static budget verification --------------------------------------- *)

(* Budget fixtures lint under a registered protocol's filename so the
   registry row (lr_sorting: 5 rounds, P-V-P-V-P) applies. *)
let lint_as filename src = Lint.lint_source ~filename src

let budget_fires what filename src =
  Alcotest.(check bool) (what ^ ": budget fires") true
    (List.mem "budget" (rules_of (lint_as filename src)))

let budget_quiet what filename src =
  Alcotest.(check bool) (what ^ ": budget quiet") false
    (List.mem "budget" (rules_of (lint_as filename src)))

let test_budget () =
  budget_fires "truncated schedule" "lr_sorting.ml"
    "let run meter x =\n\
    \  Dip.record_prover meter x;\n\
    \  Dip.record_verifier meter x;\n\
    \  x";
  budget_fires "phase recorded in a closure" "lr_sorting.ml"
    "let run meter xs =\n\
    \  Dip.record_prover meter xs;\n\
    \  List.iter (fun x -> Dip.record_verifier meter x) xs";
  budget_fires "schedule overrun" "lr_sorting.ml"
    "let run meter x =\n\
    \  Dip.record_prover meter x;\n\
    \  Dip.record_verifier meter x;\n\
    \  Dip.record_prover meter x;\n\
    \  Dip.record_verifier meter x;\n\
    \  Dip.record_prover meter x;\n\
    \  Dip.record_verifier meter x;\n\
    \  x";
  budget_quiet "exact five-round schedule" "lr_sorting.ml"
    "let run meter x =\n\
    \  Dip.record_prover meter x;\n\
    \  Dip.record_verifier meter x;\n\
    \  Dip.record_prover meter x;\n\
    \  Dip.record_verifier meter x;\n\
    \  Dip.record_prover meter x;\n\
    \  x";
  (* branches: one arm realizing the declared schedule is enough, but
     every arm must stay within it *)
  budget_quiet "optional trailing rounds in a branch" "lr_sorting.ml"
    "let run meter x =\n\
    \  Dip.record_prover meter x;\n\
    \  Dip.record_verifier meter x;\n\
    \  Dip.record_prover meter x;\n\
    \  if x > 0 then begin\n\
    \    Dip.record_verifier meter x;\n\
    \    Dip.record_prover meter x\n\
    \  end";
  (* a recording protocol under lib/protocols must have a registry row;
     the same module under lib/dip is an exempt building block *)
  budget_fires "undeclared protocol" "protocols/mystery.ml"
    "let run meter x = Dip.record_prover meter x";
  budget_quiet "lib/dip building blocks exempt" "dip/mystery.ml"
    "let run meter x = Dip.record_prover meter x";
  budget_quiet "non-run functions ignored" "lr_sorting.ml"
    "let helper meter x = Dip.record_prover meter x"

(* ---- the CLI: exit codes and formats ---------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let run_cli args =
  let buf = Buffer.create 256 and ebuf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf and err = Format.formatter_of_buffer ebuf in
  let code = Dipp_analysis.Cli.run ~out ~err (Array.of_list ("dipp_lint" :: args)) in
  Format.pp_print_flush out ();
  Format.pp_print_flush err ();
  (code, Buffer.contents buf, Buffer.contents ebuf)

(* ---- rng discipline --------------------------------------------------- *)

let test_rng () =
  check_fires "Random.int" "rng" "let draw () = Random.int 10";
  check_fires "Random.State" "rng" "let draw st = Random.State.bool st";
  check_clean "Rng wrapper is sanctioned" "let draw rng = Rng.int rng 10";
  (* the one module allowed to touch Random is the seeded wrapper itself *)
  Alcotest.(check (list string))
    "Random allowed inside lib/util/rng.ml" []
    (rules_of (Lint.lint_source ~filename:"lib/util/rng.ml" "let raw () = Random.bits ()"));
  (* a module-level stream is Domain-shared mutable state: the engine's
     determinism contract requires per-trial streams derived inside the
     worker, never a global one raced over by the pool *)
  check_fires "toplevel Rng.create" "rng"
    "let shared = Rng.create 42\nlet draw () = Rng.int shared 10";
  check_fires "toplevel Rng.split" "rng" "let worker = Rng.split base 3";
  check_fires "toplevel Rng.split_string" "rng" "let stream = Rng.split_string root \"e2\"";
  check_clean "per-call stream is sanctioned"
    "let fresh seed = let rng = Rng.create seed in Rng.int rng 10";
  check_clean "per-trial split inside the worker"
    "let trial spec_rng i = let rng = Rng.split spec_rng i in Rng.int rng 10";
  Alcotest.(check (list string))
    "toplevel stream allowed inside lib/util/rng.ml" []
    (rules_of (Lint.lint_source ~filename:"lib/util/rng.ml" "let default = Rng.create 0"))

(* ---- hygiene ---------------------------------------------------------- *)

let test_obj_magic () =
  check_fires "Obj.magic" "obj-magic" "let cast x = Obj.magic x";
  check_fires "Obj.repr" "obj-magic" "let r x = Obj.repr x"

let test_poly_compare () =
  check_fires "deref vs list literal" "poly-compare" "let empty r = !r = []";
  check_fires "record literal" "poly-compare" "let z s = s = { accepted = true }";
  check_fires "bare compare" "poly-compare" "let sort l = List.sort compare l";
  check_fires "Stdlib.compare" "poly-compare" "let sort l = List.sort Stdlib.compare l";
  check_fires "structural = on Bits" "poly-compare" "let eq a b = Bits.concat a = Bits.concat b";
  check_clean "typed comparisons pass"
    "let sort l = List.sort Int.compare l\nlet eq a b = Bits.equal a b\nlet e r = List.is_empty !r";
  check_clean "constant-constructor equality passes" "let is_p ph = ph = Prover_phase"

let test_partial () =
  check_fires "List.tl" "partial" "let rest l = List.tl l";
  check_fires "List.combine" "partial" "let zip a b = List.combine a b";
  check_fires "Option.get" "partial" "let force o = Option.get o";
  check_clean "pattern matches pass"
    "let rest l = match l with [] -> [] | _ :: t -> t\n\
     let force o = match o with Some x -> x | None -> assert false"

let test_parse_error () =
  check_fires "unparseable source" "parse-error" "let let = ="

(* ---- suppressions ----------------------------------------------------- *)

let test_suppressions () =
  check_clean "same-line allow" "let rest l = List.tl l (* dipp-lint: allow partial *)";
  check_clean "previous-line allow"
    "(* dipp-lint: allow partial *)\nlet rest l = List.tl l";
  check_clean "allow all" "let rest l = List.tl l (* dipp-lint: allow all *)";
  check_clean "several rules"
    "let f l r = ignore (List.tl l); !r = [] (* dipp-lint: allow partial, poly-compare *)";
  (* a suppression for one rule must not silence another *)
  check_fires "allow of other rule keeps finding" "partial"
    "let rest l = List.tl l (* dipp-lint: allow rng *)";
  check_fires "stale line does not cover" "partial"
    "(* dipp-lint: allow partial *)\n\nlet rest l = List.tl l"

let test_suppression_validation () =
  (* a typo'd rule id suppresses nothing — that is its own finding *)
  let typo = "let rest l = List.tl l (* dipp-lint: allow partail *)" in
  check_fires "typo'd id warns" "suppression" typo;
  check_fires "typo'd id leaves the finding live" "partial" typo;
  check_fires "unknown id among known ones warns" "suppression"
    "let rest l = List.tl l (* dipp-lint: allow partial, partail *)";
  check_clean "comma list of known ids is fine"
    "let f l r = ignore (List.tl l); !r = [] (* dipp-lint: allow partial, poly-compare *)";
  check_clean "space list of known ids is fine"
    "let f l r = ignore (List.tl l); !r = [] (* dipp-lint: allow partial poly-compare *)";
  check_clean "allow all is fine" "let rest l = List.tl l (* dipp-lint: allow all *)";
  (* the warning itself cannot be suppressed *)
  check_fires "suppression warning is unsuppressible" "suppression"
    "(* dipp-lint: allow suppression *)\nlet x = 1 (* dipp-lint: allow bogus *)"

(* ---- missing-mli (needs a filesystem) --------------------------------- *)

let with_temp_dir f =
  let dir = Filename.temp_file "dipp_lint_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let write path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let test_missing_mli () =
  with_temp_dir (fun dir ->
      write (Filename.concat dir "naked.ml") "let x = 1\n";
      Alcotest.(check (list string))
        "ml without mli flagged" [ "missing-mli" ]
        (rules_of (Lint.lint_tree dir));
      write (Filename.concat dir "naked.mli") "val x : int\n";
      Alcotest.(check (list string)) "mli added, clean" [] (rules_of (Lint.lint_tree dir)))

let test_cli () =
  with_temp_dir (fun dir ->
      let clean = Filename.concat dir "clean.ml" in
      write clean "let x = 1\n";
      write (Filename.concat dir "clean.mli") "val x : int\n";
      let code, out, _ = run_cli [ clean ] in
      Alcotest.(check int) "clean file exits 0" 0 code;
      Alcotest.(check bool) "clean run says so" true (contains out "no findings");
      let dirty = Filename.concat dir "dirty.ml" in
      write dirty "let rest l = List.tl l\n";
      write (Filename.concat dir "dirty.mli") "val rest : 'a list -> 'a list\n";
      let code, out, _ = run_cli [ dirty ] in
      Alcotest.(check int) "findings exit 1" 1 code;
      Alcotest.(check bool) "text format names the rule" true (contains out "[partial]");
      let code, _, err = run_cli [ "--rules"; "no-such-rule"; clean ] in
      Alcotest.(check int) "unknown rule exits 2" 2 code;
      Alcotest.(check bool) "usage error on stderr" true (contains err "unknown rule");
      let code, _, err = run_cli [ Filename.concat dir "absent.ml" ] in
      Alcotest.(check int) "missing path exits 2" 2 code;
      Alcotest.(check bool) "missing path reported" true (contains err "no such path");
      let code, out, _ = run_cli [ "--list-rules" ] in
      Alcotest.(check int) "--list-rules exits 0" 0 code;
      Alcotest.(check bool) "catalogue includes flow-locality" true (contains out "flow-locality");
      Alcotest.(check bool) "catalogue includes budget" true (contains out "budget");
      let code, out, _ = run_cli [ "--format"; "json"; dirty ] in
      Alcotest.(check int) "json format keeps exit 1" 1 code;
      Alcotest.(check bool) "json carries the rule field" true
        (contains out "\"rule\": \"partial\"");
      let code, out, _ = run_cli [ "--format"; "sarif"; dirty ] in
      Alcotest.(check int) "sarif format keeps exit 1" 1 code;
      Alcotest.(check bool) "sarif schema stamped" true (contains out "sarif-2.1.0");
      Alcotest.(check bool) "sarif result present" true (contains out "\"ruleId\": \"partial\""))

(* ---- the gate: the real tree is clean --------------------------------- *)

let locate_lib () =
  List.find_opt
    (fun dir -> Sys.file_exists (Filename.concat dir "dip/dip.ml"))
    [ "../lib"; "lib"; "../../lib"; "../../../lib" ]

let test_tree_clean () =
  match locate_lib () with
  | None -> Alcotest.fail "cannot locate lib/ from the test working directory"
  | Some dir ->
      let findings = Lint.lint_tree dir in
      Alcotest.(check (list string))
        "lib/ tree has zero lint findings"
        []
        (List.map (Format.asprintf "%a" Report.pp) findings)

let () =
  Alcotest.run "lint"
    [
      ( "locality",
        [
          Alcotest.test_case "global traversal" `Quick test_locality_traversal;
          Alcotest.test_case "non-local index" `Quick test_locality_index;
          Alcotest.test_case "container coverage" `Quick test_locality_containers;
        ] );
      ("flow", [ Alcotest.test_case "taint laundering" `Quick test_flow_locality ]);
      ("budget", [ Alcotest.test_case "static schedules" `Quick test_budget ]);
      ( "hygiene",
        [
          Alcotest.test_case "rng discipline" `Quick test_rng;
          Alcotest.test_case "obj magic" `Quick test_obj_magic;
          Alcotest.test_case "poly compare" `Quick test_poly_compare;
          Alcotest.test_case "partial stdlib" `Quick test_partial;
          Alcotest.test_case "parse error" `Quick test_parse_error;
        ] );
      ( "suppressions",
        [
          Alcotest.test_case "allow comments" `Quick test_suppressions;
          Alcotest.test_case "unknown ids warn" `Quick test_suppression_validation;
        ] );
      ("interfaces", [ Alcotest.test_case "missing mli" `Quick test_missing_mli ]);
      ("cli", [ Alcotest.test_case "exit codes and formats" `Quick test_cli ]);
      ("gate", [ Alcotest.test_case "lib tree is clean" `Quick test_tree_clean ]);
    ]
