(* The declared-bounds registry (lib/protocols/bounds.ml) and the
   runtime budget checker (Dip.check_budget): registry self-consistency,
   the checker's four violation classes, and — the claim that matters —
   every protocol's honest run fits its declared theorem row. *)

let pp_violation = Format.asprintf "%a" Dip.pp_budget_violation

let check_within name ~id ~n ~delta (stats : Dip.stats) =
  match Bounds.find id with
  | None -> Alcotest.fail ("no registry row for " ^ id)
  | Some row ->
      let b = Bounds.budget row ~n ~delta in
      Alcotest.(check (list string))
        (name ^ ": honest run within declared budget")
        []
        (List.map pp_violation (Dip.check_budget b stats))

(* ---- registry shape --------------------------------------------------- *)

let test_registry () =
  Alcotest.(check bool) "registry is non-empty" true (List.length Bounds.rows >= 10);
  List.iter
    (fun (r : Bounds.row) ->
      Alcotest.(check int)
        (r.Bounds.id ^ ": rounds equal schedule length")
        r.Bounds.rounds
        (List.length r.Bounds.schedule))
    Bounds.rows;
  let ids = List.map (fun (r : Bounds.row) -> r.Bounds.id) Bounds.rows in
  Alcotest.(check int) "ids are unique" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  Alcotest.(check bool) "find hits" true
    (match Bounds.find "lr_sorting" with Some _ -> true | None -> false);
  Alcotest.(check bool) "find misses cleanly" true
    (match Bounds.find "no_such_protocol" with None -> true | Some _ -> false);
  (* every five-round theorem row claims the paper's P-V-P-V-P *)
  List.iter
    (fun (r : Bounds.row) ->
      if r.Bounds.rounds = 5 then
        Alcotest.(check string)
          (r.Bounds.id ^ ": five-round schedule is P-V-P-V-P")
          "P-V-P-V-P"
          (Format.asprintf "%a" Dip.pp_phases r.Bounds.schedule))
    Bounds.rows

(* ---- checker mechanics ------------------------------------------------ *)

let stats_of ~phases ~proof =
  {
    Dip.interaction_rounds = List.length phases;
    proof_size_bits = proof;
    max_node_total_bits = proof;
    total_prover_bits = proof;
    total_verifier_bits = 0;
    phases;
    per_phase = List.map (fun ph -> (ph, proof)) phases;
  }

let test_checker () =
  let p = Dip.Prover_phase and v = Dip.Verifier_phase in
  let b =
    {
      Dip.budget_rounds = 5;
      budget_schedule = [ p; v; p; v; p ];
      budget_proof_bits = 100;
      budget_floor_bits = 0;
    }
  in
  Alcotest.(check (list string))
    "conforming stats pass" []
    (List.map pp_violation (Dip.check_budget b (stats_of ~phases:[ p; v; p; v; p ] ~proof:80)));
  Alcotest.(check (list string))
    "measured prefix of claimed schedule passes" []
    (List.map pp_violation (Dip.check_budget b (stats_of ~phases:[ p; v; p ] ~proof:80)));
  let has pred stats =
    List.exists pred (Dip.check_budget b stats)
  in
  Alcotest.(check bool) "round overrun detected" true
    (has
       (function Dip.Rounds_exceeded _ -> true | _ -> false)
       (stats_of ~phases:[ p; v; p; v; p; v ] ~proof:80));
  Alcotest.(check bool) "schedule mismatch detected" true
    (has
       (function Dip.Schedule_mismatch _ -> true | _ -> false)
       (stats_of ~phases:[ v; p; v ] ~proof:80));
  Alcotest.(check bool) "proof-size overrun detected" true
    (has
       (function Dip.Proof_size_exceeded _ -> true | _ -> false)
       (stats_of ~phases:[ p; v; p; v; p ] ~proof:101));
  let floored = { b with Dip.budget_rounds = 1; budget_schedule = [ p ]; budget_floor_bits = 9 } in
  Alcotest.(check bool) "Theorem 1.8 floor enforced" true
    (List.exists
       (function Dip.Proof_size_below_floor _ -> true | _ -> false)
       (Dip.check_budget floored (stats_of ~phases:[ p ] ~proof:8)))

(* ---- every protocol fits its theorem row ------------------------------ *)

let test_protocols_within_budget () =
  let n = 512 in
  let path, arcs = Gen.lr_yes ~n 7 in
  let inst = { Lr_sorting.n; path; arcs } in
  let lr = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest inst in
  check_within "Lemma 4.1 lr_sorting" ~id:"lr_sorting" ~n ~delta:2 lr.Lr_sorting.stats;
  let pls_lr = Pls_lr_sorting.run inst in
  check_within "PLS lr_sorting" ~id:"pls_lr_sorting" ~n ~delta:2 pls_lr.Pls_lr_sorting.stats;

  let g, w = Gen.path_outerplanar ~n:256 11 in
  let po =
    Path_outerplanarity.run ~seed:2 ~prover:Path_outerplanarity.Honest
      { Path_outerplanarity.graph = g; witness = Some w }
  in
  check_within "Theorem 1.2 path_outerplanarity" ~id:"path_outerplanarity" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) po.Path_outerplanarity.stats;
  let pls_po = Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w } in
  check_within "PLS path_outerplanar" ~id:"pls_path_outerplanar" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) pls_po.Pls_path_outerplanar.stats;

  let g = Gen.outerplanar ~blocks:4 3 in
  let op = Outerplanarity.run ~seed:1 ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
  check_within "Theorem 1.3 outerplanarity" ~id:"outerplanarity" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) op.Outerplanarity.stats;

  let g = Gen.planar ~n:64 5 in
  let rot = match Gen.embedding g with Some r -> r | None -> Alcotest.fail "no embedding" in
  let pe =
    Planar_embedding.run ~seed:1 ~prover:Planar_embedding.Honest
      { Planar_embedding.graph = g; rot }
  in
  check_within "Theorem 1.4 planar_embedding" ~id:"planar_embedding" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) pe.Planar_embedding.stats;

  let g = Gen.planar ~n:64 1 in
  let pl = Planarity.run ~seed:1 ~prover:Planarity.Honest { Planarity.graph = g } in
  check_within "Theorem 1.5 planarity" ~id:"planarity" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) pl.Planarity.stats;

  let tr, g = Gen.series_parallel ~size:32 3 in
  let sp =
    Series_parallel_dip.run ~seed:1 ~prover:Series_parallel_dip.Honest
      { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
  in
  check_within "Theorem 1.6 series_parallel" ~id:"series_parallel_dip" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) sp.Series_parallel_dip.stats;

  let g = Gen.treewidth2 ~blocks:4 3 in
  let tw = Treewidth2_dip.run ~seed:1 ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
  check_within "Theorem 1.7 treewidth2" ~id:"treewidth2_dip" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) tw.Treewidth2_dip.stats;

  let g = Gen.planar ~n:256 1 in
  let parent = Traversal.spanning_tree g 0 in
  let parent = Array.mapi (fun v pv -> if pv = v then -1 else pv) parent in
  let st = Pls_spanning_tree.run g ~parent in
  check_within "PLS spanning tree" ~id:"pls_spanning_tree" ~n:(Graph.n g)
    ~delta:(Graph.max_degree g) st.Pls_spanning_tree.stats

let () =
  Alcotest.run "bounds"
    [
      ("registry", [ Alcotest.test_case "theorem rows" `Quick test_registry ]);
      ("checker", [ Alcotest.test_case "violation classes" `Quick test_checker ]);
      ( "protocols",
        [ Alcotest.test_case "honest runs within budget" `Quick test_protocols_within_budget ] );
    ]
