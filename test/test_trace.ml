(* The transcript subsystem: codec roundtrip, record/replay on both
   runtimes for every corpus family, tamper detection, the committed
   golden corpus, and label-cache byte-identity. *)

let qtest = QCheck_alcotest.to_alcotest

let corpus_seed = 7
(* the committed corpus (test/golden/trace/) is recorded with this seed *)

let entry id = Option.get (Trace_registry.find id)

(* ---- codec ----------------------------------------------------------- *)

let roundtrip t = Trace.of_string (Trace.to_string t)

let test_codec_roundtrip () =
  List.iter
    (fun id ->
      let t = Trace_registry.record (entry id) ~seed:corpus_seed in
      let t' = roundtrip t in
      Alcotest.(check bool) (id ^ " roundtrip equal") true (Trace.equal t t');
      Alcotest.(check string) (id ^ " digest stable") (Trace.digest t) (Trace.digest t'))
    [ "E1"; "E4" ]

let prop_codec_roundtrip_random =
  (* synthetic traces with random frames exercise width/padding corners the
     corpus cannot *)
  QCheck.Test.make ~name:"trace: to_string/of_string roundtrip on random traces" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 6))
    (fun (seed, rounds) ->
      let rng = Rng.create seed in
      let n = 1 + Rng.int rng 12 in
      let frames =
        List.init rounds (fun r ->
            ( (if r mod 2 = 0 then Dip.Prover_phase else Dip.Verifier_phase),
              Array.init n (fun _ -> Bits.random rng (Rng.int rng 40)) ))
      in
      let meter = Dip.meter () in
      List.iter
        (fun (ph, arr) ->
          match ph with
          | Dip.Prover_phase -> Dip.record_prover meter arr
          | Dip.Verifier_phase -> Dip.record_verifier meter arr)
        frames;
      let t =
        {
          Trace.experiment = "QT";
          protocol = "synthetic";
          runtime = (if seed mod 2 = 0 then Trace.Dip_runtime else Trace.Net_runtime);
          recipe = Printf.sprintf "random seed=%d" seed;
          graph_digest = Trace.graph_digest (Graph.path_graph (max 2 n));
          seed;
          n;
          stats = Dip.stats meter;
          frames;
          verdicts = Array.init n (fun _ -> Rng.bool rng);
        }
      in
      Trace.equal t (roundtrip t))

let test_tamper_detection () =
  let t = Trace_registry.record (entry "E1") ~seed:corpus_seed in
  let s = Bytes.of_string (Trace.to_string t) in
  (* flip a low (data, not padding) bit in the middle of the file — inside
     the frame section, which the content digest covers *)
  let pos = Bytes.length s / 2 in
  Bytes.set s pos (Char.chr (Char.code (Bytes.get s pos) lxor 1));
  Alcotest.(check bool) "tampered trace rejected" true
    (try
       ignore (Trace.of_string (Bytes.to_string s));
       false
     with Invalid_argument msg ->
       let has sub =
         let n = String.length msg and m = String.length sub in
         let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
         go 0
       in
       has "digest mismatch" || has "Trace:")

let test_bad_magic () =
  Alcotest.check_raises "bad magic"
    (Invalid_argument "Trace: bad magic (not a \"DIPP-TRACE 1\" file)") (fun () ->
      ignore (Trace.of_string "not a trace at all"))

let test_truncation () =
  let t = Trace_registry.record (entry "E1") ~seed:corpus_seed in
  let s = Trace.to_string t in
  let cut = String.sub s 0 (String.length s / 2) in
  Alcotest.(check bool) "truncated trace rejected" true
    (try
       ignore (Trace.of_string cut);
       false
     with Invalid_argument _ -> true)

let test_diff_reports_divergence () =
  let a = Trace_registry.record (entry "E1") ~seed:corpus_seed in
  let b = Trace_registry.record (entry "E1") ~seed:(corpus_seed + 1) in
  Alcotest.(check bool) "same trace: no diff" true (Trace.diff a (roundtrip a) = None);
  Alcotest.(check bool) "different seed: diff" true (Trace.diff a b <> None)

(* ---- record/replay, both runtimes, all families ----------------------- *)

let test_record_replay_dip () =
  List.iter
    (fun (e : Trace_registry.entry) ->
      let t = Trace_registry.record e ~seed:corpus_seed in
      Alcotest.(check bool) (e.Trace_registry.id ^ " honest run accepts") true
        (Trace.verdict_of t).Dip.accepted;
      match Trace_registry.replay t with
      | Ok r ->
          Alcotest.(check bool)
            (e.Trace_registry.id ^ " replay verdict matches")
            true r.Trace_registry.verdict.Dip.accepted
      | Error msg -> Alcotest.fail (e.Trace_registry.id ^ ": " ^ msg))
    Trace_registry.entries

let test_record_replay_net () =
  List.iter
    (fun (e : Trace_registry.entry) ->
      let t = Trace_registry.record ~runtime:Trace.Net_runtime e ~seed:corpus_seed in
      Alcotest.(check bool) (e.Trace_registry.id ^ " net honest run accepts") true
        (Trace.verdict_of t).Dip.accepted;
      match Trace_registry.replay t with
      | Ok r ->
          Alcotest.(check string)
            (e.Trace_registry.id ^ " net replay is decision-only")
            "decision-only (net)" r.Trace_registry.mode
      | Error msg -> Alcotest.fail (e.Trace_registry.id ^ " net: " ^ msg))
    Trace_registry.entries

let test_decision_replay_modes () =
  let t1 = Trace_registry.record (entry "E1") ~seed:corpus_seed in
  (match Trace_registry.replay t1 with
  | Ok r -> Alcotest.(check string) "E1 decision-only" "decision-only" r.Trace_registry.mode
  | Error msg -> Alcotest.fail msg);
  let t3 = Trace_registry.record (entry "E3") ~seed:corpus_seed in
  match Trace_registry.replay t3 with
  | Ok r -> Alcotest.(check string) "E3 re-execution" "re-execution" r.Trace_registry.mode
  | Error msg -> Alcotest.fail msg

let test_replay_rejects_forged_frames () =
  (* a forged verdict bit must be caught by replay even when the file-level
     digest is recomputed to match (an attacker rewriting the whole file) *)
  let t = Trace_registry.record (entry "E1") ~seed:corpus_seed in
  let forged = { t with Trace.verdicts = Array.map not t.Trace.verdicts } in
  (match Trace_registry.replay forged with
  | Ok _ -> Alcotest.fail "forged verdicts replayed clean"
  | Error _ -> ());
  (* and a frame swap: drop the last round *)
  match t.Trace.frames with
  | [] -> Alcotest.fail "no frames"
  | _ :: rest -> (
      let cut = { t with Trace.frames = rest } in
      match Trace_registry.replay cut with
      | Ok _ -> Alcotest.fail "frame-dropped trace replayed clean"
      | Error _ -> ())

let test_lr_decision_replay_catches_bit_flip () =
  let t = Trace_registry.record (entry "E2") ~seed:corpus_seed in
  (* flip a bit of some round-1 node label: the strict decoders or the
     re-run decisions must notice *)
  let frames =
    List.mapi
      (fun i (ph, arr) ->
        if i <> 0 then (ph, arr)
        else begin
          let arr = Array.copy arr in
          let v = Array.length arr / 2 in
          let b = arr.(v) in
          if Bits.length b = 0 then (ph, arr)
          else begin
            let s = Bytes.of_string (Bits.to_string b) in
            Bytes.set s 0 (if Bytes.get s 0 = '0' then '1' else '0');
            arr.(v) <- Bits.of_string (Bytes.to_string s);
            (ph, arr)
          end
        end)
      t.Trace.frames
  in
  let flipped = { t with Trace.frames } in
  match Trace_registry.replay flipped with
  | Ok r ->
      (* the flip may land in a field no check reads for this verdict to
         flip — but then the verdict comparison still passed legitimately;
         require at least that replay did not silently accept a *changed*
         verdict *)
      Alcotest.(check bool) "verdict still matches recording" true
        (Trace_registry.(r.verdict).Dip.accepted = (Trace.verdict_of t).Dip.accepted)
  | Error _ -> ()

(* ---- the committed golden corpus -------------------------------------- *)

let corpus_dir = "golden/trace"

let manifest () =
  let path = Filename.concat corpus_dir "MANIFEST" in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  List.filter_map
    (fun l ->
      match String.split_on_char ' ' (String.trim l) with
      | [ file; digest ] -> Some (file, digest)
      | _ -> None)
    (List.rev !lines)

let test_corpus_replays () =
  let files = manifest () in
  Alcotest.(check int) "16 corpus traces (8 families x 2 runtimes)" 16 (List.length files);
  List.iter
    (fun (file, digest) ->
      let t = Trace.of_file (Filename.concat corpus_dir file) in
      Alcotest.(check string) (file ^ " digest matches manifest") digest (Trace.digest t);
      match Trace_registry.replay t with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail (file ^ ": " ^ msg))
    files

let test_corpus_is_current_recording () =
  (* recording today must reproduce the committed bytes — the determinism
     contract extended to transcripts *)
  List.iter
    (fun (e : Trace_registry.entry) ->
      let id = e.Trace_registry.id in
      let committed = Trace.of_file (Filename.concat corpus_dir (id ^ ".trace")) in
      let fresh = Trace_registry.record e ~seed:corpus_seed in
      (match Trace.diff committed fresh with
      | None -> ()
      | Some d -> Alcotest.fail (id ^ ".trace drifted: " ^ d));
      let committed_net = Trace.of_file (Filename.concat corpus_dir (id ^ ".net.trace")) in
      let fresh_net = Trace_registry.record ~runtime:Trace.Net_runtime e ~seed:corpus_seed in
      match Trace.diff committed_net fresh_net with
      | None -> ()
      | Some d -> Alcotest.fail (id ^ ".net.trace drifted: " ^ d))
    Trace_registry.entries

(* ---- label cache ------------------------------------------------------ *)

let test_cache_hit_returns_identical_outcome () =
  Label_cache.reset ();
  let path, arcs = Gen.lr_yes ~n:100 3 in
  let inst = { Lr_sorting.n = 100; path; arcs } in
  let key = Label_cache.key ~protocol:"lr_sorting" ~instance:(Label_cache.lr_key inst) ~seed:5 in
  let run () =
    let r = Lr_sorting.run ~seed:5 ~prover:Lr_sorting.Honest inst in
    (r.Lr_sorting.verdict, r.Lr_sorting.stats)
  in
  let v1, s1 = Label_cache.find_or_run ~key run in
  let v2, s2 = Label_cache.find_or_run ~key run in
  Alcotest.(check bool) "verdicts identical" true (v1 = v2);
  Alcotest.(check bool) "stats identical" true (s1 = s2);
  let h, m = Label_cache.stats () in
  Alcotest.(check int) "one hit" 1 h;
  Alcotest.(check int) "one miss" 1 m;
  Alcotest.(check bool) "hit rate 50%" true (abs_float (Label_cache.hit_rate () -. 0.5) < 1e-9)

let test_cache_key_separates () =
  let path, arcs = Gen.lr_yes ~n:60 3 in
  let inst = { Lr_sorting.n = 60; path; arcs } in
  let k1 = Label_cache.key ~protocol:"lr_sorting" ~instance:(Label_cache.lr_key inst) ~seed:5 in
  let k2 = Label_cache.key ~protocol:"lr_sorting" ~instance:(Label_cache.lr_key inst) ~seed:6 in
  let k3 = Label_cache.key ~protocol:"other" ~instance:(Label_cache.lr_key inst) ~seed:5 in
  Alcotest.(check bool) "seed separates" true (k1 <> k2);
  Alcotest.(check bool) "protocol separates" true (k1 <> k3);
  (* arc orientation must separate lr instances even when the underlying
     undirected graph is identical *)
  match inst.Lr_sorting.arcs with
  | (u, v) :: rest ->
      let flipped = { inst with Lr_sorting.arcs = (v, u) :: rest } in
      Alcotest.(check bool) "arc orientation separates" true
        (Label_cache.lr_key inst <> Label_cache.lr_key flipped)
  | [] -> Alcotest.fail "instance has no arcs"

let test_engine_report_identical_with_and_without_cache () =
  (* the pooled completeness specs exercise the cache; the emitted report
     must be byte-identical either way, with a nonzero hit rate when on *)
  let specs =
    List.filter
      (fun s -> s.Engine.Spec.adversary = "honest-pooled")
      Soundness.specs
  in
  Alcotest.(check bool) "pooled completeness specs exist" true (List.length specs >= 2);
  let specs = [ List.hd specs ] in
  Label_cache.reset ();
  let r1 = Engine.run_all ~jobs:2 ~seed:42 specs in
  let with_cache = Engine.report_string ~seed:42 r1 in
  let h, _ = Label_cache.stats () in
  Alcotest.(check bool) "cache hits occurred" true (h > 0);
  Label_cache.reset ();
  Unix.putenv "DIPP_LABEL_CACHE" "0";
  let r2 = Engine.run_all ~jobs:2 ~seed:42 specs in
  let without_cache = Engine.report_string ~seed:42 r2 in
  Unix.putenv "DIPP_LABEL_CACHE" "1";
  let h0, m0 = Label_cache.stats () in
  Alcotest.(check int) "disabled cache records nothing" 0 (h0 + m0);
  Alcotest.(check string) "byte-identical report" with_cache without_cache

let () =
  Alcotest.run "trace"
    [
      ( "codec",
        [
          Alcotest.test_case "corpus roundtrip" `Quick test_codec_roundtrip;
          qtest prop_codec_roundtrip_random;
          Alcotest.test_case "tamper detection" `Quick test_tamper_detection;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "diff" `Quick test_diff_reports_divergence;
        ] );
      ( "record-replay",
        [
          Alcotest.test_case "dip runtime, all families" `Slow test_record_replay_dip;
          Alcotest.test_case "net runtime, all families" `Slow test_record_replay_net;
          Alcotest.test_case "replay modes" `Quick test_decision_replay_modes;
          Alcotest.test_case "forged traces rejected" `Quick test_replay_rejects_forged_frames;
          Alcotest.test_case "lr bit-flip" `Quick test_lr_decision_replay_catches_bit_flip;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "manifest replays" `Slow test_corpus_replays;
          Alcotest.test_case "recording is current" `Slow test_corpus_is_current_recording;
        ] );
      ( "label-cache",
        [
          Alcotest.test_case "hit returns identical outcome" `Quick
            test_cache_hit_returns_identical_outcome;
          Alcotest.test_case "key separation" `Quick test_cache_key_separates;
          Alcotest.test_case "engine report cache-invariant" `Slow
            test_engine_report_identical_with_and_without_cache;
        ] );
    ]
