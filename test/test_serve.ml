(* The batched verification service and its flat label codec: differential
   flat-vs-checked equality (QCheck programs, envelope widths, the pinned
   transcript corpus, full serve streams), response-log determinism across
   DIPP_JOBS and cache settings against the committed golden stream,
   malformed-request rejection, and the prepared-instance cache's
   schedule-independent eviction boundary. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- flat codec vs checked Writer/Reader ------------------------------ *)

(* a random "program" of int fields; both serializers must agree bit for
   bit, and both decoders must read the same values back *)
let field_program =
  QCheck.(
    list_of_size Gen.(int_range 1 24)
      (pair (int_range 0 62) (map abs int)))

let values_of fields = List.map (fun (w, v) -> (w, if w = 0 then 0 else v land ((1 lsl w) - 1))) fields

let prop_flat_encoder_matches_writer =
  QCheck.Test.make ~name:"serve: flat encoder agrees with Bits.Writer" ~count:200 field_program
    (fun fields ->
      let fields = values_of fields in
      let w = Bits.Writer.create () in
      List.iter (fun (width, v) -> Bits.Writer.int w ~width v) fields;
      let checked = Bits.Writer.contents w in
      let e = Bits_flat.Enc.create 16 in
      List.iter (fun (width, v) -> Bits_flat.Enc.int e ~width v) fields;
      Bits.equal checked (Bits_flat.Enc.to_bits e))

let prop_flat_decoder_matches_reader =
  QCheck.Test.make ~name:"serve: flat decoder agrees with Bits.Reader" ~count:200 field_program
    (fun fields ->
      let fields = values_of fields in
      let w = Bits.Writer.create () in
      List.iter (fun (width, v) -> Bits.Writer.int w ~width v) fields;
      let b = Bits.Writer.contents w in
      let r = Bits.Reader.of_bits b in
      let d = Bits_flat.Dec.of_bits b in
      List.for_all
        (fun (width, v) ->
          let rv = Bits.Reader.int r ~width and dv = Bits_flat.Dec.int d ~width in
          rv = v && dv = v)
        fields
      && Bits.Reader.remaining r = 0
      && Bits_flat.Dec.remaining d = 0)

let prop_flat_reset_reuse =
  (* reuse after reset must not leak bits from the previous encoding *)
  QCheck.Test.make ~name:"serve: flat encoder reset reuses the buffer cleanly" ~count:100
    QCheck.(pair field_program field_program)
    (fun (a, b) ->
      let a = values_of a and b = values_of b in
      let encode_fresh fields =
        let e = Bits_flat.Enc.create 16 in
        List.iter (fun (width, v) -> Bits_flat.Enc.int e ~width v) fields;
        Bits_flat.Enc.to_bits e
      in
      let e = Bits_flat.Enc.create 16 in
      List.iter (fun (width, v) -> Bits_flat.Enc.int e ~width v) a;
      ignore (Bits_flat.Enc.to_bits e);
      Bits_flat.Enc.reset e;
      List.iter (fun (width, v) -> Bits_flat.Enc.int e ~width v) b;
      Bits.equal (encode_fresh b) (Bits_flat.Enc.to_bits e))

let test_envelope_width_roundtrips () =
  (* the width a label needs to meet each family's registry envelope, at a
     spread of sizes: encode/decode the boundary values at exactly those
     widths through both codecs *)
  let bits_for v =
    let rec go w = if v lsr w = 0 then w else go (w + 1) in
    max 1 (go 0)
  in
  List.iter
    (fun row_id ->
      match Bounds.find row_id with
      | None -> Alcotest.fail ("no bounds row " ^ row_id)
      | Some row ->
          List.iter
            (fun n ->
              let env = Bounds.envelope row ~n ~delta:(max 2 (n - 1)) in
              let width = min 62 (bits_for env) in
              let mask = if width = 62 then max_int else (1 lsl width) - 1 in
              List.iter
                (fun v ->
                  let w = Bits.Writer.create () in
                  Bits.Writer.int w ~width v;
                  let checked = Bits.Writer.contents w in
                  let e = Bits_flat.Enc.create width in
                  Bits_flat.Enc.int e ~width v;
                  Alcotest.(check bool)
                    (Printf.sprintf "%s n=%d width=%d v=%d encodes equal" row_id n width v)
                    true
                    (Bits.equal checked (Bits_flat.Enc.to_bits e));
                  Alcotest.(check int)
                    (Printf.sprintf "%s n=%d width=%d v=%d flat read" row_id n width v)
                    v
                    (Bits_flat.read_int checked ~pos:0 ~width))
                [ 0; 1; env land mask; mask ])
            [ 16; 64; 256; 1024 ])
    [
      "lr_sorting";
      "path_outerplanarity";
      "outerplanarity";
      "planar_embedding";
      "planarity";
      "series_parallel_dip";
      "treewidth2_dip";
    ]

(* ---- flat codec vs the pinned transcript corpus ----------------------- *)

let corpus_seed = 7

let check_frames_equal id (committed : (Dip.phase * Bits.t array) list)
    (flat : (Dip.phase * Bits.t array) list) =
  Alcotest.(check int) (id ^ " frame count") (List.length committed) (List.length flat);
  List.iteri
    (fun i ((ph_c, fr_c), (ph_f, fr_f)) ->
      Alcotest.(check bool) (Printf.sprintf "%s frame %d phase" id i) true (ph_c = ph_f);
      Alcotest.(check int) (Printf.sprintf "%s frame %d arity" id i) (Array.length fr_c)
        (Array.length fr_f);
      Array.iteri
        (fun v b ->
          if not (Bits.equal b fr_f.(v)) then
            Alcotest.fail (Printf.sprintf "%s frame %d label %d differs under the flat codec" id i v))
        fr_c)
    (List.combine committed flat)

let test_flat_matches_corpus_lr () =
  (* E1 = lr_yes n=128 gseed=42 recorded at seed 7: re-running with the
     flat codec must reproduce the committed frames byte for byte *)
  let committed = Trace.of_file "golden/trace/E1.trace" in
  let path, arcs = Gen.lr_yes ~n:128 42 in
  let inst = { Lr_sorting.n = 128; path; arcs } in
  let r =
    Lr_sorting.run ~seed:corpus_seed ~retain:true ~codec:Bits_flat.Flat
      ~prover:Lr_sorting.Honest inst
  in
  check_frames_equal "E1" committed.Trace.frames r.Lr_sorting.transcript;
  Alcotest.(check bool) "E1 verdict" true r.Lr_sorting.verdict.Dip.accepted;
  Alcotest.(check bool) "E1 stats equal" true (committed.Trace.stats = r.Lr_sorting.stats)

let test_flat_matches_corpus_po () =
  (* E3 = path_outerplanar n=200 gseed=11 recorded at seed 7 *)
  let committed = Trace.of_file "golden/trace/E3.trace" in
  let g, w = Gen.path_outerplanar ~n:200 11 in
  let r =
    Path_outerplanarity.run ~seed:corpus_seed ~retain:true ~codec:Bits_flat.Flat
      ~prover:Path_outerplanarity.Honest
      { Path_outerplanarity.graph = g; witness = Some w }
  in
  check_frames_equal "E3" committed.Trace.frames r.Path_outerplanarity.transcript;
  Alcotest.(check bool) "E3 verdict" true r.Path_outerplanarity.verdict.Dip.accepted;
  Alcotest.(check bool) "E3 stats equal" true
    (committed.Trace.stats = r.Path_outerplanarity.stats)

(* the five composite families, each as (trace id, runner): the runner
   re-executes the pinned registry instance under the given codec and
   returns (frames, accepted, stats) *)
let composite_runs =
  [
    ( "E4",
      fun ~codec ~seed ->
        let g = Gen.outerplanar ~blocks:4 3 in
        let r =
          Outerplanarity.run ~seed ~retain:true ~codec ~prover:Outerplanarity.Honest
            { Outerplanarity.graph = g }
        in
        (r.Outerplanarity.transcript, r.Outerplanarity.verdict.Dip.accepted, r.Outerplanarity.stats)
    );
    ( "E5",
      fun ~codec ~seed ->
        let g = Gen.planar ~n:64 5 in
        let rot =
          match Gen.embedding g with
          | Some rot -> rot
          | None -> Alcotest.fail "E5 planar instance has no embedding"
        in
        let r =
          Planar_embedding.run ~seed ~retain:true ~codec ~prover:Planar_embedding.Honest
            { Planar_embedding.graph = g; rot }
        in
        ( r.Planar_embedding.transcript,
          r.Planar_embedding.verdict.Dip.accepted,
          r.Planar_embedding.stats ) );
    ( "E6",
      fun ~codec ~seed ->
        let g = Gen.planar ~n:64 5 in
        let r =
          Planarity.run ~seed ~retain:true ~codec ~prover:Planarity.Honest { Planarity.graph = g }
        in
        (r.Planarity.transcript, r.Planarity.verdict.Dip.accepted, r.Planarity.stats) );
    ( "E7",
      fun ~codec ~seed ->
        let tr, g = Gen.series_parallel ~size:64 3 in
        let ears = Series_parallel.ears_of_sp tr in
        let r =
          Series_parallel_dip.run ~seed ~retain:true ~codec ~prover:Series_parallel_dip.Honest
            { Series_parallel_dip.graph = g; ears = Some ears }
        in
        ( r.Series_parallel_dip.transcript,
          r.Series_parallel_dip.verdict.Dip.accepted,
          r.Series_parallel_dip.stats ) );
    ( "E8",
      fun ~codec ~seed ->
        let g = Gen.treewidth2 ~blocks:4 3 in
        let r =
          Treewidth2_dip.run ~seed ~retain:true ~codec ~prover:Treewidth2_dip.Honest
            { Treewidth2_dip.graph = g }
        in
        (r.Treewidth2_dip.transcript, r.Treewidth2_dip.verdict.Dip.accepted, r.Treewidth2_dip.stats)
    );
  ]

let test_flat_matches_corpus_composites () =
  (* E4-E8: the five newly ported families, re-run under the flat codec
     against the committed frames (seed read back from the trace) *)
  List.iter
    (fun (id, run) ->
      let committed = Trace.of_file ("golden/trace/" ^ id ^ ".trace") in
      let frames, accepted, stats = run ~codec:Bits_flat.Flat ~seed:committed.Trace.seed in
      check_frames_equal id committed.Trace.frames frames;
      Alcotest.(check bool) (id ^ " verdict") true accepted;
      Alcotest.(check bool) (id ^ " stats equal") true (committed.Trace.stats = stats))
    composite_runs

let test_cross_codec_reexecution_composites () =
  (* the composite protocols replay by deterministic re-execution (registry
     semantics): at a fresh seed, a checked run and a flat run must produce
     the same transcript, verdict, and stats *)
  List.iter
    (fun (id, run) ->
      let fc, ac, sc = run ~codec:Bits_flat.Checked ~seed:13 in
      let ff, af, sf = run ~codec:Bits_flat.Flat ~seed:13 in
      check_frames_equal (id ^ " seed=13") fc ff;
      Alcotest.(check bool) (id ^ " verdicts agree") true (ac = af);
      Alcotest.(check bool) (id ^ " stats agree") true (sc = sf))
    composite_runs

let test_flat_replay_cross_codec () =
  (* a transcript recorded under one codec replays under the other *)
  let path, arcs = Gen.lr_yes ~n:96 5 in
  let inst = { Lr_sorting.n = 96; path; arcs } in
  let recorded =
    Lr_sorting.run ~seed:3 ~retain:true ~codec:Bits_flat.Checked ~prover:Lr_sorting.Honest inst
  in
  (match Lr_sorting.replay ~codec:Bits_flat.Flat inst recorded.Lr_sorting.transcript with
  | Ok v -> Alcotest.(check bool) "flat replay of checked recording" true v.Dip.accepted
  | Error e -> Alcotest.fail ("flat replay diverged: " ^ e));
  let recorded_flat =
    Lr_sorting.run ~seed:3 ~retain:true ~codec:Bits_flat.Flat ~prover:Lr_sorting.Honest inst
  in
  match Lr_sorting.replay ~codec:Bits_flat.Checked inst recorded_flat.Lr_sorting.transcript with
  | Ok v -> Alcotest.(check bool) "checked replay of flat recording" true v.Dip.accepted
  | Error e -> Alcotest.fail ("checked replay diverged: " ^ e)

(* ---- the serve stream ------------------------------------------------- *)

let golden_stream () =
  let ic = open_in "golden/serve_requests.txt" in
  let s = In_channel.input_all ic in
  close_in ic;
  match Serve.parse_requests s with
  | Ok reqs -> reqs
  | Error e -> Alcotest.fail ("golden stream does not parse: " ^ e)

let golden_responses () =
  let ic = open_in "golden/serve_responses.txt" in
  let s = In_channel.input_all ic in
  close_in ic;
  let lines = String.split_on_char '\n' (String.trim s) in
  let log, digest =
    List.partition (fun l -> not (String.length l > 8 && String.sub l 0 8 = "digest: ")) lines
  in
  match digest with
  | [ d ] -> (Array.of_list log, String.sub d 8 (String.length d - 8))
  | _ -> Alcotest.fail "golden responses must end with one digest line"

let run_stream ?jobs ?codec reqs =
  Label_cache.reset ();
  Serve.Prepared_cache.reset ();
  let out = Serve.execute ?jobs ?codec reqs in
  (Serve.response_log out, out)

let test_serve_matches_golden () =
  let reqs = golden_stream () in
  let expected_log, expected_digest = golden_responses () in
  let log, _ = run_stream ~jobs:1 reqs in
  Alcotest.(check (array string)) "response log matches committed golden" expected_log log;
  Alcotest.(check string) "digest matches committed golden" expected_digest
    (Serve.log_digest log)

let test_serve_deterministic_across_jobs_and_cache () =
  let reqs = golden_stream () in
  let log1, _ = run_stream ~jobs:1 reqs in
  let digest = Serve.log_digest log1 in
  List.iter
    (fun jobs ->
      let log, _ = run_stream ~jobs reqs in
      Alcotest.(check string)
        (Printf.sprintf "digest at jobs=%d" jobs)
        digest (Serve.log_digest log))
    [ 2; 4 ];
  Unix.putenv "DIPP_LABEL_CACHE" "0";
  let log_nc, _ = run_stream ~jobs:2 reqs in
  Unix.putenv "DIPP_LABEL_CACHE" "1";
  Alcotest.(check string) "digest with the label cache disabled" digest
    (Serve.log_digest log_nc);
  List.iter
    (fun jobs ->
      let log_flat, _ = run_stream ~jobs ~codec:Bits_flat.Flat reqs in
      Alcotest.(check string)
        (Printf.sprintf "digest under the flat codec at jobs=%d" jobs)
        digest (Serve.log_digest log_flat))
    [ 1; 2; 4 ]

let test_serve_codecs_agree_everywhere () =
  (* beyond the digest: the full response records must be equal *)
  let reqs = golden_stream () in
  let _, out_c = run_stream ~jobs:2 ~codec:Bits_flat.Checked reqs in
  let _, out_f = run_stream ~jobs:2 ~codec:Bits_flat.Flat reqs in
  Alcotest.(check bool) "checked and flat responses structurally equal" true
    (Array.map (fun o -> o.Serve.response) out_c = Array.map (fun o -> o.Serve.response) out_f)

let test_serve_cache_counters_deterministic () =
  let reqs = golden_stream () in
  let stats_at jobs =
    ignore (run_stream ~jobs reqs);
    Serve.Prepared_cache.stats ()
  in
  let s1 = stats_at 1 in
  Alcotest.(check bool) "prepared-cache stats identical at jobs=2" true (s1 = stats_at 2);
  Alcotest.(check bool) "prepared-cache stats identical at jobs=4" true (s1 = stats_at 4);
  let lookups, distinct, resident, _ = s1 in
  Alcotest.(check int) "one lookup per request" (Array.length reqs) lookups;
  Alcotest.(check bool) "repeat topologies deduplicated" true (distinct < Array.length reqs);
  Alcotest.(check int) "all distinct topologies resident under default capacity" distinct resident

(* ---- stream codec roundtrips ------------------------------------------ *)

let test_stream_roundtrips () =
  let reqs = golden_stream () in
  (match Serve.parse_requests (Serve.requests_to_text reqs) with
  | Ok r -> Alcotest.(check bool) "text roundtrip" true (r = reqs)
  | Error e -> Alcotest.fail ("text roundtrip: " ^ e));
  let bin = Serve.requests_to_binary reqs in
  Alcotest.(check string) "binary magic" Serve.magic (String.sub bin 0 (String.length Serve.magic));
  match Serve.parse_requests bin with
  | Ok r -> Alcotest.(check bool) "binary roundtrip" true (r = reqs)
  | Error e -> Alcotest.fail ("binary roundtrip: " ^ e)

(* ---- malformed requests ------------------------------------------------ *)

let mk family n gseed seed budget = { Serve.family; n; gseed; seed; budget }

let expect_bad name reqs =
  match Serve.execute ~jobs:2 reqs with
  | exception Serve.Bad_request _ -> ()
  | _ -> Alcotest.fail ("expected Bad_request: " ^ name)

let test_bad_requests_rejected () =
  expect_bad "unknown family" [| mk "nope" 16 1 0 100 |];
  expect_bad "n below the family floor" [| mk "lr" 2 1 0 100 |];
  expect_bad "n above the service ceiling" [| mk "lr" (Serve.max_request_n + 1) 1 0 100 |];
  expect_bad "negative generator seed" [| mk "lr" 16 (-1) 0 100 |];
  expect_bad "negative run seed" [| mk "lr" 16 1 (-1) 100 |];
  expect_bad "non-positive budget" [| mk "lr" 16 1 0 0 |];
  expect_bad "budget over the registry envelope" [| mk "lr" 64 1 0 1_000_000 |];
  (* a bad request anywhere in the batch is rejected before any work *)
  expect_bad "bad request mid-batch" [| mk "lr" 32 1 1 150; mk "nope" 16 1 0 100 |];
  Label_cache.reset ();
  Serve.Prepared_cache.reset ();
  let lookups, _, _, _ = Serve.Prepared_cache.stats () in
  Alcotest.(check int) "no pooled work ran for rejected batches" 0 lookups

let test_malformed_streams_rejected () =
  let reqs = golden_stream () in
  let bin = Serve.requests_to_binary reqs in
  let expect_err name s =
    match Serve.parse_requests s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("expected parse error: " ^ name)
  in
  expect_err "truncated binary frame" (String.sub bin 0 (String.length bin - 3));
  expect_err "unknown binary family id" (Serve.magic ^ String.make 17 '\xff');
  expect_err "text: missing fields" "lr 16 1\n";
  expect_err "text: malformed integer" "lr 16 x 0 200\n";
  (* an unknown family name in a text stream parses (the format is just
     five fields) and is rejected by validation before any pooled work,
     mirroring the unknown-binary-id parse error *)
  match Serve.parse_requests "warp 16 1 0 200\n" with
  | Error e -> Alcotest.fail ("text with unknown family should parse: " ^ e)
  | Ok reqs -> expect_bad "text: unknown family" reqs

let test_crlf_text_streams () =
  (* positive: a CRLF-terminated stream parses to the same requests as its
     LF twin, comments and blank lines included *)
  let lf = "# comment\nlr 32 1 1 180\n\nlr 32 2 1 180\n" in
  let crlf = "# comment\r\nlr 32 1 1 180\r\n\r\nlr 32 2 1 180\r\n" in
  (match (Serve.parse_requests lf, Serve.parse_requests crlf) with
  | Ok a, Ok b ->
      Alcotest.(check bool) "CRLF stream parses like the LF stream" true (a = b);
      Alcotest.(check int) "both carry two requests" 2 (Array.length a)
  | Error e, _ | _, Error e -> Alcotest.fail ("CRLF/LF stream should parse: " ^ e));
  (* negative: stripping the '\r' must not mask real malformations, and the
     reported line number still counts CRLF lines correctly *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  match Serve.parse_requests "lr 32 1 1 180\r\nlr 32 1 1\r\n" with
  | Ok _ -> Alcotest.fail "malformed CRLF line should be rejected"
  | Error e -> Alcotest.(check bool) "error names line 2" true (contains e "line 2")

(* ---- latency accounting ------------------------------------------------ *)

let test_latency_clamp () =
  (* wall-clock can step backwards between the two reads; the latency is
     clamped at zero rather than reported negative *)
  Alcotest.(check (float 0.)) "backwards clock clamps to 0" 0.
    (Serve.monotonic_latency ~t0:10.5 ~t1:10.25);
  Alcotest.(check (float 0.)) "equal reads give 0" 0. (Serve.monotonic_latency ~t0:3. ~t1:3.);
  Alcotest.(check (float 1e-9)) "forward reads subtract" 0.25
    (Serve.monotonic_latency ~t0:10.25 ~t1:10.5)

let test_percentile_edges () =
  let check_p name expected got =
    match got with
    | Some v -> Alcotest.(check (float 0.)) name expected v
    | None -> Alcotest.fail (name ^ ": unexpected None")
  in
  (* empty input is explicit, not a silent 0 *)
  Alcotest.(check bool) "empty array has no percentile" true (Serve.percentile [||] ~pct:50 = None);
  Alcotest.(check bool) "empty outcomes have no latency summary" true
    (Serve.latency_percentiles [||] = None);
  (* out-of-range pct is refused *)
  Alcotest.(check bool) "pct=0 refused" true (Serve.percentile [| 1. |] ~pct:0 = None);
  Alcotest.(check bool) "pct=101 refused" true (Serve.percentile [| 1. |] ~pct:101 = None);
  (* singleton: every percentile is the one sample *)
  check_p "singleton p50" 7. (Serve.percentile [| 7. |] ~pct:50);
  check_p "singleton p99" 7. (Serve.percentile [| 7. |] ~pct:99);
  (* nearest rank in exact integer arithmetic: for n=100, p99 is the 99th
     sample (index 98) — the float formulation rounded up to index 99 *)
  let hundred = Array.init 100 float_of_int in
  check_p "n=100 p99 is index 98" 98. (Serve.percentile hundred ~pct:99);
  check_p "n=100 p50 is index 49" 49. (Serve.percentile hundred ~pct:50);
  check_p "n=100 p100 is the max" 99. (Serve.percentile hundred ~pct:100);
  check_p "n=100 p1 is the min" 0. (Serve.percentile hundred ~pct:1);
  (* n=4: ceil(.5*4)=2nd sample, ceil(.99*4)=4th sample *)
  let four = [| 1.; 2.; 3.; 4. |] in
  check_p "n=4 p50" 2. (Serve.percentile four ~pct:50);
  check_p "n=4 p99" 4. (Serve.percentile four ~pct:99)

(* ---- prepared-instance cache eviction ---------------------------------- *)

let test_eviction_boundary () =
  Label_cache.reset ();
  Serve.Prepared_cache.reset ();
  Serve.Prepared_cache.set_capacity 2;
  (* three distinct topologies through a capacity-2 cache, at several jobs
     counts: the resident set (the two smallest keys) must not depend on
     the schedule, and answers must stay correct throughout *)
  let reqs =
    [| mk "lr" 32 1 1 180; mk "lr" 32 2 1 180; mk "lr" 32 3 1 180; mk "lr" 32 1 2 180 |]
  in
  let digest jobs =
    let out = Serve.execute ~jobs reqs in
    Serve.log_digest (Serve.response_log out)
  in
  let d1 = digest 1 in
  let stats1 = Serve.Prepared_cache.stats () in
  let _, distinct, resident, capacity = stats1 in
  Alcotest.(check int) "three distinct topologies seen" 3 distinct;
  Alcotest.(check int) "resident clamped to capacity" 2 resident;
  Alcotest.(check int) "capacity as set" 2 capacity;
  Serve.Prepared_cache.reset ();
  Serve.Prepared_cache.set_capacity 2;
  Alcotest.(check string) "evicting cache keeps answers deterministic" d1 (digest 4);
  let stats4 = Serve.Prepared_cache.stats () in
  Serve.Prepared_cache.reset ();
  (* lookups can race past a miss, but the derived set counters cannot *)
  let drop_lookups (_, a, b, c) = (a, b, c) in
  Alcotest.(check bool) "eviction state schedule-independent" true
    (drop_lookups stats1 = drop_lookups stats4)

let () =
  Alcotest.run "serve"
    [
      ( "flat-codec",
        [
          qtest prop_flat_encoder_matches_writer;
          qtest prop_flat_decoder_matches_reader;
          qtest prop_flat_reset_reuse;
          Alcotest.test_case "envelope-width roundtrips" `Quick test_envelope_width_roundtrips;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "E1 frames byte-identical under flat" `Quick
            test_flat_matches_corpus_lr;
          Alcotest.test_case "E3 frames byte-identical under flat" `Quick
            test_flat_matches_corpus_po;
          Alcotest.test_case "E4-E8 frames byte-identical under flat" `Quick
            test_flat_matches_corpus_composites;
          Alcotest.test_case "cross-codec replay" `Quick test_flat_replay_cross_codec;
          Alcotest.test_case "cross-codec re-execution (composites)" `Quick
            test_cross_codec_reexecution_composites;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "matches committed golden responses" `Quick test_serve_matches_golden;
          Alcotest.test_case "digest stable across jobs and caches" `Quick
            test_serve_deterministic_across_jobs_and_cache;
          Alcotest.test_case "codecs agree on full responses" `Quick
            test_serve_codecs_agree_everywhere;
          Alcotest.test_case "cache counters schedule-independent" `Quick
            test_serve_cache_counters_deterministic;
        ] );
      ( "requests",
        [
          Alcotest.test_case "stream text/binary roundtrips" `Quick test_stream_roundtrips;
          Alcotest.test_case "CRLF text streams" `Quick test_crlf_text_streams;
          Alcotest.test_case "malformed requests rejected" `Quick test_bad_requests_rejected;
          Alcotest.test_case "malformed streams rejected" `Quick test_malformed_streams_rejected;
        ] );
      ( "latency",
        [
          Alcotest.test_case "backwards-clock clamp" `Quick test_latency_clamp;
          Alcotest.test_case "percentile edge cases" `Quick test_percentile_edges;
        ] );
      ("eviction", [ Alcotest.test_case "capacity boundary" `Quick test_eviction_boundary ]);
    ]
