(* The deterministic multicore trial engine (lib/engine).

   Three contracts under test:
   - the Pool computes exactly the sequential result for every worker
     count, and propagates worker exceptions;
   - per-trial RNG streams are keyed by (seed, spec id, index) only, so
     the emitted trials_report.json is byte-identical for 1, 2 and 4
     domains, and streams never collide across trials, specs or seeds;
   - fixed-seed golden rejection counts for the named adversaries of
     E2/E3/E5: a protocol change that weakens soundness fails here
     instead of only drifting in EXPERIMENTS.md. *)

let golden_seed = 42

(* ---- pool ------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let f i = (i * 31) lxor (i lsr 2) in
  let expect = Array.init 1000 f in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d equals sequential" jobs)
        expect
        (Pool.run ~jobs 1000 f))
    [ 1; 2; 3; 4; 8 ]

let test_pool_edge_cases () =
  Alcotest.(check (array int)) "n=0" [||] (Pool.run ~jobs:4 0 (fun i -> i));
  Alcotest.(check (array int)) "n=1" [| 7 |] (Pool.run ~jobs:4 1 (fun _ -> 7));
  Alcotest.(check (array int))
    "jobs > n" [| 0; 2; 4 |]
    (Pool.run ~jobs:64 3 (fun i -> 2 * i))

exception Boom of int

let test_pool_exception () =
  List.iter
    (fun jobs ->
      match Pool.run ~jobs 64 (fun i -> if i = 13 then raise (Boom i) else i) with
      | _ -> Alcotest.failf "jobs=%d: expected Boom to propagate" jobs
      | exception Boom 13 -> ()
      | exception e -> Alcotest.failf "jobs=%d: unexpected %s" jobs (Printexc.to_string e))
    [ 1; 4 ]

(* ---- per-trial stream derivation ------------------------------------- *)

let test_split_string_distinct () =
  let root = Rng.create 5 in
  let ids = List.map (fun s -> s.Engine.Spec.id) Soundness.specs in
  let draws = List.map (fun id -> Rng.bits64 (Rng.split_string root id)) ids in
  Alcotest.(check int)
    "distinct streams for distinct spec ids" (List.length ids)
    (List.length (List.sort_uniq Int64.compare draws));
  let again = Rng.bits64 (Rng.split_string (Rng.create 5) "e2/forge-pairs/c2") in
  let first =
    Rng.bits64 (Rng.split_string (Rng.create 5) "e2/forge-pairs/c2")
  in
  Alcotest.(check bool) "same (seed, id) replays the stream" true (Int64.equal again first)

(* No collision across 4 experiment seeds x every spec x 64 trial indexes:
   4096 derived streams, 4096 distinct first draws. *)
let test_trial_streams_no_collision () =
  let tbl = Hashtbl.create 8192 in
  let streams = ref 0 in
  List.iter
    (fun seed ->
      let root = Rng.create seed in
      List.iter
        (fun spec ->
          let spec_rng = Rng.split_string root spec.Engine.Spec.id in
          for i = 0 to 63 do
            incr streams;
            Hashtbl.replace tbl (Rng.bits64 (Rng.split spec_rng i)) ()
          done)
        Soundness.specs)
    [ 1; 2; 3; 4 ];
  Alcotest.(check int) "all per-trial streams distinct" !streams (Hashtbl.length tbl)

(* ---- report determinism across domain counts ------------------------- *)

let small_batch =
  List.filter_map
    (fun (id, trials) ->
      Option.map (Engine.Spec.with_trials trials) (Soundness.find id))
    [ ("e2/forge-pairs/c2", 16); ("e5/corrupted-rotation", 10); ("e7/ear-cheat", 12) ]

let test_report_identical_across_jobs () =
  Alcotest.(check int) "batch resolved" 3 (List.length small_batch);
  let report jobs =
    Engine.report_string ~seed:golden_seed (Engine.run_all ~jobs ~seed:golden_seed small_batch)
  in
  let r1 = report 1 in
  Alcotest.(check string) "jobs=2 byte-identical to jobs=1" r1 (report 2);
  Alcotest.(check string) "jobs=4 byte-identical to jobs=1" r1 (report 4)

let test_write_report_roundtrip () =
  let results = Engine.run_all ~jobs:2 ~seed:golden_seed small_batch in
  let path = Filename.temp_file "dipp_trials" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.write_report ~path ~seed:golden_seed results;
      let ic = open_in_bin path in
      let written =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string)
        "file bytes equal report_string" (Engine.report_string ~seed:golden_seed results) written;
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "no timing fields by default" false (contains written "wall_clock"))

(* ---- golden soundness counts (E2/E3/E5) ------------------------------ *)

(* Pinned (spec id, trials, rejected) at seed 42.  These change only if a
   protocol, adversary, generator or the stream derivation changes — any
   of which must be a conscious decision. *)
let golden_table =
  [
    ("e2/forge-pairs/c2", 25, 25);
    ("e2/forge-pairs/c3", 25, 25);
    ("e2/shift-positions/c2", 25, 25);
    ("e2/shift-positions/c3", 25, 25);
    ("e2/fake-inner/c2", 25, 25);
    ("e2/fake-inner/c3", 25, 25);
    ("e2/honest-labels/c2", 25, 25);
    ("e2/honest-labels/c3", 25, 25);
    ("e3/crossing-sweep", 20, 20);
    ("e3/flip-orientation", 20, 20);
    ("e3/fake-path", 20, 20);
    ("e5/corrupted-rotation", 20, 20);
  ]

let golden_reduced =
  [
    ("e2/forge-pairs/c2", 25);
    ("e2/forge-pairs/c3", 25);
    ("e2/shift-positions/c2", 25);
    ("e2/shift-positions/c3", 25);
    ("e2/fake-inner/c2", 25);
    ("e2/fake-inner/c3", 25);
    ("e2/honest-labels/c2", 25);
    ("e2/honest-labels/c3", 25);
    ("e3/crossing-sweep", 20);
    ("e3/flip-orientation", 20);
    ("e3/fake-path", 20);
    ("e5/corrupted-rotation", 20);
  ]

let test_golden_rejections () =
  let specs =
    List.filter_map
      (fun (id, trials) -> Option.map (Engine.Spec.with_trials trials) (Soundness.find id))
      golden_reduced
  in
  Alcotest.(check int) "all golden specs resolved" (List.length golden_reduced) (List.length specs);
  let results = Engine.run_all ~jobs:(Pool.default_jobs ()) ~seed:golden_seed specs in
  let actual =
    List.map
      (fun r -> (r.Engine.spec.Engine.Spec.id, r.Engine.completed, r.Engine.rejected))
      results
  in
  Alcotest.(check (list (triple string int int)))
    "fixed-seed rejection counts" golden_table actual

(* ---- DIPP_JOBS validation --------------------------------------------- *)

(* An explicitly-set but invalid DIPP_JOBS (zero, negative, non-numeric)
   must clamp to sequential execution, not silently fan out to every core.
   Runs as the last suite: Unix.putenv cannot unset a variable, so the
   environment is left at DIPP_JOBS=1 (sequential — behavior-neutral). *)
let test_invalid_jobs_sequential () =
  List.iter
    (fun v ->
      Unix.putenv "DIPP_JOBS" v;
      Alcotest.(check int) (Printf.sprintf "DIPP_JOBS=%S clamps to 1" v) 1 (Pool.default_jobs ()))
    [ "0"; "-3"; "banana"; "" ];
  List.iter
    (fun (v, expect) ->
      Unix.putenv "DIPP_JOBS" v;
      Alcotest.(check int) (Printf.sprintf "DIPP_JOBS=%S honored" v) expect (Pool.default_jobs ()))
    [ ("3", 3); (" 2 ", 2); ("100", 64); ("1", 1) ]

let () =
  Alcotest.run "engine"
    [
      ( "pool",
        [
          Alcotest.test_case "matches sequential" `Quick test_pool_matches_sequential;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        ] );
      ( "streams",
        [
          Alcotest.test_case "split_string distinct" `Quick test_split_string_distinct;
          Alcotest.test_case "no trial-stream collision" `Quick test_trial_streams_no_collision;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "report identical for 1/2/4 domains" `Quick
            test_report_identical_across_jobs;
          Alcotest.test_case "write_report roundtrip" `Quick test_write_report_roundtrip;
        ] );
      ("golden", [ Alcotest.test_case "E2/E3/E5 rejection counts" `Quick test_golden_rejections ]);
      ( "env",
        [ Alcotest.test_case "invalid DIPP_JOBS runs sequentially" `Quick test_invalid_jobs_sequential ] );
    ]
