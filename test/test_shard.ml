(* The sharded network engine (lib/net/shard.ml) and its partitioner
   (lib/graph/partition.ml).

   Contracts under test:
   - partition invariants: blocks cover the nodes, are pairwise disjoint,
     respect the size cap, agree with [block]/[pos], and recount the cut;
     the partition is a pure function of (graph, blocks, seed);
   - engine equivalence: under a reliable network the sharded engine and
     the single-queue engine agree bit-for-bit, on every protocol tier;
   - result invariance: the rendered result is identical across shard
     counts 1/2/8, worker counts 1/2, and partition seeds, under every
     fault model — the tentpole determinism contract (shard.mli);
   - sweep integration: a sharded family's point is byte-identical for
     any ?shards value handed to run_point;
   - scale: a 10^6-node ladder instance completes a full round-trip
     (behind DIPP_HEAVY=1; the 10^4 smoke always runs). *)

let qtest = QCheck_alcotest.to_alcotest
let seed = 1234

let planar_instance n =
  let g = Gen.planar ~n 7 in
  let parent =
    Array.mapi (fun v pv -> if pv = v then -1 else pv) (Traversal.spanning_tree g 0)
  in
  (g, parent)

let render (r : Net.result) =
  Format.asprintf "%b [%a] [%a] %.17g %a" r.Net.accepted
    (Format.pp_print_list Format.pp_print_int)
    r.Net.rejecting
    (Format.pp_print_list Format.pp_print_int)
    r.Net.crashed_nodes r.Net.heard Net.pp_stats r.Net.stats

(* ---- partition invariants ---------------------------------------------- *)

let graph_arb =
  QCheck.make
    ~print:(fun (s, n, extra, blocks, pseed) ->
      Printf.sprintf "seed=%d n=%d extra=%d blocks=%d pseed=%d" s n extra blocks pseed)
    QCheck.Gen.(
      map
        (fun ((s, n, extra), (blocks, pseed)) -> (s, n, extra, blocks, pseed))
        (pair (triple (int_bound 10000) (int_range 1 80) (int_bound 60)) (pair (int_range 1 12) (int_bound 1000))))

let random_graph s n extra =
  (* a random tree plus [extra] random edges: connected unless extra
     collides, mixed degrees, self-loop-free by construction *)
  let rng = Rng.create s in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := (v, Rng.int rng v) :: !edges
  done;
  for _ = 1 to extra do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then edges := (u, v) :: !edges
  done;
  Graph.create ~n !edges

let prop_partition_invariants =
  QCheck.Test.make ~name:"partition: cover/disjoint/cap/pos/cut invariants" ~count:200 graph_arb
    (fun (s, n, extra, blocks, pseed) ->
      let g = random_graph s n extra in
      let p = Partition.make ~seed:pseed ~blocks g in
      let k = p.Partition.nblocks in
      if k < 1 || k > min blocks n then QCheck.Test.fail_report "nblocks out of range";
      (* cover + disjoint: every node appears in exactly the block and slot
         that [block]/[pos] claim *)
      let seen = Array.make n 0 in
      Array.iteri
        (fun b members ->
          Array.iteri
            (fun i v ->
              seen.(v) <- seen.(v) + 1;
              if p.Partition.block.(v) <> b then QCheck.Test.fail_report "block mismatch";
              if p.Partition.pos.(v) <> i then QCheck.Test.fail_report "pos mismatch")
            members)
        p.Partition.blocks;
      if Array.exists (fun c -> c <> 1) seen then QCheck.Test.fail_report "not a partition";
      (* the size cap *)
      let cap = (n + k - 1) / k in
      Array.iter
        (fun members ->
          if Array.length members > cap then QCheck.Test.fail_report "cap exceeded")
        p.Partition.blocks;
      (* cut recount *)
      let cut = ref 0 in
      Graph.iter_edges
        (fun (u, v) -> if p.Partition.block.(u) <> p.Partition.block.(v) then incr cut)
        g;
      if !cut <> p.Partition.cut_edges then QCheck.Test.fail_report "cut miscount";
      true)

let prop_partition_seed_pure =
  QCheck.Test.make ~name:"partition: pure function of (graph, blocks, seed)" ~count:100 graph_arb
    (fun (s, n, extra, blocks, pseed) ->
      let g = random_graph s n extra in
      let p1 = Partition.make ~seed:pseed ~blocks g in
      let p2 = Partition.make ~seed:pseed ~blocks g in
      p1.Partition.block = p2.Partition.block
      && p1.Partition.blocks = p2.Partition.blocks
      && p1.Partition.cut_edges = p2.Partition.cut_edges)

let test_partition_blocks_sorted () =
  let g = random_graph 3 50 30 in
  let p = Partition.make ~seed:5 ~blocks:4 g in
  Array.iter
    (fun members ->
      Array.iteri
        (fun i v -> if i > 0 then Alcotest.(check bool) "members ascending" true (members.(i - 1) < v))
        members)
    p.Partition.blocks

(* ---- engine equivalence (reliable network) ----------------------------- *)

let protocols () =
  let g, parent = planar_instance 60 in
  [
    Net_protocols.pls_spanning_tree ~graph:g ~parent;
    Net_protocols.st_verify ~reps:3 ~seed:5 g ~parent;
    (let r = Planarity.run ~seed:3 ~prover:Planarity.Honest { Planarity.graph = g } in
     Net_protocols.transport ~name:"planarity" ~graph:g ~stats:r.Planarity.stats
       ~verdict:r.Planarity.verdict);
  ]

let test_reliable_matches_net () =
  List.iter
    (fun proto ->
      List.iter
        (fun mode ->
          let net = Net.execute ~mode ~rng:(Rng.create seed) ~model:Fault.reliable proto in
          let shard =
            Shard.execute ~mode ~shards:4 ~jobs:2 ~rng:(Rng.create seed) ~model:Fault.reliable
              proto
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: sharded == single-queue under reliable" proto.Net.name)
            (render net) (render shard))
        [ Net.Strict; Net.Degrade { quorum = 0.8 } ])
    (protocols ())

(* ---- result invariance under faults ------------------------------------ *)

let models = [ Fault.drop ~rate:0.2; Fault.chaos ~rate:0.1; Fault.crash ~rate:0.05 ]

let test_invariant_across_shards_jobs_seeds () =
  let g, parent = planar_instance 60 in
  let proto = Net_protocols.st_verify ~reps:3 ~seed:5 g ~parent in
  List.iteri
    (fun mi model ->
      let run ~shards ~jobs ~partition_seed =
        render (Shard.execute ~shards ~jobs ~partition_seed ~rng:(Rng.create seed) ~model proto)
      in
      let base = run ~shards:1 ~jobs:1 ~partition_seed:0 in
      List.iter
        (fun (shards, jobs, partition_seed) ->
          Alcotest.(check string)
            (Printf.sprintf "model %d: shards=%d jobs=%d pseed=%d invariant" mi shards jobs
               partition_seed)
            base
            (run ~shards ~jobs ~partition_seed))
        [ (2, 1, 0); (2, 2, 0); (8, 1, 0); (8, 2, 0); (4, 2, 9); (8, 2, 77) ])
    models

let test_stats_shape () =
  let g, parent = planar_instance 60 in
  let proto = Net_protocols.pls_spanning_tree ~graph:g ~parent in
  let r, st =
    Shard.execute_ex ~shards:4 ~jobs:2 ~rng:(Rng.create seed) ~model:Fault.reliable proto
  in
  Alcotest.(check bool) "accepted" true r.Net.accepted;
  Alcotest.(check int) "4 shards used" 4 st.Shard.shards;
  Alcotest.(check bool) "some windows ran" true (st.Shard.windows > 0);
  Alcotest.(check bool) "events processed" true (st.Shard.events > 0);
  Alcotest.(check bool) "cross-shard traffic exists" true (st.Shard.cross_messages > 0);
  (* one shard: everything is local *)
  let _, st1 = Shard.execute_ex ~shards:1 ~rng:(Rng.create seed) ~model:Fault.reliable proto in
  Alcotest.(check int) "1 shard: no cross traffic" 0 st1.Shard.cross_messages

let test_shards_clamped_to_n () =
  let g = Graph.path_graph 3 in
  let parent = [| -1; 0; 1 |] in
  let proto = Net_protocols.pls_spanning_tree ~graph:g ~parent in
  let r, st =
    Shard.execute_ex ~shards:64 ~rng:(Rng.create seed) ~model:Fault.reliable proto
  in
  Alcotest.(check bool) "tiny graph accepts" true r.Net.accepted;
  Alcotest.(check bool) "shards clamped to n" true (st.Shard.shards <= 3)

(* ---- sweep integration -------------------------------------------------- *)

let test_run_point_shards_invariant () =
  let fam = Fault_sweep.sharded (Fault_sweep.pls_family ~n:40) in
  let point ?shards () =
    let p =
      Fault_sweep.run_point ?shards ~jobs:2 ~seed fam (Fault.drop ~rate:0.2) 0.2
        Fault_sweep.Strict 4
    in
    Fault_sweep.report_string ~seed [ p ]
  in
  let base = point ~shards:1 () in
  Alcotest.(check string) "shards=2 byte-identical" base (point ~shards:2 ());
  Alcotest.(check string) "shards=8 byte-identical" base (point ~shards:8 ());
  Alcotest.(check bool) "family id carries /shard" true
    (String.length fam.Fault_sweep.fam_id > 6
    && String.sub fam.Fault_sweep.fam_id (String.length fam.Fault_sweep.fam_id - 6) 6 = "/shard")

(* ---- scale -------------------------------------------------------------- *)

let ladder_smoke n =
  List.iter
    (fun (name, g) ->
      let parent =
        Array.mapi (fun v pv -> if pv = v then -1 else pv) (Traversal.spanning_tree g 0)
      in
      let proto = Net_protocols.pls_spanning_tree ~graph:g ~parent in
      let r, st =
        Shard.execute_ex ~shards:4 ~jobs:2 ~rng:(Rng.create 42) ~model:Fault.reliable proto
      in
      Alcotest.(check bool) (Printf.sprintf "%s n=%d accepts" name n) true r.Net.accepted;
      Alcotest.(check bool)
        (Printf.sprintf "%s n=%d events scale with n" name n)
        true
        (st.Shard.events > 2 * n))
    [ ("triangulated-grid", Gen.triangulated_grid ~n 1);
      ("nested-triangulation", Gen.nested_triangulation ~n 1) ]

let test_ladder_smoke () = ladder_smoke 10_000

let test_million_round_trip () =
  match Sys.getenv_opt "DIPP_HEAVY" with
  | Some "1" -> ladder_smoke 1_000_000
  | Some _ | None -> ()

let test_generators_planarity () =
  List.iter
    (fun n ->
      let g = Gen.triangulated_grid ~n 3 in
      Alcotest.(check int) "grid: exact n" n (Graph.n g);
      Alcotest.(check bool) "grid: planar" true (Option.is_some (Planar_test.embed g));
      let g = Gen.nested_triangulation ~n 3 in
      Alcotest.(check int) "nested: exact n" n (Graph.n g);
      Alcotest.(check int) "nested: maximal planar m" ((3 * n) - 6) (Graph.m g);
      Alcotest.(check bool) "nested: planar" true (Option.is_some (Planar_test.embed g)))
    [ 20; 100; 500 ];
  List.iter
    (fun n ->
      let g = Gen.triangulated_grid_no ~n 3 in
      Alcotest.(check int) "grid-no: exact n" n (Graph.n g);
      Alcotest.(check bool) "grid-no: nonplanar" true (Option.is_none (Planar_test.embed g));
      let g = Gen.nested_triangulation_no ~n 3 in
      Alcotest.(check int) "nested-no: exact n" n (Graph.n g);
      Alcotest.(check bool) "nested-no: nonplanar" true (Option.is_none (Planar_test.embed g)))
    [ 40; 200 ]

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          qtest prop_partition_invariants;
          qtest prop_partition_seed_pure;
          Alcotest.test_case "block members ascending" `Quick test_partition_blocks_sorted;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "reliable: sharded == single-queue" `Quick test_reliable_matches_net;
          Alcotest.test_case "stats shape + cross traffic" `Quick test_stats_shape;
          Alcotest.test_case "shards clamped to n" `Quick test_shards_clamped_to_n;
        ] );
      ( "invariance",
        [
          Alcotest.test_case "faulty runs invariant across shards/jobs/partition seeds" `Quick
            test_invariant_across_shards_jobs_seeds;
          Alcotest.test_case "run_point byte-identical across ?shards" `Quick
            test_run_point_shards_invariant;
        ] );
      ( "scale",
        [
          Alcotest.test_case "ladder generators: exact n, planarity" `Quick
            test_generators_planarity;
          Alcotest.test_case "10^4 ladder round-trip" `Quick test_ladder_smoke;
          Alcotest.test_case "10^6 round-trip (DIPP_HEAVY=1)" `Slow test_million_round_trip;
        ] );
    ]
