(* Graph I/O, duals, topological sort, and the amplification wrapper. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- Graph_io ------------------------------------------------------------ *)

let test_parse_basic () =
  let g = Graph_io.parse_edge_list "n 5\n0 1\n1 2\n# comment\n\n3 4\n" in
  Alcotest.(check int) "n" 5 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check bool) "edge" true (Graph.mem_edge g 3 4)

let test_parse_infers_n () =
  let g = Graph_io.parse_edge_list "0 7\n" in
  Alcotest.(check int) "n inferred" 8 (Graph.n g)

let test_parse_inline_comment () =
  let g = Graph_io.parse_edge_list "0 1 # the first edge\n" in
  Alcotest.(check int) "m" 1 (Graph.m g)

let test_parse_errors () =
  let raises name msg text =
    Alcotest.check_raises name (Invalid_argument msg) (fun () ->
        ignore (Graph_io.parse_edge_list text))
  in
  raises "garbage" "Graph_io: line 1: expected a node id, got \"a\"" "a b";
  raises "three fields" "Graph_io: line 2: expected 'u v', got 3 fields" "0 1\n0 1 2";
  raises "negative id" "Graph_io: line 1: negative node id -3" "-3 1";
  raises "self-loop" "Graph_io: line 3: self-loop 4 4" "0 1\n1 2\n4 4";
  raises "bad n" "Graph_io: line 1: bad node count \"five\"" "n five\n0 1";
  raises "out of range" "Graph_io: line 3: node id 9 out of range (n = 5)" "n 5\n0 1\n2 9"

let test_read_file_error () =
  let path = Filename.temp_file "dipp" ".txt" in
  let oc = open_out path in
  output_string oc "0 1\nbroken line here\n";
  close_out oc;
  Alcotest.check_raises "path prefixed"
    (Invalid_argument (path ^ ": Graph_io: line 2: expected 'u v', got 3 fields"))
    (fun () -> ignore (Graph_io.read_file path));
  Sys.remove path

let test_read_file_range_error () =
  (* the streaming reader holds only (line, u, v) triples, so a range
     violation against a later-declared bound must still name the line the
     edge came from *)
  let path = Filename.temp_file "dipp" ".txt" in
  let oc = open_out path in
  output_string oc "n 3\n0 1\n1 5\n2 0\n";
  close_out oc;
  Alcotest.check_raises "stored line number"
    (Invalid_argument (path ^ ": Graph_io: line 3: node id 5 out of range (n = 3)"))
    (fun () -> ignore (Graph_io.read_file path));
  Sys.remove path

let test_read_file_streams_large () =
  (* a file bigger than any parser chunk: the two-pass CSR build must
     produce the same graph the string parser does *)
  let n = 20_000 in
  let buf = Buffer.create (n * 12) in
  Buffer.add_string buf (Printf.sprintf "n %d\n" n);
  for v = 1 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%d %d\n" v (v / 2))
  done;
  let text = Buffer.contents buf in
  let path = Filename.temp_file "dipp" ".txt" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc text);
  let g = Graph_io.read_file path in
  Sys.remove path;
  Alcotest.(check int) "n" n (Graph.n g);
  Alcotest.(check int) "m" (n - 1) (Graph.m g);
  Alcotest.(check bool) "same graph as the string parser" true
    (Graph.equal g (Graph_io.parse_edge_list text))

let prop_io_roundtrip =
  QCheck.Test.make ~name:"graph_io: to_edge_list / parse roundtrip" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 5 60))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      Graph.equal g (Graph_io.parse_edge_list (Graph_io.to_edge_list g)))

let test_file_roundtrip () =
  let g = Gen.outerplanar ~blocks:3 1 in
  let path = Filename.temp_file "dipp" ".txt" in
  Graph_io.write_file path g;
  let g' = Graph_io.read_file path in
  Sys.remove path;
  Alcotest.(check bool) "roundtrip" true (Graph.equal g g')

let test_dot_output () =
  let g = Graph.cycle_graph 3 in
  let dot = Graph_io.to_dot ~highlight:[ (0, 1) ] g in
  Alcotest.(check bool) "graph kw" true (String.length dot > 0 && String.sub dot 0 5 = "graph");
  Alcotest.(check bool) "edge present" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains dot "0 -- 1 [color=red, penwidth=2];" && contains dot "1 -- 2;")

(* ---- dual graphs ----------------------------------------------------------- *)

let test_dual_cube () =
  (* the 3-cube: 8 nodes, 12 edges, 6 faces; its dual is the octahedron *)
  let cube =
    Graph.create ~n:8
      [ (0,1);(1,2);(2,3);(3,0);(4,5);(5,6);(6,7);(7,4);(0,4);(1,5);(2,6);(3,7) ]
  in
  match Planar_test.embed cube with
  | None -> Alcotest.fail "cube is planar"
  | Some rot ->
      let d = Rotation.dual rot in
      Alcotest.(check int) "6 dual nodes" 6 (Graph.n d);
      Alcotest.(check int) "12 dual edges" 12 (Graph.m d);
      Alcotest.(check bool) "dual planar" true (Planar_test.is_planar d);
      Alcotest.(check int) "octahedron degrees" 4 (Graph.max_degree d)

let prop_dual_planar =
  QCheck.Test.make ~name:"dual: dual of a planar embedding is planar and connected" ~count:25
    QCheck.(pair (int_bound 10000) (int_range 8 50))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      match Planar_test.embed g with
      | Some rot ->
          let d = Rotation.dual rot in
          Traversal.is_connected d && Planar_test.is_planar d
      | None -> false)

(* ---- topological sort -------------------------------------------------------- *)

let test_topo_sort_dag () =
  let d = Digraph.create ~n:5 [ (0, 2); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  match Digraph.topological_sort d with
  | Some order ->
      let pos = Array.make 5 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.iter (fun (u, v) -> Alcotest.(check bool) "respects arcs" true (pos.(u) < pos.(v))) (Digraph.arcs d)
  | None -> Alcotest.fail "dag has an order"

let test_topo_sort_cycle () =
  let d = Digraph.create ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "no order" true (Digraph.topological_sort d = None)

let prop_lr_instances_vs_topo =
  QCheck.Test.make ~name:"lr instances are yes iff the digraph is a DAG" ~count:40
    QCheck.(triple (int_bound 10000) (int_range 10 80) bool)
    (fun (seed, n, yes) ->
      let path, arcs = if yes then Gen.lr_yes ~n seed else Gen.lr_no ~n seed in
      let inst = { Lr_sorting.n; path; arcs } in
      let path_arcs = List.init (n - 1) (fun i -> (path.(i), path.(i + 1))) in
      let d = Digraph.create ~n (path_arcs @ arcs) in
      Lr_sorting.is_yes_instance inst = Digraph.is_acyclic d)

(* ---- amplification -------------------------------------------------------------- *)

let test_amplify_completeness () =
  let g, w = Gen.path_outerplanar ~n:60 1 in
  let a =
    Amplify.run ~reps:3 ~seed:5
      ~run:(fun ~seed ->
        Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Honest
          { Path_outerplanarity.graph = g; witness = Some w })
      ~verdict:(fun r -> r.Path_outerplanarity.verdict)
      ~stats:(fun r -> r.Path_outerplanarity.stats)
  in
  Alcotest.(check bool) "accepts" true a.Amplify.verdict.Dip.accepted;
  Alcotest.(check int) "3 runs" 3 a.Amplify.accepting_runs;
  Alcotest.(check int) "rounds unchanged" 5 a.Amplify.stats.Dip.interaction_rounds

let test_amplify_soundness_boost () =
  (* single-run escapes vs amplified escapes of the weak ST verification *)
  let bad_parent = Array.init 30 (fun v -> if v = 0 || v = 15 then -1 else v - 1) in
  let g = Graph.path_graph 30 in
  let escapes reps =
    let e = ref 0 in
    for seed = 0 to 49 do
      let a =
        Amplify.run ~reps ~seed
          ~run:(fun ~seed -> Spanning_tree_verify.run ~seed ~reps:1 g ~parent:bad_parent)
          ~verdict:fst ~stats:snd
      in
      if a.Amplify.verdict.Dip.accepted then incr e
    done;
    !e
  in
  let e1 = escapes 1 and e4 = escapes 4 in
  Alcotest.(check bool) "amplification reduces escapes" true (e4 <= e1);
  Alcotest.(check int) "no escapes at 4 reps" 0 e4

let test_amplify_stats_add () =
  let g, w = Gen.path_outerplanar ~n:40 2 in
  let one =
    (Path_outerplanarity.run ~seed:3 ~prover:Path_outerplanarity.Honest
       { Path_outerplanarity.graph = g; witness = Some w })
      .Path_outerplanarity.stats
  in
  let a =
    Amplify.run ~reps:4 ~seed:3
      ~run:(fun ~seed ->
        Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Honest
          { Path_outerplanarity.graph = g; witness = Some w })
      ~verdict:(fun r -> r.Path_outerplanarity.verdict)
      ~stats:(fun r -> r.Path_outerplanarity.stats)
  in
  Alcotest.(check int) "proof sizes add" (4 * one.Dip.proof_size_bits) a.Amplify.stats.Dip.proof_size_bits

let test_amplify_error_formula () =
  Alcotest.(check (float 1e-9)) "error" 0.001 (Amplify.soundness_error ~single:0.1 ~reps:3)

(* ---- per-phase stats ---------------------------------------------------------- *)

let test_per_phase_shape () =
  let path, arcs = Gen.lr_yes ~n:200 1 in
  let r = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest { Lr_sorting.n = 200; path; arcs } in
  let phases = List.map fst r.Lr_sorting.stats.Dip.per_phase in
  Alcotest.(check (list bool)) "P-V-P-V-P"
    [ true; false; true; false; true ]
    (List.map (fun p -> p = Dip.Prover_phase) phases);
  List.iter
    (fun (_, bits) -> Alcotest.(check bool) "phase carries content" true (bits > 0))
    r.Lr_sorting.stats.Dip.per_phase;
  let max_phase = List.fold_left (fun acc (_, b) -> max acc b) 0 r.Lr_sorting.stats.Dip.per_phase in
  Alcotest.(check bool) "proof size = max prover phase" true
    (max_phase >= r.Lr_sorting.stats.Dip.proof_size_bits)

let () =
  Alcotest.run "io_amplify"
    [
      ( "graph-io",
        [
          Alcotest.test_case "parse basic" `Quick test_parse_basic;
          Alcotest.test_case "infer n" `Quick test_parse_infers_n;
          Alcotest.test_case "inline comment" `Quick test_parse_inline_comment;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "read_file error" `Quick test_read_file_error;
          Alcotest.test_case "read_file range error line number" `Quick
            test_read_file_range_error;
          Alcotest.test_case "read_file streams a large file" `Quick test_read_file_streams_large;
          Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
          Alcotest.test_case "dot" `Quick test_dot_output;
          qtest prop_io_roundtrip;
        ] );
      ( "dual",
        [ Alcotest.test_case "cube/octahedron" `Quick test_dual_cube; qtest prop_dual_planar ] );
      ( "topological-sort",
        [
          Alcotest.test_case "dag" `Quick test_topo_sort_dag;
          Alcotest.test_case "cycle" `Quick test_topo_sort_cycle;
          qtest prop_lr_instances_vs_topo;
        ] );
      ( "amplify",
        [
          Alcotest.test_case "completeness" `Quick test_amplify_completeness;
          Alcotest.test_case "soundness boost" `Quick test_amplify_soundness_boost;
          Alcotest.test_case "stats add" `Quick test_amplify_stats_add;
          Alcotest.test_case "error formula" `Quick test_amplify_error_formula;
        ] );
      ("per-phase", [ Alcotest.test_case "shape" `Quick test_per_phase_shape ]);
    ]
