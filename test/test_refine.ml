(* dipp-refine: the numeric refinement pass (ANALYSIS.md).

   Fixture snippets drive the abstract interpreter directly through
   Refine.analyze with an explicit declared envelope, so each test pins
   one transfer-function or rule behaviour: affine helper summaries,
   loop widening termination, per-expression budget findings, trusted
   annotations, the subscript auditor and the unsafe_sub gate.  A QCheck
   property checks interval soundness on randomly generated constant
   arithmetic, and the mutation tests flip verdicts both ways (widening
   a fixture's width constant, narrowing a real registry row). *)

module Refine = Dipp_analysis.Refine
module Lint = Dipp_analysis.Lint_rules
module Report = Dipp_analysis.Report
module Cli = Dipp_analysis.Cli
module Ast_scan = Dipp_analysis.Ast_scan
module Typed_scan = Dipp_analysis.Typed_scan
module Bounds = Dipp_protocols.Bounds

let qtest = QCheck_alcotest.to_alcotest

let rules_of findings = List.sort_uniq String.compare (List.map (fun f -> f.Report.rule) findings)

let analyze ?program ?declared src =
  let annots = Refine.annotations_of_source src in
  Refine.analyze ?program ~annots ?declared ~filename:"fixture.ml"
    (Ast_scan.parse_string ~filename:"fixture.ml" src)

let check ?program ?declared src = (analyze ?program ?declared src).Refine.findings

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let has_rule rule findings = List.mem rule (rules_of findings)

(* the lr_sorting registry envelope: 40*loglog + 60 *)
let wide = Refine.envelope ~loglog:40 ~add:60 ()

let record_fixture width =
  Printf.sprintf
    "let run n =\n\
    \  let meter = Dip.meter () in\n\
    \  Dip.record_prover meter (Array.init n (fun _ -> Bits.of_int ~width:%s 0));\n\
    \  Dip.stats meter\n"
    width

(* ---- budget: constants against a declared envelope -------------------- *)

let test_budget_constant () =
  Alcotest.(check (list string))
    "4-bit label within 40*loglog + 60" []
    (rules_of (check ~declared:wide (record_fixture "4")));
  let findings = check ~declared:wide (record_fixture "4096") in
  Alcotest.(check bool) "4096-bit label caught" true (has_rule Refine.rule_budget findings);
  let f = List.find (fun f -> String.equal f.Report.rule Refine.rule_budget) findings in
  Alcotest.(check bool)
    "finding names the inferred interval" true
    (contains f.Report.msg "[4096, 4096]")

let test_budget_per_expression () =
  (* two record sites; only the over-wide one is reported, at its line *)
  let src =
    "let run n =\n\
    \  let meter = Dip.meter () in\n\
    \  Dip.record_prover meter (Array.init n (fun _ -> Bits.of_int ~width:4 0));\n\
    \  Dip.record_prover meter (Array.init n (fun _ -> Bits.of_int ~width:4096 0));\n\
    \  Dip.stats meter\n"
  in
  match check ~declared:wide src with
  | [ f ] ->
      Alcotest.(check string) "rule" Refine.rule_budget f.Report.rule;
      Alcotest.(check int) "finding anchored at the offending site" 4 f.Report.line
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_budget_unbounded () =
  (* a label built by an unknown helper cannot be bounded *)
  let findings = check ~declared:wide (record_fixture "(mystery_width ())") in
  Alcotest.(check bool) "unbounded width caught" true (has_rule Refine.rule_budget findings);
  let f = List.find (fun f -> String.equal f.Report.rule Refine.rule_budget) findings in
  Alcotest.(check bool) "explains the failure" true (contains f.Report.msg "cannot bound")

(* ---- affine helper summaries ------------------------------------------ *)

let helper_fixture =
  "let pair w x = Bits.append (Bits.of_int ~width:w x) (Bits.of_int ~width:(w + 1) x)\n\n\
   let run n =\n\
  \  let meter = Dip.meter () in\n\
  \  Dip.record_prover meter (Array.init n (fun _ -> pair 3 0));\n\
  \  Dip.stats meter\n"

let test_affine_helper () =
  (* pair w _ produces 2*w + 1 bits; at w = 3 that is exactly 7 *)
  Alcotest.(check (list string))
    "2*w + 1 at w = 3 fits in 7" []
    (rules_of (check ~declared:(Refine.envelope ~add:7 ()) helper_fixture));
  Alcotest.(check bool)
    "but not in 6" true
    (has_rule Refine.rule_budget (check ~declared:(Refine.envelope ~add:6 ()) helper_fixture));
  let r = analyze helper_fixture in
  match (r.Refine.label_lo, r.Refine.label_hi) with
  | Some lo, Some hi ->
      Alcotest.(check (option int)) "exact lower bound" (Some 7) (Refine.eval_form lo ~n:64 ~delta:8);
      Alcotest.(check (option int)) "exact upper bound" (Some 7) (Refine.eval_form hi ~n:64 ~delta:8)
  | _ -> Alcotest.fail "helper summary lost the label interval"

let test_cross_module_helper () =
  (* the same summary, but the helper lives in another module reached
     through the Typed_scan program *)
  let dir = Filename.temp_file "refine" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () ->
      let write name s =
        let oc = open_out (Filename.concat dir name) in
        output_string oc s;
        close_out oc
      in
      write "helper.ml" "let enc w x = Bits.of_int ~width:(2 * w) x\n";
      let proto =
        "let run n =\n\
        \  let meter = Dip.meter () in\n\
        \  Dip.record_prover meter (Array.init n (fun _ -> Helper.enc 5 1));\n\
        \  Dip.stats meter\n"
      in
      write "proto.ml" proto;
      let program = Typed_scan.load_tree dir in
      let structure = Ast_scan.parse_file (Filename.concat dir "proto.ml") in
      let run declared =
        (Refine.analyze ~program ~declared ~filename:(Filename.concat dir "proto.ml") structure)
          .Refine.findings
      in
      Alcotest.(check (list string))
        "Helper.enc 5 _ = 10 bits fits in 10" []
        (rules_of (run (Refine.envelope ~add:10 ())));
      Alcotest.(check bool)
        "but not in 9" true
        (has_rule Refine.rule_budget (run (Refine.envelope ~add:9 ()))))

(* ---- loop widening terminates ----------------------------------------- *)

let test_widening_terminates () =
  (* an n-dependent for-loop strictly grows the accumulator: widening
     must reach a fixpoint (hi -> unbounded) instead of iterating n
     times, and the unbounded width is a budget finding *)
  let src =
    "let run n =\n\
    \  let meter = Dip.meter () in\n\
    \  let w = ref 1 in\n\
    \  for _i = 0 to n do w := !w + 1 done;\n\
    \  Dip.record_prover meter (Array.init n (fun _ -> Bits.of_int ~width:!w 0));\n\
    \  Dip.stats meter\n"
  in
  Alcotest.(check bool)
    "widened width is a budget finding" true
    (has_rule Refine.rule_budget (check ~declared:wide src));
  (* a while-loop over a growing Writer also terminates *)
  let src_while =
    "let run n =\n\
    \  let meter = Dip.meter () in\n\
    \  let w = Bits.Writer.create () in\n\
    \  let i = ref 0 in\n\
    \  while !i < n do\n\
    \    Bits.Writer.bool w true;\n\
    \    incr i\n\
    \  done;\n\
    \  Dip.record_prover meter (Array.init n (fun _ -> Bits.Writer.contents w));\n\
    \  Dip.stats meter\n"
  in
  Alcotest.(check bool)
    "writer loop widens and is caught" true
    (has_rule Refine.rule_budget (check ~declared:wide src_while))

(* ---- annotations ------------------------------------------------------- *)

let test_annotation_trusted () =
  (* a site width annotation is a trusted axiom checked against the
     envelope symbolically *)
  let site ann =
    Printf.sprintf
      "let run n =\n\
      \  let meter = Dip.meter () in\n\
      \  (* dipp-refine: width <= %s *)\n\
      \  Dip.record_prover meter (Array.init n (fun v -> opaque_label v));\n\
      \  Dip.stats meter\n"
      ann
  in
  Alcotest.(check (list string))
    "40*loglog + 40 within 40*loglog + 60" []
    (rules_of (check ~declared:wide (site "40*loglog + 40")));
  Alcotest.(check bool)
    "90*loglog overflows the envelope" true
    (has_rule Refine.rule_budget (check ~declared:wide (site "90*loglog")));
  Alcotest.(check bool)
    "log is not provably below loglog" true
    (has_rule Refine.rule_budget (check ~declared:wide (site "log")))

let test_annotation_malformed () =
  let annots = Refine.annotations_of_source "let x = 1\n(* dipp-refine: width <= 3^loglog *)\n" in
  Alcotest.(check (list string))
    "malformed form flagged" [ Refine.rule_annotation ]
    (rules_of (Refine.annotation_findings ~filename:"fixture.ml" annots));
  let ok = Refine.annotations_of_source "(* dipp-refine: value <= 2*loglog + 4 *)\nlet x = 1\n" in
  Alcotest.(check (list string))
    "well-formed annotation is quiet" []
    (rules_of (Refine.annotation_findings ~filename:"fixture.ml" ok));
  (* prose mentioning the marker is not an annotation attempt *)
  let prose = Refine.annotations_of_source "(* dipp-refine: annotations are described in ANALYSIS.md *)\n" in
  Alcotest.(check (list string))
    "prose mention ignored" []
    (rules_of (Refine.annotation_findings ~filename:"fixture.ml" prose))

let test_suppression () =
  (* through the full linter (which derives the envelope from the bounds
     registry row for lr_sorting.ml), a suppression token silences the
     finding *)
  let bad =
    "let run n =\n\
    \  let meter = Dip.meter () in\n\
    \  Dip.record_prover meter (Array.init n (fun _ -> Bits.of_int ~width:8192 0));\n\
    \  Dip.stats meter\n"
  in
  Alcotest.(check bool)
    "over-wide label fires through lint_source" true
    (has_rule Refine.rule_budget (Lint.lint_source ~filename:"lr_sorting.ml" bad));
  let suppressed =
    "let run n =\n\
    \  let meter = Dip.meter () in\n\
    \  (* dipp-lint: allow refine-budget *)\n\
    \  Dip.record_prover meter (Array.init n (fun _ -> Bits.of_int ~width:8192 0));\n\
    \  Dip.stats meter\n"
  in
  Alcotest.(check bool)
    "allow token silences it" false
    (has_rule Refine.rule_budget (Lint.lint_source ~filename:"lr_sorting.ml" suppressed))

(* ---- the subscript auditor (refine-index) ------------------------------ *)

let test_index_safe () =
  let src =
    "let run n =\n\
    \  let a = Array.make n 0 in\n\
    \  Dip.all_accept ~n (fun i -> a.(i) >= 0)\n"
  in
  let r = analyze src in
  Alcotest.(check (list string)) "no findings" [] (rules_of r.Refine.findings);
  match r.Refine.safe with
  | [ s ] ->
      Alcotest.(check int) "safe site line" 3 s.Refine.sline;
      Alcotest.(check bool) "describes the proof" true (contains s.Refine.sdesc "proved within")
  | l -> Alcotest.failf "expected one proved-safe subscript, got %d" (List.length l)

let test_index_out_of_bounds () =
  let src =
    "let run n =\n\
    \  let a = Array.make n 0 in\n\
    \  Dip.all_accept ~n (fun i -> a.(i + n) >= 0)\n"
  in
  let findings = check src in
  Alcotest.(check bool) "provable OOB caught" true (has_rule Refine.rule_index findings);
  let f = List.find (fun f -> String.equal f.Report.rule Refine.rule_index) findings in
  Alcotest.(check bool) "message says so" true (contains f.Report.msg "out of bounds")

let test_unsafe_sub_gate () =
  (* provably in range: proved safe, no finding *)
  let ok = "let run _n = Bits.unsafe_sub (Bits.of_int ~width:8 0) ~pos:1 ~len:4\n" in
  let r = analyze ok in
  Alcotest.(check (list string)) "in-range slice clean" [] (rules_of r.Refine.findings);
  Alcotest.(check bool)
    "and recorded as proved safe" true
    (List.exists (fun s -> contains s.Refine.sdesc "unsafe_sub") r.Refine.safe);
  (* reached but unprovable: the source length is opaque *)
  Alcotest.(check bool)
    "opaque source length is a finding" true
    (has_rule Refine.rule_index (check "let run b = Bits.unsafe_sub b ~pos:0 ~len:4\n"));
  (* never reached by the evaluator: the syntactic gate fires *)
  let findings = check "let helper b = Bits.unsafe_sub b ~pos:0 ~len:4\n" in
  Alcotest.(check bool) "unreached site gated" true (has_rule Refine.rule_index findings);
  let f = List.find (fun f -> String.equal f.Report.rule Refine.rule_index) findings in
  Alcotest.(check bool) "explains why" true (contains f.Report.msg "not reached")

let test_flat_read_gate () =
  (* Enc.int accumulates an exact width, so a read inside the encoded
     prefix proves through the to_bits transfer *)
  let ok =
    "let run _n =\n\
    \  let e = Bits_flat.Enc.create 16 in\n\
    \  Bits_flat.Enc.int e ~width:8 0;\n\
    \  Bits_flat.unsafe_int (Bits_flat.Enc.to_bits e) ~pos:1 ~width:4\n"
  in
  let r = analyze ok in
  Alcotest.(check (list string)) "in-range flat read clean" [] (rules_of r.Refine.findings);
  Alcotest.(check bool)
    "and recorded as proved safe" true
    (List.exists (fun s -> contains s.Refine.sdesc "Bits_flat.unsafe_int") r.Refine.safe);
  (* reached but unprovable: the source length is opaque *)
  let findings = check "let run b = Bits_flat.unsafe_int b ~pos:0 ~width:4\n" in
  Alcotest.(check bool) "opaque source length is a finding" true
    (has_rule Refine.rule_index findings);
  let f = List.find (fun f -> String.equal f.Report.rule Refine.rule_index) findings in
  Alcotest.(check bool)
    "finding points at the checked reader" true
    (contains f.Report.msg "Bits_flat.read_int");
  (* never reached by the evaluator: the syntactic gate fires *)
  let findings = check "let helper b = Bits_flat.unsafe_int b ~pos:0 ~width:4\n" in
  Alcotest.(check bool) "unreached flat site gated" true (has_rule Refine.rule_index findings)

let test_flat_encoder_budget () =
  (* the Enc transfers track accumulated width, so flat-encoded labels
     participate in the budget rule exactly like Bits.Writer ones *)
  let flat_fixture width =
    Printf.sprintf
      "let run n =\n\
      \  let meter = Dip.meter () in\n\
      \  Dip.record_prover meter\n\
      \    (Array.init n (fun _ ->\n\
      \       let e = Bits_flat.Enc.create 8 in\n\
      \       Bits_flat.Enc.int e ~width:%s 1;\n\
      \       Bits_flat.Enc.bool e true;\n\
      \       Bits_flat.Enc.to_bits e));\n\
      \  Dip.stats meter\n"
      width
  in
  Alcotest.(check (list string))
    "5-bit flat label within 40*loglog + 60" []
    (rules_of (check ~declared:wide (flat_fixture "4")));
  let findings = check ~declared:wide (flat_fixture "4096") in
  Alcotest.(check bool) "4097-bit flat label caught" true (has_rule Refine.rule_budget findings)

(* ---- mutation checks: the verdict flips both ways ---------------------- *)

let locate_lib () =
  List.find_opt
    (fun dir -> Sys.file_exists (Filename.concat dir "dip/dip.ml"))
    [ "../lib"; "lib"; "../../lib"; "../../../lib" ]

let test_mutation_real_row () =
  (* the shipped lr_sorting module is clean under its registry envelope;
     narrowing the row flips the verdict to findings *)
  match locate_lib () with
  | None -> Alcotest.fail "cannot locate lib/ from the test working directory"
  | Some dir -> (
      let file = Filename.concat dir "protocols/lr_sorting.ml" in
      let src = In_channel.with_open_bin file In_channel.input_all in
      let program = Typed_scan.load_tree dir in
      let annots = Refine.annotations_of_source src in
      let structure = Ast_scan.parse_file file in
      let run declared =
        (Refine.analyze ~program ~annots ~declared ~filename:file structure).Refine.findings
      in
      match Bounds.find "lr_sorting" with
      | None -> Alcotest.fail "lr_sorting has no bounds row"
      | Some row ->
          Alcotest.(check (list string))
            "clean under the registry envelope" []
            (rules_of (run (Refine.envelope_of_shape row.Bounds.shape)));
          Alcotest.(check bool)
            "narrowed envelope flips the verdict" true
            (has_rule Refine.rule_budget (run (Refine.envelope ~loglog:1 ~add:0 ()))))

let test_mutation_fixture_constant () =
  (* same envelope, widened width constant: pass -> fail *)
  Alcotest.(check (list string))
    "original constant passes" []
    (rules_of (check ~declared:wide (record_fixture "16")));
  Alcotest.(check bool)
    "widened constant fails" true
    (has_rule Refine.rule_budget (check ~declared:wide (record_fixture "(16 * 512)")))

(* ---- interval soundness (QCheck) --------------------------------------- *)

(* random constant arithmetic as (source, value) pairs; every operator
   exercised has a transfer function, and every generated value is a
   legal nonnegative width *)
let expr_gen =
  let open QCheck.Gen in
  let leaf = map (fun c -> (string_of_int c, c)) (int_range 0 20) in
  sized_size (int_range 0 4)
  @@ fix (fun self k ->
         if k = 0 then leaf
         else
           let sub = self (k - 1) in
           frequency
             [
               (2, leaf);
               (3, map2 (fun (sa, va) (sb, vb) -> (Printf.sprintf "(%s + %s)" sa sb, va + vb)) sub sub);
               ( 2,
                 map2
                   (fun (sa, va) (sb, vb) -> (Printf.sprintf "(max (%s - %s) 0)" sa sb, max (va - vb) 0))
                   sub sub );
               (2, map2 (fun (sa, va) (sb, vb) -> (Printf.sprintf "(min %s %s)" sa sb, min va vb)) sub sub);
               (2, map2 (fun (sa, va) (sb, vb) -> (Printf.sprintf "(max %s %s)" sa sb, max va vb)) sub sub);
               (1, map2 (fun (sa, va) c -> (Printf.sprintf "(%s * %d)" sa c, va * c)) sub (int_range 0 5));
               (1, map2 (fun (sa, va) c -> (Printf.sprintf "(%s mod %d)" sa c, va mod c)) sub (int_range 1 7));
             ])

let test_interval_sound =
  QCheck.Test.make ~name:"inferred interval contains the concrete width" ~count:60
    (QCheck.make ~print:fst expr_gen)
    (fun (src, v) ->
      let r = analyze (record_fixture src) in
      match (r.Refine.label_lo, r.Refine.label_hi) with
      | Some lo, Some hi -> (
          match (Refine.eval_form lo ~n:64 ~delta:8, Refine.eval_form hi ~n:64 ~delta:8) with
          | Some l, Some h -> l <= v && v <= h
          | _ -> false)
      | _ -> false)

let test_form_leq_sound =
  (* form_leq f g implies f <= g pointwise on sampled instance sizes *)
  let coeffs = QCheck.Gen.(quad (int_range 0 5) (int_range 0 5) (int_range 0 5) (int_range 0 50)) in
  QCheck.Test.make ~name:"form_leq is pointwise sound" ~count:200
    (QCheck.make
       ~print:(fun ((a, b, c, d), (a', b', c', d')) ->
         Printf.sprintf "%d*ll+%d*l+%d*ld+%d vs %d*ll+%d*l+%d*ld+%d" a b c d a' b' c' d')
       QCheck.Gen.(pair coeffs coeffs))
    (fun ((a, b, c, d), (a', b', c', d')) ->
      let f = Refine.envelope ~loglog:a ~log:b ~logdelta:c ~add:d () in
      let g = Refine.envelope ~loglog:a' ~log:b' ~logdelta:c' ~add:d' () in
      (not (Refine.form_leq f g))
      || List.for_all
           (fun (n, delta) ->
             match (Refine.eval_form f ~n ~delta, Refine.eval_form g ~n ~delta) with
             | Some x, Some y -> x <= y
             | _ -> false)
           [ (2, 2); (16, 3); (1024, 7); (1_000_000, 40); (1_000_000, 1_000_000) ])

(* ---- the CLI rule registry (--list-rules) ------------------------------ *)

let test_list_rules () =
  let buf = Buffer.create 256 in
  let out = Format.formatter_of_buffer buf in
  let code = Cli.run ~out ~err:out [| "dipp_lint"; "--list-rules" |] in
  Format.pp_print_flush out ();
  Alcotest.(check int) "exit 0" 0 code;
  let text = Buffer.contents buf in
  List.iter
    (fun (r : Lint.rule) ->
      Alcotest.(check bool) (r.Lint.id ^ " listed") true (contains text r.Lint.id))
    Lint.rules;
  let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text) in
  Alcotest.(check int) "one line per registered rule" (List.length Lint.rules) (List.length lines)

let () =
  Alcotest.run "refine"
    [
      ( "budget",
        [
          Alcotest.test_case "constant vs envelope" `Quick test_budget_constant;
          Alcotest.test_case "per-expression finding" `Quick test_budget_per_expression;
          Alcotest.test_case "unbounded width" `Quick test_budget_unbounded;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "affine helper" `Quick test_affine_helper;
          Alcotest.test_case "cross-module helper" `Quick test_cross_module_helper;
          Alcotest.test_case "loop widening terminates" `Quick test_widening_terminates;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "trusted width annotation" `Quick test_annotation_trusted;
          Alcotest.test_case "malformed annotation" `Quick test_annotation_malformed;
          Alcotest.test_case "suppression token" `Quick test_suppression;
        ] );
      ( "index",
        [
          Alcotest.test_case "proved safe" `Quick test_index_safe;
          Alcotest.test_case "provably out of bounds" `Quick test_index_out_of_bounds;
          Alcotest.test_case "unsafe_sub gate" `Quick test_unsafe_sub_gate;
          Alcotest.test_case "flat read gate" `Quick test_flat_read_gate;
          Alcotest.test_case "flat encoder budget" `Quick test_flat_encoder_budget;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "narrowing a real row" `Quick test_mutation_real_row;
          Alcotest.test_case "widening a fixture constant" `Quick test_mutation_fixture_constant;
        ] );
      ("soundness", [ qtest test_interval_sound; qtest test_form_leq_sound ]);
      ("cli", [ Alcotest.test_case "--list-rules matches the registry" `Quick test_list_rules ]);
    ]
