(* DIP framework: metering, Lemma 2.3 forest encoding, Lemma 2.4 edge-label
   simulation, Lemma 2.5 spanning-tree verification, Lemma 2.6 multiset
   equality. *)

let qtest = QCheck_alcotest.to_alcotest

(* ---- Dip meter -------------------------------------------------------- *)

let test_meter_rounds_and_sizes () =
  let m = Dip.meter () in
  Dip.record_prover m [| Bits.of_string "101"; Bits.of_string "11" |];
  Dip.record_verifier m [| Bits.of_string "0"; Bits.empty |];
  Dip.record_prover m [| Bits.of_string "1"; Bits.of_string "11111" |];
  let s = Dip.stats m in
  Alcotest.(check int) "rounds" 3 s.Dip.interaction_rounds;
  Alcotest.(check int) "proof size" 5 s.Dip.proof_size_bits;
  Alcotest.(check int) "node total" 7 s.Dip.max_node_total_bits;
  Alcotest.(check int) "prover total" 11 s.Dip.total_prover_bits;
  Alcotest.(check int) "verifier total" 1 s.Dip.total_verifier_bits;
  Alcotest.(check (list bool)) "phases"
    [ true; false; true ]
    (List.map (fun p -> p = Dip.Prover_phase) s.Dip.phases)

let test_merge_parallel () =
  let mk rounds proof =
    {
      Dip.interaction_rounds = rounds;
      proof_size_bits = proof;
      max_node_total_bits = proof;
      total_prover_bits = 10 * proof;
      total_verifier_bits = proof;
      phases = [];
      per_phase = [];
    }
  in
  let m = Dip.merge_parallel [ mk 3 10; mk 5 7 ] in
  Alcotest.(check int) "rounds max" 5 m.Dip.interaction_rounds;
  Alcotest.(check int) "proof sums" 17 m.Dip.proof_size_bits;
  (* per-phase schedules merge round by round: phase maxima add on shared
     rounds, the longer schedule's tail (and phase kinds) survive *)
  let a =
    { (mk 3 10) with Dip.per_phase = [ (Dip.Prover_phase, 10); (Dip.Verifier_phase, 2); (Dip.Prover_phase, 4) ] }
  and b = { (mk 2 7) with Dip.per_phase = [ (Dip.Prover_phase, 7); (Dip.Verifier_phase, 3) ] } in
  let m2 = Dip.merge_parallel [ a; b ] in
  Alcotest.(check (list (pair bool int)))
    "per-phase merged per round"
    [ (true, 17); (false, 5); (true, 4) ]
    (List.map (fun (ph, bits) -> (ph = Dip.Prover_phase, bits)) m2.Dip.per_phase)

(* A stats value whose schedule alternates P, V, P, ... — any two such
   schedules are prefix-compatible, so merges never raise. *)
let stats_of_sizes sizes =
  let per_phase =
    List.mapi
      (fun i bits -> ((if i mod 2 = 0 then Dip.Prover_phase else Dip.Verifier_phase), bits))
      sizes
  in
  let sum_phase want =
    List.fold_left (fun acc (ph, b) -> if ph = want then acc + b else acc) 0 per_phase
  in
  let prover = sum_phase Dip.Prover_phase and verifier = sum_phase Dip.Verifier_phase in
  {
    Dip.interaction_rounds = List.length sizes;
    proof_size_bits = prover;
    max_node_total_bits = prover + verifier;
    total_prover_bits = prover;
    total_verifier_bits = verifier;
    phases = List.map fst per_phase;
    per_phase;
  }

let test_merge_phase_mismatch () =
  let p = stats_of_sizes [ 3; 1 ] in
  (* same length but the first round claims to be a verifier phase *)
  let v = { p with Dip.per_phase = [ (Dip.Verifier_phase, 2); (Dip.Prover_phase, 1) ] } in
  let expect_invalid name f =
    match f () with
    | (_ : Dip.stats) -> Alcotest.failf "%s: phase-kind mismatch did not raise" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "merge_parallel" (fun () -> Dip.merge_parallel [ p; v ]);
  expect_invalid "merge_parallel (swapped)" (fun () -> Dip.merge_parallel [ v; p ]);
  expect_invalid "merge_trials" (fun () -> Dip.merge_trials [ p; v ]);
  expect_invalid "merge_trials (swapped)" (fun () -> Dip.merge_trials [ v; p ]);
  (* prefix-compatible inputs of different lengths still merge fine *)
  let longer = stats_of_sizes [ 5; 2; 7 ] in
  let m = Dip.merge_parallel [ p; longer ] in
  Alcotest.(check int) "compatible lengths merge" 3 (List.length m.Dip.per_phase)

let arb_sizes = QCheck.(list_of_size Gen.(int_range 1 5) (int_bound 50))

let prop_merge_assoc =
  QCheck.Test.make ~name:"merge_trials/merge_parallel: associative" ~count:200
    QCheck.(triple arb_sizes arb_sizes arb_sizes)
    (fun (sa, sb, sc) ->
      let a = stats_of_sizes sa and b = stats_of_sizes sb and c = stats_of_sizes sc in
      let flat_t = Dip.merge_trials [ a; b; c ]
      and flat_p = Dip.merge_parallel [ a; b; c ] in
      Dip.merge_trials [ Dip.merge_trials [ a; b ]; c ] = flat_t
      && Dip.merge_trials [ a; Dip.merge_trials [ b; c ] ] = flat_t
      && Dip.merge_parallel [ Dip.merge_parallel [ a; b ]; c ] = flat_p
      && Dip.merge_parallel [ a; Dip.merge_parallel [ b; c ] ] = flat_p)

let prop_merge_singleton_identity =
  QCheck.Test.make ~name:"merge_trials/merge_parallel: identity on singletons" ~count:200
    arb_sizes
    (fun sizes ->
      let s = stats_of_sizes sizes in
      Dip.merge_trials [ s ] = s && Dip.merge_parallel [ s ] = s)

let prop_merge_envelope =
  QCheck.Test.make ~name:"merge_trials envelope >= inputs; merge_parallel totals = sums"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 4) arb_sizes)
    (fun batch ->
      let sts = List.map stats_of_sizes batch in
      let mt = Dip.merge_trials sts and mp = Dip.merge_parallel sts in
      let dominates s =
        mt.Dip.proof_size_bits >= s.Dip.proof_size_bits
        && mt.Dip.max_node_total_bits >= s.Dip.max_node_total_bits
        && mt.Dip.interaction_rounds >= s.Dip.interaction_rounds
        && List.for_all2
             (fun (_, m) (_, b) -> m >= b)
             (List.filteri (fun i _ -> i < List.length s.Dip.per_phase) mt.Dip.per_phase)
             s.Dip.per_phase
      in
      let sum f = List.fold_left (fun acc s -> acc + f s) 0 sts in
      List.for_all dominates sts
      && mt.Dip.total_prover_bits = sum (fun s -> s.Dip.total_prover_bits)
      && mp.Dip.proof_size_bits = sum (fun s -> s.Dip.proof_size_bits)
      && mp.Dip.total_prover_bits = sum (fun s -> s.Dip.total_prover_bits)
      && mp.Dip.total_verifier_bits = sum (fun s -> s.Dip.total_verifier_bits))

let test_all_accept () =
  let v = Dip.all_accept ~n:5 (fun i -> i <> 2 && i <> 4) in
  Alcotest.(check bool) "rejected" false v.Dip.accepted;
  Alcotest.(check (list int)) "rejecting nodes" [ 2; 4 ] v.Dip.rejecting

(* ---- Forest encoding (Lemma 2.3) --------------------------------------- *)

let bfs_parents g root =
  Array.mapi (fun v p -> if p = v then -1 else p) (Traversal.spanning_tree g root)

let test_forest_encoding_path () =
  let g = Graph.path_graph 10 in
  let parent = bfs_parents g 0 in
  let enc = Forest_encoding.encode g ~parent in
  match Forest_encoding.decode_forest g enc with
  | Some p -> Alcotest.(check (array int)) "decoded" parent p
  | None -> Alcotest.fail "well-formed encoding"

let prop_forest_encoding_roundtrip =
  QCheck.Test.make ~name:"forest encoding: decode inverts encode on planar graphs" ~count:40
    QCheck.(pair (int_bound 10000) (int_range 5 80))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      let parent = bfs_parents g (seed mod n) in
      let enc = Forest_encoding.encode g ~parent in
      match Forest_encoding.decode_forest g enc with Some p -> p = parent | None -> false)

let prop_forest_encoding_constant_size =
  QCheck.Test.make ~name:"forest encoding: O(1) bits on planar graphs" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 5 150))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      let enc = Forest_encoding.encode g ~parent:(bfs_parents g 0) in
      let cbits = Forest_encoding.color_bits enc in
      (* <= 6 colors needs 3 bits; total width 2*3 + 2 = 8 *)
      Forest_encoding.width ~cbits <= 8)

let test_forest_encoding_serialization () =
  let l = { Forest_encoding.c1 = 5; c2 = 2; parity = true; root = false } in
  let bits = Forest_encoding.to_bits ~cbits:3 l in
  Alcotest.(check int) "width" (Forest_encoding.width ~cbits:3) (Bits.length bits);
  let l' = Forest_encoding.read ~cbits:3 (Bits.Reader.of_bits bits) in
  Alcotest.(check bool) "roundtrip" true (l = l')

let test_forest_encoding_children () =
  let g = Graph.star 6 in
  let parent = Array.init 6 (fun v -> if v = 0 then -1 else 0) in
  let enc = Forest_encoding.encode g ~parent in
  let nbrs = Array.to_list (Array.map (fun u -> (u, enc.(u))) (Graph.neighbors g 0)) in
  let kids = Forest_encoding.children_of ~own:enc.(0) ~nbrs in
  Alcotest.(check (list int)) "children" [ 1; 2; 3; 4; 5 ] (List.sort Int.compare kids)

let test_forest_encoding_multi_roots () =
  let g = Graph.create ~n:6 [ (0, 1); (1, 2); (3, 4); (4, 5); (2, 3) ] in
  let parent = [| -1; 0; 1; -1; 3; 4 |] in
  let enc = Forest_encoding.encode g ~parent in
  match Forest_encoding.decode_forest g enc with
  | Some p -> Alcotest.(check (array int)) "two roots decoded" parent p
  | None -> Alcotest.fail "well-formed"

(* ---- Edge labels (Lemma 2.4) ------------------------------------------- *)

let prop_edge_labels_roundtrip =
  QCheck.Test.make ~name:"edge labels: every edge's label readable at both ends" ~count:30
    QCheck.(pair (int_bound 10000) (int_range 5 60))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      let el = Edge_labels.create g in
      let width = 7 in
      let value (u, v) = Bits.of_int ~width ((((u * 131) + v) * 7) mod 128) in
      let labels = Edge_labels.assign el ~width value in
      Graph.fold_edges
        (fun e acc -> acc && Bits.equal (Edge_labels.read_edge el ~width ~labels e) (value e))
        g true)

let test_edge_labels_constant_fields () =
  let g = Gen.planar ~n:120 5 in
  let el = Edge_labels.create g in
  Alcotest.(check bool) "<= 5 forests" true (Edge_labels.forests el <= 5);
  let labels = Edge_labels.assign el ~width:3 (fun _ -> Bits.of_string "101") in
  Array.iter
    (fun l -> Alcotest.(check int) "label width" (3 * Edge_labels.forests el) (Bits.length l))
    labels

let test_edge_labels_child_is_endpoint () =
  let g = Graph.cycle_graph 7 in
  let el = Edge_labels.create g in
  Graph.iter_edges
    (fun (u, v) ->
      let c = Edge_labels.child_of_edge el (u, v) in
      Alcotest.(check bool) "endpoint" true (c = u || c = v))
    g

(* ---- Spanning tree verification (Lemma 2.5) ----------------------------- *)

let test_st_completeness () =
  for seed = 0 to 9 do
    let g = Gen.planar ~n:60 seed in
    let parent = bfs_parents g 0 in
    let verdict, stats = Spanning_tree_verify.run ~seed g ~parent in
    Alcotest.(check bool) "accepts spanning tree" true verdict.Dip.accepted;
    Alcotest.(check int) "3 rounds" 3 stats.Dip.interaction_rounds
  done

let test_st_rejects_two_components () =
  let hits = ref 0 in
  for seed = 0 to 19 do
    let g = Graph.path_graph 40 in
    let parent = Array.init 40 (fun v -> if v = 0 || v = 20 then -1 else v - 1) in
    let verdict, _ = Spanning_tree_verify.run ~seed ~reps:8 g ~parent in
    if not verdict.Dip.accepted then incr hits
  done;
  Alcotest.(check bool) "rejects w.h.p." true (!hits >= 19)

let test_st_rejects_cycle () =
  (* parent pointers forming a cycle on part of the graph *)
  let hits = ref 0 in
  for seed = 0 to 19 do
    let g = Graph.create ~n:6 [ (0,1);(1,2);(2,3);(3,4);(4,5);(5,3) ] in
    let parent = [| -1; 0; 1; 4; 5; 3 |] in
    (* 3 -> 4 -> 5 -> 3 is a parent cycle *)
    let verdict, _ = Spanning_tree_verify.run ~seed ~reps:8 g ~parent in
    if not verdict.Dip.accepted then incr hits
  done;
  Alcotest.(check bool) "rejects w.h.p." true (!hits >= 18)

let test_st_soundness_amplification () =
  (* more repetitions = fewer escapes; with reps=1 some escapes expected *)
  let escapes reps =
    let e = ref 0 in
    for seed = 0 to 99 do
      let g = Graph.path_graph 30 in
      let parent = Array.init 30 (fun v -> if v = 0 || v = 15 then -1 else v - 1) in
      let verdict, _ = Spanning_tree_verify.run ~seed ~reps g ~parent in
      if verdict.Dip.accepted then incr e
    done;
    !e
  in
  let e1 = escapes 1 and e6 = escapes 6 in
  Alcotest.(check bool) "amplification helps" true (e6 <= e1 && e6 = 0)

(* ---- Multiset equality (Lemma 2.6) --------------------------------------- *)

let star_instance n s1 s2 k universe =
  let tree = Graph.star n in
  let parent = Array.init n (fun v -> if v = 0 then -1 else 0) in
  { Multiset_equality.tree; parent; s1; s2; k; universe }

let test_mseq_accepts_equal () =
  let n = 8 in
  let s1 = Array.init n (fun v -> [ v; (v * 2) mod 10 ]) in
  let s2 = Array.init n (fun v -> [ (v * 2) mod 10; v ]) in
  (* same multiset per node, different order *)
  let inst = star_instance n s1 s2 16 16 in
  let verdict, stats = Multiset_equality.run ~seed:1 inst in
  Alcotest.(check bool) "accepts" true verdict.Dip.accepted;
  Alcotest.(check int) "2 rounds" 2 stats.Dip.interaction_rounds

let test_mseq_accepts_redistributed () =
  (* equal as global multisets even though per-node sets differ *)
  let n = 4 in
  let s1 = [| [ 1; 2 ]; [ 3 ]; []; [ 4 ] |] in
  let s2 = [| []; [ 4; 3 ]; [ 2 ]; [ 1 ] |] in
  let inst = star_instance n s1 s2 8 8 in
  let verdict, _ = Multiset_equality.run ~seed:3 inst in
  Alcotest.(check bool) "accepts" true verdict.Dip.accepted

let test_mseq_rejects_unequal () =
  let hits = ref 0 in
  for seed = 0 to 29 do
    let n = 6 in
    let s1 = [| [ 1 ]; [ 2 ]; [ 3 ]; []; []; [] |] in
    let s2 = [| [ 1 ]; [ 2 ]; [ 5 ]; []; []; [] |] in
    let inst = star_instance n s1 s2 8 8 in
    let verdict, _ = Multiset_equality.run ~seed inst in
    if not verdict.Dip.accepted then incr hits
  done;
  Alcotest.(check bool) "rejects w.h.p." true (!hits >= 29)

let test_mseq_multiplicity_sensitivity () =
  let hits = ref 0 in
  for seed = 0 to 29 do
    let n = 4 in
    let s1 = [| [ 7; 7 ]; []; []; [] |] in
    let s2 = [| [ 7 ]; [ 7 ]; [ 7 ]; [] |] in
    (* multiset sizes 2 vs 3 *)
    let inst = star_instance n s1 s2 8 8 in
    let verdict, _ = Multiset_equality.run ~seed inst in
    if not verdict.Dip.accepted then incr hits
  done;
  Alcotest.(check bool) "multiplicities matter" true (!hits >= 29)

let prop_mseq_deep_tree =
  QCheck.Test.make ~name:"multiset equality: works over deep trees" ~count:30
    QCheck.(pair (int_bound 1000) (int_range 3 40))
    (fun (seed, n) ->
      let tree = Graph.path_graph n in
      let parent = Array.init n (fun v -> v - 1) in
      let rng = Rng.create seed in
      let s1 = Array.init n (fun _ -> List.init (Rng.int rng 3) (fun _ -> Rng.int rng 20)) in
      (* redistribute the same global multiset *)
      let all = List.concat (Array.to_list s1) in
      let s2 = Array.make n [] in
      List.iter (fun x ->
          let i = Rng.int rng n in
          s2.(i) <- x :: s2.(i))
        all;
      let inst = { Multiset_equality.tree; parent; s1; s2; k = max 4 (List.length all); universe = 32 } in
      let verdict, _ = Multiset_equality.run ~seed inst in
      verdict.Dip.accepted)

let () =
  Alcotest.run "dip"
    [
      ( "meter",
        [
          Alcotest.test_case "rounds and sizes" `Quick test_meter_rounds_and_sizes;
          Alcotest.test_case "merge parallel" `Quick test_merge_parallel;
          Alcotest.test_case "merge phase mismatch raises" `Quick test_merge_phase_mismatch;
          qtest prop_merge_assoc;
          qtest prop_merge_singleton_identity;
          qtest prop_merge_envelope;
          Alcotest.test_case "all accept" `Quick test_all_accept;
        ] );
      ( "forest-encoding",
        [
          Alcotest.test_case "path" `Quick test_forest_encoding_path;
          Alcotest.test_case "serialization" `Quick test_forest_encoding_serialization;
          Alcotest.test_case "children" `Quick test_forest_encoding_children;
          Alcotest.test_case "multi roots" `Quick test_forest_encoding_multi_roots;
          qtest prop_forest_encoding_roundtrip;
          qtest prop_forest_encoding_constant_size;
        ] );
      ( "edge-labels",
        [
          qtest prop_edge_labels_roundtrip;
          Alcotest.test_case "constant fields" `Quick test_edge_labels_constant_fields;
          Alcotest.test_case "child endpoint" `Quick test_edge_labels_child_is_endpoint;
        ] );
      ( "spanning-tree-verify",
        [
          Alcotest.test_case "completeness" `Quick test_st_completeness;
          Alcotest.test_case "rejects two components" `Quick test_st_rejects_two_components;
          Alcotest.test_case "rejects parent cycle" `Quick test_st_rejects_cycle;
          Alcotest.test_case "amplification" `Quick test_st_soundness_amplification;
        ] );
      ( "multiset-equality",
        [
          Alcotest.test_case "accepts equal" `Quick test_mseq_accepts_equal;
          Alcotest.test_case "accepts redistributed" `Quick test_mseq_accepts_redistributed;
          Alcotest.test_case "rejects unequal" `Quick test_mseq_rejects_unequal;
          Alcotest.test_case "multiplicities" `Quick test_mseq_multiplicity_sensitivity;
          qtest prop_mseq_deep_tree;
        ] );
    ]
