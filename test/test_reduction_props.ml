(* Property tests for the Figure 2/3 reduction DAG.

   Lemma 7.3 is the hinge of the planarity protocols: a rotation system
   rho of G is a planar embedding iff the reduced graph h(G, T, rho) is
   path-outerplanar along its Euler order.  These QCheck properties
   exercise both directions on random planar instances (and random
   corruptions), plus structural invariants of the reduction and
   end-to-end honest-prover acceptance down the whole DAG
   (Planarity -> Planar_embedding -> Path_outerplanarity -> Lr_sorting).
   Counterexamples are shrunk by QCheck and printed as (seed, n) pairs. *)

let qtest = QCheck_alcotest.to_alcotest
let seed_n = QCheck.(pair (int_bound 100000) (int_range 8 80))

let reduction inst =
  let root = 0 in
  let parent = Traversal.spanning_tree inst.Planar_embedding.graph root in
  let parent = Array.mapi (fun v p -> if p = v then -1 else p) parent in
  Planar_embedding.reduce inst ~root ~parent

let euler_path h = List.init (Graph.n h) Fun.id

let embedded inst_of (seed, n) =
  let g = Gen.planar ~n seed in
  match Gen.embedding g with
  | None -> QCheck.Test.fail_report "DMP found no embedding for a planar graph"
  | Some rot -> inst_of { Planar_embedding.graph = g; rot }

(* Lemma 7.3, forward: a planar rotation system reduces to a graph whose
   Euler order is a nesting Hamiltonian path. *)
let prop_h_path_outerplanar =
  QCheck.Test.make ~name:"reduction: h(G,T,rho) of an embedding is path-outerplanar" ~count:50
    seed_n
    (embedded (fun inst ->
         Planar_embedding.is_yes_instance inst
         &&
         let red = reduction inst in
         Outerplanar.check_path_witness red.Planar_embedding.h
           (euler_path red.Planar_embedding.h)))

(* Lemma 7.3, converse: corrupting the rotation system to nonzero genus
   breaks the nesting of h along the Euler order. *)
let prop_h_corrupted_not_nesting =
  QCheck.Test.make ~name:"reduction: corrupted rho breaks Euler-order nesting" ~count:50 seed_n
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      match Gen.corrupted_embedding g (seed + 1) with
      | None -> QCheck.assume_fail ()
      | Some rot ->
          let inst = { Planar_embedding.graph = g; rot } in
          (not (Planar_embedding.is_yes_instance inst))
          &&
          let red = reduction inst in
          not
            (Outerplanar.check_path_witness red.Planar_embedding.h
               (euler_path red.Planar_embedding.h)))

(* Structural invariants of the copy construction.  The boundary walk of
   the tree emits one corner per node entry plus one per child return —
   2n - 1 corner nodes, listed per owner in copies_of in tour order — and
   one dart node per non-tree dart, 2(m - n + 1) of them, owned (in
   copy_owner) by the dart's tail but not listed in copies_of. *)
let prop_copy_structure =
  QCheck.Test.make ~name:"reduction: corner/dart copy structure of h" ~count:50 seed_n
    (embedded (fun inst ->
         let red = reduction inst in
         let g = inst.Planar_embedding.graph in
         let n_h = Graph.n red.Planar_embedding.h in
         let n_g = Graph.n g in
         let owners_ok =
           Array.for_all
             (fun owner -> owner >= 0 && owner < n_g)
             red.Planar_embedding.copy_owner
         in
         let rec ascending = function
           | a :: (b :: _ as tl) -> a < b && ascending tl
           | [ _ ] | [] -> true
         in
         let back_ok = ref true and corners = ref 0 in
         Array.iteri
           (fun v copies ->
             (match copies with [] -> back_ok := false | _ :: _ -> ());
             if not (ascending copies) then back_ok := false;
             List.iter
               (fun c ->
                 incr corners;
                 if c < 0 || c >= n_h || red.Planar_embedding.copy_owner.(c) <> v then
                   back_ok := false)
               copies)
           red.Planar_embedding.copies_of;
         let darts = 2 * (Graph.m g - (n_g - 1)) in
         owners_ok && !back_ok
         && !corners = (2 * n_g) - 1
         && n_h = !corners + darts))

(* Honest-prover acceptance survives the reduction end-to-end: the
   embedded-planarity protocol accepts, and so does the inner
   path-outerplanarity run it spawned on h (with its own LR-sorting
   sub-run when the committed path decodes). *)
let prop_honest_end_to_end =
  QCheck.Test.make ~name:"reduction: honest acceptance preserved end-to-end" ~count:40 seed_n
    (embedded (fun inst ->
         let r = Planar_embedding.run ~seed:7 ~prover:Planar_embedding.Honest inst in
         r.Planar_embedding.verdict.Dip.accepted
         && r.Planar_embedding.inner.Path_outerplanarity.verdict.Dip.accepted))

(* The full DAG from the top: Planarity (Thm 1.5) picks its own tree and
   rotation, reduces, and must accept every planar instance. *)
let prop_planarity_dag =
  QCheck.Test.make ~name:"reduction: full Planarity DAG accepts planar instances" ~count:30
    QCheck.(pair (int_bound 100000) (int_range 8 60))
    (fun (seed, n) ->
      let g = Gen.planar ~n seed in
      let r = Planarity.run ~seed:(seed + 3) ~prover:Planarity.Honest { Planarity.graph = g } in
      r.Planarity.verdict.Dip.accepted)

let () =
  Alcotest.run "reduction-props"
    [
      ( "lemma-7.3",
        [
          qtest prop_h_path_outerplanar;
          qtest prop_h_corrupted_not_nesting;
          qtest prop_copy_structure;
        ] );
      ("end-to-end", [ qtest prop_honest_end_to_end; qtest prop_planarity_dag ]);
    ]
