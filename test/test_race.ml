(* dipp-race: the domain-safety and determinism pass (ANALYSIS.md).

   Fixture snippets drive Race.analyze directly, one per rule behaviour:
   unguarded shared mutation (module-level and captured), the lockset
   prover, lock discipline (re-entry, submission under a lock, disjoint
   guards, acquisition-order cycles), the merge-only determinism
   contract, the captured-Rng discipline, and trusted annotations with
   their honesty checks.  The mutation tests analyze the real shipped
   modules (lib/trace/label_cache.ml, lib/engine/pool.ml) and flip their
   verdicts by editing the source: dropping the label-cache mutex or
   moving a pooled fold into the closure must each produce a finding.  A
   4-domain stress test pins the runtime promise the pass encodes:
   Pool.run results and the Dip.merge_trials fold are independent of the
   worker count and of trial order. *)

module Race = Dipp_analysis.Race
module Lint = Dipp_analysis.Lint_rules
module Report = Dipp_analysis.Report
module Ast_scan = Dipp_analysis.Ast_scan
module Cli = Dipp_analysis.Cli

let rules_of findings = List.sort_uniq String.compare (List.map (fun f -> f.Report.rule) findings)

let analyze ?(filename = "fixture.ml") src =
  let annots = Race.annotations_of_source src in
  let structure = Ast_scan.parse_string ~filename src in
  let r = Race.analyze ~annots ~filename structure in
  { r with Race.findings = Race.annotation_findings ~filename annots @ r.Race.findings }

let check ?filename src = (analyze ?filename src).Race.findings
let safes ?filename src = (analyze ?filename src).Race.safe
let has_rule rule findings = List.mem rule (rules_of findings)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let some_safe sub ss = List.exists (fun (s : Race.safe) -> contains s.Race.rdesc sub) ss

(* ---- race-shared-mut --------------------------------------------------- *)

let test_shared_global_unguarded () =
  let src = "let total = ref 0\nlet bump () = total := !total + 1\n" in
  let findings = check src in
  Alcotest.(check bool) "unguarded module ref caught" true (has_rule Race.rule_shared findings);
  let f = List.find (fun f -> String.equal f.Report.rule Race.rule_shared) findings in
  Alcotest.(check int) "anchored at the binding" 1 f.Report.line

let test_shared_captured_unguarded () =
  let src =
    "let total n =\n\
    \  let acc = ref 0 in\n\
    \  ignore (Pool.run n (fun i -> acc := !acc + (i * i)));\n\
    \  !acc\n"
  in
  Alcotest.(check bool) "captured ref write caught" true (has_rule Race.rule_shared (check src))

let test_shared_atomic_clean () =
  let src = "let total = Atomic.make 0\nlet bump () = Atomic.incr total\n" in
  Alcotest.(check (list string)) "atomic global is clean" [] (rules_of (check src));
  Alcotest.(check bool) "atomic proof listed" true (some_safe "atomic" (safes src))

let test_shared_guarded_clean () =
  let src =
    "let lock = Mutex.create ()\n\
     let best = ref 0\n\
     let submit v =\n\
    \  Mutex.lock lock;\n\
    \  best := max !best v;\n\
    \  Mutex.unlock lock\n"
  in
  Alcotest.(check (list string)) "mutex-guarded merge is clean" [] (rules_of (check src));
  Alcotest.(check bool) "guarded-by proof listed" true (some_safe "guarded-by `lock`" (safes src))

(* ---- race-lock-discipline ---------------------------------------------- *)

let test_lock_reentry () =
  let src =
    "let m = Mutex.create ()\n\
     let f () = Mutex.lock m; Mutex.lock m; Mutex.unlock m; Mutex.unlock m\n"
  in
  let findings = check src in
  Alcotest.(check bool) "re-entry caught" true (has_rule Race.rule_lock findings);
  let f = List.find (fun f -> String.equal f.Report.rule Race.rule_lock) findings in
  Alcotest.(check bool) "names non-reentrancy" true (contains f.Report.msg "not reentrant")

let test_lock_held_across_submission () =
  let src =
    "let m = Mutex.create ()\n\
     let f n =\n\
    \  Mutex.lock m;\n\
    \  let r = Pool.run n (fun i -> i) in\n\
    \  Mutex.unlock m;\n\
    \  r\n"
  in
  let findings = check src in
  Alcotest.(check bool) "submission under a lock caught" true (has_rule Race.rule_lock findings);
  let f = List.find (fun f -> String.equal f.Report.rule Race.rule_lock) findings in
  Alcotest.(check bool) "names the held lock" true (contains f.Report.msg "`m` held across")

let test_lock_disjoint_guards () =
  let src =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let t = Hashtbl.create 8\n\
     let one k v = Mutex.lock a; Hashtbl.replace t k v; Mutex.unlock a\n\
     let two k v = Mutex.lock b; Hashtbl.replace t k v; Mutex.unlock b\n"
  in
  let findings = check src in
  Alcotest.(check bool) "two guards for one table caught" true (has_rule Race.rule_lock findings);
  let f = List.find (fun f -> String.equal f.Report.rule Race.rule_lock) findings in
  Alcotest.(check bool) "lists both mutexes" true
    (contains f.Report.msg "a" && contains f.Report.msg "b")

let test_lock_order_cycle () =
  let src =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n\
     let g () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b\n"
  in
  let findings = check src in
  Alcotest.(check bool) "opposite acquisition orders caught" true
    (List.exists
       (fun f -> String.equal f.Report.rule Race.rule_lock && contains f.Report.msg "cycle")
       findings);
  (* one consistent order is fine *)
  let consistent =
    "let a = Mutex.create ()\n\
     let b = Mutex.create ()\n\
     let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n\
     let g () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n"
  in
  Alcotest.(check (list string)) "consistent order is clean" [] (rules_of (check consistent))

(* ---- race-determinism -------------------------------------------------- *)

let test_determinism_ordered_under_lock () =
  (* a list cons is order-dependent even inside the critical section *)
  let src =
    "let lock = Mutex.create ()\n\
     let acc = ref [0]\n\
     let add n =\n\
    \  ignore (Pool.run n (fun i -> Mutex.lock lock; acc := i :: !acc; Mutex.unlock lock))\n"
  in
  let findings = check src in
  Alcotest.(check bool) "guarded cons still caught" true
    (has_rule Race.rule_determinism findings);
  Alcotest.(check bool) "but not as a data race" false (has_rule Race.rule_shared findings)

let test_determinism_shared_print () =
  let src = "let show n = ignore (Pool.run n (fun i -> Printf.printf \"%d\" i))\n" in
  Alcotest.(check bool) "pooled printf caught" true
    (has_rule Race.rule_determinism (check src))

let test_determinism_fold_after_join_clean () =
  let src =
    "let total n =\n\
    \  let parts = Pool.run n (fun i -> i * i) in\n\
    \  Array.fold_left ( + ) 0 parts\n"
  in
  Alcotest.(check (list string)) "post-join fold is clean" [] (rules_of (check src))

let test_determinism_guarded_merge_from_pool_clean () =
  let src =
    "let lock = Mutex.create ()\n\
     let best = ref 0\n\
     let f n =\n\
    \  ignore (Pool.run n (fun i -> Mutex.lock lock; best := max !best i; Mutex.unlock lock))\n"
  in
  Alcotest.(check (list string)) "pooled max-merge under a lock is clean" []
    (rules_of (check src))

(* ---- race-rng ---------------------------------------------------------- *)

let test_rng_pooled_draw () =
  let src =
    "let f n =\n\
    \  let rng = Rng.create 42 in\n\
    \  ignore (Pool.run n (fun i -> Rng.int rng (i + 1)))\n"
  in
  Alcotest.(check bool) "pooled draw from captured stream caught" true
    (has_rule Race.rule_rng (check src))

let test_rng_escape () =
  let src =
    "let f n =\n\
    \  let rng = Rng.create 1 in\n\
    \  ignore (Pool.run n (fun i -> Soundness.run_trial rng i))\n"
  in
  Alcotest.(check bool) "captured stream escaping to a callee caught" true
    (has_rule Race.rule_rng (check src))

let test_rng_constant_salt () =
  let src =
    "let f n =\n\
    \  let rng = Rng.create 7 in\n\
    \  ignore (Pool.run n (fun _ -> Rng.split rng 0))\n"
  in
  Alcotest.(check bool) "constant-salt split caught" true (has_rule Race.rule_rng (check src))

let test_rng_per_task_split_clean () =
  let src =
    "let f n =\n\
    \  let rng = Rng.create 7 in\n\
    \  ignore (Pool.run n (fun i -> Rng.split rng i))\n"
  in
  Alcotest.(check (list string)) "task-keyed split is clean" [] (rules_of (check src));
  Alcotest.(check bool) "per-task proof listed" true (some_safe "per-task stream" (safes src))

(* ---- trusted annotations ----------------------------------------------- *)

let test_annotation_domain_local () =
  let src =
    "(* dipp-race: domain-local *)\n\
     let warned = ref false\n\
     let warn () = if not !warned then warned := true\n"
  in
  Alcotest.(check (list string)) "trusted annotation silences the pass" [] (rules_of (check src));
  (* honesty: the assumed proof is visible in the --race-safe listing *)
  Alcotest.(check bool) "trusted proof listed" true
    (some_safe "trusted annotation domain-local" (safes src))

let test_annotation_unknown_mutex () =
  let src = "(* dipp-race: guarded-by ghost *)\nlet t = ref 0\nlet f () = t := 1\n" in
  let findings = check src in
  Alcotest.(check bool) "guarded-by claim without a mutex caught" true
    (List.exists (fun f -> contains f.Report.msg "no Mutex of that name") findings)

let test_annotation_malformed () =
  let src = "(* dipp-race: guarded-by *)\nlet t = ref 0\n" in
  Alcotest.(check bool) "wrong-arity annotation caught" true
    (has_rule Race.rule_shared (check src))

let test_annotation_unused () =
  let src = "(* dipp-race: merge-only *)\nlet f x = x + 1\n" in
  let findings = check src in
  Alcotest.(check bool) "annotation on nothing mutable caught" true
    (List.exists (fun f -> contains f.Report.msg "does not attach") findings)

let test_suppression_token () =
  (* the registry derives suppression tokens, so race rules are valid
     dipp-lint allow targets and invalid ones still error *)
  let bare = "let total = ref 0\nlet bump () = total := !total + 1\n" in
  Alcotest.(check bool) "finding without suppression" true
    (has_rule Race.rule_shared (Lint.lint_source ~filename:"fixture.ml" bare));
  let allowed = "(* dipp-lint: allow race-shared-mut *)\n" ^ bare in
  Alcotest.(check (list string)) "race rule is a valid allow token" []
    (rules_of (Lint.lint_source ~filename:"fixture.ml" allowed))

(* ---- mutation checks: the verdict flips on the shipped modules --------- *)

let locate_lib () =
  List.find_opt
    (fun dir -> Sys.file_exists (Filename.concat dir "dip/dip.ml"))
    [ "../lib"; "lib"; "../../lib"; "../../../lib" ]

let analyze_source ~filename src =
  let annots = Race.annotations_of_source src in
  let structure = Ast_scan.parse_string ~filename src in
  Race.analyze ~annots ~filename structure

let test_mutation_label_cache_lock () =
  match locate_lib () with
  | None -> Alcotest.fail "cannot locate lib/ from the test working directory"
  | Some dir ->
      let file = Filename.concat dir "trace/label_cache.ml" in
      let src = In_channel.with_open_bin file In_channel.input_all in
      Alcotest.(check (list string))
        "shipped label cache is clean" []
        (rules_of (analyze_source ~filename:file src).Race.findings);
      (* drop every lock/unlock of the table's mutex: the guarded-by
         proof must collapse into a shared-mutation finding *)
      let unlocked =
        String.split_on_char '\n' src
        |> List.map (fun line ->
               if contains line "Mutex.lock lock" || contains line "Mutex.unlock lock" then "  ();"
               else line)
        |> String.concat "\n"
      in
      Alcotest.(check bool) "dropping the mutex flips the verdict" true
        (has_rule Race.rule_shared (analyze_source ~filename:file unlocked).Race.findings)

let test_mutation_pool_clean_with_proofs () =
  match locate_lib () with
  | None -> Alcotest.fail "cannot locate lib/ from the test working directory"
  | Some dir ->
      let file = Filename.concat dir "engine/pool.ml" in
      let src = In_channel.with_open_bin file In_channel.input_all in
      let r = analyze_source ~filename:file src in
      Alcotest.(check (list string)) "shipped pool is clean" [] (rules_of r.Race.findings);
      Alcotest.(check bool) "with nonempty proof listing" true (List.length r.Race.safe >= 4);
      Alcotest.(check bool) "including the task-indexed result cells" true
        (some_safe "task-indexed write" r.Race.safe)

let test_mutation_fold_into_closure () =
  (* the engine's shape: per-task results folded after the join is the
     clean idiom; moving the accumulation into the closure must turn
     into a finding *)
  let clean =
    "let total n =\n\
    \  let parts = Pool.run n (fun i -> i * i) in\n\
    \  Array.fold_left ( + ) 0 parts\n"
  in
  let mutated =
    "let total n =\n\
    \  let acc = ref 0 in\n\
    \  ignore (Pool.run n (fun i -> acc := !acc + (i * i)));\n\
    \  !acc\n"
  in
  Alcotest.(check (list string)) "fold-after-join is clean" [] (rules_of (check clean));
  Alcotest.(check bool) "in-closure accumulation is a finding" true
    (has_rule Race.rule_shared (check mutated))

(* ---- the --race-safe golden listing ------------------------------------ *)

let test_race_safe_golden () =
  (* the committed listing is the proof ledger: every shared-state site
     in lib with the proof CI trusts; a site disappearing or a proof
     weakening is a diff here before it is a pipeline failure *)
  match locate_lib () with
  | None -> Alcotest.fail "cannot locate lib/ from the test working directory"
  | Some dir -> (
      let golden =
        List.find_opt Sys.file_exists
          [
            "golden/race_safe.golden.txt";
            "test/golden/race_safe.golden.txt";
            "../test/golden/race_safe.golden.txt";
          ]
      in
      match golden with
      | None -> Alcotest.fail "race_safe.golden.txt not found"
      | Some gfile ->
          let buf = Buffer.create 4096 in
          let out = Format.formatter_of_buffer buf in
          let code = Cli.run ~out ~err:out [| "dipp_lint"; "--race-safe"; dir |] in
          Format.pp_print_flush out ();
          Alcotest.(check int) "exit 0" 0 code;
          let prefix = dir ^ "/" in
          let plen = String.length prefix in
          let normalize line =
            if String.length line >= plen && String.equal (String.sub line 0 plen) prefix then
              "lib/" ^ String.sub line plen (String.length line - plen)
            else line
          in
          let got =
            Buffer.contents buf |> String.split_on_char '\n' |> List.map normalize
            |> String.concat "\n"
          in
          let want = In_channel.with_open_bin gfile In_channel.input_all in
          Alcotest.(check string) "listing matches the committed golden" want got)

(* ---- 4-domain stress: the promise the pass encodes --------------------- *)

let mk_stats i =
  {
    Dip.interaction_rounds = 1 + (i mod 3);
    proof_size_bits = 10 * ((i * 7 mod 13) + 1);
    max_node_total_bits = (i * 5 mod 11) + 1;
    total_prover_bits = i + 1;
    total_verifier_bits = (2 * i) + 1;
    phases = [];
    per_phase = [];
  }

let stats_equal a b = Dip.merge_trials [ a ] = Dip.merge_trials [ b ]

let test_pool_merge_schedule_independent () =
  let n = 64 in
  let baseline = Array.init n mk_stats in
  (* Pool.run returns index-ordered results for any worker count *)
  List.iter
    (fun jobs ->
      let r = Pool.run ~jobs n mk_stats in
      Alcotest.(check int) (Printf.sprintf "jobs=%d: %d results" jobs n) n (Array.length r);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d results index-ordered" jobs)
        true
        (Array.for_all2 stats_equal baseline r))
    [ 1; 2; 4 ];
  (* and merge_trials is insensitive to trial order: any permutation of
     the per-task stats folds to the same merged record *)
  let merged = Dip.merge_trials (Array.to_list baseline) in
  let reversed = Dip.merge_trials (List.rev (Array.to_list baseline)) in
  let interleaved =
    let evens = List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list baseline) in
    let odds = List.filteri (fun i _ -> i mod 2 = 1) (Array.to_list baseline) in
    Dip.merge_trials (odds @ evens)
  in
  Alcotest.(check bool) "merge invariant under reversal" true (merged = reversed);
  Alcotest.(check bool) "merge invariant under interleaving" true (merged = interleaved)

let () =
  Alcotest.run "race"
    [
      ( "shared-mut",
        [
          Alcotest.test_case "module-level unguarded" `Quick test_shared_global_unguarded;
          Alcotest.test_case "captured unguarded" `Quick test_shared_captured_unguarded;
          Alcotest.test_case "atomic is clean" `Quick test_shared_atomic_clean;
          Alcotest.test_case "mutex-guarded is clean" `Quick test_shared_guarded_clean;
        ] );
      ( "lock-discipline",
        [
          Alcotest.test_case "re-entry" `Quick test_lock_reentry;
          Alcotest.test_case "lock across submission" `Quick test_lock_held_across_submission;
          Alcotest.test_case "disjoint guards" `Quick test_lock_disjoint_guards;
          Alcotest.test_case "acquisition-order cycle" `Quick test_lock_order_cycle;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "ordered update under lock" `Quick
            test_determinism_ordered_under_lock;
          Alcotest.test_case "pooled print" `Quick test_determinism_shared_print;
          Alcotest.test_case "fold after join clean" `Quick test_determinism_fold_after_join_clean;
          Alcotest.test_case "guarded merge clean" `Quick
            test_determinism_guarded_merge_from_pool_clean;
        ] );
      ( "rng",
        [
          Alcotest.test_case "pooled draw" `Quick test_rng_pooled_draw;
          Alcotest.test_case "stream escape" `Quick test_rng_escape;
          Alcotest.test_case "constant salt" `Quick test_rng_constant_salt;
          Alcotest.test_case "per-task split clean" `Quick test_rng_per_task_split_clean;
        ] );
      ( "annotations",
        [
          Alcotest.test_case "domain-local trusted" `Quick test_annotation_domain_local;
          Alcotest.test_case "unknown mutex" `Quick test_annotation_unknown_mutex;
          Alcotest.test_case "malformed" `Quick test_annotation_malformed;
          Alcotest.test_case "unused" `Quick test_annotation_unused;
          Alcotest.test_case "suppression token" `Quick test_suppression_token;
        ] );
      ( "mutation",
        [
          Alcotest.test_case "label-cache mutex dropped" `Quick test_mutation_label_cache_lock;
          Alcotest.test_case "pool clean with proofs" `Quick test_mutation_pool_clean_with_proofs;
          Alcotest.test_case "fold moved into closure" `Quick test_mutation_fold_into_closure;
        ] );
      ( "golden",
        [ Alcotest.test_case "--race-safe matches committed listing" `Quick test_race_safe_golden ]
      );
      ( "stress",
        [
          Alcotest.test_case "pool+merge schedule-independent" `Quick
            test_pool_merge_schedule_independent;
        ] );
    ]
