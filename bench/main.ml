(* Experiment harness: regenerates the paper's "tables" (its theorem
   bounds) as measured numbers.  See EXPERIMENTS.md for the paper-vs-
   measured record of every experiment.

   Usage:
     dune exec bench/main.exe            all experiments + timings
     dune exec bench/main.exe e1 .. e11  a single experiment
     dune exec bench/main.exe timing     bechamel wall-clock benches
     dune exec bench/main.exe bounds     claim-vs-measured bounds_report.json
     dune exec bench/main.exe -- trials [--jobs N]
                                         engine soundness trials + trials_report.json
     dune exec bench/main.exe -- faults [--jobs N]
                                         fault-injection sweep + faults_report.json
     dune exec bench/main.exe analysis  static-analyzer pass timings + BENCH_analysis.json
     dune exec bench/main.exe -- serve [--jobs N]
                                         batched verification service + BENCH_serve.json
     dune exec bench/main.exe -- shard [--jobs N]
                                         sharded network engine scaling + BENCH_shard.json
   Unknown commands or flags exit with code 2 and a usage message.

   Soundness loops (E2-E8) run on the deterministic multicore trial engine
   (lib/engine): --jobs N (or DIPP_JOBS=N) picks the worker-domain count,
   DIPP_TRIALS_SEED the experiment seed; the outcome is bit-identical for
   every N. *)

open Dipp

let line = String.make 78 '-'
let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* ---- trial-engine front end ---------------------------------------- *)

let jobs_override = ref None
let jobs () = match !jobs_override with Some j -> j | None -> Pool.default_jobs ()

let trials_seed () =
  match Sys.getenv_opt "DIPP_TRIALS_SEED" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v -> v | None -> 42)
  | None -> 42

let run_experiment tag =
  Engine.run_all ~jobs:(jobs ()) ~seed:(trials_seed ()) (Soundness.by_experiment tag)

let print_engine_results results =
  Printf.printf "%-26s %-16s %6s %8s %9s %7s %18s\n" "spec" "adversary" "n" "trials" "rejected"
    "rate" "95% CI";
  List.iter
    (fun r ->
      let lo, hi = Engine.wilson95 ~rejected:r.Engine.rejected ~total:r.Engine.completed in
      Printf.printf "%-26s %-16s %6d %8d %9d %6.1f%% [%6.4f, %6.4f]\n" r.Engine.spec.Engine.Spec.id
        r.Engine.spec.Engine.Spec.adversary r.Engine.spec.Engine.Spec.n r.Engine.completed
        r.Engine.rejected
        (100. *. Engine.rejection_rate r)
        lo hi)
    results;
  let wall = List.fold_left (fun acc r -> acc +. r.Engine.wall_clock_s) 0. results in
  Printf.printf "engine: seed=%d jobs=%d wall-clock=%.2fs\n" (trials_seed ()) (jobs ()) wall

let ceil_log2 n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  max 1 (go 1)

let acceptance_rate runs =
  let total = List.length runs in
  let acc = List.length (List.filter Fun.id runs) in
  float_of_int acc /. float_of_int total

let rejection_rate runs = 1.0 -. acceptance_rate runs

(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1  LR-sorting: proof size scaling (Lemma 4.1 vs trivial 1-round PLS)";
  Printf.printf "%8s %8s %10s %12s %12s %10s\n" "n" "log2 n" "loglog n" "DIP bits" "PLS bits" "rounds";
  List.iter
    (fun n ->
      let path, arcs = Gen.lr_yes ~n 42 in
      let inst = { Lr_sorting.n; path; arcs } in
      let r = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest inst in
      let pls = Pls_lr_sorting.run inst in
      assert r.Lr_sorting.verdict.Dip.accepted;
      assert pls.Pls_lr_sorting.verdict.Dip.accepted;
      Printf.printf "%8d %8d %10.2f %12d %12d %10d\n" n (ceil_log2 n)
        (log (float_of_int (ceil_log2 n)) /. log 2.)
        r.Lr_sorting.stats.Dip.proof_size_bits pls.Pls_lr_sorting.stats.Dip.proof_size_bits
        r.Lr_sorting.stats.Dip.interaction_rounds)
    [ 256; 1024; 4096; 16384; 65536; 262144 ];
  print_endline "shape: the DIP column grows like log log n (a few bits per quadrupling);";
  print_endline "       the PLS column is exactly ceil(log2 n)."

let e2 () =
  header "E2  LR-sorting: empirical soundness (paper: error 1/polylog n)";
  print_engine_results (run_experiment "E2")

let e3 () =
  header "E3  Path-outerplanarity (Thm 1.2): size scaling + soundness";
  Printf.printf "%8s %12s %12s %10s\n" "n" "DIP bits" "PLS bits" "rounds";
  List.iter
    (fun n ->
      let g, w = Gen.path_outerplanar ~n 11 in
      let r =
        Path_outerplanarity.run ~seed:2 ~prover:Path_outerplanarity.Honest
          { Path_outerplanarity.graph = g; witness = Some w }
      in
      let pls = Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w } in
      assert r.Path_outerplanarity.verdict.Dip.accepted;
      Printf.printf "%8d %12d %12d %10d\n" n r.Path_outerplanarity.stats.Dip.proof_size_bits
        pls.Pls_path_outerplanar.stats.Dip.proof_size_bits
        r.Path_outerplanarity.stats.Dip.interaction_rounds)
    [ 256; 1024; 4096; 16384 ];
  print_engine_results (run_experiment "E3")

let e4 () =
  header "E4  Outerplanarity (Thm 1.3): block-cut composition";
  Printf.printf "%8s %8s %12s %10s\n" "blocks" "n" "proof bits" "rounds";
  List.iter
    (fun blocks ->
      let g = Gen.outerplanar ~blocks 3 in
      let r = Outerplanarity.run ~seed:1 ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
      assert r.Outerplanarity.verdict.Dip.accepted;
      Printf.printf "%8d %8d %12d %10d\n" blocks (Graph.n g)
        r.Outerplanarity.stats.Dip.proof_size_bits r.Outerplanarity.stats.Dip.interaction_rounds)
    [ 4; 16; 64; 256 ];
  print_engine_results (run_experiment "E4")

let e5 () =
  header "E5  Embedded planarity (Thm 1.4): the h(G,T,rho) reduction";
  Printf.printf "%8s %8s %12s %10s\n" "n" "m" "proof bits" "rounds";
  List.iter
    (fun n ->
      let g = Gen.planar ~n 5 in
      let rot = Option.get (Gen.embedding g) in
      let r =
        Planar_embedding.run ~seed:1 ~prover:Planar_embedding.Honest { Planar_embedding.graph = g; rot }
      in
      assert r.Planar_embedding.verdict.Dip.accepted;
      Printf.printf "%8d %8d %12d %10d\n" n (Graph.m g) r.Planar_embedding.stats.Dip.proof_size_bits
        r.Planar_embedding.stats.Dip.interaction_rounds)
    [ 64; 256; 1024 ];
  print_engine_results (run_experiment "E5")

let e6 () =
  header "E6  Planarity (Thm 1.5): O(log log n + log Delta) proof size";
  Printf.printf "%-24s %8s %8s %12s %10s\n" "family" "n" "Delta" "proof bits" "rho bits";
  let bits_for x =
    let rec go w = if 1 lsl w > x then w else go (w + 1) in
    max 1 (go 1)
  in
  let run g name =
    let r = Planarity.run ~seed:1 ~prover:Planarity.Honest { Planarity.graph = g } in
    assert r.Planarity.verdict.Dip.accepted;
    (* the rho part of the round-1 label: forest setup plus one
       (rho_u, rho_v) pair of width log Delta per forest field *)
    let el = Edge_labels.create g in
    let rho_bits =
      Edge_labels.setup_width el
      + (Edge_labels.forests el * 2 * bits_for (max 1 (Graph.max_degree g - 1)))
    in
    Printf.printf "%-24s %8d %8d %12d %10d\n" name (Graph.n g) (Graph.max_degree g)
      r.Planarity.stats.Dip.proof_size_bits rho_bits
  in
  let wheel n =
    Graph.create ~n
      (List.init (n - 1) (fun i -> (0, i + 1))
      @ List.init (n - 2) (fun i -> (i + 1, i + 2))
      @ [ (n - 1, 1) ])
  in
  run (Gen.planar_bounded_degree ~n:256 1) "grid+diagonals";
  run (Gen.planar_bounded_degree ~n:1024 1) "grid+diagonals";
  run (Gen.planar ~n:256 1) "stacked triangulation";
  run (Gen.planar ~n:1024 1) "stacked triangulation";
  run (wheel 256) "wheel (Delta = n-1)";
  run (wheel 1024) "wheel (Delta = n-1)";
  print_engine_results (run_experiment "E6");
  print_endline "shape: within a family bits grow like log log n; the rho column grows";
  print_endline "       like log Delta across families (the additive term of Thm 1.5)."

let e7 () =
  header "E7  Series-parallel (Thm 1.6)";
  Printf.printf "%8s %8s %12s %10s\n" "size" "n" "proof bits" "rounds";
  List.iter
    (fun size ->
      let tr, g = Gen.series_parallel ~size 3 in
      let r =
        Series_parallel_dip.run ~seed:1 ~prover:Series_parallel_dip.Honest
          { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
      in
      assert r.Series_parallel_dip.verdict.Dip.accepted;
      Printf.printf "%8d %8d %12d %10d\n" size (Graph.n g)
        r.Series_parallel_dip.stats.Dip.proof_size_bits
        r.Series_parallel_dip.stats.Dip.interaction_rounds)
    [ 16; 64; 256; 1024 ];
  print_engine_results (run_experiment "E7")

let e8 () =
  header "E8  Treewidth <= 2 (Thm 1.7)";
  Printf.printf "%8s %8s %12s %10s\n" "blocks" "n" "proof bits" "rounds";
  List.iter
    (fun blocks ->
      let g = Gen.treewidth2 ~blocks 3 in
      let r = Treewidth2_dip.run ~seed:1 ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
      assert r.Treewidth2_dip.verdict.Dip.accepted;
      Printf.printf "%8d %8d %12d %10d\n" blocks (Graph.n g)
        r.Treewidth2_dip.stats.Dip.proof_size_bits r.Treewidth2_dip.stats.Dip.interaction_rounds)
    [ 4; 16; 64 ];
  print_engine_results (run_experiment "E8")

let e9 () =
  header "E9  One-round lower bound (Thm 1.8): Omega(log n) label bits";
  Printf.printf "%8s %10s %22s %22s\n" "n" "log2 n" "soundness threshold" "completeness threshold";
  List.iter
    (fun n ->
      Printf.printf "%8d %10d %22d %22d\n" n (ceil_log2 n) (Lower_bound.soundness_threshold ~n)
        (Lower_bound.completeness_threshold ~n))
    [ 64; 256; 1024; 4096; 16384; 65536 ];
  print_endline "soundness: below the threshold the truncated 1-round scheme accepts a";
  print_endline "  fooling LR no-instance (a backward arc whose labels alias to increasing";
  print_endline "  residues); completeness: below it the truncated FFM+21-style scheme";
  print_endline "  rejects an honest long-chord yes-instance.  Both track ceil(log2 n)."

let e10 () =
  header "E10 Results table (Thms 1.2-1.7): rounds / bits / completeness / soundness";
  Printf.printf "%-24s %7s %11s %13s %10s\n" "protocol" "rounds" "proof bits" "completeness" "soundness";
  let trials = 25 in
  let row name (stats : Dip.stats) comp sound =
    Printf.printf "%-24s %7d %11d %12.0f%% %9.0f%%\n" name stats.Dip.interaction_rounds
      stats.Dip.proof_size_bits (100. *. comp) (100. *. sound)
  in
  (let n = 300 in
   let comp =
     List.init trials (fun s ->
         let path, arcs = Gen.lr_yes ~n s in
         (Lr_sorting.run ~seed:s ~prover:Lr_sorting.Honest { Lr_sorting.n; path; arcs })
           .Lr_sorting.verdict.Dip.accepted)
   in
   let sound =
     List.init trials (fun s ->
         let path, arcs = Gen.lr_no ~n s in
         (Lr_sorting.run ~seed:s ~prover:Lr_sorting.Forge_pairs { Lr_sorting.n; path; arcs })
           .Lr_sorting.verdict.Dip.accepted)
   in
   let path, arcs = Gen.lr_yes ~n 0 in
   let r = Lr_sorting.run ~seed:0 ~prover:Lr_sorting.Honest { Lr_sorting.n; path; arcs } in
   row "LR-sorting (L4.1)" r.Lr_sorting.stats (acceptance_rate comp) (rejection_rate sound));
  (let n = 200 in
   let comp =
     List.init trials (fun s ->
         let g, w = Gen.path_outerplanar ~n s in
         (Path_outerplanarity.run ~seed:s ~prover:Path_outerplanarity.Honest
            { Path_outerplanarity.graph = g; witness = Some w })
           .Path_outerplanarity.verdict.Dip.accepted)
   in
   let sound =
     List.init trials (fun s ->
         let g, w = Gen.path_crossing ~n s in
         (Path_outerplanarity.run ~seed:s ~prover:Path_outerplanarity.Crossing_sweep
            { Path_outerplanarity.graph = g; witness = Some w })
           .Path_outerplanarity.verdict.Dip.accepted)
   in
   let g, w = Gen.path_outerplanar ~n 0 in
   let r =
     Path_outerplanarity.run ~seed:0 ~prover:Path_outerplanarity.Honest
       { Path_outerplanarity.graph = g; witness = Some w }
   in
   row "path-outerpl. (T1.2)" r.Path_outerplanarity.stats (acceptance_rate comp) (rejection_rate sound));
  (let comp =
     List.init trials (fun s ->
         (Outerplanarity.run ~seed:s ~prover:Outerplanarity.Honest
            { Outerplanarity.graph = Gen.outerplanar ~blocks:5 s })
           .Outerplanarity.verdict.Dip.accepted)
   in
   let sound =
     List.init trials (fun s ->
         (Outerplanarity.run ~seed:s ~prover:Outerplanarity.Component_cheat
            { Outerplanarity.graph = Gen.outerplanar_no ~blocks:5 s })
           .Outerplanarity.verdict.Dip.accepted)
   in
   let r =
     Outerplanarity.run ~seed:0 ~prover:Outerplanarity.Honest
       { Outerplanarity.graph = Gen.outerplanar ~blocks:5 0 }
   in
   row "outerplanarity (T1.3)" r.Outerplanarity.stats (acceptance_rate comp) (rejection_rate sound));
  (let comp =
     List.init trials (fun s ->
         let g = Gen.planar ~n:60 s in
         let rot = Option.get (Gen.embedding g) in
         (Planar_embedding.run ~seed:s ~prover:Planar_embedding.Honest { Planar_embedding.graph = g; rot })
           .Planar_embedding.verdict.Dip.accepted)
   in
   let sound =
     List.filter_map
       (fun s ->
         let g = Gen.planar ~n:60 s in
         Option.map
           (fun rot ->
             (Planar_embedding.run ~seed:s ~prover:Planar_embedding.Crossing_sweep
                { Planar_embedding.graph = g; rot })
               .Planar_embedding.verdict.Dip.accepted)
           (Gen.corrupted_embedding g (s + 1)))
       (List.init trials Fun.id)
   in
   let g = Gen.planar ~n:60 0 in
   let r =
     Planar_embedding.run ~seed:0 ~prover:Planar_embedding.Honest
       { Planar_embedding.graph = g; rot = Option.get (Gen.embedding g) }
   in
   row "planar embed. (T1.4)" r.Planar_embedding.stats (acceptance_rate comp) (rejection_rate sound));
  (let comp =
     List.init trials (fun s ->
         (Planarity.run ~seed:s ~prover:Planarity.Honest { Planarity.graph = Gen.planar ~n:60 s })
           .Planarity.verdict.Dip.accepted)
   in
   let sound =
     List.init trials (fun s ->
         (Planarity.run ~seed:s ~prover:Planarity.Best_rotation
            { Planarity.graph = Gen.nonplanar ~n:60 s })
           .Planarity.verdict.Dip.accepted)
   in
   let r = Planarity.run ~seed:0 ~prover:Planarity.Honest { Planarity.graph = Gen.planar ~n:60 0 } in
   row "planarity (T1.5)" r.Planarity.stats (acceptance_rate comp) (rejection_rate sound));
  (let comp =
     List.init trials (fun s ->
         let tr, g = Gen.series_parallel ~size:40 s in
         (Series_parallel_dip.run ~seed:s ~prover:Series_parallel_dip.Honest
            { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) })
           .Series_parallel_dip.verdict.Dip.accepted)
   in
   let sound =
     List.filter_map
       (fun s ->
         Option.map
           (fun (g, ears) ->
             (Series_parallel_dip.run ~seed:s ~prover:Series_parallel_dip.Ear_cheat
                { Series_parallel_dip.graph = g; ears = Some ears })
               .Series_parallel_dip.verdict.Dip.accepted)
           (Gen.series_parallel_no ~size:40 s))
       (List.init trials Fun.id)
   in
   let tr, g = Gen.series_parallel ~size:40 0 in
   let r =
     Series_parallel_dip.run ~seed:0 ~prover:Series_parallel_dip.Honest
       { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
   in
   row "series-par. (T1.6)" r.Series_parallel_dip.stats (acceptance_rate comp) (rejection_rate sound));
  (let comp =
     List.init trials (fun s ->
         (Treewidth2_dip.run ~seed:s ~prover:Treewidth2_dip.Honest
            { Treewidth2_dip.graph = Gen.treewidth2 ~blocks:4 s })
           .Treewidth2_dip.verdict.Dip.accepted)
   in
   let sound =
     List.filter_map
       (fun s ->
         Option.map
           (fun g ->
             (Treewidth2_dip.run ~seed:s ~prover:Treewidth2_dip.Component_cheat
                { Treewidth2_dip.graph = g })
               .Treewidth2_dip.verdict.Dip.accepted)
           (Gen.treewidth2_no ~blocks:4 s))
       (List.init trials Fun.id)
   in
   let r =
     Treewidth2_dip.run ~seed:0 ~prover:Treewidth2_dip.Honest
       { Treewidth2_dip.graph = Gen.treewidth2 ~blocks:4 0 }
   in
   row "treewidth<=2 (T1.7)" r.Treewidth2_dip.stats (acceptance_rate comp) (rejection_rate sound));
  print_endline "paper: 5 rounds, perfect completeness, 1/polylog(n) soundness error,";
  print_endline "       O(log log n) bits (planarity: + log Delta)."

let e11 () =
  header "E11 Reduction chart (Figure 2): composed sub-protocol traces";
  let g = Gen.planar ~n:100 4 in
  let r = Planarity.run ~seed:9 ~prover:Planarity.Honest { Planarity.graph = g } in
  let pe = r.Planarity.inner in
  let po = pe.Planar_embedding.inner in
  Printf.printf "planarity(T1.5)  n=%d  proof=%db  accepted=%b\n" (Graph.n g)
    r.Planarity.stats.Dip.proof_size_bits r.Planarity.verdict.Dip.accepted;
  Printf.printf "  -> planar-embedding(T1.4)  proof=%db\n" pe.Planar_embedding.stats.Dip.proof_size_bits;
  Printf.printf "     -> path-outerplanarity(T1.2) on h(G,T,rho)  proof=%db\n"
    po.Path_outerplanarity.stats.Dip.proof_size_bits;
  (match po.Path_outerplanarity.lr with
  | Some lr ->
      Printf.printf "        -> LR-sorting(L4.2)  n_h=%d  proof=%db  blocks=%d\n"
        lr.Lr_sorting.params.Lr_sorting.Params.n lr.Lr_sorting.stats.Dip.proof_size_bits
        lr.Lr_sorting.params.Lr_sorting.Params.nblocks
  | None -> print_endline "        -> (no LR sub-run)");
  let g = Gen.outerplanar ~blocks:3 2 in
  let r = Outerplanarity.run ~seed:9 ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
  Printf.printf "outerplanarity(T1.3)  n=%d  block protocols=%d  accepted=%b\n" (Graph.n g)
    (List.length r.Outerplanarity.component_results) r.Outerplanarity.verdict.Dip.accepted;
  let g = Gen.treewidth2 ~blocks:3 2 in
  let r = Treewidth2_dip.run ~seed:9 ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
  Printf.printf "treewidth<=2(T1.7)  n=%d  SP components=%d  accepted=%b\n" (Graph.n g)
    (List.length r.Treewidth2_dip.component_results) r.Treewidth2_dip.verdict.Dip.accepted;
  List.iteri
    (fun i cr ->
      Printf.printf "  -> series-parallel(T1.6) #%d: host-ear nesting runs=%d\n" i
        (List.length cr.Series_parallel_dip.host_results))
    r.Treewidth2_dip.component_results

(* ------------------------------------------------------------------ *)
(* bechamel wall-clock benches                                          *)
(* ------------------------------------------------------------------ *)

let timing () =
  header "Timing (bechamel, monotonic clock, ns/run)";
  let open Bechamel in
  let open Toolkit in
  let lr_inst =
    let path, arcs = Gen.lr_yes ~n:1024 7 in
    { Lr_sorting.n = 1024; path; arcs }
  in
  let po_inst =
    let g, w = Gen.path_outerplanar ~n:512 7 in
    { Path_outerplanarity.graph = g; witness = Some w }
  in
  let pe_inst =
    let g = Gen.planar ~n:200 7 in
    { Planar_embedding.graph = g; rot = Option.get (Gen.embedding g) }
  in
  let op_graph = Gen.outerplanar ~blocks:8 7 in
  let sp_inst =
    let tr, g = Gen.series_parallel ~size:100 7 in
    { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
  in
  let pl_graph = Gen.planar ~n:200 7 in
  let tests =
    Test.make_grouped ~name:"dipp" ~fmt:"%s %s"
      [
        Test.make ~name:"lr-sorting/1024"
          (Staged.stage (fun () -> ignore (Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest lr_inst)));
        Test.make ~name:"path-outerplanarity/512"
          (Staged.stage (fun () ->
               ignore (Path_outerplanarity.run ~seed:1 ~prover:Path_outerplanarity.Honest po_inst)));
        Test.make ~name:"planar-embedding/200"
          (Staged.stage (fun () ->
               ignore (Planar_embedding.run ~seed:1 ~prover:Planar_embedding.Honest pe_inst)));
        Test.make ~name:"planarity/200"
          (Staged.stage (fun () ->
               ignore (Planarity.run ~seed:1 ~prover:Planarity.Honest { Planarity.graph = pl_graph })));
        Test.make ~name:"outerplanarity/8-blocks"
          (Staged.stage (fun () ->
               ignore
                 (Outerplanarity.run ~seed:1 ~prover:Outerplanarity.Honest
                    { Outerplanarity.graph = op_graph })));
        Test.make ~name:"series-parallel/100"
          (Staged.stage (fun () ->
               ignore (Series_parallel_dip.run ~seed:1 ~prover:Series_parallel_dip.Honest sp_inst)));
        Test.make ~name:"dmp-embed/200" (Staged.stage (fun () -> ignore (Planar_test.embed pl_graph)));
      ]
  in
  let benchmark () =
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let raw = Benchmark.all cfg instances tests in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = benchmark () in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-36s %12.0f ns/run  (%8.2f ms)\n" name est (est /. 1e6)
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Open questions (paper, end of section 1)                             *)
(* ------------------------------------------------------------------ *)

let open_questions () =
  header "OQ  Open questions: per-round communication breakdown";
  print_endline "Open Question 3 asks whether o(log log n) bits per node are possible;";
  print_endline "the per-phase maxima below show where our labels spend their bits:";
  Printf.printf "%8s | %s\n" "n" "per-phase max label bits (P = prover, V = verifier coins)";
  List.iter
    (fun n ->
      let path, arcs = Gen.lr_yes ~n 42 in
      let r = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest { Lr_sorting.n; path; arcs } in
      let cells =
        List.map
          (fun (ph, bits) ->
            Printf.sprintf "%s%d" (match ph with Dip.Prover_phase -> "P" | Dip.Verifier_phase -> "V") bits)
          r.Lr_sorting.stats.Dip.per_phase
      in
      Printf.printf "%8d | %s\n" n (String.concat "  " cells))
    [ 1024; 16384; 262144 ];
  print_endline "";
  print_endline "Open Question 1 (is the +log Delta term needed for planarity?): see the";
  print_endline "rho-bits column of E6 — exactly the term in question.";
  print_endline "Open Question 2 (rounds 2..4): the protocols here are locked to the";
  print_endline "5-round schedule P-V-P-V-P; every phase carries live content (above),";
  print_endline "so collapsing rounds would need a different commitment structure."

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

let ablation () =
  header "A1  Ablation: soundness constant c (field sizes ~ (log n)^c)";
  Printf.printf "%4s %12s %12s %14s\n" "c" "proof bits" "field p" "escapes/60";
  List.iter
    (fun c ->
      let n = 300 in
      let path, arcs = Gen.lr_yes ~n 42 in
      let r = Lr_sorting.run ~seed:1 ~c ~prover:Lr_sorting.Honest { Lr_sorting.n; path; arcs } in
      let escapes = ref 0 in
      for seed = 0 to 59 do
        let path, arcs = Gen.lr_no ~n seed in
        let rr = Lr_sorting.run ~seed:((seed * 13) + 1) ~c ~prover:Lr_sorting.Shift_positions { Lr_sorting.n; path; arcs } in
        if rr.Lr_sorting.verdict.Dip.accepted then incr escapes
      done;
      Printf.printf "%4d %12d %12d %14d\n" c r.Lr_sorting.stats.Dip.proof_size_bits
        r.Lr_sorting.params.Lr_sorting.Params.p.Fp.p !escapes)
    [ 1; 2; 3; 4; 5 ];
  print_endline "larger c: wider fields (more bits), smaller soundness error.";

  header "A2  Ablation: block size B (paper: B = ceil(log n))";
  Printf.printf "%10s %10s %12s %10s\n" "block" "nblocks" "proof bits" "accepted";
  let n = 4096 in
  let path, arcs = Gen.lr_yes ~n 42 in
  let inst = { Lr_sorting.n; path; arcs } in
  let logn = ceil_log2 n in
  List.iter
    (fun block ->
      let r = Lr_sorting.run ~seed:1 ~c:2 ~block ~prover:Lr_sorting.Honest inst in
      Printf.printf "%10d %10d %12d %10b\n" block r.Lr_sorting.params.Lr_sorting.Params.nblocks
        r.Lr_sorting.stats.Dip.proof_size_bits r.Lr_sorting.verdict.Dip.accepted)
    [ logn; 2 * logn; 64; logn * logn ];
  print_endline "indices inside a block cost log(B) bits: B = log n is the sweet spot";
  print_endline "(B below log n cannot hold the position bits at all).";

  header "A3  Ablation: spanning-tree verification repetitions (Lemma 2.5)";
  Printf.printf "%6s %14s %16s\n" "reps" "label bits/rep" "escapes/100";
  List.iter
    (fun reps ->
      let escapes = ref 0 in
      for seed = 0 to 99 do
        let g = Graph.path_graph 40 in
        let parent = Array.init 40 (fun v -> if v = 0 || v = 20 then -1 else v - 1) in
        let verdict, _ = Spanning_tree_verify.run ~seed ~reps g ~parent in
        if verdict.Dip.accepted then incr escapes
      done;
      Printf.printf "%6d %14d %16d\n" reps 8 !escapes)
    [ 1; 2; 4; 8 ];
  print_endline "constant error per repetition, driven down exponentially (the paper's";
  print_endline "parallel-repetition black box); the protocols use Theta(log log n) reps."

(* ------------------------------------------------------------------ *)

(* The claim-vs-measured record: every declared-bounds registry row
   (lib/protocols/bounds.ml) instantiated at concrete sizes, checked
   with Dip.check_budget against a real honest run, and written as
   bounds_report.json (override the path with DIPP_BOUNDS_OUT) for CI
   to archive and diff. *)
(* Static refinement interval for a registry row: the refine pass
   (lib/analysis/refine.ml) run over the protocol's source, giving
   symbolic bounds on the widest single own-phase record_prover label.
   Evaluated at each concrete instance size this is the "inferred"
   column between the claimed envelope and the measured proof size.
   Note it bounds the per-phase label width, not the parallel-composition
   sum Dip.check_budget measures — sub-protocol sums stay a runtime
   matter, so inferred <= claimed while measured may exceed inferred. *)
let refine_program = lazy (try Some (Dipp_analysis.Typed_scan.load_tree "lib") with _ -> None)

let refine_interval =
  let cache = Hashtbl.create 16 in
  fun id ->
    match Hashtbl.find_opt cache id with
    | Some r -> r
    | None ->
        let r =
          let candidates = [ "lib/protocols/" ^ id ^ ".ml"; "lib/baselines/" ^ id ^ ".ml" ] in
          match (Lazy.force refine_program, List.find_opt Sys.file_exists candidates) with
          | Some program, Some file -> (
              try
                let src = In_channel.with_open_bin file In_channel.input_all in
                let structure = Dipp_analysis.Ast_scan.parse_file file in
                let annots = Dipp_analysis.Refine.annotations_of_source src in
                let res = Dipp_analysis.Refine.analyze ~program ~annots ~filename:file structure in
                Some (res.Dipp_analysis.Refine.label_lo, res.Dipp_analysis.Refine.label_hi)
              with _ -> None)
          | _ -> None
        in
        Hashtbl.replace cache id r;
        r

let bounds () =
  header "BOUNDS  declared budgets (Theorems 1.2-1.8) vs measured honest runs";
  let entries = ref [] in
  let record ~id ~n ~delta (stats : Dip.stats) =
    match Bounds.find id with
    | None -> failwith ("bounds experiment: no registry row for " ^ id)
    | Some row ->
        let b = Bounds.budget row ~n ~delta in
        let violations = Dip.check_budget b stats in
        let inferred =
          match refine_interval id with
          | None -> None
          | Some (lo, hi) ->
              let ev f = Option.join (Option.map (Dipp_analysis.Refine.eval_form ~n ~delta) f) in
              Some (ev lo, ev hi)
        in
        let inferred_str =
          match inferred with
          | Some (lo, hi) ->
              let s = function Some v -> string_of_int v | None -> "?" in
              Printf.sprintf "[%s, %s]" (s lo) (s hi)
          | None -> "-"
        in
        entries := (row, n, delta, b, stats, violations, inferred) :: !entries;
        Printf.printf "%-22s %-28s %7d %5d %9d %12s %10d  %s\n" row.Bounds.id row.Bounds.theorem
          n delta b.Dip.budget_proof_bits inferred_str stats.Dip.proof_size_bits
          (match violations with [] -> "ok" | _ :: _ -> "CLAIM VIOLATED")
  in
  Printf.printf "%-22s %-28s %7s %5s %9s %12s %10s\n" "protocol" "theorem" "n" "delta" "claimed"
    "inferred" "measured";
  List.iter
    (fun n ->
      let path, arcs = Gen.lr_yes ~n 42 in
      let inst = { Lr_sorting.n; path; arcs } in
      let r = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest inst in
      record ~id:"lr_sorting" ~n ~delta:2 r.Lr_sorting.stats;
      let pls = Pls_lr_sorting.run inst in
      record ~id:"pls_lr_sorting" ~n ~delta:2 pls.Pls_lr_sorting.stats)
    [ 256; 4096; 65536 ];
  List.iter
    (fun n ->
      let g, w = Gen.path_outerplanar ~n 11 in
      let r =
        Path_outerplanarity.run ~seed:2 ~prover:Path_outerplanarity.Honest
          { Path_outerplanarity.graph = g; witness = Some w }
      in
      record ~id:"path_outerplanarity" ~n:(Graph.n g) ~delta:(Graph.max_degree g)
        r.Path_outerplanarity.stats;
      let pls = Pls_path_outerplanar.run { Pls_path_outerplanar.graph = g; witness = w } in
      record ~id:"pls_path_outerplanar" ~n:(Graph.n g) ~delta:(Graph.max_degree g)
        pls.Pls_path_outerplanar.stats)
    [ 256; 4096 ];
  List.iter
    (fun blocks ->
      let g = Gen.outerplanar ~blocks 3 in
      let r = Outerplanarity.run ~seed:1 ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
      record ~id:"outerplanarity" ~n:(Graph.n g) ~delta:(Graph.max_degree g) r.Outerplanarity.stats)
    [ 4; 64 ];
  List.iter
    (fun n ->
      let g = Gen.planar ~n 5 in
      let rot = Option.get (Gen.embedding g) in
      let r =
        Planar_embedding.run ~seed:1 ~prover:Planar_embedding.Honest
          { Planar_embedding.graph = g; rot }
      in
      record ~id:"planar_embedding" ~n:(Graph.n g) ~delta:(Graph.max_degree g)
        r.Planar_embedding.stats)
    [ 64; 256 ];
  List.iter
    (fun (g, _name) ->
      let r = Planarity.run ~seed:1 ~prover:Planarity.Honest { Planarity.graph = g } in
      record ~id:"planarity" ~n:(Graph.n g) ~delta:(Graph.max_degree g) r.Planarity.stats)
    [ (Gen.planar_bounded_degree ~n:256 1, "grid+diagonals"); (Gen.planar ~n:256 1, "stacked") ];
  List.iter
    (fun size ->
      let tr, g = Gen.series_parallel ~size 3 in
      let r =
        Series_parallel_dip.run ~seed:1 ~prover:Series_parallel_dip.Honest
          { Series_parallel_dip.graph = g; ears = Some (Series_parallel.ears_of_sp tr) }
      in
      record ~id:"series_parallel_dip" ~n:(Graph.n g) ~delta:(Graph.max_degree g)
        r.Series_parallel_dip.stats)
    [ 64; 256 ];
  List.iter
    (fun blocks ->
      let g = Gen.treewidth2 ~blocks 3 in
      let r = Treewidth2_dip.run ~seed:1 ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
      record ~id:"treewidth2_dip" ~n:(Graph.n g) ~delta:(Graph.max_degree g) r.Treewidth2_dip.stats)
    [ 4; 16 ];
  let g = Gen.planar ~n:256 1 in
  let parent = Traversal.spanning_tree g 0 in
  let parent = Array.mapi (fun v pv -> if pv = v then -1 else pv) parent in
  let pls_st = Pls_spanning_tree.run g ~parent in
  record ~id:"pls_spanning_tree" ~n:(Graph.n g) ~delta:(Graph.max_degree g)
    pls_st.Pls_spanning_tree.stats;
  (* machine-readable record *)
  let out =
    match Sys.getenv_opt "DIPP_BOUNDS_OUT" with Some p -> p | None -> "bounds_report.json"
  in
  let oc = open_out out in
  let entries = List.rev !entries in
  let phases s = Format.asprintf "%a" Dip.pp_phases s in
  output_string oc "[";
  List.iteri
    (fun i (row, n, delta, (b : Dip.budget), (stats : Dip.stats), violations, inferred) ->
      let vstrings =
        List.map (fun vio -> Format.asprintf "%a" Dip.pp_budget_violation vio) violations
      in
      let inferred_json =
        match inferred with
        | None -> "null"
        | Some (lo, hi) ->
            let s = function Some v -> string_of_int v | None -> "null" in
            Printf.sprintf "{\"label_lo\": %s, \"label_hi\": %s}" (s lo) (s hi)
      in
      Printf.fprintf oc
        "%s\n\
        \  {\"protocol\": \"%s\", \"theorem\": \"%s\", \"family\": \"%s\", \"n\": %d, \
         \"delta\": %d,\n\
        \   \"claimed\": {\"rounds\": %d, \"schedule\": \"%s\", \"proof_bits\": %d, \
         \"floor_bits\": %d},\n\
        \   \"inferred\": %s,\n\
        \   \"measured\": {\"rounds\": %d, \"schedule\": \"%s\", \"proof_bits\": %d},\n\
        \   \"violations\": [%s], \"claim_violated\": %b}"
        (if i = 0 then "" else ",")
        row.Bounds.id row.Bounds.theorem row.Bounds.family n delta b.Dip.budget_rounds
        (phases b.Dip.budget_schedule) b.Dip.budget_proof_bits b.Dip.budget_floor_bits
        inferred_json stats.Dip.interaction_rounds (phases stats.Dip.phases)
        stats.Dip.proof_size_bits
        (String.concat ", " (List.map (fun s -> "\"" ^ s ^ "\"") vstrings))
        (match violations with [] -> false | _ :: _ -> true))
    entries;
  output_string oc "\n]\n";
  close_out oc;
  let violated =
    List.length
      (List.filter
         (fun (_, _, _, _, _, vs, _) -> match vs with [] -> false | _ :: _ -> true)
         entries)
  in
  Printf.printf "\nwrote %s: %d rows, %d with violated claims\n" out (List.length entries) violated

(* The full soundness table on the engine, plus the machine-readable
   record (trials_report.json; DIPP_TRIALS_OUT overrides the path).  The
   JSON is byte-identical for every --jobs value: wall-clock and worker
   count enter it only with DIPP_TRIALS_TIMING=1 (ANALYSIS.md, determinism
   contract). *)
let trials () =
  header "TRIALS  engine soundness record (E2-E8) -> trials_report.json";
  Label_cache.reset ();
  let seed = trials_seed () in
  let results = Engine.run_all ~jobs:(jobs ()) ~seed Soundness.specs in
  print_engine_results results;
  let timing =
    match Sys.getenv_opt "DIPP_TRIALS_TIMING" with Some "1" -> true | Some _ | None -> false
  in
  Engine.write_report ~timing ~seed results;
  let out =
    match Sys.getenv_opt "DIPP_TRIALS_OUT" with Some p -> p | None -> "trials_report.json"
  in
  Printf.printf "wrote %s: %d experiments%s\n" out (List.length results)
    (if timing then " (with timing fields)" else "");
  (* stdout only: the JSON stays byte-identical with the cache on or off *)
  print_endline (Label_cache.report ())

(* The fault-injection sweep on the network runtime (lib/net): every
   default protocol family executed across the fault-model grid, with the
   byte-identical-across---jobs faults_report.json record (DIPP_FAULTS_OUT
   overrides the path, DIPP_FAULTS_TRIALS the per-point trial count). *)
let faults () =
  header "FAULTS  acceptance under network faults (lib/net) -> faults_report.json";
  Label_cache.reset ();
  let seed = trials_seed () in
  let sw = Fault_sweep.default_sweep () in
  let points = Fault_sweep.run_sweep ~jobs:(jobs ()) ~seed sw in
  Fault_sweep.print_table points;
  let path = Fault_sweep.write_report ~seed points in
  Printf.printf "wrote %s: %d sweep points (seed=%d jobs=%d trials/point=%d)\n" path
    (List.length points) seed (jobs ()) sw.Fault_sweep.trials;
  (* stdout only: the JSON stays byte-identical with the cache on or off *)
  print_endline (Label_cache.report ())

(* Wall-clock for the four static passes (the full dipp-lint pipeline,
   then dipp-flow / dipp-refine / dipp-race in isolation) over the lib
   tree, written as BENCH_analysis.json (DIPP_ANALYSIS_OUT overrides the
   path).  The per-pass finding counts double as a sanity check: the
   full pipeline must report lib clean; the isolated passes report raw
   counts, before suppression filtering. *)
let analysis () =
  header "ANALYSIS  static-analyzer pass timings over lib -> BENCH_analysis.json";
  let module A = Dipp_analysis in
  let rec ml_files acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name <> "_build")
      |> List.fold_left (fun acc name -> ml_files acc (Filename.concat path name)) acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  let files = List.rev (ml_files [] "lib") in
  let parsed =
    List.filter_map
      (fun file ->
        try
          let src = In_channel.with_open_bin file In_channel.input_all in
          Some (file, src, A.Ast_scan.parse_file file)
        with _ -> None)
      files
  in
  let program = A.Typed_scan.empty () in
  List.iter
    (fun (file, _, structure) ->
      A.Typed_scan.add_structure ~file program ~modname:(A.Typed_scan.module_name file) structure)
    parsed;
  let time name f =
    let t0 = Unix.gettimeofday () in
    let findings = f () in
    let wall = Unix.gettimeofday () -. t0 in
    Printf.printf "%-8s %8.3fs %5d finding(s)\n" name wall (List.length findings);
    (name, wall, List.length findings)
  in
  (* bind each row before building the list: list literals evaluate
     right-to-left, which would reverse the stdout lines *)
  let lint = time "lint" (fun () -> A.Lint_rules.lint_tree "lib") in
  let flow =
    time "flow" (fun () ->
        List.concat_map (fun (_, _, structure) -> A.Flow.check ~program structure) parsed)
  in
  let refine =
    time "refine" (fun () ->
        List.concat_map
          (fun (file, src, structure) ->
            let annots = A.Refine.annotations_of_source src in
            A.Refine.check ~program ~annots ~filename:file structure)
          parsed)
  in
  let race =
    time "race" (fun () ->
        List.concat_map
          (fun (file, src, structure) ->
            let annots = A.Race.annotations_of_source src in
            A.Race.check ~program ~annots ~filename:file structure)
          parsed)
  in
  let rows = [ lint; flow; refine; race ] in
  let out =
    match Sys.getenv_opt "DIPP_ANALYSIS_OUT" with Some p -> p | None -> "BENCH_analysis.json"
  in
  let oc = open_out out in
  Printf.fprintf oc "{\"bench\": \"analysis\", \"tree\": \"lib\", \"files\": %d, \"passes\": ["
    (List.length parsed);
  List.iteri
    (fun i (name, wall, n) ->
      Printf.fprintf oc "%s\n  {\"pass\": \"%s\", \"wall_s\": %.6f, \"findings\": %d}"
        (if i = 0 then "" else ",")
        name wall n)
    rows;
  output_string oc "\n]}\n";
  close_out oc;
  Printf.printf "wrote %s: %d files, %d passes\n" out (List.length parsed) (List.length rows)

(* Batched verification service throughput: a fixed synthetic request
   stream over all seven families, answered once per codec with the
   caches reset in between, plus a cache-free encode/decode/verify
   microbenchmark isolating the codec difference.  The response digest
   and every cache counter are pure functions of the stream — identical
   for any --jobs value, either codec, and with the label cache on or
   off — so BENCH_serve.json (DIPP_SERVE_OUT overrides the path) keeps
   all timing-dependent numbers inside its "timing" object and nothing
   else. *)
let serve () =
  header "SERVE  batched verification service -> BENCH_serve.json";
  let env row n =
    match Bounds.find row with
    | Some r -> Bounds.envelope r ~n ~delta:(max 2 (n - 1))
    | None -> invalid_arg ("no bounds row " ^ row)
  in
  let reqs = ref [] in
  let push family row n gseed seed =
    reqs := { Serve.family; n; gseed; seed; budget = env row n } :: !reqs
  in
  List.iter
    (fun (family, row, sizes) ->
      List.iter
        (fun n ->
          List.iter
            (fun gseed -> List.iter (fun seed -> push family row n gseed seed) [ 1; 2; 3 ])
            [ 1; 2 ])
        sizes)
    [
      ("lr", "lr_sorting", [ 64; 128 ]);
      ("path_outerplanarity", "path_outerplanarity", [ 48; 64 ]);
      ("outerplanarity", "outerplanarity", [ 32; 64 ]);
      ("planar_embedding", "planar_embedding", [ 24 ]);
      ("planarity", "planarity", [ 24 ]);
      ("series_parallel", "series_parallel_dip", [ 24; 40 ]);
      ("treewidth2", "treewidth2_dip", [ 32; 64 ]);
    ];
  let base = List.rev !reqs in
  (* replay a slice of the stream so the service sees exact-repeat hits *)
  let repeats = List.filteri (fun i _ -> i mod 6 = 0) base in
  let stream = Array.of_list (base @ repeats) in
  let time_serve ~codec =
    Label_cache.reset ();
    Serve.Prepared_cache.reset ();
    let t0 = Unix.gettimeofday () in
    let out = Serve.execute ~jobs:(jobs ()) ~codec stream in
    let wall = Unix.gettimeofday () -. t0 in
    (out, wall)
  in
  let report name out wall =
    let p50, p99 =
      match Serve.latency_percentiles out with Some ps -> ps | None -> (0., 0.)
    in
    Printf.printf "%-8s %5d req  %7.3fs  %8.1f req/s  p50=%6.3fms  p99=%6.3fms\n" name
      (Array.length out) wall
      (float_of_int (Array.length out) /. wall)
      (p50 *. 1e3) (p99 *. 1e3);
    (wall, p50, p99)
  in
  let out_c, wall_c = time_serve ~codec:Bits_flat.Checked in
  let pc_lookups, pc_distinct, pc_resident, pc_capacity = Serve.Prepared_cache.stats () in
  let cache_line = Serve.Prepared_cache.report () ^ "; " ^ Label_cache.report () in
  let out_f, wall_f = time_serve ~codec:Bits_flat.Flat in
  let wc, p50_c, p99_c = report "checked" out_c wall_c in
  let wf, p50_f, p99_f = report "flat" out_f wall_f in
  let digest_c = Serve.log_digest (Serve.response_log out_c) in
  let digest_f = Serve.log_digest (Serve.response_log out_f) in
  let codec_equal = String.equal digest_c digest_f in
  Printf.printf "response digest %s (%s)\n" digest_c
    (if codec_equal then "flat == checked" else "FLAT DIVERGES FROM CHECKED");
  print_endline cache_line;
  if not codec_equal then failwith "serve: flat codec diverges from the checked reference";
  (* cache-free microbenchmark: same instance, same seed, codec is the
     only variable; the honest run covers encode, decode, and verify *)
  let micro label runs =
    let time codec =
      let t0 = Unix.gettimeofday () in
      runs codec;
      Unix.gettimeofday () -. t0
    in
    ignore (time Bits_flat.Checked) (* warm up *);
    let c = time Bits_flat.Checked in
    let f = time Bits_flat.Flat in
    Printf.printf "%-22s checked %7.3fs  flat %7.3fs  speedup %.2fx\n" label c f (c /. f);
    (c, f)
  in
  let lr_n = 2048 in
  let lr_inst =
    let path, arcs = Gen.lr_yes ~n:lr_n 1 in
    { Lr_sorting.n = lr_n; path; arcs }
  in
  let lr_c, lr_f =
    micro
      (Printf.sprintf "lr n=%d x5" lr_n)
      (fun codec ->
        for seed = 1 to 5 do
          let r = Lr_sorting.run ~seed ~codec ~prover:Lr_sorting.Honest lr_inst in
          assert r.Lr_sorting.verdict.Dip.accepted
        done)
  in
  let po_n = 512 in
  let po_g, po_w = Gen.path_outerplanar ~n:po_n 1 in
  let po_c, po_f =
    micro
      (Printf.sprintf "po n=%d x3" po_n)
      (fun codec ->
        for seed = 1 to 3 do
          let r =
            Path_outerplanarity.run ~seed ~codec ~prover:Path_outerplanarity.Honest
              { Path_outerplanarity.graph = po_g; witness = Some po_w }
          in
          assert r.Path_outerplanarity.verdict.Dip.accepted
        done)
  in
  let out = match Sys.getenv_opt "DIPP_SERVE_OUT" with Some p -> p | None -> "BENCH_serve.json" in
  let oc = open_out out in
  Printf.fprintf oc "{\"bench\": \"serve\",\n";
  Printf.fprintf oc " \"requests\": %d,\n" (Array.length stream);
  Printf.fprintf oc " \"families\": [%s],\n"
    (String.concat ", " (List.map (Printf.sprintf "\"%s\"") Serve.family_names));
  Printf.fprintf oc " \"response_digest\": \"%s\",\n" digest_c;
  Printf.fprintf oc " \"codec_equal\": %b,\n" codec_equal;
  Printf.fprintf oc
    " \"prepared_cache\": {\"lookups\": %d, \"distinct\": %d, \"resident\": %d, \"capacity\": %d},\n"
    pc_lookups pc_distinct pc_resident pc_capacity;
  Printf.fprintf oc " \"timing\": {\"jobs\": %d,\n" (jobs ());
  Printf.fprintf oc
    "  \"checked\": {\"wall_s\": %.6f, \"requests_per_sec\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f},\n"
    wc
    (float_of_int (Array.length stream) /. wc)
    (p50_c *. 1e3) (p99_c *. 1e3);
  Printf.fprintf oc
    "  \"flat\": {\"wall_s\": %.6f, \"requests_per_sec\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f},\n"
    wf
    (float_of_int (Array.length stream) /. wf)
    (p50_f *. 1e3) (p99_f *. 1e3);
  Printf.fprintf oc
    "  \"microbench\": {\"lr_n\": %d, \"lr_checked_s\": %.6f, \"lr_flat_s\": %.6f, \"lr_speedup\": %.3f,\n"
    lr_n lr_c lr_f (lr_c /. lr_f);
  Printf.fprintf oc
    "   \"po_n\": %d, \"po_checked_s\": %.6f, \"po_flat_s\": %.6f, \"po_speedup\": %.3f}}}\n"
    po_n po_c po_f (po_c /. po_f);
  close_out oc;
  Printf.fprintf stdout "wrote %s: %d requests, digest %s\n" out (Array.length stream)
    (String.sub digest_c 0 12)

(* Sharded network-engine scaling: the 10^3..10^6 planar instance ladder
   (10^6 behind DIPP_HEAVY=1) through full DIP round-trips on the
   {!Shard} engine at 1/2/4/8 shards.  Every result field is checked
   identical across the shard grid (and against the single-queue {!Net}
   engine, which agrees bit-for-bit under the reliable model), and a
   faulty probe re-checks invariance across shard counts, worker counts
   and partition seeds on the smallest rung.  BENCH_shard.json
   (DIPP_SHARD_OUT overrides the path) keeps wall-clock and events/s
   inside its "timing" object — everything outside it is byte-identical
   for any machine, DIPP_SHARDS and --jobs value. *)
let shard () =
  header "SHARD  sharded network engine scaling -> BENCH_shard.json";
  let heavy = match Sys.getenv_opt "DIPP_HEAVY" with Some "1" -> true | Some _ | None -> false in
  let ladder = [ 1_000; 10_000; 100_000 ] @ if heavy then [ 1_000_000 ] else [] in
  let shard_grid = [ 1; 2; 4; 8 ] in
  let families =
    [
      ("triangulated-grid", fun n -> Gen.triangulated_grid ~n 1);
      ("nested-triangulation", fun n -> Gen.nested_triangulation ~n 1);
    ]
  in
  let tree_parent g =
    let p = Traversal.spanning_tree g 0 in
    Array.mapi (fun v pv -> if pv = v then -1 else pv) p
  in
  let render (r : Net.result) =
    let ints l = String.concat "," (List.map string_of_int l) in
    Printf.sprintf
      "accepted=%b rejecting=[%s] crashed=[%s] heard=%.17g sent=%d delivered=%d dropped=%d \
       corrupted=%d duplicated=%d late=%d retransmits=%d acks=%d"
      r.Net.accepted (ints r.Net.rejecting) (ints r.Net.crashed_nodes) r.Net.heard r.Net.stats.Net.sent
      r.Net.stats.Net.delivered r.Net.stats.Net.dropped r.Net.stats.Net.corrupted
      r.Net.stats.Net.duplicated r.Net.stats.Net.late r.Net.stats.Net.retransmits r.Net.stats.Net.acks
  in
  Printf.printf "%-22s %9s %8s %7s %9s %10s %7s %10s\n" "family" "n" "shards" "windows" "events"
    "cross" "accept" "events/s";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (fam, gen) ->
          let g = gen n in
          let proto = Net_protocols.pls_spanning_tree ~graph:g ~parent:(tree_parent g) in
          let reference = ref None in
          List.iter
            (fun shards ->
              let t0 = Unix.gettimeofday () in
              let r, st =
                Shard.execute_ex ~shards ~jobs:(jobs ()) ~rng:(Rng.create 42) ~model:Fault.reliable
                  proto
              in
              let wall = Unix.gettimeofday () -. t0 in
              let rendered = render r in
              let invariant =
                match !reference with
                | None ->
                    reference := Some rendered;
                    true
                | Some base -> String.equal base rendered
              in
              let eps = float_of_int st.Shard.events /. wall in
              let cross_frac =
                if st.Shard.events = 0 then 0.
                else float_of_int st.Shard.cross_messages /. float_of_int st.Shard.events
              in
              if not r.Net.accepted then
                failwith (Printf.sprintf "shard bench: %s n=%d rejected a yes-instance" fam n);
              if not invariant then
                failwith
                  (Printf.sprintf "shard bench: %s n=%d result differs at %d shards" fam n shards);
              Printf.printf "%-22s %9d %8d %7d %9d %10.4f %7b %10.0f\n" fam n st.Shard.shards
                st.Shard.windows st.Shard.events cross_frac r.Net.accepted eps;
              rows :=
                (fam, n, Graph.m g, st, cross_frac, r.Net.accepted, r.Net.heard, invariant, wall, eps)
                :: !rows)
            shard_grid;
          (* the single-queue engine must agree bit-for-bit under reliable *)
          let net_r = Net.execute ~rng:(Rng.create 42) ~model:Fault.reliable proto in
          if not (String.equal (render net_r) (Option.get !reference)) then
            failwith (Printf.sprintf "shard bench: %s n=%d diverges from Net.execute" fam n))
        families)
    ladder;
  (* faulty probe: shard count, worker count and partition seed must not
     change the result even when the fault streams are active *)
  let probe_g = Gen.triangulated_grid ~n:1_000 1 in
  let probe = Net_protocols.pls_spanning_tree ~graph:probe_g ~parent:(tree_parent probe_g) in
  let probe_run ~shards ~jobs ~partition_seed =
    render
      (Shard.execute ~shards ~jobs ~partition_seed ~rng:(Rng.create 7) ~model:(Fault.chaos ~rate:0.05)
         probe)
  in
  let probe_base = probe_run ~shards:1 ~jobs:1 ~partition_seed:0 in
  let probe_ok =
    List.for_all
      (fun (shards, jobs, partition_seed) ->
        String.equal probe_base (probe_run ~shards ~jobs ~partition_seed))
      [ (2, 1, 0); (4, 2, 0); (8, 4, 0); (4, 4, 3); (8, 1, 11) ]
  in
  Printf.printf "faulty probe (chaos 0.05, n=1000): %s\n"
    (if probe_ok then "invariant across shards/jobs/partition seeds" else "DIVERGED");
  if not probe_ok then failwith "shard bench: faulty probe diverged";
  let rows = List.rev !rows in
  let find_eps fam n shards =
    List.find_map
      (fun (f, n', _, st, _, _, _, _, _, eps) ->
        if String.equal f fam && n' = n && st.Shard.shards = shards then Some eps else None)
      rows
  in
  let speedup =
    match (find_eps "triangulated-grid" 100_000 8, find_eps "triangulated-grid" 100_000 1) with
    | Some e8, Some e1 when e1 > 0. -> e8 /. e1
    | _ -> 0.
  in
  Printf.printf "8-shard vs 1-shard events/s at n=100000 (grid): %.2fx (on %d core(s))\n" speedup
    (Domain.recommended_domain_count ());
  let out =
    match Sys.getenv_opt "DIPP_SHARD_OUT" with Some p -> p | None -> "BENCH_shard.json"
  in
  let oc = open_out out in
  Printf.fprintf oc "{\"bench\": \"shard\",\n";
  Printf.fprintf oc " \"ladder\": [%s],\n" (String.concat ", " (List.map string_of_int ladder));
  Printf.fprintf oc " \"heavy\": %b,\n" heavy;
  Printf.fprintf oc " \"shard_grid\": [%s],\n"
    (String.concat ", " (List.map string_of_int shard_grid));
  Printf.fprintf oc " \"probe_invariant\": %b,\n" probe_ok;
  Printf.fprintf oc " \"rows\": [";
  List.iteri
    (fun i (fam, n, m, st, cross_frac, accepted, heard, invariant, _, _) ->
      Printf.fprintf oc
        "%s\n\
        \  {\"family\": \"%s\", \"n\": %d, \"m\": %d, \"shards\": %d, \"windows\": %d, \
         \"events\": %d, \"cross_messages\": %d, \"cross_fraction\": %.6f, \"accepted\": %b, \
         \"heard\": %.6f, \"invariant\": %b}"
        (if i = 0 then "" else ",")
        fam n m st.Shard.shards st.Shard.windows st.Shard.events st.Shard.cross_messages cross_frac
        accepted heard invariant)
    rows;
  Printf.fprintf oc "\n ],\n";
  Printf.fprintf oc " \"timing\": {\"jobs\": %d, \"cores\": %d, \"speedup_8v1_grid_1e5\": %.4f,\n"
    (jobs ())
    (Domain.recommended_domain_count ())
    speedup;
  Printf.fprintf oc "  \"rows\": [";
  List.iteri
    (fun i (fam, n, _, st, _, _, _, _, wall, eps) ->
      Printf.fprintf oc
        "%s\n   {\"family\": \"%s\", \"n\": %d, \"shards\": %d, \"wall_s\": %.6f, \
         \"events_per_sec\": %.1f}"
        (if i = 0 then "" else ",")
        fam n st.Shard.shards wall eps)
    rows;
  Printf.fprintf oc "\n  ]}}\n";
  close_out oc;
  Printf.printf "wrote %s: %d rows (heavy=%b)\n" out (List.length rows) heavy

(* The one command table: execution order, dispatch, and the usage text
   all come from this list, so a new experiment needs exactly one row. *)
let commands =
  [
    ("e1", "LR-sorting proof-size scaling (Lemma 4.1)", e1);
    ("e2", "LR-sorting empirical soundness", e2);
    ("e3", "path-outerplanarity scaling + soundness (Thm 1.2)", e3);
    ("e4", "outerplanarity block-cut composition (Thm 1.3)", e4);
    ("e5", "embedded planarity reduction (Thm 1.4)", e5);
    ("e6", "planarity proof-size vs Delta (Thm 1.5)", e6);
    ("e7", "series-parallel (Thm 1.6)", e7);
    ("e8", "treewidth <= 2 (Thm 1.7)", e8);
    ("e9", "one-round lower bound thresholds (Thm 1.8)", e9);
    ("e10", "results table: rounds/bits/completeness/soundness", e10);
    ("e11", "reduction chart (Figure 2) sub-protocol traces", e11);
    ("ablation", "design-choice ablations A1-A3", ablation);
    ("open-questions", "per-round communication breakdown", open_questions);
    ("timing", "bechamel wall-clock benches", timing);
    ("bounds", "claim-vs-measured bounds_report.json", bounds);
    ("trials", "engine soundness trials -> trials_report.json", trials);
    ("faults", "fault-injection sweep -> faults_report.json", faults);
    ("analysis", "static-analyzer pass timings -> BENCH_analysis.json", analysis);
    ("serve", "batched verification service -> BENCH_serve.json", serve);
    ("shard", "sharded network engine scaling -> BENCH_shard.json", shard);
  ]

let find_command p =
  let p = String.lowercase_ascii p in
  List.find_opt (fun (name, _, _) -> String.equal name p) commands

let usage oc =
  output_string oc "usage: main.exe [--jobs N] [COMMAND ...]\ncommands:\n";
  List.iter (fun (name, doc, _) -> Printf.fprintf oc "  %-16s %s\n" name doc) commands;
  output_string oc "with no COMMAND, every experiment runs in order (see EXPERIMENTS.md).\n"

let () =
  (* peel --jobs N (anywhere) off the experiment picks; any other flag is
     an error (exit 2, the usage-error code shared with lib/analysis/cli) *)
  let rec parse acc = function
    | [] -> List.rev acc
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some j when j >= 1 ->
            jobs_override := Some j;
            parse acc rest
        | Some _ | None ->
            Printf.eprintf "--jobs expects a positive integer (got %s)\n" v;
            usage stderr;
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs expects a positive integer\n";
        usage stderr;
        exit 2
    | ("--help" | "-h") :: _ ->
        usage stdout;
        exit 0
    | flag :: _ when String.length flag > 0 && flag.[0] = '-' ->
        Printf.eprintf "unknown flag %s\n" flag;
        usage stderr;
        exit 2
    | p :: rest -> parse (p :: acc) rest
  in
  let picks = parse [] (List.tl (Array.to_list Sys.argv)) in
  (* reject any unknown command before running anything *)
  let unknown = List.filter (fun p -> Option.is_none (find_command p)) picks in
  (match unknown with
  | [] -> ()
  | _ :: _ ->
      List.iter (fun p -> Printf.eprintf "unknown command %s\n" p) unknown;
      usage stderr;
      exit 2);
  match picks with
  | _ :: _ ->
      List.iter (fun p -> match find_command p with Some (_, _, f) -> f () | None -> ()) picks
  | [] -> List.iter (fun (_, _, f) -> f ()) commands
