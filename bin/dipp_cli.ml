(* The `dipp` command-line tool: generate instances, run recognitions, and
   execute the interactive proofs on graphs from files or generators.

     dipp gen --family outerplanar --size 5 --seed 3 -o net.txt
     dipp check net.txt --property outerplanar
     dipp prove net.txt --property planarity
     dipp certify --family planar --size 100 --cheat
     dipp dot net.txt
     dipp lower-bound -n 1024
     dipp record -e E3 -s 7 -o E3.trace
     dipp replay E3.trace
     dipp audit E3.trace other.trace
     dipp serve requests.txt --jobs 4 --codec flat
     dipp net net.txt --shards 4 --model drop --rate 0.05 *)

open Dipp
open Cmdliner

(* ---- shared args ------------------------------------------------------- *)

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Generator / protocol seed.")

let size_arg =
  Arg.(value & opt int 64 & info [ "n"; "size" ] ~docv:"N" ~doc:"Instance size parameter.")

let family_arg =
  let families =
    [
      ("path-outerplanar", `Path_outerplanar);
      ("outerplanar", `Outerplanar);
      ("planar", `Planar);
      ("series-parallel", `Sp);
      ("treewidth2", `Tw2);
      ("nonplanar", `Nonplanar);
      ("crossing", `Crossing);
    ]
  in
  Arg.(
    value
    & opt (enum families) `Outerplanar
    & info [ "f"; "family" ] ~docv:"FAMILY"
        ~doc:"Instance family: path-outerplanar, outerplanar, planar, series-parallel, treewidth2, nonplanar, crossing.")

let property_arg =
  let props =
    [
      ("path-outerplanar", `Path_outerplanar);
      ("outerplanar", `Outerplanar);
      ("planar", `Planar);
      ("series-parallel", `Sp);
      ("treewidth2", `Tw2);
    ]
  in
  Arg.(
    value
    & opt (enum props) `Planar
    & info [ "p"; "property" ] ~docv:"PROP"
        ~doc:"Graph property: path-outerplanar, outerplanar, planar, series-parallel, treewidth2.")

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Edge-list file.")

let gen_graph family ~n ~seed =
  match family with
  | `Path_outerplanar -> fst (Gen.path_outerplanar ~n:(max 4 n) seed)
  | `Outerplanar -> Gen.outerplanar ~blocks:(max 1 (n / 8)) seed
  | `Planar -> Gen.planar ~n:(max 4 n) seed
  | `Sp -> snd (Gen.series_parallel ~size:(max 4 n) seed)
  | `Tw2 -> Gen.treewidth2 ~blocks:(max 1 (n / 8)) seed
  | `Nonplanar -> Gen.nonplanar ~n:(max 25 n) seed
  | `Crossing -> fst (Gen.path_crossing ~n:(max 10 n) seed)

(* ---- gen ---------------------------------------------------------------- *)

let gen_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE (stdout otherwise).")
  in
  let run family n seed out =
    let g = gen_graph family ~n ~seed in
    let text = Graph_io.to_edge_list g in
    (match out with Some path -> Graph_io.write_file path g | None -> print_string text);
    Printf.eprintf "generated: n=%d m=%d\n" (Graph.n g) (Graph.m g)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a yes/no instance and print its edge list.")
    Term.(const run $ family_arg $ size_arg $ seed_arg $ out_arg)

(* ---- check (centralized recognition) ------------------------------------- *)

let check_cmd =
  let run file prop =
    let g = Graph_io.read_file file in
    let answer, witness_note =
      match prop with
      | `Path_outerplanar -> (
          match Outerplanar.path_witness g with
          | Some w when Outerplanar.check_path_witness g w ->
              (true, Printf.sprintf "witness path: %s" (String.concat " " (List.map string_of_int w)))
          | _ -> (false, "no nesting Hamiltonian path found"))
      | `Outerplanar -> (Outerplanar.is_outerplanar g, "")
      | `Planar -> (
          match Planar_test.embed g with
          | Some rot -> (true, Printf.sprintf "embedding with %d faces" (Rotation.face_count rot))
          | None -> (false, "no planar embedding exists"))
      | `Sp -> (
          match Series_parallel.decompose g with
          | Some t ->
              let s, e = Series_parallel.terminals t in
              (true, Printf.sprintf "series-parallel with terminals (%d, %d)" s e)
          | None -> (false, ""))
      | `Tw2 -> (Series_parallel.is_treewidth_le_2 g, "")
    in
    Printf.printf "n=%d m=%d: %s%s\n" (Graph.n g) (Graph.m g)
      (if answer then "YES" else "NO")
      (if witness_note = "" then "" else "  (" ^ witness_note ^ ")");
    if not answer then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Centralized recognition of a graph property (ground truth).")
    Term.(const run $ file_arg $ property_arg)

(* ---- prove (run the DIP) --------------------------------------------------- *)

let report name (verdict : Dip.verdict) (stats : Dip.stats) =
  Printf.printf "%s: %s\n" name (if verdict.Dip.accepted then "ACCEPT" else "REJECT");
  Format.printf "  %a@." Dip.pp_stats stats;
  if not verdict.Dip.accepted then begin
    Printf.printf "  rejecting nodes: %s\n"
      (String.concat ", " (List.map string_of_int (List.filteri (fun i _ -> i < 16) verdict.Dip.rejecting)));
    exit 1
  end

let prove_cmd =
  let run file prop seed =
    let g = Graph_io.read_file file in
    match prop with
    | `Path_outerplanar ->
        let r =
          Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Honest
            { Path_outerplanarity.graph = g; witness = None }
        in
        report "path-outerplanarity DIP (Thm 1.2)" r.Path_outerplanarity.verdict r.Path_outerplanarity.stats
    | `Outerplanar ->
        let r = Outerplanarity.run ~seed ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
        report "outerplanarity DIP (Thm 1.3)" r.Outerplanarity.verdict r.Outerplanarity.stats
    | `Planar ->
        let r = Planarity.run ~seed ~prover:Planarity.Honest { Planarity.graph = g } in
        report "planarity DIP (Thm 1.5)" r.Planarity.verdict r.Planarity.stats
    | `Sp ->
        let r =
          Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Honest
            { Series_parallel_dip.graph = g; ears = None }
        in
        report "series-parallel DIP (Thm 1.6)" r.Series_parallel_dip.verdict r.Series_parallel_dip.stats
    | `Tw2 ->
        let r = Treewidth2_dip.run ~seed ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
        report "treewidth<=2 DIP (Thm 1.7)" r.Treewidth2_dip.verdict r.Treewidth2_dip.stats
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Run the 5-round interactive proof on a graph from a file.")
    Term.(const run $ file_arg $ property_arg $ seed_arg)

(* ---- certify (generate + prove, optional cheat) ----------------------------- *)

let certify_cmd =
  let cheat_arg = Arg.(value & flag & info [ "cheat" ] ~doc:"Use a no-instance with a cheating prover.") in
  let run family n seed cheat =
    if not cheat then begin
      let g = gen_graph family ~n ~seed in
      match family with
      | `Planar | `Nonplanar ->
          let r = Planarity.run ~seed ~prover:Planarity.Honest { Planarity.graph = g } in
          report "planarity DIP" r.Planarity.verdict r.Planarity.stats
      | `Path_outerplanar | `Crossing ->
          let r =
            Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Honest
              { Path_outerplanarity.graph = g; witness = None }
          in
          report "path-outerplanarity DIP" r.Path_outerplanarity.verdict r.Path_outerplanarity.stats
      | `Outerplanar ->
          let r = Outerplanarity.run ~seed ~prover:Outerplanarity.Honest { Outerplanarity.graph = g } in
          report "outerplanarity DIP" r.Outerplanarity.verdict r.Outerplanarity.stats
      | `Sp ->
          let r =
            Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Honest
              { Series_parallel_dip.graph = g; ears = None }
          in
          report "series-parallel DIP" r.Series_parallel_dip.verdict r.Series_parallel_dip.stats
      | `Tw2 ->
          let r = Treewidth2_dip.run ~seed ~prover:Treewidth2_dip.Honest { Treewidth2_dip.graph = g } in
          report "treewidth<=2 DIP" r.Treewidth2_dip.verdict r.Treewidth2_dip.stats
    end
    else begin
      (* no-instance + the matching adversary; a REJECT is the expected
         (successful) outcome, so exit 0 on rejection *)
      match family with
      | `Planar | `Nonplanar ->
          let g = Gen.nonplanar ~n:(max 25 n) seed in
          let r = Planarity.run ~seed ~prover:Planarity.Best_rotation { Planarity.graph = g } in
          Printf.printf "cheating prover on non-planar graph: %s\n"
            (if r.Planarity.verdict.Dip.accepted then "ACCEPTED (soundness error!)" else "rejected")
      | `Path_outerplanar | `Crossing ->
          let g, w = Gen.path_crossing ~n:(max 10 n) seed in
          let r =
            Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Crossing_sweep
              { Path_outerplanarity.graph = g; witness = Some w }
          in
          Printf.printf "cheating prover on crossing instance: %s\n"
            (if r.Path_outerplanarity.verdict.Dip.accepted then "ACCEPTED (soundness error!)" else "rejected")
      | `Outerplanar ->
          let g = Gen.outerplanar_no ~blocks:(max 1 (n / 8)) seed in
          let r = Outerplanarity.run ~seed ~prover:Outerplanarity.Component_cheat { Outerplanarity.graph = g } in
          Printf.printf "cheating prover on non-outerplanar graph: %s\n"
            (if r.Outerplanarity.verdict.Dip.accepted then "ACCEPTED (soundness error!)" else "rejected")
      | `Sp -> (
          match Gen.series_parallel_no ~size:(max 10 n) seed with
          | Some (g, ears) ->
              let r =
                Series_parallel_dip.run ~seed ~prover:Series_parallel_dip.Ear_cheat
                  { Series_parallel_dip.graph = g; ears = Some ears }
              in
              Printf.printf "cheating prover on non-SP graph: %s\n"
                (if r.Series_parallel_dip.verdict.Dip.accepted then "ACCEPTED (soundness error!)" else "rejected")
          | None -> print_endline "could not build a no-instance at this size")
      | `Tw2 -> (
          match Gen.treewidth2_no ~blocks:(max 1 (n / 8)) seed with
          | Some g ->
              let r =
                Treewidth2_dip.run ~seed ~prover:Treewidth2_dip.Component_cheat { Treewidth2_dip.graph = g }
              in
              Printf.printf "cheating prover on treewidth-3 graph: %s\n"
                (if r.Treewidth2_dip.verdict.Dip.accepted then "ACCEPTED (soundness error!)" else "rejected")
          | None -> print_endline "could not build a no-instance at this size")
    end
  in
  Cmd.v
    (Cmd.info "certify" ~doc:"Generate an instance and run the interactive proof on it.")
    Term.(const run $ family_arg $ size_arg $ seed_arg $ cheat_arg)

(* ---- dot --------------------------------------------------------------------- *)

let dot_cmd =
  let run file =
    let g = Graph_io.read_file file in
    print_string (Graph_io.to_dot g)
  in
  Cmd.v (Cmd.info "dot" ~doc:"Print a DOT rendering of an edge-list file.") Term.(const run $ file_arg)

(* ---- record / replay / audit (transcripts) -------------------------------------- *)

let experiment_arg =
  Arg.(
    required
    & opt (some (enum (List.map (fun id -> (id, id)) Trace_registry.ids))) None
    & info [ "e"; "experiment" ] ~docv:"EXP"
        ~doc:"Corpus experiment id: one of E1..E8 (see `dipp record --help').")

let net_arg =
  Arg.(value & flag & info [ "net" ] ~doc:"Record on the network runtime instead of the synchronous one.")

let record_cmd =
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the trace to FILE (default EXP.trace / EXP.net.trace).")
  in
  let run exp net seed out =
    match Trace_registry.find exp with
    | None ->
        Printf.eprintf "unknown experiment %s (known: %s)\n" exp (String.concat " " Trace_registry.ids);
        exit 2
    | Some entry ->
        let runtime = if net then Trace.Net_runtime else Trace.Dip_runtime in
        let t = Trace_registry.record ~runtime entry ~seed in
        let path =
          match out with
          | Some p -> p
          | None -> exp ^ (if net then ".net.trace" else ".trace")
        in
        Trace.to_file path t;
        Printf.printf "%s\n" (Trace.summary t);
        Printf.printf "wrote %s (digest %s)\n" path (Trace.digest t)
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Record a canonical proof transcript for a corpus experiment.")
    Term.(const run $ experiment_arg $ net_arg $ seed_arg $ out_arg)

let trace_file_arg pos_idx docv =
  Arg.(required & pos pos_idx (some file) None & info [] ~docv ~doc:"Transcript file.")

let replay_cmd =
  let run file =
    let t = Trace.of_file file in
    Printf.printf "%s\n" (Trace.summary t);
    match Trace_registry.replay t with
    | Ok r ->
        Printf.printf "replay OK (%s): verdict %s matches, frames and per-phase bit counts match\n"
          r.Trace_registry.mode
          (if r.Trace_registry.verdict.Dip.accepted then "ACCEPT" else "REJECT")
    | Error msg ->
        Printf.printf "replay DIVERGED: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay a transcript against the registry; exit 1 on any divergence.")
    Term.(const run $ trace_file_arg 0 "FILE")

let audit_cmd =
  let run file_a file_b =
    let a = Trace.of_file file_a in
    let b = Trace.of_file file_b in
    Printf.printf "a: %s\n" (Trace.summary a);
    Printf.printf "b: %s\n" (Trace.summary b);
    match Trace.diff a b with
    | None -> Printf.printf "identical: digest %s\n" (Trace.digest a)
    | Some d ->
        Printf.printf "divergence: %s\n" d;
        exit 1
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Byte-compare two transcripts and report the first divergence.")
    Term.(const run $ trace_file_arg 0 "FILE_A" $ trace_file_arg 1 "FILE_B")

(* ---- serve (batched verification service) ---------------------------------------- *)

let serve_cmd =
  let stream_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"STREAM"
          ~doc:"Request stream (text or binary, auto-detected); `-' or omitted reads stdin.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker-domain count (default: \\$(b,DIPP_JOBS) or the machine's core count).")
  in
  let codec_arg =
    Arg.(
      value
      & opt (enum [ ("checked", Bits_flat.Checked); ("flat", Bits_flat.Flat) ]) Bits_flat.Checked
      & info [ "codec" ] ~docv:"CODEC"
          ~doc:
            "Label codec: checked (the Bits.Writer reference path) or flat (preallocated \
             buffers).  Both produce byte-identical responses.")
  in
  let run stream jobs codec =
    let input =
      match stream with
      | None | Some "-" -> In_channel.input_all stdin
      | Some path -> In_channel.with_open_bin path In_channel.input_all
    in
    match Serve.parse_requests input with
    | Error msg ->
        Printf.eprintf "serve: %s\n" msg;
        exit 2
    | Ok reqs -> (
        let t0 = Unix.gettimeofday () in
        match Serve.execute ?jobs ~codec reqs with
        | exception Serve.Bad_request msg ->
            Printf.eprintf "serve: %s\n" msg;
            exit 2
        | out ->
            let wall = Unix.gettimeofday () -. t0 in
            (* stdout carries only the deterministic response log + digest:
               byte-identical for every --jobs/--codec/cache setting.
               Timing and cache statistics go to stderr. *)
            let log = Serve.response_log out in
            Array.iter print_endline log;
            Printf.printf "digest: %s\n" (Serve.log_digest log);
            (match Serve.latency_percentiles out with
            | Some (p50, p99) ->
                Printf.eprintf
                  "served %d request(s) in %.3fs (%.1f req/s), p50=%.3fms p99=%.3fms\n"
                  (Array.length out) wall
                  (float_of_int (Array.length out) /. wall)
                  (p50 *. 1e3) (p99 *. 1e3)
            | None -> Printf.eprintf "served 0 request(s) in %.3fs\n" wall);
            Printf.eprintf "%s\n%s\n" (Serve.Prepared_cache.report ()) (Label_cache.report ());
            if Array.exists (fun o -> not o.Serve.response.Serve.accepted) out then exit 1)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Answer a stream of verification requests at maximum throughput (instances and honest \
          runs cached, batches fanned over the domain pool).")
    Term.(const run $ stream_arg $ jobs_arg $ codec_arg)

(* ---- net (execute on the fault-injecting network runtime) ------------------------ *)

let net_run_cmd =
  let shards_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"K"
          ~doc:
            "Shard count for the partitioned engine (default: \\$(b,DIPP_SHARDS) or 4); 0 runs \
             the single-queue engine.  The verdict is identical for every K >= 1.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker-domain count for the sharded engine.")
  in
  let pseed_arg =
    Arg.(
      value
      & opt int 0
      & info [ "partition-seed" ] ~docv:"S"
          ~doc:"Partition seed (never changes the verdict, only the block layout).")
  in
  let model_arg =
    Arg.(
      value
      & opt string "reliable"
      & info [ "model" ] ~docv:"MODEL"
          ~doc:"Fault model: reliable, drop, corrupt, duplicate, delay, crash, chaos.")
  in
  let rate_arg = Arg.(value & opt float 0.05 & info [ "rate" ] ~docv:"R" ~doc:"Fault rate.") in
  let proto_arg =
    Arg.(
      value
      & opt (enum [ ("pls", `Pls); ("st", `St) ]) `Pls
      & info [ "protocol" ] ~docv:"P"
          ~doc:
            "Protocol to execute: pls (distance-labeling PLS) or st (Lemma 2.5 spanning-tree \
             verification).")
  in
  let run file proto_kind shards jobs partition_seed model_name rate seed =
    let g = Graph_io.read_file file in
    let parent =
      let p = Traversal.spanning_tree g 0 in
      Array.mapi (fun v pv -> if pv = v then -1 else pv) p
    in
    let proto =
      match proto_kind with
      | `Pls -> Net_protocols.pls_spanning_tree ~graph:g ~parent
      | `St -> Net_protocols.st_verify ~seed g ~parent
    in
    let model =
      match Fault.by_name model_name ~rate with
      | Some m -> m
      | None ->
          Printf.eprintf "unknown fault model %s\n" model_name;
          exit 2
    in
    let rng = Rng.create seed in
    let r =
      match shards with
      | Some 0 -> Net.execute ~rng ~model proto
      | _ ->
          let r, st = Shard.execute_ex ?shards ?jobs ~partition_seed ~rng ~model proto in
          Printf.printf "shards=%d windows=%d events=%d cross=%d\n" st.Shard.shards
            st.Shard.windows st.Shard.events st.Shard.cross_messages;
          r
    in
    Printf.printf "%s on %s (n=%d m=%d): %s\n"
      (match proto_kind with `Pls -> "pls-spanning-tree" | `St -> "st-verify")
      model_name (Graph.n g) (Graph.m g)
      (if r.Net.accepted then "ACCEPT" else "REJECT");
    Printf.printf "heard=%.4f crashed=%d rejecting=%d\n" r.Net.heard
      (List.length r.Net.crashed_nodes) (List.length r.Net.rejecting);
    Format.printf "%a@." Net.pp_stats r.Net.stats;
    if not r.Net.accepted then exit 1
  in
  Cmd.v
    (Cmd.info "net"
       ~doc:
         "Execute a protocol on the discrete-event network runtime (sharded across Domains with \
          --shards; verdicts are shard-count-invariant).")
    Term.(
      const run $ file_arg $ proto_arg $ shards_arg $ jobs_arg $ pseed_arg $ model_arg $ rate_arg
      $ seed_arg)

(* ---- lower-bound --------------------------------------------------------------- *)

let lb_cmd =
  let run n =
    Printf.printf "n = %d (log2 = %d)\n" n
      (let rec go w = if 1 lsl w >= n then w else go (w + 1) in
       go 1);
    Printf.printf "1-round soundness threshold:    %d bits\n" (Lower_bound.soundness_threshold ~n);
    Printf.printf "1-round completeness threshold: %d bits\n" (Lower_bound.completeness_threshold ~n);
    let path, arcs = Gen.lr_yes ~n 1 in
    let r = Lr_sorting.run ~seed:1 ~prover:Lr_sorting.Honest { Lr_sorting.n; path; arcs } in
    Printf.printf "5-round DIP proof size:         %d bits (O(log log n))\n"
      r.Lr_sorting.stats.Dip.proof_size_bits
  in
  Cmd.v
    (Cmd.info "lower-bound" ~doc:"Measure the Theorem 1.8 one-round thresholds at a given size.")
    Term.(const run $ size_arg)

let () =
  let info = Cmd.info "dipp" ~version:"1.0.0" ~doc:"Distributed interactive proofs for planarity (Gil-Parter, PODC 2025)." in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; check_cmd; prove_cmd; certify_cmd; dot_cmd; lb_cmd; record_cmd; replay_cmd; audit_cmd; serve_cmd; net_run_cmd ]))
