(* dipp-lint: static DIP-model-compliance and hygiene analyzer.

   Usage: dipp_lint [--rules r1,r2] [--list-rules] [path ...]

   Paths may be .ml files or directories (scanned recursively); the
   default is ./lib.  Exits 1 when any finding survives filtering, so it
   can gate builds (wired up as `dune build @lint`). *)

let () =
  let paths = ref [] and selected = ref [] and list_rules = ref false in
  let spec =
    [
      ( "--rules",
        Arg.String
          (fun s -> selected := !selected @ String.split_on_char ',' s),
        "r1,r2 run only the named rules (default: all)" );
      ("--list-rules", Arg.Set list_rules, " print the known rules and exit");
    ]
  in
  Arg.parse spec (fun p -> paths := p :: !paths) "dipp_lint [options] [path ...]";
  if !list_rules then begin
    List.iter
      (fun r -> Format.printf "%-20s %s@." r.Dipp_analysis.Lint_rules.id r.Dipp_analysis.Lint_rules.summary)
      Dipp_analysis.Lint_rules.rules;
    exit 0
  end;
  let known = List.map (fun r -> r.Dipp_analysis.Lint_rules.id) Dipp_analysis.Lint_rules.rules in
  List.iter
    (fun r ->
      if not (List.mem r known) then begin
        Format.eprintf "dipp_lint: unknown rule %s (try --list-rules)@." r;
        exit 2
      end)
    !selected;
  let roots = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let findings =
    List.concat_map
      (fun root ->
        if not (Sys.file_exists root) then begin
          Format.eprintf "dipp_lint: no such path %s@." root;
          exit 2
        end;
        if Sys.is_directory root then Dipp_analysis.Lint_rules.lint_tree root
        else Dipp_analysis.Lint_rules.lint_file root)
      roots
  in
  let findings =
    match !selected with
    | [] -> findings
    | sel -> List.filter (fun f -> List.mem f.Dipp_analysis.Report.rule sel) findings
  in
  Format.printf "%a@?" Dipp_analysis.Report.pp_report findings;
  match findings with [] -> () | _ :: _ -> exit 1
