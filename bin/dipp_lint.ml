(* dipp-lint: static DIP-model-compliance and hygiene analyzer.

   Usage: dipp_lint [--rules r1,r2] [--list-rules] [--refine-safe] [--race-safe]
                    [--format text|json|sarif] [path ...]

   Paths may be .ml files or directories (scanned recursively); the
   default is ./lib.  Exit codes: 0 clean, 1 findings, 2 usage/IO error
   — so it can gate builds (wired up as `dune build @lint`).  All the
   logic lives in Dipp_analysis.Cli, where it is unit-tested. *)

let () = exit (Dipp_analysis.Cli.run Sys.argv)
