(** Distributed interactive proofs for planarity — public API.

    An implementation of Gil and Parter, "New Distributed Interactive
    Proofs for Planarity: A Matter of Left and Right" (PODC 2025).

    The protocol entry points (one per theorem):
    - {!Lr_sorting} (Lemma 4.1/4.2),
    - {!Path_outerplanarity} (Theorem 1.2),
    - {!Outerplanarity} (Theorem 1.3 and 6.1),
    - {!Planar_embedding} (Theorem 1.4),
    - {!Planarity} (Theorem 1.5),
    - {!Series_parallel_dip} (Theorem 1.6),
    - {!Treewidth2_dip} (Theorem 1.7);

    baselines and the Theorem 1.8 experiment:
    - {!Pls_lr_sorting}, {!Pls_path_outerplanar}, {!Pls_spanning_tree},
      {!Lower_bound};

    and the substrates: graphs and recognition algorithms under
    {!Graph}..{!Series_parallel}, DIP machinery under {!Dip},
    {!Forest_encoding}, {!Edge_labels}, {!Spanning_tree_verify},
    {!Multiset_equality}, and instance generators under {!Gen}. *)

(* utilities *)
module Bits = Dipp_util.Bits
module Bits_flat = Dipp_util.Bits_flat
module Rng = Dipp_util.Rng
module Min_heap = Dipp_util.Min_heap
module Prime = Dipp_util.Prime
module Fp = Dipp_util.Fp
module Poly = Dipp_util.Poly
module Sha256 = Dipp_util.Sha256

(* graph substrate *)
module Graph = Dipp_graph.Graph
module Digraph = Dipp_graph.Digraph
module Traversal = Dipp_graph.Traversal
module Partition = Dipp_graph.Partition
module Biconnectivity = Dipp_graph.Biconnectivity
module Degeneracy = Dipp_graph.Degeneracy
module Coloring = Dipp_graph.Coloring
module Forest_decomposition = Dipp_graph.Forest_decomposition
module Rotation = Dipp_graph.Rotation
module Planar_test = Dipp_graph.Planarity
module Outerplanar = Dipp_graph.Outerplanar
module Series_parallel = Dipp_graph.Series_parallel

(* generators *)
module Gen = Dipp_gen.Gen

(* DIP framework and shared sub-protocols *)
module Dip = Dipp_dip.Dip
module Forest_encoding = Dipp_dip.Forest_encoding
module Edge_labels = Dipp_dip.Edge_labels
module Spanning_tree_verify = Dipp_dip.Spanning_tree_verify
module Multiset_equality = Dipp_dip.Multiset_equality

(* the paper's protocols *)
module Bounds = Dipp_protocols.Bounds
module Lr_sorting = Dipp_protocols.Lr_sorting
module Path_outerplanarity = Dipp_protocols.Path_outerplanarity
module Outerplanarity = Dipp_protocols.Outerplanarity
module Planar_embedding = Dipp_protocols.Planar_embedding
module Planarity = Dipp_protocols.Planarity
module Series_parallel_dip = Dipp_protocols.Series_parallel_dip
module Treewidth2_dip = Dipp_protocols.Treewidth2_dip

(* trial engine *)
module Pool = Dipp_engine.Pool
module Engine = Dipp_engine.Engine
module Soundness = Dipp_engine.Soundness

(* fault-injecting network runtime *)
module Fault = Dipp_net.Fault
module Net = Dipp_net.Net
module Shard = Dipp_net.Shard
module Net_protocols = Dipp_net.Net_protocols
module Fault_sweep = Dipp_engine.Fault_sweep

(* transcripts: record/replay + label cache *)
module Trace = Dipp_trace.Trace
module Label_cache = Dipp_trace.Label_cache
module Serve = Dipp_serve.Serve
module Trace_registry = Dipp_trace.Registry

(* baselines + lower bound *)
module Pls_lr_sorting = Dipp_baselines.Pls_lr_sorting
module Pls_path_outerplanar = Dipp_baselines.Pls_path_outerplanar
module Pls_spanning_tree = Dipp_baselines.Pls_spanning_tree
module Lower_bound = Dipp_baselines.Lower_bound
module Graph_io = Dipp_graph.Graph_io
module Amplify = Dipp_dip.Amplify
