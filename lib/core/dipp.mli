(** Distributed interactive proofs for planarity — public API.

    An implementation of Gil and Parter, "New Distributed Interactive
    Proofs for Planarity: A Matter of Left and Right" (PODC 2025).
    Everything here is a re-export; see the per-module interfaces for the
    actual contracts. *)

(* utilities *)
module Bits = Dipp_util.Bits
module Bits_flat = Dipp_util.Bits_flat
module Rng = Dipp_util.Rng
module Prime = Dipp_util.Prime
module Fp = Dipp_util.Fp
module Poly = Dipp_util.Poly
module Sha256 = Dipp_util.Sha256
module Min_heap = Dipp_util.Min_heap

(* graph substrate *)
module Graph = Dipp_graph.Graph
module Digraph = Dipp_graph.Digraph
module Traversal = Dipp_graph.Traversal
module Biconnectivity = Dipp_graph.Biconnectivity
module Degeneracy = Dipp_graph.Degeneracy
module Coloring = Dipp_graph.Coloring
module Forest_decomposition = Dipp_graph.Forest_decomposition
module Rotation = Dipp_graph.Rotation
module Planar_test = Dipp_graph.Planarity
module Outerplanar = Dipp_graph.Outerplanar
module Series_parallel = Dipp_graph.Series_parallel
module Partition = Dipp_graph.Partition

(* generators *)
module Gen = Dipp_gen.Gen

(* DIP framework and shared sub-protocols *)
module Dip = Dipp_dip.Dip
module Forest_encoding = Dipp_dip.Forest_encoding
module Edge_labels = Dipp_dip.Edge_labels
module Spanning_tree_verify = Dipp_dip.Spanning_tree_verify
module Multiset_equality = Dipp_dip.Multiset_equality

(* the paper's protocols *)
module Bounds = Dipp_protocols.Bounds
module Lr_sorting = Dipp_protocols.Lr_sorting
module Path_outerplanarity = Dipp_protocols.Path_outerplanarity
module Outerplanarity = Dipp_protocols.Outerplanarity
module Planar_embedding = Dipp_protocols.Planar_embedding
module Planarity = Dipp_protocols.Planarity
module Series_parallel_dip = Dipp_protocols.Series_parallel_dip
module Treewidth2_dip = Dipp_protocols.Treewidth2_dip

(* trial engine: deterministic multicore experiment execution *)
module Pool = Dipp_engine.Pool
module Engine = Dipp_engine.Engine
module Soundness = Dipp_engine.Soundness

(* fault-injecting network runtime *)
module Fault = Dipp_net.Fault
module Net = Dipp_net.Net
module Shard = Dipp_net.Shard
module Net_protocols = Dipp_net.Net_protocols
module Fault_sweep = Dipp_engine.Fault_sweep

(* transcripts: record/replay + label cache *)
module Trace = Dipp_trace.Trace
module Label_cache = Dipp_trace.Label_cache
module Serve = Dipp_serve.Serve
module Trace_registry = Dipp_trace.Registry

(* baselines + lower bound *)
module Pls_lr_sorting = Dipp_baselines.Pls_lr_sorting
module Pls_path_outerplanar = Dipp_baselines.Pls_path_outerplanar
module Pls_spanning_tree = Dipp_baselines.Pls_spanning_tree
module Lower_bound = Dipp_baselines.Lower_bound
module Graph_io = Dipp_graph.Graph_io
module Amplify = Dipp_dip.Amplify
