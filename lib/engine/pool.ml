let clamp_jobs j = if j < 1 then 1 else if j > 64 then 64 else j

(* Written only by [default_jobs], i.e. on the caller's own domain before
   any worker is spawned.  (* dipp-race: domain-local *) *)
let warned_invalid_jobs = ref false

let warn_invalid_jobs s =
  if not !warned_invalid_jobs then begin
    warned_invalid_jobs := true;
    Printf.eprintf "DIPP_JOBS=%s is not a positive integer; running sequentially (jobs=1)\n%!" s
  end

let default_jobs () =
  match Sys.getenv_opt "DIPP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> clamp_jobs j
      | Some _ | None ->
          (* an explicitly-set but invalid DIPP_JOBS must not silently fan
             out to all cores: degrade to sequential and say so once *)
          warn_invalid_jobs s;
          1)
  | None -> clamp_jobs (Domain.recommended_domain_count ())

let run ?jobs n f =
  if n < 0 then invalid_arg "Pool.run";
  let jobs =
    match jobs with Some j -> clamp_jobs j | None -> default_jobs ()
  in
  let jobs = min jobs (max 1 n) in
  if jobs <= 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    (* Each worker claims the next free index; writes go to distinct cells
       so the only cross-domain contention is the claim counter. *)
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set first_error None (Some e)));
          match Atomic.get first_error with None -> loop () | Some _ -> ()
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get first_error with
    | Some e -> raise e
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end
