type outcome = { accepted : bool; stats : Dip.stats }

type t = {
  id : string;
  experiment : string;
  family : string;
  adversary : string;
  n : int;
  trials : int;
  trial : Rng.t -> int -> outcome option;
}

let with_trials trials t = { t with trials }
