open Dipp_protocols
module Gen = Dipp_gen.Gen

(* Every trial draws its generator seed and protocol seed from the trial's
   private stream, so outcomes depend only on (experiment seed, id, index). *)
let seed_bound = 0x3FFF_FFFF
let draw_seed rng = Rng.int rng seed_bound

(* ---- E2: LR-sorting adversaries (Lemma 4.1) -------------------------- *)

let lr_n = 300
let lr_trials = 600

let lr_spec name prover c =
  {
    Spec.id = Printf.sprintf "e2/%s/c%d" name c;
    experiment = "E2";
    family = Printf.sprintf "lr-no n=%d" lr_n;
    adversary = name;
    n = lr_n;
    trials = lr_trials;
    trial =
      (fun rng _i ->
        let path, arcs = Gen.lr_no ~n:lr_n (draw_seed rng) in
        let r = Lr_sorting.run ~seed:(draw_seed rng) ~c ~prover { Lr_sorting.n = lr_n; path; arcs } in
        Some { Spec.accepted = r.Lr_sorting.verdict.Dip.accepted; stats = r.Lr_sorting.stats });
  }

let e2 =
  List.concat_map
    (fun (name, prover) -> List.map (fun c -> lr_spec name prover c) [ 2; 3 ])
    [
      ("forge-pairs", Lr_sorting.Forge_pairs);
      ("shift-positions", Lr_sorting.Shift_positions);
      ("fake-inner", Lr_sorting.Fake_inner);
      ("honest-labels", Lr_sorting.Honest);
    ]

(* ---- E3: path-outerplanarity adversaries (Theorem 1.2) --------------- *)

let po_n = 150
let po_trials = 400

let po_spec name prover =
  {
    Spec.id = "e3/" ^ name;
    experiment = "E3";
    family = Printf.sprintf "path-crossing n=%d" po_n;
    adversary = name;
    n = po_n;
    trials = po_trials;
    trial =
      (fun rng _i ->
        let g, w = Gen.path_crossing ~n:po_n (draw_seed rng) in
        let r =
          Path_outerplanarity.run ~seed:(draw_seed rng) ~prover
            { Path_outerplanarity.graph = g; witness = Some w }
        in
        Some
          {
            Spec.accepted = r.Path_outerplanarity.verdict.Dip.accepted;
            stats = r.Path_outerplanarity.stats;
          });
  }

let e3 =
  List.map
    (fun (name, prover) -> po_spec name prover)
    [
      ("crossing-sweep", Path_outerplanarity.Crossing_sweep);
      ("flip-orientation", Path_outerplanarity.Flip_orientation);
      ("fake-path", Path_outerplanarity.Fake_path);
    ]

(* ---- E4: outerplanarity component-cheat (Theorem 1.3) ---------------- *)

let e4 =
  [
    {
      Spec.id = "e4/component-cheat";
      experiment = "E4";
      family = "outerplanar-no blocks=4";
      adversary = "component-cheat";
      n = 4;
      trials = 300;
      trial =
        (fun rng _i ->
          let g = Gen.outerplanar_no ~blocks:4 (draw_seed rng) in
          let r =
            Outerplanarity.run ~seed:(draw_seed rng) ~prover:Outerplanarity.Component_cheat
              { Outerplanarity.graph = g }
          in
          Some { Spec.accepted = r.Outerplanarity.verdict.Dip.accepted; stats = r.Outerplanarity.stats });
    };
  ]

(* ---- E5: corrupted rotation systems (Theorem 1.4) -------------------- *)

let pe_n = 80

let e5 =
  [
    {
      Spec.id = "e5/corrupted-rotation";
      experiment = "E5";
      family = Printf.sprintf "planar n=%d, genus>0 rotation" pe_n;
      adversary = "crossing-sweep";
      n = pe_n;
      trials = 300;
      trial =
        (fun rng _i ->
          let g = Gen.planar ~n:pe_n (draw_seed rng) in
          match Gen.corrupted_embedding g (draw_seed rng) with
          | None -> None
          | Some rot ->
              let r =
                Planar_embedding.run ~seed:(draw_seed rng) ~prover:Planar_embedding.Crossing_sweep
                  { Planar_embedding.graph = g; rot }
              in
              Some
                {
                  Spec.accepted = r.Planar_embedding.verdict.Dip.accepted;
                  stats = r.Planar_embedding.stats;
                });
    };
  ]

(* ---- E6: planarity vs spliced K5 (Theorem 1.5) ----------------------- *)

let pl_n = 60

let e6 =
  [
    {
      Spec.id = "e6/best-rotation";
      experiment = "E6";
      family = Printf.sprintf "nonplanar (spliced K5) n=%d" pl_n;
      adversary = "best-rotation";
      n = pl_n;
      trials = 250;
      trial =
        (fun rng _i ->
          let g = Gen.nonplanar ~n:pl_n (draw_seed rng) in
          let r =
            Planarity.run ~seed:(draw_seed rng) ~prover:Planarity.Best_rotation
              { Planarity.graph = g }
          in
          Some { Spec.accepted = r.Planarity.verdict.Dip.accepted; stats = r.Planarity.stats });
    };
  ]

(* ---- E7: series-parallel ear-cheat (Theorem 1.6) --------------------- *)

let sp_size = 40

let e7 =
  [
    {
      Spec.id = "e7/ear-cheat";
      experiment = "E7";
      family = Printf.sprintf "sp-no size=%d" sp_size;
      adversary = "ear-cheat";
      n = sp_size;
      trials = 300;
      trial =
        (fun rng _i ->
          match Gen.series_parallel_no ~size:sp_size (draw_seed rng) with
          | None -> None
          | Some (g, ears) ->
              let r =
                Series_parallel_dip.run ~seed:(draw_seed rng) ~prover:Series_parallel_dip.Ear_cheat
                  { Series_parallel_dip.graph = g; ears = Some ears }
              in
              Some
                {
                  Spec.accepted = r.Series_parallel_dip.verdict.Dip.accepted;
                  stats = r.Series_parallel_dip.stats;
                });
    };
  ]

(* ---- E8: treewidth <= 2 component-cheat (Theorem 1.7) ---------------- *)

let e8 =
  [
    {
      Spec.id = "e8/component-cheat";
      experiment = "E8";
      family = "treewidth2-no blocks=4";
      adversary = "component-cheat";
      n = 4;
      trials = 200;
      trial =
        (fun rng _i ->
          match Gen.treewidth2_no ~blocks:4 (draw_seed rng) with
          | None -> None
          | Some g ->
              let r =
                Treewidth2_dip.run ~seed:(draw_seed rng) ~prover:Treewidth2_dip.Component_cheat
                  { Treewidth2_dip.graph = g }
              in
              Some
                { Spec.accepted = r.Treewidth2_dip.verdict.Dip.accepted; stats = r.Treewidth2_dip.stats });
    };
  ]

(* ---- pooled completeness rows (one per family) ------------------------ *)

(* Honest runs on a fixed pool of yes-instances: trial i replays pool entry
   [i mod pool] with a pool-indexed protocol seed, so the (instance, seed)
   pair repeats across trials and the content-addressed label cache
   (lib/trace) can serve the repeats.  Pool constants are independent of
   the experiment seed; the cached outcome equals the recomputed one, so
   trials_report.json is byte-identical with the cache on or off.
   Perfect completeness makes the expected rejection count exactly 0. *)

module Label_cache = Dipp_trace.Label_cache

let pool = 4
let completeness_trials = 32

let completeness_spec ~id ~experiment ~family ~n ~(runs : (unit -> Spec.outcome) array) =
  {
    Spec.id;
    experiment;
    family;
    adversary = "honest-pooled";
    n;
    trials = completeness_trials;
    trial = (fun _rng i -> Some (runs.(i mod Array.length runs) ()));
  }

let cached ~protocol ~instance ~seed run =
  let verdict, stats =
    Label_cache.find_or_run ~key:(Label_cache.key ~protocol ~instance ~seed) run
  in
  { Spec.accepted = verdict.Dip.accepted; stats }

let e2c =
  let runs =
    (* eager: Lazy.force is not domain-safe under Pool workers *)
    Array.init pool (fun k ->
           let path, arcs = Gen.lr_yes ~n:lr_n (100 + k) in
           let inst = { Lr_sorting.n = lr_n; path; arcs } in
           let instance = Label_cache.lr_key inst in
           fun () ->
             cached ~protocol:"lr_sorting" ~instance ~seed:(500 + k) (fun () ->
                 let r = Lr_sorting.run ~seed:(500 + k) ~c:3 ~prover:Lr_sorting.Honest inst in
                 (r.Lr_sorting.verdict, r.Lr_sorting.stats)))
  in
  completeness_spec ~id:"e2/honest/pooled" ~experiment:"E2"
    ~family:(Printf.sprintf "lr-yes n=%d pool=%d" lr_n pool)
    ~n:lr_n
    ~runs

let e3c =
  let runs =
    (* eager: Lazy.force is not domain-safe under Pool workers *)
    Array.init pool (fun k ->
           let g, w = Gen.path_outerplanar ~n:po_n (200 + k) in
           let instance =
             Label_cache.graph_key g ^ "|w:" ^ String.concat "," (List.map string_of_int w)
           in
           fun () ->
             cached ~protocol:"path_outerplanarity" ~instance ~seed:(600 + k) (fun () ->
                 let r =
                   Path_outerplanarity.run ~seed:(600 + k) ~prover:Path_outerplanarity.Honest
                     { Path_outerplanarity.graph = g; witness = Some w }
                 in
                 (r.Path_outerplanarity.verdict, r.Path_outerplanarity.stats)))
  in
  completeness_spec ~id:"e3/honest/pooled" ~experiment:"E3"
    ~family:(Printf.sprintf "path-outerplanar n=%d pool=%d" po_n pool)
    ~n:po_n
    ~runs

let e4c =
  let runs =
    (* eager: Lazy.force is not domain-safe under Pool workers *)
    Array.init pool (fun k ->
           let g = Gen.outerplanar ~blocks:4 (300 + k) in
           let instance = Label_cache.graph_key g in
           fun () ->
             cached ~protocol:"outerplanarity" ~instance ~seed:(700 + k) (fun () ->
                 let r =
                   Outerplanarity.run ~seed:(700 + k) ~prover:Outerplanarity.Honest
                     { Outerplanarity.graph = g }
                 in
                 (r.Outerplanarity.verdict, r.Outerplanarity.stats)))
  in
  completeness_spec ~id:"e4/honest/pooled" ~experiment:"E4" ~family:"outerplanar blocks=4 pool=4"
    ~n:4
    ~runs

let e5c =
  let runs =
    (* eager: Lazy.force is not domain-safe under Pool workers *)
    Array.init pool (fun k ->
           let g = Gen.planar ~n:pe_n (400 + k) in
           let rot =
             match Gen.embedding g with
             | Some r -> r
             | None -> invalid_arg "Soundness: generated planar instance has no embedding"
           in
           let rot_key =
             String.concat ";"
               (Array.to_list
                  (Array.map
                     (fun row -> String.concat "," (List.map string_of_int (Array.to_list row)))
                     rot.Rotation.rot))
           in
           let instance = Label_cache.graph_key g ^ "|rot:" ^ rot_key in
           fun () ->
             cached ~protocol:"planar_embedding" ~instance ~seed:(800 + k) (fun () ->
                 let r =
                   Planar_embedding.run ~seed:(800 + k) ~prover:Planar_embedding.Honest
                     { Planar_embedding.graph = g; rot }
                 in
                 (r.Planar_embedding.verdict, r.Planar_embedding.stats)))
  in
  completeness_spec ~id:"e5/honest/pooled" ~experiment:"E5"
    ~family:(Printf.sprintf "planar n=%d pool=%d" pe_n pool)
    ~n:pe_n
    ~runs

let e6c =
  let runs =
    (* eager: Lazy.force is not domain-safe under Pool workers *)
    Array.init pool (fun k ->
           let g = Gen.planar ~n:pl_n (500 + k) in
           let instance = Label_cache.graph_key g in
           fun () ->
             cached ~protocol:"planarity" ~instance ~seed:(900 + k) (fun () ->
                 let r =
                   Planarity.run ~seed:(900 + k) ~prover:Planarity.Honest { Planarity.graph = g }
                 in
                 (r.Planarity.verdict, r.Planarity.stats)))
  in
  completeness_spec ~id:"e6/honest/pooled" ~experiment:"E6"
    ~family:(Printf.sprintf "planar n=%d pool=%d" pl_n pool)
    ~n:pl_n
    ~runs

let e7c =
  let runs =
    (* eager: Lazy.force is not domain-safe under Pool workers *)
    Array.init pool (fun k ->
           let tr, g = Gen.series_parallel ~size:sp_size (600 + k) in
           let ears = Series_parallel.ears_of_sp tr in
           let ears_key =
             String.concat ";"
               (List.map (fun e -> String.concat "," (List.map string_of_int e)) ears)
           in
           let instance = Label_cache.graph_key g ^ "|ears:" ^ ears_key in
           fun () ->
             cached ~protocol:"series_parallel_dip" ~instance ~seed:(1000 + k) (fun () ->
                 let r =
                   Series_parallel_dip.run ~seed:(1000 + k) ~prover:Series_parallel_dip.Honest
                     { Series_parallel_dip.graph = g; ears = Some ears }
                 in
                 (r.Series_parallel_dip.verdict, r.Series_parallel_dip.stats)))
  in
  completeness_spec ~id:"e7/honest/pooled" ~experiment:"E7"
    ~family:(Printf.sprintf "sp size=%d pool=%d" sp_size pool)
    ~n:sp_size
    ~runs

let e8c =
  let runs =
    (* eager: Lazy.force is not domain-safe under Pool workers *)
    Array.init pool (fun k ->
           let g = Gen.treewidth2 ~blocks:4 (700 + k) in
           let instance = Label_cache.graph_key g in
           fun () ->
             cached ~protocol:"treewidth2_dip" ~instance ~seed:(1100 + k) (fun () ->
                 let r =
                   Treewidth2_dip.run ~seed:(1100 + k) ~prover:Treewidth2_dip.Honest
                     { Treewidth2_dip.graph = g }
                 in
                 (r.Treewidth2_dip.verdict, r.Treewidth2_dip.stats)))
  in
  completeness_spec ~id:"e8/honest/pooled" ~experiment:"E8" ~family:"treewidth2 blocks=4 pool=4"
    ~n:4
    ~runs

let specs = e2 @ [ e2c ] @ e3 @ [ e3c ] @ e4 @ [ e4c ] @ e5 @ [ e5c ] @ e6 @ [ e6c ] @ e7 @ [ e7c ] @ e8 @ [ e8c ]
let by_experiment tag = List.filter (fun s -> String.equal s.Spec.experiment tag) specs
let find id = List.find_opt (fun s -> String.equal s.Spec.id id) specs
