open Dipp_protocols
module Gen = Dipp_gen.Gen

(* Every trial draws its generator seed and protocol seed from the trial's
   private stream, so outcomes depend only on (experiment seed, id, index). *)
let seed_bound = 0x3FFF_FFFF
let draw_seed rng = Rng.int rng seed_bound

(* ---- E2: LR-sorting adversaries (Lemma 4.1) -------------------------- *)

let lr_n = 300
let lr_trials = 600

let lr_spec name prover c =
  {
    Spec.id = Printf.sprintf "e2/%s/c%d" name c;
    experiment = "E2";
    family = Printf.sprintf "lr-no n=%d" lr_n;
    adversary = name;
    n = lr_n;
    trials = lr_trials;
    trial =
      (fun rng _i ->
        let path, arcs = Gen.lr_no ~n:lr_n (draw_seed rng) in
        let r = Lr_sorting.run ~seed:(draw_seed rng) ~c ~prover { Lr_sorting.n = lr_n; path; arcs } in
        Some { Spec.accepted = r.Lr_sorting.verdict.Dip.accepted; stats = r.Lr_sorting.stats });
  }

let e2 =
  List.concat_map
    (fun (name, prover) -> List.map (fun c -> lr_spec name prover c) [ 2; 3 ])
    [
      ("forge-pairs", Lr_sorting.Forge_pairs);
      ("shift-positions", Lr_sorting.Shift_positions);
      ("fake-inner", Lr_sorting.Fake_inner);
      ("honest-labels", Lr_sorting.Honest);
    ]

(* ---- E3: path-outerplanarity adversaries (Theorem 1.2) --------------- *)

let po_n = 150
let po_trials = 400

let po_spec name prover =
  {
    Spec.id = "e3/" ^ name;
    experiment = "E3";
    family = Printf.sprintf "path-crossing n=%d" po_n;
    adversary = name;
    n = po_n;
    trials = po_trials;
    trial =
      (fun rng _i ->
        let g, w = Gen.path_crossing ~n:po_n (draw_seed rng) in
        let r =
          Path_outerplanarity.run ~seed:(draw_seed rng) ~prover
            { Path_outerplanarity.graph = g; witness = Some w }
        in
        Some
          {
            Spec.accepted = r.Path_outerplanarity.verdict.Dip.accepted;
            stats = r.Path_outerplanarity.stats;
          });
  }

let e3 =
  List.map
    (fun (name, prover) -> po_spec name prover)
    [
      ("crossing-sweep", Path_outerplanarity.Crossing_sweep);
      ("flip-orientation", Path_outerplanarity.Flip_orientation);
      ("fake-path", Path_outerplanarity.Fake_path);
    ]

(* ---- E4: outerplanarity component-cheat (Theorem 1.3) ---------------- *)

let e4 =
  [
    {
      Spec.id = "e4/component-cheat";
      experiment = "E4";
      family = "outerplanar-no blocks=4";
      adversary = "component-cheat";
      n = 4;
      trials = 300;
      trial =
        (fun rng _i ->
          let g = Gen.outerplanar_no ~blocks:4 (draw_seed rng) in
          let r =
            Outerplanarity.run ~seed:(draw_seed rng) ~prover:Outerplanarity.Component_cheat
              { Outerplanarity.graph = g }
          in
          Some { Spec.accepted = r.Outerplanarity.verdict.Dip.accepted; stats = r.Outerplanarity.stats });
    };
  ]

(* ---- E5: corrupted rotation systems (Theorem 1.4) -------------------- *)

let pe_n = 80

let e5 =
  [
    {
      Spec.id = "e5/corrupted-rotation";
      experiment = "E5";
      family = Printf.sprintf "planar n=%d, genus>0 rotation" pe_n;
      adversary = "crossing-sweep";
      n = pe_n;
      trials = 300;
      trial =
        (fun rng _i ->
          let g = Gen.planar ~n:pe_n (draw_seed rng) in
          match Gen.corrupted_embedding g (draw_seed rng) with
          | None -> None
          | Some rot ->
              let r =
                Planar_embedding.run ~seed:(draw_seed rng) ~prover:Planar_embedding.Crossing_sweep
                  { Planar_embedding.graph = g; rot }
              in
              Some
                {
                  Spec.accepted = r.Planar_embedding.verdict.Dip.accepted;
                  stats = r.Planar_embedding.stats;
                });
    };
  ]

(* ---- E6: planarity vs spliced K5 (Theorem 1.5) ----------------------- *)

let pl_n = 60

let e6 =
  [
    {
      Spec.id = "e6/best-rotation";
      experiment = "E6";
      family = Printf.sprintf "nonplanar (spliced K5) n=%d" pl_n;
      adversary = "best-rotation";
      n = pl_n;
      trials = 250;
      trial =
        (fun rng _i ->
          let g = Gen.nonplanar ~n:pl_n (draw_seed rng) in
          let r =
            Planarity.run ~seed:(draw_seed rng) ~prover:Planarity.Best_rotation
              { Planarity.graph = g }
          in
          Some { Spec.accepted = r.Planarity.verdict.Dip.accepted; stats = r.Planarity.stats });
    };
  ]

(* ---- E7: series-parallel ear-cheat (Theorem 1.6) --------------------- *)

let sp_size = 40

let e7 =
  [
    {
      Spec.id = "e7/ear-cheat";
      experiment = "E7";
      family = Printf.sprintf "sp-no size=%d" sp_size;
      adversary = "ear-cheat";
      n = sp_size;
      trials = 300;
      trial =
        (fun rng _i ->
          match Gen.series_parallel_no ~size:sp_size (draw_seed rng) with
          | None -> None
          | Some (g, ears) ->
              let r =
                Series_parallel_dip.run ~seed:(draw_seed rng) ~prover:Series_parallel_dip.Ear_cheat
                  { Series_parallel_dip.graph = g; ears = Some ears }
              in
              Some
                {
                  Spec.accepted = r.Series_parallel_dip.verdict.Dip.accepted;
                  stats = r.Series_parallel_dip.stats;
                });
    };
  ]

(* ---- E8: treewidth <= 2 component-cheat (Theorem 1.7) ---------------- *)

let e8 =
  [
    {
      Spec.id = "e8/component-cheat";
      experiment = "E8";
      family = "treewidth2-no blocks=4";
      adversary = "component-cheat";
      n = 4;
      trials = 200;
      trial =
        (fun rng _i ->
          match Gen.treewidth2_no ~blocks:4 (draw_seed rng) with
          | None -> None
          | Some g ->
              let r =
                Treewidth2_dip.run ~seed:(draw_seed rng) ~prover:Treewidth2_dip.Component_cheat
                  { Treewidth2_dip.graph = g }
              in
              Some
                { Spec.accepted = r.Treewidth2_dip.verdict.Dip.accepted; stats = r.Treewidth2_dip.stats });
    };
  ]

let specs = e2 @ e3 @ e4 @ e5 @ e6 @ e7 @ e8
let by_experiment tag = List.filter (fun s -> String.equal s.Spec.experiment tag) specs
let find id = List.find_opt (fun s -> String.equal s.Spec.id id) specs
