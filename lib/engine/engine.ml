module Spec = Spec

type result = {
  spec : Spec.t;
  completed : int;
  rejected : int;
  envelope : Dip.stats option;
  wall_clock_s : float;
  jobs : int;
}

let rejection_rate r =
  if r.completed = 0 then 0. else float_of_int r.rejected /. float_of_int r.completed

let wilson95 ~rejected ~total =
  if total = 0 then (0., 0.)
  else begin
    let z = 1.96 in
    let n = float_of_int total in
    let p = float_of_int rejected /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let center = (p +. (z2 /. (2. *. n))) /. denom in
    let half =
      z *. sqrt (((p *. (1. -. p)) /. n) +. (z2 /. (4. *. n *. n))) /. denom
    in
    (max 0. (center -. half), min 1. (center +. half))
  end

let run ?jobs ~seed (spec : Spec.t) =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let spec_rng = Rng.split_string (Rng.create seed) spec.Spec.id in
  let t0 = Unix.gettimeofday () in
  let outcomes =
    Pool.run ~jobs spec.Spec.trials (fun i -> spec.Spec.trial (Rng.split spec_rng i) i)
  in
  let wall_clock_s = Unix.gettimeofday () -. t0 in
  (* Fold in index order: the aggregate must not depend on which worker
     finished first. *)
  let completed = ref 0 and rejected = ref 0 and stats_rev = ref [] in
  Array.iter
    (fun o ->
      match o with
      | None -> ()
      | Some { Spec.accepted; stats } ->
          incr completed;
          if not accepted then incr rejected;
          stats_rev := stats :: !stats_rev)
    outcomes;
  let envelope =
    match !stats_rev with [] -> None | l -> Some (Dip.merge_trials (List.rev l))
  in
  { spec; completed = !completed; rejected = !rejected; envelope; wall_clock_s; jobs }

let run_all ?jobs ~seed specs = List.map (fun s -> run ?jobs ~seed s) specs

(* ---- the trials_report.json payload ---------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_string ?(timing = false) ~seed results =
  let b = Buffer.create 4096 in
  Buffer.add_string b (Printf.sprintf "{\"seed\": %d, \"experiments\": [" seed);
  List.iteri
    (fun i r ->
      let lo, hi = wilson95 ~rejected:r.rejected ~total:r.completed in
      let rounds, max_proof, max_node, prover_total, verifier_total =
        match r.envelope with
        | None -> (0, 0, 0, 0, 0)
        | Some s ->
            ( s.Dip.interaction_rounds,
              s.Dip.proof_size_bits,
              s.Dip.max_node_total_bits,
              s.Dip.total_prover_bits,
              s.Dip.total_verifier_bits )
      in
      Buffer.add_string b
        (Printf.sprintf
           "%s\n\
           \  {\"id\": \"%s\", \"experiment\": \"%s\", \"family\": \"%s\", \"adversary\": \
            \"%s\",\n\
           \   \"n\": %d, \"trials\": %d, \"completed\": %d, \"rejected\": %d,\n\
           \   \"rejection_rate\": %.6f, \"ci95_low\": %.6f, \"ci95_high\": %.6f,\n\
           \   \"rounds\": %d, \"max_proof_bits\": %d, \"max_node_total_bits\": %d,\n\
           \   \"total_prover_bits\": %d, \"total_verifier_bits\": %d%s}"
           (if i = 0 then "" else ",")
           (json_escape r.spec.Spec.id)
           (json_escape r.spec.Spec.experiment)
           (json_escape r.spec.Spec.family)
           (json_escape r.spec.Spec.adversary)
           r.spec.Spec.n r.spec.Spec.trials r.completed r.rejected (rejection_rate r) lo hi
           rounds max_proof max_node prover_total verifier_total
           (if timing then
              Printf.sprintf ",\n   \"jobs\": %d, \"wall_clock_s\": %.3f" r.jobs r.wall_clock_s
            else "")))
    results;
  let total_wall = List.fold_left (fun acc r -> acc +. r.wall_clock_s) 0. results in
  Buffer.add_string b
    (if timing then
       Printf.sprintf "\n],\n \"jobs\": %d, \"wall_clock_s\": %.3f}\n"
         (match results with r :: _ -> r.jobs | [] -> 1)
         total_wall
     else "\n]}\n");
  Buffer.contents b

let write_report ?path ?timing ~seed results =
  let path =
    match path with
    | Some p -> p
    | None -> (
        match Sys.getenv_opt "DIPP_TRIALS_OUT" with
        | Some p -> p
        | None -> "trials_report.json")
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (report_string ?timing ~seed results))
