(** Domain-based work-stealing pool for independent trials.

    [run n f] evaluates [f 0 .. f (n-1)] across OCaml 5 domains and returns
    the results in index order.  Work is distributed dynamically (each
    worker claims the next unclaimed index from a shared atomic counter),
    so stragglers never idle the pool; because every trial's inputs are
    derived from its index alone — never from worker identity or claim
    order — the result array is identical for every worker count.

    With [jobs = 1] (or [n <= 1]) no domain is spawned and the pool
    degrades to a plain sequential loop, so the engine runs unchanged on
    runtimes where spawning is undesirable. *)

val default_jobs : unit -> int
(** Worker count used when [run] is not given [~jobs]: the [DIPP_JOBS]
    environment variable if set to a positive integer (clamped to
    [\[1, 64\]]), otherwise [Domain.recommended_domain_count ()].  A
    [DIPP_JOBS] that is set but not a positive integer (zero, negative,
    non-numeric) clamps to sequential execution ([1]) and prints a one-line
    warning to stderr the first time it is seen — an explicit but broken
    setting must not silently fan out to every core. *)

val run : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [run ?jobs n f] is [[| f 0; ...; f (n-1) |]], computed by up to [jobs]
    domains (including the calling one).  If any [f i] raises, the first
    exception observed is re-raised in the caller after all workers have
    stopped claiming work.  Raises [Invalid_argument] if [n < 0]. *)
