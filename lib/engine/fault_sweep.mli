(** Fault-injection sweeps: protocol families executed on the {!Dipp_net}
    runtime across a grid of fault models, rates and degradation modes.

    Determinism contract (same as {!Engine}): every trial draws from a
    stream keyed by [(seed, point id, trial index)] via
    {!Dipp_util.Rng.split_string} and {!Dipp_util.Rng.split}, results are
    folded in trial-index order, and reports carry no timing — so
    [faults_report.json] is byte-identical for any [--jobs] value. *)

type runtime =
  | Single  (** the single-queue {!Dipp_net.Net} engine *)
  | Sharded
      (** the partitioned {!Dipp_net.Shard} engine ([DIPP_SHARDS] blocks,
          sequential window stepping — the sweep's trials already saturate
          the pool, and the results are invariant to both knobs) *)

type family = {
  fam_id : string;  (** stable identifier; part of every point's RNG key *)
  build : Rng.t -> Dipp_net.Net.protocol;
      (** draws an honest instance and wraps it as a network protocol *)
  runtime : runtime;
}

val pls_family : n:int -> family
(** Semantic adapter over the distance-labeling PLS baseline. *)

val st_family : n:int -> reps:int -> family
(** Semantic adapter over Lemma 2.5 spanning-tree verification. *)

val mseq_family : n:int -> family
(** Semantic adapter over Lemma 2.6 multiset equality: per-node multisets
    are drawn at random and redistributed so the unions match (a yes
    instance). *)

val lr_family : n:int -> family
(** Checksummed-transport wrapper over an honest E4 LR-sorting run. *)

val po_family : n:int -> family
(** Checksummed-transport wrapper over an honest E5 path-outerplanarity
    run. *)

val planarity_family : n:int -> family
(** Checksummed-transport wrapper over an honest E8 planarity run. *)

val sharded : family -> family
(** The same instance stream on the {!Sharded} runtime; the family id
    gains a ["/shard"] suffix (never the shard count — the report must not
    depend on [DIPP_SHARDS]). *)

val default_families : unit -> family list
(** The six {!Single} families plus sharded pls / st-verify legs. *)

type mode = Strict | Degrade

val mode_name : mode -> string

val quorum : float
(** Quorum fraction used by the [Degrade] mode (0.8). *)

val default_rates : float list

val model_ctors : (string * (float -> Dipp_net.Fault.model)) list

val default_trials : unit -> int
(** [DIPP_FAULTS_TRIALS] when set to a positive integer, else 24. *)

(** One cell of the sweep grid: counters are summed over the point's
    trials, [heard] is the mean heard-fraction. *)
type point = {
  fam : string;
  fault : string;
  rate : float;
  mode : string;
  trials : int;
  accepted : int;
  sent : int;
  delivered : int;
  dropped : int;
  corrupted : int;
  duplicated : int;
  late : int;
  retransmits : int;
  crashed : int;
  heard : float;
}

val acceptance_rate : point -> float

val run_point :
  ?jobs:int ->
  ?shards:int ->
  seed:int ->
  family ->
  Dipp_net.Fault.model ->
  float ->
  mode ->
  int ->
  point
(** [run_point ?jobs ?shards ~seed fam model rate mode trials].  [shards]
    (default {!Dipp_net.Shard.default_shards}[ ()]) only reaches
    {!Sharded} families and never changes the point's bytes. *)

type sweep = {
  families : family list;
  rates : float list;
  models : (string * (float -> Dipp_net.Fault.model)) list;
  modes : mode list;
  trials : int;
}

val default_sweep : unit -> sweep

val run_sweep : ?jobs:int -> ?shards:int -> seed:int -> sweep -> point list
(** Runs the full grid; the output order (families, then models, then
    rates, then modes) is fixed and independent of [jobs] and [shards]. *)

val report_string : seed:int -> point list -> string
(** Deterministic JSON, with Wilson 95% intervals on the acceptance rate. *)

val write_report : ?path:string -> seed:int -> point list -> string
(** Writes {!report_string} to [path] (default: [DIPP_FAULTS_OUT] or
    [faults_report.json]); returns the path written. *)

val print_table : point list -> unit
