(** Typed experiment registry for the trial engine.

    A spec is one row of a soundness/completeness table: a named graph
    family, a named (usually adversarial) prover strategy, an instance
    size, a trial count, and the per-trial closure itself.  The closure is
    handed a private RNG stream — derived by the engine from the experiment
    seed and the spec [id] and trial index only — and must draw every
    random choice (generator seed, protocol seed) from that stream, so a
    spec's outcome is a pure function of [(experiment seed, id, index)]
    regardless of scheduling. *)

type outcome = {
  accepted : bool;  (** the protocol run's verdict *)
  stats : Dip.stats;  (** that run's complexity record *)
}

type t = {
  id : string;  (** unique key, e.g. ["e2/forge-pairs/c2"]; names the RNG stream *)
  experiment : string;  (** table this row feeds, e.g. ["E2"] *)
  family : string;  (** instance family, e.g. ["lr-no n=300"] *)
  adversary : string;  (** prover strategy under test *)
  n : int;  (** instance size parameter *)
  trials : int;  (** default trial count *)
  trial : Rng.t -> int -> outcome option;
      (** [trial rng i] runs trial [i] on its private stream [rng]; [None]
          marks a degenerate draw (the generator could not produce an
          instance), which the engine excludes from the rate denominator. *)
}

val with_trials : int -> t -> t
(** The same spec at a different trial count (tests run reduced batches;
    outcomes for trial [i] are unchanged because streams are per-index). *)
