open Dipp_protocols
module Gen = Dipp_gen.Gen
module Net = Dipp_net.Net
module Shard = Dipp_net.Shard
module Fault = Dipp_net.Fault
module Net_protocols = Dipp_net.Net_protocols
module Label_cache = Dipp_trace.Label_cache

let seed_bound = 0x3FFF_FFFF
let draw_seed rng = Rng.int rng seed_bound

(* Which event engine executes a family's trials.  [Sharded] runs the
   partitioned engine with [DIPP_SHARDS] (or [run_point]'s [?shards])
   blocks but sequential window stepping (jobs = 1: the sweep already
   fans its trials across the pool, and Shard's results are invariant to
   both knobs anyway — which is exactly what the CI leg cross-checks). *)
type runtime = Single | Sharded

type family = { fam_id : string; build : Rng.t -> Net.protocol; runtime : runtime }

let tree_parent g =
  let p = Traversal.spanning_tree g 0 in
  Array.mapi (fun v pv -> if pv = v then -1 else pv) p

let draw_list rng k bound =
  let rec go i acc = if i = k then List.rev acc else go (i + 1) (Rng.int rng bound :: acc) in
  go 0 []

(* ---- the protocol families under test -------------------------------- *)

let pls_family ~n =
  {
    runtime = Single;
    fam_id = Printf.sprintf "pls-spanning-tree/n%d" n;
    build =
      (fun rng ->
        let g = Gen.planar ~n (draw_seed rng) in
        Net_protocols.pls_spanning_tree ~graph:g ~parent:(tree_parent g));
  }

let st_family ~n ~reps =
  {
    runtime = Single;
    fam_id = Printf.sprintf "st-verify/n%d" n;
    build =
      (fun rng ->
        let g = Gen.planar ~n (draw_seed rng) in
        Net_protocols.st_verify ~reps ~seed:(draw_seed rng) g ~parent:(tree_parent g));
  }

let mseq_family ~n =
  {
    runtime = Single;
    fam_id = Printf.sprintf "multiset-eq/n%d" n;
    build =
      (fun rng ->
        let g = Gen.planar ~n (draw_seed rng) in
        let parent = tree_parent g in
        let tree_edges = ref [] in
        Array.iteri (fun v p -> if p >= 0 then tree_edges := (v, p) :: !tree_edges) parent;
        let tree = Graph.create ~n !tree_edges in
        let universe = 64 in
        let s1 = Array.make n [] in
        for v = 0 to n - 1 do
          s1.(v) <- draw_list rng (Rng.int rng 4) universe
        done;
        (* s2: the same global multiset, redistributed over the nodes with
           the same per-node sizes — equal unions, honest accept *)
        let all = Array.of_list (List.concat (Array.to_list s1)) in
        Rng.shuffle rng all;
        let pos = ref 0 in
        let s2 =
          Array.map
            (fun l ->
              let k = List.length l in
              let chunk = Array.sub all !pos k in
              pos := !pos + k;
              Array.to_list chunk)
            s1
        in
        let k = max 2 (Array.length all) in
        Net_protocols.multiset_eq ~seed:(draw_seed rng)
          { Multiset_equality.tree; parent; s1; s2; k; universe });
  }

let lr_family ~n =
  {
    runtime = Single;
    fam_id = Printf.sprintf "lr-sorting/n%d" n;
    build =
      (fun rng ->
        let path, arcs = Gen.lr_yes ~n (draw_seed rng) in
        let inst = { Lr_sorting.n; path; arcs } in
        let seed = draw_seed rng in
        let verdict, stats =
          Label_cache.find_or_run
            ~key:
              (Label_cache.key ~protocol:"lr_sorting" ~instance:(Label_cache.lr_key inst) ~seed)
            (fun () ->
              let r = Lr_sorting.run ~seed ~prover:Lr_sorting.Honest inst in
              (r.Lr_sorting.verdict, r.Lr_sorting.stats))
        in
        Net_protocols.transport ~name:"lr-sorting"
          ~graph:(Lr_sorting.underlying_graph inst)
          ~stats ~verdict);
  }

let po_family ~n =
  {
    runtime = Single;
    fam_id = Printf.sprintf "path-outerplanarity/n%d" n;
    build =
      (fun rng ->
        let g, w = Gen.path_outerplanar ~n (draw_seed rng) in
        let seed = draw_seed rng in
        let instance =
          Label_cache.graph_key g ^ "|w:" ^ String.concat "," (List.map string_of_int w)
        in
        let verdict, stats =
          Label_cache.find_or_run
            ~key:(Label_cache.key ~protocol:"path_outerplanarity" ~instance ~seed)
            (fun () ->
              let r =
                Path_outerplanarity.run ~seed ~prover:Path_outerplanarity.Honest
                  { Path_outerplanarity.graph = g; witness = Some w }
              in
              (r.Path_outerplanarity.verdict, r.Path_outerplanarity.stats))
        in
        Net_protocols.transport ~name:"path-outerplanarity" ~graph:g ~stats ~verdict);
  }

let planarity_family ~n =
  {
    runtime = Single;
    fam_id = Printf.sprintf "planarity/n%d" n;
    build =
      (fun rng ->
        let g = Gen.planar ~n (draw_seed rng) in
        let seed = draw_seed rng in
        let verdict, stats =
          Label_cache.find_or_run
            ~key:(Label_cache.key ~protocol:"planarity" ~instance:(Label_cache.graph_key g) ~seed)
            (fun () ->
              let r = Planarity.run ~seed ~prover:Planarity.Honest { Planarity.graph = g } in
              (r.Planarity.verdict, r.Planarity.stats))
        in
        Net_protocols.transport ~name:"planarity" ~graph:g ~stats ~verdict);
  }

let sharded fam = { fam with fam_id = fam.fam_id ^ "/shard"; runtime = Sharded }

let default_families () =
  [
    pls_family ~n:200;
    st_family ~n:150 ~reps:3;
    mseq_family ~n:150;
    lr_family ~n:120;
    po_family ~n:120;
    planarity_family ~n:64;
    (* the same instance streams through the sharded engine: its own
       acceptance curves (within-tick order differs from Net's), pinned in
       the golden report and cross-checked for DIPP_SHARDS-invariance *)
    sharded (pls_family ~n:200);
    sharded (st_family ~n:150 ~reps:3);
  ]

(* ---- the sweep grid --------------------------------------------------- *)

type mode = Strict | Degrade

let mode_name = function Strict -> "strict" | Degrade -> "degrade"
let quorum = 0.8

let default_rates = [ 0.0; 0.05; 0.15; 0.3 ]

let model_ctors =
  [
    ("drop", fun rate -> Fault.drop ~rate);
    ("corrupt", fun rate -> Fault.corrupt ~rate);
    ("delay", fun rate -> Fault.delay ~rate ());
    ("duplicate", fun rate -> Fault.duplicate ~rate);
    ("crash", fun rate -> Fault.crash ~rate);
  ]

let default_trials () =
  match Sys.getenv_opt "DIPP_FAULTS_TRIALS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some v when v >= 1 -> v | Some _ | None -> 24)
  | None -> 24

type point = {
  fam : string;
  fault : string;
  rate : float;
  mode : string;
  trials : int;
  accepted : int;
  sent : int;
  delivered : int;
  dropped : int;
  corrupted : int;
  duplicated : int;
  late : int;
  retransmits : int;
  crashed : int;
  heard : float;
}

let acceptance_rate p = if p.trials = 0 then 0. else float_of_int p.accepted /. float_of_int p.trials

let run_point ?jobs ?shards ~seed fam model rate mode trials =
  let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
  let shards = match shards with Some s -> s | None -> Shard.default_shards () in
  let id = Printf.sprintf "%s|%s|%.4f|%s" fam.fam_id model.Fault.name rate (mode_name mode) in
  let root = Rng.split_string (Rng.create seed) id in
  (* Instances come from a family-keyed stream shared by every grid point,
     so trial i sees the same instance under every (fault, rate, mode) —
     which is what lets the label cache serve the repeated honest runs.
     Fault draws stay on the point-keyed stream. *)
  let inst_root = Rng.split_string (Rng.create seed) ("inst|" ^ fam.fam_id) in
  let nmode = match mode with Strict -> Net.Strict | Degrade -> Net.Degrade { quorum } in
  let runtime = fam.runtime in
  let runs =
    Pool.run ~jobs trials (fun i ->
        let proto = fam.build (Rng.split inst_root i) in
        let trng = Rng.split root i in
        match runtime with
        | Single -> Net.execute ~mode:nmode ~rng:trng ~model proto
        | Sharded ->
            (* jobs = 1: trials already saturate the pool, and the result
               is invariant to both shard and job counts regardless *)
            Shard.execute ~mode:nmode ~shards ~jobs:1 ~rng:trng ~model proto)
  in
  (* fold in index order: the point must not depend on completion order *)
  let p =
    ref
      {
        fam = fam.fam_id;
        fault = model.Fault.name;
        rate;
        mode = mode_name mode;
        trials;
        accepted = 0;
        sent = 0;
        delivered = 0;
        dropped = 0;
        corrupted = 0;
        duplicated = 0;
        late = 0;
        retransmits = 0;
        crashed = 0;
        heard = 0.;
      }
  in
  Array.iter
    (fun (r : Net.result) ->
      let s = r.Net.stats in
      p :=
        {
          !p with
          accepted = (!p).accepted + (if r.Net.accepted then 1 else 0);
          sent = (!p).sent + s.Net.sent;
          delivered = (!p).delivered + s.Net.delivered;
          dropped = (!p).dropped + s.Net.dropped;
          corrupted = (!p).corrupted + s.Net.corrupted;
          duplicated = (!p).duplicated + s.Net.duplicated;
          late = (!p).late + s.Net.late;
          retransmits = (!p).retransmits + s.Net.retransmits;
          crashed = (!p).crashed + List.length r.Net.crashed_nodes;
          heard = (!p).heard +. r.Net.heard;
        })
    runs;
  { !p with heard = (if trials = 0 then 0. else (!p).heard /. float_of_int trials) }

type sweep = {
  families : family list;
  rates : float list;
  models : (string * (float -> Fault.model)) list;
  modes : mode list;
  trials : int;
}

let default_sweep () =
  {
    families = default_families ();
    rates = default_rates;
    models = model_ctors;
    modes = [ Strict; Degrade ];
    trials = default_trials ();
  }

let run_sweep ?jobs ?shards ~seed sw =
  List.concat_map
    (fun fam ->
      List.concat_map
        (fun (_, ctor) ->
          List.concat_map
            (fun rate ->
              List.map
                (fun mode -> run_point ?jobs ?shards ~seed fam (ctor rate) rate mode sw.trials)
                sw.modes)
            sw.rates)
        sw.models)
    sw.families

(* ---- faults_report.json ----------------------------------------------- *)

let report_string ~seed points =
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf "{\"seed\": %d, \"quorum\": %.2f, \"sweep\": [" seed quorum);
  List.iteri
    (fun i p ->
      let lo, hi = Engine.wilson95 ~rejected:p.accepted ~total:p.trials in
      Buffer.add_string b
        (Printf.sprintf
           "%s\n\
           \  {\"family\": \"%s\", \"fault\": \"%s\", \"rate\": %.4f, \"mode\": \"%s\",\n\
           \   \"trials\": %d, \"accepted\": %d, \"acceptance_rate\": %.6f, \"ci95_low\": \
            %.6f, \"ci95_high\": %.6f,\n\
           \   \"sent\": %d, \"delivered\": %d, \"dropped\": %d, \"corrupted\": %d, \
            \"duplicated\": %d,\n\
           \   \"late\": %d, \"retransmits\": %d, \"crashed_nodes\": %d, \"mean_heard\": %.6f}"
           (if i = 0 then "" else ",")
           p.fam p.fault p.rate p.mode p.trials p.accepted (acceptance_rate p) lo hi p.sent
           p.delivered p.dropped p.corrupted p.duplicated p.late p.retransmits p.crashed p.heard))
    points;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_report ?path ~seed points =
  let path =
    match path with
    | Some p -> p
    | None -> (
        match Sys.getenv_opt "DIPP_FAULTS_OUT" with
        | Some p -> p
        | None -> "faults_report.json")
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (report_string ~seed points));
  path

let print_table points =
  Printf.printf "%-26s %-10s %6s %-8s %7s %9s %8s %7s %6s %7s\n" "family" "fault" "rate" "mode"
    "accept" "sent" "dropped" "corrupt" "late" "heard";
  List.iter
    (fun p ->
      Printf.printf "%-26s %-10s %6.2f %-8s %3d/%-3d %9d %8d %7d %6d %6.1f%%\n" p.fam p.fault
        p.rate p.mode p.accepted p.trials p.sent p.dropped p.corrupted p.late (100. *. p.heard))
    points
