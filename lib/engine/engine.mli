(** Deterministic multicore trial-execution engine.

    [run] executes a {!Spec.t}'s trials on the {!Pool}, each trial on a
    private splittable RNG stream derived as
    [Rng.split (Rng.split_string (Rng.create seed) spec.id) index].
    Because streams are keyed by trial index — never by worker — the
    aggregate (and the emitted report) is bit-identical for every worker
    count: [DIPP_JOBS=1] and [DIPP_JOBS=64] produce the same bytes.

    The determinism contract (ANALYSIS.md):
    - per-trial outcomes are a pure function of [(seed, spec id, index)];
    - aggregation folds in index order, independent of completion order;
    - {!report_string} contains no timing by default — wall-clock and
      worker count enter the JSON only with [~timing:true] (bench gates
      this on [DIPP_TRIALS_TIMING=1]), keeping the default report
      byte-comparable across machines and worker counts. *)

module Spec = Spec

type result = {
  spec : Spec.t;
  completed : int;  (** trials that produced an instance (non-[None]) *)
  rejected : int;  (** completed trials whose verdict was rejection *)
  envelope : Dip.stats option;
      (** per-trial stats folded with {!Dip.merge_trials} (max envelope +
          cumulative bit totals); [None] iff no trial completed *)
  wall_clock_s : float;  (** not part of the deterministic report *)
  jobs : int;  (** worker count actually used *)
}

val rejection_rate : result -> float
(** [rejected / completed] ([0.] when nothing completed). *)

val wilson95 : rejected:int -> total:int -> float * float
(** 95% Wilson score interval for the rejection rate. *)

val run : ?jobs:int -> seed:int -> Spec.t -> result
(** Executes [spec.trials] trials.  [jobs] defaults to
    {!Pool.default_jobs}[ ()]. *)

val run_all : ?jobs:int -> seed:int -> Spec.t list -> result list
(** [run] over each spec, in order. *)

val report_string : ?timing:bool -> seed:int -> result list -> string
(** The [trials_report.json] payload.  Deterministic unless
    [timing = true] (default [false]), which adds per-experiment and
    top-level wall-clock and worker-count fields. *)

val write_report : ?path:string -> ?timing:bool -> seed:int -> result list -> unit
(** Writes {!report_string} to [path] (default ["trials_report.json"],
    overridable with the [DIPP_TRIALS_OUT] environment variable). *)
