(** The named soundness experiments of EXPERIMENTS.md (E2–E8) as engine
    specs.

    One spec per (protocol, adversary, parameter) row: E2's LR-sorting
    adversaries at both soundness constants, E3's path-outerplanarity
    adversaries, E4's outerplanarity component-cheat, E5's corrupted
    rotation systems, E6's best-rotation prover on spliced K5s, E7's
    series-parallel ear-cheat and E8's treewidth-2 component-cheat.  Trial
    counts are the bench defaults (~10x the pre-engine sequential loops);
    tests rerun reduced batches via {!Spec.with_trials}, which leaves
    per-index outcomes unchanged. *)

val specs : Spec.t list
(** All rows, in table order (E2 first). *)

val by_experiment : string -> Spec.t list
(** [by_experiment "E2"] filters {!specs} by the experiment tag. *)

val find : string -> Spec.t option
(** Lookup by exact spec [id], e.g. ["e2/forge-pairs/c2"]. *)
