type instance = { graph : Graph.t; ears : int list list option }

type prover = Honest | Ear_cheat | Fake_ears

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  host_results : Path_outerplanarity.result list;
  transcript : (Dip.phase * Bits.t array) list;
}

let derive_ears g =
  Option.map Series_parallel.ears_of_sp (Series_parallel.decompose g)

(* Sub-ear of each ear: the full first ear; interiors of the others. *)
let sub_ear idx ear = if idx = 0 then ear else List.filteri (fun i _ -> i > 0 && i < List.length ear - 1) ear

let run ?(seed = 0) ?(c = 3) ?param_n ?(retain = false) ?(codec = Bits_flat.Checked) ~prover inst =
  let g = inst.graph in
  let n = Graph.n g in
  if n < 2 || not (Traversal.is_connected g) then invalid_arg "Series_parallel_dip.run: need a connected graph";
  let meter = Dip.meter ~retain () in
  let rng = Rng.create (seed + 211) in
  let sizing_n = max n (Option.value ~default:n param_n) in
  let pa = Lr_sorting.Params.make ~c sizing_n in
  let nb = Fp.bit_width pa.Lr_sorting.Params.p in

  (* -------- the committed decomposition ------------------------------ *)
  let ears =
    match inst.ears with
    | Some e -> e
    | None -> (
        match derive_ears g with
        | Some e -> e
        | None ->
            (* no decomposition exists: commit the longest DFS path as a lone
               "ear" (edge-valid; every uncovered node/edge rejects) *)
            let order = Traversal.dfs_order g 0 in
            let rec prefix = function
              | a :: (b :: _ as rest) when Graph.mem_edge g a b -> a :: prefix rest
              | a :: _ -> [ a ]
              | [] -> []
            in
            [ prefix order ])
  in
  let ears_arr = Array.of_list (List.map Array.of_list ears) in
  let k = Array.length ears_arr in
  let sub_ears = Array.of_list (List.mapi (fun i e -> Array.of_list (sub_ear i e)) ears) in
  let sub_ears =
    if prover = Fake_ears && Array.length sub_ears.(0) >= 4 then begin
      (* break the first sub-ear in half (claims two paths are one ear) *)
      let s = Array.copy sub_ears in
      let a = s.(0) in
      let half = Array.length a / 2 in
      s.(0) <- Array.sub a 0 half;
      (* the dropped nodes stay unassigned *)
      s
    end
    else sub_ears
  in
  (* node -> sub-ear index (-1 if unassigned, a malformed commitment) *)
  let owner = Array.make n (-1) in
  Array.iteri (fun i sub -> Array.iter (fun v -> if owner.(v) = -1 then owner.(v) <- i) sub) sub_ears;
  (* F: per sub-ear, parent = predecessor on the sub-ear path *)
  let parent = Array.make n (-1) in
  Array.iter
    (fun sub -> Array.iteri (fun i v -> if i > 0 then parent.(v) <- sub.(i - 1)) sub)
    sub_ears;
  (* hosts: deepest earlier ear containing both endpoints, normalized to a
     non-empty sub-ear *)
  let node_on_ear = Array.make n [] in
  Array.iteri (fun i ear -> Array.iter (fun v -> node_on_ear.(v) <- i :: node_on_ear.(v)) ear) ears_arr;
  let rec normalize_host j = if j = 0 || Array.length sub_ears.(j) > 0 then j else normalize_host (host_of j)
  and host_of i =
    if i = 0 then -1
    else begin
      let ear = ears_arr.(i) in
      let a = ear.(0) and b = ear.(Array.length ear - 1) in
      let common = List.filter (fun j -> j < i && List.mem j node_on_ear.(b)) node_on_ear.(a) in
      match List.sort (fun x y -> Int.compare y x) common with
      | h :: _ -> normalize_host h
      | [] -> 0
    end
  in
  let host = Array.init k host_of in
  (* connecting edges: (sub-ear endpoint, ear endpoint) for ears with
     non-empty interiors; single-edge/interior-less ears are chords *)
  let connecting = Hashtbl.create 16 in
  Array.iteri
    (fun i ear ->
      if i > 0 && Array.length sub_ears.(i) > 0 then begin
        let sub = sub_ears.(i) in
        let len = Array.length ear in
        Hashtbl.replace connecting (Graph.normalize_edge ear.(0) sub.(0)) (sub.(0), ear.(0));
        Hashtbl.replace connecting
          (Graph.normalize_edge ear.(len - 1) sub.(Array.length sub - 1))
          (sub.(Array.length sub - 1), ear.(len - 1))
      end)
    ears_arr;

  (* -------- Round 1 (prover): forest encoding + marks ----------------- *)
  let enc = Forest_encoding.encode g ~parent in
  let cbits = Forest_encoding.color_bits enc in
  let el = Edge_labels.create g in
  let r1_edge e = Bits.of_bool (Hashtbl.mem connecting e) in
  let r1_edge_flat e =
    let fb = Bits_flat.Enc.create 1 in
    Bits_flat.Enc.bool fb (Hashtbl.mem connecting e);
    Bits_flat.Enc.to_bits fb
  in
  let r1_edges =
    Edge_labels.assign el ~width:1 (fun e ->
        match codec with Bits_flat.Checked -> r1_edge e | Bits_flat.Flat -> r1_edge_flat e)
  in
  let el_setup = Edge_labels.setup_labels el in
  (* Flat-path node encoder, preallocated once from the registry envelope so
     a serve-path request never climbs the grow ladder. *)
  let flat_cap =
    match Bounds.find "series_parallel_dip" with
    | Some row -> Bounds.envelope row ~n:sizing_n ~delta:(max 2 (Graph.max_degree g))
    | None -> 64
  in
  let fenc = Bits_flat.Enc.create ~capacity:flat_cap 64 in
  let r1_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc (Forest_encoding.to_bits ~cbits enc.(v));
    Bits_flat.Enc.bits fenc el_setup.(v);
    Bits_flat.Enc.bits fenc r1_edges.(v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 20*loglog + 20 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked ->
             Bits.concat [ Forest_encoding.to_bits ~cbits enc.(v); el_setup.(v); r1_edges.(v) ]
         | Bits_flat.Flat -> r1_node_flat v));

  (* -------- Round 2 (verifier): sub-ear tags + per-sub-ear ST coins ---- *)
  let leader = Array.make n false in
  Array.iter (fun sub -> if Array.length sub > 0 then leader.(sub.(0)) <- true) sub_ears;
  let tag_sample =
    Array.init n (fun v -> if leader.(v) then Some (Bits.random (Rng.split rng (700 + v)) nb) else None)
  in
  let reps = max 2 (nb / 2) in
  (* one ST execution per sub-ear, on the induced subgraph *)
  let st_runs =
    Array.to_list sub_ears
    |> List.filteri (fun _ _ -> true)
    |> List.map (fun sub ->
           if Array.length sub = 0 then None
           else begin
             let nodes = Array.to_list sub in
             let subg, back = Graph.induced g nodes in
             let inv = Array.make n (-1) in
             Array.iteri (fun i orig -> inv.(orig) <- i) back;
             let sparent =
               Array.init (Array.length back) (fun i ->
                   let orig = back.(i) in
                   if parent.(orig) >= 0 && inv.(parent.(orig)) >= 0 then inv.(parent.(orig)) else -1)
             in
             let coins = Spanning_tree_verify.draw_coins ~reps ~tag_bits:4 ~parent:sparent (Rng.split rng (back.(0) + 1)) in
             Some (subg, back, inv, sparent, coins)
           end)
  in
  let coin_bits = Array.make n Bits.empty in
  List.iter
    (function
      | Some (_, back, _, _, coins) ->
          let bits = Spanning_tree_verify.coins_to_bits ~tag_bits:4 coins in
          Array.iteri (fun i orig -> coin_bits.(orig) <- bits.(i)) back
      | None -> ())
    st_runs;
  Dip.record_verifier meter
    (Array.init n (fun v ->
         Bits.concat [ coin_bits.(v); (match tag_sample.(v) with Some s -> s | None -> Bits.empty) ]));

  (* -------- Round 3 (prover): tag broadcasts + ST responses ------------ *)
  let ear_tag =
    Array.map
      (fun sub -> if Array.length sub = 0 then Bits.empty else Option.value ~default:Bits.empty tag_sample.(sub.(0)))
      sub_ears
  in
  let ear_of v = if owner.(v) >= 0 then ear_tag.(owner.(v)) else Bits.empty in
  let pred_of v =
    if owner.(v) >= 0 && owner.(v) > 0 then ear_tag.(host.(owner.(v))) else Bits.empty
  in
  let st_resps =
    List.map
      (Option.map (fun (subg, back, inv, sparent, coins) ->
           let resp = Spanning_tree_verify.honest_response ~reps ~parent:sparent coins in
           (subg, back, inv, sparent, coins, resp)))
      st_runs
  in
  let resp_bits = Array.make n Bits.empty in
  List.iter
    (function
      | Some (_, back, _, _, _, resp) ->
          let bits = Spanning_tree_verify.response_to_bits ~tag_bits:4 resp in
          Array.iteri (fun i orig -> resp_bits.(orig) <- bits.(i)) back
      | None -> ())
    st_resps;
  (* chord-host tags on edge labels: each interior-less ear (= one edge) and
     each attached-ear virtual chord carries its host's tag; here the real
     chord edges are the interior-less ears *)
  let chord_host = Hashtbl.create 16 in
  Array.iteri
    (fun i ear ->
      if i > 0 && Array.length sub_ears.(i) = 0 then
        Hashtbl.replace chord_host (Graph.normalize_edge ear.(0) ear.(Array.length ear - 1)) ear_tag.(host.(i)))
    ears_arr;
  let zero_tag = Bits.of_string (String.make nb '0') in
  let r3_edge e = match Hashtbl.find_opt chord_host e with Some t -> t | None -> zero_tag in
  let r3_edge_flat e =
    let fb = Bits_flat.Enc.create nb in
    Bits_flat.Enc.bits fb (match Hashtbl.find_opt chord_host e with Some t -> t | None -> zero_tag);
    Bits_flat.Enc.to_bits fb
  in
  let r3_edges =
    Edge_labels.assign el ~width:nb (fun e ->
        match codec with Bits_flat.Checked -> r3_edge e | Bits_flat.Flat -> r3_edge_flat e)
  in
  let r3_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc resp_bits.(v);
    Bits_flat.Enc.bits fenc (ear_of v);
    Bits_flat.Enc.bits fenc (pred_of v);
    Bits_flat.Enc.bits fenc r3_edges.(v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 20*loglog + 20 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked -> Bits.concat [ resp_bits.(v); ear_of v; pred_of v; r3_edges.(v) ]
         | Bits_flat.Flat -> r3_node_flat v));

  (* -------- per-host derived path-outerplanarity runs ------------------ *)
  let chords_of_host = Array.make k [] in
  Array.iteri
    (fun i ear ->
      if i > 0 then begin
        let h = host.(i) in
        let a = ear.(0) and b = ear.(Array.length ear - 1) in
        chords_of_host.(h) <- (a, b) :: chords_of_host.(h)
      end)
    ears_arr;
  let host_prover : Path_outerplanarity.prover =
    match prover with
    | Honest | Fake_ears -> Path_outerplanarity.Honest
    | Ear_cheat -> Path_outerplanarity.Crossing_sweep
  in
  let host_results =
    List.filter_map
      (fun j ->
        let ear = ears_arr.(j) in
        let len = Array.length ear in
        if List.is_empty chords_of_host.(j) || len < 3 then None
        else begin
          let index_on = Hashtbl.create 8 in
          Array.iteri (fun i v -> Hashtbl.replace index_on v i) ear;
          let chords =
            List.filter_map
              (fun (a, b) ->
                match (Hashtbl.find_opt index_on a, Hashtbl.find_opt index_on b) with
                | Some ia, Some ib when abs (ia - ib) >= 2 -> Some (Graph.normalize_edge ia ib)
                | Some _, Some _ -> None (* spans one path edge: nests trivially *)
                | _ -> None (* endpoint not on the claimed host: tag checks handle it *))
              chords_of_host.(j)
          in
          let path_edges = List.init (len - 1) (fun i -> (i, i + 1)) in
          let derived = Graph.create ~n:len (path_edges @ chords) in
          Some
            (Path_outerplanarity.run ~seed:(seed + (17 * j)) ~c ~param_n:sizing_n ~codec
               ~prover:host_prover
               { Path_outerplanarity.graph = derived; witness = Some (List.init len Fun.id) })
        end)
      (List.init k Fun.id)
  in

  (* -------- verification ------------------------------------------------ *)
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  (* membership set of u: own ear tag + ear tags across incident connecting
     edges where u is the ear-endpoint side *)
  let membership u =
    let own = ear_of u in
    let extra =
      List.filter_map
        (fun w ->
          match Hashtbl.find_opt connecting (Graph.normalize_edge u w) with
          | Some (sub_end, ear_end) when ear_end = u && sub_end = w -> Some (ear_of w)
          | _ -> None)
        (Array.to_list (Graph.neighbors g u))
    in
    own :: extra
  in
  let verify v =
    let ok = ref true in
    let fail () = ok := false in
    (* every node belongs to a sub-ear and has consistent F-structure *)
    if owner.(v) = -1 then fail ();
    if List.length children.(v) > 1 then fail ();
    (* ST verification within the node's sub-ear *)
    (match if owner.(v) >= 0 then List.nth st_resps owner.(v) else None with
    | Some (subg, _, inv, sparent, coins, resp) ->
        let sv = inv.(v) in
        if sv >= 0 then begin
          let schildren = Array.make (Graph.n subg) [] in
          Array.iteri (fun x p -> if p >= 0 then schildren.(p) <- x :: schildren.(p)) sparent;
          if
            not
              (Spanning_tree_verify.verify_node ~reps ~parent:sparent ~children:schildren
                 ~graph:subg ~coins ~response:resp sv)
          then fail ()
        end
        else fail ()
    | None -> if owner.(v) >= 0 then fail ());
    (* leaders check their sampled tag was echoed *)
    (match tag_sample.(v) with
    | Some s -> if leader.(v) && not (Bits.equal (ear_of v) s) then fail ()
    | None -> ());
    (* sub-ear tag consistency along F *)
    if parent.(v) >= 0 then begin
      if not (Bits.equal (ear_of v) (ear_of parent.(v))) then fail ();
      if not (Bits.equal (pred_of v) (pred_of parent.(v))) then fail ()
    end;
    (* connecting edges: the ear endpoint checks the attached ear's claimed
       host is one it belongs to *)
    Array.iter
      (fun w ->
        match Hashtbl.find_opt connecting (Graph.normalize_edge v w) with
        | Some (sub_end, ear_end) when ear_end = v && sub_end = w ->
            let claimed = pred_of w in
            if not (List.exists (Bits.equal claimed) (membership v)) then fail ()
        | _ -> ())
      (Graph.neighbors g v);
    (* chord ears: both endpoints check the chord's host tag membership *)
    Array.iter
      (fun w ->
        let e = Graph.normalize_edge v w in
        match Hashtbl.find_opt chord_host e with
        | Some t -> if not (List.exists (Bits.equal t) (membership v)) then fail ()
        | None -> ())
      (Graph.neighbors g v);
    !ok
  in
  let structural = Dip.all_accept ~n verify in
  (* every graph edge must be accounted for: on a sub-ear path, a connecting
     edge, or a chord ear (otherwise some edge belongs to no ear) *)
  let edges_covered =
    Graph.fold_edges
      (fun (u, v) acc ->
        acc
        && (parent.(u) = v || parent.(v) = u
           || Hashtbl.mem connecting (u, v)
           || Hashtbl.mem chord_host (u, v)))
      g true
  in
  let hosts_ok = List.for_all (fun r -> r.Path_outerplanarity.verdict.Dip.accepted) host_results in
  let verdict =
    {
      Dip.accepted = structural.Dip.accepted && hosts_ok && edges_covered;
      rejecting = structural.Dip.rejecting;
    }
  in
  let stats =
    List.fold_left
      (fun acc r ->
        let s = r.Path_outerplanarity.stats in
        {
          acc with
          Dip.proof_size_bits = max acc.Dip.proof_size_bits s.Dip.proof_size_bits;
          max_node_total_bits = max acc.Dip.max_node_total_bits s.Dip.max_node_total_bits;
          total_prover_bits = acc.Dip.total_prover_bits + s.Dip.total_prover_bits;
          total_verifier_bits = acc.Dip.total_verifier_bits + s.Dip.total_verifier_bits;
          interaction_rounds = max acc.Dip.interaction_rounds s.Dip.interaction_rounds;
        })
      (Dip.stats meter) host_results
  in
  { verdict; stats; host_results; transcript = Dip.transcript meter }
