(** Path-outerplanarity DIP (paper §5, Theorem 1.2 / Lemma 5.1).

    A graph is path-outerplanar iff it has a Hamiltonian path P with all
    non-path edges properly nested above P.  The protocol composes three
    parallel stages into 5 interaction rounds:

    1. Committing to a path: the prover encodes P with the constant-size
       forest encoding (Lemma 2.3), rooted at the leftmost node; nodes check
       the path shape locally and the interactive spanning-tree verification
       (Lemma 2.5) certifies that P spans the graph.
    2. LR-sorting: the prover orients every edge (one bit, via the planar
       edge-label simulation of Lemma 2.4) and the {!Lr_sorting} protocol
       certifies that all claimed orientations agree with P's left-to-right
       order (Lemma 4.2).
    3. Nesting verification: longest-left/right marks (Observation 2.1),
       per-node random names s_v, and successor/above labels chain every
       edge to the edge drawn directly above it; local conditions (1)-(5)
       of §5 force proper nesting up to name collisions.

    Two presentational refinements over the paper's text, both noted in
    DESIGN.md: the verifier conditions (4)/(5) are gated on 1-bit
    "has-left/right-edges" node labels (each self-checked deterministically
    against the node's own incident edges), which makes the transition
    checks strictly local; and the vb bit-pattern typo of §4.1 is fixed. *)

type instance = {
  graph : Graph.t;
  witness : int list option;  (** a nesting Hamiltonian path, if known *)
}

type prover =
  | Honest
  | Crossing_sweep
      (** best-effort labels on non-nesting inputs: true marks, tolerant
          sweep for successor/above *)
  | Flip_orientation  (** mis-orients crossing edges so nesting looks fine *)
  | Fake_path  (** commits two disjoint path segments instead of one path *)

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  lr : Lr_sorting.result option;  (** None when the committed P decodes to garbage *)
  transcript : (Dip.phase * Bits.t array) list;
      (** the top-level meter's retained frames; non-empty iff [retain] —
          component sub-runs meter separately and are not retained *)
}

val run :
  ?seed:int ->
  ?c:int ->
  ?param_n:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:prover ->
  instance ->
  result
(** [param_n] sizes the random fields and name strings (defaults to the
    instance size); per-component callers pass the global node count so the
    soundness error is 1/polylog of the whole graph, as in the paper.
    [codec] selects the label serializer: the checked {!Bits.Writer}
    reference path (default) or the flat preallocated-buffer path — both
    produce byte-identical labels, here and in the LR-sorting sub-run. *)
