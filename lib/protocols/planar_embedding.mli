(** Embedded planarity DIP (paper §7, Theorem 1.4 / Lemma 7.1).

    Instance: a graph plus a distributed rotation system (each node holds a
    clockwise order of its incident edges).  Task: decide whether the
    rotation system is a combinatorial planar embedding.

    The protocol reduces to path-outerplanarity via the FFM+21 construction
    h(G, T, rho): a spanning tree T is committed (Lemma 2.3) and certified
    (Lemma 2.5); every node v is split into chi(v)+1 copies laid out along
    the Euler tour of T ordered by the rotations, and every non-tree edge
    becomes an edge between the copies selected by the
    first-tree-edge-counterclockwise rule.  Lemma 7.3: rho is a planar
    embedding iff the resulting Q edges nest properly above the Euler
    path — which {!Path_outerplanarity} certifies.

    Each original node holds the labels of O(1) copies (its own first/last
    copies plus one copy per parent direction), so the proof size is a
    constant factor over the path-outerplanarity proof. *)

type instance = { graph : Graph.t; rot : Rotation.t }

type reduction = {
  h : Graph.t;  (** copies relabelled by Euler-tour position *)
  copy_owner : int array;  (** h node -> original node *)
  copies_of : int list array;  (** original node -> its h nodes (tour order) *)
}

val reduce : instance -> root:int -> parent:int array -> reduction
(** The h(G, T, rho) construction; [parent] is the rooted spanning tree
    (parent.(root) = -1).  The Euler path is the identity order on h. *)

val is_yes_instance : instance -> bool
(** Ground truth via face tracing + Euler's formula. *)

type prover = Honest | Crossing_sweep | Flip_orientation

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  inner : Path_outerplanarity.result;
  transcript : (Dip.phase * Bits.t array) list;
      (** the top-level meter's retained frames; non-empty iff [retain] —
          component sub-runs meter separately and are not retained *)
}

val run :
  ?seed:int ->
  ?c:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:prover ->
  instance ->
  result
(** Requires a connected graph with at least one node.  [codec] selects
    the honest prover's label serializer (byte-identical output either
    way); it is threaded through the inner {!Path_outerplanarity} run. *)
