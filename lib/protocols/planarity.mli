(** Planarity DIP (paper §7, Theorem 1.5 / Lemma 7.2).

    Instance: a bare graph; task: decide planarity.  The honest prover
    computes a combinatorial planar embedding (here: the DMP algorithm of
    {!Dipp_graph.Planarity}) and communicates the clockwise orders by
    writing the pair (rho_u(e), rho_v(e)) on every edge — O(log Delta) bits
    per edge, homed in node labels through the Lemma 2.4 forest fields —
    then the {!Planar_embedding} protocol certifies the claimed embedding.
    Proof size: O(log log n + log Delta); soundness: a non-planar graph has
    no valid rotation system, so whatever the prover sends is rejected with
    probability 1 - 1/polylog n. *)

type instance = { graph : Graph.t }

type prover =
  | Honest
  | Best_rotation  (** sends some rotation system for a non-planar graph *)

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  inner : Planar_embedding.result;
  transcript : (Dip.phase * Bits.t array) list;
      (** the top-level meter's retained frames; non-empty iff [retain] —
          component sub-runs meter separately and are not retained *)
}

val run :
  ?seed:int ->
  ?c:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:prover ->
  instance ->
  result
(** [codec] selects the honest prover's label serializer (checked
    {!Bits.Writer} vs the flat {!Bits_flat.Enc} path, byte-identical
    output); it is threaded through the inner {!Planar_embedding} run. *)
