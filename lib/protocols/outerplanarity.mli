(** Outerplanarity DIPs (paper §6, Theorems 6.1 and 1.3).

    Theorem 6.1: a biconnected graph is outerplanar iff it is
    path-outerplanar w.r.t. a Hamiltonian path whose endpoints are joined by
    an edge; the protocol is {!Path_outerplanarity} plus that one check.

    Theorem 1.3 (general outerplanarity): the prover commits to the
    block–cut tree rooted at some component; every biconnected component C
    gets a Hamiltonian path P_C emerging from its separating cut node, the
    union of the P_C is certified to be a spanning tree (Lemma 2.5), cut
    node/leader random tags glue the decomposition together, and the
    biconnected protocol runs on all components in parallel.  A cut node
    belongs to several components; the paper defers its per-component labels
    to its component neighbors (constant blow-up) — we account for that
    deferral in the reported stats (DESIGN.md). *)

type instance = { graph : Graph.t }

type prover =
  | Honest
  | Component_cheat  (** best-effort labels on non-outerplanar components *)
  | Merge_components  (** pretends two components are one *)

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  component_results : Path_outerplanarity.result list;
  transcript : (Dip.phase * Bits.t array) list;
      (** the top-level meter's retained frames; non-empty iff [retain] —
          component sub-runs meter separately and are not retained *)
}

val run_biconnected :
  ?seed:int ->
  ?c:int ->
  ?param_n:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:Path_outerplanarity.prover ->
  Graph.t ->
  Path_outerplanarity.result
(** Theorem 6.1: requires a biconnected input; uses the cycle-cut witness
    and adds the endpoints-adjacent check (folded into the witness choice:
    the committed path always has adjacent endpoints, and the verifier
    checks the closing edge exists). *)

val run :
  ?seed:int ->
  ?c:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:prover ->
  instance ->
  result
(** Theorem 1.3 on connected graphs.  [codec] selects the honest prover's
    label serializer (byte-identical output either way); it is threaded
    into every per-component {!Path_outerplanarity} run. *)
