(** Treewidth <= 2 DIP (paper §8, Theorem 1.7, via Lemma 8.2).

    A graph has treewidth at most 2 iff every biconnected component is
    series-parallel.  The prover commits the block-cut decomposition (cut
    bits + per-component spanning trees via Lemmas 2.3/2.5, glued with the
    random cut-tag mechanism of the outerplanarity protocol) and the
    series-parallel protocol of Theorem 1.6 runs on every component in
    parallel. *)

type instance = { graph : Graph.t }

type prover =
  | Honest
  | Component_cheat  (** per-component Ear_cheat on non-SP components *)

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  component_results : Series_parallel_dip.result list;
  transcript : (Dip.phase * Bits.t array) list;
      (** the top-level meter's retained frames; non-empty iff [retain] —
          component sub-runs meter separately and are not retained *)
}

val run :
  ?seed:int ->
  ?c:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:prover ->
  instance ->
  result
(** [codec] selects the honest prover's label serializer (byte-identical
    output either way); it is threaded into every per-component
    {!Series_parallel_dip} run. *)
