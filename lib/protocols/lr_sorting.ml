type instance = {
  n : int;
  path : int array;
  arcs : (int * int) list;
}

let validate_instance inst =
  let n = inst.n in
  if Array.length inst.path <> n then invalid_arg "Lr_sorting: path length";
  let seen = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n || seen.(v) then invalid_arg "Lr_sorting: path not a permutation";
      seen.(v) <- true)
    inst.path;
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) inst.path;
  List.iter
    (fun (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n || u = v then invalid_arg "Lr_sorting: bad arc";
      if abs (pos.(u) - pos.(v)) = 1 then invalid_arg "Lr_sorting: arc duplicates a path edge")
    inst.arcs

let positions inst =
  let pos = Array.make inst.n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) inst.path;
  pos

let is_yes_instance inst =
  let pos = positions inst in
  List.for_all (fun (u, v) -> pos.(u) < pos.(v)) inst.arcs

let underlying_graph inst =
  let path_edges = List.init (inst.n - 1) (fun i -> (inst.path.(i), inst.path.(i + 1))) in
  Graph.create ~n:inst.n (path_edges @ List.map (fun (u, v) -> Graph.normalize_edge u v) inst.arcs)

module Params = struct
  type t = { n : int; block : int; nblocks : int; p : Fp.t; p2 : Fp.t }

  let ceil_log2 n =
    let rec go w = if 1 lsl w >= n then w else go (w + 1) in
    go 0

  let make ?(c = 3) ?block n =
    if n < 1 then invalid_arg "Lr_sorting.Params.make";
    (* block >= 2 keeps x2 = pos + 1 representable even when nblocks hits
       2^block (only possible for n = 2); the ?block override is for the
       block-size ablation (a larger block needs wider index fields, a
       smaller one cannot hold the position bits) *)
    let block =
      match block with
      | None -> max 2 (ceil_log2 n)
      | Some b ->
          if b < ceil_log2 n then invalid_arg "Lr_sorting.Params.make: block too small for position bits";
          max 2 b
    in
    let nblocks = max 1 (n / block) in
    let rec pow b e = if e = 0 then 1 else b * pow b (e - 1) in
    let p = Fp.create (Prime.next_prime (max 64 (pow block c))) in
    let p2 = Fp.create (Prime.next_prime (2 * block * block * p.Fp.p)) in
    { n; block; nblocks; p; p2 }
end

(* Positions are encoded MSB-first on [block] bits; blocks can be wider
   than the native int (block-size ablation), so shifts are guarded. *)
let shift_right_safe x k = if k >= 62 then 0 else x lsr k

(* ------------------------------------------------------------------ *)
(* Layout: which node sits where.                                      *)
(* ------------------------------------------------------------------ *)

module Layout = struct
  type t = {
    params : Params.t;
    pos : int array;  (* node -> path position *)
    blk : int array;  (* node -> block id *)
    idx : int array;  (* node -> 1-based index within its block *)
  }

  let make params inst =
    let pos = positions inst in
    let bsize = params.Params.block and nb = params.Params.nblocks in
    let blk = Array.map (fun p -> min (p / bsize) (nb - 1)) pos in
    let idx = Array.make inst.n 0 in
    Array.iteri (fun v p -> idx.(v) <- p - (blk.(v) * bsize) + 1) pos;
    { params; pos; blk; idx }

  (* bit j (1-based, MSB first) of a B-bit value *)
  let bit_at t x j = shift_right_safe x (t.params.Params.block - j) land 1 = 1
end

(* ------------------------------------------------------------------ *)
(* Labels.                                                             *)
(* ------------------------------------------------------------------ *)

type vb_flag = Left_of | At_vb | Right_of

type r1_node = { j : int; bit1 : bool; bit2 : bool; flag : vb_flag; m_head : int; m_tail : int }
type r1_arc = Inner | Outer of { i : int }
type r3_node = {
  r_e : int;
  rp_e : int;
  rb_e : int;
  pre1 : int;
  pre2 : int;
  f1 : int;
  f2 : int;
  prep : int;  (* phi^b_idx(r') prefix for the commitment scheme *)
}
type r3_arc = { jval : int }
type r5_node = { z_e : int; ph1 : int; ph2 : int; pt1 : int; pt2 : int }

type coins2 = { r : int option; rp : int option; rb : int option }
(* per node: leftmost path node carries r and rp; block leaders carry rb *)

type coins4 = { z : int option }

(* Serialization widths. *)
let bits_for x =
  let rec go w = if 1 lsl w > x then w else go (w + 1) in
  max 1 (go 1)

let flag_code = function Left_of -> 0 | At_vb -> 1 | Right_of -> 2

let r1_node_bits (pa : Params.t) l =
  (* block = Theta(log n): a block index fits in loglog n + O(1) bits *)
  (* dipp-refine: value <= loglog + 2 *)
  let wi = bits_for (2 * pa.Params.block) and wm = bits_for ((2 * pa.Params.block) + 1) in
  let w = Bits.Writer.create () in
  Bits.Writer.int w ~width:wi l.j;
  Bits.Writer.bool w l.bit1;
  Bits.Writer.bool w l.bit2;
  Bits.Writer.int w ~width:2 (flag_code l.flag);
  Bits.Writer.int w ~width:wm l.m_head;
  Bits.Writer.int w ~width:wm l.m_tail;
  Bits.Writer.contents w

let r1_arc_bits (pa : Params.t) l =
  (* dipp-refine: value <= loglog + 2 *)
  let wi = bits_for (pa.Params.block + 1) in
  let w = Bits.Writer.create () in
  (match l with
  | Inner ->
      Bits.Writer.bool w false;
      Bits.Writer.int w ~width:wi 0
  | Outer { i } ->
      Bits.Writer.bool w true;
      Bits.Writer.int w ~width:wi i);
  Bits.Writer.contents w

let r3_node_bits (pa : Params.t) l =
  (* p = poly(block) = polylog(n): a field element fits in O(loglog n) bits *)
  (* dipp-refine: value <= 3*loglog + 6 *)
  let wp = Fp.bit_width pa.Params.p in
  Bits.concat (List.map (Bits.of_int ~width:wp) [ l.r_e; l.rp_e; l.rb_e; l.pre1; l.pre2; l.f1; l.f2; l.prep ])

let r5_node_bits (pa : Params.t) l =
  (* dipp-refine: value <= 5*loglog + 12 *)
  let wq = Fp.bit_width pa.Params.p2 in
  Bits.concat (List.map (Bits.of_int ~width:wq) [ l.z_e; l.ph1; l.ph2; l.pt1; l.pt2 ])

(* Flat-codec variants of the serializers above: same fields, same widths,
   same bit order, but appended into one preallocated buffer instead of one
   Bits.t per field.  test_serve.ml checks byte-for-byte equality against
   the checked writers on the golden corpus and QCheck-random labels. *)

let r1_node_bits_flat (pa : Params.t) l =
  (* dipp-refine: value <= loglog + 2 *)
  let wi = bits_for (2 * pa.Params.block) and wm = bits_for ((2 * pa.Params.block) + 1) in
  let e = Bits_flat.Enc.create (wi + 4 + (2 * wm)) in
  Bits_flat.Enc.int e ~width:wi l.j;
  Bits_flat.Enc.bool e l.bit1;
  Bits_flat.Enc.bool e l.bit2;
  Bits_flat.Enc.int e ~width:2 (flag_code l.flag);
  Bits_flat.Enc.int e ~width:wm l.m_head;
  Bits_flat.Enc.int e ~width:wm l.m_tail;
  Bits_flat.Enc.to_bits e

let r1_arc_bits_flat (pa : Params.t) l =
  (* dipp-refine: value <= loglog + 2 *)
  let wi = bits_for (pa.Params.block + 1) in
  let e = Bits_flat.Enc.create (wi + 1) in
  (match l with
  | Inner ->
      Bits_flat.Enc.bool e false;
      Bits_flat.Enc.int e ~width:wi 0
  | Outer { i } ->
      Bits_flat.Enc.bool e true;
      Bits_flat.Enc.int e ~width:wi i);
  Bits_flat.Enc.to_bits e

let r3_node_bits_flat (pa : Params.t) l =
  (* dipp-refine: value <= 3*loglog + 6 *)
  let wp = Fp.bit_width pa.Params.p in
  let e = Bits_flat.Enc.create (8 * wp) in
  Bits_flat.Enc.int e ~width:wp l.r_e;
  Bits_flat.Enc.int e ~width:wp l.rp_e;
  Bits_flat.Enc.int e ~width:wp l.rb_e;
  Bits_flat.Enc.int e ~width:wp l.pre1;
  Bits_flat.Enc.int e ~width:wp l.pre2;
  Bits_flat.Enc.int e ~width:wp l.f1;
  Bits_flat.Enc.int e ~width:wp l.f2;
  Bits_flat.Enc.int e ~width:wp l.prep;
  Bits_flat.Enc.to_bits e

let r5_node_bits_flat (pa : Params.t) l =
  (* dipp-refine: value <= 5*loglog + 12 *)
  let wq = Fp.bit_width pa.Params.p2 in
  let e = Bits_flat.Enc.create (5 * wq) in
  Bits_flat.Enc.int e ~width:wq l.z_e;
  Bits_flat.Enc.int e ~width:wq l.ph1;
  Bits_flat.Enc.int e ~width:wq l.ph2;
  Bits_flat.Enc.int e ~width:wq l.pt1;
  Bits_flat.Enc.int e ~width:wq l.pt2;
  Bits_flat.Enc.to_bits e

(* Codec dispatch is per label and eta-expanded, so dipp-refine joins the
   two encoders' width intervals at each call instead of losing them to a
   closure join. *)
let enc_r1_node codec pa l =
  match codec with
  | Bits_flat.Checked -> r1_node_bits pa l
  | Bits_flat.Flat -> r1_node_bits_flat pa l

let enc_r1_arc codec pa l =
  match codec with
  | Bits_flat.Checked -> r1_arc_bits pa l
  | Bits_flat.Flat -> r1_arc_bits_flat pa l

let enc_r3_node codec pa l =
  match codec with
  | Bits_flat.Checked -> r3_node_bits pa l
  | Bits_flat.Flat -> r3_node_bits_flat pa l

let enc_r5_node codec pa l =
  match codec with
  | Bits_flat.Checked -> r5_node_bits pa l
  | Bits_flat.Flat -> r5_node_bits_flat pa l

(* ------------------------------------------------------------------ *)
(* Prover plans.                                                       *)
(* ------------------------------------------------------------------ *)

type prover = Honest | Forge_pairs | Shift_positions | Fake_inner

type arc_decision = D_inner | D_outer of { i : int; j_from_tail : bool }

type plan = {
  claimed_x1 : int array;  (* per block *)
  decide : (int * int) -> arc_decision;
}

(* Most significant-first distinguishing index of x < y (B-bit): the first
   bit position where they differ (then x has 0, y has 1). *)
let distinguishing (pa : Params.t) x y =
  let b = pa.Params.block in
  let rec go j =
    if j > b then None
    else
      let bx = shift_right_safe x (b - j) land 1 and by = shift_right_safe y (b - j) land 1 in
      if bx <> by then Some j else go (j + 1)
  in
  go 1

let honest_plan (pa : Params.t) (lay : Layout.t) _inst =
  let claimed_x1 = Array.init pa.Params.nblocks Fun.id in
  let decide (u, v) =
    if lay.Layout.blk.(u) = lay.Layout.blk.(v) then D_inner
    else
      match distinguishing pa claimed_x1.(lay.Layout.blk.(u)) claimed_x1.(lay.Layout.blk.(v)) with
      | Some i -> D_outer { i; j_from_tail = true }
      | None -> D_outer { i = 1; j_from_tail = true }
  in
  { claimed_x1; decide }

(* For a backward arc: the best forged commitment — an index where the tail
   block's bit is 0 and ideally the head block's bit is 1. *)
let forged_index (pa : Params.t) xu xv =
  let b = pa.Params.block in
  let bit x j = shift_right_safe x (b - j) land 1 in
  let rec scan pred j = if j > b then None else if pred j then Some j else scan pred (j + 1) in
  match scan (fun j -> bit xu j = 0 && bit xv j = 1) 1 with
  | Some i -> i
  | None -> ( match scan (fun j -> bit xu j = 0) 1 with Some i -> i | None -> 1)

let forge_plan (pa : Params.t) (lay : Layout.t) inst =
  let claimed_x1 = Array.init pa.Params.nblocks Fun.id in
  let pos = lay.Layout.pos in
  let decide (u, v) =
    let bu = lay.Layout.blk.(u) and bv = lay.Layout.blk.(v) in
    if pos.(u) < pos.(v) && bu = bv then D_inner
    else if pos.(u) < pos.(v) then
      match distinguishing pa claimed_x1.(bu) claimed_x1.(bv) with
      | Some i -> D_outer { i; j_from_tail = true }
      | None -> D_outer { i = 1; j_from_tail = true }
    else
      (* backward arc: forge *)
      D_outer { i = forged_index pa claimed_x1.(bu) claimed_x1.(bv); j_from_tail = true }
  in
  ignore inst;
  { claimed_x1; decide }

let shift_plan (pa : Params.t) (lay : Layout.t) inst =
  let pos = lay.Layout.pos in
  let claimed_x1 = Array.init pa.Params.nblocks Fun.id in
  (* Renumber the head block of the first backward cross-block arc so that
     the arc becomes consistent with the claims. *)
  (match List.find_opt (fun (u, v) -> pos.(u) > pos.(v) && lay.Layout.blk.(u) <> lay.Layout.blk.(v)) inst.arcs with
  | Some (u, v) -> claimed_x1.(lay.Layout.blk.(v)) <- claimed_x1.(lay.Layout.blk.(u)) + 1
  | None -> ());
  let decide (u, v) =
    let bu = lay.Layout.blk.(u) and bv = lay.Layout.blk.(v) in
    if bu = bv then
      if lay.Layout.idx.(u) < lay.Layout.idx.(v) then D_inner
      else D_outer { i = forged_index pa claimed_x1.(bu) claimed_x1.(bv); j_from_tail = true }
    else if claimed_x1.(bu) < claimed_x1.(bv) then
      match distinguishing pa claimed_x1.(bu) claimed_x1.(bv) with
      | Some i -> D_outer { i; j_from_tail = true }
      | None -> D_outer { i = 1; j_from_tail = true }
    else D_outer { i = forged_index pa claimed_x1.(bu) claimed_x1.(bv); j_from_tail = true }
  in
  { claimed_x1; decide }

let fake_inner_plan (pa : Params.t) (lay : Layout.t) _inst =
  let pos = lay.Layout.pos in
  let claimed_x1 = Array.init pa.Params.nblocks Fun.id in
  let decide (u, v) =
    let bu = lay.Layout.blk.(u) and bv = lay.Layout.blk.(v) in
    if pos.(u) < pos.(v) && bu = bv then D_inner
    else if pos.(u) < pos.(v) then
      match distinguishing pa claimed_x1.(bu) claimed_x1.(bv) with
      | Some i -> D_outer { i; j_from_tail = true }
      | None -> D_outer { i = 1; j_from_tail = true }
    else
      (* backward arc: claim it is inner-block and hope for a tag collision
         (or, inside one block, an index miracle) *)
      D_inner
  in
  { claimed_x1; decide }

let plan_for prover pa lay inst =
  match prover with
  | Honest -> honest_plan pa lay inst
  | Forge_pairs -> forge_plan pa lay inst
  | Shift_positions -> shift_plan pa lay inst
  | Fake_inner -> fake_inner_plan pa lay inst

(* ------------------------------------------------------------------ *)
(* The execution.                                                      *)
(* ------------------------------------------------------------------ *)

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  params : Params.t;
  transcript : (Dip.phase * Bits.t array) list;
}

let compare_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

module Arc_map = Map.Make (struct
  type t = int * int

  let compare = compare_pair
end)

let prefix_upto (pa : Params.t) f x r i =
  (* phi of the multiset {k <= i : bit k of x is 1} evaluated at r over f *)
  let b = pa.Params.block in
  let acc = ref 1 in
  for k = 1 to min i b do
    if shift_right_safe x (b - k) land 1 = 1 then acc := Fp.mul f !acc (Fp.sub f k r)
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* The per-node decision function.                                     *)
(*                                                                     *)
(* Everything a node reads is its own and its path-neighbors' labels   *)
(* and coins — all present in the five recorded frames — so this is    *)
(* shared verbatim between the live run and transcript replay.         *)
(* ------------------------------------------------------------------ *)

let node_checks (pa : Params.t) inst ~(r1 : r1_node array) ~(r3 : r3_node array)
    ~(r5 : r5_node array) ~(coins2 : coins2 array) ~(coins4 : coins4 array) ~arc_r1 ~arc_r3 =
  let n = inst.n in
  let pos = positions inst in
  let bsize = pa.Params.block in
  let p = pa.Params.p and p2 = pa.Params.p2 in
  let enc (i, j) = ((i - 1) * p.Fp.p) + j in
  let dedupe pairs = List.sort_uniq compare_pair pairs in
  let arcs_into = Array.make n [] and arcs_from = Array.make n [] in
  List.iter
    (fun (u, v) ->
      arcs_into.(v) <- (u, v) :: arcs_into.(v);
      arcs_from.(u) <- (u, v) :: arcs_from.(u))
    inst.arcs;
  let left_nbr v = if pos.(v) = 0 then None else Some inst.path.(pos.(v) - 1) in
  let right_nbr v = if pos.(v) = n - 1 then None else Some inst.path.(pos.(v) + 1) in
  let same_block_left v =
    match left_nbr v with Some u when r1.(v).j = r1.(u).j + 1 -> Some u | _ -> None
  in
  let verify v =
    let own1 = r1.(v) and own3 = r3.(v) and own5 = r5.(v) in
    let ok = ref true in
    let fail () = ok := false in
    (* S: index structure *)
    (match left_nbr v with
    | None -> if own1.j <> 1 then fail ()
    | Some u ->
        let ju = r1.(u).j in
        if not (own1.j = ju + 1 || (own1.j = 1 && ju >= bsize)) then fail ());
    if own1.j < 1 || own1.j > (2 * bsize) - 1 then fail ();
    (* C: consecutive-number flags and bits (bit-carrying nodes only) *)
    if own1.j <= bsize then begin
      (match own1.flag with
      | Right_of -> if not (own1.bit1 && not own1.bit2) then fail ()
      | At_vb -> if own1.bit1 || not own1.bit2 then fail ()
      | Left_of -> if own1.bit1 <> own1.bit2 then fail ());
      (* neighbour flag pattern, within the bit-carrying prefix of the block *)
      let right_in_bits =
        match right_nbr v with
        | Some u when r1.(u).j = own1.j + 1 && r1.(u).j <= bsize -> Some u
        | _ -> None
      in
      let left_in_block = same_block_left v in
      (match own1.flag with
      | Right_of -> (
          match right_in_bits with Some u -> if r1.(u).flag <> Right_of then fail () | None -> ())
      | At_vb ->
          (match right_in_bits with Some u -> if r1.(u).flag <> Right_of then fail () | None -> ());
          (match left_in_block with Some u -> if r1.(u).flag <> Left_of then fail () | None -> ())
      | Left_of -> (
          match left_in_block with Some u -> if r1.(u).flag <> Left_of then fail () | None -> ()));
      if own1.j = 1 && own1.flag = Right_of then fail ()
    end;
    (* E1: global broadcasts *)
    (match left_nbr v with
    | None ->
        (match coins2.(v).r with Some r0 -> if own3.r_e <> r0 then fail () | None -> fail ());
        (match coins2.(v).rp with Some rp0 -> if own3.rp_e <> rp0 then fail () | None -> fail ())
    | Some u ->
        if own3.r_e <> r3.(u).r_e then fail ();
        if own3.rp_e <> r3.(u).rp_e then fail ());
    (* E2: block tag broadcast *)
    (if own1.j = 1 then
       match coins2.(v).rb with Some s -> if own3.rb_e <> s then fail () | None -> fail ()
     else
       match same_block_left v with
       | Some u -> if own3.rb_e <> r3.(u).rb_e then fail ()
       | None -> fail ());
    (* E3/E6: prefix chains *)
    let factor field x_bit elem rr = if x_bit && elem <= bsize then Fp.sub field elem rr else 1 in
    let base3 =
      match same_block_left v with
      | Some u -> (r3.(u).pre1, r3.(u).pre2, r3.(u).prep)
      | None -> (1, 1, 1)
    in
    let b1, b2, bp = base3 in
    if own3.pre1 <> Fp.mul p b1 (factor p own1.bit1 own1.j own3.r_e) then fail ();
    if own3.pre2 <> Fp.mul p b2 (factor p own1.bit2 own1.j own3.r_e) then fail ();
    if own3.prep <> Fp.mul p bp (factor p own1.bit1 own1.j own3.rp_e) then fail ();
    (* E4: total claims chain + endpoint pinning *)
    (match same_block_left v with
    | Some u -> if own3.f1 <> r3.(u).f1 || own3.f2 <> r3.(u).f2 then fail ()
    | None -> ());
    let rightmost_of_block =
      match right_nbr v with None -> true | Some u -> r1.(u).j = 1
    in
    if rightmost_of_block then begin
      if own3.f1 <> own3.pre1 then fail ();
      if own3.f2 <> own3.pre2 then fail ()
    end;
    (* E5: adjacent blocks hold consecutive positions *)
    (match right_nbr v with
    | Some u when r1.(u).j = 1 -> if own3.f2 <> r3.(u).f1 then fail ()
    | _ -> ());
    (* E7/E8: arc checks *)
    let my_in = arcs_into.(v) and my_out = arcs_from.(v) in
    let pair_of a = match Arc_map.find a arc_r1 with Inner -> None | Outer { i } -> Some (i, (Arc_map.find a arc_r3).jval) in
    (* inner arcs *)
    List.iter
      (fun (u, w) ->
        if Arc_map.find (u, w) arc_r1 = Inner then begin
          if r1.(u).j >= r1.(w).j then fail ();
          if r3.(u).rb_e <> r3.(w).rb_e then fail ()
        end)
      (my_in @ my_out);
    (* outer arcs: bounds and per-node pair consistency *)
    let in_pairs = List.filter_map pair_of my_in and out_pairs = List.filter_map pair_of my_out in
    List.iter (fun (i, _) -> if i < 1 || i > bsize then fail ()) (in_pairs @ out_pairs);
    let indexes ps = List.sort_uniq Int.compare (List.map fst ps) in
    let conflict ps =
      List.exists (fun i -> List.length (List.sort_uniq compare_pair (List.filter (fun (i', _) -> i' = i) ps)) > 1) (indexes ps)
    in
    if conflict in_pairs || conflict out_pairs then fail ();
    if List.exists (fun i -> List.mem i (indexes out_pairs)) (indexes in_pairs) then fail ();
    (* M1: z echo *)
    (if own1.j = 1 then
       match coins4.(v).z with Some z -> if own5.z_e <> z then fail () | None -> fail ()
     else
       match same_block_left v with
       | Some u -> if own5.z_e <> r5.(u).z_e then fail ()
       | None -> fail ());
    (* M2: the four verification-scheme prefix chains *)
    let base5 =
      match same_block_left v with
      | Some u -> (r5.(u).ph1, r5.(u).ph2, r5.(u).pt1, r5.(u).pt2)
      | None -> (1, 1, 1, 1)
    in
    let h1, h2, t1, t2 = base5 in
    let mult acc elems = List.fold_left (fun a e -> Fp.mul p2 a (Fp.sub p2 e own5.z_e)) acc elems in
    let phi_left_check =
      (* read from the left neighbour's label (or 1 at the leader) *)
      match same_block_left v with Some u -> r3.(u).prep | None -> 1
    in
    let s2h = if own1.j <= bsize && own1.bit1 then List.init own1.m_head (fun _ -> enc (own1.j, phi_left_check)) else [] in
    let s2t = if own1.j <= bsize && not own1.bit1 then List.init own1.m_tail (fun _ -> enc (own1.j, phi_left_check)) else [] in
    if own5.ph1 <> mult h1 (List.map enc (dedupe (List.filter_map pair_of my_in))) then fail ();
    if own5.ph2 <> mult h2 s2h then fail ();
    if own5.pt1 <> mult t1 (List.map enc (dedupe (List.filter_map pair_of my_out))) then fail ();
    if own5.pt2 <> mult t2 s2t then fail ();
    (* M3: block totals agree *)
    if rightmost_of_block then begin
      if own5.ph1 <> own5.ph2 then fail ();
      if own5.pt1 <> own5.pt2 then fail ()
    end;
    !ok
  in
  verify

let run ?(seed = 0) ?(c = 3) ?block ?(retain = false) ?(codec = Bits_flat.Checked) ~prover inst =
  validate_instance inst;
  let n = inst.n in
  let pa = Params.make ~c ?block n in
  let lay = Layout.make pa inst in
  let meter = Dip.meter ~retain () in
  let pos = lay.Layout.pos and blk = lay.Layout.blk and idx = lay.Layout.idx in
  let bsize = pa.Params.block in
  let p = pa.Params.p and p2 = pa.Params.p2 in
  let plan = plan_for prover pa lay inst in
  let x1 = plan.claimed_x1 in
  let x2 = Array.map (fun x -> x + 1) x1 in
  let bit1_of v = idx.(v) <= bsize && Layout.bit_at lay x1.(blk.(v)) idx.(v) in
  let bit2_of v = idx.(v) <= bsize && Layout.bit_at lay x2.(blk.(v)) idx.(v) in

  (* ---- Round 1 (prover): structure + commitments + multiplicities ---- *)
  let arc_r1 =
    List.fold_left
      (fun m (u, v) ->
        let d = plan.decide (u, v) in
        Arc_map.add (u, v)
          (match d with D_inner -> Inner | D_outer { i; _ } -> Outer { i })
          m)
      Arc_map.empty inst.arcs
  in
  let decision (u, v) = plan.decide (u, v) in
  (* Multiplicities: for each block b and index i, the number of distinct
     nodes of b holding a *claim-consistent* committed pair with index i, on
     the head side (incoming arcs) and tail side (outgoing arcs). *)
  let m_head = Array.make n 0 and m_tail = Array.make n 0 in
  let node_at_index = Array.make_matrix pa.Params.nblocks (bsize + 1) (-1) in
  Array.iteri (fun v i -> if i <= bsize then node_at_index.(blk.(v)).(i) <- v) idx;
  let bump arr b i = if i >= 1 && i <= bsize && node_at_index.(b).(i) >= 0 then begin
      let v = node_at_index.(b).(i) in
      arr.(v) <- arr.(v) + 1
    end
  in
  let claim_prefix_eq bu bv i =
    let b = bsize in
    let mask j x = if j = 0 then 0 else shift_right_safe x (b - j) in
    mask (i - 1) x1.(bu) = mask (i - 1) x1.(bv)
  in
  let seen_tail = Hashtbl.create 64 and seen_head = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      match decision (u, v) with
      | D_inner -> ()
      | D_outer { i; j_from_tail } ->
          let bu = blk.(u) and bv = blk.(v) in
          let tail_bit_ok = Layout.bit_at lay x1.(bu) i = false && i <= bsize in
          let head_bit_ok = i <= bsize && Layout.bit_at lay x1.(bv) i in
          let pref_eq = claim_prefix_eq bu bv i in
          (* the committed j equals phi of the source block's prefix; it
             matches block b's own prefix iff it *is* b's prefix (same
             source) or the claimed prefixes coincide *)
          let tail_val_ok = j_from_tail || pref_eq in
          let head_val_ok = (not j_from_tail) || pref_eq in
          if tail_bit_ok && tail_val_ok && not (Hashtbl.mem seen_tail (u, i)) then begin
            Hashtbl.add seen_tail (u, i) ();
            bump m_tail bu i
          end;
          if head_bit_ok && head_val_ok && not (Hashtbl.mem seen_head (v, i)) then begin
            Hashtbl.add seen_head (v, i) ();
            bump m_head bv i
          end)
    inst.arcs;
  let vb_index b =
    (* least significant 0 bit of x1.(b), as a 1-based MSB-first index;
       None if x1 is all ones on B bits *)
    let x = x1.(b) in
    let rec go j = if j < 1 then None else if not (Layout.bit_at lay x j) then Some j else go (j - 1) in
    go bsize
  in
  let r1 : r1_node array =
    Array.init n (fun v ->
        let b = blk.(v) in
        let flag =
          match vb_index b with
          | None -> Left_of
          | Some jb -> if idx.(v) < jb then Left_of else if idx.(v) = jb then At_vb else Right_of
        in
        {
          j = idx.(v);
          bit1 = bit1_of v;
          bit2 = bit2_of v;
          flag;
          m_head = m_head.(v);
          m_tail = m_tail.(v);
        })
  in
  Dip.record_prover meter
    (Array.append
       (Array.map (fun l -> enc_r1_node codec pa l) r1)
       (Array.of_list (List.map (fun a -> enc_r1_arc codec pa (Arc_map.find a arc_r1)) inst.arcs)));

  (* ---- Round 2 (verifier): r, r', r_b ---- *)
  let rng = Rng.create seed in
  let is_leader v = r1.(v).j = 1 in
  let coins2 : coins2 array =
    Array.init n (fun v ->
        let leftmost = pos.(v) = 0 in
        {
          r = (if leftmost then Some (Fp.sample p (Rng.split rng (2 * v))) else None);
          rp = (if leftmost then Some (Fp.sample p (Rng.split rng ((2 * v) + 1))) else None);
          rb = (if is_leader v then Some (Fp.sample p (Rng.split rng (n + v))) else None);
        })
  in
  (* dipp-refine: value <= 3*loglog + 6 *)
  let wp = Fp.bit_width p in
  Dip.record_verifier meter
    (Array.map
       (fun (cn : coins2) ->
         Bits.concat
           (List.filter_map
              (fun o -> Option.map (Bits.of_int ~width:wp) o)
              [ cn.r; cn.rp; cn.rb ]))
       coins2);

  (* ---- Round 3 (prover): broadcasts, prefix evaluations, commitments ---- *)
  let leftmost_node = inst.path.(0) in
  let r, rp =
    (* the leftmost path node always draws r and r' in round 2 *)
    match (coins2.(leftmost_node).r, coins2.(leftmost_node).rp) with
    | Some r, Some rp -> (r, rp)
    | None, _ | _, None -> assert false
  in
  let block_leader = Array.make pa.Params.nblocks (-1) in
  Array.iteri (fun v i -> if i = 1 then block_leader.(blk.(v)) <- v) idx;
  let rb_of_block =
    Array.map (fun l -> match coins2.(l).rb with Some rb -> rb | None -> assert false) block_leader
  in
  let r3 : r3_node array =
    Array.init n (fun v ->
        let b = blk.(v) in
        {
          r_e = r;
          rp_e = rp;
          rb_e = rb_of_block.(b);
          pre1 = prefix_upto pa p x1.(b) r idx.(v);
          pre2 = prefix_upto pa p x2.(b) r idx.(v);
          f1 = prefix_upto pa p x1.(b) r bsize;
          f2 = prefix_upto pa p x2.(b) r bsize;
          prep = prefix_upto pa p x1.(b) rp idx.(v);
        })
  in
  let arc_r3 =
    List.fold_left
      (fun m (u, v) ->
        match decision (u, v) with
        | D_inner -> Arc_map.add (u, v) { jval = 0 } m
        | D_outer { i; j_from_tail } ->
            let src = if j_from_tail then blk.(u) else blk.(v) in
            Arc_map.add (u, v) { jval = prefix_upto pa p x1.(src) rp (i - 1) } m)
      Arc_map.empty inst.arcs
  in
  Dip.record_prover meter
    (Array.append
       (Array.map (fun l -> enc_r3_node codec pa l) r3)
       (Array.of_list
          (List.map (fun a -> Bits.of_int ~width:wp (Arc_map.find a arc_r3).jval) inst.arcs)));

  (* ---- Round 4 (verifier): z per block ---- *)
  let coins4 : coins4 array =
    Array.init n (fun v ->
        { z = (if is_leader v then Some (Fp.sample p2 (Rng.split rng ((2 * n) + v))) else None) })
  in
  let wq = Fp.bit_width p2 in
  Dip.record_verifier meter
    (Array.map (fun (cn : coins4) -> match cn.z with Some z -> Bits.of_int ~width:wq z | None -> Bits.empty) coins4);

  (* ---- Round 5 (prover): verification-scheme multiset equalities ---- *)
  let z_of_block =
    Array.map (fun l -> match coins4.(l).z with Some z -> z | None -> assert false) block_leader
  in
  (* Encoded element of a committed pair. *)
  let enc (i, j) = ((i - 1) * p.Fp.p) + j in
  (* Per node: its S1 contributions (deduped by index) on each side. *)
  let in_arcs = Array.make n [] and out_arcs = Array.make n [] in
  List.iter
    (fun (u, v) ->
      match Arc_map.find (u, v) arc_r1 with
      | Inner -> ()
      | Outer { i } ->
          let jv = (Arc_map.find (u, v) arc_r3).jval in
          out_arcs.(u) <- (i, jv) :: out_arcs.(u);
          in_arcs.(v) <- (i, jv) :: in_arcs.(v))
    inst.arcs;
  let dedupe pairs = List.sort_uniq compare_pair pairs in
  let s1_head v = List.map enc (dedupe in_arcs.(v)) in
  let s1_tail v = List.map enc (dedupe out_arcs.(v)) in
  let phi_left v =
    (* phi^b_{idx(v)-1}(r'): the left neighbour's prefix; 1 at the leader *)
    if idx.(v) = 1 then 1 else prefix_upto pa p x1.(blk.(v)) rp (idx.(v) - 1)
  in
  let s2_side bit_wanted m v =
    if idx.(v) <= bsize && bit1_of v = bit_wanted then List.init m.(v) (fun _ -> enc (idx.(v), phi_left v))
    else []
  in
  let m_head_arr = Array.map (fun (l : r1_node) -> l.m_head) r1 in
  let m_tail_arr = Array.map (fun (l : r1_node) -> l.m_tail) r1 in
  let r5 : r5_node array = Array.make n { z_e = 0; ph1 = 1; ph2 = 1; pt1 = 1; pt2 = 1 } in
  for b = 0 to pa.Params.nblocks - 1 do
    let z = z_of_block.(b) in
    let acc1 = ref 1 and acc2 = ref 1 and acc3 = ref 1 and acc4 = ref 1 in
    for position = b * bsize to min (n - 1) ((if b = pa.Params.nblocks - 1 then n else (b + 1) * bsize) - 1) do
      let v = inst.path.(position) in
      let fold acc elems = List.iter (fun e -> acc := Fp.mul p2 !acc (Fp.sub p2 e z)) elems in
      fold acc1 (s1_head v);
      fold acc2 (s2_side true m_head_arr v);
      fold acc3 (s1_tail v);
      fold acc4 (s2_side false m_tail_arr v);
      r5.(v) <- { z_e = z; ph1 = !acc1; ph2 = !acc2; pt1 = !acc3; pt2 = !acc4 }
    done
  done;
  Dip.record_prover meter (Array.map (fun l -> enc_r5_node codec pa l) r5);

  (* ---- Verification: purely local checks at each node ---- *)
  let verify = node_checks pa inst ~r1 ~r3 ~r5 ~coins2 ~coins4 ~arc_r1 ~arc_r3 in
  let verdict = Dip.all_accept ~n verify in
  { verdict; stats = Dip.stats meter; params = pa; transcript = Dip.transcript meter }

(* ------------------------------------------------------------------ *)
(* Decision-only transcript replay.                                    *)
(* ------------------------------------------------------------------ *)

(* Decoders are strict inverses of the serializers above: every element
   must parse completely (no trailing bits), so any tampering that changes
   a label's length — and most that change its content — is caught either
   here or by the re-run decision functions. *)

let fail_decode what = invalid_arg ("Lr_sorting.replay: malformed " ^ what)

let reader_all what b f =
  let r = Bits.Reader.of_bits b in
  let v = f r in
  if Bits.Reader.remaining r <> 0 then fail_decode what;
  v

let decode_r1_node (pa : Params.t) b =
  let wi = bits_for (2 * pa.Params.block) and wm = bits_for ((2 * pa.Params.block) + 1) in
  reader_all "r1 node label" b (fun r ->
      let j = Bits.Reader.int r ~width:wi in
      let bit1 = Bits.Reader.bool r in
      let bit2 = Bits.Reader.bool r in
      let flag =
        match Bits.Reader.int r ~width:2 with
        | 0 -> Left_of
        | 1 -> At_vb
        | 2 -> Right_of
        | _ -> fail_decode "r1 flag"
      in
      let m_head = Bits.Reader.int r ~width:wm in
      let m_tail = Bits.Reader.int r ~width:wm in
      { j; bit1; bit2; flag; m_head; m_tail })

let decode_r1_arc (pa : Params.t) b =
  let wi = bits_for (pa.Params.block + 1) in
  reader_all "r1 arc label" b (fun r ->
      let outer = Bits.Reader.bool r in
      let i = Bits.Reader.int r ~width:wi in
      if outer then Outer { i }
      else if i <> 0 then fail_decode "r1 arc padding"
      else Inner)

let decode_r3_node (pa : Params.t) b =
  let wp = Fp.bit_width pa.Params.p in
  reader_all "r3 node label" b (fun r ->
      let f () = Bits.Reader.int r ~width:wp in
      let r_e = f () in
      let rp_e = f () in
      let rb_e = f () in
      let pre1 = f () in
      let pre2 = f () in
      let f1 = f () in
      let f2 = f () in
      let prep = f () in
      { r_e; rp_e; rb_e; pre1; pre2; f1; f2; prep })

let decode_r3_arc (pa : Params.t) b =
  let wp = Fp.bit_width pa.Params.p in
  reader_all "r3 arc label" b (fun r -> { jval = Bits.Reader.int r ~width:wp })

let decode_r5_node (pa : Params.t) b =
  let wq = Fp.bit_width pa.Params.p2 in
  reader_all "r5 node label" b (fun r ->
      let f () = Bits.Reader.int r ~width:wq in
      let z_e = f () in
      let ph1 = f () in
      let ph2 = f () in
      let pt1 = f () in
      let pt2 = f () in
      { z_e; ph1; ph2; pt1; pt2 })

let decode_coins2 (pa : Params.t) ~leftmost ~leader b =
  let wp = Fp.bit_width pa.Params.p in
  reader_all "round-2 coins" b (fun r ->
      let take () = Some (Bits.Reader.int r ~width:wp) in
      let rr = if leftmost then take () else None in
      let rp = if leftmost then take () else None in
      let rb = if leader then take () else None in
      { r = rr; rp; rb })

let decode_coins4 (pa : Params.t) ~leader b =
  let wq = Fp.bit_width pa.Params.p2 in
  reader_all "round-4 coins" b (fun r ->
      { z = (if leader then Some (Bits.Reader.int r ~width:wq) else None) })

(* Flat-codec decoders: same strict-inverse contract as reader_all and the
   decode_* functions above, through Bits_flat.Dec's zero-copy cursor. *)

let dec_all what b f =
  let d = Bits_flat.Dec.of_bits b in
  let v = f d in
  if Bits_flat.Dec.remaining d <> 0 then fail_decode what;
  v

let decode_r1_node_flat (pa : Params.t) b =
  let wi = bits_for (2 * pa.Params.block) and wm = bits_for ((2 * pa.Params.block) + 1) in
  dec_all "r1 node label" b (fun d ->
      let j = Bits_flat.Dec.int d ~width:wi in
      let bit1 = Bits_flat.Dec.bool d in
      let bit2 = Bits_flat.Dec.bool d in
      let flag =
        match Bits_flat.Dec.int d ~width:2 with
        | 0 -> Left_of
        | 1 -> At_vb
        | 2 -> Right_of
        | _ -> fail_decode "r1 flag"
      in
      let m_head = Bits_flat.Dec.int d ~width:wm in
      let m_tail = Bits_flat.Dec.int d ~width:wm in
      { j; bit1; bit2; flag; m_head; m_tail })

let decode_r1_arc_flat (pa : Params.t) b =
  let wi = bits_for (pa.Params.block + 1) in
  dec_all "r1 arc label" b (fun d ->
      let outer = Bits_flat.Dec.bool d in
      let i = Bits_flat.Dec.int d ~width:wi in
      if outer then Outer { i }
      else if i <> 0 then fail_decode "r1 arc padding"
      else Inner)

let decode_r3_node_flat (pa : Params.t) b =
  let wp = Fp.bit_width pa.Params.p in
  dec_all "r3 node label" b (fun d ->
      let f () = Bits_flat.Dec.int d ~width:wp in
      let r_e = f () in
      let rp_e = f () in
      let rb_e = f () in
      let pre1 = f () in
      let pre2 = f () in
      let f1 = f () in
      let f2 = f () in
      let prep = f () in
      { r_e; rp_e; rb_e; pre1; pre2; f1; f2; prep })

let decode_r3_arc_flat (pa : Params.t) b =
  let wp = Fp.bit_width pa.Params.p in
  dec_all "r3 arc label" b (fun d -> { jval = Bits_flat.Dec.int d ~width:wp })

let decode_r5_node_flat (pa : Params.t) b =
  let wq = Fp.bit_width pa.Params.p2 in
  dec_all "r5 node label" b (fun d ->
      let f () = Bits_flat.Dec.int d ~width:wq in
      let z_e = f () in
      let ph1 = f () in
      let ph2 = f () in
      let pt1 = f () in
      let pt2 = f () in
      { z_e; ph1; ph2; pt1; pt2 })

let decode_coins2_flat (pa : Params.t) ~leftmost ~leader b =
  let wp = Fp.bit_width pa.Params.p in
  dec_all "round-2 coins" b (fun d ->
      let take () = Some (Bits_flat.Dec.int d ~width:wp) in
      let rr = if leftmost then take () else None in
      let rp = if leftmost then take () else None in
      let rb = if leader then take () else None in
      { r = rr; rp; rb })

let decode_coins4_flat (pa : Params.t) ~leader b =
  let wq = Fp.bit_width pa.Params.p2 in
  dec_all "round-4 coins" b (fun d ->
      { z = (if leader then Some (Bits_flat.Dec.int d ~width:wq) else None) })

let dec_r1_node codec pa b =
  match codec with
  | Bits_flat.Checked -> decode_r1_node pa b
  | Bits_flat.Flat -> decode_r1_node_flat pa b

let dec_r1_arc codec pa b =
  match codec with
  | Bits_flat.Checked -> decode_r1_arc pa b
  | Bits_flat.Flat -> decode_r1_arc_flat pa b

let dec_r3_node codec pa b =
  match codec with
  | Bits_flat.Checked -> decode_r3_node pa b
  | Bits_flat.Flat -> decode_r3_node_flat pa b

let dec_r3_arc codec pa b =
  match codec with
  | Bits_flat.Checked -> decode_r3_arc pa b
  | Bits_flat.Flat -> decode_r3_arc_flat pa b

let dec_r5_node codec pa b =
  match codec with
  | Bits_flat.Checked -> decode_r5_node pa b
  | Bits_flat.Flat -> decode_r5_node_flat pa b

let dec_coins2 codec pa ~leftmost ~leader b =
  match codec with
  | Bits_flat.Checked -> decode_coins2 pa ~leftmost ~leader b
  | Bits_flat.Flat -> decode_coins2_flat pa ~leftmost ~leader b

let dec_coins4 codec pa ~leader b =
  match codec with
  | Bits_flat.Checked -> decode_coins4 pa ~leader b
  | Bits_flat.Flat -> decode_coins4_flat pa ~leader b

let replay ?(c = 3) ?block ?(codec = Bits_flat.Checked) inst frames =
  validate_instance inst;
  let n = inst.n in
  let pa = Params.make ~c ?block n in
  let pos = positions inst in
  let nar = List.length inst.arcs in
  match frames with
  | [
   (Dip.Prover_phase, f1);
   (Dip.Verifier_phase, f2);
   (Dip.Prover_phase, f3);
   (Dip.Verifier_phase, f4);
   (Dip.Prover_phase, f5);
  ] -> (
      try
        if
          Array.length f1 <> n + nar
          || Array.length f3 <> n + nar
          || Array.length f2 <> n
          || Array.length f4 <> n
          || Array.length f5 <> n
        then fail_decode "frame arity";
        let r1 = Array.init n (fun v -> dec_r1_node codec pa f1.(v)) in
        let r3 = Array.init n (fun v -> dec_r3_node codec pa f3.(v)) in
        let r5 = Array.init n (fun v -> dec_r5_node codec pa f5.(v)) in
        let coins2 =
          Array.init n (fun v ->
              dec_coins2 codec pa ~leftmost:(pos.(v) = 0) ~leader:(r1.(v).j = 1) f2.(v))
        in
        let coins4 = Array.init n (fun v -> dec_coins4 codec pa ~leader:(r1.(v).j = 1) f4.(v)) in
        let _, arc_r1, arc_r3 =
          List.fold_left
            (fun (k, m1, m3) a ->
              ( k + 1,
                Arc_map.add a (dec_r1_arc codec pa f1.(n + k)) m1,
                Arc_map.add a (dec_r3_arc codec pa f3.(n + k)) m3 ))
            (0, Arc_map.empty, Arc_map.empty)
            inst.arcs
        in
        let verify = node_checks pa inst ~r1 ~r3 ~r5 ~coins2 ~coins4 ~arc_r1 ~arc_r3 in
        Ok (Dip.all_accept ~n verify)
      with
      | Invalid_argument msg -> Error msg
      | Bits.Reader.Underflow -> Error "Lr_sorting.replay: label underflow")
  | _ -> Error "Lr_sorting.replay: expected a 5-round P-V-P-V-P transcript"
