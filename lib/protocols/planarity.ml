type instance = { graph : Graph.t }

type prover = Honest | Best_rotation

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  inner : Planar_embedding.result;
  transcript : (Dip.phase * Bits.t array) list;
}

let bits_for x =
  let rec go w = if 1 lsl w > x then w else go (w + 1) in
  max 1 (go 1)

let run ?(seed = 0) ?(c = 3) ?(retain = false) ?(codec = Bits_flat.Checked) ~prover inst =
  let g = inst.graph in
  let n = Graph.n g in
  if n = 0 || not (Traversal.is_connected g) then invalid_arg "Planarity.run: need a connected graph";
  let meter = Dip.meter ~retain () in
  (* The claimed rotation system. *)
  let rot =
    match (prover, Dipp_graph.Planarity.embed g) with
    | Honest, Some r -> r
    | Honest, None -> Rotation.default g (* non-planar: no valid embedding exists *)
    | Best_rotation, _ -> (
        (* best effort: embed a maximal planar subgraph and default the rest *)
        match Dipp_graph.Planarity.embed g with Some r -> r | None -> Rotation.default g)
  in
  (* Round 1: the prover writes (rho_u(e), rho_v(e)) on every edge, homed in
     node labels via Lemma 2.4: O(log Delta) bits per node. *)
  let el = Edge_labels.create g in
  let wd = bits_for (max 1 (Graph.max_degree g - 1)) in
  let rho_index v u =
    let r = rot.Rotation.rot.(v) in
    let rec find i = if r.(i) = u then i else find (i + 1) in
    find 0
  in
  let edge_bits (u, v) =
    Bits.concat [ Bits.of_int ~width:wd (rho_index u v); Bits.of_int ~width:wd (rho_index v u) ]
  in
  let edge_bits_flat (u, v) =
    let fb = Bits_flat.Enc.create (2 * wd) in
    Bits_flat.Enc.int fb ~width:wd (rho_index u v);
    Bits_flat.Enc.int fb ~width:wd (rho_index v u);
    Bits_flat.Enc.to_bits fb
  in
  let assignment =
    Edge_labels.assign el ~width:(2 * wd) (fun e ->
        match codec with Bits_flat.Checked -> edge_bits e | Bits_flat.Flat -> edge_bits_flat e)
  in
  let el_setup = Edge_labels.setup_labels el in
  (* Flat-path node encoder, preallocated once from the registry envelope so
     a serve-path request never climbs the grow ladder. *)
  let flat_cap =
    match Bounds.find "planarity" with
    | Some row -> Bounds.envelope row ~n ~delta:(max 2 (Graph.max_degree g))
    | None -> 64
  in
  let fenc = Bits_flat.Enc.create ~capacity:flat_cap 64 in
  let r1_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc el_setup.(v);
    Bits_flat.Enc.bits fenc assignment.(v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 16*loglog + 8*logdelta + 20 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked -> Bits.concat [ el_setup.(v); assignment.(v) ]
         | Bits_flat.Flat -> r1_node_flat v));
  (* Each node reconstructs its clockwise order from the rho values it can
     read (all its incident edges' labels) and checks they form a
     permutation of 0..deg-1; then the embedded-planarity protocol runs. *)
  let perm_ok =
    Dip.all_accept ~n (fun v ->
        let seen = Array.make (Graph.degree g v) false in
        Array.for_all
          (fun u ->
            let i = rho_index v u in
            if i < Array.length seen && not seen.(i) then begin
              seen.(i) <- true;
              true
            end
            else false)
          (Graph.neighbors g v))
  in
  let inner_prover : Planar_embedding.prover =
    match prover with Honest -> Planar_embedding.Honest | Best_rotation -> Planar_embedding.Crossing_sweep
  in
  let inner =
    Planar_embedding.run ~seed:(seed + 3) ~c ~codec ~prover:inner_prover
      { Planar_embedding.graph = g; rot }
  in
  let own = Dip.stats meter in
  let stats = Dip.merge_parallel [ own; inner.Planar_embedding.stats ] in
  let accepted = perm_ok.Dip.accepted && inner.Planar_embedding.verdict.Dip.accepted in
  {
    verdict =
      { Dip.accepted; rejecting = perm_ok.Dip.rejecting @ inner.Planar_embedding.verdict.Dip.rejecting };
    stats;
    inner;
    transcript = Dip.transcript meter;
  }
