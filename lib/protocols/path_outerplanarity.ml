type instance = { graph : Graph.t; witness : int list option }

type prover = Honest | Crossing_sweep | Flip_orientation | Fake_path

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  lr : Lr_sorting.result option;
  transcript : (Dip.phase * Bits.t array) list;
}

(* ------------------------------------------------------------------ *)
(* Nesting machinery: intervals, marks, successor/above sweep.         *)
(* ------------------------------------------------------------------ *)

module Edge_map = Map.Make (struct
  type t = Graph.edge

  let compare = Graph.compare_edge
end)

type edge_data = {
  tail : int;  (* node claimed left *)
  head : int;
  m_tail : bool;  (* claimed longest tail-right edge *)
  m_head : bool;  (* claimed longest head-left edge *)
  name : Bits.t * Bits.t;
  succ : (Bits.t * Bits.t) option;
}

(* Tolerant interval sweep over claimed intervals (l, r):
   - successor of each interval = stack top when it is pushed;
   - above of each position = stack top after closing, before opening.
   On properly nested inputs this is exactly the paper's successor/above
   structure; on crossing inputs it is the cheating prover's best effort. *)
let sweep ~n intervals =
  (* intervals: (l, r, key) with l < r *)
  let starting = Array.make n [] in
  List.iter (fun (l, r, key) -> starting.(l) <- (r, key) :: starting.(l)) intervals;
  for p = 0 to n - 1 do
    starting.(p) <- List.sort (fun (r1, _) (r2, _) -> Int.compare r2 r1) starting.(p)
  done;
  let stack = ref [] in
  let succ_of = Hashtbl.create 16 in
  let above = Array.make n None in
  for p = 0 to n - 1 do
    stack := List.filter (fun (r, _) -> r > p) !stack;
    above.(p) <- (match !stack with (_, k) :: _ -> Some k | [] -> None);
    List.iter
      (fun (r, key) ->
        Hashtbl.replace succ_of key (match !stack with (_, k) :: _ -> Some k | [] -> None);
        stack := (r, key) :: !stack)
      starting.(p)
  done;
  (succ_of, above)

(* True longest marks per node, from claimed intervals. *)
let longest_marks ~n intervals =
  let best_right = Array.make n None and best_left = Array.make n None in
  List.iter
    (fun (l, r, key) ->
      (match best_right.(l) with
      | Some (r', _) when r' >= r -> ()
      | _ -> best_right.(l) <- Some (r, key));
      match best_left.(r) with
      | Some (l', _) when l' <= l -> ()
      | _ -> best_left.(r) <- Some (l, key))
    intervals;
  (best_right, best_left)

(* ------------------------------------------------------------------ *)
(* Main execution.                                                     *)
(* ------------------------------------------------------------------ *)

let path_parents ~n path =
  (* parent = left neighbour, root = leftmost *)
  let parent = Array.make n (-1) in
  List.iteri (fun i v -> if i > 0 then parent.(v) <- List.nth path (i - 1)) path;
  parent

let run ?(seed = 0) ?(c = 3) ?param_n ?(retain = false) ?(codec = Bits_flat.Checked) ~prover inst =
  let g = inst.graph in
  let n = Graph.n g in
  if n = 0 then invalid_arg "Path_outerplanarity.run: empty graph";
  let rng = Rng.create (seed * 31 + 17) in
  let meter = Dip.meter ~retain () in
  let sizing_n = max n (Option.value ~default:n param_n) in
  let pa = Lr_sorting.Params.make ~c sizing_n in
  let nb = Fp.bit_width pa.Lr_sorting.Params.p in
  (* name strings have c * Theta(log log n) bits *)
  let el = Edge_labels.create g in
  (* flat-codec node encoder, preallocated from the Bounds envelope so the
     reset-reuse cycle never climbs the grow ladder *)
  let flat_cap =
    match Bounds.find "path_outerplanarity" with
    | Some row -> Bounds.envelope row ~n:sizing_n ~delta:(max 2 (Graph.max_degree g))
    | None -> 64
  in
  let fenc = Bits_flat.Enc.create ~capacity:flat_cap 64 in

  (* -------- the claimed path ---------------------------------------- *)
  let true_witness =
    match inst.witness with Some w -> Some w | None -> Outerplanar.path_witness g
  in
  let claimed_parent =
    match prover with
    | Fake_path ->
        (* two disjoint segments: cut the (claimed or index-order) path *)
        let base =
          match true_witness with Some w -> Array.of_list w | None -> Array.init n Fun.id
        in
        let parent = Array.make n (-1) in
        let cut = n / 2 in
        Array.iteri (fun i v -> if i > 0 && i <> cut then parent.(v) <- base.(i - 1)) base;
        (* only keep parent pointers that are real edges *)
        Array.mapi (fun v p -> if p >= 0 && Graph.mem_edge g v p then p else -1) parent
    | Honest | Crossing_sweep | Flip_orientation -> (
        match true_witness with
        | Some w -> path_parents ~n w
        | None ->
            (* no nesting path known: best-effort commitment — chain the DFS
               preorder wherever consecutive nodes are adjacent (the local
               path-shape and spanning-tree checks reject the gaps) *)
            let order = Traversal.dfs_order g 0 in
            let parent = Array.make n (-1) in
            let rec chain = function
              | a :: (b :: _ as rest) ->
                  if Graph.mem_edge g a b then parent.(b) <- a;
                  chain rest
              | _ -> ()
            in
            chain order;
            parent)
  in

  (* -------- Round 1 (prover) ---------------------------------------- *)
  let enc = Forest_encoding.encode g ~parent:claimed_parent in
  let cbits = Forest_encoding.color_bits enc in
  (* claimed path order, if the committed structure is one *)
  let claimed_path =
    let children = Array.make n [] in
    Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) claimed_parent;
    let roots = List.filter (fun v -> claimed_parent.(v) < 0) (List.init n Fun.id) in
    match roots with
    | [ r ] ->
        let rec walk v acc count =
          match children.(v) with
          | [] -> if count = n then Some (List.rev (v :: acc)) else None
          | [ c ] -> walk c (v :: acc) (count + 1)
          | _ -> None
        in
        walk r [] 1
    | _ -> None
  in
  let pos =
    match claimed_path with
    | Some p ->
        let a = Array.make n 0 in
        List.iteri (fun i v -> a.(v) <- i) p;
        Some a
    | None -> None
  in
  (* claimed orientation per non-path edge + intervals *)
  let is_path_edge u v = claimed_parent.(u) = v || claimed_parent.(v) = u in
  let nonpath_edges = List.filter (fun (u, v) -> not (is_path_edge u v)) (Graph.edges g) in
  let crossing_keys =
    (* edges involved in a crossing w.r.t. the claimed path (used by the
       cheating orientations) *)
    match pos with
    | None -> Edge_map.empty
    | Some pos ->
        let ivs =
          List.map (fun (u, v) -> (min pos.(u) pos.(v), max pos.(u) pos.(v), (u, v))) nonpath_edges
        in
        List.fold_left
          (fun acc (l1, r1, k1) ->
            List.fold_left
              (fun acc (l2, r2, k2) ->
                if l1 < l2 && l2 < r1 && r1 < r2 then Edge_map.add k1 () (Edge_map.add k2 () acc)
                else acc)
              acc ivs)
          Edge_map.empty ivs
  in
  let orientation =
    (* claimed tail/head per non-path edge *)
    List.fold_left
      (fun acc ((u, v) as e) ->
        let tail, head =
          match pos with
          | None -> (u, v)
          | Some pos ->
              let t, h = if pos.(u) < pos.(v) then (u, v) else (v, u) in
              if prover = Flip_orientation && Edge_map.mem e crossing_keys then (h, t) else (t, h)
        in
        Edge_map.add e (tail, head) acc)
      Edge_map.empty nonpath_edges
  in
  (* has-left / has-right bits per node *)
  let has_left = Array.make n false and has_right = Array.make n false in
  Edge_map.iter
    (fun _ (tail, head) ->
      has_right.(tail) <- true;
      has_left.(head) <- true)
    orientation;
  (* marks: true longests w.r.t. claimed intervals *)
  let claimed_intervals =
    match pos with
    | None -> []
    | Some pos ->
        List.map
          (fun (((_, _)) as e) ->
            let tail, head = Edge_map.find e orientation in
            (min pos.(tail) pos.(head), max pos.(tail) pos.(head), e))
          nonpath_edges
  in
  let best_right, best_left = longest_marks ~n claimed_intervals in
  let marked_tail_longest e =
    match (pos, Edge_map.find_opt e orientation) with
    | Some pos, Some (tail, head) ->
        let l = min pos.(tail) pos.(head) in
        (match best_right.(l) with Some (_, k) -> k = e | None -> false)
    | _ -> false
  and marked_head_longest e =
    match (pos, Edge_map.find_opt e orientation) with
    | Some pos, Some (tail, head) ->
        let r = max pos.(tail) pos.(head) in
        (match best_left.(r) with Some (_, k) -> k = e | None -> false)
    | _ -> false
  in
  (* Round-1 labels: forest encoding + has bits (nodes); orientation bit +
     two mark bits per edge, homed via the Lemma 2.4 simulation. *)
  let r1_edge_bits e =
    let u, _ = e in
    let tail, _ = try Edge_map.find e orientation with Not_found -> (u, u) in
    let w = Bits.Writer.create () in
    Bits.Writer.bool w (is_path_edge (fst e) (snd e));
    Bits.Writer.bool w (tail = fst e);
    Bits.Writer.bool w (marked_tail_longest e);
    Bits.Writer.bool w (marked_head_longest e);
    Bits.Writer.contents w
  in
  let r1_edge_bits_flat e =
    let u, _ = e in
    let tail, _ = try Edge_map.find e orientation with Not_found -> (u, u) in
    let fb = Bits_flat.Enc.create 4 in
    Bits_flat.Enc.bool fb (is_path_edge (fst e) (snd e));
    Bits_flat.Enc.bool fb (tail = fst e);
    Bits_flat.Enc.bool fb (marked_tail_longest e);
    Bits_flat.Enc.bool fb (marked_head_longest e);
    Bits_flat.Enc.to_bits fb
  in
  let r1_edge_assignment =
    Edge_labels.assign el ~width:4 (fun e ->
        match codec with
        | Bits_flat.Checked -> r1_edge_bits e
        | Bits_flat.Flat -> r1_edge_bits_flat e)
  in
  let el_setup = Edge_labels.setup_labels el in
  let r1_node_checked v =
    Bits.concat
      [
        Forest_encoding.to_bits ~cbits enc.(v);
        Bits.of_bool has_left.(v);
        Bits.of_bool has_right.(v);
        el_setup.(v);
        r1_edge_assignment.(v);
      ]
  in
  let r1_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc (Forest_encoding.to_bits ~cbits enc.(v));
    Bits_flat.Enc.bool fenc has_left.(v);
    Bits_flat.Enc.bool fenc has_right.(v);
    Bits_flat.Enc.bits fenc el_setup.(v);
    Bits_flat.Enc.bits fenc r1_edge_assignment.(v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 20*loglog + 20 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked -> r1_node_checked v
         | Bits_flat.Flat -> r1_node_flat v));

  (* -------- Round 2 (verifier): ST coins + name strings -------------- *)
  let reps = max 2 (nb / 2) in
  let st_coins = Spanning_tree_verify.draw_coins ~reps ~tag_bits:4 ~parent:claimed_parent (Rng.split rng 1) in
  let names = Array.init n (fun v -> Bits.random (Rng.split rng (100 + v)) nb) in
  let st_coin_bits = Spanning_tree_verify.coins_to_bits ~tag_bits:4 st_coins in
  Dip.record_verifier meter
    (Array.init n (fun v -> Bits.concat [ st_coin_bits.(v); names.(v) ]));

  (* -------- Round 3 (prover): ST response + succ/above/name labels --- *)
  let st_resp = Spanning_tree_verify.honest_response ~reps ~parent:claimed_parent st_coins in
  let succ_of, above_pos =
    match pos with
    | Some _ -> sweep ~n claimed_intervals
    | None -> (Hashtbl.create 1, Array.make n None)
  in
  let name_of e =
    let tail, head = Edge_map.find e orientation in
    (names.(tail), names.(head))
  in
  let above_of_node v =
    match pos with
    | None -> None
    | Some pos -> Option.map name_of above_pos.(pos.(v))
  in
  let edge_info =
    List.fold_left
      (fun acc e ->
        let tail, head = Edge_map.find e orientation in
        let succ =
          match Hashtbl.find_opt succ_of e with Some (Some k) -> Some (name_of k) | _ -> None
        in
        let m_tail, m_head =
          match codec with
          | Bits_flat.Checked -> (marked_tail_longest e, marked_head_longest e)
          | Bits_flat.Flat ->
              (* round-3 readback of the round-1 edge label (bits 2 and 3 of
                 the 4-bit frame); unchecked reads — dipp-refine proves the
                 bounds against the constant frame width *)
              let lbl = r1_edge_bits_flat e in
              ( Bits_flat.unsafe_int lbl ~pos:2 ~width:1 = 1,
                Bits_flat.unsafe_int lbl ~pos:3 ~width:1 = 1 )
        in
        Edge_map.add e { tail; head; m_tail; m_head; name = name_of e; succ } acc)
      Edge_map.empty nonpath_edges
  in
  let opt_pair_bits = function
    | None -> Bits.concat [ Bits.of_bool false; Bits.of_string (String.make (2 * nb) '0') ]
    | Some (a, b) -> Bits.concat [ Bits.of_bool true; a; b ]
  in
  let zero_pair_pad = Bits.of_string (String.make (2 * nb) '0') in
  let opt_pair_flat fb = function
    | None ->
        Bits_flat.Enc.bool fb false;
        Bits_flat.Enc.bits fb zero_pair_pad
    | Some (a, b) ->
        Bits_flat.Enc.bool fb true;
        Bits_flat.Enc.bits fb a;
        Bits_flat.Enc.bits fb b
  in
  let r3_edge_width = (2 * nb) + 1 + (2 * nb) in
  let r3_edge_bits e =
    match Edge_map.find_opt e edge_info with
    | Some d -> Bits.concat [ fst d.name; snd d.name; opt_pair_bits d.succ ]
    | None -> Bits.of_string (String.make r3_edge_width '0')
  in
  let r3_edge_bits_flat e =
    match Edge_map.find_opt e edge_info with
    | Some d ->
        let fb = Bits_flat.Enc.create r3_edge_width in
        Bits_flat.Enc.bits fb (fst d.name);
        Bits_flat.Enc.bits fb (snd d.name);
        opt_pair_flat fb d.succ;
        Bits_flat.Enc.to_bits fb
    | None -> Bits.of_string (String.make r3_edge_width '0')
  in
  let r3_edges =
    Edge_labels.assign el ~width:r3_edge_width (fun e ->
        match codec with
        | Bits_flat.Checked -> r3_edge_bits e
        | Bits_flat.Flat -> r3_edge_bits_flat e)
  in
  let st_resp_bits = Spanning_tree_verify.response_to_bits ~tag_bits:4 st_resp in
  let r3_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc st_resp_bits.(v);
    opt_pair_flat fenc (above_of_node v);
    Bits_flat.Enc.bits fenc r3_edges.(v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 40*loglog + 40 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked ->
             Bits.concat [ st_resp_bits.(v); opt_pair_bits (above_of_node v); r3_edges.(v) ]
         | Bits_flat.Flat -> r3_node_flat v));

  (* -------- LR-sorting sub-protocol (rounds 1-5, parallel) ----------- *)
  let lr_result =
    match claimed_path with
    | None -> None
    | Some p ->
        let arcs = List.map (fun e -> Edge_map.find e orientation) nonpath_edges in
        let lr_inst = { Lr_sorting.n; path = Array.of_list p; arcs } in
        Some (Lr_sorting.run ~seed:(seed + 7) ~c ~codec ~prover:Lr_sorting.Honest lr_inst)
  in

  (* -------- Verification --------------------------------------------- *)
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) claimed_parent;
  let pair_eq a b =
    match (a, b) with
    | None, None -> true
    | Some (x, y), Some (x', y') -> Bits.equal x x' && Bits.equal y y'
    | _ -> false
  in
  let above_label = Array.init n above_of_node in
  let verify v =
    let ok = ref true in
    let fail () = ok := false in
    (* path-shape checks on the committed structure *)
    let own_enc = enc.(v) in
    let nbr_encs = Array.to_list (Array.map (fun u -> (u, enc.(u))) (Graph.neighbors g v)) in
    if not (Forest_encoding.locally_wellformed ~own:own_enc ~nbrs:nbr_encs) then fail ();
    if List.length children.(v) > 1 then fail ();
    (* spanning-tree verification *)
    if
      not
        (Spanning_tree_verify.verify_node ~reps ~parent:claimed_parent ~children ~graph:g
           ~coins:st_coins ~response:st_resp v)
    then fail ();
    (* incident non-path edges, classified by claimed orientation *)
    let incident =
      List.filter_map
        (fun u ->
          let e = Graph.normalize_edge u v in
          Edge_map.find_opt e edge_info)
        (Array.to_list (Graph.neighbors g v))
    in
    let rights = List.filter (fun d -> d.tail = v) incident in
    let lefts = List.filter (fun d -> d.head = v) incident in
    (* has-bits are self-checked *)
    if has_right.(v) <> not (List.is_empty rights) then fail ();
    if has_left.(v) <> not (List.is_empty lefts) then fail ();
    (* own name component *)
    List.iter (fun d -> if not (Bits.equal (fst d.name) names.(v)) then fail ()) rights;
    List.iter (fun d -> if not (Bits.equal (snd d.name) names.(v)) then fail ()) lefts;
    (* marks: exactly one longest per non-empty side; duality *)
    if (not (List.is_empty rights)) && List.length (List.filter (fun d -> d.m_tail) rights) <> 1 then fail ();
    if (not (List.is_empty lefts)) && List.length (List.filter (fun d -> d.m_head) lefts) <> 1 then fail ();
    List.iter (fun d -> if (not d.m_tail) && not d.m_head then fail ()) incident;
    (* successor chains per side; the chain ends at the longest-marked edge
       whose successor equals above(v) (condition 3) *)
    let chain edges ~start ~is_last =
      (* does some ordering of [edges] satisfy: first name = start (if
         pinned), succ(e_i) = name(e_{i+1}), last satisfies [is_last] and
         succ(last) = above(v)? *)
      let rec go required remaining =
        match remaining with
        | [] -> true
        | _ ->
            List.exists
              (fun d ->
                let name_ok = match required with None -> true | Some nm -> pair_eq (Some d.name) (Some nm) in
                name_ok
                &&
                let rest = List.filter (fun d' -> d' != d) remaining in
                if List.is_empty rest then is_last d && pair_eq d.succ above_label.(v)
                else (not (is_last d)) && (match d.succ with Some s -> go (Some s) rest | None -> false))
              remaining
      in
      List.is_empty edges || go start edges
    in
    let right_nbr = match children.(v) with [ c ] -> Some c | _ -> None in
    let left_nbr = if claimed_parent.(v) >= 0 then Some claimed_parent.(v) else None in
    let start_right =
      match right_nbr with
      | Some u -> ( match above_label.(u) with Some nm -> Some (Some nm) | None -> Some None)
      | None -> None
    in
    let start_left =
      match left_nbr with
      | Some u -> ( match above_label.(u) with Some nm -> Some (Some nm) | None -> Some None)
      | None -> None
    in
    (* conditions (4)/(5) with the has-bit gating *)
    (match (right_nbr, rights) with
    | Some u, _ :: _ ->
        if has_left.(u) then fail () (* would cross *)
        else begin
          (* chain start pinned to above(u) *)
          match start_right with
          | Some (Some nm) -> if not (chain rights ~start:(Some nm) ~is_last:(fun d -> d.m_tail)) then fail ()
          | Some None | None -> fail () (* above(u) = bottom but v has right edges *)
        end
    | Some u, [] ->
        if not has_left.(u) then
          if not (pair_eq above_label.(v) above_label.(u)) then fail ()
    | None, _ :: _ ->
        (* no right neighbour: chain unpinned at the start *)
        if not (chain rights ~start:None ~is_last:(fun d -> d.m_tail)) then fail ()
    | None, [] -> ());
    (match (left_nbr, lefts) with
    | Some u, _ :: _ ->
        if has_right.(u) then fail ()
        else begin
          match start_left with
          | Some (Some nm) -> if not (chain lefts ~start:(Some nm) ~is_last:(fun d -> d.m_head)) then fail ()
          | Some None | None -> fail ()
        end
    | Some _, [] -> () (* covered by the right-neighbour rule at u *)
    | None, _ :: _ -> if not (chain lefts ~start:None ~is_last:(fun d -> d.m_head)) then fail ()
    | None, [] -> ());
    !ok
  in
  let structural = Dip.all_accept ~n verify in
  let lr_ok = match lr_result with None -> true | Some r -> r.Lr_sorting.verdict.Dip.accepted in
  let verdict =
    {
      Dip.accepted = structural.Dip.accepted && lr_ok;
      rejecting =
        structural.Dip.rejecting
        @ (match lr_result with Some r when not lr_ok -> r.Lr_sorting.verdict.Dip.rejecting | _ -> []);
    }
  in
  let stats =
    match lr_result with
    | Some r -> Dip.merge_parallel [ Dip.stats meter; r.Lr_sorting.stats ]
    | None -> Dip.stats meter
  in
  { verdict; stats; lr = lr_result; transcript = Dip.transcript meter }
