type instance = { graph : Graph.t }

type prover = Honest | Component_cheat | Merge_components

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  component_results : Path_outerplanarity.result list;
  transcript : (Dip.phase * Bits.t array) list;
}

(* ------------------------------------------------------------------ *)
(* Theorem 6.1: biconnected outerplanarity.                            *)
(* ------------------------------------------------------------------ *)

let cycle_to_path_from cyc ~start_ =
  (* cut the cycle at an edge incident to [start_] so the path begins there
     (any node when [start_ = None]) *)
  let arr = Array.of_list cyc in
  let k = Array.length arr in
  let s =
    match start_ with
    | None -> 0
    | Some v ->
        let rec find i = if arr.(i) = v then i else find (i + 1) in
        find 0
  in
  List.init k (fun i -> arr.((s + i) mod k))

let biconnected_witness ?start_ g =
  let n = Graph.n g in
  if n = 1 then Some [ 0 ]
  else if n = 2 then
    Some (match start_ with Some 1 -> [ 1; 0 ] | _ -> [ 0; 1 ])
  else
    match Outerplanar.hamiltonian_cycle g with
    | Some cyc -> Some (cycle_to_path_from cyc ~start_)
    | None -> None

let run_biconnected ?(seed = 0) ?(c = 3) ?param_n ?retain ?codec ~prover g =
  let witness = biconnected_witness g in
  let result =
    Path_outerplanarity.run ~seed ~c ?param_n ?retain ?codec ~prover
      { Path_outerplanarity.graph = g; witness }
  in
  (* Theorem 6.1's extra condition: the committed path's endpoints are
     adjacent (P closes into the Hamiltonian cycle).  The closing edge is
     marked by the prover; each endpoint checks the mark on one of its
     incident edges.  Here: endpoints of the committed path verify
     adjacency. *)
  let closing_ok =
    match witness with
    | Some (first :: _ as w) when List.length w >= 3 ->
        Graph.mem_edge g first (List.nth w (List.length w - 1))
    | Some _ -> true
    | None -> false
  in
  if closing_ok then result
  else
    {
      result with
      Path_outerplanarity.verdict = { Dip.accepted = false; rejecting = [ 0 ] };
    }

(* ------------------------------------------------------------------ *)
(* Theorem 1.3: general outerplanarity via the block-cut tree.         *)
(* ------------------------------------------------------------------ *)

let run ?(seed = 0) ?(c = 3) ?(retain = false) ?(codec = Bits_flat.Checked) ~prover inst =
  let g = inst.graph in
  let n = Graph.n g in
  if n = 0 || not (Traversal.is_connected g) then invalid_arg "Outerplanarity.run: need a connected graph";
  let meter = Dip.meter ~retain () in
  let rng = Rng.create (seed + 101) in
  let pa = Lr_sorting.Params.make ~c n in
  let nb = Fp.bit_width pa.Lr_sorting.Params.p in
  let bc = Biconnectivity.compute g in
  let k = Array.length bc.Biconnectivity.components in
  let rooted = Biconnectivity.root bc ~root_block:0 in

  (* -------- per-component Hamiltonian paths P_C ---------------------- *)
  (* P_C starts at the C-separating node (any node for the root block). *)
  let comp_paths =
    Array.init k (fun b ->
        let nodes = bc.Biconnectivity.components.(b) in
        let sub, back = Graph.induced g nodes in
        let sep = rooted.Biconnectivity.separating.(b) in
        let start_ =
          if sep < 0 then None
          else
            let rec pos i = function
              | [] -> None
              | x :: r -> if x = sep then Some i else pos (i + 1) r
            in
            pos 0 (Array.to_list back)
        in
        match biconnected_witness ?start_ sub with
        | Some p -> Some (List.map (fun v -> back.(v)) p)
        | None -> None)
  in
  (* Merge_components cheat: drop one separating node's special role by
     splicing its two components' paths into one claimed component. *)
  let cheat_merge = prover = Merge_components && k >= 2 in

  (* -------- spanning structure F = union of the P_C ------------------ *)
  let parent = Array.make n (-1) in
  let assigned = Array.make n false in
  Array.iteri
    (fun b path ->
      match path with
      | Some p ->
          let rec chain = function
            | a :: (bnode :: _ as rest) ->
                (* orient towards the separating node: parent = predecessor *)
                if not assigned.(bnode) then begin
                  parent.(bnode) <- a;
                  assigned.(bnode) <- true
                end;
                chain rest
            | _ -> ()
          in
          ignore b;
          chain p
      | None -> ())
    comp_paths;
  let parent =
    if not cheat_merge then parent
    else begin
      (* claim the separating node of block 1 is interior: re-root block 1's
         path away from the junction, leaving two roots *)
      let p = Array.copy parent in
      (match comp_paths.(min 1 (k - 1)) with
      | Some (first :: second :: _) ->
          if p.(second) = first then p.(second) <- -1
      | _ -> ());
      p
    end
  in
  let enc = Forest_encoding.encode g ~parent in
  let cbits = Forest_encoding.color_bits enc in
  let cut_bit = bc.Biconnectivity.cut_vertex in
  (* leaders: the node after the separating node on each P_C (first node for
     the root block) *)
  let leader = Array.make n false in
  Array.iteri
    (fun b path ->
      match (path, rooted.Biconnectivity.separating.(b)) with
      | Some (first :: _), s when s < 0 -> leader.(first) <- true
      | Some (_ :: second :: _), _ -> leader.(second) <- true
      | _ -> ())
    comp_paths;
  (* Flat-path node encoder, preallocated once from the registry envelope so
     a serve-path request never climbs the grow ladder. *)
  let flat_cap =
    match Bounds.find "outerplanarity" with
    | Some row -> Bounds.envelope row ~n ~delta:(max 2 (Graph.max_degree g))
    | None -> 64
  in
  let fenc = Bits_flat.Enc.create ~capacity:flat_cap 64 in
  let r1_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc (Forest_encoding.to_bits ~cbits enc.(v));
    Bits_flat.Enc.bool fenc cut_bit.(v);
    Bits_flat.Enc.bool fenc leader.(v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 10*loglog + 10 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked ->
             Bits.concat
               [ Forest_encoding.to_bits ~cbits enc.(v); Bits.of_bool cut_bit.(v); Bits.of_bool leader.(v) ]
         | Bits_flat.Flat -> r1_node_flat v));

  (* -------- verifier coins: ST coins + sep/lead samples --------------- *)
  let reps = max 2 (nb / 2) in
  let st_coins = Spanning_tree_verify.draw_coins ~reps ~tag_bits:4 ~parent (Rng.split rng 1) in
  let samples =
    Array.init n (fun v ->
        if cut_bit.(v) || leader.(v) then Some (Bits.random (Rng.split rng (500 + v)) nb) else None)
  in
  let st_coin_bits = Spanning_tree_verify.coins_to_bits ~tag_bits:4 st_coins in
  Dip.record_verifier meter
    (Array.init n (fun v ->
         Bits.concat [ st_coin_bits.(v); (match samples.(v) with Some s -> s | None -> Bits.empty) ]));

  (* -------- prover response: ST + sep/lead broadcasts ------------------ *)
  let st_resp = Spanning_tree_verify.honest_response ~reps ~parent st_coins in
  let blk_of = Array.make n (-1) in
  Array.iteri
    (fun b nodes ->
      List.iter
        (fun v -> if (not cut_bit.(v)) || rooted.Biconnectivity.separating.(b) <> v then blk_of.(v) <- b)
        nodes)
    bc.Biconnectivity.components;
  let sep_tag b =
    let s = rooted.Biconnectivity.separating.(b) in
    if s < 0 then Bits.empty else Option.value ~default:Bits.empty samples.(s)
  in
  let lead_tag = Array.make k Bits.empty in
  Array.iteri
    (fun b path ->
      match (path, rooted.Biconnectivity.separating.(b)) with
      | Some (first :: _), s when s < 0 -> lead_tag.(b) <- Option.value ~default:Bits.empty samples.(first)
      | Some (_ :: second :: _), _ -> lead_tag.(b) <- Option.value ~default:Bits.empty samples.(second)
      | _ -> ())
    comp_paths;
  let sep_of v = if blk_of.(v) >= 0 then sep_tag blk_of.(v) else Bits.empty in
  let lead_of v = if blk_of.(v) >= 0 then lead_tag.(blk_of.(v)) else Bits.empty in
  let st_resp_bits = Spanning_tree_verify.response_to_bits ~tag_bits:4 st_resp in
  let r3_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc st_resp_bits.(v);
    Bits_flat.Enc.bits fenc (sep_of v);
    Bits_flat.Enc.bits fenc (lead_of v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 20*loglog + 20 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked -> Bits.concat [ st_resp_bits.(v); sep_of v; lead_of v ]
         | Bits_flat.Flat -> r3_node_flat v));

  (* -------- per-component Theorem 6.1 runs ----------------------------- *)
  let comp_prover : Path_outerplanarity.prover =
    match prover with
    | Honest | Merge_components -> Path_outerplanarity.Honest
    | Component_cheat -> Path_outerplanarity.Crossing_sweep
  in
  let component_results =
    List.filter_map
      (fun b ->
        let nodes = bc.Biconnectivity.components.(b) in
        if List.length nodes < 3 then None
        else begin
          let sub, back = Graph.induced g nodes in
          let witness =
            Option.map
              (fun p ->
                let inv = Array.make n (-1) in
                Array.iteri (fun i orig -> inv.(orig) <- i) back;
                List.map (fun v -> inv.(v)) p)
              comp_paths.(b)
          in
          let r =
            Path_outerplanarity.run ~seed:(seed + (13 * b)) ~c ~param_n:n ~codec ~prover:comp_prover
              { Path_outerplanarity.graph = sub; witness }
          in
          (* Theorem 6.1 closing-edge check *)
          let closing_ok =
            match witness with
            | Some (first :: _ as w) when List.length w >= 3 ->
                Graph.mem_edge sub first (List.nth w (List.length w - 1))
            | Some _ -> true
            | None -> false
          in
          Some
            (if closing_ok then r
             else { r with Path_outerplanarity.verdict = { Dip.accepted = false; rejecting = [ 0 ] } })
        end)
      (List.init k Fun.id)
  in

  (* -------- verification of the decomposition stage -------------------- *)
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  let verify v =
    let ok = ref true in
    let fail () = ok := false in
    if
      not
        (Spanning_tree_verify.verify_node ~reps ~parent ~children ~graph:g ~coins:st_coins
           ~response:st_resp v)
    then fail ();
    (* sep/lead sampled bits are echoed correctly *)
    (match samples.(v) with
    | Some s ->
        if leader.(v) && not (Bits.equal (lead_of v) s) then fail ();
        (* a cut node checks the sep tags of the components it leads into
           through its F-children *)
        if cut_bit.(v) then
          List.iter
            (fun ch ->
              if leader.(ch) && blk_of.(ch) >= 0 && not (Bits.equal (sep_of ch) s) then fail ())
            children.(v)
    | None -> ());
    (* a non-cut node's G-neighbors are all in its own component *)
    if not cut_bit.(v) then
      Array.iter
        (fun u ->
          let same = Bits.equal (sep_of u) (sep_of v) && Bits.equal (lead_of u) (lead_of v) in
          let u_is_my_sep = cut_bit.(u) && (match samples.(u) with Some s -> Bits.equal (sep_of v) s | None -> false) in
          if not (same || u_is_my_sep) then fail ())
        (Graph.neighbors g v);
    !ok
  in
  let structural = Dip.all_accept ~n verify in
  let comp_ok =
    List.for_all (fun r -> r.Path_outerplanarity.verdict.Dip.accepted) component_results
  in
  let verdict = { Dip.accepted = structural.Dip.accepted && comp_ok; rejecting = structural.Dip.rejecting } in
  let comp_stats = List.map (fun r -> r.Path_outerplanarity.stats) component_results in
  let max_comp =
    List.fold_left
      (fun acc s ->
        {
          acc with
          Dip.proof_size_bits = max acc.Dip.proof_size_bits s.Dip.proof_size_bits;
          max_node_total_bits = max acc.Dip.max_node_total_bits s.Dip.max_node_total_bits;
          total_prover_bits = acc.Dip.total_prover_bits + s.Dip.total_prover_bits;
          total_verifier_bits = acc.Dip.total_verifier_bits + s.Dip.total_verifier_bits;
          interaction_rounds = max acc.Dip.interaction_rounds s.Dip.interaction_rounds;
        })
      (Dip.stats meter) comp_stats
  in
  { verdict; stats = max_comp; component_results; transcript = Dip.transcript meter }
