(* The declared-bounds registry: one row per Gil–Parter theorem
   (Theorems 1.2–1.8 plus the Lemma 4.1 LR-sorting primitive and the
   one-round PLS baselines the Theorem 1.8 lower bound speaks about).

   Each row turns a theorem statement into something checkable:
   - [rounds] and [schedule] are exact (the paper's 5-round P-V-P-V-P
     protocols, 1-round P for the PLS baselines);
   - [envelope] is a concrete n -> max-bits upper envelope for the
     theorem's proof-size family, with constants calibrated once against
     the reference measurements (EXPERIMENTS.md) at the default soundness
     constant c = 3 — generous enough to absorb machine-level constant
     drift, tight enough that a family-level regression (log log n code
     degrading to log n) breaks it;
   - [floor], where present, is the Theorem 1.8 Omega(log n) lower bound
     a 1-round scheme cannot beat.

   The registry is read in three places: the [budget] pass of dipp-lint
   statically checks each protocol's record_prover/record_verifier
   schedule against [rounds]/[schedule]; [Dip.check_budget] cross-checks
   measured stats at runtime; and [bench/main.exe bounds] emits the
   claim-vs-measured record (bounds_report.json) that CI archives. *)

(* Envelope shapes, first-class so the static refinement pass
   (lib/analysis/refine.ml) can compare inferred symbolic label widths
   against the declared form instead of sampling an opaque closure.  The
   additive constant absorbs the O(1) setup fields (forest-encoding
   colors, tag bits, has/mark bits); the multiplier is per-field cost: a
   handful of values from fields of size polylog(n), each O(c * log log n)
   bits wide at c = 3. *)
type shape =
  | Loglog of { mult : int; add : int }  (* mult * loglog n + add *)
  | Loglog_delta of { mult : int; dmult : int; add : int }
      (* mult * loglog n + dmult * ceil_log2 (max 2 delta) + add *)
  | Log of { mult : int; add : int }  (* mult * ceil_log2 n + add *)

type row = {
  id : string;  (* protocol module basename, e.g. "lr_sorting" *)
  theorem : string;
  family : string;  (* printable proof-size family *)
  rounds : int;
  schedule : Dip.phase list;
  shape : shape;
  floor : (int -> int) option;
}

let ceil_log2 n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  max 1 (go 1)

let loglog n = max 1 (ceil_log2 (ceil_log2 n))

let p = Dip.Prover_phase
and v = Dip.Verifier_phase

let five_round = [ p; v; p; v; p ]
let one_round = [ p ]

let eval_shape shape ~n ~delta =
  match shape with
  | Loglog { mult; add } -> (mult * loglog n) + add
  | Loglog_delta { mult; dmult; add } ->
      (mult * loglog n) + (dmult * ceil_log2 (max 2 delta)) + add
  | Log { mult; add } -> (mult * ceil_log2 n) + add

let envelope r ~n ~delta = eval_shape r.shape ~n ~delta

let omega_log n = ceil_log2 n

let rows =
  [
    {
      id = "lr_sorting";
      theorem = "Lemma 4.1";
      family = "O(log log n)";
      rounds = 5;
      schedule = five_round;
      shape = Loglog { mult = 40; add = 60 };
      floor = None;
    };
    {
      id = "path_outerplanarity";
      theorem = "Theorem 1.2";
      family = "O(log log n)";
      rounds = 5;
      schedule = five_round;
      shape = Loglog { mult = 100; add = 80 };
      floor = None;
    };
    {
      id = "outerplanarity";
      theorem = "Theorem 1.3";
      family = "O(log log n)";
      rounds = 5;
      schedule = five_round;
      shape = Loglog { mult = 100; add = 120 };
      floor = None;
    };
    {
      id = "planar_embedding";
      theorem = "Theorem 1.4";
      family = "O(log log n)";
      rounds = 5;
      schedule = five_round;
      shape = Loglog { mult = 500; add = 200 };
      floor = None;
    };
    {
      id = "planarity";
      theorem = "Theorem 1.5";
      family = "O(log log n + log Delta)";
      rounds = 5;
      schedule = five_round;
      shape = Loglog_delta { mult = 500; dmult = 40; add = 300 };
      floor = None;
    };
    {
      id = "series_parallel_dip";
      theorem = "Theorem 1.6";
      family = "O(log log n)";
      rounds = 5;
      schedule = five_round;
      shape = Loglog { mult = 80; add = 80 };
      floor = None;
    };
    {
      id = "treewidth2_dip";
      theorem = "Theorem 1.7";
      family = "O(log log n)";
      rounds = 5;
      schedule = five_round;
      shape = Loglog { mult = 80; add = 100 };
      floor = None;
    };
    (* One-round baselines: Theorem 1.8 says no 1-round scheme beats
       Omega(log n) label bits, so these carry a floor as well as an
       envelope. *)
    {
      id = "pls_lr_sorting";
      theorem = "Theorem 1.8 / trivial PLS";
      family = "Theta(log n)";
      rounds = 1;
      schedule = one_round;
      shape = Log { mult = 1; add = 1 };
      floor = Some omega_log;
    };
    {
      id = "pls_path_outerplanar";
      theorem = "Theorem 1.8 / FFM+21-style PLS";
      family = "Theta(log n)";
      rounds = 1;
      schedule = one_round;
      shape = Log { mult = 4; add = 8 };
      floor = Some omega_log;
    };
    {
      id = "pls_spanning_tree";
      theorem = "Theorem 1.8 / distance PLS";
      family = "Theta(log n)";
      rounds = 1;
      schedule = one_round;
      shape = Log { mult = 2; add = 4 };
      floor = Some omega_log;
    };
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) rows

let budget r ~n ~delta =
  {
    Dip.budget_rounds = r.rounds;
    budget_schedule = r.schedule;
    budget_proof_bits = envelope r ~n ~delta;
    budget_floor_bits = (match r.floor with Some f -> f n | None -> 0);
  }
