type instance = { graph : Graph.t }

type prover = Honest | Component_cheat

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  component_results : Series_parallel_dip.result list;
  transcript : (Dip.phase * Bits.t array) list;
}

let run ?(seed = 0) ?(c = 3) ?(retain = false) ?(codec = Bits_flat.Checked) ~prover inst =
  let g = inst.graph in
  let n = Graph.n g in
  if n = 0 || not (Traversal.is_connected g) then invalid_arg "Treewidth2_dip.run: need a connected graph";
  let meter = Dip.meter ~retain () in
  let rng = Rng.create (seed + 311) in
  let pa = Lr_sorting.Params.make ~c n in
  let nb = Fp.bit_width pa.Lr_sorting.Params.p in
  let bc = Biconnectivity.compute g in
  let k = Array.length bc.Biconnectivity.components in
  let rooted = Biconnectivity.root bc ~root_block:0 in
  let cut_bit = bc.Biconnectivity.cut_vertex in

  (* block identity per non-cut node; cut nodes belong to their parent-ward
     component for tag purposes *)
  let blk_of = Array.make n (-1) in
  Array.iteri
    (fun b nodes ->
      List.iter
        (fun v -> if (not cut_bit.(v)) || rooted.Biconnectivity.separating.(b) <> v then blk_of.(v) <- b)
        nodes)
    bc.Biconnectivity.components;

  (* spanning forest: per component, a BFS tree rooted at its separating
     node (root component: at its first node); the union is a spanning tree
     of g, committed and certified once *)
  let parent = Array.make n (-1) in
  Array.iteri
    (fun b nodes ->
      let sub, back = Graph.induced g nodes in
      let inv = Array.make n (-1) in
      Array.iteri (fun i orig -> inv.(orig) <- i) back;
      let sep = rooted.Biconnectivity.separating.(b) in
      let root_local = if sep < 0 then 0 else inv.(sep) in
      let p = Traversal.spanning_tree sub root_local in
      Array.iteri
        (fun i pi ->
          let orig = back.(i) in
          if pi <> i && pi >= 0 && (parent.(orig) = -1 || not cut_bit.(orig)) then
            parent.(orig) <- back.(pi))
        p)
    bc.Biconnectivity.components;
  let enc = Forest_encoding.encode g ~parent in
  let cbits = Forest_encoding.color_bits enc in
  (* Flat-path node encoder, preallocated once from the registry envelope so
     a serve-path request never climbs the grow ladder. *)
  let flat_cap =
    match Bounds.find "treewidth2_dip" with
    | Some row -> Bounds.envelope row ~n ~delta:(max 2 (Graph.max_degree g))
    | None -> 64
  in
  let fenc = Bits_flat.Enc.create ~capacity:flat_cap 64 in
  let r1_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc (Forest_encoding.to_bits ~cbits enc.(v));
    Bits_flat.Enc.bool fenc cut_bit.(v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 10*loglog + 10 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked ->
             Bits.concat [ Forest_encoding.to_bits ~cbits enc.(v); Bits.of_bool cut_bit.(v) ]
         | Bits_flat.Flat -> r1_node_flat v));

  let reps = max 2 (nb / 2) in
  let st_coins = Spanning_tree_verify.draw_coins ~reps ~tag_bits:4 ~parent (Rng.split rng 1) in
  let samples =
    Array.init n (fun v -> if cut_bit.(v) then Some (Bits.random (Rng.split rng (900 + v)) nb) else None)
  in
  let st_coin_bits = Spanning_tree_verify.coins_to_bits ~tag_bits:4 st_coins in
  Dip.record_verifier meter
    (Array.init n (fun v ->
         Bits.concat [ st_coin_bits.(v); (match samples.(v) with Some s -> s | None -> Bits.empty) ]));

  let st_resp = Spanning_tree_verify.honest_response ~reps ~parent st_coins in
  (* component tag = the separating cut node's sample (root component: a
     fresh pseudo-tag derived from the run randomness) *)
  let root_tag = Bits.random (Rng.split rng 5) nb in
  let comp_tag b =
    let s = rooted.Biconnectivity.separating.(b) in
    if s < 0 then root_tag else Option.value ~default:Bits.empty samples.(s)
  in
  let tag_of v = if blk_of.(v) >= 0 then comp_tag blk_of.(v) else Bits.empty in
  let st_resp_bits = Spanning_tree_verify.response_to_bits ~tag_bits:4 st_resp in
  let r3_node_flat v =
    Bits_flat.Enc.reset fenc;
    Bits_flat.Enc.bits fenc st_resp_bits.(v);
    Bits_flat.Enc.bits fenc (tag_of v);
    Bits_flat.Enc.to_bits fenc
  in
  (* dipp-refine: width <= 20*loglog + 20 *)
  Dip.record_prover meter
    (Array.init n (fun v ->
         match codec with
         | Bits_flat.Checked -> Bits.concat [ st_resp_bits.(v); tag_of v ]
         | Bits_flat.Flat -> r3_node_flat v));

  (* per-component series-parallel runs *)
  let comp_prover : Series_parallel_dip.prover =
    match prover with Honest -> Series_parallel_dip.Honest | Component_cheat -> Series_parallel_dip.Ear_cheat
  in
  let component_results =
    List.filter_map
      (fun b ->
        let nodes = bc.Biconnectivity.components.(b) in
        if List.length nodes < 2 then None
        else begin
          let sub, _back = Graph.induced g nodes in
          if Graph.n sub = 2 then None (* a bridge is trivially SP *)
          else begin
            let ears =
              match Series_parallel_dip.derive_ears sub with
              | Some e -> Some e
              | None -> (
                  (* non-SP component: best effort — ears of a maximal SP
                     subgraph plus leftover chord ears *)
                  let rec strip g' removed =
                    match Series_parallel.decompose g' with
                    | Some t -> Some (Series_parallel.ears_of_sp t, removed)
                    | None -> (
                        match List.rev (Graph.edges g') with
                        | [] -> None
                        | e :: _ -> strip (Graph.remove_edges g' [ e ]) (e :: removed))
                  in
                  match strip sub [] with
                  | Some (ears, removed) -> Some (ears @ List.map (fun (u, v) -> [ u; v ]) removed)
                  | None -> None)
            in
            Some
              (Series_parallel_dip.run ~seed:(seed + (19 * b)) ~c ~param_n:n ~codec
                 ~prover:comp_prover
                 { Series_parallel_dip.graph = sub; ears })
          end
        end)
      (List.init k Fun.id)
  in

  (* gluing verification *)
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  let verify v =
    let ok = ref true in
    let fail () = ok := false in
    if
      not
        (Spanning_tree_verify.verify_node ~reps ~parent ~children ~graph:g ~coins:st_coins
           ~response:st_resp v)
    then fail ();
    (match samples.(v) with
    | Some s ->
        (* cut node: its non-parent-ward tree children carry its tag *)
        List.iter
          (fun ch ->
            if blk_of.(ch) >= 0 && blk_of.(ch) <> blk_of.(v) && not (Bits.equal (tag_of ch) s) then fail ())
          children.(v)
    | None -> ());
    if not cut_bit.(v) then
      Array.iter
        (fun u ->
          let same = Bits.equal (tag_of u) (tag_of v) in
          let u_is_my_sep =
            cut_bit.(u) && (match samples.(u) with Some s -> Bits.equal (tag_of v) s | None -> false)
          in
          if not (same || u_is_my_sep) then fail ())
        (Graph.neighbors g v);
    !ok
  in
  let structural = Dip.all_accept ~n verify in
  let comp_ok = List.for_all (fun r -> r.Series_parallel_dip.verdict.Dip.accepted) component_results in
  let verdict =
    { Dip.accepted = structural.Dip.accepted && comp_ok; rejecting = structural.Dip.rejecting }
  in
  let stats =
    List.fold_left
      (fun acc r ->
        let s = r.Series_parallel_dip.stats in
        {
          acc with
          Dip.proof_size_bits = max acc.Dip.proof_size_bits s.Dip.proof_size_bits;
          max_node_total_bits = max acc.Dip.max_node_total_bits s.Dip.max_node_total_bits;
          total_prover_bits = acc.Dip.total_prover_bits + s.Dip.total_prover_bits;
          total_verifier_bits = acc.Dip.total_verifier_bits + s.Dip.total_verifier_bits;
          interaction_rounds = max acc.Dip.interaction_rounds s.Dip.interaction_rounds;
        })
      (Dip.stats meter) component_results
  in
  { verdict; stats; component_results; transcript = Dip.transcript meter }
