(** The LR-sorting distributed interactive proof (paper §4, Lemma 4.1).

    Instance: a directed graph whose underlying undirected graph contains a
    given Hamiltonian path P (directed left to right); yes-instances have
    every non-path arc (u, v) with u before v on P; no-instances have at
    least one backward arc (equivalently: the digraph has a cycle).

    The protocol runs in 5 interaction rounds with O(log log n) proof size
    and soundness error 1/polylog n:

    - the path is cut into blocks of ~ceil(log n) consecutive nodes, block
      positions are spread bit-per-node inside each block, and adjacent
      blocks prove consecutiveness of their positions by comparing multiset
      characteristic polynomials at a shared random point (round 2 sample,
      round 3 evaluation);
    - inner-block arcs compare node indexes and a per-block random tag;
    - outer-block arcs commit to a distinguishing index and the polynomial
      evaluation of the shared position prefix (rounds 1-3), then every
      block checks all commitments against its own bits with two
      multiset-equality executions (rounds 4-5).

    Labels are assigned to nodes and arcs (Lemma 4.1); the planar wrapper of
    Lemma 4.2 is realized where this protocol is consumed
    ({!Path_outerplanarity}) through {!Dipp_dip.Edge_labels}. *)

type instance = {
  n : int;
  path : int array;  (** position -> node id; a permutation of 0..n-1 *)
  arcs : (int * int) list;  (** non-path arcs; (u, v) claims u before v *)
}

val validate_instance : instance -> unit
(** Raises [Invalid_argument] on malformed instances (not a permutation,
    arcs out of range, arcs duplicating path edges). *)

val is_yes_instance : instance -> bool

val underlying_graph : instance -> Graph.t

(** Protocol parameters, fixed by n and the soundness constant c. *)
module Params : sig
  type t = {
    n : int;
    block : int;  (** B = max(1, ceil(log2 n)) *)
    nblocks : int;
    p : Fp.t;  (** consecutiveness/commitment field, ~B^c *)
    p2 : Fp.t;  (** verification-scheme multiset field, > 2B^2 * p *)
  }

  val make : ?c:int -> ?block:int -> int -> t
  (** [c] is the soundness exponent (fields sized ~block^c); [block]
      overrides the block size for ablations — it must be at least
      ceil(log2 n) so a block can hold all position bits. *)
end

type prover =
  | Honest
  | Forge_pairs  (** labels backward arcs with a forged commitment pair *)
  | Shift_positions  (** renumbers blocks to legalize one backward arc *)
  | Fake_inner  (** labels backward cross-block arcs as inner-block *)

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  params : Params.t;
  transcript : (Dip.phase * Bits.t array) list;  (** non-empty iff [retain] *)
}

val run :
  ?seed:int ->
  ?c:int ->
  ?block:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:prover ->
  instance ->
  result
(** Executes the 5-round protocol.  [Honest] on a yes-instance always
    accepts (perfect completeness); on a no-instance every prover strategy
    is rejected with probability 1 - 1/polylog n.  [codec] selects the
    label serializer: the checked {!Bits.Writer} reference path (default)
    or the flat preallocated-buffer path — both produce byte-identical
    labels. *)

val replay :
  ?c:int ->
  ?block:int ->
  ?codec:Bits_flat.codec ->
  instance ->
  (Dip.phase * Bits.t array) list ->
  (Dip.verdict, string) Stdlib.result
(** Decision-only replay: decodes the five recorded frames (node labels,
    arc labels, coins) with strict inverses of the label serializers and
    re-runs {e only} the per-node decision function — no prover work, no
    coin sampling.  On a transcript recorded by [run ~retain:true] with the
    same [c]/[block], the verdict equals the live run's verdict bit for
    bit.  [Error] reports a structurally malformed transcript (wrong frame
    arity or schedule, a label that does not parse). *)
