type instance = { graph : Graph.t; rot : Rotation.t }

type reduction = {
  h : Graph.t;
  copy_owner : int array;
  copies_of : int list array;
}

let is_yes_instance inst = Rotation.is_planar_embedding inst.rot

(* The refined h(G, T, rho) construction.

   The brief announcement describes copies x_0(v)..x_chi(v) indexed by the
   first-tree-edge rule; with that granularity the rotations of tree leaves
   never influence h (a star spanning tree maps every non-tree edge at a
   leaf to the leaf's single copy), so the "iff" of Lemma 7.3 cannot hold.
   We therefore realize the construction FFM+21's proofs actually rely on:
   trace the boundary walk of T inside rho and emit one path node per
   corner (chi(v)+1 per node, as in the paper) *and one per non-tree dart*;
   each non-tree edge becomes the chord joining its two dart positions.
   rho is a planar embedding iff the chords are properly nested along the
   walk: on the sphere the complement of T is a disk whose boundary is the
   walk, and the non-tree edges embed in that disk without crossings iff
   their chords do not interleave.  Dart nodes are owned by their edge, so
   the Lemma 2.4 edge-label simulation keeps the per-node label count
   constant (see DESIGN.md). *)
let reduce inst ~root ~parent =
  let g = inst.graph in
  let n = Graph.n g in
  let copies_of = Array.make n [] in
  let seq = ref [] in
  let count = ref 0 in
  let dart_pos = Hashtbl.create 16 in
  let emit_corner v =
    let id = !count in
    incr count;
    copies_of.(v) <- id :: copies_of.(v);
    seq := (`Corner v) :: !seq
  in
  let emit_dart v u =
    let id = !count in
    incr count;
    Hashtbl.replace dart_pos (v, u) id;
    seq := (`Dart (v, u)) :: !seq
  in
  let is_tree v u = parent.(v) = u || parent.(u) = v in
  let rec walk v ~from =
    (* Scan rho_v clockwise starting just after the entry edge [from]
       (index 0 for the root), recursing into children and emitting
       non-tree darts in rotation order. *)
    emit_corner v;
    let r = inst.rot.Rotation.rot.(v) in
    let deg = Array.length r in
    if deg > 0 then begin
      let start =
        match from with
        | None -> deg - 1 (* root: pretend we entered just before index 0 *)
        | Some f ->
            let rec find i = if r.(i) = f then i else find (i + 1) in
            find 0
      in
      for k = 1 to deg - (match from with None -> 0 | Some _ -> 1) do
        let u = r.((start + k) mod deg) in
        if is_tree v u && parent.(u) = v then begin
          walk u ~from:(Some v);
          emit_corner v
        end
        else if not (is_tree v u) then emit_dart v u
      done
    end
  in
  walk root ~from:None;
  Array.iteri (fun v l -> copies_of.(v) <- List.rev l) copies_of;
  let total = !count in
  let copy_owner = Array.make total (-1) in
  List.iteri
    (fun i item ->
      let pos = total - 1 - i in
      match item with `Corner v -> copy_owner.(pos) <- v | `Dart (v, _) -> copy_owner.(pos) <- v)
    !seq;
  let path_edges = List.init (total - 1) (fun i -> (i, i + 1)) in
  let q_edges =
    Graph.fold_edges
      (fun (u, v) acc ->
        if is_tree u v then acc
        else (Hashtbl.find dart_pos (u, v), Hashtbl.find dart_pos (v, u)) :: acc)
      g []
  in
  let h = Graph.create ~n:total (path_edges @ List.map (fun (a, b) -> Graph.normalize_edge a b) q_edges) in
  { h; copy_owner; copies_of }

type prover = Honest | Crossing_sweep | Flip_orientation

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  inner : Path_outerplanarity.result;
  transcript : (Dip.phase * Bits.t array) list;
}

let run ?(seed = 0) ?(c = 3) ?(retain = false) ?(codec = Bits_flat.Checked) ~prover inst =
  let g = inst.graph in
  let n = Graph.n g in
  if n = 0 || not (Traversal.is_connected g) then
    invalid_arg "Planar_embedding.run: need a connected graph";
  let meter = Dip.meter ~retain () in
  let rng = Rng.create (seed + 77) in
  let pa = Lr_sorting.Params.make ~c (max 2 ((2 * n) - 1)) in
  let nb = Fp.bit_width pa.Lr_sorting.Params.p in
  let root = 0 in
  let parent = Traversal.spanning_tree g root in
  let parent = Array.mapi (fun v p -> if p = v then -1 else p) parent in
  (* Flat-path node encoder, preallocated once from the registry envelope so
     a serve-path request never climbs the grow ladder; reset-reused per
     label (to_bits snapshots). *)
  let flat_cap =
    match Bounds.find "planar_embedding" with
    | Some row -> Bounds.envelope row ~n ~delta:(max 2 (Graph.max_degree g))
    | None -> 64
  in
  let fenc = Bits_flat.Enc.create ~capacity:flat_cap 64 in
  (* eta-expanded per label so dipp-refine joins width intervals at each
     call site rather than through a closure *)
  let enc_node codec b =
    match codec with
    | Bits_flat.Checked -> b
    | Bits_flat.Flat ->
        Bits_flat.Enc.reset fenc;
        Bits_flat.Enc.bits fenc b;
        Bits_flat.Enc.to_bits fenc
  in
  (* Round 1: commit T (Lemma 2.3). *)
  let enc = Forest_encoding.encode g ~parent in
  let cbits = Forest_encoding.color_bits enc in
  (* dipp-refine: width <= 10*loglog + 10 *)
  Dip.record_prover meter
    (Array.init n (fun v -> enc_node codec (Forest_encoding.to_bits ~cbits enc.(v))));
  (* Rounds 2-3: certify T (Lemma 2.5). *)
  let reps = max 2 (nb / 2) in
  let st_coins = Spanning_tree_verify.draw_coins ~reps ~tag_bits:4 ~parent (Rng.split rng 3) in
  Dip.record_verifier meter (Spanning_tree_verify.coins_to_bits ~tag_bits:4 st_coins);
  let st_resp = Spanning_tree_verify.honest_response ~reps ~parent st_coins in
  let st_resp_bits = Spanning_tree_verify.response_to_bits ~tag_bits:4 st_resp in
  (* dipp-refine: width <= 20*loglog + 20 *)
  Dip.record_prover meter (Array.init n (fun v -> enc_node codec st_resp_bits.(v)));
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  let st_verdict =
    Dip.all_accept ~n (fun v ->
        Spanning_tree_verify.verify_node ~reps ~parent ~children ~graph:g ~coins:st_coins
          ~response:st_resp v)
  in
  (* The reduction and the inner path-outerplanarity run (rounds 1-5,
     simulated by the original nodes; each holds O(1) copies' labels). *)
  let red = reduce inst ~root ~parent in
  let inner_prover : Path_outerplanarity.prover =
    match prover with
    | Honest -> Path_outerplanarity.Honest
    | Crossing_sweep -> Path_outerplanarity.Crossing_sweep
    | Flip_orientation -> Path_outerplanarity.Flip_orientation
  in
  let witness = List.init (Graph.n red.h) Fun.id in
  let inner =
    Path_outerplanarity.run ~seed:(seed + 5) ~c ~codec ~prover:inner_prover
      { Path_outerplanarity.graph = red.h; witness = Some witness }
  in
  (* Stats: every original node simulates at most 5 copies (its first and
     last copy, their path neighbours, and one copy per child direction
     held at the child), per Lemma 7.1. *)
  let own_stats = Dip.stats meter in
  let inner_stats = inner.Path_outerplanarity.stats in
  let stats =
    {
      own_stats with
      Dip.interaction_rounds = max own_stats.Dip.interaction_rounds inner_stats.Dip.interaction_rounds;
      proof_size_bits = own_stats.Dip.proof_size_bits + (5 * inner_stats.Dip.proof_size_bits);
      max_node_total_bits =
        own_stats.Dip.max_node_total_bits + (5 * inner_stats.Dip.max_node_total_bits);
      total_prover_bits = own_stats.Dip.total_prover_bits + inner_stats.Dip.total_prover_bits;
      total_verifier_bits = own_stats.Dip.total_verifier_bits + inner_stats.Dip.total_verifier_bits;
    }
  in
  let accepted = st_verdict.Dip.accepted && inner.Path_outerplanarity.verdict.Dip.accepted in
  {
    verdict =
      {
        Dip.accepted;
        rejecting =
          st_verdict.Dip.rejecting
          @ List.sort_uniq Int.compare (List.map (fun h -> red.copy_owner.(h)) inner.Path_outerplanarity.verdict.Dip.rejecting);
      };
    stats;
    inner;
    transcript = Dip.transcript meter;
  }
