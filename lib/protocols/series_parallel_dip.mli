(** Series-parallel DIP (paper §8, Theorem 1.6).

    The prover commits a nested ear decomposition (Lemma 8.1): the node set
    is partitioned into sub-ears (the ear interiors, plus the first ear in
    full), encoded as a forest of paths (Lemma 2.3) with connecting-edge
    marks; each sub-ear is certified to be a simple path spanning its
    induced subgraph (Lemma 2.5); per-sub-ear random tags r_Q realize the
    ear/pred_ear checks of the paper (condition 1); and, per host ear, a
    derived path-outerplanarity instance — the host path plus one virtual
    chord per attached ear — certifies the nesting condition (3) through
    {!Path_outerplanarity}.

    Two normalizations, recorded in DESIGN.md: hosts are normalized to the
    deepest earlier ear containing both endpoints *whose sub-ear is
    non-empty* (single-edge hosts defer to their own host, which spans the
    same interval, so nesting is unaffected); and ear-endpoint membership is
    checked through locally computable membership sets
    M(u) = {ear(u)} + {ear(w) : (w,u) is a connecting edge}, which covers
    the paper's "endpoints may coincide with the host's endpoints" cases. *)

type instance = {
  graph : Graph.t;
  ears : int list list option;  (** a nested ear decomposition, if known *)
}

type prover =
  | Honest
  | Ear_cheat  (** best-effort labels when some host's chords cross *)
  | Fake_ears  (** commits a malformed decomposition (broken sub-ear) *)

type result = {
  verdict : Dip.verdict;
  stats : Dip.stats;
  host_results : Path_outerplanarity.result list;
  transcript : (Dip.phase * Bits.t array) list;
      (** the top-level meter's retained frames; non-empty iff [retain] —
          component sub-runs meter separately and are not retained *)
}

val derive_ears : Graph.t -> int list list option
(** Honest witness: SP-tree recognition + Eppstein's construction. *)

val run :
  ?seed:int ->
  ?c:int ->
  ?param_n:int ->
  ?retain:bool ->
  ?codec:Bits_flat.codec ->
  prover:prover ->
  instance ->
  result
(** [codec] selects the honest prover's label serializer (byte-identical
    output either way); it is threaded into every per-host
    {!Path_outerplanarity} run. *)
