(** The declared-bounds registry: the Gil–Parter theorem table
    (Theorems 1.2–1.8, plus the Lemma 4.1 LR-sorting primitive and the
    one-round PLS baselines) as checkable data.

    Every protocol module in [lib/protocols] (and every PLS baseline in
    [lib/baselines]) has one {!row} keyed by its module basename.  A row
    declares the exact interaction-round count and phase schedule and a
    concrete proof-size envelope [n -> max_bits] for the theorem's
    asymptotic family, calibrated at the default soundness constant
    [c = 3] (see EXPERIMENTS.md for the reference measurements each
    envelope was fitted against).

    Consumers: the static [budget] pass of dipp-lint (schedule vs.
    source), {!Dip.check_budget} (runtime stats vs. budget), and
    [bench/main.exe bounds] (the claim-vs-measured [bounds_report.json]
    record). *)

type row = {
  id : string;  (** protocol module basename, e.g. ["lr_sorting"] *)
  theorem : string;  (** e.g. ["Theorem 1.2"] *)
  family : string;  (** printable proof-size family, e.g. ["O(log log n)"] *)
  rounds : int;
  schedule : Dip.phase list;
  envelope : n:int -> delta:int -> int;
      (** claimed upper envelope on proof size in bits; [delta] is the
          maximum degree and only contributes to the Theorem 1.5 row *)
  floor : (int -> int) option;
      (** Theorem 1.8 lower bound for one-round schemes, as [n -> bits] *)
}

val rows : row list
(** Every registry row, in theorem order. *)

val find : string -> row option
(** Row lookup by protocol module basename. *)

val budget : row -> n:int -> delta:int -> Dip.budget
(** Instantiates a row's envelope at a concrete instance size. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] = smallest [w >= 1] with [2^w >= n]. *)

val loglog : int -> int
(** [ceil_log2 (ceil_log2 n)], the paper's proof-size scale. *)
