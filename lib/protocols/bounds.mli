(** The declared-bounds registry: the Gil–Parter theorem table
    (Theorems 1.2–1.8, plus the Lemma 4.1 LR-sorting primitive and the
    one-round PLS baselines) as checkable data.

    Every protocol module in [lib/protocols] (and every PLS baseline in
    [lib/baselines]) has one {!row} keyed by its module basename.  A row
    declares the exact interaction-round count and phase schedule and a
    concrete proof-size envelope [n -> max_bits] for the theorem's
    asymptotic family, calibrated at the default soundness constant
    [c = 3] (see EXPERIMENTS.md for the reference measurements each
    envelope was fitted against).

    Consumers: the static [budget] pass of dipp-lint (schedule vs.
    source), {!Dip.check_budget} (runtime stats vs. budget), and
    [bench/main.exe bounds] (the claim-vs-measured [bounds_report.json]
    record). *)

type shape =
  | Loglog of { mult : int; add : int }
      (** [mult * loglog n + add] — the paper's O(log log n) families *)
  | Loglog_delta of { mult : int; dmult : int; add : int }
      (** [mult * loglog n + dmult * ceil_log2 (max 2 delta) + add] — the
          Theorem 1.5 O(log log n + log Delta) family *)
  | Log of { mult : int; add : int }
      (** [mult * ceil_log2 n + add] — the Theta(log n) PLS baselines *)

(** A proof-size envelope as symbolic data rather than an opaque closure,
    so the static refinement pass ([refine-budget] in dipp-lint) can
    compare an inferred per-phase label-width form against the declared
    one; {!eval_shape} instantiates it numerically. *)

type row = {
  id : string;  (** protocol module basename, e.g. ["lr_sorting"] *)
  theorem : string;  (** e.g. ["Theorem 1.2"] *)
  family : string;  (** printable proof-size family, e.g. ["O(log log n)"] *)
  rounds : int;
  schedule : Dip.phase list;
  shape : shape;
      (** claimed upper envelope on proof size in bits; [delta] is the
          maximum degree and only contributes to the Theorem 1.5 row *)
  floor : (int -> int) option;
      (** Theorem 1.8 lower bound for one-round schemes, as [n -> bits] *)
}

val rows : row list
(** Every registry row, in theorem order. *)

val find : string -> row option
(** Row lookup by protocol module basename. *)

val eval_shape : shape -> n:int -> delta:int -> int
(** Instantiates an envelope shape at a concrete instance size. *)

val envelope : row -> n:int -> delta:int -> int
(** [eval_shape r.shape]. *)

val budget : row -> n:int -> delta:int -> Dip.budget
(** Instantiates a row's envelope at a concrete instance size. *)

val ceil_log2 : int -> int
(** [ceil_log2 n] = smallest [w >= 1] with [2^w >= n]. *)

val loglog : int -> int
(** [ceil_log2 (ceil_log2 n)], the paper's proof-size scale. *)
