type label = { c1 : int; c2 : int; parity : bool; root : bool }

(* Depths must tolerate cheating parent claims that contain pointer cycles
   (the spanning-tree verification is what catches those); on a cycle we
   anchor an arbitrary node at depth 0. *)
let depths ~n ~parent =
  let depth = Array.make n (-1) in
  let state = Array.make n 0 in
  let rec d v =
    if depth.(v) >= 0 then depth.(v)
    else if state.(v) = 1 then begin
      depth.(v) <- 0;
      0
    end
    else begin
      state.(v) <- 1;
      let r = if parent.(v) < 0 then 0 else 1 + d parent.(v) in
      state.(v) <- 2;
      if depth.(v) < 0 then depth.(v) <- r;
      depth.(v)
    end
  in
  for v = 0 to n - 1 do ignore (d v) done;
  depth

(* Contract every edge (v, parent v) with [which (depth v)] into the parent;
   color the resulting minor. *)
let contraction_coloring g ~parent ~depth ~which =
  let n = Graph.n g in
  let rep = Array.init n Fun.id in
  let rec find v = if rep.(v) = v then v else (rep.(v) <- find rep.(v); rep.(v)) in
  for v = 0 to n - 1 do
    if parent.(v) >= 0 && which depth.(v) then rep.(find v) <- find parent.(v)
  done;
  let reps = Array.init n find in
  (* Relabel reps densely. *)
  let dense = Array.make n (-1) in
  let count = ref 0 in
  Array.iter
    (fun r ->
      if dense.(r) = -1 then begin
        dense.(r) <- !count;
        incr count
      end)
    reps;
  let contracted_edges =
    Graph.fold_edges
      (fun (u, v) acc ->
        let a = dense.(reps.(u)) and b = dense.(reps.(v)) in
        if a <> b then (a, b) :: acc else acc)
      g []
  in
  let cg = Graph.create ~n:!count contracted_edges in
  let colors = Coloring.greedy cg in
  Array.init n (fun v -> colors.(dense.(reps.(v))))

let encode g ~parent =
  let n = Graph.n g in
  if Array.length parent <> n then invalid_arg "Forest_encoding.encode";
  Array.iteri
    (fun v p -> if p >= 0 && not (Graph.mem_edge g v p) then invalid_arg "Forest_encoding.encode: parent not a neighbor")
    parent;
  let depth = depths ~n ~parent in
  let c1 = contraction_coloring g ~parent ~depth ~which:(fun d -> d land 1 = 1) in
  let c2 = contraction_coloring g ~parent ~depth ~which:(fun d -> d land 1 = 0) in
  Array.init n (fun v -> { c1 = c1.(v); c2 = c2.(v); parity = depth.(v) land 1 = 1; root = parent.(v) < 0 })

let color_bits labels =
  let maxc = Array.fold_left (fun acc l -> max acc (max l.c1 l.c2)) 0 labels in
  let rec bits w = if 1 lsl w > maxc then w else bits (w + 1) in
  max 1 (bits 1)

let width ~cbits = (2 * cbits) + 2

let to_bits ~cbits l =
  let w = Bits.Writer.create () in
  Bits.Writer.int w ~width:cbits l.c1;
  Bits.Writer.int w ~width:cbits l.c2;
  Bits.Writer.bool w l.parity;
  Bits.Writer.bool w l.root;
  Bits.Writer.contents w

let read ~cbits r =
  let c1 = Bits.Reader.int r ~width:cbits in
  let c2 = Bits.Reader.int r ~width:cbits in
  let parity = Bits.Reader.bool r in
  let root = Bits.Reader.bool r in
  { c1; c2; parity; root }

(* Odd v: parent = even neighbor matching on c1; children = even neighbors
   matching on c2.  Even v: parent = odd neighbor matching on c2; children =
   odd neighbors matching on c1 (paper Lemma 2.3 proof). *)
let parent_candidates ~own ~nbrs =
  List.filter_map
    (fun (u, l) ->
      if l.parity <> own.parity && (if own.parity then l.c1 = own.c1 else l.c2 = own.c2) then Some u
      else None)
    nbrs

let children_of ~own ~nbrs =
  List.filter_map
    (fun (u, l) ->
      if l.parity <> own.parity && (if own.parity then l.c2 = own.c2 else l.c1 = own.c1) then Some u
      else None)
    nbrs

let locally_wellformed ~own ~nbrs =
  let cands = parent_candidates ~own ~nbrs in
  if own.root then List.is_empty cands else List.length cands = 1

let decode_forest g labels =
  let n = Graph.n g in
  let nbrs_of v = Array.to_list (Array.map (fun u -> (u, labels.(u))) (Graph.neighbors g v)) in
  let out = Array.make n (-1) in
  let ok = ref true in
  for v = 0 to n - 1 do
    let own = labels.(v) and nbrs = nbrs_of v in
    if not (locally_wellformed ~own ~nbrs) then ok := false
    else
      match parent_candidates ~own ~nbrs with
      | [ p ] -> out.(v) <- p
      | _ -> ()
  done;
  if !ok then Some out else None
