type phase = Prover_phase | Verifier_phase

type meter = {
  mutable phases_rev : phase list;
  mutable phase_max_rev : int list;
  mutable proof_size : int;
  mutable node_totals : int array;
  mutable total_prover : int;
  mutable total_verifier : int;
  retain : bool;
  mutable retained_rev : (phase * Bits.t array) list;
}

let meter ?(retain = false) () =
  {
    phases_rev = [];
    phase_max_rev = [];
    proof_size = 0;
    node_totals = [||];
    total_prover = 0;
    total_verifier = 0;
    retain;
    retained_rev = [];
  }

let ensure_totals m n = if Array.length m.node_totals < n then begin
    let t = Array.make n 0 in
    Array.blit m.node_totals 0 t 0 (Array.length m.node_totals);
    m.node_totals <- t
  end

let record_prover m labels =
  m.phases_rev <- Prover_phase :: m.phases_rev;
  ensure_totals m (Array.length labels);
  let phase_max = ref 0 in
  Array.iteri
    (fun v l ->
      let b = Bits.length l in
      m.proof_size <- max m.proof_size b;
      phase_max := max !phase_max b;
      m.node_totals.(v) <- m.node_totals.(v) + b;
      m.total_prover <- m.total_prover + b)
    labels;
  m.phase_max_rev <- !phase_max :: m.phase_max_rev;
  if m.retain then m.retained_rev <- (Prover_phase, Array.copy labels) :: m.retained_rev

let record_verifier m coins =
  m.phases_rev <- Verifier_phase :: m.phases_rev;
  let phase_max = ref 0 in
  Array.iter
    (fun c ->
      phase_max := max !phase_max (Bits.length c);
      m.total_verifier <- m.total_verifier + Bits.length c)
    coins;
  m.phase_max_rev <- !phase_max :: m.phase_max_rev;
  if m.retain then m.retained_rev <- (Verifier_phase, Array.copy coins) :: m.retained_rev

type stats = {
  interaction_rounds : int;
  proof_size_bits : int;
  max_node_total_bits : int;
  total_prover_bits : int;
  total_verifier_bits : int;
  phases : phase list;
  per_phase : (phase * int) list;
}

(* Zip that stops at the shorter list: the two meter lists grow in
   lockstep, but a truncated or hand-built stats value must not raise. *)
let rec zip_min a b =
  match (a, b) with x :: xs, y :: ys -> (x, y) :: zip_min xs ys | _, _ -> []

let stats m =
  {
    interaction_rounds = List.length m.phases_rev;
    proof_size_bits = m.proof_size;
    max_node_total_bits = Array.fold_left max 0 m.node_totals;
    total_prover_bits = m.total_prover;
    total_verifier_bits = m.total_verifier;
    phases = List.rev m.phases_rev;
    per_phase = zip_min (List.rev m.phases_rev) (List.rev m.phase_max_rev);
  }

(* ---- declared complexity budgets (Theorems 1.2-1.8) ------------------ *)

type budget = {
  budget_rounds : int;
  budget_schedule : phase list;
  budget_proof_bits : int;
  budget_floor_bits : int;
}

type budget_violation =
  | Rounds_exceeded of { claimed : int; measured : int }
  | Schedule_mismatch of { claimed : phase list; measured : phase list }
  | Proof_size_exceeded of { claimed : int; measured : int }
  | Proof_size_below_floor of { floor : int; measured : int }

let phase_equal a b =
  match (a, b) with
  | Prover_phase, Prover_phase | Verifier_phase, Verifier_phase -> true
  | Prover_phase, Verifier_phase | Verifier_phase, Prover_phase -> false

(* Component folds (block-cut / SP compositions) keep only the top-level
   meter's phase list while taking the max of interaction rounds, so a
   measured phase list may be shorter than the declared schedule: the
   check is prefix agreement, not equality. *)
let rec is_phase_prefix shorter longer =
  match (shorter, longer) with
  | [], _ -> true
  | _ :: _, [] -> false
  | a :: tl, b :: tl' -> phase_equal a b && is_phase_prefix tl tl'

let check_budget b s =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  if s.interaction_rounds > b.budget_rounds then
    push (Rounds_exceeded { claimed = b.budget_rounds; measured = s.interaction_rounds });
  if not (is_phase_prefix s.phases b.budget_schedule) then
    push (Schedule_mismatch { claimed = b.budget_schedule; measured = s.phases });
  if s.proof_size_bits > b.budget_proof_bits then
    push (Proof_size_exceeded { claimed = b.budget_proof_bits; measured = s.proof_size_bits });
  if b.budget_floor_bits > 0 && s.proof_size_bits < b.budget_floor_bits then
    push (Proof_size_below_floor { floor = b.budget_floor_bits; measured = s.proof_size_bits });
  List.rev !violations

let pp_phases ppf phases =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "-")
    (fun ppf ph ->
      Format.pp_print_string ppf (match ph with Prover_phase -> "P" | Verifier_phase -> "V"))
    ppf phases

let pp_budget_violation ppf = function
  | Rounds_exceeded { claimed; measured } ->
      Format.fprintf ppf "rounds exceeded: claimed %d, measured %d" claimed measured
  | Schedule_mismatch { claimed; measured } ->
      Format.fprintf ppf "schedule mismatch: claimed %a, measured %a" pp_phases claimed pp_phases
        measured
  | Proof_size_exceeded { claimed; measured } ->
      Format.fprintf ppf "proof size exceeded: claimed <= %d bits, measured %d" claimed measured
  | Proof_size_below_floor { floor; measured } ->
      Format.fprintf ppf "proof size below declared floor: >= %d bits required, measured %d" floor
        measured

type verdict = { accepted : bool; rejecting : int list }

let all_accept ~n decide =
  let rejecting = ref [] in
  for v = n - 1 downto 0 do
    if not (decide v) then rejecting := v :: !rejecting
  done;
  let accepted = match !rejecting with [] -> true | _ :: _ -> false in
  { accepted; rejecting = !rejecting }

(* Round-by-round merge of two per-phase schedules: parallel repetitions
   run their rounds simultaneously, so the label sent in round i of the
   combination concatenates the round-i labels and its phase-max bits add.
   Rounds past the shorter schedule are kept as-is from the longer one. *)
(* Shared zipper for the two per-phase merges.  The shorter list must be a
   schedule prefix of the longer: merging a prover round into a verifier
   round (or vice versa) would silently mis-account bits, so a phase-kind
   mismatch is a hard [Invalid_argument]. *)
let merge_per_phase_with ~who op a b =
  let long, short = if List.length a >= List.length b then (a, b) else (b, a) in
  let rec go round l s =
    match (l, s) with
    | rest, [] -> rest
    | [], _ :: _ -> []
    | (ph, bits) :: tl, (ph', bits') :: ts ->
        if not (phase_equal ph ph') then
          invalid_arg
            (Printf.sprintf "%s: phase kind mismatch at round %d (%s vs %s)" who round
               (match ph with Prover_phase -> "P" | Verifier_phase -> "V")
               (match ph' with Prover_phase -> "P" | Verifier_phase -> "V"));
        (ph, op bits bits') :: go (round + 1) tl ts
  in
  go 1 long short

let merge_per_phase a b = merge_per_phase_with ~who:"Dip.merge_per_phase" ( + ) a b

let merge_parallel stats_list =
  match stats_list with
  | [] -> invalid_arg "Dip.merge_parallel"
  | first :: rest ->
      List.fold_left
        (fun acc s ->
          let per_phase = merge_per_phase acc.per_phase s.per_phase in
          {
            interaction_rounds = max acc.interaction_rounds s.interaction_rounds;
            proof_size_bits = acc.proof_size_bits + s.proof_size_bits;
            max_node_total_bits = acc.max_node_total_bits + s.max_node_total_bits;
            total_prover_bits = acc.total_prover_bits + s.total_prover_bits;
            total_verifier_bits = acc.total_verifier_bits + s.total_verifier_bits;
            phases =
              (if List.length acc.phases >= List.length s.phases then acc.phases else s.phases);
            per_phase;
          })
        first rest

(* Pointwise-max analogue of [merge_per_phase]: repeated trials of the
   same protocol do not concatenate labels, so the round-i phase maximum
   is the max over trials, not the sum. *)
let merge_per_phase_max a b = merge_per_phase_with ~who:"Dip.merge_per_phase_max" max a b

let merge_trials stats_list =
  match stats_list with
  | [] -> invalid_arg "Dip.merge_trials"
  | first :: rest ->
      List.fold_left
        (fun acc s ->
          {
            interaction_rounds = max acc.interaction_rounds s.interaction_rounds;
            proof_size_bits = max acc.proof_size_bits s.proof_size_bits;
            max_node_total_bits = max acc.max_node_total_bits s.max_node_total_bits;
            total_prover_bits = acc.total_prover_bits + s.total_prover_bits;
            total_verifier_bits = acc.total_verifier_bits + s.total_verifier_bits;
            phases =
              (if List.length acc.phases >= List.length s.phases then acc.phases else s.phases);
            per_phase = merge_per_phase_max acc.per_phase s.per_phase;
          })
        first rest

let pp_stats ppf s =
  Format.fprintf ppf "rounds=%d proof=%db node-total=%db prover-total=%db coins=%db"
    s.interaction_rounds s.proof_size_bits s.max_node_total_bits s.total_prover_bits
    s.total_verifier_bits

let pp_per_phase ppf s =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
    (fun ppf (ph, bits) ->
      Format.fprintf ppf "%s%d" (match ph with Prover_phase -> "P" | Verifier_phase -> "V") bits)
    ppf s.per_phase

let transcript m = List.rev m.retained_rev

let pp_transcript ?(max_nodes = 16) ppf t =
  List.iteri
    (fun round (ph, labels) ->
      Format.fprintf ppf "round %d (%s):@." (round + 1)
        (match ph with Prover_phase -> "prover" | Verifier_phase -> "verifier");
      Array.iteri
        (fun v l ->
          if v < max_nodes then
            Format.fprintf ppf "  node %3d | %s@." v
              (if Bits.length l = 0 then "-" else Bits.to_string l))
        labels;
      if Array.length labels > max_nodes then
        Format.fprintf ppf "  ... (%d more)@." (Array.length labels - max_nodes))
    t
