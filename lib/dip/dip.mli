(** The distributed-interactive-proof execution model (paper §1, "Model").

    A protocol run alternates prover phases (the prover assigns one label —
    a bitstring — to every node) and verifier phases (every node draws a
    public random bitstring).  After the final prover phase every node
    decides from its own randomness, its own labels, and its neighbors'
    labels; the run accepts iff all nodes accept.

    This module records phases and computes the paper's complexity measures:

    - interaction rounds = number of phases (a 5-round protocol is
      P-V-P-V-P);
    - proof size = maximum number of bits in any single label assigned by
      the prover in any phase;
    - plus totals useful for the experiment tables. *)

type phase = Prover_phase | Verifier_phase

type meter

val meter : ?retain:bool -> unit -> meter
(** With [retain:true] the meter keeps every recorded label array so the
    whole transcript can be rendered afterwards (small instances only). *)

val record_prover : meter -> Bits.t array -> unit
(** One prover phase: [labels.(v)] is node v's label this phase. *)

val record_verifier : meter -> Bits.t array -> unit
(** One verifier phase: [coins.(v)] is node v's public randomness. *)

type stats = {
  interaction_rounds : int;
  proof_size_bits : int;  (** max single prover label, in bits *)
  max_node_total_bits : int;  (** max per-node sum of prover labels across phases *)
  total_prover_bits : int;
  total_verifier_bits : int;
  phases : phase list;  (** in order *)
  per_phase : (phase * int) list;
      (** per phase, the largest single label/coin assigned in it (bits) *)
}

val stats : meter -> stats

(** {2 Declared complexity budgets}

    The Gil–Parter theorem table (Theorems 1.2–1.8) declares, per protocol,
    an interaction-round count, a phase schedule, and a proof-size bound.
    A [budget] is the runtime form of one such row (the registry living in
    [lib/protocols/bounds.ml]); {!check_budget} cross-checks a measured
    {!stats} against it.  [bench/main.exe bounds] runs this over every
    protocol and emits the machine-readable claim-vs-measured record
    ([bounds_report.json]); the static analogue — extracting the schedule
    from the source — is the [budget] pass of dipp-lint. *)

type budget = {
  budget_rounds : int;  (** claimed interaction rounds (5 for the DIPs) *)
  budget_schedule : phase list;  (** claimed schedule, e.g. P-V-P-V-P *)
  budget_proof_bits : int;  (** claimed upper envelope on {!stats.proof_size_bits} *)
  budget_floor_bits : int;
      (** claimed lower bound on proof size (Theorem 1.8, one-round
          schemes); [0] disables the check *)
}

type budget_violation =
  | Rounds_exceeded of { claimed : int; measured : int }
  | Schedule_mismatch of { claimed : phase list; measured : phase list }
  | Proof_size_exceeded of { claimed : int; measured : int }
  | Proof_size_below_floor of { floor : int; measured : int }

val check_budget : budget -> stats -> budget_violation list
(** [[]] iff the measured stats respect the declared budget.  The phase
    check is prefix agreement: component folds keep only the top-level
    meter's phase list, so a measured schedule may be a strict prefix of
    the declared one. *)

val pp_budget_violation : Format.formatter -> budget_violation -> unit

val pp_phases : Format.formatter -> phase list -> unit
(** Renders a schedule as ["P-V-P-V-P"]. *)

type verdict = { accepted : bool; rejecting : int list }

val all_accept : n:int -> (int -> bool) -> verdict
(** Runs the per-node decision function and collects rejections. *)

val pp_stats : Format.formatter -> stats -> unit

val pp_per_phase : Format.formatter -> stats -> unit
(** Renders the round schedule with per-phase maximum label sizes, e.g.
    ["P19 V30 P80 V18 P90"]. *)

val transcript : meter -> (phase * Bits.t array) list
(** The retained label/coin arrays in round order; empty unless the meter
    was created with [retain:true]. *)

val pp_transcript : ?max_nodes:int -> Format.formatter -> (phase * Bits.t array) list -> unit
(** Bit-level rendering of a transcript, one row per node, truncated to
    [max_nodes] (default 16). *)

val merge_trials : stats list -> stats
(** Stats of independent repetitions (trials) of the same protocol: the
    proof-size, node-total and per-phase columns are pointwise maxima over
    the trials (an envelope — no labels concatenate across trials), while
    the prover/verifier bit totals add, giving the cumulative work of the
    whole trial batch.  Rounds are the max; the longer schedule wins.
    Raises [Invalid_argument] on the empty list, and when two inputs
    disagree on a phase kind at the same round (a prover round merged into
    a verifier round would mis-account bits): the shorter schedule must be
    a prefix of the longer. *)

val merge_parallel : stats list -> stats
(** Stats of protocols executed in parallel (same rounds, labels
    concatenated per phase): rounds = max, label sizes and totals add.
    The proof size is the sum of component proof sizes — an upper bound on
    the true concatenated maximum that preserves every asymptotic claim.
    [per_phase] is merged round by round (summing the per-round phase
    maxima, since round-i labels concatenate); rounds beyond the shorter
    schedule are kept from the longer one.  Raises [Invalid_argument] on
    the empty list, and when two inputs disagree on a phase kind at the
    same round: the shorter schedule must be a prefix of the longer. *)
