(** Adapters that turn protocol executions into {!Net.protocol} values.

    Two depths of fidelity:

    - {e Semantic} adapters ({!pls_spanning_tree}, {!st_verify},
      {!multiset_eq}) re-implement the per-node decision at the bit level:
      each node serializes its own labels, ships them over the faulty
      links, and the receiver decodes its neighbors' frames and replays the
      protocol's local checks on the decoded values.  A flipped bit reaches
      the verifier (checksum off) and flips the decision exactly when the
      corrupted field participates in a check — this measures the
      robustness of the {e proof itself} to corruption.

    - The {e transport} wrapper ({!transport}) runs any synchronous
      protocol result over a checksummed transport: corrupted frames are
      detected and discarded (the retransmission chain covers them like
      drops), so degradation comes entirely from delivery — drops past the
      retry budget, late frames, crashes, quorum loss.  This wraps every
      E2–E8 family without re-deriving its verifier. *)

val pls_spanning_tree : graph:Graph.t -> parent:int array -> Net.protocol
(** The one-round distance-labeling PLS ({!Dipp_baselines.Pls_spanning_tree}):
    node labels are tree depths; each node checks its parent's decoded
    depth is its own minus one. *)

val st_verify :
  ?reps:int -> ?tag_bits:int -> seed:int -> Graph.t -> parent:int array -> Net.protocol
(** Lemma 2.5 spanning-tree verification: the exchanged label is the
    round-3 response (per repetition a sum and a tau); receivers replay the
    subtree-sum, parent-tau and cross-edge-tau checks on decoded frames.
    Checks that need an unheard child/parent are skipped (degradation);
    a frame that fails to parse rejects outright. *)

val multiset_eq : seed:int -> Multiset_equality.instance -> Net.protocol
(** Lemma 2.6 multiset equality over a rooted tree: labels carry
    [(z, e1, e2)]; receivers replay the aggregation products, the z echo
    against the parent and the root's equality check on decoded values. *)

val transport :
  name:string -> graph:Graph.t -> stats:Dip.stats -> verdict:Dip.verdict -> Net.protocol
(** Checksummed-transport wrapper around any synchronous run: frames carry
    the per-prover-phase label envelope of [stats], and a node's local
    check is its verdict in [verdict].  With {!Fault.reliable} this
    reduces exactly to the synchronous outcome. *)
