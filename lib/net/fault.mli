(** Pluggable link/node fault models for the {!Net} runtime.

    A [model] is a bundle of per-message fault probabilities (drop,
    bit-corruption, duplication, extra delay) plus a per-node crash-stop
    probability.  Every random draw is taken from an {!Rng} stream derived
    with {!Rng.split_string} from the run seed and a textual key — the link
    id and delivery index for message faults, the node id for crashes — so
    a fault schedule is a pure function of [(seed, key)] and is identical
    for every worker count and event-processing order. *)

type model = {
  name : string;  (** short id, used in sweep reports *)
  drop : float;  (** P(transmission silently lost, all copies) *)
  corrupt : float;  (** P(one uniformly chosen payload bit flipped), per copy *)
  duplicate : float;  (** P(a second copy is sent) *)
  delay : float;  (** P(a copy is held back), per copy *)
  max_delay : int;  (** held-back copies arrive [1..max_delay] ticks later *)
  crash : float;  (** P(a node crash-stops at a uniform round) *)
}

val reliable : model
(** No faults: the runtime degenerates to a synchronous exchange. *)

val drop : rate:float -> model
val corrupt : rate:float -> model
val duplicate : rate:float -> model

val delay : ?max_delay:int -> rate:float -> unit -> model
(** Default [max_delay] is 96 ticks — far past the default per-round
    deadline, so delayed copies exercise both reordering and late loss. *)

val crash : rate:float -> model

val chaos : rate:float -> model
(** All five fault kinds at once, each scaled from [rate]. *)

val by_name : string -> rate:float -> model option
(** Resolve a model by its [name] field (CLI/report front end). *)

type delivery = { at : int; payload : Bits.t; corrupted : bool }

type outcome = { deliveries : delivery list; was_dropped : bool; was_duplicated : bool }

val transmit :
  rng:Rng.t -> link:string -> ix:int -> now:int -> latency:int -> model -> Bits.t -> outcome
(** One transmission attempt of [payload] on [link]: the fault draws come
    from the stream keyed by [(rng seed, link, ix)]; delivered copies carry
    their (possibly corrupted) payload and absolute arrival time
    [now + latency + extra]. *)

val crash_round : rng:Rng.t -> node:int -> rounds:int -> model -> int option
(** [Some r] iff the node crash-stops at the start of round [r]; drawn from
    the stream keyed by [(rng seed, "crash#node")]. *)

val pp : Format.formatter -> model -> unit
