let width_for n =
  let rec go w = if 1 lsl w >= max 2 n then w else go (w + 1) in
  go 1

let zeros len = if len = 0 then Bits.empty else Bits.of_string (String.make len '0')

let children_of_parent parent =
  let n = Array.length parent in
  let children = Array.make n [] in
  Array.iteri (fun v p -> if p >= 0 then children.(p) <- v :: children.(p)) parent;
  children

(* ---- PLS spanning tree (one prover round; Theorem 1.8 baseline) ------- *)

let pls_spanning_tree ~graph ~parent =
  let n = Graph.n graph in
  let width = width_for n in
  let dist = Array.make n (-1) in
  let rec depth v =
    if dist.(v) >= 0 then dist.(v)
    else begin
      let r = if parent.(v) < 0 then 0 else 1 + depth parent.(v) in
      dist.(v) <- r;
      r
    end
  in
  for v = 0 to n - 1 do
    ignore (depth v)
  done;
  let rounds = [| Array.init n (fun v -> Bits.of_int ~width dist.(v)) |] in
  let node_check v recv =
    if parent.(v) < 0 then dist.(v) = 0
    else
      Graph.mem_edge graph v parent.(v)
      && dist.(v) >= 1
      &&
      match recv parent.(v) with
      | None -> true (* degraded: the parent label never arrived; skip *)
      | Some frames -> Bits.to_int frames.(0) = dist.(v) - 1
  in
  { Net.name = "pls-spanning-tree"; graph; rounds; checksum = false; node_check }

(* ---- spanning-tree verification (Lemma 2.5, NPY reconstruction) ------- *)

(* The exchanged label is the round-3 response: per repetition, a q-width
   sum and a tag_bits tau.  The receiver decodes its neighbors' frames
   bit-by-bit and replays the local checks of
   [Spanning_tree_verify.verify_node] on the decoded values. *)
let st_verify ?(reps = 4) ?(tag_bits = 4) ~seed graph ~parent =
  let rng = Rng.create seed in
  let coins = Spanning_tree_verify.draw_coins ~reps ~tag_bits ~parent rng in
  let resp = Spanning_tree_verify.honest_response ~reps ~parent coins in
  let rounds = [| Spanning_tree_verify.response_to_bits ~tag_bits resp |] in
  let children = children_of_parent parent in
  let decode b =
    let r = Bits.Reader.of_bits b in
    let rec go rep acc =
      if rep = reps then Some (Array.of_list (List.rev acc))
      else
        let s = Bits.Reader.int r ~width:Spanning_tree_verify.q_bits in
        let tau = Bits.Reader.bits r ~len:tag_bits in
        go (rep + 1) ((s, tau) :: acc)
    in
    match go 0 [] with decoded -> decoded | exception Bits.Reader.Underflow -> None
  in
  let node_check v recv =
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun u ->
        match recv u with
        | None -> ()
        | Some frames -> Hashtbl.replace seen u (decode frames.(0)))
      (Graph.neighbors graph v);
    let decoded u =
      match Hashtbl.find_opt seen u with Some d -> d | None -> None
    in
    let heard u = Hashtbl.mem seen u in
    let ok = ref true in
    (* a frame that arrived but does not parse is a hard rejection *)
    Hashtbl.iter (fun _ d -> match d with None -> ok := false | Some _ -> ()) seen;
    for rep = 0 to reps - 1 do
      (* (a) subtree-sum equation — verifiable only with every child heard *)
      (if List.for_all heard children.(v) then
         let expect =
           List.fold_left
             (fun acc c ->
               match decoded c with
               | Some d ->
                   let s, _ = d.(rep) in
                   (acc + s) mod Spanning_tree_verify.q
               | None -> acc)
             coins.Spanning_tree_verify.xs.(rep).(v)
             children.(v)
         in
         if resp.Spanning_tree_verify.sums.(rep).(v) <> expect then ok := false);
      (* (b) tau agrees with the parent (roots check their own tag) *)
      let tau = resp.Spanning_tree_verify.taus.(rep).(v) in
      (if parent.(v) < 0 then
         match coins.Spanning_tree_verify.tags.(rep).(v) with
         | Some t -> if not (Bits.equal tau t) then ok := false
         | None -> ok := false
       else
         match decoded parent.(v) with
         | Some d ->
             let _, ptau = d.(rep) in
             if not (Bits.equal tau ptau) then ok := false
         | None -> () (* degraded: parent unheard *));
      (* (c) tau agrees across every heard G-edge *)
      Array.iter
        (fun u ->
          match decoded u with
          | Some d ->
              let _, utau = d.(rep) in
              if not (Bits.equal tau utau) then ok := false
          | None -> ())
        (Graph.neighbors graph v)
    done;
    !ok
  in
  { Net.name = "st-verify"; graph; rounds; checksum = false; node_check }

(* ---- multiset equality (Lemma 2.6, two rounds) ------------------------ *)

let multiset_eq ~seed (inst : Multiset_equality.instance) =
  let rng = Rng.create seed in
  let z = Multiset_equality.sample_z inst rng in
  let l = Multiset_equality.honest_labels inst ~z in
  let rounds = [| Multiset_equality.labels_to_bits inst l |] in
  let f = Multiset_equality.field inst in
  let w = Fp.bit_width f in
  let children = children_of_parent inst.Multiset_equality.parent in
  let decode b =
    match
      let r = Bits.Reader.of_bits b in
      let zr = Bits.Reader.int r ~width:w in
      let e1 = Bits.Reader.int r ~width:w in
      let e2 = Bits.Reader.int r ~width:w in
      (zr, e1, e2)
    with
    | decoded -> Some decoded
    | exception Bits.Reader.Underflow -> None
  in
  let tree = inst.Multiset_equality.tree in
  let node_check v recv =
    let parent = inst.Multiset_equality.parent in
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun u ->
        match recv u with
        | None -> ()
        | Some frames -> Hashtbl.replace seen u (decode frames.(0)))
      (Graph.neighbors tree v);
    let decoded u =
      match Hashtbl.find_opt seen u with Some d -> d | None -> None
    in
    let heard u = Hashtbl.mem seen u in
    let ok = ref true in
    Hashtbl.iter (fun _ d -> match d with None -> ok := false | Some _ -> ()) seen;
    (* aggregation equations, verifiable only with every child heard *)
    (if List.for_all heard children.(v) then begin
       let expect pick own =
         List.fold_left
           (fun acc c ->
             match decoded c with
             | Some d -> Fp.mul f acc (pick d)
             | None -> acc)
           own children.(v)
       in
       let own1 = Poly.eval f inst.Multiset_equality.s1.(v) l.Multiset_equality.z in
       let own2 = Poly.eval f inst.Multiset_equality.s2.(v) l.Multiset_equality.z in
       if l.Multiset_equality.e1.(v) <> expect (fun (_, e1, _) -> e1) own1 then ok := false;
       if l.Multiset_equality.e2.(v) <> expect (fun (_, _, e2) -> e2) own2 then ok := false
     end);
    (* z echo: the parent's broadcast z must match the local copy *)
    (if parent.(v) >= 0 then
       match decoded parent.(v) with
       | Some (zr, _, _) -> if zr <> l.Multiset_equality.z then ok := false
       | None -> ());
    (* root: z is the sampled coin and the two full evaluations agree *)
    (if parent.(v) < 0 then begin
       if l.Multiset_equality.z <> z then ok := false;
       if l.Multiset_equality.e1.(v) <> l.Multiset_equality.e2.(v) then ok := false
     end);
    !ok
  in
  {
    Net.name = "multiset-eq";
    graph = inst.Multiset_equality.tree;
    rounds;
    checksum = false;
    node_check;
  }

(* ---- checksummed transport wrapper (any E2-E8 protocol) --------------- *)

(* Runs any protocol's synchronous verdict over a CRC'd transport: frames
   carry the per-phase label envelope (content is irrelevant once a frame
   check discards corrupted copies), a node's local check is its original
   verdict, and degradation comes entirely from the delivery layer —
   Strict demands the whole neighborhood, Degrade applies the quorum. *)
let transport ~name ~graph ~(stats : Dip.stats) ~(verdict : Dip.verdict) =
  let n = Graph.n graph in
  let prover_sizes =
    List.filter_map
      (fun (ph, bits) ->
        match ph with Dip.Prover_phase -> Some bits | Dip.Verifier_phase -> None)
      stats.Dip.per_phase
  in
  let rounds =
    Array.of_list (List.map (fun bits -> Array.init n (fun _ -> zeros bits)) prover_sizes)
  in
  let rejected = Array.make n false in
  List.iter (fun v -> if v >= 0 && v < n then rejected.(v) <- true) verdict.Dip.rejecting;
  let node_check v _recv = not rejected.(v) in
  { Net.name; graph; rounds; checksum = true; node_check }
