type model = {
  name : string;
  drop : float;
  corrupt : float;
  duplicate : float;
  delay : float;
  max_delay : int;
  crash : float;
}

let reliable =
  { name = "reliable"; drop = 0.; corrupt = 0.; duplicate = 0.; delay = 0.; max_delay = 0; crash = 0. }

let drop ~rate = { reliable with name = "drop"; drop = rate }
let corrupt ~rate = { reliable with name = "corrupt"; corrupt = rate }
let duplicate ~rate = { reliable with name = "duplicate"; duplicate = rate; max_delay = 4 }
let delay ?(max_delay = 96) ~rate () = { reliable with name = "delay"; delay = rate; max_delay }
let crash ~rate = { reliable with name = "crash"; crash = rate }

let chaos ~rate =
  {
    name = "chaos";
    drop = rate /. 2.;
    corrupt = rate /. 2.;
    duplicate = rate /. 2.;
    delay = rate;
    max_delay = 64;
    crash = rate /. 10.;
  }

let by_name name ~rate =
  match name with
  | "reliable" -> Some reliable
  | "drop" -> Some (drop ~rate)
  | "corrupt" -> Some (corrupt ~rate)
  | "duplicate" -> Some (duplicate ~rate)
  | "delay" -> Some (delay ~rate ())
  | "crash" -> Some (crash ~rate)
  | "chaos" -> Some (chaos ~rate)
  | _ -> None

(* A probability draw consumes exactly one Rng.int from the stream, so the
   draw sequence of a transmission is a fixed function of the stream alone. *)
let million = 1_000_000

let chance rng p =
  if p <= 0. then false
  else if p >= 1. then true
  else Rng.int rng million < int_of_float (p *. float_of_int million)

let flip_bit b i =
  let s = Bytes.of_string (Bits.to_string b) in
  Bytes.set s i (match Bytes.get s i with '0' -> '1' | _ -> '0');
  Bits.of_string (Bytes.to_string s)

type delivery = { at : int; payload : Bits.t; corrupted : bool }
type outcome = { deliveries : delivery list; was_dropped : bool; was_duplicated : bool }

(* The per-delivery stream: keyed by (run seed, link id, delivery index)
   through Rng.split_string, so the draw depends on neither event-queue
   order nor worker count (ANALYSIS.md, determinism contract). *)
let stream ~rng ~link ~ix = Rng.split_string rng (Printf.sprintf "%s#%d" link ix)

let transmit ~rng ~link ~ix ~now ~latency m payload =
  let s = stream ~rng ~link ~ix in
  if chance s m.drop then { deliveries = []; was_dropped = true; was_duplicated = false }
  else begin
    let dup = chance s m.duplicate in
    let copy () =
      let corrupted = chance s m.corrupt && Bits.length payload > 0 in
      let payload = if corrupted then flip_bit payload (Rng.int s (Bits.length payload)) else payload in
      let extra =
        if m.max_delay > 0 && chance s m.delay then 1 + Rng.int s m.max_delay else 0
      in
      { at = now + latency + extra; payload; corrupted }
    in
    let first = copy () in
    let deliveries = if dup then [ first; copy () ] else [ first ] in
    { deliveries; was_dropped = false; was_duplicated = dup }
  end

let crash_round ~rng ~node ~rounds m =
  if rounds <= 0 then None
  else
    let s = Rng.split_string rng (Printf.sprintf "crash#%d" node) in
    if chance s m.crash then Some (Rng.int s rounds) else None

let pp ppf m =
  Format.fprintf ppf
    "%s{drop=%.3f corrupt=%.3f dup=%.3f delay=%.3f(max %d) crash=%.3f}" m.name m.drop m.corrupt
    m.duplicate m.delay m.max_delay m.crash
