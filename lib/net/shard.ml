(* Sharded conservative-window event engine.  See shard.mli for the
   determinism argument; the invariants the code below maintains are:

   1. Owner-locality: an event is processed on the shard owning its
      owner node, and only touches state keyed by that node ([acked] at
      the source, [got] at the destination, [link_ix] at a link's origin).
   2. Structural order: heaps are keyed (time, (kind|round|src), (dst|
      attempt|copy)) — computable from the event alone, so every owner
      sees its events in the same order under any partition.  The only
      equal-key pairs are Acks for the same (src, dst, round), whose
      effects commute (idempotent replace + commutative counter).
   3. Lookahead: every scheduled successor lands at least
      min(latency, timeout) >= 1 ticks after its cause, so a window
      [T, T + W) with W = max 1 (min latency timeout) is closed under
      causality: nothing generated inside it belongs to it.

   Cross-window parallelism uses the same shape as Dipp_engine.Pool
   (atomic claim counter, task-indexed result cells, first-error CAS) —
   the idioms dipp-race proves safe.  Shard records are only ever touched
   by the task whose index owns them, and everything a window exports
   travels through the pure result array. *)

let clamp_shards s = if s < 1 then 1 else if s > 64 then 64 else s

(* Written only by [default_shards], i.e. on the caller's own domain
   before any worker is spawned.  (* dipp-race: domain-local *) *)
let warned_invalid_shards = ref false

let default_shards () =
  match Sys.getenv_opt "DIPP_SHARDS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 1 -> clamp_shards v
      | Some _ | None ->
          if not !warned_invalid_shards then begin
            warned_invalid_shards := true;
            Printf.eprintf "DIPP_SHARDS=%s is not a positive integer; using one shard\n%!" s
          end;
          1)
  | None -> 4

(* Pool.run's claim-counter fan-out, replicated here because dipp_engine
   depends on dipp_net (the dependency cannot point the other way). *)
let par_run ~jobs n f =
  if n < 0 then invalid_arg "Shard.par_run";
  let jobs = if jobs < 1 then 1 else if jobs > 64 then 64 else jobs in
  let jobs = min jobs (max 1 n) in
  if jobs <= 1 || n <= 1 then Array.init n f
  else begin
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i with
          | v -> results.(i) <- Some v
          | exception e -> ignore (Atomic.compare_and_set first_error None (Some e)));
          match Atomic.get first_error with None -> loop () | Some _ -> ()
        end
      in
      loop ()
    in
    let spawned = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    match Atomic.get first_error with
    | Some e -> raise e
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

type run_stats = { shards : int; windows : int; events : int; cross_messages : int }

type ev =
  | Send of { src : int; dst : int; round : int; attempt : int }
  | Data of { src : int; dst : int; round : int; payload : Bits.t; corrupted : bool }
  | Ack of { src : int; dst : int; round : int }

(* kind ranks: Ack 0, Data 1, Send 2 — at one node and tick, settle
   acknowledgements first, then receipts, then (re)transmissions *)
let k1_of ~kind ~round ~src = (((kind lsl 8) lor round) lsl 30) lor src
let k2_of ~dst ~attempt ~copy = (dst lsl 5) lor (attempt lsl 1) lor copy

type shard_state = {
  heap : ev Min_heap.t;
  link_ix : (int, int) Hashtbl.t;  (* origin-owned directed link -> next delivery ix *)
  acked : (int, unit) Hashtbl.t;  (* (src, dst, round), source-owned *)
  got : (int, Bits.t) Hashtbl.t;  (* (dst, src, round), destination-owned *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable late : int;
  mutable retransmits : int;
  mutable acks : int;
  mutable events : int;
}

let link_id u v = Printf.sprintf "%d>%d" u v

let execute_ex ?(config = Net.default_config) ?(mode = Net.Strict) ?shards ?jobs
    ?(partition_seed = 0) ~rng ~model (proto : Net.protocol) =
  let cfg = config in
  if cfg.Net.latency < 1 || cfg.Net.timeout < 1 then
    invalid_arg "Shard.execute: latency and timeout must be >= 1 (the window lookahead)";
  if cfg.Net.retries < 0 || cfg.Net.retries > 14 then
    invalid_arg "Shard.execute: retries must be in [0, 14] (structural-key packing)";
  let g = proto.Net.graph in
  let n = Graph.n g in
  if n >= 1 lsl 27 then invalid_arg "Shard.execute: n >= 2^27 (structural-key packing)";
  let nrounds = Array.length proto.Net.rounds in
  if nrounds > 255 then invalid_arg "Shard.execute: more than 255 rounds";
  let nshards = clamp_shards (match shards with Some s -> s | None -> default_shards ()) in
  let jobs =
    match jobs with
    | Some j -> j
    | None -> min 64 (Domain.recommended_domain_count ())
  in
  let part = Partition.make ~seed:partition_seed ~blocks:nshards g in
  let nsh = part.Partition.nblocks in
  let round_start r = r * cfg.Net.phase_gap in
  let lookahead = max 1 (min cfg.Net.latency cfg.Net.timeout) in
  (* (a, b, r) packed; n < 2^27 and r < 256 keep this well inside 62 bits *)
  let key3 a b r = (((a * n) + b) * 256) + r in
  let crash_at = Array.make (max 1 n) max_int in
  for v = 0 to n - 1 do
    match Fault.crash_round ~rng ~node:v ~rounds:nrounds model with
    | Some r -> crash_at.(v) <- round_start r
    | None -> ()
  done;
  let mk_shard () =
    {
      heap = Min_heap.create ~capacity:256 ~dummy:(Ack { src = 0; dst = 0; round = 0 }) ();
      link_ix = Hashtbl.create 64;
      acked = Hashtbl.create 64;
      got = Hashtbl.create 64;
      sent = 0;
      delivered = 0;
      dropped = 0;
      corrupted = 0;
      duplicated = 0;
      late = 0;
      retransmits = 0;
      acks = 0;
      events = 0;
    }
  in
  let shards_st = Array.init nsh (fun _ -> mk_shard ()) in
  (* initial sends: round r's labels leave at the round start, one message
     per directed edge, enqueued at the source's shard *)
  for r = 0 to nrounds - 1 do
    for v = 0 to n - 1 do
      let h = shards_st.(part.Partition.block.(v)).heap in
      Array.iter
        (fun u ->
          Min_heap.push h ~k0:(round_start r)
            ~k1:(k1_of ~kind:2 ~round:r ~src:v)
            ~k2:(k2_of ~dst:u ~attempt:0 ~copy:0)
            (Send { src = v; dst = u; round = r; attempt = 0 }))
        (Graph.neighbors g v)
    done
  done;
  (* One window on shard [s]: pop every event before [limit], mutate only
     this shard's state, and collect arrivals owned elsewhere into [out]
     (a pure per-destination-shard list array, the task's return value). *)
  let process_window s limit =
    let sh = shards_st.(s) in
    let out = Array.make nsh [] in
    let emit ~at ~key1 ~key2 ~owner e =
      let t = part.Partition.block.(owner) in
      if t = s then Min_heap.push sh.heap ~k0:at ~k1:key1 ~k2:key2 e
      else out.(t) <- (at, key1, key2, e) :: out.(t)
    in
    let transmit ~now ~kind ~round ~ksrc ~kdst ~kattempt ~owner u v payload mk =
      let lk = (u * n) + v in
      let ix = match Hashtbl.find_opt sh.link_ix lk with Some i -> i | None -> 0 in
      Hashtbl.replace sh.link_ix lk (ix + 1);
      let o =
        Fault.transmit ~rng ~link:(link_id u v) ~ix ~now ~latency:cfg.Net.latency model payload
      in
      if o.Fault.was_dropped then sh.dropped <- sh.dropped + 1;
      if o.Fault.was_duplicated then sh.duplicated <- sh.duplicated + 1;
      List.iteri
        (fun copy d ->
          if d.Fault.corrupted then sh.corrupted <- sh.corrupted + 1;
          emit ~at:d.Fault.at
            ~key1:(k1_of ~kind ~round ~src:ksrc)
            ~key2:(k2_of ~dst:kdst ~attempt:kattempt ~copy)
            ~owner
            (mk d.Fault.payload d.Fault.corrupted))
        o.Fault.deliveries
    in
    let handle now ev =
      match ev with
      | Send { src; dst; round; attempt } ->
          if now < crash_at.(src) && not (Hashtbl.mem sh.acked (key3 src dst round)) then begin
            if attempt > 0 then sh.retransmits <- sh.retransmits + 1;
            sh.sent <- sh.sent + 1;
            if attempt < cfg.Net.retries then
              emit
                ~at:(now + (cfg.Net.timeout * (1 lsl attempt)))
                ~key1:(k1_of ~kind:2 ~round ~src)
                ~key2:(k2_of ~dst ~attempt:(attempt + 1) ~copy:0)
                ~owner:src
                (Send { src; dst; round; attempt = attempt + 1 });
            transmit ~now ~kind:1 ~round ~ksrc:src ~kdst:dst ~kattempt:attempt ~owner:dst src dst
              proto.Net.rounds.(round).(src) (fun payload corrupted ->
                Data { src; dst; round; payload; corrupted })
          end
      | Data { src; dst; round; payload; corrupted } ->
          sh.delivered <- sh.delivered + 1;
          if now < crash_at.(dst) then
            if proto.Net.checksum && corrupted then
              (* the frame check detects the flip: discard silently, so the
                 sender's retransmission chain covers it like a drop *)
              ()
            else begin
              if now > round_start round + cfg.Net.deadline then sh.late <- sh.late + 1
              else if not (Hashtbl.mem sh.got (key3 dst src round)) then
                Hashtbl.replace sh.got (key3 dst src round) payload;
              (* always acknowledge a structurally valid frame, even a late
                 or duplicate one, to quiet the sender *)
              sh.acks <- sh.acks + 1;
              transmit ~now ~kind:0 ~round ~ksrc:src ~kdst:dst ~kattempt:0 ~owner:src dst src
                Bits.empty (fun _ _ -> Ack { src; dst; round })
            end
      | Ack { src; dst; round } ->
          sh.delivered <- sh.delivered + 1;
          Hashtbl.replace sh.acked (key3 src dst round) ()
    in
    let rec go () =
      match Min_heap.min_k0 sh.heap with
      | Some t when t < limit -> (
          match Min_heap.pop_min sh.heap with
          | Some (at, _, _, e) ->
              sh.events <- sh.events + 1;
              handle at e;
              go ()
          | None -> ())
      | Some _ | None -> ()
    in
    go ();
    out
  in
  let windows = ref 0 in
  let cross = ref 0 in
  let next_time () =
    let t = ref max_int in
    Array.iter
      (fun sh -> match Min_heap.min_k0 sh.heap with Some x -> if x < !t then t := x | None -> ())
      shards_st;
    if !t = max_int then None else Some !t
  in
  let rec window_loop () =
    match next_time () with
    | None -> ()
    | Some t ->
        incr windows;
        let limit = t + lookahead in
        let outs = par_run ~jobs nsh (fun s -> process_window s limit) in
        (* merge in (source shard, destination shard) order; the heap keys
           make any merge order equivalent (unique keys or commuting Acks) *)
        Array.iter
          (fun out ->
            for tdst = 0 to nsh - 1 do
              List.iter
                (fun (at, key1, key2, e) ->
                  incr cross;
                  Min_heap.push shards_st.(tdst).heap ~k0:at ~k1:key1 ~k2:key2 e)
                out.(tdst)
            done)
          outs;
        window_loop ()
  in
  window_loop ();
  (* ---- decisions: per shard in parallel, merged in node order ---- *)
  let decide s =
    let sh = shards_st.(s) in
    let members = part.Partition.blocks.(s) in
    let len = Array.length members in
    let status = Array.make len 0 in
    (* 0 ok / 1 rejecting / 2 crashed *)
    let frac = Array.make len 0. in
    Array.iteri
      (fun i v ->
        if crash_at.(v) < max_int then status.(i) <- 2
        else begin
          let ns = Graph.neighbors g v in
          let deg = Array.length ns in
          let view_of u =
            let rec collect r acc =
              if r < 0 then Some (Array.of_list acc)
              else
                (* the packed key addresses v's own receive store at the
                   bound neighbor u — local by construction, just opaque
                   to the analyzer behind the key3 arithmetic *)
                match
                  Hashtbl.find_opt sh.got (key3 v u r) (* dipp-lint: allow locality-index flow-locality *)
                with
                | Some b -> collect (r - 1) (b :: acc)
                | None -> None
            in
            collect (nrounds - 1) []
          in
          let views = Array.map (fun u -> (u, view_of u)) ns in
          let visible =
            Array.fold_left
              (fun acc (_, w) -> match w with Some _ -> acc + 1 | None -> acc)
              0 views
          in
          frac.(i) <- (if deg = 0 then 1. else float_of_int visible /. float_of_int deg);
          let fetch u =
            let found = ref None in
            Array.iter (fun (u', w) -> if u' = u then found := w) views;
            !found
          in
          let ok =
            match mode with
            | Net.Strict -> visible = deg && proto.Net.node_check v fetch
            | Net.Degrade { quorum } ->
                (deg = 0 || float_of_int visible >= quorum *. float_of_int deg)
                && proto.Net.node_check v fetch
          in
          if not ok then status.(i) <- 1
        end)
      members;
    (status, frac)
  in
  let decisions = par_run ~jobs nsh decide in
  let crashed_nodes = ref [] in
  let rejecting = ref [] in
  let heard_sum = ref 0. in
  let live = ref 0 in
  for v = n - 1 downto 0 do
    let status, frac = decisions.(part.Partition.block.(v)) in
    let i = part.Partition.pos.(v) in
    match status.(i) with
    | 2 -> crashed_nodes := v :: !crashed_nodes
    | s ->
        incr live;
        heard_sum := !heard_sum +. frac.(i);
        if s = 1 then rejecting := v :: !rejecting
  done;
  let crashed_nodes = !crashed_nodes and rejecting = !rejecting in
  let accepted =
    n = 0 || (!live > 0 && (match rejecting with [] -> true | _ :: _ -> false))
  in
  let sum f = Array.fold_left (fun acc sh -> acc + f sh) 0 shards_st in
  let result =
    {
      Net.accepted;
      rejecting;
      crashed_nodes;
      heard = (if !live = 0 then 0. else !heard_sum /. float_of_int !live);
      stats =
        {
          Net.sent = sum (fun sh -> sh.sent);
          delivered = sum (fun sh -> sh.delivered);
          dropped = sum (fun sh -> sh.dropped);
          corrupted = sum (fun sh -> sh.corrupted);
          duplicated = sum (fun sh -> sh.duplicated);
          late = sum (fun sh -> sh.late);
          retransmits = sum (fun sh -> sh.retransmits);
          acks = sum (fun sh -> sh.acks);
        };
    }
  in
  ( result,
    {
      shards = nsh;
      windows = !windows;
      events = sum (fun sh -> sh.events);
      cross_messages = !cross;
    } )

let execute ?config ?mode ?shards ?jobs ?partition_seed ~rng ~model proto =
  fst (execute_ex ?config ?mode ?shards ?jobs ?partition_seed ~rng ~model proto)
