(** Sharded discrete-event execution of {!Net} protocols across Domains.

    The graph is split into blocks by {!Dipp_graph.Partition}; each block
    runs its own event heap, fault-stream indices and per-node message
    state, and the shards advance in conservative time windows: every
    window processes the events in [\[T, T + W)] where [T] is the global
    minimum pending event time and the lookahead
    [W = max 1 (min latency timeout)] under-approximates the minimum
    scheduling distance of the runtime (every handled event schedules its
    successors at least [min latency timeout >= 1] ticks later), so no
    event generated inside a window can land in that same window.
    Cross-shard arrivals are returned as pure values and merged by the
    coordinator between windows.

    {2 Determinism contract}

    The returned {!Net.result} is a pure function of
    [(protocol, config, mode, model, rng seed)].  It is {e independent} of
    the shard count, the worker count, and the partition seed:

    - every event has a unique owner node (a [Send] and an [Ack] execute
      at their source, a [Data] at its destination), and all mutable
      runtime state is keyed by the owner — so two events interact only
      when they share an owner, and a partition boundary can never sit
      between them;
    - events are ordered by a structural key
      [(time, kind, round, src, dst, attempt, copy)] computed from the
      event alone (no global insertion counter), so each owner processes
      its events in the same order under any partition; the only key
      collisions are between [Ack]s of the same [(src, dst, round)],
      whose effects commute;
    - per-link delivery indices (the {!Fault} stream keys) are assigned
      by the link's origin node in that same structural order, so the
      fault schedule is partition-invariant;
    - the decision phase runs per shard but is merged in ascending node
      order, so float accumulation ([heard]) associates identically for
      every shard count.

    [execute] therefore differs from {!Net.execute} only in the
    within-tick processing order (structural vs. insertion order) — the
    two engines agree bit-for-bit under {!Fault.reliable}, and each pins
    its own golden acceptance curves under faults.

    Requires [config.latency >= 1], [config.timeout >= 1] (the lookahead
    argument above), [retries <= 14], at most 255 rounds and
    [n < 2^27] (structural-key packing). *)

type run_stats = {
  shards : int;  (** shard count actually used (clamped to [n]) *)
  windows : int;  (** synchronization windows executed *)
  events : int;  (** events processed, summed over shards *)
  cross_messages : int;
      (** scheduled arrivals whose origin and owner lie in different
          shards — the merge traffic; depends on the partition, so it
          never feeds a report that must be shard-count-invariant *)
}

val default_shards : unit -> int
(** The [DIPP_SHARDS] environment variable if set to a positive integer
    (clamped to [\[1, 64\]]), else 4.  A set-but-invalid value degrades to
    1 with a one-line warning, mirroring [DIPP_JOBS] handling.  The shard
    count never changes any result — only the parallel layout. *)

val execute_ex :
  ?config:Net.config ->
  ?mode:Net.degradation ->
  ?shards:int ->
  ?jobs:int ->
  ?partition_seed:int ->
  rng:Rng.t ->
  model:Fault.model ->
  Net.protocol ->
  Net.result * run_stats
(** [shards] defaults to {!default_shards}[ ()]; [jobs] (the Domain
    count, clamped to [\[1, 64\]] and to the shard count) defaults to
    [Domain.recommended_domain_count ()]; [partition_seed] defaults
    to 0. *)

val execute :
  ?config:Net.config ->
  ?mode:Net.degradation ->
  ?shards:int ->
  ?jobs:int ->
  ?partition_seed:int ->
  rng:Rng.t ->
  model:Fault.model ->
  Net.protocol ->
  Net.result
(** [fst (execute_ex ...)]. *)
