type config = {
  latency : int;
  timeout : int;
  retries : int;
  phase_gap : int;
  deadline : int;
}

let default_config = { latency = 1; timeout = 4; retries = 3; phase_gap = 64; deadline = 60 }

type degradation = Strict | Degrade of { quorum : float }

type protocol = {
  name : string;
  graph : Graph.t;
  rounds : Bits.t array array;
  checksum : bool;
  node_check : int -> (int -> Bits.t array option) -> bool;
}

type stats = {
  sent : int;
  delivered : int;
  dropped : int;
  corrupted : int;
  duplicated : int;
  late : int;
  retransmits : int;
  acks : int;
}

type result = {
  accepted : bool;
  rejecting : int list;
  crashed_nodes : int list;
  heard : float;
  stats : stats;
}

(* ---- deterministic event queue --------------------------------------- *)

(* Events are ordered by (time, insertion sequence) on an array-backed
   binary min-heap ({!Dipp_util.Min_heap}).  The simulation is
   single-threaded and inserts in a fixed order, so the sequence numbers
   are unique, the heap's pop order is exactly the (time, seq) total order
   (no equal keys ever meet), and the whole processing order — hence every
   report byte — is a pure function of the protocol, config, fault model
   and seed, exactly as it was with the previous balanced-tree queue. *)

type event =
  | Send of { src : int; dst : int; round : int; attempt : int }
  | Data of { src : int; dst : int; round : int; payload : Bits.t; corrupted : bool }
  | Ack of { src : int; dst : int; round : int }

type state = {
  queue : event Min_heap.t;
  seq : int ref;
  (* per directed link, the next delivery index (fault-stream key) *)
  link_ix : (int * int, int ref) Hashtbl.t;
  (* (src, dst, round) acknowledged — stops the retransmission chain *)
  acked : (int * int * int, unit) Hashtbl.t;
  (* (dst, src, round) -> first recorded payload *)
  got : (int * int * int, Bits.t) Hashtbl.t;
  crash_at : int array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable corrupted : int;
  mutable duplicated : int;
  mutable late : int;
  mutable retransmits : int;
  mutable acks : int;
}

let push st ~at ev =
  incr st.seq;
  Min_heap.push st.queue ~k0:at ~k1:!(st.seq) ~k2:0 ev

let next_ix st u v =
  match Hashtbl.find_opt st.link_ix (u, v) with
  | Some r ->
      let ix = !r in
      incr r;
      ix
  | None ->
      Hashtbl.replace st.link_ix (u, v) (ref 1);
      0

let link_id u v = Printf.sprintf "%d>%d" u v

let round_start cfg r = r * cfg.phase_gap

(* One transmission attempt on the directed link u -> v; schedules the
   resulting arrivals (if any) as [mk payload corrupted] events. *)
let transmit_on st ~rng ~model ~cfg ~now u v payload mk =
  let ix = next_ix st u v in
  let out =
    Fault.transmit ~rng ~link:(link_id u v) ~ix ~now ~latency:cfg.latency model payload
  in
  if out.Fault.was_dropped then st.dropped <- st.dropped + 1;
  if out.Fault.was_duplicated then st.duplicated <- st.duplicated + 1;
  List.iter
    (fun d ->
      if d.Fault.corrupted then st.corrupted <- st.corrupted + 1;
      push st ~at:d.Fault.at (mk d.Fault.payload d.Fault.corrupted))
    out.Fault.deliveries

let execute ?(config = default_config) ?(mode = Strict) ~rng ~model proto =
  let g = proto.graph in
  let n = Graph.n g in
  let nrounds = Array.length proto.rounds in
  let cfg = config in
  let crash_at = Array.make n max_int in
  for v = 0 to n - 1 do
    match Fault.crash_round ~rng ~node:v ~rounds:nrounds model with
    | Some r -> crash_at.(v) <- round_start cfg r
    | None -> ()
  done;
  let st =
    {
      queue = Min_heap.create ~capacity:1024 ~dummy:(Ack { src = 0; dst = 0; round = 0 }) ();
      seq = ref 0;
      link_ix = Hashtbl.create 64;
      acked = Hashtbl.create 64;
      got = Hashtbl.create 64;
      crash_at;
      sent = 0;
      delivered = 0;
      dropped = 0;
      corrupted = 0;
      duplicated = 0;
      late = 0;
      retransmits = 0;
      acks = 0;
    }
  in
  (* initial sends: round r's labels leave at the round start, one message
     per directed edge *)
  for r = 0 to nrounds - 1 do
    for v = 0 to n - 1 do
      Array.iter
        (fun u -> push st ~at:(round_start cfg r) (Send { src = v; dst = u; round = r; attempt = 0 }))
        (Graph.neighbors g v)
    done
  done;
  let handle now ev =
    match ev with
    | Send { src; dst; round; attempt } ->
        if now < st.crash_at.(src) && not (Hashtbl.mem st.acked (src, dst, round)) then begin
          if attempt > 0 then st.retransmits <- st.retransmits + 1;
          st.sent <- st.sent + 1;
          if attempt < cfg.retries then
            push st
              ~at:(now + (cfg.timeout * (1 lsl attempt)))
              (Send { src; dst; round; attempt = attempt + 1 });
          transmit_on st ~rng ~model ~cfg ~now src dst proto.rounds.(round).(src)
            (fun payload corrupted -> Data { src; dst; round; payload; corrupted })
        end
    | Data { src; dst; round; payload; corrupted } ->
        st.delivered <- st.delivered + 1;
        if now < st.crash_at.(dst) then
          if proto.checksum && corrupted then
            (* the frame check detects the flip: discard silently, so the
               sender's retransmission chain covers it like a drop *)
            ()
          else begin
            if now > round_start cfg round + cfg.deadline then st.late <- st.late + 1
            else if not (Hashtbl.mem st.got (dst, src, round)) then
              Hashtbl.replace st.got (dst, src, round) payload;
            (* always acknowledge a structurally valid frame, even a late
               or duplicate one, to quiet the sender *)
            st.acks <- st.acks + 1;
            transmit_on st ~rng ~model ~cfg ~now dst src Bits.empty (fun _ _ ->
                Ack { src; dst; round })
          end
    | Ack { src; dst; round } ->
        st.delivered <- st.delivered + 1;
        Hashtbl.replace st.acked (src, dst, round) ()
  in
  let rec drain () =
    match Min_heap.pop_min st.queue with
    | None -> ()
    | Some (at, _, _, ev) ->
        handle at ev;
        drain ()
  in
  drain ();
  (* ---- decisions ---- *)
  let view_of v u =
    let rec collect r acc =
      if r < 0 then Some (Array.of_list acc)
      else
        match Hashtbl.find_opt st.got (v, u, r) with
        | Some b -> collect (r - 1) (b :: acc)
        | None -> None
    in
    collect (nrounds - 1) []
  in
  let crashed_nodes = ref [] in
  let rejecting = ref [] in
  let heard_sum = ref 0. in
  let live = ref 0 in
  for v = n - 1 downto 0 do
    if st.crash_at.(v) < max_int then crashed_nodes := v :: !crashed_nodes
    else begin
      incr live;
      let ns = Graph.neighbors g v in
      let deg = Array.length ns in
      let views = Array.map (fun u -> (u, view_of v u)) ns in
      let visible =
        Array.fold_left (fun acc (_, w) -> match w with Some _ -> acc + 1 | None -> acc) 0 views
      in
      heard_sum :=
        !heard_sum +. (if deg = 0 then 1. else float_of_int visible /. float_of_int deg);
      let fetch u =
        let found = ref None in
        Array.iter (fun (u', w) -> if u' = u then found := w) views;
        !found
      in
      let ok =
        match mode with
        | Strict -> visible = deg && proto.node_check v fetch
        | Degrade { quorum } ->
            (deg = 0 || float_of_int visible >= quorum *. float_of_int deg)
            && proto.node_check v fetch
      in
      if not ok then rejecting := v :: !rejecting
    end
  done;
  let crashed_nodes = !crashed_nodes and rejecting = !rejecting in
  let accepted =
    n = 0 || (!live > 0 && (match rejecting with [] -> true | _ :: _ -> false))
  in
  {
    accepted;
    rejecting;
    crashed_nodes;
    heard = (if !live = 0 then 0. else !heard_sum /. float_of_int !live);
    stats =
      {
        sent = st.sent;
        delivered = st.delivered;
        dropped = st.dropped;
        corrupted = st.corrupted;
        duplicated = st.duplicated;
        late = st.late;
        retransmits = st.retransmits;
        acks = st.acks;
      };
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "sent=%d delivered=%d dropped=%d corrupted=%d duplicated=%d late=%d retransmits=%d acks=%d"
    s.sent s.delivered s.dropped s.corrupted s.duplicated s.late s.retransmits s.acks

(* Decision-only replay: skip the event queue entirely and hand every
   node's check the recorded per-round payloads, as if a fault-free
   network had delivered them.  [frames.(r).(u)] is node u's round-r
   label; with frames = the protocol's own [rounds], this reduces to the
   reliable-network verdict. *)
let replay_check proto ~frames =
  let n = Graph.n proto.graph in
  Dip.all_accept ~n (fun v ->
      proto.node_check v (fun u -> Some (Array.map (fun round -> round.(u)) frames)))
