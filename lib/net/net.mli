(** Deterministic discrete-event message-passing runtime for DIP execution.

    The synchronous harness hands every decision function its neighbors'
    labels by direct call; this runtime replaces that step with real
    messages.  A {!protocol} value names, per prover round, the label each
    node must ship to each neighbor; {!execute} turns every (round, edge)
    pair into transmissions on a per-edge link governed by a {!Fault.model}
    (drop, delay/reorder, duplication, bit corruption, node crash), with
    per-message acknowledgements, timeout-driven retransmission under
    bounded exponential backoff, and a per-round receive deadline.

    After the event queue drains, every live node runs the protocol's local
    check against the labels that actually arrived, under a {!degradation}
    policy: [Strict] rejects unless the full neighborhood was heard;
    [Degrade] skips unheard neighbors but rejects on quorum loss.  The run
    accepts iff no live node rejects (and at least one node survived).

    Determinism contract (ANALYSIS.md): every fault draw comes from an
    {!Rng} stream keyed by [(seed, link id, delivery index)] (crashes:
    [(seed, node id)]) via {!Rng.split_string}; the event queue breaks time
    ties by insertion order, which is itself fixed.  A run's {!result} is
    therefore a pure function of [(protocol, config, model, rng seed)] —
    byte-identical across worker counts and machines. *)

type config = {
  latency : int;  (** base link latency, ticks *)
  timeout : int;  (** initial retransmission timeout; doubles per attempt *)
  retries : int;  (** retransmission attempts after the first send *)
  phase_gap : int;  (** ticks between consecutive round starts *)
  deadline : int;  (** a round's labels must arrive within this many ticks *)
}

val default_config : config
(** [{latency = 1; timeout = 4; retries = 3; phase_gap = 64; deadline = 60}]:
    the full backoff chain (4 + 8 + 16 ticks) and a moderately delayed last
    copy still meet the deadline; anything slower is late. *)

type degradation =
  | Strict  (** reject unless every neighbor's every round arrived intact *)
  | Degrade of { quorum : float }
      (** decide from the labels that arrived; reject iff the fraction of
          fully-heard neighbors falls below [quorum] *)

type protocol = {
  name : string;
  graph : Graph.t;  (** the communication graph *)
  rounds : Bits.t array array;  (** [rounds.(r).(v)]: node [v]'s round-[r] label *)
  checksum : bool;
      (** with a frame check, corrupted arrivals are detected and discarded
          (the retransmission chain covers them like drops); without it the
          corrupted bits reach the decision function *)
  node_check : int -> (int -> Bits.t array option) -> bool;
      (** [node_check v recv]: the local decision at [v], reading neighbor
          [u]'s labels through [recv u] — [Some] per-round payloads iff every
          round from [u] arrived (possibly corrupted when [checksum] is
          off), [None] otherwise.  Must skip checks that need an unheard
          neighbor (the policy layer has already applied Strict/quorum). *)
}

type stats = {
  sent : int;  (** transmission attempts (data frames) *)
  delivered : int;  (** frames that reached a receiver (data + acks) *)
  dropped : int;  (** transmissions lost to the drop fault *)
  corrupted : int;  (** delivered copies with a flipped bit *)
  duplicated : int;  (** transmissions that spawned a second copy *)
  late : int;  (** valid frames discarded for missing the round deadline *)
  retransmits : int;  (** sends with attempt > 0 *)
  acks : int;  (** acknowledgements issued *)
}

type result = {
  accepted : bool;  (** no live node rejected, and someone survived *)
  rejecting : int list;  (** live nodes that rejected, ascending *)
  crashed_nodes : int list;  (** crash-stopped nodes, ascending *)
  heard : float;  (** mean fraction of fully-heard neighbors over live nodes *)
  stats : stats;
}

val execute :
  ?config:config -> ?mode:degradation -> rng:Rng.t -> model:Fault.model -> protocol -> result
(** Runs the full exchange-and-decide pipeline.  [mode] defaults to
    [Strict].  With {!Fault.reliable}, every label arrives on time and the
    result reduces to the protocol's synchronous verdict (completeness is
    preserved). *)

val pp_stats : Format.formatter -> stats -> unit

val replay_check : protocol -> frames:Bits.t array array -> Dip.verdict
(** Decision-only replay against recorded round payloads: every node's
    {!protocol.node_check} runs with [recv u = Some] of u's per-round
    labels from [frames] ([frames.(r).(u)] = node u's round-r label) —
    no event queue, no coins, no prover work.  With [frames] equal to
    the protocol's own [rounds], this is the fault-free verdict; the
    transcript subsystem uses it to replay network traces. *)
