(** Deterministic, splittable pseudo-random source.

    Every protocol run is seeded so experiments are reproducible.  The
    generator is SplitMix64: fast, well distributed, and splittable — each
    node of the distributed verifier gets an independent stream derived from
    the run seed and its node id, which mirrors the model's assumption of
    independent per-node coins. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. *)

val split : t -> int -> t
(** [split t salt] derives an independent generator; the same [(t-seed,
    salt)] pair always yields the same stream. *)

val split_string : t -> string -> t
(** [split_string t label] derives an independent generator keyed by a
    textual label (e.g. an experiment id).  Like {!split}, the derivation
    depends only on [t]'s seed and [label] — never on how much of [t] has
    been consumed — so derived streams are stable no matter which worker
    domain draws them, or in which order.

    {b Domain-separation invariant.}  Distinct key strings yield
    (statistically) independent streams: the key is hashed in full
    (FNV-1a 64 finalized through the SplitMix64 mixer), so keys differing
    in any byte — including the empty string versus any non-empty key, and
    a key versus any proper prefix of it — land in unrelated streams.
    What the hash can {e not} do is distinguish two different
    decompositions of the same concatenated text: callers that build keys
    by concatenating fields must keep the fields self-delimiting
    (separator characters that cannot appear in the fields, as in the
    engine's ["e2/forge-pairs/c3"] ids, the net runtime's ["3>7"] link
    ids, and the transcript subsystem's ["inst|<family>"] cache keys) —
    otherwise ["ab" ^ "c"] and ["a" ^ "bc"] would collide by
    construction.  The QCheck suite in [test/test_util.ml] exercises both
    halves of this contract. *)

val bits64 : t -> int64
val bool : t -> bool

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
