(** Flat label codec: the allocation-free counterpart of {!Bits.Writer} /
    {!Bits.Reader}.

    Encoding appends fields into one preallocated byte buffer with raw
    index arithmetic; decoding walks a bit cursor over the source
    bitstring's backing bytes.  The bit layout matches {!Bits} exactly, so
    [Enc.to_bits] equals the checked writer's output byte for byte, and
    [Dec] reads any checked-written label.  The checked path remains the
    reference implementation; test_serve.ml holds the two together
    differentially. *)

type codec = Checked | Flat
(** Which label codec a protocol run uses.  [Checked] is the reference
    {!Bits.Writer}/{!Bits.Reader} path; [Flat] is this module. *)

val codec_of_string : string -> codec option
(** ["checked"] / ["flat"]. *)

val codec_name : codec -> string

module Enc : sig
  type t

  val create : ?capacity:int -> int -> t
  (** [create ?capacity cap] preallocates for [max cap capacity] bits.
      The buffer grows by doubling if exceeded, so both are sizing hints,
      not limits.  [capacity] is a preallocation floor for reset-reused
      encoders — pass the protocol's registry envelope (see {!Bounds})
      and the serve path never pays the grow ladder. *)

  val reset : t -> unit
  (** Rewind to empty for buffer reuse; O(1), no zero-fill. *)

  val bool : t -> bool -> unit

  val int : t -> width:int -> int -> unit
  (** Same contract as {!Bits.of_int}: requires [0 <= v < 2^width] and
      [0 <= width <= 62]; raises [Invalid_argument] otherwise. *)

  val bits : t -> Bits.t -> unit
  (** Append an existing bitstring. *)

  val length : t -> int
  (** Bits written since creation or the last {!reset}. *)

  val to_bits : t -> Bits.t
  (** Snapshot the written prefix as an immutable bitstring (copies). *)
end

module Dec : sig
  type t

  val of_bits : Bits.t -> t
  (** Zero-copy: the decoder aliases the bitstring's backing buffer. *)

  val bool : t -> bool
  val int : t -> width:int -> int
  val bits : t -> len:int -> Bits.t

  val remaining : t -> int
  (** All reads raise {!Bits.Reader.Underflow} past the end, like the
      checked reader — verifiers treat that as a malformed label. *)
end

val read_int : Bits.t -> pos:int -> width:int -> int
(** Random-access field read.  Raises [Invalid_argument] naming the
    offending slice and the length when [pos, pos+width) is out of range
    (same shape as the {!Bits.sub} message). *)

val unsafe_int : Bits.t -> pos:int -> width:int -> int
(** {!read_int} without the range check.  Reserved for call sites the
    [refine-index] pass of dipp-lint has proved in-bounds — any call site
    the pass cannot verify is a lint finding.  Out-of-range positions read
    garbage or crash rather than raising. *)
