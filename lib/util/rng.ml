type t = { mutable state : int64; seed : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  let s = mix (Int64.of_int seed) in
  { state = s; seed = s }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t salt =
  let s = mix (Int64.add t.seed (Int64.mul (Int64.of_int (salt + 1)) golden)) in
  { state = s; seed = s }

(* FNV-1a 64-bit over the label, finalized through the SplitMix64 mixer so
   labels differing in a few low bits land in unrelated streams. *)
let split_string t label =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) 0x100000001B3L)
    label;
  let s = mix (Int64.add t.seed (mix !h)) in
  { state = s; seed = s }

let bool t = Int64.logand (bits64 t) 1L = 1L

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling over the low 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec draw () =
    let v = Int64.to_int (bits64 t) land mask in
    let limit = mask - (mask mod bound) in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
