(* Flat label codec: encode/decode against a preallocated byte buffer with
   raw index arithmetic, instead of building a Bits.t value per field the
   way Bits.Writer/Bits.Reader do.  The bit layout is identical to Bits —
   bit [i] in byte [i lsr 3], mask [1 lsl (i land 7)], integer fields
   MSB-first across positions — so [Enc.to_bits] is byte-for-byte equal to
   the checked writer's [contents] and [Dec] accepts any checked-written
   label.  The checked path stays the reference implementation; the
   differential suite in test_serve.ml holds the two together. *)

type codec = Checked | Flat

let codec_of_string = function
  | "checked" -> Some Checked
  | "flat" -> Some Flat
  | _ -> None

let codec_name = function Checked -> "checked" | Flat -> "flat"

module Enc = struct
  type t = { mutable len : int; mutable data : Bytes.t }

  (* [capacity] is a preallocation floor on top of the per-label hint
     [cap]: a reset-reused encoder sized from a Bounds envelope never
     climbs the grow ladder, however the individual labels interleave. *)
  let create ?(capacity = 0) cap =
    let bits = max 1 (max cap capacity) in
    { len = 0; data = Bytes.make ((bits + 7) / 8) '\000' }

  let length e = e.len

  (* Reset without re-zeroing the whole buffer: only bits < len were ever
     set, and set_bit below writes both 0 and 1, so stale bytes beyond the
     new cursor are re-written before they are ever read. *)
  let reset e = e.len <- 0

  let grow e need =
    let cur = Bytes.length e.data in
    if need > cur * 8 then begin
      let nbytes = ref (if cur = 0 then 1 else cur) in
      while need > !nbytes * 8 do
        nbytes := !nbytes * 2
      done;
      let data = Bytes.make !nbytes '\000' in
      Bytes.blit e.data 0 data 0 cur;
      e.data <- data
    end

  (* Unconditional write of bit [i]: clears then sets, so a reset encoder
     reuses its buffer without a zero-fill pass. *)
  let set_bit e i b =
    let j = i lsr 3 in
    let mask = 1 lsl (i land 7) in
    let c = Char.code (Bytes.unsafe_get e.data j) in
    let c = if b then c lor mask else c land lnot mask in
    Bytes.unsafe_set e.data j (Char.unsafe_chr c)

  let bool e b =
    grow e (e.len + 1);
    set_bit e e.len b;
    e.len <- e.len + 1

  let int e ~width v =
    if width < 0 || width > 62 then invalid_arg "Bits_flat.Enc.int: width";
    if v < 0 || (width < 62 && v lsr width <> 0) then invalid_arg "Bits_flat.Enc.int: value";
    grow e (e.len + width);
    for k = 0 to width - 1 do
      set_bit e (e.len + k) ((v lsr (width - 1 - k)) land 1 = 1)
    done;
    e.len <- e.len + width

  let bits e b =
    let n = Bits.length b in
    grow e (e.len + n);
    let src = Bits.unsafe_data b in
    for k = 0 to n - 1 do
      set_bit e (e.len + k)
        (Char.code (Bytes.unsafe_get src (k lsr 3)) land (1 lsl (k land 7)) <> 0)
    done;
    e.len <- e.len + n

  let to_bits e =
    let nbytes = (e.len + 7) / 8 in
    (* Bits.of_bytes re-zeroes the tail bits, restoring the structural-
       equality invariant that reset-and-reuse may have dirtied. *)
    Bits.of_bytes ~len:e.len (Bytes.sub e.data 0 nbytes)
end

module Dec = struct
  type t = { src : Bits.t; len : int; data : Bytes.t; mutable pos : int }

  (* [data] aliases the source bitstring's buffer (Bits.unsafe_data) and is
     only ever read; [len] bounds every access, so the byte reads below can
     skip their own checks. *)
  let of_bits b = { src = b; len = Bits.length b; data = Bits.unsafe_data b; pos = 0 }

  let remaining d = d.len - d.pos

  let bit d i =
    Char.code (Bytes.unsafe_get d.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let bool d =
    if d.pos >= d.len then raise Bits.Reader.Underflow;
    let b = bit d d.pos in
    d.pos <- d.pos + 1;
    b

  let int d ~width =
    if width < 0 || width > remaining d then raise Bits.Reader.Underflow;
    let v = ref 0 in
    for k = 0 to width - 1 do
      v := (!v lsl 1) lor (if bit d (d.pos + k) then 1 else 0)
    done;
    d.pos <- d.pos + width;
    !v

  let bits d ~len =
    if len < 0 || len > remaining d then raise Bits.Reader.Underflow;
    let b = Bits.sub d.src ~pos:d.pos ~len in
    d.pos <- d.pos + len;
    b
end

let read_int b ~pos ~width =
  let len = Bits.length b in
  if pos < 0 || width < 0 || width > 62 || pos + width > len then
    invalid_arg
      (Printf.sprintf "Bits_flat.read_int: slice [%d, %d+%d) out of range for length %d" pos pos
         width len);
  let data = Bits.unsafe_data b in
  let v = ref 0 in
  for k = 0 to width - 1 do
    let i = pos + k in
    v :=
      (!v lsl 1)
      lor (Char.code (Bytes.unsafe_get data (i lsr 3)) lsr (i land 7) land 1)
  done;
  !v

(* No range check: like Bits.unsafe_sub, reserved for call sites the
   refine-index pass has proved in-bounds — an unverified call site is a
   lint finding.  Out-of-range bit indices read whatever the backing
   buffer holds (including past its end: a crash), which is why the gate
   is static. *)
let unsafe_int b ~pos ~width =
  let data = Bits.unsafe_data b in
  let v = ref 0 in
  for k = 0 to width - 1 do
    let i = pos + k in
    v :=
      (!v lsl 1)
      lor (Char.code (Bytes.unsafe_get data (i lsr 3)) lsr (i land 7) land 1)
  done;
  !v
