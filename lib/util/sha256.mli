(** SHA-256 (FIPS 180-4), pure OCaml.

    The transcript subsystem content-addresses its artifacts: a trace
    digest is SHA-256 over (protocol id, graph digest, seed, transcript
    bytes), and the honest-prover label cache keys on (protocol, instance
    digest, coin digest).  The repo deliberately carries its own ~100-line
    implementation instead of growing a dependency: digests here name
    cache entries and golden corpus files, they are not a secrecy
    boundary. *)

val digest_bytes : Bytes.t -> string
(** Raw 32-byte digest. *)

val digest_string : string -> string
(** Raw 32-byte digest. *)

val hex_of_raw : string -> string
(** Lowercase hex rendering of a raw digest (or any string). *)

val hex : string -> string
(** [hex s] = [hex_of_raw (digest_string s)] — the 64-char form used in
    reports, cache keys and corpus manifests. *)
