type t = { len : int; data : Bytes.t }
(* Bit [i] lives in byte [i / 8], mask [1 lsl (i mod 8)].  Unused tail bits
   of the last byte are kept zero so structural equality is meaningful. *)

let empty = { len = 0; data = Bytes.empty }

let length t = t.len

let bytes_for len = (len + 7) / 8

let get t i =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bits.get: index %d out of range [0, %d)" i t.len);
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let make len =
  { len; data = Bytes.make (bytes_for len) '\000' }

let set_unsafe t i b =
  if b then begin
    let j = i lsr 3 in
    Bytes.set t.data j (Char.chr (Char.code (Bytes.get t.data j) lor (1 lsl (i land 7))))
  end

let init len f =
  let t = make len in
  for i = 0 to len - 1 do set_unsafe t i (f i) done;
  t

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  match Int.compare a.len b.len with
  | 0 -> Bytes.compare a.data b.data
  | c -> c

let append a b = init (a.len + b.len) (fun i -> if i < a.len then get a i else get b (i - a.len))

let concat ts =
  let total = List.fold_left (fun acc t -> acc + t.len) 0 ts in
  let out = make total in
  let off = ref 0 in
  List.iter
    (fun t ->
      for i = 0 to t.len - 1 do set_unsafe out (!off + i) (get t i) done;
      off := !off + t.len)
    ts;
  out

let of_bool b = init 1 (fun _ -> b)

let of_int ~width v =
  if width < 0 || width > 62 then invalid_arg "Bits.of_int: width";
  if v < 0 || (width < 62 && v lsr width <> 0) then invalid_arg "Bits.of_int: value";
  init width (fun i -> (v lsr (width - 1 - i)) land 1 = 1)

let to_int t =
  if t.len > 62 then invalid_arg "Bits.to_int: too long";
  let v = ref 0 in
  for i = 0 to t.len - 1 do
    v := (!v lsl 1) lor (if get t i then 1 else 0)
  done;
  !v

(* No range check: reserved for call sites the refine-index pass of
   dipp-lint has proved in-bounds (an unverified call site is a lint
   finding).  Reads beyond [t.len] would return the zero tail bits of the
   last byte — silently wrong, never a crash — which is why the gate is
   static rather than a debug assert. *)
let unsafe_sub t ~pos ~len =
  init len (fun i ->
      Char.code (Bytes.get t.data ((pos + i) lsr 3)) land (1 lsl ((pos + i) land 7)) <> 0)

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg
      (Printf.sprintf "Bits.sub: slice [%d, %d+%d) out of range for length %d" pos pos len t.len);
  unsafe_sub t ~pos ~len

(* Aliasing view, not a copy: callers must treat the result as read-only or
   structural equality of the source bitstring silently breaks.  Exists so
   the flat codec (Bits_flat) can decode without re-copying the buffer. *)
let unsafe_data t = t.data

let random rng len = init len (fun _ -> Rng.bool rng)

let to_string t = String.init t.len (fun i -> if get t i then '1' else '0')

let of_string s =
  init (String.length s) (fun i ->
      match s.[i] with
      | '0' -> false
      | '1' -> true
      | _ -> invalid_arg "Bits.of_string")

let pp ppf t = Format.pp_print_string ppf (to_string t)

let to_bytes t = Bytes.copy t.data

let of_bytes ~len data =
  if len < 0 || Bytes.length data <> bytes_for len then invalid_arg "Bits.of_bytes";
  let data = Bytes.copy data in
  (* re-zero the tail bits so structural equality stays meaningful even on
     bytes that came from disk *)
  if len land 7 <> 0 then begin
    let j = Bytes.length data - 1 in
    Bytes.set data j (Char.chr (Char.code (Bytes.get data j) land ((1 lsl (len land 7)) - 1)))
  end;
  { len; data }

module Writer = struct
  type nonrec t = { mutable rev : t list }

  let create () = { rev = [] }
  let bits w b = w.rev <- b :: w.rev
  let bool w b = bits w (of_bool b)
  let int w ~width v = bits w (of_int ~width v)
  let contents w = concat (List.rev w.rev)
end

module Reader = struct
  exception Underflow

  type nonrec t = { src : t; mutable pos : int }

  let of_bits src = { src; pos = 0 }
  let remaining r = r.src.len - r.pos

  let bits r ~len =
    if len > remaining r then raise Underflow;
    let b = sub r.src ~pos:r.pos ~len in
    r.pos <- r.pos + len;
    b

  let bool r = to_int (bits r ~len:1) = 1
  let int r ~width = to_int (bits r ~len:width)
end
