(** Immutable bitstrings with exact length accounting.

    Labels in the DIP model are bitstrings; the proof size of a protocol is
    the length in bits of the longest label the honest prover assigns.  This
    module provides a writer/reader pair so every protocol serializes its
    labels and the harness can measure their true size. *)

type t
(** A bitstring.  Equality and comparison are structural. *)

val empty : t

val length : t -> int
(** Number of bits. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val append : t -> t -> t

val concat : t list -> t

val of_bool : bool -> t

val of_int : width:int -> int -> t
(** [of_int ~width v] is the [width]-bit big-endian encoding of [v].
    Requires [0 <= v < 2^width] and [0 <= width <= 62]. *)

val to_int : t -> int
(** Inverse of {!of_int}; requires [length <= 62]. *)

val get : t -> int -> bool
(** [get t i] is bit [i] (0-based from the start).  Raises
    [Invalid_argument] naming the index and length when out of range. *)

val sub : t -> pos:int -> len:int -> t
(** [sub t ~pos ~len] is bits [pos .. pos+len-1].  Raises
    [Invalid_argument] naming the offending slice and the length when
    the range is invalid. *)

val unsafe_sub : t -> pos:int -> len:int -> t
(** {!sub} without the range check.  Reserved for call sites the
    [refine-index] pass of dipp-lint has proved in-bounds — any call
    site the pass cannot verify is a lint finding.  Out-of-range reads
    return garbage (the zero tail of the backing buffer) rather than
    raising. *)

val unsafe_data : t -> bytes
(** The backing byte buffer itself — an aliasing view, not a copy.  Callers
    must treat it as read-only; mutating it breaks the structural-equality
    invariant (zeroed tail bits).  Exists so {!Bits_flat} can decode labels
    without copying. *)

val random : Rng.t -> int -> t
(** [random rng len] draws [len] uniform bits. *)

val to_string : t -> string
(** ['0'/'1'] rendering, for debugging and tests. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on other chars. *)

val pp : Format.formatter -> t -> unit

val to_bytes : t -> bytes
(** The packed byte image (bit [i] in byte [i/8], mask [1 lsl (i mod 8)];
    unused tail bits zero).  With {!length}, a lossless binary form — the
    transcript codec stores bitstrings this way. *)

val of_bytes : len:int -> bytes -> t
(** Inverse of {!to_bytes}.  Raises [Invalid_argument] if the byte count
    does not match [len]; tail bits beyond [len] are zeroed. *)

module Writer : sig
  type bits := t
  type t

  val create : unit -> t
  val bool : t -> bool -> unit
  val int : t -> width:int -> int -> unit
  val bits : t -> bits -> unit
  val contents : t -> bits
end

module Reader : sig
  type bits := t
  type t

  val of_bits : bits -> t
  val bool : t -> bool
  val int : t -> width:int -> int
  val bits : t -> len:int -> bits
  val remaining : t -> int

  exception Underflow
  (** Raised when reading past the end — i.e. a malformed label.  Verifiers
      treat this as a rejection. *)
end
