(** Array-backed binary min-heap with a fixed three-integer key.

    Entries are ordered by the lexicographic order on [(k0, k1, k2)].  The
    pop order among entries with {e equal} keys is unspecified (it depends
    on insertion order), so callers that need a total processing order must
    make keys unique — the event engines do: {!Dipp_net.Net} keys events by
    [(time, seq, 0)] with a unique sequence number, and {!Dipp_net.Shard}
    by a structural key that is unique for every non-commuting event pair.

    The backing arrays grow geometrically and never shrink; popped value
    slots are overwritten with the [dummy] given at creation so the heap
    retains no hidden pointers to retired payloads. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** Fresh empty heap.  [capacity] (default 16) pre-sizes the arrays. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> k0:int -> k1:int -> k2:int -> 'a -> unit
(** Inserts; O(log size). *)

val min_key : 'a t -> (int * int * int) option
(** The smallest key, without removing it. *)

val min_k0 : 'a t -> int option
(** First component of the smallest key (the "time" in both engines). *)

val pop_min : 'a t -> (int * int * int * 'a) option
(** Removes and returns the entry with the smallest key; O(log size). *)

val clear : 'a t -> unit
(** Empties the heap, overwriting retained values with [dummy]. *)
