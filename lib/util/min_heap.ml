(* Classic binary heap over parallel arrays: three int arrays for the key
   components (kept unboxed) plus one value array.  Sift loops compare keys
   inline — no closure calls on the hot path, which matters at the tens of
   millions of events the sharded engine pushes through this. *)

type 'a t = {
  mutable k0 : int array;
  mutable k1 : int array;
  mutable k2 : int array;
  mutable v : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let cap = max 1 capacity in
  {
    k0 = Array.make cap 0;
    k1 = Array.make cap 0;
    k2 = Array.make cap 0;
    v = Array.make cap dummy;
    len = 0;
    dummy;
  }

let size h = h.len
let is_empty h = h.len = 0

let grow h =
  let cap = Array.length h.k0 in
  let cap' = cap * 2 in
  let g a fill =
    let a' = Array.make cap' fill in
    Array.blit a 0 a' 0 h.len;
    a'
  in
  h.k0 <- g h.k0 0;
  h.k1 <- g h.k1 0;
  h.k2 <- g h.k2 0;
  h.v <- g h.v h.dummy

(* strict key order: (k0,k1,k2) at [i] < at [j] *)
let less h i j =
  let a = h.k0.(i) and b = h.k0.(j) in
  if a <> b then a < b
  else
    let a = h.k1.(i) and b = h.k1.(j) in
    if a <> b then a < b else h.k2.(i) < h.k2.(j)

let swap h i j =
  let t0 = h.k0.(i) in
  h.k0.(i) <- h.k0.(j);
  h.k0.(j) <- t0;
  let t1 = h.k1.(i) in
  h.k1.(i) <- h.k1.(j);
  h.k1.(j) <- t1;
  let t2 = h.k2.(i) in
  h.k2.(i) <- h.k2.(j);
  h.k2.(j) <- t2;
  let tv = h.v.(i) in
  h.v.(i) <- h.v.(j);
  h.v.(j) <- tv

let rec sift_up h i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less h i p then begin
      swap h i p;
      sift_up h p
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 in
  if l < h.len then begin
    let c = if l + 1 < h.len && less h (l + 1) l then l + 1 else l in
    if less h c i then begin
      swap h i c;
      sift_down h c
    end
  end

let push h ~k0 ~k1 ~k2 x =
  if h.len = Array.length h.k0 then grow h;
  let i = h.len in
  h.k0.(i) <- k0;
  h.k1.(i) <- k1;
  h.k2.(i) <- k2;
  h.v.(i) <- x;
  h.len <- h.len + 1;
  sift_up h i

let min_key h = if h.len = 0 then None else Some (h.k0.(0), h.k1.(0), h.k2.(0))
let min_k0 h = if h.len = 0 then None else Some h.k0.(0)

let pop_min h =
  if h.len = 0 then None
  else begin
    let k0 = h.k0.(0) and k1 = h.k1.(0) and k2 = h.k2.(0) and x = h.v.(0) in
    let last = h.len - 1 in
    h.len <- last;
    if last > 0 then begin
      h.k0.(0) <- h.k0.(last);
      h.k1.(0) <- h.k1.(last);
      h.k2.(0) <- h.k2.(last);
      h.v.(0) <- h.v.(last)
    end;
    h.v.(last) <- h.dummy;
    if last > 0 then sift_down h 0;
    Some (k0, k1, k2, x)
  end

let clear h =
  Array.fill h.v 0 h.len h.dummy;
  h.len <- 0
