(** Seeded instance generators for every task in the paper.

    Yes-instances come with witnesses (the honest prover's input);
    no-instances are certified non-members by construction (explicit K4 /
    K5 / K2,3-minor forcing) and re-checked against the recognition
    algorithms in tests. *)

(** {1 LR-sorting (§4)} *)

val lr_yes : n:int -> ?arcs_factor:int -> int -> int array * (int * int) list
(** [(path, arcs)] — identity path with random forward arcs;
    [arcs_factor * n] attempts (default 2). *)

val lr_no : n:int -> ?arcs_factor:int -> int -> int array * (int * int) list
(** Same but with one random far backward arc spliced in. *)

(** {1 Path-outerplanarity (§5)} *)

val path_outerplanar : n:int -> int -> Graph.t * int list
(** Random nested chords over the identity path; witness included. *)

val path_crossing : n:int -> int -> Graph.t * int list
(** A path-outerplanar base plus a K4-minor-forcing chord triple: the graph
    is not outerplanar (hence in no family of the paper); the returned
    "witness" is the underlying Hamiltonian path a cheating prover would
    commit. *)

(** {1 Outerplanarity (§6)} *)

val outerplanar : blocks:int -> int -> Graph.t
(** Chain of biconnected outerplanar blocks glued at cut vertices. *)

val outerplanar_no : blocks:int -> int -> Graph.t
(** Same, with one block made non-outerplanar (K4-minor triple). *)

val biconnected_outerplanar : n:int -> int -> Graph.t
(** A single biconnected outerplanar block (cycle + nested chords). *)

val maximal_outerplanar : n:int -> int -> Graph.t
(** A maximal outerplanar graph (every interior face a triangle,
    m = 2n - 3), via {!Dipp_graph.Outerplanar.triangulate}. *)

(** {1 Planar graphs and embeddings (§7)} *)

val planar : n:int -> int -> Graph.t
(** Random connected planar graph: an Apollonian-style stacked
    triangulation with random edge deletions (kept connected). *)

val planar_bounded_degree : n:int -> int -> Graph.t
(** A grid-with-diagonals variant: planar with max degree <= 8. *)

val nonplanar : n:int -> int -> Graph.t
(** A planar base with a subdivided K5 spliced in. *)

val triangulated_grid : n:int -> int -> Graph.t
(** Exactly [n] nodes: a [side x side] grid ([side = floor (sqrt n)])
    with one seeded random diagonal per cell (planar, max degree <= 8)
    and the leftover nodes trailing as a path off the last corner.  Flat
    CSR construction — the yes-instance family for the sharded engine's
    10^3..10^6 size ladder. *)

val nested_triangulation : n:int -> int -> Graph.t
(** Apollonian stacked triangulation with an O(1) array-backed face pool:
    maximal planar ([m = 3n - 6]), unbounded degree — the ladder's dense
    counterpart to {!triangulated_grid}. *)

val triangulated_grid_no : n:int -> int -> Graph.t
(** {!triangulated_grid} on [n - 15] nodes plus a once-subdivided K5
    attached to node 0: nonplanar, same scale. *)

val nested_triangulation_no : n:int -> int -> Graph.t
(** {!nested_triangulation} on [n - 15] nodes plus a once-subdivided K5
    attached to node 0: nonplanar, same scale. *)

val nonplanar_k33 : n:int -> int -> Graph.t
(** A planar base with a subdivided K3,3 spliced in (the other Kuratowski
    obstruction). *)

val embedding : Graph.t -> Rotation.t option
(** Valid rotation system via the DMP embedder. *)

val corrupted_embedding : Graph.t -> int -> Rotation.t option
(** A rotation system of nonzero genus, obtained by perturbing a valid
    one. *)

(** {1 Series-parallel and treewidth <= 2 (§8)} *)

val series_parallel : size:int -> int -> Series_parallel.sp_tree * Graph.t
(** Random SP composition tree (duplicate-free) and its graph. *)

val series_parallel_no : size:int -> int -> (Graph.t * int list list) option
(** SP base plus an edge destroying series-parallelism, with the cheating
    ear decomposition (base ears + the extra edge as a chord ear);
    [None] if no such edge was found. *)

val treewidth2 : blocks:int -> int -> Graph.t
(** Chain of SP blocks glued at cut vertices. *)

val treewidth2_no : blocks:int -> int -> Graph.t option
(** Same plus an edge pushing some component's treewidth above 2. *)
