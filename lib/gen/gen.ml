(* ------------------------------------------------------------------ *)
(* LR-sorting                                                          *)
(* ------------------------------------------------------------------ *)

let lr_yes ~n ?(arcs_factor = 2) seed =
  let rng = Rng.create seed in
  let path = Array.init n Fun.id in
  let arcs = ref [] in
  for _ = 1 to arcs_factor * n do
    let a = Rng.int rng n and b = Rng.int rng n in
    let u = min a b and v = max a b in
    if v - u >= 2 then arcs := (u, v) :: !arcs
  done;
  (path, List.sort_uniq Graph.compare_edge !arcs)

let lr_no ~n ?(arcs_factor = 2) seed =
  let path, arcs = lr_yes ~n ~arcs_factor seed in
  let rng = Rng.create (seed + 7919) in
  let u = Rng.int rng (n / 2) in
  let v = u + 2 + Rng.int rng (n - u - 3) in
  let backward = (v, u) in
  (path, backward :: List.filter (fun a -> a <> (u, v)) arcs)

(* ------------------------------------------------------------------ *)
(* Path-outerplanarity                                                 *)
(* ------------------------------------------------------------------ *)

let nested_chords rng n =
  let edges = ref [] in
  let rec add l r depth =
    if r - l >= 2 && depth > 0 && Rng.int rng 3 > 0 then begin
      edges := (l, r) :: !edges;
      let m = l + 1 + Rng.int rng (r - l - 1) in
      add l m (depth - 1);
      add m r (depth - 1)
    end
  in
  add 0 (n - 1) 40;
  !edges

let path_outerplanar ~n seed =
  let rng = Rng.create seed in
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) @ nested_chords rng n in
  (Graph.create ~n (List.sort_uniq Graph.compare_edge edges), List.init n Fun.id)

let path_crossing ~n seed =
  if n < 8 then invalid_arg "Gen.path_crossing";
  let g, w = path_outerplanar ~n seed in
  let rng = Rng.create (seed + 31) in
  let a = Rng.int rng (n - 7) in
  let b = a + 1 and c = a + 2 + Rng.int rng 2 in
  let d = c + 2 in
  (* chords (a,c),(b,d),(a,d): a K4 minor with the path segments *)
  (Graph.add_edges g [ (a, c); (b, d); (a, d) ], w)

(* ------------------------------------------------------------------ *)
(* Outerplanarity                                                      *)
(* ------------------------------------------------------------------ *)

let block_edges rng size offset =
  (* biconnected outerplanar block: cycle + nested chords *)
  let cyc = List.init size (fun i -> (offset + i, offset + ((i + 1) mod size))) in
  let chords = List.map (fun (l, r) -> (offset + l, offset + r)) (nested_chords rng (size - 1)) in
  cyc @ List.filter (fun (a, b) -> abs (a - b) >= 2) chords

let outerplanar ~blocks seed =
  let rng = Rng.create seed in
  let edges = ref [] and next = ref 0 in
  for _ = 1 to blocks do
    let size = 4 + Rng.int rng 8 in
    let offset = if !next = 0 then 0 else !next - 1 in
    edges := block_edges rng size offset @ !edges;
    next := offset + size
  done;
  Graph.create ~n:!next
    (List.sort_uniq Graph.compare_edge (List.map (fun (a, b) -> Graph.normalize_edge a b) !edges))

let outerplanar_no ~blocks seed =
  let g = outerplanar ~blocks seed in
  (* force a K4 minor inside the first block *)
  Graph.add_edges g [ (0, 2); (1, 3); (0, 3) ]

let biconnected_outerplanar ~n seed =
  let rng = Rng.create seed in
  Graph.create ~n
    (List.sort_uniq Graph.compare_edge
       (List.map (fun (a, b) -> Graph.normalize_edge a b) (block_edges rng n 0)))

let maximal_outerplanar ~n seed =
  match Outerplanar.triangulate (biconnected_outerplanar ~n seed) with
  | Some g -> g
  | None -> invalid_arg "Gen.maximal_outerplanar"


(* ------------------------------------------------------------------ *)
(* Planar graphs                                                       *)
(* ------------------------------------------------------------------ *)

let planar ~n seed =
  if n < 3 then invalid_arg "Gen.planar";
  let rng = Rng.create seed in
  (* Apollonian-style stacking: keep a list of triangular faces, insert new
     nodes into random faces. *)
  let edges = ref [ (0, 1); (1, 2); (0, 2) ] in
  let faces = ref [| (0, 1, 2) |] in
  let face_list = ref [ (0, 1, 2) ] in
  ignore faces;
  for v = 3 to n - 1 do
    let k = Rng.int rng (List.length !face_list) in
    let a, b, c = List.nth !face_list k in
    edges := (v, a) :: (v, b) :: (v, c) :: !edges;
    face_list := (a, b, v) :: (a, c, v) :: (b, c, v) :: List.filteri (fun i _ -> i <> k) !face_list
  done;
  (* random deletions keeping connectivity *)
  let g = Graph.create ~n (List.map (fun (a, b) -> Graph.normalize_edge a b) !edges) in
  let candidates = List.filter (fun _ -> Rng.int rng 4 = 0) (Graph.edges g) in
  List.fold_left
    (fun acc e ->
      let g' = Graph.remove_edges acc [ e ] in
      if Traversal.is_connected g' then g' else acc)
    g candidates

let planar_bounded_degree ~n seed =
  let rng = Rng.create seed in
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  let g = Graph.grid side side in
  (* add one diagonal per cell at random: stays planar, degree <= 8 *)
  let extra = ref [] in
  for r = 0 to side - 2 do
    for c = 0 to side - 2 do
      let id x y = (x * side) + y in
      if Rng.bool rng then extra := (id r c, id (r + 1) (c + 1)) :: !extra
      else extra := (id r (c + 1), id (r + 1) c) :: !extra
    done
  done;
  Graph.add_edges g !extra

let nonplanar ~n seed =
  if n < 20 then invalid_arg "Gen.nonplanar";
  let g = planar ~n:(n - 15) seed in
  (* splice in a K5 subdivided once (15 fresh nodes: 5 branch + 10 middles),
     attached to node 0 *)
  let base = n - 15 in
  let branch = Array.init 5 (fun i -> base + i) in
  let mid = ref (base + 5) in
  let edges = ref [ (0, branch.(0)) ] in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      let m = !mid in
      incr mid;
      edges := (branch.(i), m) :: (m, branch.(j)) :: !edges
    done
  done;
  Graph.create ~n ((!edges |> List.map (fun (a, b) -> Graph.normalize_edge a b)) @ Graph.edges g)

let nonplanar_k33 ~n seed =
  if n < 22 then invalid_arg "Gen.nonplanar_k33";
  let extra = 6 + 9 in
  let g = planar ~n:(n - extra) seed in
  let base = n - extra in
  let left = Array.init 3 (fun i -> base + i) and right = Array.init 3 (fun i -> base + 3 + i) in
  let mid = ref (base + 6) in
  let edges = ref [ (0, left.(0)) ] in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let m = !mid in
      incr mid;
      edges := (left.(i), m) :: (m, right.(j)) :: !edges
    done
  done;
  Graph.create ~n ((!edges |> List.map (fun (a, b) -> Graph.normalize_edge a b)) @ Graph.edges g)

let embedding g = Planarity.embed g

let corrupted_embedding g seed =
  match Planarity.embed g with
  | None -> None
  | Some rot -> Rotation.corrupt_swap rot (Rng.create seed)

(* ------------------------------------------------------------------ *)
(* Series-parallel / treewidth 2                                       *)
(* ------------------------------------------------------------------ *)

let sp_tree_gen rng s t fresh budget =
  let next = ref fresh in
  let rec build s t budget =
    if budget <= 1 then Series_parallel.Edge (s, t)
    else if Rng.int rng 2 = 0 then begin
      let x = !next in
      incr next;
      Series_parallel.Series (build s x (budget / 2), build x t (budget - (budget / 2)))
    end
    else begin
      let x = !next in
      incr next;
      (* the second parallel branch always starts with a fresh node, so no
         edge is ever produced twice *)
      Series_parallel.Parallel
        (build s t (budget / 2), Series_parallel.Series (Series_parallel.Edge (s, x), build x t (budget - (budget / 2))))
    end
  in
  let tr = build s t budget in
  (tr, !next)

let series_parallel ~size seed =
  let rng = Rng.create seed in
  let tr, n = sp_tree_gen rng 0 1 2 size in
  (tr, Series_parallel.graph_of_sp ~n tr)

let series_parallel_no ~size seed =
  let tr, g = series_parallel ~size seed in
  let n = Graph.n g in
  let rng = Rng.create (seed + 4242) in
  let rec try_edge tries =
    if tries = 0 then None
    else begin
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b && not (Graph.mem_edge g a b) then begin
        let g2 = Graph.add_edges g [ (a, b) ] in
        if not (Series_parallel.is_series_parallel g2) then Some (g2, (a, b)) else try_edge (tries - 1)
      end
      else try_edge (tries - 1)
    end
  in
  match try_edge 100 with
  | None -> None
  | Some (g2, (a, b)) ->
      let ears = Series_parallel.ears_of_sp tr in
      Some (g2, ears @ [ [ a; b ] ])

let treewidth2 ~blocks seed =
  let rng = Rng.create seed in
  let edges = ref [] and fresh = ref 2 in
  let rec collect = function
    | Series_parallel.Edge (u, v) -> [ (u, v) ]
    | Series_parallel.Series (a, b) | Series_parallel.Parallel (a, b) -> collect a @ collect b
  in
  let tr, nx = sp_tree_gen rng 0 1 !fresh 8 in
  fresh := nx;
  edges := collect tr;
  let cur = ref 1 in
  for _ = 2 to blocks do
    let t = !fresh in
    incr fresh;
    let tr, nx = sp_tree_gen rng !cur t !fresh 8 in
    fresh := nx;
    edges := collect tr @ !edges;
    cur := t
  done;
  Graph.create ~n:!fresh (List.map (fun (a, b) -> Graph.normalize_edge a b) !edges)

let treewidth2_no ~blocks seed =
  let g = treewidth2 ~blocks seed in
  let n = Graph.n g in
  let rng = Rng.create (seed + 5151) in
  let rec try_edge tries =
    if tries = 0 then None
    else begin
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b && not (Graph.mem_edge g a b) then begin
        let g2 = Graph.add_edges g [ (a, b) ] in
        if Traversal.is_connected g2 && not (Series_parallel.is_treewidth_le_2 g2) then Some g2
        else try_edge (tries - 1)
      end
      else try_edge (tries - 1)
    end
  in
  try_edge 150
