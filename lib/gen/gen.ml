(* ------------------------------------------------------------------ *)
(* LR-sorting                                                          *)
(* ------------------------------------------------------------------ *)

let lr_yes ~n ?(arcs_factor = 2) seed =
  let rng = Rng.create seed in
  let path = Array.init n Fun.id in
  let arcs = ref [] in
  for _ = 1 to arcs_factor * n do
    let a = Rng.int rng n and b = Rng.int rng n in
    let u = min a b and v = max a b in
    if v - u >= 2 then arcs := (u, v) :: !arcs
  done;
  (path, List.sort_uniq Graph.compare_edge !arcs)

let lr_no ~n ?(arcs_factor = 2) seed =
  let path, arcs = lr_yes ~n ~arcs_factor seed in
  let rng = Rng.create (seed + 7919) in
  let u = Rng.int rng (n / 2) in
  let v = u + 2 + Rng.int rng (n - u - 3) in
  let backward = (v, u) in
  (path, backward :: List.filter (fun a -> a <> (u, v)) arcs)

(* ------------------------------------------------------------------ *)
(* Path-outerplanarity                                                 *)
(* ------------------------------------------------------------------ *)

let nested_chords rng n =
  let edges = ref [] in
  let rec add l r depth =
    if r - l >= 2 && depth > 0 && Rng.int rng 3 > 0 then begin
      edges := (l, r) :: !edges;
      let m = l + 1 + Rng.int rng (r - l - 1) in
      add l m (depth - 1);
      add m r (depth - 1)
    end
  in
  add 0 (n - 1) 40;
  !edges

let path_outerplanar ~n seed =
  let rng = Rng.create seed in
  let edges = List.init (n - 1) (fun i -> (i, i + 1)) @ nested_chords rng n in
  (Graph.create ~n (List.sort_uniq Graph.compare_edge edges), List.init n Fun.id)

let path_crossing ~n seed =
  if n < 8 then invalid_arg "Gen.path_crossing";
  let g, w = path_outerplanar ~n seed in
  let rng = Rng.create (seed + 31) in
  let a = Rng.int rng (n - 7) in
  let b = a + 1 and c = a + 2 + Rng.int rng 2 in
  let d = c + 2 in
  (* chords (a,c),(b,d),(a,d): a K4 minor with the path segments *)
  (Graph.add_edges g [ (a, c); (b, d); (a, d) ], w)

(* ------------------------------------------------------------------ *)
(* Outerplanarity                                                      *)
(* ------------------------------------------------------------------ *)

let block_edges rng size offset =
  (* biconnected outerplanar block: cycle + nested chords *)
  let cyc = List.init size (fun i -> (offset + i, offset + ((i + 1) mod size))) in
  let chords = List.map (fun (l, r) -> (offset + l, offset + r)) (nested_chords rng (size - 1)) in
  cyc @ List.filter (fun (a, b) -> abs (a - b) >= 2) chords

let outerplanar ~blocks seed =
  let rng = Rng.create seed in
  let edges = ref [] and next = ref 0 in
  for _ = 1 to blocks do
    let size = 4 + Rng.int rng 8 in
    let offset = if !next = 0 then 0 else !next - 1 in
    edges := block_edges rng size offset @ !edges;
    next := offset + size
  done;
  Graph.create ~n:!next
    (List.sort_uniq Graph.compare_edge (List.map (fun (a, b) -> Graph.normalize_edge a b) !edges))

let outerplanar_no ~blocks seed =
  let g = outerplanar ~blocks seed in
  (* force a K4 minor inside the first block *)
  Graph.add_edges g [ (0, 2); (1, 3); (0, 3) ]

let biconnected_outerplanar ~n seed =
  let rng = Rng.create seed in
  Graph.create ~n
    (List.sort_uniq Graph.compare_edge
       (List.map (fun (a, b) -> Graph.normalize_edge a b) (block_edges rng n 0)))

let maximal_outerplanar ~n seed =
  match Outerplanar.triangulate (biconnected_outerplanar ~n seed) with
  | Some g -> g
  | None -> invalid_arg "Gen.maximal_outerplanar"


(* ------------------------------------------------------------------ *)
(* Planar graphs                                                       *)
(* ------------------------------------------------------------------ *)

let planar ~n seed =
  if n < 3 then invalid_arg "Gen.planar";
  let rng = Rng.create seed in
  (* Apollonian-style stacking: keep a list of triangular faces, insert new
     nodes into random faces. *)
  let edges = ref [ (0, 1); (1, 2); (0, 2) ] in
  let faces = ref [| (0, 1, 2) |] in
  let face_list = ref [ (0, 1, 2) ] in
  ignore faces;
  for v = 3 to n - 1 do
    let k = Rng.int rng (List.length !face_list) in
    let a, b, c = List.nth !face_list k in
    edges := (v, a) :: (v, b) :: (v, c) :: !edges;
    face_list := (a, b, v) :: (a, c, v) :: (b, c, v) :: List.filteri (fun i _ -> i <> k) !face_list
  done;
  (* random deletions keeping connectivity *)
  let g = Graph.create ~n (List.map (fun (a, b) -> Graph.normalize_edge a b) !edges) in
  let candidates = List.filter (fun _ -> Rng.int rng 4 = 0) (Graph.edges g) in
  List.fold_left
    (fun acc e ->
      let g' = Graph.remove_edges acc [ e ] in
      if Traversal.is_connected g' then g' else acc)
    g candidates

let planar_bounded_degree ~n seed =
  let rng = Rng.create seed in
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  let g = Graph.grid side side in
  (* add one diagonal per cell at random: stays planar, degree <= 8 *)
  let extra = ref [] in
  for r = 0 to side - 2 do
    for c = 0 to side - 2 do
      let id x y = (x * side) + y in
      if Rng.bool rng then extra := (id r c, id (r + 1) (c + 1)) :: !extra
      else extra := (id r (c + 1), id (r + 1) c) :: !extra
    done
  done;
  Graph.add_edges g !extra

let nonplanar ~n seed =
  if n < 20 then invalid_arg "Gen.nonplanar";
  let g = planar ~n:(n - 15) seed in
  (* splice in a K5 subdivided once (15 fresh nodes: 5 branch + 10 middles),
     attached to node 0 *)
  let base = n - 15 in
  let branch = Array.init 5 (fun i -> base + i) in
  let mid = ref (base + 5) in
  let edges = ref [ (0, branch.(0)) ] in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      let m = !mid in
      incr mid;
      edges := (branch.(i), m) :: (m, branch.(j)) :: !edges
    done
  done;
  Graph.create ~n ((!edges |> List.map (fun (a, b) -> Graph.normalize_edge a b)) @ Graph.edges g)

let nonplanar_k33 ~n seed =
  if n < 22 then invalid_arg "Gen.nonplanar_k33";
  let extra = 6 + 9 in
  let g = planar ~n:(n - extra) seed in
  let base = n - extra in
  let left = Array.init 3 (fun i -> base + i) and right = Array.init 3 (fun i -> base + 3 + i) in
  let mid = ref (base + 6) in
  let edges = ref [ (0, left.(0)) ] in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let m = !mid in
      incr mid;
      edges := (left.(i), m) :: (m, right.(j)) :: !edges
    done
  done;
  Graph.create ~n ((!edges |> List.map (fun (a, b) -> Graph.normalize_edge a b)) @ Graph.edges g)

(* ------------------------------------------------------------------ *)
(* Large-scale planar families (the sharded-engine size ladder)        *)
(* ------------------------------------------------------------------ *)

(* All four builders below assemble a flat edge array and construct
   through Graph.of_edge_array's two-pass CSR build — no per-edge lists,
   no O(n^2) face scans — so the 10^6 rung of the ladder materializes in
   seconds. *)

(* [n] exact: a side x side grid with one random diagonal per cell
   (planar, degree <= 8) and the n - side^2 leftover nodes trailing as a
   path off the last grid corner (still planar and connected). *)
let triangulated_grid ~n seed =
  if n < 4 then invalid_arg "Gen.triangulated_grid";
  let rng = Rng.create seed in
  let side = max 2 (int_of_float (sqrt (float_of_int n))) in
  let base = side * side in
  let leftover = n - base in
  let ec = (2 * side * (side - 1)) + ((side - 1) * (side - 1)) + leftover in
  let edges = Array.make ec (0, 0) in
  let w = ref 0 in
  let put e =
    edges.(!w) <- e;
    incr w
  in
  let id r c = (r * side) + c in
  for r = 0 to side - 1 do
    for c = 0 to side - 1 do
      if c + 1 < side then put (id r c, id r (c + 1));
      if r + 1 < side then put (id r c, id (r + 1) c);
      if c + 1 < side && r + 1 < side then
        if Rng.bool rng then put (id r c, id (r + 1) (c + 1))
        else put (id r (c + 1), id (r + 1) c)
    done
  done;
  for v = base to n - 1 do
    put (v - 1, v)
  done;
  Graph.of_edge_array ~n edges

(* Apollonian stacked triangulation with an array-backed face pool:
   pick a random face, split it into three — O(1) per node, maximal
   planar (m = 3n - 6). *)
let nested_triangulation ~n seed =
  if n < 3 then invalid_arg "Gen.nested_triangulation";
  let rng = Rng.create seed in
  let edges = Array.make (3 + (3 * (n - 3))) (0, 0) in
  edges.(0) <- (0, 1);
  edges.(1) <- (1, 2);
  edges.(2) <- (0, 2);
  let nfaces = 1 + (2 * (n - 3)) in
  let fa = Array.make (max 1 nfaces) 0 in
  let fb = Array.make (max 1 nfaces) 0 in
  let fc = Array.make (max 1 nfaces) 0 in
  fa.(0) <- 0;
  fb.(0) <- 1;
  fc.(0) <- 2;
  let faces = ref 1 in
  for v = 3 to n - 1 do
    let k = Rng.int rng !faces in
    let a = fa.(k) and b = fb.(k) and c = fc.(k) in
    let e = 3 + (3 * (v - 3)) in
    edges.(e) <- (a, v);
    edges.(e + 1) <- (b, v);
    edges.(e + 2) <- (c, v);
    (* replace face k with (a, b, v); append (a, c, v) and (b, c, v) *)
    fc.(k) <- v;
    fa.(!faces) <- a;
    fb.(!faces) <- c;
    fc.(!faces) <- v;
    fa.(!faces + 1) <- b;
    fb.(!faces + 1) <- c;
    fc.(!faces + 1) <- v;
    faces := !faces + 2
  done;
  Graph.of_edge_array ~n edges

(* A once-subdivided K5 (5 branch + 10 middle nodes) attached to node 0 of
   a planar base — the matching no-instances for the two families above. *)
let splice_k5 ~n base_graph =
  let base = n - 15 in
  (* 1 attachment edge + 10 subdivided K5 edges of 2 segments each *)
  let extra = Array.make 21 (0, 0) in
  let w = ref 0 in
  extra.(0) <- (0, base);
  incr w;
  let mid = ref (base + 5) in
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      let m = !mid in
      incr mid;
      extra.(!w) <- (base + i, m);
      extra.(!w + 1) <- (m, base + j);
      w := !w + 2
    done
  done;
  let base_edges = Array.of_list (Graph.edges base_graph) in
  Graph.of_edge_array ~n (Array.append base_edges extra)

let triangulated_grid_no ~n seed =
  if n < 20 then invalid_arg "Gen.triangulated_grid_no";
  splice_k5 ~n (triangulated_grid ~n:(n - 15) seed)

let nested_triangulation_no ~n seed =
  if n < 18 then invalid_arg "Gen.nested_triangulation_no";
  splice_k5 ~n (nested_triangulation ~n:(n - 15) seed)

let embedding g = Planarity.embed g

let corrupted_embedding g seed =
  match Planarity.embed g with
  | None -> None
  | Some rot -> Rotation.corrupt_swap rot (Rng.create seed)

(* ------------------------------------------------------------------ *)
(* Series-parallel / treewidth 2                                       *)
(* ------------------------------------------------------------------ *)

let sp_tree_gen rng s t fresh budget =
  let next = ref fresh in
  let rec build s t budget =
    if budget <= 1 then Series_parallel.Edge (s, t)
    else if Rng.int rng 2 = 0 then begin
      let x = !next in
      incr next;
      Series_parallel.Series (build s x (budget / 2), build x t (budget - (budget / 2)))
    end
    else begin
      let x = !next in
      incr next;
      (* the second parallel branch always starts with a fresh node, so no
         edge is ever produced twice *)
      Series_parallel.Parallel
        (build s t (budget / 2), Series_parallel.Series (Series_parallel.Edge (s, x), build x t (budget - (budget / 2))))
    end
  in
  let tr = build s t budget in
  (tr, !next)

let series_parallel ~size seed =
  let rng = Rng.create seed in
  let tr, n = sp_tree_gen rng 0 1 2 size in
  (tr, Series_parallel.graph_of_sp ~n tr)

let series_parallel_no ~size seed =
  let tr, g = series_parallel ~size seed in
  let n = Graph.n g in
  let rng = Rng.create (seed + 4242) in
  let rec try_edge tries =
    if tries = 0 then None
    else begin
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b && not (Graph.mem_edge g a b) then begin
        let g2 = Graph.add_edges g [ (a, b) ] in
        if not (Series_parallel.is_series_parallel g2) then Some (g2, (a, b)) else try_edge (tries - 1)
      end
      else try_edge (tries - 1)
    end
  in
  match try_edge 100 with
  | None -> None
  | Some (g2, (a, b)) ->
      let ears = Series_parallel.ears_of_sp tr in
      Some (g2, ears @ [ [ a; b ] ])

let treewidth2 ~blocks seed =
  let rng = Rng.create seed in
  let edges = ref [] and fresh = ref 2 in
  let rec collect = function
    | Series_parallel.Edge (u, v) -> [ (u, v) ]
    | Series_parallel.Series (a, b) | Series_parallel.Parallel (a, b) -> collect a @ collect b
  in
  let tr, nx = sp_tree_gen rng 0 1 !fresh 8 in
  fresh := nx;
  edges := collect tr;
  let cur = ref 1 in
  for _ = 2 to blocks do
    let t = !fresh in
    incr fresh;
    let tr, nx = sp_tree_gen rng !cur t !fresh 8 in
    fresh := nx;
    edges := collect tr @ !edges;
    cur := t
  done;
  Graph.create ~n:!fresh (List.map (fun (a, b) -> Graph.normalize_edge a b) !edges)

let treewidth2_no ~blocks seed =
  let g = treewidth2 ~blocks seed in
  let n = Graph.n g in
  let rng = Rng.create (seed + 5151) in
  let rec try_edge tries =
    if tries = 0 then None
    else begin
      let a = Rng.int rng n and b = Rng.int rng n in
      if a <> b && not (Graph.mem_edge g a b) then begin
        let g2 = Graph.add_edges g [ (a, b) ] in
        if Traversal.is_connected g2 && not (Series_parallel.is_treewidth_le_2 g2) then Some g2
        else try_edge (tries - 1)
      end
      else try_edge (tries - 1)
    end
  in
  try_edge 150
