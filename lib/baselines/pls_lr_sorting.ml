type result = { verdict : Dip.verdict; stats : Dip.stats }

let full_width n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  max 1 (go 1)

let run ?label_bits inst =
  Dipp_protocols.Lr_sorting.validate_instance inst;
  let n = inst.Dipp_protocols.Lr_sorting.n in
  (* dipp-refine: value <= log + 1 *)
  let width = match label_bits with Some w -> w | None -> full_width n in
  let m = 1 lsl width in
  let meter = Dip.meter () in
  let pos = Array.make n 0 in
  Array.iteri (fun i v -> pos.(v) <- i) inst.Dipp_protocols.Lr_sorting.path;
  let label v = pos.(v) mod m in
  Dip.record_prover meter (Array.init n (fun v -> Bits.of_int ~width (label v)));
  let arcs_at = Array.make n [] in
  List.iter
    (fun (u, v) ->
      arcs_at.(u) <- (u, v) :: arcs_at.(u);
      arcs_at.(v) <- (u, v) :: arcs_at.(v))
    inst.Dipp_protocols.Lr_sorting.arcs;
  let verify v =
    let ok = ref true in
    let p = label v in
    (* path neighbors *)
    if pos.(v) > 0 then begin
      let u = inst.Dipp_protocols.Lr_sorting.path.(pos.(v) - 1) in
      if label u <> (p - 1 + m) mod m then ok := false
    end;
    if pos.(v) < n - 1 then begin
      let u = inst.Dipp_protocols.Lr_sorting.path.(pos.(v) + 1) in
      if label u <> (p + 1) mod m then ok := false
    end;
    (* arcs must increase; with truncated labels the comparison is the
       prover-claimed integer order of the residues *)
    List.iter (fun (u, w) -> if label u >= label w then ok := false) arcs_at.(v);
    !ok
  in
  { verdict = Dip.all_accept ~n verify; stats = Dip.stats meter }
