type instance = { graph : Graph.t; witness : int list }

type result = { verdict : Dip.verdict; stats : Dip.stats }

let full_width n =
  let rec go w = if 1 lsl w >= n then w else go (w + 1) in
  max 1 (go 1)

(* One-round deterministic PLS for path-outerplanarity (FFM+21 shape).
   Labels: the node's position on P, two has-left/has-right bits, and the
   endpoints of the first edge drawn strictly above the node.  The verifier
   anchors positions at the left end, forces them exact along the path, and
   checks the nesting conditions:
     3. above(v) strictly spans pos(v);
     4. above(v) contains the longest right edge (the successor rule);
     5. above(v) contains the longest left edge;
     6. above(right neighbor) = shortest right edge;
     7. above(left neighbor) = shortest left edge;
     8. above propagates across edge-free gaps;
     9. a right edge at v cannot coexist with a left edge at v's right
        neighbor (they would cross).
   At full width the scheme is deterministic-sound; with truncated labels
   (positions mod 2^label_bits) the Theorem 1.8 experiment exhibits fooling
   instances once 2^label_bits < n. *)
let run ?label_bits inst =
  let g = inst.graph in
  let n = Graph.n g in
  (* dipp-refine: value <= log + 1 *)
  let width = match label_bits with Some w -> w | None -> full_width n in
  let m = 1 lsl width in
  let meter = Dip.meter () in
  let pos = Array.make n (-1) in
  List.iteri (fun i v -> pos.(v) <- i) inst.witness;
  let path_arr = Array.of_list inst.witness in
  let lbl v = pos.(v) mod m in
  (* honest above: innermost interval strictly spanning each position *)
  let intervals =
    Graph.fold_edges
      (fun (u, v) acc ->
        let l = min pos.(u) pos.(v) and r = max pos.(u) pos.(v) in
        if r - l >= 2 then (l, r) :: acc else acc)
      g []
  in
  let above = Array.make n None in
  List.iter
    (fun (l, r) ->
      for p = l + 1 to r - 1 do
        match above.(p) with
        | Some (l', r') when l >= l' && r <= r' -> above.(p) <- Some (l, r)
        | Some _ -> ()
        | None -> above.(p) <- Some (l, r)
      done)
    intervals;
  let has_left = Array.make n false and has_right = Array.make n false in
  List.iter
    (fun (l, r) ->
      has_right.(path_arr.(l)) <- true;
      has_left.(path_arr.(r)) <- true)
    intervals;
  let above_lbl v = Option.map (fun (l, r) -> (l mod m, r mod m)) above.(pos.(v)) in
  Dip.record_prover meter
    (Array.init n (fun v ->
         let w = Bits.Writer.create () in
         Bits.Writer.int w ~width (lbl v);
         Bits.Writer.bool w has_left.(v);
         Bits.Writer.bool w has_right.(v);
         (match above_lbl v with
         | Some (a, b) ->
             Bits.Writer.bool w true;
             Bits.Writer.int w ~width a;
             Bits.Writer.int w ~width b
         | None ->
             Bits.Writer.bool w false;
             Bits.Writer.int w ~width 0;
             Bits.Writer.int w ~width 0);
         Bits.Writer.contents w));
  let verify v =
    let ok = ref true in
    let fail () = ok := false in
    let p = pos.(v) in
    let my = lbl v in
    if p = 0 && my <> 0 then fail ();
    if p > 0 && lbl path_arr.(p - 1) <> (my - 1 + m) mod m then fail ();
    if p < n - 1 && lbl path_arr.(p + 1) <> (my + 1) mod m then fail ();
    (* incident non-path intervals, in label space *)
    let edges =
      List.filter_map
        (fun u -> if abs (pos.(u) - p) <= 1 then None else Some (lbl u))
        (Array.to_list (Graph.neighbors g v))
    in
    let rights = List.sort Int.compare (List.filter (fun x -> x > my) edges) in
    let lefts = List.sort Int.compare (List.filter (fun x -> x < my) edges) in
    (* equal labels (possible when truncated): treated as inconsistent *)
    if List.exists (fun x -> x = my) edges then fail ();
    if has_right.(v) <> not (List.is_empty rights) then fail ();
    if has_left.(v) <> not (List.is_empty lefts) then fail ();
    let ab = above_lbl v in
    (* 3: strict span *)
    (match ab with Some (x, y) -> if not (x < my && my < y) then fail () | None -> ());
    (* 4/5: contain the longest edges *)
    (match (ab, List.rev rights) with
    | Some (_, y), b :: _ -> if y < b then fail ()
    | None, _ :: _ -> () (* outermost *)
    | _ -> ());
    (match (ab, lefts) with
    | Some (x, _), a :: _ -> if x > a then fail ()
    | _ -> ());
    (* 6/7: shortest edges pin the neighbors' above *)
    (if p < n - 1 then
       let u = path_arr.(p + 1) in
       match rights with
       | b :: _ ->
           if has_left.(u) then fail () (* 9 *)
           else if above_lbl u <> Some (my, b) then fail ()
       | [] -> if (not has_left.(u)) && above_lbl u <> ab then fail () (* 8 *));
    (if p > 0 then
       let u = path_arr.(p - 1) in
       match List.rev lefts with
       | a :: _ -> if above_lbl u <> Some (a, my) then fail ()
       | [] -> ());
    !ok
  in
  { verdict = Dip.all_accept ~n verify; stats = Dip.stats meter }
