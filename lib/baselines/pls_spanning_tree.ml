type result = { verdict : Dip.verdict; stats : Dip.stats }

let run g ~parent =
  let n = Graph.n g in
  let meter = Dip.meter () in
  (* dipp-refine: value <= log + 1 *)
  let width =
    let rec go w = if 1 lsl w >= max 2 n then w else go (w + 1) in
    go 1
  in
  (* honest distances (cheating provers are not interesting here: the
     scheme is deterministic, used as a proof-size baseline) *)
  let dist = Array.make n (-1) in
  let rec d v =
    if dist.(v) >= 0 then dist.(v)
    else begin
      let r = if parent.(v) < 0 then 0 else 1 + d parent.(v) in
      dist.(v) <- r;
      r
    end
  in
  for v = 0 to n - 1 do ignore (d v) done;
  Dip.record_prover meter (Array.init n (fun v -> Bits.of_int ~width dist.(v)));
  let verify v =
    if parent.(v) < 0 then dist.(v) = 0
    else Graph.mem_edge g v parent.(v) && dist.(parent.(v)) = dist.(v) - 1
  in
  { verdict = Dip.all_accept ~n verify; stats = Dip.stats meter }
