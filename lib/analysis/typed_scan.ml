(* A lightweight whole-program view for the flow analysis: every top-level
   function binding of every module, indexed as "Module.name", with its
   parameter names and body.  This is the layer interprocedural rules
   (flow-locality) resolve qualified calls against; single-file entry
   points run with an empty program and degrade gracefully. *)

type entry = {
  params : string list;
  body : Parsetree.expression;
  file : string;
  line : int;
  orig : Parsetree.expression;
}

type program = (string, entry) Hashtbl.t

let module_name path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Peels the parameter chain of a binding; [None] for plain values.  A
   [function] body counts as one more (anonymous) parameter level. *)
let peel_params expr =
  let rec go acc (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, _, pat, body) -> go (Ast_scan.pattern_vars pat @ acc) body
    | Pexp_newtype (_, body) -> go acc body
    | Pexp_function _ -> Some (acc, e)
    | _ -> ( match acc with [] -> None | _ :: _ -> Some (acc, e))
  in
  go [] expr

let empty () : program = Hashtbl.create 64

let add_structure ?(file = "") prog ~modname structure =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt; _ } -> (
                  match peel_params vb.pvb_expr with
                  | Some (params, body) ->
                      Hashtbl.replace prog (modname ^ "." ^ txt)
                        {
                          params;
                          body;
                          file;
                          line = vb.pvb_pat.ppat_loc.loc_start.pos_lnum;
                          orig = vb.pvb_expr;
                        }
                  | None -> ())
              | _ -> ())
            vbs
      | _ -> ())
    structure

let of_structure ?file ~modname structure =
  let prog = empty () in
  add_structure ?file prog ~modname structure;
  prog

let lookup prog ~modname ~name = Hashtbl.find_opt prog (modname ^ "." ^ name)

let load_tree root =
  let prog = empty () in
  let rec walk path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.iter (fun name ->
             if name <> "" && name.[0] <> '.' && name <> "_build" then
               walk (Filename.concat path name))
    else if Filename.check_suffix path ".ml" then
      match Ast_scan.parse_file path with
      | structure -> add_structure ~file:path prog ~modname:(module_name path) structure
      | exception _ -> ()
  in
  if Sys.file_exists root then walk root;
  prog
