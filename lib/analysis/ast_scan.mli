(** Parsing and shared AST plumbing for the lint rules.

    Built on compiler-libs: sources are parsed with the compiler's own
    parser, so anything that builds also lints, and locations match the
    compiler's diagnostics exactly. *)

val parse_string : filename:string -> string -> Parsetree.structure
(** Parses an implementation; [filename] seeds the locations.  Raises the
    compiler's located exceptions (e.g. [Syntaxerr.Error]) on bad input. *)

val parse_file : string -> Parsetree.structure

val ident_path : Longident.t -> string
(** Dotted rendering, e.g. ["Graph.fold_edges"].  [Lapply] renders with
    parentheses and never matches any rule pattern. *)

val last_two : Longident.t -> (string * string) option
(** The last two components of a dotted path: [Some ("Graph", "edges")]
    for [Dipp_graph.Graph.edges]; [None] for unqualified idents. *)

val pattern_vars : Parsetree.pattern -> string list
(** Every value name the pattern binds ([Ppat_var] and [Ppat_alias]). *)

(** {2 Suppressions}

    A comment [(* dipp-lint: allow <rule> [<rule> ...] *)] on the same
    line as a finding, or on the line directly above it, silences the
    named rules there; [allow all] silences every rule. *)

type suppressions

val suppressions_of_source : string -> suppressions

val suppressed : suppressions -> line:int -> rule:string -> bool

val suppression_entries : suppressions -> (int * string list) list
(** Every [allow] comment as [(line, tokens)], in line order — for
    validating that each token names a rule the linter knows. *)
