(* dipp-race: static domain-safety and determinism analyzer.

   The multicore layers (lib/engine, lib/trace) promise byte-identical
   reports for any DIPP_JOBS; until now that promise was enforced only by
   convention.  This pass makes it a lint-time obligation, in four rules:

   - [race-shared-mut]: every mutable location that domains can share —
     a module-level binding (callers may be pooled) or a local captured
     by a closure submitted to Pool.run / Pool.map / Domain.spawn — must
     be Atomic, accessed under one consistent Mutex (lockset inference),
     or provably domain-local (e.g. a task-indexed array cell whose
     index is the task's own).
   - [race-lock-discipline]: one guarding mutex per shared location, a
     global acquisition order (no cycles), no re-entry, and no lock held
     across a Pool/Domain submission.
   - [race-determinism]: shared accumulators may be updated from pooled
     tasks only through commutative/associative merges (the Dip.merge_*
     algebra, +, land, max, ...); order-dependent writes — list cons,
     Buffer.add_*, blind overwrites, printing to a shared channel —
     are findings even under a lock, because the result then depends on
     task completion order.
   - [race-rng]: an Rng stream captured by a pooled task may only be
     used as the parent of Rng.split / Rng.split_string keyed by the
     task's own identity (split reads only the immutable seed; drawing
     mutates shared state).

   Trusted dipp-race annotations (guarded-by M | domain-local |
   merge-only, on the binding's line or the line above — see race.mli
   for the exact comment syntax) are the axioms of the pass and are
   validated: malformed ones, guarded-by claims naming no mutex, and
   annotations attached to nothing are findings.

   Approximations (documented in ANALYSIS.md): reachability through
   record-field closures (Spec.trial, a family's build) is statically
   unresolvable, so module-level mutable state is required to be safe
   for concurrent access unconditionally; lambda bodies inherit the
   lockset of their syntactic context; reads of captured arrays/bytes
   are allowed (concurrent writers are flagged independently); calls
   out of a pooled task are followed same-module in full and
   cross-module (via Typed_scan) for shared-channel output. *)

let rule_shared = "race-shared-mut"
let rule_lock = "race-lock-discipline"
let rule_determinism = "race-determinism"
let rule_rng = "race-rng"

(* ---- annotations ------------------------------------------------------ *)

type annot = Guarded_by of string | Domain_local | Merge_only

type annots = {
  tbl : (int, annot) Hashtbl.t;
  bad : (int * string) list;
  used : (int, unit) Hashtbl.t;
}

let ann_marker = "dipp-race:"

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_mutex_name s = s <> "" && String.for_all (fun c -> is_ident_char c || c = '.') s

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let annotations_of_source src =
  let tbl = Hashtbl.create 8 and bad = ref [] in
  List.iteri
    (fun i line ->
      match find_sub line ann_marker with
      | None -> ()
      | Some j -> (
          let rest =
            String.sub line
              (j + String.length ann_marker)
              (String.length line - j - String.length ann_marker)
          in
          let rest = match find_sub rest "*)" with Some k -> String.sub rest 0 k | None -> rest in
          let tokens =
            String.split_on_char ' ' (String.trim rest) |> List.filter (fun s -> s <> "")
          in
          let malformed msg = bad := (i + 1, msg) :: !bad in
          (* Prose that merely mentions the marker is not an annotation
             attempt: only engage on a known proof keyword, then insist
             the whole comment parses. *)
          match tokens with
          | [ "domain-local" ] -> Hashtbl.replace tbl (i + 1) Domain_local
          | [ "merge-only" ] -> Hashtbl.replace tbl (i + 1) Merge_only
          | [ "guarded-by"; m ] when is_mutex_name m -> Hashtbl.replace tbl (i + 1) (Guarded_by m)
          | "guarded-by" :: rest ->
              malformed
                (Printf.sprintf "`guarded-by` takes exactly one mutex name, got `%s`"
                   (String.concat " " rest))
          | ("domain-local" | "merge-only") :: _ :: _ ->
              malformed "`domain-local` and `merge-only` take no arguments"
          | _ -> ()))
    (String.split_on_char '\n' src);
  { tbl; bad = List.rev !bad; used = Hashtbl.create 8 }

let no_annots () = { tbl = Hashtbl.create 1; bad = []; used = Hashtbl.create 1 }

let annotation_findings ~filename annots =
  List.map
    (fun (line, msg) ->
      {
        Report.file = filename;
        line;
        col = 0;
        rule = rule_shared;
        msg = "malformed dipp-race annotation: " ^ msg;
      })
    annots.bad

(* An annotation covers the binding on its own line or the line below
   it, like lint suppressions and dipp-refine bounds. *)
let ann_at annots ~line =
  match Hashtbl.find_opt annots.tbl line with
  | Some a -> Some (line, a)
  | None -> (
      match Hashtbl.find_opt annots.tbl (line - 1) with
      | Some a -> Some (line - 1, a)
      | None -> None)

(* ---- the shared-state model ------------------------------------------- *)

type maker = Mref | Marr | Mbytes | Mtbl | Mbuf | Mqueue | Mstack

let maker_name = function
  | Mref -> "ref"
  | Marr -> "array"
  | Mbytes -> "bytes"
  | Mtbl -> "hashtable"
  | Mbuf -> "buffer"
  | Mqueue -> "queue"
  | Mstack -> "stack"

(* What a name is bound to, as far as this pass tracks values. *)
type binfo =
  | Mut of maker * int  (** a plain mutable location; the binding's line *)
  | Atomic_v
  | Mutex_v
  | Rng_v
  | Task_ix  (** a submitted closure's own parameter: the task identity *)
  | Claim_ix  (** an index claimed via Atomic.fetch_and_add: task-unique *)
  | Fn_local of Parsetree.expression
  | Plain

type gkind = Gmut of maker | Gatomic | Gmutex

type access = {
  aloc : Location.t;
  awrite : bool;
  aordered : bool;  (** write whose effect depends on execution order *)
  adesc : string;
  alocks : string list;  (** lockset held at the access *)
  apar : bool;  (** syntactically inside a pooled task *)
}

type glob = {
  gname : string;
  gkind : gkind;
  gloc : Location.t;
  gline : int;
  mutable gaccs : access list;
}

type safe = {
  rfile : string;
  rline : int;  (** 1-based *)
  rcol : int;  (** 0-based *)
  rdesc : string;
}

type result = { findings : Report.finding list; safe : safe list }

type ctx = {
  filename : string;
  program : Typed_scan.program option;
  annots : annots;
  globals : (string, glob) Hashtbl.t;
  topfns : (string, Parsetree.expression) Hashtbl.t;
  mutable findings : Report.finding list;
  mutable safes : safe list;
  safe_seen : (int * int * string, unit) Hashtbl.t;
  mutable edges : (string * string * Location.t) list;  (** held, acquired *)
  inlined : (string, unit) Hashtbl.t;
  printers : (string, (string * int) option) Hashtbl.t;
  mutable excused : string option;
      (** name whose read inside its own checked update must not re-fire *)
}

let emit ctx ~loc ~rule msg = ctx.findings <- Report.finding ~loc ~rule msg :: ctx.findings

let add_safe ctx ~(loc : Location.t) desc =
  let p = loc.loc_start in
  let key = (p.pos_lnum, p.pos_cnum - p.pos_bol, desc) in
  if not (Hashtbl.mem ctx.safe_seen key) then begin
    Hashtbl.add ctx.safe_seen key ();
    ctx.safes <-
      { rfile = p.pos_fname; rline = p.pos_lnum; rcol = p.pos_cnum - p.pos_bol; rdesc = desc }
      :: ctx.safes
  end

(* ---- small AST helpers ------------------------------------------------ *)

let rec strip (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> strip e
  | _ -> e

let ident_of e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> Some n
  | _ -> None

let rec var_of_pat (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some (txt, p.ppat_loc)
  | Ppat_constraint (p, _) -> var_of_pat p
  | _ -> None

(* Immediate sub-expressions, for the generic lockset-threading walk. *)
let children (e : Parsetree.expression) =
  let acc = ref [] in
  let expr _ (c : Parsetree.expression) = acc := c :: !acc in
  let self = { Ast_iterator.default_iterator with expr } in
  Ast_iterator.default_iterator.expr self e;
  List.rev !acc

let mentions_ident name e =
  let found = ref false in
  let expr self (c : Parsetree.expression) =
    (match c.pexp_desc with
    | Pexp_ident { txt = Longident.Lident n; _ } when n = name -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.expr self c
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.expr iter e;
  !found

(* ---- classification --------------------------------------------------- *)

let classify (e : Parsetree.expression) =
  let e = strip e in
  match e.pexp_desc with
  | Pexp_array _ -> Some (fun line -> Mut (Marr, line))
  | Pexp_fun _ | Pexp_function _ -> Some (fun _ -> Fn_local e)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match txt with
      | Longident.Lident "ref" -> Some (fun line -> Mut (Mref, line))
      | _ -> (
          match Ast_scan.last_two txt with
          | Some ("Stdlib", "ref") -> Some (fun line -> Mut (Mref, line))
          | Some
              ( "Array",
                ( "make" | "init" | "create_float" | "make_matrix" | "of_list" | "copy" | "append"
                | "concat" | "sub" | "map" | "mapi" | "of_seq" ) ) ->
              Some (fun line -> Mut (Marr, line))
          | Some ("Bytes", ("create" | "make" | "init" | "of_string" | "copy" | "sub" | "cat")) ->
              Some (fun line -> Mut (Mbytes, line))
          | Some ("Hashtbl", ("create" | "copy" | "of_seq")) -> Some (fun line -> Mut (Mtbl, line))
          | Some ("Buffer", "create") -> Some (fun line -> Mut (Mbuf, line))
          | Some ("Queue", ("create" | "copy")) -> Some (fun line -> Mut (Mqueue, line))
          | Some ("Stack", ("create" | "copy")) -> Some (fun line -> Mut (Mstack, line))
          | Some ("Atomic", "make") -> Some (fun _ -> Atomic_v)
          | Some ("Mutex", "create") -> Some (fun _ -> Mutex_v)
          | Some ("Rng", ("create" | "split" | "split_string")) -> Some (fun _ -> Rng_v)
          | Some ("Atomic", "fetch_and_add") -> Some (fun _ -> Claim_ix)
          | _ -> None))
  | _ -> None

let binfo_of env e line =
  match classify e with
  | Some mk -> mk line
  | None -> (
      (* an alias of a tracked local binding keeps its classification;
         globals are tracked by name, not aliased *)
      match ident_of e with
      | Some n -> ( match List.assoc_opt n env with Some (info, _) -> info | None -> Plain)
      | None -> Plain)

(* Stdlib operations on mutable containers: which positional argument is
   the container, whether the call writes it, and whether the write's
   effect depends on execution order. *)
let container_ops m f : (int * bool * bool) list =
  match (m, f) with
  | "Hashtbl", ("find" | "find_opt" | "find_all" | "mem" | "length" | "copy" | "to_seq" | "stats")
    ->
      [ (0, false, false) ]
  | "Hashtbl", ("iter" | "fold") -> [ (1, false, false) ]
  (* a keyed replace is idempotent for a value that is a pure function of
     the key (the label-cache contract); add stacks duplicates in order *)
  | "Hashtbl", "replace" -> [ (0, true, false) ]
  | "Hashtbl", "add" -> [ (0, true, true) ]
  | "Hashtbl", ("remove" | "reset" | "clear") -> [ (0, true, false) ]
  | "Hashtbl", "filter_map_inplace" -> [ (1, true, true) ]
  | "Array", ("get" | "unsafe_get" | "length" | "to_list" | "copy" | "sub" | "mem" | "memq") ->
      [ (0, false, false) ]
  | "Array", ("iter" | "iteri" | "map" | "mapi" | "exists" | "for_all") -> [ (1, false, false) ]
  | "Array", "fold_left" -> [ (2, false, false) ]
  | "Array", "fold_right" -> [ (1, false, false) ]
  | "Array", ("set" | "unsafe_set" | "fill") -> [ (0, true, false) ]
  | "Array", "blit" -> [ (0, false, false); (2, true, false) ]
  | "Array", ("sort" | "stable_sort" | "fast_sort") -> [ (0, true, false) ]
  | "Bytes", ("get" | "unsafe_get" | "length" | "to_string" | "sub" | "sub_string" | "copy") ->
      [ (0, false, false) ]
  | "Bytes", ("set" | "unsafe_set" | "fill") -> [ (0, true, false) ]
  | "Bytes", ("blit" | "blit_string") -> [ (0, false, false); (2, true, false) ]
  | "Buffer", ("contents" | "length" | "to_bytes" | "sub" | "nth") -> [ (0, false, false) ]
  | "Buffer", f when String.length f >= 4 && String.sub f 0 4 = "add_" -> [ (0, true, true) ]
  | "Buffer", ("clear" | "reset" | "truncate") -> [ (0, true, false) ]
  | "Queue", ("length" | "is_empty" | "peek" | "peek_opt" | "copy") -> [ (0, false, false) ]
  | "Queue", ("iter" | "fold") -> [ (1, false, false) ]
  | "Queue", ("add" | "push") -> [ (1, true, true) ]
  | "Queue", ("pop" | "take" | "pop_opt" | "take_opt") -> [ (0, true, true) ]
  | "Queue", "clear" -> [ (0, true, false) ]
  | "Stack", ("length" | "is_empty" | "top" | "top_opt" | "iter" | "fold") -> [ (0, false, false) ]
  | "Stack", "push" -> [ (1, true, true) ]
  | "Stack", ("pop" | "pop_opt") -> [ (0, true, true) ]
  | "Stack", "clear" -> [ (0, true, false) ]
  | _ -> []

(* Output to a channel every domain shares: nondeterministic
   interleaving.  [fprintf] is deliberately absent — its channel is a
   parameter, not necessarily shared. *)
let output_head lid =
  match lid with
  | Longident.Lident
      ( "print_string" | "print_endline" | "print_newline" | "print_int" | "print_char"
      | "print_float" | "print_bytes" | "prerr_string" | "prerr_endline" | "prerr_newline"
      | "prerr_int" | "output_string" | "output_char" | "output_bytes" | "output_byte"
      | "output_value" ) ->
      true
  | _ -> (
      match Ast_scan.last_two lid with
      | Some (("Printf" | "Format"), ("printf" | "eprintf")) -> true
      | Some ("Stdlib", ("print_string" | "print_endline" | "prerr_endline")) -> true
      | _ -> false)

(* How an [x := rhs] update composes with concurrent updates. *)
type update = Merge_like of string | Ordered_up of string

let merge_ops = [ "+"; "*"; "land"; "lor"; "lxor"; "min"; "max" ]

let update_kind name rhs =
  let rhs = strip rhs in
  if not (mentions_ident name rhs) then Ordered_up "blind overwrite: last writer wins"
  else
    match rhs.pexp_desc with
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> Ordered_up "list cons"
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
        match txt with
        | Longident.Lident op when List.mem op merge_ops ->
            Merge_like (Printf.sprintf "commutative `%s`" op)
        | Longident.Lident ("@" | "^") -> Ordered_up "order-dependent append"
        | _ ->
            let base = match Ast_scan.last_two txt with Some (_, f) -> f | None -> "" in
            let base = match (base, txt) with "", Longident.Lident f -> f | _ -> base in
            if String.length base >= 6 && String.sub base 0 6 = "merge_" then
              Merge_like ("merge algebra `" ^ base ^ "`")
            else Ordered_up "update not in the merge algebra")
    | _ -> Ordered_up "update not in the merge algebra"

(* ---- cross-module output scan ----------------------------------------- *)

(* Does [M.f] (transitively, depth-limited) print to a shared channel?
   Used for qualified calls out of pooled tasks — the callee's own module
   state is covered by that module's own analysis; interleaved output is
   the cross-module hazard worth chasing. *)
let rec scan_prints ctx depth ~modname (e : Parsetree.expression) : (string * int) option =
  let hit = ref None in
  let expr self (c : Parsetree.expression) =
    match !hit with
    | Some _ -> ()
    | None ->
        (match c.pexp_desc with
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) when output_head txt ->
            hit := Some (loc.loc_start.pos_fname, loc.loc_start.pos_lnum)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) when depth > 0 -> (
            let target =
              match txt with
              | Longident.Lident n -> Some (modname, n)
              | _ -> (
                  match Ast_scan.last_two txt with
                  | Some (m, f) when m <> "" && m.[0] >= 'A' && m.[0] <= 'Z' -> Some (m, f)
                  | _ -> None)
            in
            match target with
            | Some (m, f) -> (
                match printer_of ctx depth m f with Some p -> hit := Some p | None -> ())
            | None -> ())
        | _ -> ());
        Ast_iterator.default_iterator.expr self c
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.expr iter e;
  !hit

and printer_of ctx depth m f : (string * int) option =
  match ctx.program with
  | None -> None
  | Some program -> (
      let key = m ^ "." ^ f in
      match Hashtbl.find_opt ctx.printers key with
      | Some r -> r
      | None ->
          Hashtbl.replace ctx.printers key None (* recursion guard *);
          let r =
            match Typed_scan.lookup program ~modname:m ~name:f with
            | Some entry -> scan_prints ctx (depth - 1) ~modname:m entry.Typed_scan.body
            | None -> None
          in
          Hashtbl.replace ctx.printers key r;
          r)

(* ---- lockset plumbing ------------------------------------------------- *)

let inter a b = List.filter (fun x -> List.mem x b) a
let remove x l = List.filter (fun y -> y <> x) l

let mutex_name ctx env e =
  match (strip e).pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; _ } -> (
      match List.assoc_opt n env with
      | Some (Mutex_v, _) -> Some n
      | Some _ -> None
      | None -> (
          match Hashtbl.find_opt ctx.globals n with
          | Some { gkind = Gmutex; _ } -> Some n
          | _ -> None))
  | Pexp_ident { txt; _ } -> Some (Ast_scan.ident_path txt)
  | _ -> None

(* ---- the walk --------------------------------------------------------- *)

let record (g : glob) ~loc ~write ~ordered ~desc ~locks ~par =
  g.gaccs <-
    { aloc = loc; awrite = write; aordered = ordered; adesc = desc; alocks = locks; apar = par }
    :: g.gaccs

let lookup_name ctx env n =
  match List.assoc_opt n env with
  | Some (info, cap) -> `Local (info, cap)
  | None -> ( match Hashtbl.find_opt ctx.globals n with Some g -> `Global g | None -> `Unknown)

let mark_captured env = List.map (fun (n, (i, _)) -> (n, (i, true))) env

let annotated ctx ~line =
  match ann_at ctx.annots ~line with
  | Some (aline, a) ->
      Hashtbl.replace ctx.annots.used aline ();
      Some a
  | None -> None

(* A trusted annotation on a binding: consume it, validate guarded-by
   against the known mutexes, and record the trusted proof. *)
let consume_binding_annot ctx env ~name ~maker ~(loc : Location.t) =
  let line = loc.loc_start.pos_lnum in
  match annotated ctx ~line with
  | None -> false
  | Some a ->
      (match a with
      | Guarded_by m ->
          let known =
            (match Hashtbl.find_opt ctx.globals m with
            | Some { gkind = Gmutex; _ } -> true
            | _ -> false)
            || (match List.assoc_opt m env with Some (Mutex_v, _) -> true | _ -> false)
            || String.contains m '.'
          in
          if not known then
            emit ctx ~loc ~rule:rule_shared
              (Printf.sprintf
                 "dipp-race annotation claims `%s` is guarded by `%s`, but no Mutex of that name \
                  is in scope"
                 name m)
          else
            add_safe ctx ~loc
              (Printf.sprintf "%s `%s`: trusted annotation guarded-by `%s`" (maker_name maker)
                 name m)
      | Domain_local ->
          add_safe ctx ~loc
            (Printf.sprintf "%s `%s`: trusted annotation domain-local" (maker_name maker) name)
      | Merge_only ->
          add_safe ctx ~loc
            (Printf.sprintf "%s `%s`: trusted annotation merge-only" (maker_name maker) name));
      true

let rec walk ctx env ~par ls (e : Parsetree.expression) : string list =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident n; loc } -> (
      (* a bare occurrence outside any recognized operation *)
      match lookup_name ctx env n with
      | `Local (Rng_v, true) when par && ctx.excused <> Some n ->
          emit ctx ~loc ~rule:rule_rng
            (Printf.sprintf
               "captured Rng stream `%s` escapes into a pooled task; pass a per-task stream \
                (Rng.split %s <task index>) instead"
               n n);
          ls
      | `Global ({ gkind = Gmut _; _ } as g) when ctx.excused <> Some n ->
          (* escapes to an unknown consumer: conservatively a write *)
          record g ~loc ~write:true ~ordered:false ~desc:"escapes to an unknown consumer"
            ~locks:ls ~par;
          ls
      | _ -> ls)
  | Pexp_let (_, vbs, body) ->
      let env', ls' =
        List.fold_left
          (fun (env_acc, ls) (vb : Parsetree.value_binding) ->
            let ls = walk ctx env ~par ls vb.pvb_expr in
            match var_of_pat vb.pvb_pat with
            | Some (name, vloc) ->
                let line = vloc.loc_start.pos_lnum in
                let info = binfo_of env vb.pvb_expr line in
                (match info with
                | Mut (mk, _) -> ignore (consume_binding_annot ctx env ~name ~maker:mk ~loc:vloc)
                | _ -> ());
                ((name, (info, false)) :: env_acc, ls)
            | None ->
                ( List.fold_left
                    (fun acc v -> (v, (Plain, false)) :: acc)
                    env_acc
                    (Ast_scan.pattern_vars vb.pvb_pat),
                  ls ))
          (env, ls) vbs
      in
      walk ctx env' ~par ls' body
  | Pexp_fun (_, default, pat, body) ->
      (match default with Some d -> ignore (walk ctx env ~par ls d) | None -> ());
      let env' =
        List.fold_left (fun acc v -> (v, (Plain, false)) :: acc) env (Ast_scan.pattern_vars pat)
      in
      (* approximation: the body inherits the syntactic lockset *)
      ignore (walk ctx env' ~par ls body);
      ls
  | Pexp_function cases ->
      ignore (walk_cases ctx env ~par ls cases);
      ls
  | Pexp_sequence (a, b) ->
      let ls = walk ctx env ~par ls a in
      walk ctx env ~par ls b
  | Pexp_ifthenelse (c, t, eo) ->
      let ls0 = walk ctx env ~par ls c in
      let lt = walk ctx env ~par ls0 t in
      let le = match eo with Some e2 -> walk ctx env ~par ls0 e2 | None -> ls0 in
      inter lt le
  | Pexp_match (scrut, cases) ->
      let ls0 = walk ctx env ~par ls scrut in
      walk_cases ctx env ~par ls0 cases
  | Pexp_try (body, cases) ->
      let lsb = walk ctx env ~par ls body in
      inter lsb (walk_cases ctx env ~par ls cases)
  | Pexp_while (c, b) ->
      ignore (walk ctx env ~par ls c);
      ignore (walk ctx env ~par ls b);
      ls
  | Pexp_for (pat, lo, hi, _, body) ->
      ignore (walk ctx env ~par ls lo);
      ignore (walk ctx env ~par ls hi);
      let env' =
        List.fold_left (fun acc v -> (v, (Plain, false)) :: acc) env (Ast_scan.pattern_vars pat)
      in
      ignore (walk ctx env' ~par ls body);
      ls
  | Pexp_setfield (r, _, v) ->
      let ls = walk ctx env ~par ls v in
      (match ident_of r with
      | Some n -> (
          match lookup_name ctx env n with
          | `Global ({ gkind = Gmut _; _ } as g) ->
              record g ~loc:e.pexp_loc ~write:true ~ordered:false ~desc:"mutable field write"
                ~locks:ls ~par
          | `Local (_, true) when par ->
              if List.is_empty ls then
                emit ctx ~loc:e.pexp_loc ~rule:rule_shared
                  (Printf.sprintf
                     "mutable field of captured `%s` written from a pooled task without a guard; \
                      use Atomic, hold one Mutex at every access, or a dipp-race annotation \
                      (domain-local | merge-only) on the binding"
                     n)
          | _ -> ())
      | None -> ignore (walk ctx env ~par ls r));
      ls
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc = head_loc }; _ }, args) ->
      walk_apply ctx env ~par ls e txt head_loc args
  | _ -> List.fold_left (fun ls c -> walk ctx env ~par ls c) ls (children e)

and walk_cases ctx env ~par ls cases =
  let exits =
    List.map
      (fun (c : Parsetree.case) ->
        let env' =
          List.fold_left
            (fun acc v -> (v, (Plain, false)) :: acc)
            env
            (Ast_scan.pattern_vars c.pc_lhs)
        in
        (match c.pc_guard with Some g -> ignore (walk ctx env' ~par ls g) | None -> ());
        walk ctx env' ~par ls c.pc_rhs)
      cases
  in
  match exits with [] -> ls | first :: rest -> List.fold_left inter first rest

and walk_args ctx env ~par ls args =
  List.fold_left (fun ls (_, a) -> walk ctx env ~par ls a) ls args

(* Walk a closure submitted to the pool: its parameters are the task's
   identity, everything already in scope is captured, and the new domain
   starts with no locks held. *)
and walk_submitted ctx env lam =
  let lam = strip lam in
  match Typed_scan.peel_params lam with
  | Some (params, body) ->
      let env' =
        List.fold_left (fun acc p -> (p, (Task_ix, false)) :: acc) (mark_captured env) params
      in
      ignore (walk ctx env' ~par:true [] body)
  | None -> ignore (walk ctx (mark_captured env) ~par:true [] lam)

and inline_local ctx env ~ls lam =
  let key =
    let p = lam.Parsetree.pexp_loc.loc_start in
    Printf.sprintf "%s:%d:%d" p.pos_fname p.pos_lnum (p.pos_cnum - p.pos_bol)
  in
  if not (Hashtbl.mem ctx.inlined key) then begin
    Hashtbl.add ctx.inlined key ();
    match Typed_scan.peel_params lam with
    | Some (params, body) ->
        let env' =
          List.fold_left (fun acc p -> (p, (Plain, false)) :: acc) (mark_captured env) params
        in
        ignore (walk ctx env' ~par:true ls body)
    | None -> ignore (walk ctx (mark_captured env) ~par:true ls lam)
  end

and captured_write ctx ~loc ~name ~maker ~line ls (up : update) =
  match annotated ctx ~line with
  | Some _ -> () (* trusted: the safe entry was recorded at the binding *)
  | None -> (
      match ls with
      | [] ->
          emit ctx ~loc ~rule:rule_shared
            (Printf.sprintf
               "captured %s `%s` is written from a pooled task without a guard; make it Atomic, \
                hold one Mutex at every access, or prove it domain-local (task-indexed cell or a \
                dipp-race annotation on the binding)"
               (maker_name maker) name)
      | guard :: _ -> (
          match up with
          | Ordered_up why ->
              emit ctx ~loc ~rule:rule_determinism
                (Printf.sprintf
                   "order-dependent update of captured %s `%s` from a pooled task (%s): even \
                    under `%s` the result depends on task completion order; return per-task \
                    values and fold after the join, or combine through the commutative \
                    Dip.merge_* algebra"
                   (maker_name maker) name why guard)
          | Merge_like how ->
              add_safe ctx ~loc
                (Printf.sprintf "%s `%s`: merge-only update (%s) under `%s`" (maker_name maker)
                   name how guard)))

and global_write g ~loc ls ~par (up : update) =
  let ordered, desc =
    match up with Ordered_up why -> (true, why) | Merge_like how -> (false, how)
  in
  record g ~loc ~write:true ~ordered ~desc ~locks:ls ~par

and walk_apply ctx env ~par ls whole txt head_loc args =
  let lt = Ast_scan.last_two txt in
  match (txt, lt, args) with
  (* lock discipline ---------------------------------------------------- *)
  | _, Some ("Mutex", "lock"), [ (_, m) ] -> (
      match mutex_name ctx env m with
      | Some name ->
          if List.mem name ls then begin
            emit ctx ~loc:head_loc ~rule:rule_lock
              (Printf.sprintf
                 "`%s` locked while already held: OCaml mutexes are not reentrant (self-deadlock)"
                 name);
            ls
          end
          else begin
            List.iter (fun h -> ctx.edges <- (h, name, head_loc) :: ctx.edges) ls;
            name :: ls
          end
      | None -> ls)
  | _, Some ("Mutex", "unlock"), [ (_, m) ] -> (
      match mutex_name ctx env m with Some name -> remove name ls | None -> ls)
  | _, Some ("Mutex", "protect"), (_, m) :: rest -> (
      match mutex_name ctx env m with
      | Some name ->
          List.iter (fun h -> ctx.edges <- (h, name, head_loc) :: ctx.edges) ls;
          ignore (walk_args ctx env ~par (name :: ls) rest);
          ls
      | None -> walk_args ctx env ~par ls rest)
  (* submission --------------------------------------------------------- *)
  | _, Some (("Pool", ("run" | "map")) | ("Domain", "spawn")), _ ->
      (match ls with
      | [] -> ()
      | held :: _ ->
          let what = match lt with Some (m, f) -> m ^ "." ^ f | None -> "submission" in
          emit ctx ~loc:head_loc ~rule:rule_lock
            (Printf.sprintf
               "lock `%s` held across %s: a pooled task contending for it serializes or \
                deadlocks the pool; submit outside the critical section"
               held what));
      List.iter
        (fun (_, a) ->
          match (strip a).pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> walk_submitted ctx env a
          | Pexp_ident { txt = Longident.Lident n; _ } -> (
              match lookup_name ctx env n with
              | `Local (Fn_local lam, _) -> walk_submitted ctx env lam
              | _ -> ())
          | _ -> ignore (walk ctx env ~par ls a))
        args;
      ls
  (* the seeded Rng ------------------------------------------------------ *)
  | _, Some ("Rng", ("split" | "split_string")), (_, parent) :: rest -> (
      let ls = walk_args ctx env ~par ls rest in
      match ident_of parent with
      | Some n when par -> (
          match lookup_name ctx env n with
          | `Local (Rng_v, true) ->
              let salt_mentions_task =
                List.exists
                  (fun (_, salt) ->
                    List.exists (fun (bn, (_, cap)) -> (not cap) && mentions_ident bn salt) env)
                  rest
              in
              if salt_mentions_task then
                add_safe ctx ~loc:head_loc
                  (Printf.sprintf
                     "captured Rng `%s`: per-task stream (split keyed by the task's own identity)"
                     n)
              else
                emit ctx ~loc:head_loc ~rule:rule_rng
                  (Printf.sprintf
                     "captured Rng stream `%s` split with a salt that does not involve the \
                      task's own identity: every task derives the same stream; key the split by \
                      the task index"
                     n);
              ls
          | _ -> ls)
      | Some _ -> ls
      | None -> walk ctx env ~par ls parent)
  | _, Some ("Rng", _), (_, parent) :: rest -> (
      let ls = walk_args ctx env ~par ls rest in
      match ident_of parent with
      | Some n when par -> (
          match lookup_name ctx env n with
          | `Local (Rng_v, true) ->
              emit ctx ~loc:head_loc ~rule:rule_rng
                (Printf.sprintf
                   "pooled task draws from captured Rng stream `%s`: draws mutate shared state \
                    and the domain schedule decides the sequence; derive a per-task stream with \
                    Rng.split `%s` <task index> first"
                   n n);
              ls
          | _ -> ls)
      | Some _ -> ls
      | None -> walk ctx env ~par ls parent)
  (* atomics ------------------------------------------------------------- *)
  | _, Some ("Atomic", op), (_, a0) :: rest -> (
      let ls = walk_args ctx env ~par ls rest in
      match ident_of a0 with
      | Some n ->
          (match lookup_name ctx env n with
          | `Local (Atomic_v, true) when par ->
              add_safe ctx ~loc:head_loc
                (Printf.sprintf "captured atomic `%s`: lock-free `Atomic.%s` from a pooled task" n
                   op)
          | _ -> ());
          ls
      | None -> walk ctx env ~par ls a0)
  (* ref cells ----------------------------------------------------------- *)
  | Longident.Lident ":=", _, [ (_, lhs); (_, rhs) ] -> (
      match ident_of lhs with
      | Some n -> (
          let saved = ctx.excused in
          ctx.excused <- Some n;
          let ls = walk ctx env ~par ls rhs in
          ctx.excused <- saved;
          let up = update_kind n rhs in
          match lookup_name ctx env n with
          | `Global ({ gkind = Gmut _; _ } as g) ->
              global_write g ~loc:whole.Parsetree.pexp_loc ls ~par up;
              ls
          | `Local (Mut (mk, line), true) when par ->
              captured_write ctx ~loc:whole.Parsetree.pexp_loc ~name:n ~maker:mk ~line ls up;
              ls
          | _ -> ls)
      | None ->
          let ls = walk ctx env ~par ls rhs in
          walk ctx env ~par ls lhs)
  | Longident.Lident "!", _, [ (_, arg) ] -> (
      match ident_of arg with
      | Some n -> (
          match lookup_name ctx env n with
          | `Global ({ gkind = Gmut _; _ } as g) ->
              if ctx.excused <> Some n then
                record g ~loc:head_loc ~write:false ~ordered:false ~desc:"read" ~locks:ls ~par;
              ls
          | `Local (Mut (Mref, line), true) when par && ctx.excused <> Some n ->
              (if List.is_empty ls then
                 match annotated ctx ~line with
                 | Some _ -> ()
                 | None ->
                     emit ctx ~loc:head_loc ~rule:rule_shared
                       (Printf.sprintf
                          "read of captured ref `%s` from a pooled task races with concurrent \
                           writers; use Atomic or hold the guarding Mutex"
                          n));
              ls
          | _ -> ls)
      | None -> walk ctx env ~par ls arg)
  | Longident.Lident (("incr" | "decr") as op), _, [ (_, arg) ] -> (
      match ident_of arg with
      | Some n -> (
          let up = Merge_like (Printf.sprintf "commutative `%s`" op) in
          match lookup_name ctx env n with
          | `Global ({ gkind = Gmut _; _ } as g) ->
              global_write g ~loc:head_loc ls ~par up;
              ls
          | `Local (Mut (mk, line), true) when par ->
              captured_write ctx ~loc:head_loc ~name:n ~maker:mk ~line ls up;
              ls
          | _ -> ls)
      | None -> walk ctx env ~par ls arg)
  (* shared-channel output ----------------------------------------------- *)
  | _, _, _ when par && output_head txt ->
      emit ctx ~loc:head_loc ~rule:rule_determinism
        (Printf.sprintf
           "`%s` from a pooled task interleaves nondeterministically across domains; accumulate \
            per-task output and print after the join"
           (Ast_scan.ident_path txt));
      walk_args ctx env ~par ls args
  (* container operations ------------------------------------------------ *)
  | _, Some (m, f), _ when not (List.is_empty (container_ops m f)) ->
      let ops = container_ops m f in
      let positional =
        List.filter (fun (lab, _) -> match lab with Asttypes.Nolabel -> true | _ -> false) args
      in
      let consumed = ref [] in
      List.iter
        (fun (idx, write, ordered) ->
          match List.nth_opt positional idx with
          | None -> ()
          | Some (_, carg) -> (
              match ident_of carg with
              | None -> ()
              | Some n -> (
                  consumed := n :: !consumed;
                  let loc = whole.Parsetree.pexp_loc in
                  match lookup_name ctx env n with
                  | `Global ({ gkind = Gmut _; _ } as g) ->
                      record g ~loc ~write ~ordered ~desc:(m ^ "." ^ f) ~locks:ls ~par
                  | `Local (Mut (mk, line), true) when par ->
                      if write then begin
                        (* the disjoint task-indexed cell proof *)
                        let task_indexed =
                          (f = "set" || f = "unsafe_set")
                          &&
                          match positional with
                          | _ :: (_, ix) :: _ -> (
                              match ident_of ix with
                              | Some j -> (
                                  match lookup_name ctx env j with
                                  | `Local ((Task_ix | Claim_ix), false) -> true
                                  | _ -> false)
                              | None -> false)
                          | _ -> false
                        in
                        if task_indexed then
                          add_safe ctx ~loc
                            (Printf.sprintf
                               "captured %s `%s`: task-indexed write (the index is task-private) \
                                — domain-local cell"
                               (maker_name mk) n)
                        else
                          let up =
                            if ordered then Ordered_up ("order-dependent `" ^ m ^ "." ^ f ^ "`")
                            else if f = "replace" || f = "set" || f = "fill" then
                              (* keyed overwrite on a captured local: stay
                                 conservative, last writer wins *)
                              Ordered_up ("`" ^ m ^ "." ^ f ^ "`: last writer wins")
                            else Merge_like (m ^ "." ^ f)
                          in
                          captured_write ctx ~loc ~name:n ~maker:mk ~line ls up
                      end
                      else if mk = Mtbl && List.is_empty ls then (
                        match annotated ctx ~line with
                        | Some _ -> ()
                        | None ->
                            emit ctx ~loc ~rule:rule_shared
                              (Printf.sprintf
                                 "read of captured hashtable `%s` from a pooled task races with \
                                  concurrent structural writes; hold the guarding Mutex"
                                 n))
                  | _ -> ())))
        ops;
      (* walk the remaining argument expressions *)
      List.fold_left
        (fun ls (_, a) ->
          match ident_of a with
          | Some n when List.mem n !consumed -> ls
          | _ -> walk ctx env ~par ls a)
        ls args
  (* interprocedural steps ----------------------------------------------- *)
  | Longident.Lident n, _, _ -> (
      let ls = walk_args ctx env ~par ls args in
      (match lookup_name ctx env n with
      | `Local (Fn_local lam, _) when par -> inline_local ctx env ~ls lam
      | `Unknown when par -> (
          match Hashtbl.find_opt ctx.topfns n with
          | Some lam ->
              if not (Hashtbl.mem ctx.inlined ("top:" ^ n)) then begin
                Hashtbl.add ctx.inlined ("top:" ^ n) ();
                match Typed_scan.peel_params lam with
                | Some (params, body) ->
                    let env' = List.map (fun p -> (p, (Plain, false))) params in
                    ignore (walk ctx env' ~par:true ls body)
                | None -> ignore (walk ctx [] ~par:true ls lam)
              end
          | None -> ())
      | _ -> ());
      ls)
  | _, Some (m, f), _ when par && m <> "" && m.[0] >= 'A' && m.[0] <= 'Z' -> (
      let ls = walk_args ctx env ~par ls args in
      match printer_of ctx 3 m f with
      | Some (pfile, pline) ->
          emit ctx ~loc:head_loc ~rule:rule_determinism
            (Printf.sprintf
               "pooled task calls `%s.%s`, which prints to a shared channel (%s:%d); route the \
                output through the task's return value instead"
               m f (Filename.basename pfile) pline);
          ls
      | None -> ls)
  | _ -> walk_args ctx env ~par ls args

(* ---- verdicts --------------------------------------------------------- *)

let distinct_guards accs =
  List.sort_uniq String.compare
    (List.concat_map (fun a -> match a.alocks with [] -> [] | h :: _ -> [ h ]) accs)

let global_verdicts ctx =
  let globs =
    Hashtbl.fold (fun _ g acc -> g :: acc) ctx.globals []
    |> List.sort (fun a b -> Int.compare a.gline b.gline)
  in
  let guard_of = Hashtbl.create 8 in
  List.iter
    (fun g ->
      match g.gkind with
      | Gatomic ->
          add_safe ctx ~loc:g.gloc
            (Printf.sprintf "module-level `%s`: atomic (every access through Atomic)" g.gname)
      | Gmutex -> ()
      | Gmut maker -> (
          if not (consume_binding_annot ctx [] ~name:g.gname ~maker ~loc:g.gloc) then
            let accs = g.gaccs in
            let writes = List.filter (fun a -> a.awrite) accs in
            if List.is_empty writes then
              add_safe ctx ~loc:g.gloc
                (Printf.sprintf
                   "module-level %s `%s`: read-only after initialization (no write site in the \
                    module)"
                   (maker_name maker) g.gname)
            else
              let common =
                match accs with
                | [] -> []
                | first :: rest -> List.fold_left (fun c a -> inter c a.alocks) first.alocks rest
              in
              match common with
              | guard :: _ ->
                  Hashtbl.replace guard_of g.gname guard;
                  add_safe ctx ~loc:g.gloc
                    (Printf.sprintf
                       "module-level %s `%s`: guarded-by `%s` at all %d access site(s)"
                       (maker_name maker) g.gname guard (List.length accs));
                  List.iter
                    (fun a ->
                      if a.apar && a.awrite && a.aordered then
                        emit ctx ~loc:a.aloc ~rule:rule_determinism
                          (Printf.sprintf
                             "order-dependent update of `%s` from a pooled task (%s): even under \
                              `%s` the result depends on task completion order; fold pooled \
                              results in index order after the join or use the Dip.merge_* \
                              algebra"
                             g.gname a.adesc guard))
                    accs
              | [] -> (
                  let unguarded = List.filter (fun a -> List.is_empty a.alocks) accs in
                  match unguarded with
                  | [] ->
                      emit ctx ~loc:g.gloc ~rule:rule_lock
                        (Printf.sprintf
                           "`%s` is guarded by more than one mutex (%s); exactly one lock must \
                            own each shared location"
                           g.gname
                           (String.concat ", " (distinct_guards accs)))
                  | a :: _ ->
                      emit ctx ~loc:g.gloc ~rule:rule_shared
                        (Printf.sprintf
                           "module-level mutable %s `%s` is domain-shared (any caller may be a \
                            pooled task) but line %d accesses it with no lock held; make it \
                            Atomic, guard every access with one Mutex, or add a dipp-race \
                            annotation (guarded-by M | domain-local | merge-only)"
                           (maker_name maker) g.gname a.aloc.loc_start.pos_lnum))))
    globs;
  (* mutexes last, so the guard counts are known *)
  List.iter
    (fun g ->
      match g.gkind with
      | Gmutex ->
          let guarded =
            Hashtbl.fold (fun _ m acc -> if m = g.gname then acc + 1 else acc) guard_of 0
          in
          add_safe ctx ~loc:g.gloc
            (Printf.sprintf "module-level mutex `%s`: guards %d location(s)" g.gname guarded)
      | _ -> ())
    globs

(* A cycle in the lock-order graph means two call paths can acquire the
   same pair of mutexes in opposite orders: a deadlock. *)
let lock_order_findings ctx =
  let cmp_edge (a1, b1) (a2, b2) =
    match String.compare a1 a2 with 0 -> String.compare b1 b2 | c -> c
  in
  let edges = List.sort_uniq cmp_edge (List.map (fun (a, b, _) -> (a, b)) ctx.edges) in
  let succs n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let nodes = List.sort_uniq String.compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let rec reach seen n target =
    if n = target then true
    else if List.mem n seen then false
    else List.exists (fun s -> reach (n :: seen) s target) (succs n)
  in
  match List.filter (fun n -> List.exists (fun s -> reach [] s n) (succs n)) nodes with
  | [] -> ()
  | n :: _ ->
      let loc =
        match List.find_opt (fun (a, _, _) -> a = n) ctx.edges with
        | Some (_, _, l) -> l
        | None -> Location.in_file ctx.filename
      in
      emit ctx ~loc ~rule:rule_lock
        (Printf.sprintf
           "lock acquisition order cycle through `%s`; acquire mutexes in one global order" n)

let unused_annotation_findings ctx =
  Hashtbl.iter
    (fun line _ ->
      if not (Hashtbl.mem ctx.annots.used line) then
        ctx.findings <-
          {
            Report.file = ctx.filename;
            line;
            col = 0;
            rule = rule_shared;
            msg =
              "dipp-race annotation does not attach to a mutable binding (it covers the binding \
               on its line or the line below)";
          }
          :: ctx.findings)
    ctx.annots.tbl

(* ---- entry points ------------------------------------------------------ *)

let analyze ?program ?annots ~filename structure =
  let annots = match annots with Some a -> a | None -> no_annots () in
  try
    let ctx =
      {
        filename;
        program;
        annots;
        globals = Hashtbl.create 8;
        topfns = Hashtbl.create 16;
        findings = [];
        safes = [];
        safe_seen = Hashtbl.create 16;
        edges = [];
        inlined = Hashtbl.create 16;
        printers = Hashtbl.create 16;
        excused = None;
      }
    in
    (* pass 1: the module-level inventory *)
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match var_of_pat vb.pvb_pat with
                | None -> ()
                | Some (name, vloc) -> (
                    let mk_glob gkind =
                      Hashtbl.replace ctx.globals name
                        {
                          gname = name;
                          gkind;
                          gloc = vloc;
                          gline = vloc.loc_start.pos_lnum;
                          gaccs = [];
                        }
                    in
                    match binfo_of [] vb.pvb_expr vloc.loc_start.pos_lnum with
                    | Mut (mk, _) -> mk_glob (Gmut mk)
                    | Atomic_v -> mk_glob Gatomic
                    | Mutex_v -> mk_glob Gmutex
                    | Fn_local lam -> Hashtbl.replace ctx.topfns name lam
                    | _ -> ()))
              vbs
        | _ -> ())
      structure;
    (* pass 2: walk every top-level body, threading locksets *)
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) -> ignore (walk ctx [] ~par:false [] vb.pvb_expr))
              vbs
        | Pstr_eval (e, _) -> ignore (walk ctx [] ~par:false [] e)
        | _ -> ())
      structure;
    (* pass 3: verdicts *)
    global_verdicts ctx;
    lock_order_findings ctx;
    unused_annotation_findings ctx;
    let cmp_safe a b =
      match String.compare a.rfile b.rfile with
      | 0 -> (
          match Int.compare a.rline b.rline with
          | 0 -> (
              match Int.compare a.rcol b.rcol with 0 -> String.compare a.rdesc b.rdesc | c -> c)
          | c -> c)
      | c -> c
    in
    {
      findings = List.sort_uniq Report.compare ctx.findings;
      safe = List.sort_uniq cmp_safe ctx.safes;
    }
  with _ -> { findings = []; safe = [] }

let check ?program ?annots ~filename structure =
  (analyze ?program ?annots ~filename structure).findings
