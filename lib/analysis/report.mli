(** Lint diagnostics: a finding pins a rule violation to a source position.

    Findings render as [file:line:col: [rule] message] so editors and CI
    logs can jump straight to the offending expression. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler messages *)
  rule : string;  (** rule id, e.g. ["locality-index"] *)
  msg : string;
}

val finding : loc:Location.t -> rule:string -> string -> finding
(** Builds a finding from a compiler-libs location (its start position). *)

val compare : finding -> finding -> int
(** Orders by file, then line, then column, then rule. *)

val pp : Format.formatter -> finding -> unit

val pp_report : Format.formatter -> finding list -> unit
(** Sorted findings, one per line, followed by a one-line summary. *)

val pp_json : Format.formatter -> finding list -> unit
(** Sorted, deduplicated findings as a JSON array of
    [{"file", "line", "col", "rule", "msg"}] objects — the [--format
    json] output CI parses for PR annotations. *)

val pp_sarif : Format.formatter -> finding list -> unit
(** The same findings as a minimal SARIF 2.1.0 log ([--format sarif]),
    one run with driver name [dipp-lint]; columns are 1-based as the
    standard requires. *)
