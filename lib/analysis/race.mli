(** dipp-race: static domain-safety and determinism analysis.

    The engine promises byte-identical reports for any [DIPP_JOBS]; this
    pass turns the concurrency discipline behind that promise into
    lint-time obligations over the parsetree:

    - [race-shared-mut] — every mutable location domains can share (a
      module-level binding, or a local captured by a closure submitted
      to [Pool.run]/[Pool.map]/[Domain.spawn]) is [Atomic], accessed
      under one consistent [Mutex] (inferred locksets), or provably
      domain-local;
    - [race-lock-discipline] — exactly one guarding mutex per shared
      location, a global acquisition order (no cycles), no re-entry, no
      lock held across a pool submission;
    - [race-determinism] — shared accumulators updated from pooled
      tasks only through commutative/associative merges (the
      [Dip.merge_*] algebra); order-dependent effects (list cons,
      [Buffer.add_*], blind overwrites, printing to a shared channel)
      are findings even under a lock;
    - [race-rng] — an [Rng] stream captured by a pooled task is only
      used as the parent of [Rng.split]/[Rng.split_string] keyed by the
      task's own identity.

    Trusted annotations, written on the binding's line or the line
    above, are the axioms of the pass:

    {[
      let lock = Mutex.create ()

      (* dipp-race: guarded-by lock *)
      let table : (string, outcome) Hashtbl.t = Hashtbl.create 64

      (* dipp-race: domain-local *)
      let warned = ref false

      (* dipp-race: merge-only *)
      let totals = ref 0
    ]}

    They are validated like [dipp-refine]'s: malformed bodies,
    [guarded-by] claims naming no mutex in scope, and annotations that
    attach to no mutable binding all produce findings, and every
    trusted site appears in the [--race-safe] listing so reviewers see
    exactly which proofs were assumed rather than inferred. *)

val rule_shared : string
(** ["race-shared-mut"] *)

val rule_lock : string
(** ["race-lock-discipline"] *)

val rule_determinism : string
(** ["race-determinism"] *)

val rule_rng : string
(** ["race-rng"] *)

(** {1 Annotations} *)

type annot =
  | Guarded_by of string  (** every access holds this mutex *)
  | Domain_local  (** never reachable from more than one domain *)
  | Merge_only  (** only commutative/associative updates *)

type annots = {
  tbl : (int, annot) Hashtbl.t;  (** line -> trusted proof *)
  bad : (int * string) list;  (** malformed annotation lines *)
  used : (int, unit) Hashtbl.t;  (** consumed by some binding *)
}

val ann_marker : string
(** The comment marker the scanner looks for. *)

val annotations_of_source : string -> annots
(** Scans raw source text.  A comment engages the scanner only when the
    text after the marker starts with a proof keyword ([guarded-by],
    [domain-local], [merge-only]); prose merely mentioning the marker is
    ignored, a keyword with the wrong arity is malformed. *)

val no_annots : unit -> annots

val annotation_findings : filename:string -> annots -> Report.finding list
(** Malformed-annotation findings, under [race-shared-mut]. *)

val ann_at : annots -> line:int -> (int * annot) option
(** The annotation covering [line] (same line or the line above),
    with the line it was written on. *)

(** {1 Results} *)

type safe = {
  rfile : string;
  rline : int;  (** 1-based *)
  rcol : int;  (** 0-based *)
  rdesc : string;  (** the proof, e.g. ["guarded-by `lock`"] *)
}
(** A shared-state site the pass proved (or was trusted to be) safe —
    the [--race-safe] listing. *)

type result = { findings : Report.finding list; safe : safe list }

val analyze :
  ?program:Typed_scan.program ->
  ?annots:annots ->
  filename:string ->
  Parsetree.structure ->
  result
(** Runs the pass over one module.  [program] enables the cross-module
    shared-channel-output scan for qualified calls out of pooled tasks;
    [annots] supplies trusted annotations (default: none).  Fail-open:
    an internal error yields an empty result rather than a crash. *)

val check :
  ?program:Typed_scan.program ->
  ?annots:annots ->
  filename:string ->
  Parsetree.structure ->
  Report.finding list
(** [(analyze ...).findings]. *)
