(* dipp-refine: a numeric refinement pass over the parsetree.

   The pass runs an interprocedural interval/affine abstract
   interpretation in which every integer carries an interval of affine
   forms over the symbolic size terms [loglog] (ceil_log2 (ceil_log2 n)),
   [log] (ceil_log2 n) and [logdelta] (ceil_log2 (max 2 delta)), and
   every [Bits.t] carries an interval on its *length*.  The transfer
   functions for the [Bits] constructors ([of_int ~width], [append],
   [concat], [sub ~len], the [Writer] accumulator, ...) propagate
   lengths exactly; [Array]/[List] higher-order combinators carry
   element-width and length intervals through [map]/[init]/[append].
   Let-bound and cross-module helpers are evaluated at their call sites
   through the {!Typed_scan} whole-program index (so summaries are
   affine in the actual arguments), with a recursion guard and an eval
   fuel making the pass total.

   Trusted declared widths enter through annotation comments on the
   binding's (or call's) own line or the line above:

     (* dipp-refine: value <= 3*loglog + 6 *)   — an int binding
     (* dipp-refine: width <= 40*loglog + 40 *) — a Bits binding,
       function result, or record_prover call site

   Both kinds assert the value lies in [0, FORM].  Annotations are the
   axioms of the analysis; they are kept honest by the runtime
   measurements ([bench bounds] reports claim / inferred / measured side
   by side).

   Rules emitted:
   - [refine-budget] — in a module with a declared-bounds registry row
     (lib/protocols/bounds.ml), every [Dip.record_prover] site in [run]
     must have a label-width upper bound provably below the declared
     envelope shape.  Unprovable or exceeding sites are per-expression
     findings.  (Parallel sub-protocol composition sums are a runtime
     matter — [Dip.check_budget]; the static rule bounds each phase's
     widest own label, which is what catches a family-level regression.)
   - [refine-index] — array/string/Bits subscripts inside decision
     functions are re-proved in bounds from the inferred intervals;
     provable violations are findings, proved-safe subscripts are
     collected (see {!result.safe}).  [Bits.unsafe_sub] is gated
     everywhere: any call site the pass cannot prove in-range is a
     finding.
   - [refine-annotation] — a dipp-refine comment that does not parse.

   Soundness of the form comparator: for n >= 1 and 0 <= delta <= n,
   1 <= loglog <= log and 1 <= logdelta <= log, so a negative
   loglog/logdelta coefficient in (g - f) may be folded into the log
   coefficient when deciding f <= g. *)

let rule_budget = "refine-budget"
let rule_index = "refine-index"
let rule_annotation = "refine-annotation"

module Smap = Map.Make (String)

(* ---- affine forms over symbolic size terms --------------------------- *)

type term = Loglog | Log | Logdelta | Param of string

module Term = struct
  type t = term

  let rank = function Loglog -> 0 | Log -> 1 | Logdelta -> 2 | Param _ -> 3

  let compare a b =
    match (a, b) with
    | Param x, Param y -> String.compare x y
    | _ -> Int.compare (rank a) (rank b)
end

module Tmap = Map.Make (Term)

type form = { const : int; terms : int Tmap.t }

let f_const c = { const = c; terms = Tmap.empty }
let f_zero = f_const 0
let f_term ?(coeff = 1) t = { const = 0; terms = Tmap.singleton t coeff }

let norm terms = Tmap.filter (fun _ c -> c <> 0) terms

let f_add a b =
  {
    const = a.const + b.const;
    terms = norm (Tmap.union (fun _ x y -> Some (x + y)) a.terms b.terms);
  }

let f_scale k f = { const = k * f.const; terms = norm (Tmap.map (fun c -> k * c) f.terms) }
let f_sub a b = f_add a (f_scale (-1) b)
let f_addc f k = { f with const = f.const + k }
let f_is_const f = Tmap.is_empty f.terms

let term_name = function
  | Loglog -> "loglog"
  | Log -> "log"
  | Logdelta -> "logdelta"
  | Param p -> p

let pp_form ppf f =
  let parts =
    Tmap.fold
      (fun t c acc ->
        (if c = 1 then term_name t else Printf.sprintf "%d*%s" c (term_name t)) :: acc)
      f.terms []
    |> List.rev
  in
  let parts =
    if f.const <> 0 || (match parts with [] -> true | _ :: _ -> false) then
      parts @ [ string_of_int f.const ]
    else parts
  in
  Format.pp_print_string ppf (String.concat " + " parts)

let form_to_string f = Format.asprintf "%a" pp_form f

(* Sound comparator: [leq f g] holds only if f <= g for every n >= 1,
   0 <= delta <= n.  Negative loglog/logdelta coefficients of (g - f)
   fold into the log coefficient (log dominates both and every term is
   >= 1); parameter terms must cancel exactly. *)
let leq f g =
  let h = f_sub g f in
  let ok = ref true in
  let ll = ref 0 and lg = ref 0 and ld = ref 0 in
  Tmap.iter
    (fun t c ->
      match t with
      | Loglog -> ll := c
      | Log -> lg := c
      | Logdelta -> ld := c
      | Param _ -> if c <> 0 then ok := false)
    h.terms;
  let a = !lg + min !ll 0 + min !ld 0 in
  !ok && a >= 0 && a + max !ll 0 + max !ld 0 + h.const >= 0

let f_equal a b = leq a b && leq b a

(* Pointwise coefficient max/min: sound upper (resp. lower) bound for the
   max (resp. min) of two forms, since every term is nonnegative. *)
let f_cmax a b =
  {
    const = max a.const b.const;
    terms =
      norm
        (Tmap.merge
           (fun _ x y -> Some (max (Option.value x ~default:0) (Option.value y ~default:0)))
           a.terms b.terms);
  }

let f_cmin a b =
  {
    const = min a.const b.const;
    terms =
      norm
        (Tmap.merge
           (fun _ x y -> Some (min (Option.value x ~default:0) (Option.value y ~default:0)))
           a.terms b.terms);
  }

let eval_form f ~n ~delta =
  let ok = ref true in
  let v =
    Tmap.fold
      (fun t c acc ->
        match t with
        | Loglog -> acc + (c * Dipp_protocols.Bounds.loglog n)
        | Log -> acc + (c * Dipp_protocols.Bounds.ceil_log2 n)
        | Logdelta -> acc + (c * Dipp_protocols.Bounds.ceil_log2 (max 2 delta))
        | Param _ ->
            ok := false;
            acc)
      f.terms f.const
  in
  if !ok then Some v else None

(* ---- intervals ------------------------------------------------------- *)

type iv = { lo : form option; hi : form option }

let iv_top = { lo = None; hi = None }
let iv_exact f = { lo = Some f; hi = Some f }
let iv_const c = iv_exact (f_const c)
let iv_nonneg = { lo = Some f_zero; hi = None }
let iv_of_hi f = { lo = Some f_zero; hi = Some f }

let omap2 f a b = match (a, b) with Some x, Some y -> Some (f x y) | _ -> None

let iv_add a b = { lo = omap2 f_add a.lo b.lo; hi = omap2 f_add a.hi b.hi }

let iv_sub a b =
  { lo = omap2 f_sub a.lo b.hi; hi = omap2 f_sub a.hi b.lo }

let iv_addc a k =
  { lo = Option.map (fun f -> f_addc f k) a.lo; hi = Option.map (fun f -> f_addc f k) a.hi }

let iv_scale k a =
  if k >= 0 then
    { lo = Option.map (f_scale k) a.lo; hi = Option.map (f_scale k) a.hi }
  else { lo = Option.map (f_scale k) a.hi; hi = Option.map (f_scale k) a.lo }

let iv_join a b = { lo = omap2 f_cmin a.lo b.lo; hi = omap2 f_cmax a.hi b.hi }

(* Upper bound of min: either operand's hi is sound; prefer the provably
   smaller one.  Dual for lower bound of max. *)
let pick_min a b =
  match (a, b) with
  | Some x, Some y -> Some (if leq y x then y else x)
  | Some x, None -> Some x
  | None, y -> y

let pick_max a b =
  match (a, b) with
  | Some x, Some y -> Some (if leq x y then y else x)
  | Some x, None -> Some x
  | None, y -> y

let iv_min a b = { lo = omap2 f_cmin a.lo b.lo; hi = pick_min a.hi b.hi }
let iv_max a b = { lo = pick_max a.lo b.lo; hi = omap2 f_cmax a.hi b.hi }

let iv_known_const a =
  match (a.lo, a.hi) with
  | Some l, Some h when f_is_const l && f_is_const h && l.const = h.const -> Some l.const
  | _ -> None

let iv_mul a b =
  match (iv_known_const a, iv_known_const b) with
  | Some k, _ -> iv_scale k b
  | _, Some k -> iv_scale k a
  | None, None -> iv_top

let iv_nonneg_lo a = match a.lo with Some l -> leq f_zero l | None -> false

(* ---- annotations ----------------------------------------------------- *)

type ann_kind = Width | Value

type ann = { kind : ann_kind; bound : form }

type annots = { tbl : (int, ann) Hashtbl.t; bad : (int * string) list }

let ann_marker = "dipp-refine:"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let parse_term_name s =
  match s with
  | "loglog" -> Some Loglog
  | "log" -> Some Log
  | "logdelta" -> Some Logdelta
  | _ -> if s <> "" && String.for_all is_ident_char s then Some (Param s) else None

let parse_form s =
  let atoms = String.split_on_char '+' s |> List.map String.trim in
  List.fold_left
    (fun acc atom ->
      match acc with
      | None -> None
      | Some f -> (
          match List.map String.trim (String.split_on_char '*' atom) with
          | [ a ] -> (
              match int_of_string_opt a with
              | Some c -> Some (f_addc f c)
              | None -> Option.map (fun t -> f_add f (f_term t)) (parse_term_name a))
          | [ a; b ] -> (
              match (int_of_string_opt a, parse_term_name b) with
              | Some c, Some t -> Some (f_add f (f_term ~coeff:c t))
              | _ -> None)
          | _ -> None))
    (Some f_zero) atoms

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let annotations_of_source src =
  let tbl = Hashtbl.create 8 and bad = ref [] in
  List.iteri
    (fun i line ->
      match find_sub line ann_marker with
      | None -> ()
      | Some j -> (
          let rest =
            String.sub line
              (j + String.length ann_marker)
              (String.length line - j - String.length ann_marker)
          in
          let rest = match find_sub rest "*)" with Some k -> String.sub rest 0 k | None -> rest in
          let malformed msg = bad := (i + 1, msg) :: !bad in
          (* Prose that merely mentions the marker (docs, rule summaries)
             is not an annotation attempt: require a width/value keyword
             or a <= to engage, then insist the whole thing parses. *)
          let trimmed = String.trim rest in
          let starts_kw kw =
            String.length trimmed >= String.length kw
            && String.sub trimmed 0 (String.length kw) = kw
            && (String.length trimmed = String.length kw
               || not (is_ident_char trimmed.[String.length kw]))
          in
          if not (starts_kw "width" || starts_kw "value" || find_sub rest "<=" <> None) then ()
          else
          match String.index_opt rest '=' with
          | Some k when k > 0 && rest.[k - 1] = '<' -> (
              let kw = String.trim (String.sub rest 0 (k - 1)) in
              let body = String.sub rest (k + 1) (String.length rest - k - 1) in
              let kind =
                match kw with "width" -> Some Width | "value" -> Some Value | _ -> None
              in
              match (kind, parse_form body) with
              | Some kind, Some bound -> Hashtbl.replace tbl (i + 1) { kind; bound }
              | None, _ ->
                  malformed
                    (Printf.sprintf "expected `width <= FORM` or `value <= FORM`, got `%s`" kw)
              | _, None ->
                  malformed
                    (Printf.sprintf
                       "cannot parse bound `%s` (FORM is a sum of INT, NAME and INT*NAME atoms)"
                       (String.trim body)))
          | _ -> malformed "expected `width <= FORM` or `value <= FORM` after the marker"))
    (String.split_on_char '\n' src);
  { tbl; bad = List.rev !bad }

let no_annots () = { tbl = Hashtbl.create 1; bad = [] }

let annotation_findings ~filename annots =
  List.map
    (fun (line, msg) ->
      { Report.file = filename; line; col = 0; rule = rule_annotation; msg })
    annots.bad

(* An annotation covers the bindings (or call) on its own line or the
   line below it, like lint suppressions. *)
let ann_at annots ~line =
  match Hashtbl.find_opt annots.tbl line with
  | Some a -> Some a
  | None -> Hashtbl.find_opt annots.tbl (line - 1)

(* ---- abstract values ------------------------------------------------- *)

type value =
  | Dyn
  | Inst of string
      (* an arbitrary-but-fixed driver argument ("inst", "g", ...); field
         reads produce stable symbolic Param terms ("inst.n") so sizes
         derived from the same instance relate to each other *)
  | Ival of iv  (* integer *)
  | Bval of iv  (* Bits.t, interval on its length *)
  | Sval of iv  (* string/bytes, interval on its length *)
  | Barr of { alen : iv; elem : iv }  (* Bits.t array *)
  | Aval of { alen : iv }  (* any other array *)
  | Lvals of value list  (* literal list, element values in order *)
  | Llist of { count : iv; elem : value }  (* homogeneous list *)
  | Wval of wcell  (* Bits.Writer.t accumulator *)
  | Rcell of rcell  (* int ref *)
  | Fval of fn  (* function value / closure *)
  | Builtin of { path : string * string; bargs : (Asttypes.arg_label * value) list }

and wcell = { mutable acc : iv }
and rcell = { mutable cell : iv }

and fn = {
  fparams : (Asttypes.arg_label * Parsetree.expression option * Parsetree.pattern) list;
  fenv : value Smap.t;
  fbody : Parsetree.expression;
  fann : form option;  (* width annotation on the binding *)
  fkey : string;  (* recursion guard key *)
}

let as_int = function
  | Ival iv -> iv
  | Inst name -> iv_exact (f_term (Param name))
  | Rcell c -> c.cell
  | _ -> iv_top

let as_bits_len = function Bval iv -> iv | _ -> iv_top

let value_join a b =
  match (a, b) with
  | Dyn, _ | _, Dyn -> Dyn
  | Inst x, Inst y -> if String.equal x y then a else Dyn
  | Ival x, Ival y -> Ival (iv_join x y)
  | Bval x, Bval y -> Bval (iv_join x y)
  | Sval x, Sval y -> Sval (iv_join x y)
  | Barr x, Barr y -> Barr { alen = iv_join x.alen y.alen; elem = iv_join x.elem y.elem }
  | Aval x, Aval y -> Aval { alen = iv_join x.alen y.alen }
  | Rcell x, Rcell y -> if x == y then a else Ival (iv_join x.cell y.cell)
  | Fval _, Fval _ -> if a == b then a else Dyn
  | _ -> Dyn

(* ---- the evaluator --------------------------------------------------- *)

type safe = { sfile : string; sline : int; scol : int; sdesc : string }

type ctx = {
  filename : string;
  modname : string;
  annots : annots;
  program : Typed_scan.program option;
  declared : form option;
  mutable fuel : int;
  mutable stack : string list;  (* recursion-guard keys *)
  mutable audit_index : bool;
  mutable findings : Report.finding list;
  mutable safes : safe list;
  mutable sites : (Location.t * iv) list;  (* own record_prover sites *)
  mutable cells : cell_reg list;  (* every mutable cell, for branch joins *)
  mutable last_unresolved : (int * string) option;
  mutable unsafe_audited : (int * int) list;  (* unsafe_sub sites seen *)
  file_annots : (string, annots) Hashtbl.t;
  module_envs : (string, value Smap.t) Hashtbl.t;
  mutable modules_in_progress : string list;
}

and cell_reg = Wc of wcell | Rc of rcell

let own_loc ctx (loc : Location.t) = String.equal loc.loc_start.pos_fname ctx.filename

let add_finding ctx ~loc ~rule msg =
  if own_loc ctx loc then ctx.findings <- Report.finding ~loc ~rule msg :: ctx.findings

let add_safe ctx ~(loc : Location.t) desc =
  if own_loc ctx loc then
    ctx.safes <-
      {
        sfile = loc.loc_start.pos_fname;
        sline = loc.loc_start.pos_lnum;
        scol = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        sdesc = desc;
      }
      :: ctx.safes

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let annots_for_file ctx file =
  if String.equal file ctx.filename then ctx.annots
  else
    match Hashtbl.find_opt ctx.file_annots file with
    | Some a -> a
    | None ->
        let a =
          if file <> "" && Sys.file_exists file then
            try annotations_of_source (read_file file) with _ -> no_annots ()
          else no_annots ()
        in
        Hashtbl.replace ctx.file_annots file a;
        a

let pat_var (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
  | _ -> None

(* Peels a [fun]/[newtype] chain keeping labels, defaults and patterns. *)
let rec peel acc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, default, pat, body) -> peel ((lbl, default, pat) :: acc) body
  | Pexp_newtype (_, body) -> peel acc body
  | _ -> (List.rev acc, e)

let loc_key (loc : Location.t) =
  Printf.sprintf "%s:%d:%d" loc.loc_start.pos_fname loc.loc_start.pos_lnum
    (loc.loc_start.pos_cnum - loc.loc_start.pos_bol)

let interval_to_string iv =
  Printf.sprintf "[%s, %s]"
    (match iv.lo with Some f -> form_to_string f | None -> "?")
    (match iv.hi with Some f -> form_to_string f | None -> "?")

let snapshot_cells ctx =
  List.map (function Wc w -> (Wc w, w.acc) | Rc r -> (Rc r, r.cell)) ctx.cells

let restore_cells snap =
  List.iter (function Wc w, iv -> w.acc <- iv | Rc r, iv -> r.cell <- iv) snap

let cell_states ctx =
  List.map (function Wc w -> w.acc | Rc r -> r.cell) ctx.cells

let form_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> f_equal x y
  | _ -> false

let iv_equal a b = form_opt_equal a.lo b.lo && form_opt_equal a.hi b.hi

let widen_changed old_iv new_iv =
  {
    lo = (if form_opt_equal old_iv.lo new_iv.lo then old_iv.lo else None);
    hi = (if form_opt_equal old_iv.hi new_iv.hi then old_iv.hi else None);
  }

exception Out_of_fuel

let rec eval ctx env (e : Parsetree.expression) : value =
  if ctx.fuel <= 0 then raise Out_of_fuel;
  ctx.fuel <- ctx.fuel - 1;
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) -> (
      match int_of_string_opt s with Some v -> Ival (iv_const v) | None -> Ival iv_top)
  | Pexp_constant (Pconst_string (s, _, _)) -> Sval (iv_const (String.length s))
  | Pexp_constant _ -> Dyn
  | Pexp_ident { txt; loc } -> eval_ident ctx env ~loc txt
  | Pexp_let (_, vbs, body) ->
      let env = List.fold_left (fun env vb -> bind_vb ctx env vb) env vbs in
      eval ctx env body
  | Pexp_fun _ | Pexp_newtype _ ->
      let fparams, fbody = peel [] e in
      Fval { fparams; fenv = env; fbody; fann = None; fkey = loc_key e.pexp_loc }
  | Pexp_function cases ->
      (* model as a one-parameter function that joins all case bodies *)
      Fval
        {
          fparams = [ (Asttypes.Nolabel, None, Ast_helper.Pat.any ()) ];
          fenv = env;
          fbody =
            (match cases with
            | [ { pc_rhs; _ } ] -> pc_rhs
            | _ -> e (* multi-case: handled at apply via eval_cases *));
          fann = None;
          fkey = loc_key e.pexp_loc;
        }
  | Pexp_apply (f, args) -> eval_apply ctx env ~loc:e.pexp_loc f args
  | Pexp_match (scrut, cases) ->
      ignore (eval ctx env scrut);
      eval_cases ctx env cases
  | Pexp_try (body, cases) ->
      let v = eval ctx env body in
      value_join v (eval_cases ctx env cases)
  | Pexp_tuple es ->
      List.iter (fun e -> ignore (eval ctx env e)) es;
      Dyn
  | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some { pexp_desc = Pexp_tuple [ hd; tl ]; _ })
    -> (
      let h = eval ctx env hd in
      match eval ctx env tl with
      | Lvals vs -> Lvals (h :: vs)
      | Llist { count; elem } -> Llist { count = iv_addc count 1; elem = value_join h elem }
      | _ -> Llist { count = iv_nonneg; elem = Dyn })
  | Pexp_construct ({ txt = Longident.Lident "[]"; _ }, None) -> Lvals []
  | Pexp_construct ({ txt = Longident.Lident ("Some" | "Ok" | "Error"); _ }, Some arg) ->
      ignore (eval ctx env arg);
      Dyn
  | Pexp_construct (_, arg) ->
      Option.iter (fun a -> ignore (eval ctx env a)) arg;
      Dyn
  | Pexp_variant (_, arg) ->
      Option.iter (fun a -> ignore (eval ctx env a)) arg;
      Dyn
  | Pexp_record (fields, base) ->
      Option.iter (fun b -> ignore (eval ctx env b)) base;
      List.iter (fun (_, fe) -> ignore (eval ctx env fe)) fields;
      Dyn
  | Pexp_field (b, { txt = lid; _ }) -> (
      match eval ctx env b with
      | Inst name ->
          let f =
            match lid with
            | Longident.Lident f | Longident.Ldot (_, f) -> f
            | Longident.Lapply _ -> "?"
          in
          Inst (name ^ "." ^ f)
      | _ -> Dyn)
  | Pexp_setfield (b, _, v) ->
      ignore (eval ctx env b);
      ignore (eval ctx env v);
      Dyn
  | Pexp_array es ->
      let vs = List.map (eval ctx env) es in
      let n = iv_const (List.length vs) in
      if List.exists (function Bval _ -> true | _ -> false) vs then
        Barr
          {
            alen = n;
            elem = List.fold_left (fun acc v -> iv_join acc (as_bits_len v)) (iv_const 0) vs;
          }
      else Aval { alen = n }
  | Pexp_ifthenelse (cond, then_, else_) -> (
      ignore (eval ctx env cond);
      let then_env = refine_env ctx env cond in
      let snap = snapshot_cells ctx in
      let vt = eval ctx then_env then_ in
      let then_state = cell_states ctx in
      restore_cells snap;
      match else_ with
      | None ->
          (* join mutations of the taken/untaken branch *)
          join_cell_states ctx then_state;
          Dyn
      | Some else_ ->
          let ve = eval ctx env else_ in
          join_cell_states ctx then_state;
          value_join vt ve)
  | Pexp_sequence (a, b) ->
      ignore (eval ctx env a);
      eval ctx env b
  | Pexp_while (cond, body) ->
      eval_loop ctx env ~pre:(fun () -> ignore (eval ctx env cond)) ~body;
      Dyn
  | Pexp_for (pat, lo, hi, dir, body) ->
      let lo_v = as_int (eval ctx env lo) and hi_v = as_int (eval ctx env hi) in
      let idx =
        match dir with
        | Asttypes.Upto -> { lo = lo_v.lo; hi = hi_v.hi }
        | Asttypes.Downto -> { lo = hi_v.lo; hi = lo_v.hi }
      in
      let env =
        match pat_var pat with Some x -> Smap.add x (Ival idx) env | None -> env
      in
      eval_loop ctx env ~pre:(fun () -> ()) ~body;
      Dyn
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> eval ctx env e
  | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) -> eval ctx env e
  | Pexp_assert e | Pexp_lazy e ->
      ignore (eval ctx env e);
      Dyn
  | Pexp_setinstvar _ | Pexp_send _ | Pexp_new _ | Pexp_override _ | Pexp_object _ -> Dyn
  | Pexp_pack _ | Pexp_letop _ | Pexp_extension _ | Pexp_unreachable | Pexp_poly _ -> Dyn

and join_cell_states ctx branch_state =
  (* current cells hold the other branch's effects; fold in [branch_state] *)
  let rec go cells states =
    match (cells, states) with
    | Wc w :: cs, s :: ss ->
        w.acc <- iv_join w.acc s;
        go cs ss
    | Rc r :: cs, s :: ss ->
        r.cell <- iv_join r.cell s;
        go cs ss
    | _ -> ()
  in
  go ctx.cells branch_state

and eval_cases ctx env cases =
  (* evaluate every case body from the same cell snapshot and join *)
  let snap = snapshot_cells ctx in
  let states = ref [] in
  let v =
    List.fold_left
      (fun acc (case : Parsetree.case) ->
        restore_cells snap;
        let env =
          List.fold_left
            (fun env x -> Smap.add x Dyn env)
            env
            (Ast_scan.pattern_vars case.pc_lhs)
        in
        Option.iter (fun g -> ignore (eval ctx env g)) case.pc_guard;
        let v = eval ctx env case.pc_rhs in
        states := cell_states ctx :: !states;
        match acc with None -> Some v | Some a -> Some (value_join a v))
      None cases
  in
  restore_cells snap;
  List.iter (join_cell_states ctx) !states;
  match v with Some v -> v | None -> Dyn

and eval_loop ctx env ~pre ~body =
  (* Widening: evaluate the body, widen any cell whose interval changed
     to unbounded on the changed side, and re-evaluate; two rounds reach
     a fixpoint because each bound can only widen once (a third pass
     covers effects of the widened values). *)
  let rec go rounds =
    if rounds <= 0 then ()
    else begin
      let snap = snapshot_cells ctx in
      pre ();
      ignore (eval ctx env body);
      let changed = ref false in
      List.iter
        (fun (reg, old_iv) ->
          let cur = match reg with Wc w -> w.acc | Rc r -> r.cell in
          if not (iv_equal old_iv cur) then begin
            changed := true;
            let widened = widen_changed old_iv cur in
            match reg with Wc w -> w.acc <- widened | Rc r -> r.cell <- widened
          end)
        snap;
      if !changed then go (rounds - 1)
    end
  in
  go 3

and bind_vb ctx env (vb : Parsetree.value_binding) =
  (* Annotations come from the file the binding lives in, so helpers in
     other modules read their own annotation tables. *)
  let start = vb.pvb_pat.ppat_loc.loc_start in
  let annots = annots_for_file ctx start.pos_fname in
  let ann = ann_at annots ~line:start.pos_lnum in
  bind_pattern ctx env ~ann vb.pvb_pat vb.pvb_expr

and bind_pattern ctx env ~ann pat expr =
  match pat_var pat with
  | Some x -> Smap.add x (eval_binding ctx env ~ann expr) env
  | None ->
      ignore (eval ctx env expr);
      List.fold_left (fun env x -> Smap.add x Dyn env) env (Ast_scan.pattern_vars pat)

and eval_binding ctx env ~ann expr =
  let fparams, _ = peel [] expr in
  match (fparams, ann) with
  | _ :: _, Some { kind = Width; bound } ->
      let fparams, fbody = peel [] expr in
      Fval { fparams; fenv = env; fbody; fann = Some bound; fkey = loc_key expr.pexp_loc }
  | _, Some { kind = Value; bound } ->
      ignore (try_eval ctx env expr);
      Ival (iv_of_hi bound)
  | [], Some { kind = Width; bound } ->
      ignore (try_eval ctx env expr);
      Bval (iv_of_hi bound)
  | _, None -> eval ctx env expr

and try_eval ctx env expr = try eval ctx env expr with Out_of_fuel -> Dyn

and eval_ident ctx env ~loc txt =
  match txt with
  | Longident.Lident x -> (
      match Smap.find_opt x env with
      | Some v -> v
      | None -> (
          match x with
          | "min" | "max" | "abs" | "succ" | "pred" | "ref" | "not" | "ignore" | "incr"
          | "decr" | "fst" | "snd" | "string_of_int" | "int_of_string"
          | "+" | "-" | "*" | "/" | "mod" | "land" | "lor" | "lxor" | "lsl" | "lsr" | "asr"
          | "@" | "!" | ":=" | "=" | "<>" | "<" | ">" | "<=" | ">=" | "==" | "!=" | "&&" | "||" ->
              Builtin { path = ("Stdlib", x); bargs = [] }
          | _ -> Dyn))
  | _ -> (
      match Ast_scan.last_two txt with
      | Some (("Bits" | "Bits_flat" | "Enc" | "Dec" | "Writer" | "Reader" | "Array" | "List"
              | "String" | "Bytes" | "Option"
              | "Dip" | "Stdlib" | "Int" | "Char" | "Hashtbl" | "Queue" | "Stack" | "Buffer"
              | "Format" | "Printf" | "Seq" | "Fun" | "Result" | "Float" | "Sys" | "Filename")
              as m,
             f) -> (
          match (m, f) with
          | "Bits", "empty" -> Bval (iv_const 0)
          | _ -> Builtin { path = (m, f); bargs = [] })
      | Some (m, f) -> (
          match resolve_qualified ctx ~m ~f with
          | Some v -> v
          | None ->
              ctx.last_unresolved <- Some (loc.Location.loc_start.pos_lnum, m ^ "." ^ f);
              Dyn)
      | None -> Dyn)

(* Cross-module resolution: evaluate the whole target module's top level
   once (memoized) with its own annotations, then look the name up in the
   resulting environment. *)
and resolve_qualified ctx ~m ~f =
  match ctx.program with
  | None -> None
  | Some prog -> (
      match Typed_scan.lookup prog ~modname:m ~name:f with
      | None -> None
      | Some entry -> (
          match module_env ctx ~m ~file:entry.file with
          | Some env -> Smap.find_opt f env
          | None -> None))

and module_env ctx ~m ~file =
  match Hashtbl.find_opt ctx.module_envs m with
  | Some env -> Some env
  | None ->
      if List.exists (String.equal m) ctx.modules_in_progress then None
      else if file = "" || not (Sys.file_exists file) then None
      else begin
        ctx.modules_in_progress <- m :: ctx.modules_in_progress;
        let env =
          match Ast_scan.parse_file file with
          | structure -> Some (eval_structure ctx structure)
          | exception _ -> None
        in
        ctx.modules_in_progress <- List.filter (fun x -> not (String.equal x m)) ctx.modules_in_progress;
        Option.iter (fun env -> Hashtbl.replace ctx.module_envs m env) env;
        env
      end

(* Top-level environment of a structure: bindings evaluated in order
   (annotation tables are resolved per binding from its source file). *)
and eval_structure ctx structure =
  List.fold_left
    (fun env (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.fold_left (fun env vb -> try bind_vb ctx env vb with Out_of_fuel -> env) env vbs
      | _ -> env)
    Smap.empty structure

and eval_apply ctx env ~loc f args =
  let fv = eval ctx env f in
  let argvs = List.map (fun (lbl, a) -> (lbl, a, eval ctx env a)) args in
  apply ctx ~loc fv (List.map (fun (lbl, _, v) -> (lbl, v)) argvs)

and apply ctx ~loc fv args =
  match fv with
  | Builtin { path; bargs } -> apply_builtin ctx ~loc path (bargs @ args)
  | Fval fn -> apply_fn ctx ~loc fn args
  | _ -> Dyn

and apply_fn ctx ~loc:_ fn args =
  (* annotated function: the annotation is the summary *)
  let bind_params fn args =
    (* match labelled args by name, positional args in order *)
    let remaining = ref fn.fparams in
    let env = ref fn.fenv in
    let take_labelled name =
      let rec go acc = function
        | ((Asttypes.Labelled l | Asttypes.Optional l), _, pat) :: rest when String.equal l name ->
            remaining := List.rev_append acc rest;
            Some pat
        | p :: rest -> go (p :: acc) rest
        | [] ->
            remaining := List.rev acc;
            None
      in
      go [] !remaining
    in
    let take_positional () =
      let rec go acc = function
        | (Asttypes.Nolabel, _, pat) :: rest ->
            remaining := List.rev_append acc rest;
            Some pat
        | ((Asttypes.Optional _, _, _) as p) :: rest -> go (p :: acc) rest
        | ((Asttypes.Labelled _, _, _) as p) :: rest -> go (p :: acc) rest
        | [] ->
            remaining := List.rev acc;
            None
      in
      go [] !remaining
    in
    List.iter
      (fun (lbl, v) ->
        let pat =
          match lbl with
          | Asttypes.Labelled l | Asttypes.Optional l -> take_labelled l
          | Asttypes.Nolabel -> take_positional ()
        in
        match pat with
        | Some pat -> (
            match pat_var pat with
            | Some x -> env := Smap.add x v !env
            | None ->
                List.iter (fun x -> env := Smap.add x Dyn !env) (Ast_scan.pattern_vars pat))
        | None -> ())
      args;
    (!remaining, !env)
  in
  let remaining, env = bind_params fn args in
  let positional_left =
    List.exists (function Asttypes.Nolabel, _, _ -> true | _ -> false) remaining
  in
  if positional_left then
    Fval { fn with fparams = remaining; fenv = env }
  else begin
    (* all positional parameters satisfied: bind leftover optionals to
       their defaults (best effort) and evaluate *)
    let env =
      List.fold_left
        (fun env (_, default, pat) ->
          match pat_var pat with
          | Some x ->
              let v =
                match default with Some d -> (try eval ctx env d with Out_of_fuel -> Dyn) | None -> Dyn
              in
              Smap.add x v env
          | None -> env)
        env remaining
    in
    match fn.fann with
    | Some bound -> Bval (iv_of_hi (instantiate_ann ctx env bound))
    | None ->
        if List.exists (String.equal fn.fkey) ctx.stack then Dyn
        else begin
          ctx.stack <- fn.fkey :: ctx.stack;
          let v =
            match fn.fbody.pexp_desc with
            | Pexp_function cases -> eval_cases ctx env cases
            | _ -> ( try eval ctx env fn.fbody with Out_of_fuel -> Dyn)
          in
          (match ctx.stack with _ :: rest -> ctx.stack <- rest | [] -> ());
          v
        end
  end

(* A width annotation may mention parameter names; substitute the actual
   argument intervals (hi for positive coefficients, lo for negative). *)
and instantiate_ann _ctx env bound =
  Tmap.fold
    (fun t c acc ->
      match t with
      | Param p -> (
          let arg =
            match Smap.find_opt p env with
            | Some (Ival iv) | Some (Bval iv) -> iv
            | Some (Inst name) -> iv_exact (f_term (Param name))
            | Some (Rcell r) -> r.cell
            | _ -> iv_top
          in
          let sub = if c >= 0 then arg.hi else arg.lo in
          match (acc, sub) with
          | Some f, Some s -> Some (f_add f (f_scale c s))
          | _ -> None)
      | _ -> Option.map (fun f -> f_add f (f_term ~coeff:c t)) acc)
    bound.terms (Some (f_const bound.const))
  |> function
  | Some f -> f
  | None -> f_term (Param "?")  (* unprovable: a Param term never compares *)

and audit_subscript ctx ~loc ~what ~len ~idx =
  let safe =
    iv_nonneg_lo idx
    && match (idx.hi, len.lo) with
       | Some ih, Some ll -> leq ih (f_addc ll (-1))
       | _ -> false
  in
  if safe then
    add_safe ctx ~loc
      (Printf.sprintf "%s: index %s proved within [0, %s)" what (interval_to_string idx)
         (match len.lo with Some f -> form_to_string f | None -> "?"))
  else
    let provably_oob =
      (match (idx.lo, len.hi) with Some il, Some lh -> leq lh il | _ -> false)
      || match idx.hi with Some ih -> leq ih (f_const (-1)) | None -> false
    in
    if provably_oob then
      add_finding ctx ~loc ~rule:rule_index
        (Printf.sprintf "%s: subscript %s provably out of bounds for length %s" what
           (interval_to_string idx) (interval_to_string len))

and audit_slice ctx ~loc ~unsafe ~src ~pos ~len =
  let key (loc : Location.t) =
    (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
  in
  if unsafe then ctx.unsafe_audited <- key loc :: ctx.unsafe_audited;
  let proved =
    iv_nonneg_lo pos && iv_nonneg_lo len
    && match ((iv_add pos len).hi, src.lo) with
       | Some endhi, Some srclo -> leq endhi srclo
       | _ -> false
  in
  if proved then
    add_safe ctx ~loc
      (Printf.sprintf "Bits.%ssub: slice pos=%s len=%s proved within length %s"
         (if unsafe then "unsafe_" else "")
         (interval_to_string pos) (interval_to_string len) (interval_to_string src))
  else if unsafe then
    add_finding ctx ~loc ~rule:rule_index
      (Printf.sprintf
         "Bits.unsafe_sub slice pos=%s len=%s not provably within source length %s; use \
          Bits.sub or tighten the intervals (a dipp-refine annotation on the inputs can help)"
         (interval_to_string pos) (interval_to_string len) (interval_to_string src))

(* Same obligation as audit_slice, for the flat codec's random-access field
   reads: [pos, pos+width) must land inside the source bitstring. *)
and audit_flat_read ctx ~loc ~unsafe ~src ~pos ~width =
  let key (loc : Location.t) =
    (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol)
  in
  if unsafe then ctx.unsafe_audited <- key loc :: ctx.unsafe_audited;
  let proved =
    iv_nonneg_lo pos && iv_nonneg_lo width
    && match ((iv_add pos width).hi, src.lo) with
       | Some endhi, Some srclo -> leq endhi srclo
       | _ -> false
  in
  if proved then
    add_safe ctx ~loc
      (Printf.sprintf "Bits_flat.%s: field pos=%s width=%s proved within length %s"
         (if unsafe then "unsafe_int" else "read_int")
         (interval_to_string pos) (interval_to_string width) (interval_to_string src))
  else if unsafe then
    add_finding ctx ~loc ~rule:rule_index
      (Printf.sprintf
         "Bits_flat.unsafe_int field pos=%s width=%s not provably within source length %s; \
          use Bits_flat.read_int or tighten the intervals (a dipp-refine annotation on the \
          inputs can help)"
         (interval_to_string pos) (interval_to_string width) (interval_to_string src))

and record_site ctx ~loc labels =
  if own_loc ctx loc then begin
    let line = loc.Location.loc_start.pos_lnum in
    let width =
      match ann_at ctx.annots ~line with
      | Some { kind = Width; bound } -> iv_of_hi bound
      | _ -> (
          match labels with
          | Barr { elem; _ } -> elem
          | Bval iv -> iv
          | _ -> iv_top)
    in
    ctx.sites <- (loc, width) :: ctx.sites;
    match ctx.declared with
    | None -> ()
    | Some env_form -> (
        match width.hi with
        | None ->
            let hint =
              match ctx.last_unresolved with
              | Some (l, path) -> Printf.sprintf " (last unresolved call: %s at line %d)" path l
              | None -> ""
            in
            add_finding ctx ~loc ~rule:rule_budget
              (Printf.sprintf
                 "cannot bound the label width of this record_prover phase%s; annotate the \
                  call site or the serializer with (* dipp-refine: width <= FORM *)"
                 hint)
        | Some h ->
            if not (leq h env_form) then
              add_finding ctx ~loc ~rule:rule_budget
                (Printf.sprintf
                   "inferred label width %s exceeds (or is not provably within) the declared \
                    envelope %s of the bounds registry row"
                   (interval_to_string width) (form_to_string env_form)))
  end

and apply_builtin ctx ~loc (m, f) args =
  let pos = List.filter_map (function Asttypes.Nolabel, v -> Some v | _ -> None) args in
  let lab name =
    List.find_map
      (function
        | (Asttypes.Labelled l | Asttypes.Optional l), v when String.equal l name -> Some v
        | _ -> None)
      args
  in
  let need n k = if List.length pos >= n then k () else Builtin { path = (m, f); bargs = args } in
  let arith op =
    need 2 (fun () ->
        let a = as_int (List.nth pos 0) and b = as_int (List.nth pos 1) in
        Ival (op a b))
  in
  match (m, f) with
  (* ---- integer operators ---- *)
  | "Stdlib", "+" -> arith iv_add
  | "Stdlib", "-" -> arith iv_sub
  | "Stdlib", "*" -> arith iv_mul
  | "Stdlib", "min" | "Int", "min" -> arith iv_min
  | "Stdlib", "max" | "Int", "max" -> arith iv_max
  | "Stdlib", "/" ->
      arith (fun a b ->
          match iv_known_const b with
          | Some k when k >= 1 && iv_nonneg_lo a -> { lo = Some f_zero; hi = a.hi }
          | _ -> iv_top)
  | "Stdlib", "mod" ->
      arith (fun a b ->
          match iv_known_const b with
          | Some k when k >= 1 && iv_nonneg_lo a -> { lo = Some f_zero; hi = Some (f_const (k - 1)) }
          | _ -> iv_top)
  | "Stdlib", "land" ->
      arith (fun a b ->
          if iv_nonneg_lo a && iv_nonneg_lo b then { lo = Some f_zero; hi = pick_min a.hi b.hi }
          else iv_top)
  | "Stdlib", "lor" | "Stdlib", "lxor" -> arith (fun _ _ -> iv_top)
  | "Stdlib", "lsr" | "Stdlib", "asr" ->
      arith (fun a _ -> if iv_nonneg_lo a then { lo = Some f_zero; hi = a.hi } else iv_top)
  | "Stdlib", "lsl" ->
      arith (fun a b ->
          match iv_known_const b with
          | Some k when k >= 0 && k <= 16 -> iv_scale (1 lsl k) a
          | _ -> iv_top)
  | "Stdlib", "abs" -> need 1 (fun () ->
      let a = as_int (List.nth pos 0) in
      if iv_nonneg_lo a then Ival a else Ival iv_top)
  | "Stdlib", "succ" -> need 1 (fun () -> Ival (iv_addc (as_int (List.nth pos 0)) 1))
  | "Stdlib", "pred" -> need 1 (fun () -> Ival (iv_addc (as_int (List.nth pos 0)) (-1)))
  | "Stdlib", "ref" ->
      need 1 (fun () ->
          let r = { cell = as_int (List.nth pos 0) } in
          ctx.cells <- Rc r :: ctx.cells;
          Rcell r)
  | "Stdlib", "!" -> need 1 (fun () ->
      match List.nth pos 0 with Rcell r -> Ival r.cell | _ -> Dyn)
  | "Stdlib", ":=" ->
      need 2 (fun () ->
          (match List.nth pos 0 with
          | Rcell r -> r.cell <- as_int (List.nth pos 1)
          | _ -> ());
          Dyn)
  | "Stdlib", "incr" ->
      need 1 (fun () ->
          (match List.nth pos 0 with Rcell r -> r.cell <- iv_addc r.cell 1 | _ -> ());
          Dyn)
  | "Stdlib", "decr" ->
      need 1 (fun () ->
          (match List.nth pos 0 with Rcell r -> r.cell <- iv_addc r.cell (-1) | _ -> ());
          Dyn)
  | "Stdlib", ("=" | "<>" | "<" | ">" | "<=" | ">=" | "==" | "!=" | "&&" | "||" | "not") ->
      Dyn
  | "Stdlib", "@" ->
      need 2 (fun () ->
          match (List.nth pos 0, List.nth pos 1) with
          | Lvals a, Lvals b -> Lvals (a @ b)
          | a, b ->
              let count v =
                match v with
                | Lvals vs -> iv_const (List.length vs)
                | Llist { count; _ } -> count
                | _ -> iv_top
              in
              let elem v =
                match v with
                | Lvals vs -> List.fold_left value_join Dyn vs
                | Llist { elem; _ } -> elem
                | _ -> Dyn
              in
              Llist { count = iv_add (count a) (count b); elem = value_join (elem a) (elem b) })
  (* ---- Bits ---- *)
  | "Bits", "of_bool" -> need 1 (fun () -> Bval (iv_const 1))
  | "Bits", "of_int" -> (
      match (lab "width", pos) with
      | Some w, _ :: _ -> Bval (as_int w)
      | _ -> Builtin { path = (m, f); bargs = args })
  | "Bits", "of_string" -> need 1 (fun () ->
      match List.nth pos 0 with Sval iv -> Bval iv | _ -> Bval iv_top)
  | "Bits", "to_string" -> need 1 (fun () -> Sval (as_bits_len (List.nth pos 0)))
  | "Bits", "length" -> need 1 (fun () -> Ival (as_bits_len (List.nth pos 0)))
  | "Bits", "make" -> need 1 (fun () -> Bval (as_int (List.nth pos 0)))
  | "Bits", "init" -> need 2 (fun () ->
      ignore (apply ctx ~loc (List.nth pos 1) [ (Asttypes.Nolabel, Ival iv_nonneg) ]);
      Bval (as_int (List.nth pos 0)))
  | "Bits", "random" -> need 2 (fun () -> Bval (as_int (List.nth pos 1)))
  | "Bits", "append" ->
      need 2 (fun () ->
          Bval (iv_add (as_bits_len (List.nth pos 0)) (as_bits_len (List.nth pos 1))))
  | "Bits", "concat" ->
      need 1 (fun () ->
          match List.nth pos 0 with
          | Lvals vs ->
              Bval (List.fold_left (fun acc v -> iv_add acc (as_bits_len v)) (iv_const 0) vs)
          | Llist { count; elem } -> Bval (iv_mul count (as_bits_len elem))
          | _ -> Bval iv_top)
  | "Bits", "get" ->
      need 2 (fun () ->
          if ctx.audit_index then
            audit_subscript ctx ~loc ~what:"Bits.get"
              ~len:(as_bits_len (List.nth pos 0))
              ~idx:(as_int (List.nth pos 1));
          Dyn)
  | "Bits", ("sub" | "unsafe_sub") -> (
      match (pos, lab "pos", lab "len") with
      | [ src ], Some p, Some l ->
          let src = as_bits_len src and p = as_int p and l = as_int l in
          if ctx.audit_index || String.equal f "unsafe_sub" then
            audit_slice ctx ~loc ~unsafe:(String.equal f "unsafe_sub") ~src ~pos:p ~len:l;
          Bval l
      | _ -> Builtin { path = (m, f); bargs = args })
  | "Bits", "to_int" -> need 1 (fun () -> Ival iv_nonneg)
  | "Bits", "of_bytes" -> (
      match lab "len" with Some l -> Bval (as_int l) | None -> Bval iv_top)
  | "Writer", "create" -> need 1 (fun () ->
      let w = { acc = iv_const 0 } in
      ctx.cells <- Wc w :: ctx.cells;
      Wval w)
  | "Writer", "bool" ->
      need 2 (fun () ->
          (match List.nth pos 0 with Wval w -> w.acc <- iv_add w.acc (iv_const 1) | _ -> ());
          Dyn)
  | "Writer", "int" -> (
      match (pos, lab "width") with
      | wv :: _ :: _, Some width | [ wv ], Some width ->
          (* (w ~width v) or partially (w ~width) then v *)
          if List.length pos >= 2 then begin
            (match wv with Wval w -> w.acc <- iv_add w.acc (as_int width) | _ -> ());
            Dyn
          end
          else Builtin { path = (m, f); bargs = args }
      | _ -> Builtin { path = (m, f); bargs = args })
  | "Writer", "bits" ->
      need 2 (fun () ->
          (match List.nth pos 0 with
          | Wval w -> w.acc <- iv_add w.acc (as_bits_len (List.nth pos 1))
          | _ -> ());
          Dyn)
  | "Writer", "contents" ->
      need 1 (fun () -> match List.nth pos 0 with Wval w -> Bval w.acc | _ -> Dyn)
  | "Reader", "bits" -> (
      match lab "len" with Some l -> Bval (as_int l) | None -> Builtin { path = (m, f); bargs = args })
  | "Reader", "int" -> (
      match lab "width" with Some _ -> Ival iv_nonneg | None -> Builtin { path = (m, f); bargs = args })
  | "Reader", "remaining" -> need 1 (fun () -> Ival iv_nonneg)
  (* ---- Bits_flat (flat codec: Enc mirrors Writer, Dec mirrors Reader) ---- *)
  | "Enc", "create" -> need 1 (fun () ->
      let w = { acc = iv_const 0 } in
      ctx.cells <- Wc w :: ctx.cells;
      Wval w)
  | "Enc", "reset" ->
      need 1 (fun () ->
          (match List.nth pos 0 with Wval w -> w.acc <- iv_const 0 | _ -> ());
          Dyn)
  | "Enc", "bool" ->
      need 2 (fun () ->
          (match List.nth pos 0 with Wval w -> w.acc <- iv_add w.acc (iv_const 1) | _ -> ());
          Dyn)
  | "Enc", "int" -> (
      match (pos, lab "width") with
      | wv :: _ :: _, Some width | [ wv ], Some width ->
          (* (e ~width v) or partially (e ~width) then v *)
          if List.length pos >= 2 then begin
            (match wv with Wval w -> w.acc <- iv_add w.acc (as_int width) | _ -> ());
            Dyn
          end
          else Builtin { path = (m, f); bargs = args }
      | _ -> Builtin { path = (m, f); bargs = args })
  | "Enc", "bits" ->
      need 2 (fun () ->
          (match List.nth pos 0 with
          | Wval w -> w.acc <- iv_add w.acc (as_bits_len (List.nth pos 1))
          | _ -> ());
          Dyn)
  | "Enc", "length" ->
      need 1 (fun () -> match List.nth pos 0 with Wval w -> Ival w.acc | _ -> Ival iv_nonneg)
  | "Enc", "to_bits" ->
      need 1 (fun () -> match List.nth pos 0 with Wval w -> Bval w.acc | _ -> Dyn)
  | "Dec", "of_bits" -> need 1 (fun () -> Dyn)
  | "Dec", "bits" -> (
      match lab "len" with Some l -> Bval (as_int l) | None -> Builtin { path = (m, f); bargs = args })
  | "Dec", "int" -> (
      match lab "width" with Some _ -> Ival iv_nonneg | None -> Builtin { path = (m, f); bargs = args })
  | "Dec", "bool" -> need 1 (fun () -> Dyn)
  | "Dec", "remaining" -> need 1 (fun () -> Ival iv_nonneg)
  | "Bits_flat", ("read_int" | "unsafe_int") -> (
      match (pos, lab "pos", lab "width") with
      | [ src ], Some p, Some w ->
          let src = as_bits_len src and p = as_int p and w = as_int w in
          let unsafe = String.equal f "unsafe_int" in
          if ctx.audit_index || unsafe then
            audit_flat_read ctx ~loc ~unsafe ~src ~pos:p ~width:w;
          Ival iv_nonneg
      | _ -> Builtin { path = (m, f); bargs = args })
  (* ---- arrays ---- *)
  | "Array", "length" ->
      need 1 (fun () ->
          match List.nth pos 0 with
          | Barr { alen; _ } -> Ival alen
          | Aval { alen } -> Ival alen
          | _ -> Ival iv_nonneg)
  | "Array", "make" ->
      need 2 (fun () ->
          let n = as_int (List.nth pos 0) in
          match List.nth pos 1 with
          | Bval iv -> Barr { alen = n; elem = iv }
          | _ -> Aval { alen = n })
  | "Array", "init" ->
      need 2 (fun () ->
          let n = as_int (List.nth pos 0) in
          let idx = { lo = Some f_zero; hi = Option.map (fun f -> f_addc f (-1)) n.hi } in
          let elem = apply ctx ~loc (List.nth pos 1) [ (Asttypes.Nolabel, Ival idx) ] in
          match elem with
          | Bval iv -> Barr { alen = n; elem = iv }
          | _ -> Aval { alen = n })
  | "Array", ("map" | "mapi") ->
      need 2 (fun () ->
          let fv = List.nth pos 0 and av = List.nth pos 1 in
          let alen, elem_in =
            match av with
            | Barr { alen; elem } -> (alen, Bval elem)
            | Aval { alen } -> (alen, Dyn)
            | _ -> (iv_nonneg, Dyn)
          in
          let cb_args =
            if String.equal f "mapi" then
              [ (Asttypes.Nolabel, Ival iv_nonneg); (Asttypes.Nolabel, elem_in) ]
            else [ (Asttypes.Nolabel, elem_in) ]
          in
          match apply ctx ~loc fv cb_args with
          | Bval iv -> Barr { alen; elem = iv }
          | _ -> Aval { alen })
  | "Array", "append" ->
      need 2 (fun () ->
          match (List.nth pos 0, List.nth pos 1) with
          | Barr a, Barr b ->
              Barr { alen = iv_add a.alen b.alen; elem = iv_join a.elem b.elem }
          | Barr a, Aval b | Aval b, Barr a ->
              Barr { alen = iv_add a.alen b.alen; elem = a.elem }
          | Aval a, Aval b -> Aval { alen = iv_add a.alen b.alen }
          | _ -> Dyn)
  | "Array", "concat" -> need 1 (fun () -> Dyn)
  | "Array", "copy" -> need 1 (fun () -> List.nth pos 0)
  | "Array", "of_list" ->
      need 1 (fun () ->
          match List.nth pos 0 with
          | Lvals vs ->
              let n = iv_const (List.length vs) in
              if List.exists (function Bval _ -> true | _ -> false) vs then
                Barr
                  {
                    alen = n;
                    elem =
                      List.fold_left (fun acc v -> iv_join acc (as_bits_len v)) (iv_const 0) vs;
                  }
              else Aval { alen = n }
          | Llist { count; elem = Bval iv } -> Barr { alen = count; elem = iv }
          | Llist { count; _ } -> Aval { alen = count }
          | _ -> Dyn)
  | "Array", "to_list" ->
      need 1 (fun () ->
          match List.nth pos 0 with
          | Barr { alen; elem } -> Llist { count = alen; elem = Bval elem }
          | Aval { alen } -> Llist { count = alen; elem = Dyn }
          | _ -> Dyn)
  | "Array", ("get" | "unsafe_get") ->
      need 2 (fun () ->
          let av = List.nth pos 0 and idx = as_int (List.nth pos 1) in
          (if ctx.audit_index then
             match av with
             | Barr { alen; _ } | Aval { alen } ->
                 audit_subscript ctx ~loc ~what:"Array.get" ~len:alen ~idx
             | _ -> ());
          match av with Barr { elem; _ } -> Bval elem | _ -> Dyn)
  | "Array", ("set" | "unsafe_set") ->
      need 3 (fun () ->
          (if ctx.audit_index then
             match List.nth pos 0 with
             | Barr { alen; _ } | Aval { alen } ->
                 audit_subscript ctx ~loc ~what:"Array.set" ~len:alen
                   ~idx:(as_int (List.nth pos 1))
             | _ -> ());
          Dyn)
  | "Array", ("iter" | "iteri" | "for_all" | "exists") ->
      need 2 (fun () ->
          let fv = List.nth pos 0 in
          let elem_in =
            match List.nth pos 1 with Barr { elem; _ } -> Bval elem | _ -> Dyn
          in
          let cb_args =
            if String.equal f "iteri" then
              [ (Asttypes.Nolabel, Ival iv_nonneg); (Asttypes.Nolabel, elem_in) ]
            else [ (Asttypes.Nolabel, elem_in) ]
          in
          ignore (apply ctx ~loc fv cb_args);
          Dyn)
  | "Array", ("fold_left" | "fold_right") ->
      need 3 (fun () ->
          ignore (apply ctx ~loc (List.nth pos 0) [ (Asttypes.Nolabel, Dyn); (Asttypes.Nolabel, Dyn) ]);
          Dyn)
  (* ---- lists ---- *)
  | "List", "length" ->
      need 1 (fun () ->
          match List.nth pos 0 with
          | Lvals vs -> Ival (iv_const (List.length vs))
          | Llist { count; _ } -> Ival count
          | _ -> Ival iv_nonneg)
  | "List", "rev" -> need 1 (fun () ->
      match List.nth pos 0 with Lvals vs -> Lvals (List.rev vs) | v -> v)
  | "List", ("map" | "mapi" | "rev_map") ->
      need 2 (fun () ->
          let fv = List.nth pos 0 in
          let one v =
            let cb =
              if String.equal f "mapi" then
                [ (Asttypes.Nolabel, Ival iv_nonneg); (Asttypes.Nolabel, v) ]
              else [ (Asttypes.Nolabel, v) ]
            in
            apply ctx ~loc fv cb
          in
          match List.nth pos 1 with
          | Lvals vs -> Lvals (List.map one vs)
          | Llist { count; elem } -> Llist { count; elem = one elem }
          | _ -> Llist { count = iv_nonneg; elem = one Dyn })
  | "List", ("iter" | "iteri" | "for_all" | "exists") ->
      need 2 (fun () ->
          let fv = List.nth pos 0 in
          let one v =
            let cb =
              if String.equal f "iteri" then
                [ (Asttypes.Nolabel, Ival iv_nonneg); (Asttypes.Nolabel, v) ]
              else [ (Asttypes.Nolabel, v) ]
            in
            ignore (apply ctx ~loc fv cb)
          in
          (match List.nth pos 1 with
          | Lvals vs -> List.iter one vs
          | Llist { elem; _ } -> one elem
          | _ -> one Dyn);
          Dyn)
  | "List", ("filter" | "sort" | "stable_sort" | "sort_uniq") ->
      need 2 (fun () ->
          match List.nth pos 1 with
          | Lvals vs -> Llist { count = iv_of_hi (f_const (List.length vs)); elem = List.fold_left value_join Dyn vs }
          | Llist { count; elem } -> Llist { count = { lo = Some f_zero; hi = count.hi }; elem }
          | _ -> Dyn)
  | "List", "filter_map" ->
      need 2 (fun () ->
          let fv = List.nth pos 0 in
          let elem =
            match List.nth pos 1 with
            | Lvals vs -> List.fold_left (fun acc v -> value_join acc (apply ctx ~loc fv [ (Asttypes.Nolabel, v) ])) Dyn vs
            | Llist { elem; _ } -> apply ctx ~loc fv [ (Asttypes.Nolabel, elem) ]
            | _ -> Dyn
          in
          ignore elem;
          Dyn)
  | "List", ("fold_left" | "fold_right") ->
      need 3 (fun () ->
          ignore (apply ctx ~loc (List.nth pos 0) [ (Asttypes.Nolabel, Dyn); (Asttypes.Nolabel, Dyn) ]);
          Dyn)
  | "List", "init" ->
      need 2 (fun () ->
          let n = as_int (List.nth pos 0) in
          let elem = apply ctx ~loc (List.nth pos 1) [ (Asttypes.Nolabel, Ival iv_nonneg) ] in
          Llist { count = n; elem })
  (* ---- strings / bytes ---- *)
  | ("String" | "Bytes"), "length" ->
      need 1 (fun () ->
          match List.nth pos 0 with Sval iv -> Ival iv | _ -> Ival iv_nonneg)
  | ("String" | "Bytes"), "make" -> need 2 (fun () -> Sval (as_int (List.nth pos 0)))
  | ("String" | "Bytes"), "init" -> need 2 (fun () -> Sval (as_int (List.nth pos 0)))
  | "String", "sub" | "Bytes", "sub" ->
      need 3 (fun () -> Sval (as_int (List.nth pos 2)))
  | ("String" | "Bytes"), ("get" | "unsafe_get") ->
      need 2 (fun () ->
          (if ctx.audit_index then
             match List.nth pos 0 with
             | Sval len -> audit_subscript ctx ~loc ~what:(m ^ ".get") ~len ~idx:(as_int (List.nth pos 1))
             | _ -> ());
          Dyn)
  (* ---- Dip ---- *)
  | "Dip", "record_prover" ->
      need 2 (fun () ->
          record_site ctx ~loc (List.nth pos 1);
          Dyn)
  | "Dip", "record_verifier" -> need 2 (fun () -> Dyn)
  | "Dip", "all_accept" -> (
      match (lab "n", pos) with
      | Some n, fv :: _ ->
          let n = as_int n in
          let idx = { lo = Some f_zero; hi = Option.map (fun f -> f_addc f (-1)) n.hi } in
          let saved = ctx.audit_index in
          ctx.audit_index <- true;
          ignore (apply ctx ~loc fv [ (Asttypes.Nolabel, Ival idx) ]);
          ctx.audit_index <- saved;
          Dyn
      | _ -> Builtin { path = (m, f); bargs = args })
  | ("Option" | "Result" | "Seq" | "Hashtbl" | "Queue" | "Stack" | "Buffer" | "Format"
    | "Printf" | "Fun" | "Float" | "Char" | "Sys" | "Filename" | "Int" | "Stdlib" | "Dip"
    | "Bits" | "Writer" | "Reader" | "Array" | "List" | "String" | "Bytes"), _ ->
      Dyn
  | _ -> Dyn

(* Path-sensitivity-lite: refine integer intervals from a comparison
   guard for the then-branch. *)
and refine_env ctx env (cond : Parsetree.expression) =
  match cond.pexp_desc with
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "&&"; _ }; _ },
        [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] ) ->
      refine_env ctx (refine_env ctx env a) b
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("<" | "<=" | ">" | ">=") as op); _ }; _ },
        [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ] ) -> (
      let refine_var x ~upper ~strict other =
        match Smap.find_opt x env with
        | Some (Ival xi) ->
            let o = as_int (try eval ctx env other with Out_of_fuel -> Dyn) in
            let xi' =
              if upper then
                (* x < other  /  x <= other *)
                let bound = if strict then Option.map (fun f -> f_addc f (-1)) o.hi else o.hi in
                { xi with hi = pick_min xi.hi bound }
              else
                let bound = if strict then Option.map (fun f -> f_addc f 1) o.lo else o.lo in
                { xi with lo = pick_max xi.lo bound }
            in
            Smap.add x (Ival xi') env
        | _ -> env
      in
      match (a.pexp_desc, b.pexp_desc) with
      | Pexp_ident { txt = Longident.Lident x; _ }, _ -> (
          match op with
          | "<" -> refine_var x ~upper:true ~strict:true b
          | "<=" -> refine_var x ~upper:true ~strict:false b
          | ">" -> refine_var x ~upper:false ~strict:true b
          | ">=" -> refine_var x ~upper:false ~strict:false b
          | _ -> env)
      | _, Pexp_ident { txt = Longident.Lident x; _ } -> (
          match op with
          | "<" -> refine_var x ~upper:false ~strict:true a
          | "<=" -> refine_var x ~upper:false ~strict:false a
          | ">" -> refine_var x ~upper:true ~strict:true a
          | ">=" -> refine_var x ~upper:true ~strict:false a
          | _ -> env)
      | _ -> env)
  | _ -> env

(* ---- drivers --------------------------------------------------------- *)

type envelope = form

let form_leq = leq

let envelope_of_shape (s : Dipp_protocols.Bounds.shape) =
  match s with
  | Dipp_protocols.Bounds.Loglog { mult; add } -> f_addc (f_term ~coeff:mult Loglog) add
  | Dipp_protocols.Bounds.Loglog_delta { mult; dmult; add } ->
      f_addc (f_add (f_term ~coeff:mult Loglog) (f_term ~coeff:dmult Logdelta)) add
  | Dipp_protocols.Bounds.Log { mult; add } -> f_addc (f_term ~coeff:mult Log) add

let envelope ?(loglog = 0) ?(log = 0) ?(logdelta = 0) ~add () =
  f_addc
    (f_add (f_term ~coeff:loglog Loglog) (f_add (f_term ~coeff:log Log) (f_term ~coeff:logdelta Logdelta)))
    add

let pp_envelope = pp_form

type result = {
  findings : Report.finding list;
  safe : safe list;
  label_lo : form option;
  label_hi : form option;
}

(* Collect every [Bits.unsafe_sub] / [Bits_flat.unsafe_int] identifier
   occurrence so call sites the evaluator never reached still fail the
   gate. *)
let unsafe_sub_sites structure =
  let acc = ref [] in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match Ast_scan.last_two txt with
        | Some ("Bits", "unsafe_sub") -> acc := ("Bits.unsafe_sub", "Bits.sub", loc) :: !acc
        | Some ("Bits_flat", "unsafe_int") ->
            acc := ("Bits_flat.unsafe_int", "Bits_flat.read_int", loc) :: !acc
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.structure iter structure;
  !acc

let analyze ?program ?annots ?declared ~filename structure =
  let annots =
    match annots with Some a -> a | None -> no_annots ()
  in
  let ctx =
    {
      filename;
      modname = Typed_scan.module_name filename;
      annots;
      program;
      declared;
      fuel = 400_000;
      stack = [];
      audit_index = false;
      findings = [];
      safes = [];
      sites = [];
      cells = [];
      last_unresolved = None;
      unsafe_audited = [];
      file_annots = Hashtbl.create 8;
      module_envs = Hashtbl.create 8;
      modules_in_progress = [ Typed_scan.module_name filename ];
    }
  in
  (try
     let env = eval_structure ctx structure in
     Hashtbl.replace ctx.module_envs ctx.modname env;
     (* drive [run] (budget + index audits) *)
     (match Smap.find_opt "run" env with
     | Some (Fval fn) ->
         let args =
           List.filter_map
             (function
               | Asttypes.Nolabel, _, pat ->
                   Some
                     ( Asttypes.Nolabel,
                       match pat_var pat with Some x -> Inst x | None -> Dyn )
               | _ -> None)
             fn.fparams
         in
         ignore (try apply ctx ~loc:Location.none (Fval fn) args with Out_of_fuel -> Dyn)
     | _ -> ());
     (* drive every decision-named top-level function with the index audit on *)
     Smap.iter
       (fun name v ->
         match v with
         | Fval fn when Locality.is_decision_name name ->
             let args =
               List.filter_map
                 (function
                   | Asttypes.Nolabel, _, pat ->
                   Some
                     ( Asttypes.Nolabel,
                       match pat_var pat with Some x -> Inst x | None -> Dyn )
                   | _ -> None)
                 fn.fparams
             in
             let saved = ctx.audit_index in
             ctx.audit_index <- true;
             ignore (try apply ctx ~loc:Location.none (Fval fn) args with Out_of_fuel -> Dyn);
             ctx.audit_index <- saved
         | _ -> ())
       env
   with _ -> ());
  (* gate: unsafe_sub / unsafe_int sites the evaluator never audited *)
  List.iter
    (fun ((what : string), (instead : string), (loc : Location.t)) ->
      let key = (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum - loc.loc_start.pos_bol) in
      if not (List.exists (fun k -> k = key) ctx.unsafe_audited) then
        add_finding ctx ~loc ~rule:rule_index
          (Printf.sprintf
             "%s call site not reached by the refine pass, so its range cannot be verified; \
              use %s here"
             what instead))
    (unsafe_sub_sites structure);
  let label_lo, label_hi =
    List.fold_left
      (fun (lo, hi) (_, iv) ->
        let lo = match (lo, iv.lo) with Some a, Some b -> pick_max (Some a) (Some b) | x, None -> x | None, y -> y in
        let hi = match (hi, iv.hi) with Some a, Some b -> Some (f_cmax a b) | _, None | None, _ -> None in
        (lo, hi))
      (None, (match ctx.sites with [] -> None | _ -> Some f_zero))
      ctx.sites
  in
  (* a closure audited once per call site can prove the same subscript
     several times; report each site once *)
  let safe =
    List.fold_left
      (fun acc (s : safe) ->
        if
          List.exists
            (fun (t : safe) ->
              t.sline = s.sline && t.scol = s.scol && String.equal t.sdesc s.sdesc)
            acc
        then acc
        else s :: acc)
      []
      (List.rev ctx.safes)
    |> List.rev
  in
  { findings = List.rev ctx.findings; safe; label_lo; label_hi }

let check ?program ?annots ?declared ~filename structure =
  (analyze ?program ?annots ?declared ~filename structure).findings
