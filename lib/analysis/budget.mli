(** The [budget] rule: static round/phase-schedule verification.

    For every module with a top-level [run] function the pass extracts,
    along each execution path, the sequence of [Dip.record_prover] /
    [Dip.record_verifier] calls, splicing let-bound and top-level helper
    bodies at call sites.  A sub-protocol call [M.run] is expanded
    through the whole-program index to [M]'s own extracted schedule and
    merged in parallel (longest schedule wins; every component must be a
    prefix of it — [Dip.merge_parallel] semantics).  Branches produce
    alternative paths; a sub-run inside a lambda or loop is modeled as
    zero-or-once (parallel merging makes repetition idempotent).

    Findings, all under rule ["budget"]:
    - a phase recorded inside a closure or loop (schedule not statically
      fixed);
    - an extracted schedule that deviates from (is not a prefix of) the
      declared one;
    - statically inconsistent parallel schedules on one path;
    - no path realizing the declared schedule exactly (skipped when an
      unresolvable sub-protocol makes the extraction incomplete);
    - with [require_declared], a recording [run] with no registry row. *)

val rule_budget : string
(** ["budget"] *)

type ph = P | V

type declared = {
  id : string;  (** registry row id, for messages *)
  rounds : int;
  schedule : ph list;
}

val render : ph list -> string
(** ["P-V-P-V-P"]; ["(no phases)"] when empty. *)

val check_structure :
  ?program:Typed_scan.program ->
  ?declared:declared ->
  require_declared:bool ->
  modname:string ->
  Parsetree.structure ->
  Report.finding list
(** Checks one module.  [program] resolves sub-protocol and cross-module
    helper calls; without it, unresolved subs make the exactness check
    lenient rather than noisy.  [declared] is the registry row for this
    module, if any; [require_declared] demands one whenever [run]
    records phases (set for [lib/protocols] and [lib/baselines]). *)
