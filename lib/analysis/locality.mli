(** The DIP-model locality audit (rules [locality-traversal] and
    [locality-index]).

    In the Kol–Oshman–Saxena model a verifier's decision at node [v] may
    read only [v]'s own coins and labels and its graph neighbors' labels.
    The audit approximates this syntactically inside every {e decision
    function} — a function binding whose name matches [decide*], [verify*]
    or [*_check]:

    - [locality-traversal]: no global edge enumeration; any reference to
      [Graph.edges], [Graph.fold_edges] or [Graph.iter_edges] (under any
      module prefix ending in [Graph]) is flagged.  Neighborhood access
      must go through the sanctioned per-node API ([Graph.neighbors],
      [Graph.degree], [Graph.mem_edge], ...).
    - [locality-index]: every container subscript — [Array.get]/[set]
      (safe or unsafe, including the [.( )] sugar), [Bytes.get]/[set],
      [String.get] and [Hashtbl.find]/[find_opt]/[mem]/[replace]/[add]
      on label stores — must be built from locally bound variables (the
      decision function's parameters and bindings introduced inside it —
      e.g. a neighbor obtained from [Graph.neighbors g v]), constants,
      operators and nested sanctioned reads.  A subscript mentioning an
      identifier captured from outside the function (a "global" node id)
      escapes the neighbor view and is flagged.

    This is an approximation: it cannot prove that a locally bound index
    denotes a genuine neighbor, but it catches the failure mode that
    invalidates soundness claims — addressing label/coin arrays with
    state that did not flow through the node's own view. *)

val rule_traversal : string
val rule_index : string

val is_decision_name : string -> bool

val check : Parsetree.structure -> Report.finding list
