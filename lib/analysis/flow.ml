(* The flow-locality rule: an interprocedural taint analysis over the
   parsetree that tracks where values inside a decision function came
   from.  The lattice orders provenance by how far it reaches beyond the
   deciding node's legal view:

       Local < Own_coin < Neighbor_label < Graph_global

   [Local] is node-local arithmetic (parameters, constants); [Own_coin]
   flowed out of a coin/randomness store; [Neighbor_label] flowed out of
   a label store addressed by the node or a bound neighbor; and
   [Graph_global] is outer-scope state that never passed through the
   node's view.  A finding fires when a [Graph_global] value reaches a
   container subscript inside a decision function — including the
   laundering pattern the syntactic locality-index rule concedes
   (ANALYSIS.md, documented approximations): parking a non-local node id
   in a local slot and indexing through the slot.

   Interprocedural propagation: every let-bound function gets a summary
   (result taint + latent findings); calling a summarized function joins
   its base taint into the result and replays its latent findings at the
   definition site.  Qualified calls resolve through the whole-program
   index (Typed_scan); cross-module summaries contribute base taint
   only, capped at Neighbor_label — a foreign module's own top-level
   state is not this decision function's outer scope. *)

module StrMap = Map.Make (String)
module StrSet = Set.Make (String)

let rule_flow = "flow-locality"

type taint = Local | Own_coin | Neighbor_label | Graph_global

let rank = function Local -> 0 | Own_coin -> 1 | Neighbor_label -> 2 | Graph_global -> 3
let join a b = if rank a >= rank b then a else b
let joins ts = List.fold_left join Local ts
let is_global = function Graph_global -> true | Local | Own_coin | Neighbor_label -> false

let taint_name = function
  | Local -> "Local"
  | Own_coin -> "OwnCoin"
  | Neighbor_label -> "NeighborLabel"
  | Graph_global -> "GraphGlobal"

type store = { mutable content : taint }
type summary = { base : taint; flags : (Location.t * string) list }
type binding = Val of taint | Store of store | Fn of summary

type ctx = {
  prog : Typed_scan.program option;
  stores : (Location.t, store) Hashtbl.t;  (* binding site -> tracked cell *)
  xsums : (string, taint) Hashtbl.t;  (* memoized cross-module bases *)
}

type emit = loc:Location.t -> string -> unit

let silent : emit = fun ~loc:_ _ -> ()

(* ---- name classification --------------------------------------------- *)

let word_operators =
  StrSet.of_list [ "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr"; "or"; "not" ]

let allowed_free = StrSet.of_list [ "min"; "max"; "abs"; "succ"; "pred"; "fst"; "snd"; "ignore" ]

let is_operator_name x =
  x <> ""
  && (StrSet.mem x word_operators
     || match x.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> false | _ -> true)

let is_pure_free x = is_operator_name x || StrSet.mem x allowed_free

let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  m > 0 && go 0

(* The container firewall: a free identifier used *as a container* (or as
   an argument handed to a summarized call) is assumed to be a legal part
   of the node's view — a label array indexed here, a coin store, a graph
   handle passed to the neighbor API.  Only values read *out* of it keep
   flowing through the lattice.  Without this assumption every shipped
   decision function would be noise; with it, the rule still catches
   non-local values *entering* a subscript. *)
let firewall_name x =
  let lx = String.lowercase_ascii x in
  if contains_sub lx "coin" || contains_sub lx "rng" || contains_sub lx "rand" then Own_coin
  else Neighbor_label

(* ---- container-access classification ---------------------------------- *)

type access =
  | Read of Parsetree.expression * Parsetree.expression
  | Write of Parsetree.expression * Parsetree.expression * Parsetree.expression

let classify_access lid args =
  let plain = List.map snd args in
  match (Ast_scan.last_two lid, plain) with
  | Some (("Array" | "Bytes" | "String"), ("get" | "unsafe_get")), [ c; i ] -> Some (Read (c, i))
  | Some ("Hashtbl", ("find" | "find_opt" | "mem")), [ c; k ] -> Some (Read (c, k))
  | Some (("Array" | "Bytes"), ("set" | "unsafe_set")), [ c; i; x ] -> Some (Write (c, i, x))
  | Some ("Hashtbl", ("replace" | "add")), [ c; k; x ] -> Some (Write (c, k, x))
  | (Some _ | None), _ -> None

let store_maker lid plain =
  (* Shapes whose result we track as a local mutable slot, with the
     initial content taint each implies.  [`Elements e] defers to the
     element taint of a source container; [`Value e] to a plain value;
     [`Lambda (f, src)] to the result of the initializer over [src]'s
     elements (or over [Local] for [None]). *)
  match (Ast_scan.last_two lid, plain) with
  | Some ("Array", "make"), [ _; x ] -> Some (`Value x)
  | Some ("Array", "init"), [ _; f ] -> Some (`Lambda (f, None))
  | Some ("Array", ("copy" | "sub")), c :: _ -> Some (`Elements c)
  | Some ("Array", "append"), [ a; b ] -> Some (`Elements2 (a, b))
  | Some ("Array", "concat"), [ l ] -> Some (`Elements l)
  | Some ("Array", ("map" | "mapi")), [ f; c ] -> Some (`Lambda (f, Some c))
  | Some ("Array", "of_list"), [ l ] -> Some (`Elements l)
  | Some ("Bytes", ("create" | "make")), _ -> Some `Fresh
  | Some ("Hashtbl", "create"), _ -> Some `Fresh
  | Some ("Hashtbl", "copy"), [ c ] -> Some (`Elements c)
  | (Some _ | None), _ -> None

(* ---- the evaluator ---------------------------------------------------- *)

let resolve env x = StrMap.find_opt x env
let bind_all names b env = List.fold_left (fun acc x -> StrMap.add x b acc) env names

let rec eval ctx (emit : emit) env (e : Parsetree.expression) : taint =
  match e.pexp_desc with
  | Pexp_constant _ -> Local
  | Pexp_construct (_, None) | Pexp_variant (_, None) -> Local
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> eval ctx emit env a
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match resolve env x with
      | Some (Val t) -> t
      | Some (Store s) -> s.content
      | Some (Fn sum) -> sum.base
      | None -> if is_pure_free x then Local else Graph_global)
  | Pexp_ident _ -> Local
  | Pexp_apply (f, args) -> eval_apply ctx emit env e f args
  | Pexp_let (rf, vbs, body) ->
      let env' = eval_let ctx emit env rf vbs in
      eval ctx emit env' body
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> walk_lambda ctx emit env Local e
  | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
      let st = eval ctx emit env scrut in
      eval_cases ctx emit env st cases
  | Pexp_ifthenelse (c, t, f) ->
      ignore (eval ctx emit env c);
      let tt = eval ctx emit env t in
      let ft = match f with Some f -> eval ctx emit env f | None -> Local in
      join tt ft
  | Pexp_sequence (a, b) ->
      ignore (eval ctx emit env a);
      eval ctx emit env b
  | Pexp_tuple es | Pexp_array es -> joins (List.map (eval ctx emit env) es)
  | Pexp_field (b, _) -> eval ctx emit env b
  | Pexp_setfield (b, _, x) ->
      ignore (eval ctx emit env b);
      ignore (eval ctx emit env x);
      Local
  | Pexp_record (fields, base) ->
      let ft = joins (List.map (fun (_, x) -> eval ctx emit env x) fields) in
      join ft (match base with Some b -> eval ctx emit env b | None -> Local)
  | Pexp_while (c, b) ->
      ignore (eval ctx emit env c);
      ignore (eval ctx emit env b);
      Local
  | Pexp_for (pat, lo, hi, _, body) ->
      ignore (eval ctx emit env lo);
      ignore (eval ctx emit env hi);
      let env' = bind_all (Ast_scan.pattern_vars pat) (Val Local) env in
      ignore (eval ctx emit env' body);
      Local
  | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) | Pexp_assert a | Pexp_lazy a ->
      eval ctx emit env a
  | Pexp_open (_, a) | Pexp_letexception (_, a) -> eval ctx emit env a
  | _ -> eval_children ctx emit env e

(* Fallback for constructs without a dedicated rule: evaluate every child
   expression (so accesses inside them are still audited) and stay Local. *)
and eval_children ctx emit env e =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ e' -> ignore (eval ctx emit env e')) }
  in
  Ast_iterator.default_iterator.expr it e;
  Local

and eval_cases ctx emit env scrut_taint cases =
  List.fold_left
    (fun acc (c : Parsetree.case) ->
      let env' = bind_all (Ast_scan.pattern_vars c.pc_lhs) (Val scrut_taint) env in
      Option.iter (fun g -> ignore (eval ctx emit env' g)) c.pc_guard;
      join acc (eval ctx emit env' c.pc_rhs))
    Local cases

(* A lambda in evaluation position: parameters carry [ptaint] (Local for
   a bare lambda, the source container's element taint when the lambda is
   an iteration callback). *)
and walk_lambda ctx emit env ptaint (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, default, pat, body) ->
      Option.iter (fun d -> ignore (eval ctx emit env d)) default;
      let env' = bind_all (Ast_scan.pattern_vars pat) (Val ptaint) env in
      walk_lambda ctx emit env' ptaint body
  | Pexp_newtype (_, body) -> walk_lambda ctx emit env ptaint body
  | Pexp_function cases -> eval_cases ctx emit env ptaint cases
  | _ -> eval ctx emit env e

(* What comes out of a container when it is read.  Free identifiers and
   foreign state pass the firewall; a tracked local store yields whatever
   was stored into it — the laundering channel. *)
and element_taint ctx emit env (c : Parsetree.expression) =
  match c.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match resolve env x with
      | Some (Store s) -> s.content
      | Some (Val t) -> if is_global t then Graph_global else join t Neighbor_label
      | Some (Fn sum) -> join sum.base Neighbor_label
      | None -> firewall_name x)
  | Pexp_field _ -> Neighbor_label
  | _ ->
      let t = eval ctx emit env c in
      if is_global t then Graph_global else join t Neighbor_label

(* An argument handed to a summarized/qualified call: free identifiers
   pass the firewall; literal lambdas run with their parameters bound to
   the co-arguments' element taint (iteration callbacks). *)
and eval_arg ctx emit env co_element (a : Parsetree.expression) =
  match a.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } when not (StrMap.mem x env) ->
      if is_pure_free x then Local else firewall_name x
  | Pexp_fun _ | Pexp_function _ -> walk_lambda ctx emit env co_element a
  | _ -> eval ctx emit env a

and eval_args ctx emit env args =
  let lambda (a : Parsetree.expression) =
    match a.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false
  in
  let co_element =
    joins
      (List.filter_map
         (fun (_, a) -> if lambda a then None else Some (element_taint ctx silent env a))
         args)
  in
  joins (List.map (fun (_, a) -> eval_arg ctx emit env co_element a) args)

and eval_apply ctx emit env e f args =
  match f.Parsetree.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match classify_access txt args with
      | Some (Read (c, i)) ->
          flag_if_global ctx emit env ~loc:e.Parsetree.pexp_loc i;
          element_taint ctx emit env c
      | Some (Write (c, i, x)) ->
          flag_if_global ctx emit env ~loc:e.Parsetree.pexp_loc i;
          let xt = eval ctx emit env x in
          store_into env c xt;
          Local
      | None -> (
          match txt with
          | Longident.Lident ":=" -> (
              match args with
              | [ (_, dst); (_, src) ] ->
                  let xt = eval ctx emit env src in
                  store_into env dst xt;
                  Local
              | _ -> eval_args ctx emit env args)
          | Longident.Lident x when is_pure_free x ->
              joins (List.map (fun (_, a) -> eval ctx emit env a) args)
          | Longident.Lident x -> (
              match resolve env x with
              | Some (Fn sum) ->
                  List.iter (fun (loc, msg) -> emit ~loc msg) sum.flags;
                  join sum.base (eval_args ctx emit env args)
              | Some (Val t) -> join t (joins (List.map (fun (_, a) -> eval ctx emit env a) args))
              | Some (Store s) ->
                  join s.content (joins (List.map (fun (_, a) -> eval ctx emit env a) args))
              | None ->
                  (* a free function applied: its result never passed
                     through the node's view, and we cannot see inside *)
                  List.iter (fun (_, a) -> ignore (eval ctx emit env a)) args;
                  Graph_global)
          | _ ->
              let base = qualified_base ctx txt in
              join base (eval_args ctx emit env args)))
  | _ -> join (eval ctx emit env f) (eval_args ctx emit env args)

and flag_if_global ctx emit env ~loc i =
  let it = eval ctx emit env i in
  if is_global it then
    emit ~loc
      (Printf.sprintf
         "container subscript is %s-tainted: a value that never passed through the node's own \
          view (own coins, own labels, neighbors' labels) flows into this index; decisions may \
          only address label/coin stores by the deciding node or a bound neighbor"
         (taint_name it))

and store_into env (dst : Parsetree.expression) xt =
  match dst.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match resolve env x with
      | Some (Store s) -> s.content <- join s.content xt
      | Some (Val _ | Fn _) | None -> ())
  | _ -> ()

and eval_let ctx emit env rf vbs =
  let pre_bound =
    match rf with
    | Asttypes.Nonrecursive -> env
    | Asttypes.Recursive ->
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            match vb.pvb_pat.ppat_desc with
            | Ppat_var { txt; _ } -> (
                match Typed_scan.peel_params vb.pvb_expr with
                | Some _ -> StrMap.add txt (Fn { base = Local; flags = [] }) acc
                | None -> StrMap.add txt (Val Local) acc)
            | _ -> acc)
          env vbs
  in
  List.fold_left
    (fun acc (vb : Parsetree.value_binding) -> classify_binding ctx emit pre_bound acc vb)
    env vbs

and classify_binding ctx emit env_rhs env_acc (vb : Parsetree.value_binding) =
  let var_name (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint ({ ppat_desc = Ppat_var { txt; _ }; _ }, _) -> Some txt
    | _ -> None
  in
  match var_name vb.pvb_pat with
  | Some name -> (
      match tracked_store ctx emit env_rhs vb with
      | Some s -> StrMap.add name (Store s) env_acc
      | None -> (
          match vb.pvb_expr.pexp_desc with
          | Pexp_ident { txt = Longident.Lident x; _ } when
              (match resolve env_rhs x with Some (Store _) -> true | _ -> false) -> (
              match resolve env_rhs x with
              | Some (Store s) -> StrMap.add name (Store s) env_acc
              | _ -> env_acc)
          | _ -> (
              match Typed_scan.peel_params vb.pvb_expr with
              | Some (params, body) ->
                  let sum = summarize ctx env_rhs ~self:name params body in
                  StrMap.add name (Fn sum) env_acc
              | None -> StrMap.add name (Val (eval ctx emit env_rhs vb.pvb_expr)) env_acc)))
  | None ->
      let t = eval ctx emit env_rhs vb.pvb_expr in
      bind_all (Ast_scan.pattern_vars vb.pvb_pat) (Val t) env_acc

(* A store cell is keyed by its binding site so that the two passes over a
   decision body (populate, then report) share contents — writes seen on
   the first pass are visible to reads that precede them textually. *)
and tracked_store ctx emit env (vb : Parsetree.value_binding) =
  let cell init =
    let loc = vb.pvb_pat.ppat_loc in
    match Hashtbl.find_opt ctx.stores loc with
    | Some s ->
        s.content <- join s.content init;
        Some s
    | None ->
        let s = { content = init } in
        Hashtbl.replace ctx.stores loc s;
        Some s
  in
  match vb.pvb_expr.pexp_desc with
  | Pexp_array elems -> cell (joins (List.map (eval ctx emit env) elems))
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Longident.Lident "ref"; _ }; _ }, [ (_, x) ])
    ->
      cell (eval ctx emit env x)
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match store_maker txt (List.map snd args) with
      | Some `Fresh -> cell Local
      | Some (`Value x) -> cell (eval ctx emit env x)
      | Some (`Elements c) -> cell (element_taint ctx emit env c)
      | Some (`Elements2 (a, b)) ->
          cell (join (element_taint ctx emit env a) (element_taint ctx emit env b))
      | Some (`Lambda (f, src)) ->
          let ptaint =
            match src with Some c -> element_taint ctx emit env c | None -> Local
          in
          cell (walk_lambda ctx emit env ptaint f)
      | None -> None)
  | _ -> None

(* ---- summaries --------------------------------------------------------- *)

and summarize ctx env ~self params body =
  let flags = ref [] in
  let collect ~loc msg = flags := (loc, msg) :: !flags in
  let env0 =
    StrMap.add self (Fn { base = Local; flags = [] }) (bind_all params (Val Local) env)
  in
  ignore (walk_lambda ctx silent env0 Local body);
  let base = walk_lambda ctx collect env0 Local body in
  let dedup =
    List.sort_uniq
      (fun (la, _) (lb, _) ->
        match Int.compare la.Location.loc_start.Lexing.pos_lnum lb.Location.loc_start.Lexing.pos_lnum with
        | 0 -> Int.compare la.Location.loc_start.Lexing.pos_cnum lb.Location.loc_start.Lexing.pos_cnum
        | c -> c)
      !flags
  in
  { base; flags = dedup }

(* Cross-module: base taint only, capped at Neighbor_label (a foreign
   module's free top-levels are its own state, not this function's outer
   scope), memoized with a Local placeholder as the recursion guard. *)
and qualified_base ctx txt =
  match (ctx.prog, Ast_scan.last_two txt) with
  | Some prog, Some (m, f) -> (
      let key = m ^ "." ^ f in
      match Hashtbl.find_opt ctx.xsums key with
      | Some t -> t
      | None -> (
          Hashtbl.replace ctx.xsums key Local;
          match Typed_scan.lookup prog ~modname:m ~name:f with
          | Some entry ->
              let sum = summarize ctx StrMap.empty ~self:f entry.params entry.body in
              let capped = if is_global sum.base then Neighbor_label else sum.base in
              Hashtbl.replace ctx.xsums key capped;
              capped
          | None -> Local))
  | (Some _ | None), _ -> Local

(* ---- the decision-function driver -------------------------------------- *)

let run_decision ctx findings env ?self params body =
  let env0 =
    let e = bind_all params (Val Local) env in
    match self with Some name -> StrMap.add name (Fn { base = Local; flags = [] }) e | None -> e
  in
  ignore (walk_lambda ctx silent env0 Local body);
  let emit ~loc msg = findings := Report.finding ~loc ~rule:rule_flow msg :: !findings in
  ignore (walk_lambda ctx emit env0 Local body)

let is_all_accept lid =
  match lid with
  | Longident.Lident "all_accept" -> true
  | _ -> ( match Ast_scan.last_two lid with Some (_, "all_accept") -> true | _ -> false)

(* The outer (non-decision) walk: threads function summaries through the
   nesting structure, fires the checker at every decision entry point —
   a binding named like a decision function, or a literal lambda handed
   to [Dip.all_accept] — and never reports anything on its own. *)
let rec outer_expr ctx findings env (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_let (rf, vbs, body) ->
      let env' = outer_bindings ctx findings env rf vbs in
      outer_expr ctx findings env' body
  | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as fh), args) when is_all_accept txt
    ->
      outer_expr ctx findings env fh;
      List.iter
        (fun ((_, a) : Asttypes.arg_label * Parsetree.expression) ->
          match a.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> (
              match Typed_scan.peel_params a with
              | Some (params, fbody) -> run_decision ctx findings env params fbody
              | None -> ())
          | _ -> outer_expr ctx findings env a)
        args
  | _ ->
      let it =
        { Ast_iterator.default_iterator with expr = (fun _ e' -> outer_expr ctx findings env e') }
      in
      Ast_iterator.default_iterator.expr it e

and outer_bindings ctx findings env rf vbs =
  let env_rhs =
    match rf with
    | Asttypes.Nonrecursive -> env
    | Asttypes.Recursive ->
        List.fold_left
          (fun acc (vb : Parsetree.value_binding) ->
            match (vb.pvb_pat.ppat_desc, Typed_scan.peel_params vb.pvb_expr) with
            | Ppat_var { txt; _ }, Some _ -> StrMap.add txt (Fn { base = Local; flags = [] }) acc
            | _, _ -> acc)
          env vbs
  in
  List.fold_left
    (fun acc (vb : Parsetree.value_binding) ->
      match (vb.pvb_pat.ppat_desc, Typed_scan.peel_params vb.pvb_expr) with
      | Ppat_var { txt = name; _ }, Some (params, fbody) ->
          let sum = summarize ctx env_rhs ~self:name params fbody in
          if Locality.is_decision_name name then
            run_decision ctx findings env_rhs ~self:name params fbody;
          outer_expr ctx findings env_rhs vb.pvb_expr;
          StrMap.add name (Fn sum) acc
      | _, _ ->
          outer_expr ctx findings env_rhs vb.pvb_expr;
          acc)
    env vbs

let rec outer_structure ctx findings env (structure : Parsetree.structure) =
  List.fold_left
    (fun env (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (rf, vbs) -> outer_bindings ctx findings env rf vbs
      | Pstr_eval (e, _) ->
          outer_expr ctx findings env e;
          env
      | Pstr_module mb ->
          outer_module ctx findings env mb.pmb_expr;
          env
      | Pstr_recmodule mbs ->
          List.iter (fun (mb : Parsetree.module_binding) -> outer_module ctx findings env mb.pmb_expr) mbs;
          env
      | _ -> env)
    env structure

and outer_module ctx findings env (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure items -> ignore (outer_structure ctx findings env items)
  | Pmod_constraint (m, _) | Pmod_functor (_, m) -> outer_module ctx findings env m
  | _ -> ()

let check ?program structure =
  let ctx = { prog = program; stores = Hashtbl.create 64; xsums = Hashtbl.create 64 } in
  let findings = ref [] in
  ignore (outer_structure ctx findings StrMap.empty structure);
  List.sort_uniq Report.compare !findings
