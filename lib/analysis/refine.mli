(** dipp-refine: a numeric refinement pass proving per-expression
    proof-size bounds at lint time.

    An interprocedural interval/affine abstract interpretation over the
    parsetree: every integer carries an interval of affine forms over
    the symbolic terms [loglog] ([ceil_log2 (ceil_log2 n)]), [log]
    ([ceil_log2 n]) and [logdelta] ([ceil_log2 (max 2 delta)]); every
    [Bits.t] carries an interval on its length.  Transfer functions
    cover the [Bits] constructors (including the [Writer] accumulator),
    [Array]/[List]/[String] combinators and integer arithmetic;
    let-bound and cross-module helpers (through {!Typed_scan}) are
    evaluated at their call sites so summaries are affine in the actual
    arguments, with recursion guards, loop widening and an evaluation
    fuel making the pass total.

    Trusted declared widths enter through annotation comments on the
    binding's (or call's) own line or the line above:

    {v (* dipp-refine: value <= 3*loglog + 6 *)
       (* dipp-refine: width <= 40*loglog + 40 *) v}

    Both assert the value (an int, resp. a [Bits.t] length or function
    result width) lies in [0, FORM]; FORM is a [+]-separated sum of
    [INT], [NAME] and [INT*NAME] atoms where NAME is [loglog], [log],
    [logdelta] or a parameter name of the annotated function.
    Annotations are the axioms of the analysis — [bench bounds] keeps
    them honest by reporting claim / inferred / measured side by side. *)

val rule_budget : string
(** ["refine-budget"]: in a module with a bounds-registry row
    (lib/protocols/bounds.ml), every [Dip.record_prover] site reachable
    from [run] must have a label-width upper bound provably within the
    declared envelope shape; unprovable or exceeding sites are
    per-expression findings naming the inferred interval.  Parallel
    sub-protocol composition sums remain a runtime check
    ({!Dip.check_budget}); the static rule bounds each phase's widest
    own label. *)

val rule_index : string
(** ["refine-index"]: array/string/[Bits] subscripts inside decision
    functions and [Dip.all_accept] callbacks are re-proved in bounds;
    provable violations are findings, proved-safe subscripts are
    collected in {!result.safe}.  [Bits.unsafe_sub] is gated everywhere:
    any call site the pass cannot prove in-range is a finding. *)

val rule_annotation : string
(** ["refine-annotation"]: a [dipp-refine:] comment that does not parse. *)

(** {2 Symbolic envelopes} *)

type envelope
(** An affine form over [loglog]/[log]/[logdelta] with an additive
    constant — the comparison domain of the pass. *)

val envelope : ?loglog:int -> ?log:int -> ?logdelta:int -> add:int -> unit -> envelope
(** Constructor for tests and callers outside the bounds registry. *)

val envelope_of_shape : Dipp_protocols.Bounds.shape -> envelope

val eval_form : envelope -> n:int -> delta:int -> int option
(** Numeric value at a concrete instance size; [None] if the form
    mentions a function-parameter term. *)

val pp_envelope : Format.formatter -> envelope -> unit

val form_leq : envelope -> envelope -> bool
(** Sound comparison: [form_leq f g] only when [f <= g] for every
    [n >= 1], [0 <= delta <= n] (uses [1 <= loglog <= log] and
    [1 <= logdelta <= log]). *)

(** {2 Annotations} *)

type annots

val no_annots : unit -> annots

val annotations_of_source : string -> annots
(** Scans source text for [(* dipp-refine: ... *)] comments. *)

val annotation_findings : filename:string -> annots -> Report.finding list
(** One [refine-annotation] finding per malformed comment. *)

(** {2 The pass} *)

type safe = {
  sfile : string;
  sline : int;  (** 1-based *)
  scol : int;  (** 0-based *)
  sdesc : string;  (** e.g. ["Array.get: index [0, n + -1] proved within [0, n)"] *)
}
(** A subscript or slice the pass proved in bounds ([--refine-safe]). *)

type result = {
  findings : Report.finding list;
  safe : safe list;
  label_lo : envelope option;
      (** lower bound on the widest own [record_prover] label *)
  label_hi : envelope option;
      (** upper bound on the widest own [record_prover] label — [None]
          when some site is unbounded; [bench bounds] evaluates this at
          the measured instance sizes as the "inferred" column *)
}

val analyze :
  ?program:Typed_scan.program ->
  ?annots:annots ->
  ?declared:envelope ->
  filename:string ->
  Parsetree.structure ->
  result
(** Runs the pass on one module.  [program] enables cross-module helper
    evaluation; [annots] should be [annotations_of_source] of the same
    file; [declared] switches on the [refine-budget] check against that
    envelope.  The pass is fail-open: an internal error yields an empty
    result rather than a crash. *)

val check :
  ?program:Typed_scan.program ->
  ?annots:annots ->
  ?declared:envelope ->
  filename:string ->
  Parsetree.structure ->
  Report.finding list
(** [(analyze ...).findings]. *)
