module StrSet = Set.Make (String)

let rule_traversal = "locality-traversal"
let rule_index = "locality-index"

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

let is_decision_name n =
  starts_with ~prefix:"decide" n || starts_with ~prefix:"verify" n || ends_with ~suffix:"_check" n

(* Global edge enumeration: the whole-graph escape hatches of the Graph
   API.  Qualified uses only — an unqualified [edges] is a local binding. *)
let is_global_traversal lid =
  match Ast_scan.last_two lid with
  | Some ("Graph", ("edges" | "fold_edges" | "iter_edges")) -> true
  | Some _ | None -> false

(* Label stores come in three shapes in this codebase: int-indexed arrays,
   packed [Bytes] buffers, and [Hashtbl]-backed sparse stores (edge maps,
   successor tables).  All of them take the container first and the
   index/key second, so one predicate covers the subscript audit. *)
let is_array_access lid =
  match Ast_scan.last_two lid with
  | Some ("Array", ("get" | "unsafe_get" | "set" | "unsafe_set"))
  | Some ("Bytes", ("get" | "unsafe_get" | "set" | "unsafe_set"))
  | Some ("String", ("get" | "unsafe_get"))
  | Some ("Hashtbl", ("find" | "find_opt" | "mem" | "replace" | "add")) ->
      true
  | Some _ | None -> false

(* Word-shaped infix operators parse as plain identifiers. *)
let word_operators =
  StrSet.of_list [ "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr"; "or"; "not" ]

(* Pure arithmetic helpers that cannot smuggle in non-local state. *)
let allowed_free = StrSet.of_list [ "min"; "max"; "abs"; "succ"; "pred"; "fst"; "snd" ]

let is_operator_name x =
  x <> ""
  && (StrSet.mem x word_operators
     || match x.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> false | _ -> true)

(* Offending identifiers in an index expression: anything free that is
   neither an operator, a whitelisted helper, nor module-qualified.
   Nested array reads are skipped here — the main walk visits them and
   checks their own subscripts. *)
let rec index_offenders env (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_constant _ | Pexp_construct (_, None) -> []
  | Pexp_ident { txt = Longident.Lident x; _ } ->
      if StrSet.mem x env || is_operator_name x || StrSet.mem x allowed_free then [] else [ x ]
  | Pexp_ident _ -> []
  | Pexp_field (base, _) -> index_offenders env base
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
      if is_array_access txt then []
      else
        let head =
          match txt with
          | Longident.Lident x
            when not
                   (StrSet.mem x env || is_operator_name x || StrSet.mem x allowed_free) ->
              [ x ]
          | _ -> []
        in
        head @ List.concat_map (fun (_, a) -> index_offenders env a) args
  | Pexp_tuple es -> List.concat_map (index_offenders env) es
  | Pexp_constraint (e', _) -> index_offenders env e'
  | Pexp_ifthenelse (c, t, f) ->
      index_offenders env c @ index_offenders env t
      @ (match f with Some f -> index_offenders env f | None -> [])
  | Pexp_match (scrut, cases) ->
      index_offenders env scrut
      @ List.concat_map
          (fun (c : Parsetree.case) ->
            index_offenders (StrSet.union env (StrSet.of_list (Ast_scan.pattern_vars c.pc_lhs))) c.pc_rhs)
          cases
  | _ -> [ "<complex index expression>" ]

(* Scoped walk of a decision-function body.  [env] holds every name bound
   inside the function (parameters included); anything else is outer
   state.  Constructs that do not bind values fall through to the default
   iterator with the same environment. *)
let walk_decision ~add body0 env0 =
  let rec walk env (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> if is_global_traversal txt then add ~loc rule_traversal
          (Printf.sprintf "global edge traversal `%s` inside a decision function; a node may only inspect its neighborhood (Graph.neighbors/degree/mem_edge)" (Ast_scan.ident_path txt))
    | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), ((_, _) :: (_, idx) :: _ as args))
      when is_array_access txt ->
        (match index_offenders env idx with
        | [] -> ()
        | offenders ->
            add ~loc:e.pexp_loc rule_index
              (Printf.sprintf
                 "container subscript reaches outside the node's local view (non-local: %s); index labels/coins by the decision node or a bound neighbor"
                 (String.concat ", " (List.sort_uniq String.compare offenders))));
        walk env f;
        List.iter (fun (_, a) -> walk env a) args
    | Pexp_let (rf, vbs, body) ->
        let bound =
          List.concat_map (fun (vb : Parsetree.value_binding) -> Ast_scan.pattern_vars vb.pvb_pat) vbs
        in
        let env' = StrSet.union env (StrSet.of_list bound) in
        let env_rhs = match rf with Asttypes.Recursive -> env' | Asttypes.Nonrecursive -> env in
        List.iter (fun (vb : Parsetree.value_binding) -> walk env_rhs vb.pvb_expr) vbs;
        walk env' body
    | Pexp_fun (_, default, pat, body) ->
        Option.iter (walk env) default;
        walk (StrSet.union env (StrSet.of_list (Ast_scan.pattern_vars pat))) body
    | Pexp_function cases -> walk_cases env cases
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        walk env scrut;
        walk_cases env cases
    | Pexp_for (pat, lo, hi, _, body) ->
        walk env lo;
        walk env hi;
        walk (StrSet.union env (StrSet.of_list (Ast_scan.pattern_vars pat))) body
    | _ ->
        let self = { Ast_iterator.default_iterator with expr = (fun _ e' -> walk env e') } in
        Ast_iterator.default_iterator.expr self e
  and walk_cases env cases =
    List.iter
      (fun (c : Parsetree.case) ->
        let env' = StrSet.union env (StrSet.of_list (Ast_scan.pattern_vars c.pc_lhs)) in
        Option.iter (walk env') c.pc_guard;
        walk env' c.pc_rhs)
      cases
  in
  walk env0 body0

(* Peels the parameter chain of a function binding; [None] when the
   binding is a plain value (those are covered by the enclosing scan). *)
let rec peel_params acc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (_, _, pat, body) -> peel_params (Ast_scan.pattern_vars pat @ acc) body
  | Pexp_newtype (_, body) -> peel_params acc body
  | Pexp_function _ -> Some (acc, e)
  | _ -> ( match acc with [] -> None | _ :: _ -> Some (acc, e))

let check structure =
  let findings = ref [] in
  let add ~loc rule msg = findings := Report.finding ~loc ~rule msg :: !findings in
  let iter =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self (vb : Parsetree.value_binding) ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } when is_decision_name name -> (
              match peel_params [] vb.pvb_expr with
              | Some (params, body) ->
                  walk_decision ~add body (StrSet.of_list (name :: params))
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  iter.structure iter structure;
  !findings
