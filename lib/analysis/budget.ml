(* The [budget] rule: static extraction of a protocol's interaction
   schedule — its Dip.record_prover / Dip.record_verifier call sequence
   along every execution path of [run], with sub-protocol [M.run] calls
   expanded through the whole-program index — checked against the
   declared-bounds registry (lib/protocols/bounds.ml). *)

type ph = P | V

type declared = { id : string; rounds : int; schedule : ph list }

let rule_budget = "budget"

let ph_name = function P -> "P" | V -> "V"

let render = function
  | [] -> "(no phases)"
  | phs -> String.concat "-" (List.map ph_name phs)

let ph_equal a b = match (a, b) with P, P | V, V -> true | P, V | V, P -> false

let rec sched_prefix a b =
  match (a, b) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: xs, y :: ys -> ph_equal x y && sched_prefix xs ys

let sched_equal a b = List.length a = List.length b && sched_prefix a b

(* ---- path algebra ----------------------------------------------------- *)

(* One event on an execution path: a phase recorded directly, or a
   sub-protocol run whose schedule merges in parallel. *)
type ev = Rec of ph | Sub of string

let compare_ev a b =
  match (a, b) with
  | Rec x, Rec y -> Int.compare (match x with P -> 0 | V -> 1) (match y with P -> 0 | V -> 1)
  | Rec _, Sub _ -> -1
  | Sub _, Rec _ -> 1
  | Sub x, Sub y -> String.compare x y

let rec compare_path a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare_ev x y in
      if c <> 0 then c else compare_path xs ys

(* Alternatives are capped: schedules are five events long, so 64 distinct
   paths already means the control flow is degenerate, not interesting. *)
let path_cap = 64

let dedupe ps =
  let ps = List.sort_uniq compare_path ps in
  List.filteri (fun i _ -> i < path_cap) ps

let one = [ [] ]
let seq a b = dedupe (List.concat_map (fun p -> List.map (fun q -> p @ q) b) a)
let union a b = dedupe (a @ b)

(* ---- event identification --------------------------------------------- *)

let record_kind lid =
  match Ast_scan.last_two lid with
  | Some ("Dip", "record_prover") -> Some P
  | Some ("Dip", "record_verifier") -> Some V
  | Some _ | None -> None

let sub_target lid =
  match Ast_scan.last_two lid with
  | Some (m, "run") when m <> "Dip" -> Some m
  | Some _ | None -> None

(* ---- the walker ------------------------------------------------------- *)

(* Names bound locally shadow top-level helpers; a let-bound function
   carries its body (and defining scope) so calls to it splice its paths. *)
type local = Opaque | Body of Parsetree.expression * (string * local) list

type state = {
  program : Typed_scan.program option;
  self : Typed_scan.program;
  self_mod : string;
  helpers : (string, ev list list) Hashtbl.t;  (* top-level fns, key "Mod.name" *)
  mods : (string, ph list option) Hashtbl.t;  (* expanded module schedules *)
  closures : (Location.t, unit) Hashtbl.t;  (* self-module lambdas/loops that record *)
}

let pattern_vars = Ast_scan.pattern_vars

let opaque locals names = List.fold_left (fun ls x -> (x, Opaque) :: ls) locals names

let rec paths st ~m locals (e : Parsetree.expression) : ev list list =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let argp =
        List.fold_left (fun acc (_, a) -> seq acc (paths st ~m locals a)) one args
      in
      match record_kind txt with
      | Some p -> seq argp [ [ Rec p ] ]
      | None -> (
          match sub_target txt with
          | Some sub -> seq argp [ [ Sub sub ] ]
          | None -> (
              match txt with
              | Longident.Lident f -> seq argp (call_paths st ~m locals f)
              | _ -> argp)))
  | Pexp_apply (f, args) ->
      List.fold_left (fun acc x -> seq acc (paths st ~m locals x)) one (f :: List.map snd args)
  | Pexp_sequence (a, b) -> seq (paths st ~m locals a) (paths st ~m locals b)
  | Pexp_let (rf, vbs, body) ->
      let names = List.concat_map (fun vb -> pattern_vars vb.Parsetree.pvb_pat) vbs in
      let shadowed = opaque locals names in
      let def_env = match rf with Asttypes.Recursive -> shadowed | Asttypes.Nonrecursive -> locals in
      (* non-function right-hand sides execute here, in order *)
      let defp =
        List.fold_left
          (fun acc vb ->
            match Typed_scan.peel_params vb.Parsetree.pvb_expr with
            | Some _ -> acc
            | None -> seq acc (paths st ~m def_env vb.Parsetree.pvb_expr))
          one vbs
      in
      let body_env =
        List.fold_left
          (fun ls vb ->
            match (vb.Parsetree.pvb_pat.ppat_desc, Typed_scan.peel_params vb.Parsetree.pvb_expr) with
            | Ppat_var { txt; _ }, Some (_, fbody) -> (txt, Body (fbody, def_env)) :: ls
            | _ -> ls)
          shadowed vbs
      in
      seq defp (paths st ~m body_env body)
  | Pexp_ifthenelse (c, t, f) ->
      seq (paths st ~m locals c)
        (union (paths st ~m locals t)
           (match f with Some f -> paths st ~m locals f | None -> one))
  | Pexp_match (s, cases) | Pexp_try (s, cases) ->
      seq (paths st ~m locals s)
        (List.fold_left
           (fun acc (c : Parsetree.case) ->
             let env = opaque locals (pattern_vars c.pc_lhs) in
             let p =
               match c.pc_guard with
               | Some g -> seq (paths st ~m env g) (paths st ~m env c.pc_rhs)
               | None -> paths st ~m env c.pc_rhs
             in
             union acc p)
           [] cases)
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> closure st ~m locals e
  | Pexp_while (c, b) -> seq (paths st ~m locals c) (loop st ~m locals b)
  | Pexp_for (p, lo, hi, _, b) ->
      let env = opaque locals (pattern_vars p) in
      seq (seq (paths st ~m locals lo) (paths st ~m locals hi)) (loop st ~m env b)
  | Pexp_constraint (a, _)
  | Pexp_coerce (a, _, _)
  | Pexp_open (_, a)
  | Pexp_assert a
  | Pexp_lazy a
  | Pexp_construct (_, Some a)
  | Pexp_variant (_, Some a)
  | Pexp_field (a, _)
  | Pexp_letmodule (_, _, a)
  | Pexp_letexception (_, a) ->
      paths st ~m locals a
  | Pexp_setfield (a, _, b) -> seq (paths st ~m locals a) (paths st ~m locals b)
  | Pexp_tuple es | Pexp_array es ->
      List.fold_left (fun acc x -> seq acc (paths st ~m locals x)) one es
  | Pexp_record (fs, base) ->
      let es = List.map snd fs @ (match base with Some b -> [ b ] | None -> []) in
      List.fold_left (fun acc x -> seq acc (paths st ~m locals x)) one es
  | _ -> one

(* A lambda's body runs zero or more times, at unknown call sites.  A
   phase recorded inside is therefore not a statically fixed schedule —
   that is its own finding.  A sub-protocol run inside is modeled as
   zero-or-once: parallel composition makes repetitions idempotent for
   the schedule (Dip.merge_parallel keeps the longest phase list). *)
and closure st ~m locals e =
  let rec inner locals (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_fun (_, default, pat, body) ->
        let dp = match default with Some d -> paths st ~m locals d | None -> one in
        seq dp (inner (opaque locals (pattern_vars pat)) body)
    | Pexp_newtype (_, body) -> inner locals body
    | Pexp_function cases ->
        List.fold_left
          (fun acc (c : Parsetree.case) ->
            union acc (paths st ~m (opaque locals (pattern_vars c.pc_lhs)) c.pc_rhs))
          [] cases
    | _ -> paths st ~m locals e
  in
  optionalize st ~m ~loc:e.pexp_loc (inner locals e)

and loop st ~m locals b = optionalize st ~m ~loc:b.Parsetree.pexp_loc (paths st ~m locals b)

and optionalize st ~m ~loc ps =
  let has_rec = List.exists (List.exists (function Rec _ -> true | Sub _ -> false)) ps in
  if has_rec && String.equal m st.self_mod then Hashtbl.replace st.closures loc ();
  let subs =
    List.concat_map (List.filter_map (function Sub s -> Some s | Rec _ -> None)) ps
    |> List.sort_uniq String.compare
  in
  match subs with [] -> one | _ -> [ []; List.map (fun s -> Sub s) subs ]

and call_paths st ~m locals f =
  match List.assoc_opt f locals with
  | Some Opaque -> one
  | Some (Body (b, env)) -> paths st ~m ((f, Opaque) :: env) b
  | None -> (
      let key = m ^ "." ^ f in
      match Hashtbl.find_opt st.helpers key with
      | Some ps -> ps
      | None ->
          Hashtbl.replace st.helpers key one;
          (* recursion guard *)
          let entry =
            if String.equal m st.self_mod then Typed_scan.lookup st.self ~modname:m ~name:f
            else Option.bind st.program (fun p -> Typed_scan.lookup p ~modname:m ~name:f)
          in
          let ps =
            match entry with
            | None -> one
            | Some (en : Typed_scan.entry) ->
                paths st ~m (opaque [ (f, Opaque) ] en.params) en.body
          in
          Hashtbl.replace st.helpers key ps;
          ps)

(* ---- schedule merging ------------------------------------------------- *)

let run_paths st m =
  let entry =
    if String.equal m st.self_mod then Typed_scan.lookup st.self ~modname:m ~name:"run"
    else Option.bind st.program (fun p -> Typed_scan.lookup p ~modname:m ~name:"run")
  in
  Option.map
    (fun (en : Typed_scan.entry) -> paths st ~m (opaque [ ("run", Opaque) ] en.params) en.body)
    entry

type merge_result =
  | Consistent of ph list * bool  (** merged schedule, [true] if an unresolved sub remains *)
  | Conflict of ph list * ph list

(* Parallel composition of the path's own phase sequence with every
   sub-protocol's expanded schedule: the longest wins, and every
   component must be a prefix of it (Dip.merge_parallel semantics). *)
let rec merge st path =
  let own = List.filter_map (function Rec p -> Some p | Sub _ -> None) path in
  let subs = List.filter_map (function Sub s -> Some s | Rec _ -> None) path in
  let resolved, unknown =
    List.fold_left
      (fun (rs, unk) s ->
        match module_schedule st s with Some sc -> (sc :: rs, unk) | None -> (rs, true))
      ([], false) subs
  in
  let comps = own :: resolved in
  let longest =
    List.fold_left (fun best c -> if List.length c > List.length best then c else best) [] comps
  in
  match List.find_opt (fun c -> not (sched_prefix c longest)) comps with
  | Some c -> Conflict (c, longest)
  | None -> Consistent (longest, unknown)

(* The honest full execution of a module: the longest fully resolved,
   internally consistent merged schedule over all paths of its [run]. *)
and module_schedule st m =
  match Hashtbl.find_opt st.mods m with
  | Some s -> s
  | None ->
      Hashtbl.replace st.mods m None;
      (* cycle guard: unknown *)
      let s =
        match run_paths st m with
        | None -> None
        | Some ps ->
            List.fold_left
              (fun best p ->
                match merge st p with
                | Consistent (sched, false) -> (
                    match best with
                    | Some b when List.length b >= List.length sched -> best
                    | _ -> Some sched)
                | Consistent (_, true) | Conflict _ -> best)
              None ps
      in
      Hashtbl.replace st.mods m s;
      s

(* ---- the check -------------------------------------------------------- *)

let run_binding_loc structure =
  List.find_map
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.find_map
            (fun (vb : Parsetree.value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var { txt = "run"; _ } -> Some vb.pvb_pat.ppat_loc
              | _ -> None)
            vbs
      | _ -> None)
    structure

let check_structure ?program ?declared ~require_declared ~modname structure =
  match run_binding_loc structure with
  | None -> []
  | Some loc -> (
      let st =
        {
          program;
          self = Typed_scan.of_structure ~modname structure;
          self_mod = modname;
          helpers = Hashtbl.create 16;
          mods = Hashtbl.create 8;
          closures = Hashtbl.create 4;
        }
      in
      match run_paths st modname with
      | None -> []
      | Some ps -> (
          let findings = ref [] in
          let add ~loc msg =
            findings := Report.finding ~loc ~rule:rule_budget msg :: !findings
          in
          let has_events =
            List.exists (function [] -> false | _ :: _ -> true) ps
            || Hashtbl.length st.closures > 0
          in
          match declared with
          | None ->
              if require_declared && has_events then
                [
                  Report.finding ~loc ~rule:rule_budget
                    "run records interaction phases but the module has no row in the \
                     declared-bounds registry; add one to lib/protocols/bounds.ml";
                ]
              else []
          | Some d ->
              Hashtbl.iter
                (fun cl () ->
                  add ~loc:cl
                    "phase recorded inside a closure or loop: the interaction schedule is \
                     not statically fixed; hoist Dip.record_prover/record_verifier to the \
                     top level of run")
                st.closures;
              if d.rounds <> List.length d.schedule then
                add ~loc
                  (Printf.sprintf
                     "declared rounds %d disagree with the declared schedule %s (registry \
                      row '%s' is self-inconsistent)"
                     d.rounds (render d.schedule) d.id);
              let any_unknown = ref false
              and exact = ref false
              and deviated = ref false
              and best = ref [] in
              List.iter
                (fun p ->
                  match merge st p with
                  | Conflict (a, b) ->
                      deviated := true;
                      add ~loc
                        (Printf.sprintf
                           "statically inconsistent parallel schedules on one execution \
                            path: %s is not a prefix of %s"
                           (render a) (render b))
                  | Consistent (sched, unknown) ->
                      if unknown then any_unknown := true;
                      if not (sched_prefix sched d.schedule) then begin
                        deviated := true;
                        add ~loc
                          (Printf.sprintf
                             "extracted schedule %s deviates from the declared %s \
                              (registry row '%s', %d rounds)"
                             (render sched) (render d.schedule) d.id d.rounds)
                      end
                      else begin
                        if List.length sched > List.length !best then best := sched;
                        if sched_equal sched d.schedule then exact := true
                      end)
                ps;
              if
                (not !exact) && (not !any_unknown) && (not !deviated)
                && Hashtbl.length st.closures = 0
              then
                add ~loc
                  (Printf.sprintf
                     "no execution path realizes the declared schedule %s (longest \
                      extracted: %s; registry row '%s')"
                     (render d.schedule) (render !best) d.id);
              List.sort_uniq Report.compare !findings))
