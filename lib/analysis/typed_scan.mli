(** A whole-program index of top-level function bindings, keyed
    ["Module.name"].  The flow analysis ({!Flow}) resolves qualified
    calls against it to pull in cross-module summaries; everything else
    about a program stays on the per-file AST.

    Module names follow dune's convention: the capitalized basename of
    the [.ml] file, so [lib/dip/dip.ml] indexes as ["Dip.record_prover"]
    etc. regardless of the wrapping library prefix. *)

type entry = {
  params : string list;  (** every parameter name, across the [fun] chain *)
  body : Parsetree.expression;  (** the body with parameters peeled *)
  file : string;
      (** source path the entry was indexed from ([""] when built from an
          in-memory structure) — the refinement pass reads width
          annotations from it *)
  line : int;  (** 1-based line of the binding's pattern *)
  orig : Parsetree.expression;
      (** the unpeeled binding expression, for passes that need the
          parameter labels {!peel_params} discards *)
}

type program

val module_name : string -> string
(** ["Lr_sorting"] for ["lib/protocols/lr_sorting.ml"]. *)

val peel_params : Parsetree.expression -> (string list * Parsetree.expression) option
(** Parameter chain of a function binding; [None] for a plain value.
    A [function] keyword body is returned unpeeled as the body. *)

val empty : unit -> program

val add_structure : ?file:string -> program -> modname:string -> Parsetree.structure -> unit
(** Indexes every top-level [Ppat_var] function binding of the structure.
    [file] (default [""]) is recorded on each entry. *)

val of_structure : ?file:string -> modname:string -> Parsetree.structure -> program

val lookup : program -> modname:string -> name:string -> entry option

val load_tree : string -> program
(** Parses and indexes every [.ml] under a directory root (skipping
    dotfiles and [_build]); files that fail to parse are skipped — the
    [parse-error] rule reports them separately. *)
