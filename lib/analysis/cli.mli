(** The dipp-lint command line.

    [bin/dipp_lint.ml] is a one-line wrapper over {!run}; keeping the
    argument parsing, renderer dispatch and exit-code contract here
    makes them testable in-process. *)

val run : ?out:Format.formatter -> ?err:Format.formatter -> string array -> int
(** [run argv] executes the linter ([argv.(0)] is the program name, as
    in [Sys.argv]) and returns the process exit code:

    - [0] — no findings (also [--list-rules], [--refine-safe],
      [--race-safe] and [--help]);
    - [1] — at least one finding survived filtering;
    - [2] — usage or I/O error (unknown option or rule id, missing
      path), reported on [err].

    Options: [--rules r1,r2] (filter), [--list-rules],
    [--refine-safe] (print the subscripts/slices the {!Refine} pass
    proved in bounds, one [file:line:col: [refine-safe] desc] line each,
    instead of findings), [--race-safe] (print the shared-state sites
    the {!Race} pass proved safe, one [file:line:col: [race-safe] proof]
    line each, instead of findings), [--format text|json|sarif]
    ({!Report.pp_report}, {!Report.pp_json}, {!Report.pp_sarif}).  Paths
    may be [.ml] files or directories (recursive); the default is
    [./lib]. *)
