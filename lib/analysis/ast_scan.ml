let parse_string ~filename src =
  let lexbuf = Lexing.from_string src in
  Location.init lexbuf filename;
  Parse.implementation lexbuf

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_string ~filename:path (really_input_string ic (in_channel_length ic)))

let rec ident_path = function
  | Longident.Lident s -> s
  | Longident.Ldot (p, s) -> ident_path p ^ "." ^ s
  | Longident.Lapply (a, b) -> ident_path a ^ "(" ^ ident_path b ^ ")"

let last_two = function
  | Longident.Ldot (Longident.Lident m, s) -> Some (m, s)
  | Longident.Ldot (Longident.Ldot (_, m), s) -> Some (m, s)
  | Longident.Lident _ | Longident.Ldot (Longident.Lapply _, _) | Longident.Lapply _ -> None

let pattern_vars p =
  let acc = ref [] in
  let iter =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self pat ->
          (match pat.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> acc := txt :: !acc
          | Parsetree.Ppat_alias (_, { txt; _ }) -> acc := txt :: !acc
          | _ -> ());
          Ast_iterator.default_iterator.pat self pat);
    }
  in
  iter.pat iter p;
  !acc

(* ---- suppressions ---------------------------------------------------- *)

type suppressions = (int, string list) Hashtbl.t

let marker = "dipp-lint:"

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let is_rule_char c = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

let rule_tokens rest =
  (* split on anything that cannot appear in a rule id; stops cleanly at "*)" *)
  let toks = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := Buffer.contents buf :: !toks;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_rule_char c then Buffer.add_char buf c else flush ()) rest;
  flush ();
  List.rev !toks

let suppressions_of_source src : suppressions =
  let tbl = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      match find_sub line marker with
      | None -> ()
      | Some j -> (
          let rest = String.sub line (j + String.length marker) (String.length line - j - String.length marker) in
          match rule_tokens rest with
          | "allow" :: (_ :: _ as rules) -> Hashtbl.replace tbl (i + 1) rules
          | _ -> ()))
    (String.split_on_char '\n' src);
  tbl

let suppressed tbl ~line ~rule =
  let covers l =
    match Hashtbl.find_opt tbl l with
    | Some rules -> List.mem rule rules || List.mem "all" rules
    | None -> false
  in
  covers line || covers (line - 1)

let suppression_entries tbl =
  Hashtbl.fold (fun line rules acc -> (line, rules) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
