type rule = { id : string; summary : string }

let rules =
  [
    {
      id = Locality.rule_traversal;
      summary =
        "decision functions must not enumerate global graph state (Graph.edges / fold_edges / \
         iter_edges); use the per-node neighbor API";
    };
    {
      id = Locality.rule_index;
      summary =
        "array subscripts inside decision functions must be built from locally bound node ids \
         (the decision node or a bound neighbor), not captured globals";
    };
    {
      id = Flow.rule_flow;
      summary =
        "typed information-flow locality: no GraphGlobal-tainted value may reach a container \
         subscript inside a decision function, even through local slots, helpers or closures";
    };
    {
      id = Budget.rule_budget;
      summary =
        "a protocol's statically extracted record_prover/record_verifier schedule (with \
         sub-protocol runs expanded) must realize exactly the rounds and phase order its \
         declared-bounds registry row claims";
    };
    {
      id = "rng";
      summary =
        "no direct Random.* use outside lib/util/rng.ml (draw through the seeded Rng), and no \
         module-level Rng streams (Domain-shared mutable state; derive per-trial streams inside \
         the worker)";
    };
    { id = "obj-magic"; summary = "no Obj.* unsafe casts" };
    {
      id = "poly-compare";
      summary =
        "no bare polymorphic compare, and no structural =/<> against list/record literals or on \
         Graph/Bits values; use typed comparisons (Int.compare, Graph.equal, Bits.equal) or a match";
    };
    {
      id = "partial";
      summary =
        "no unguarded partial stdlib calls (List.tl, List.combine, Option.get); destructure with \
         a pattern match";
    };
    {
      id = Refine.rule_budget;
      summary =
        "numeric refinement: every record_prover label width inferred by the interval/affine \
         pass must be provably within the declared proof-size envelope shape of the module's \
         bounds-registry row (per-expression findings name the inferred interval)";
    };
    {
      id = Refine.rule_index;
      summary =
        "numeric refinement: array/string/Bits subscripts in decision functions are re-proved \
         in bounds from inferred intervals, and every Bits.unsafe_sub call site must be \
         statically proved in range";
    };
    {
      id = Refine.rule_annotation;
      summary =
        "every (* dipp-refine: ... *) annotation must parse as `width <= FORM` or `value <= \
         FORM`; a malformed bound would silently assert nothing";
    };
    {
      id = Race.rule_shared;
      summary =
        "every mutable location domains can share (module-level, or captured by a closure \
         submitted to Pool.run/Pool.map/Domain.spawn) must be Atomic, accessed under one \
         consistent Mutex, or provably domain-local; trusted dipp-race annotations are \
         validated, not assumed";
    };
    {
      id = Race.rule_lock;
      summary =
        "exactly one guarding mutex per shared location, mutexes acquired in one global order \
         (no cycles, no re-entry), and no lock held across a Pool/Domain submission";
    };
    {
      id = Race.rule_determinism;
      summary =
        "shared accumulators mutated from pooled tasks only through the commutative/associative \
         Dip.merge_* algebra; order-dependent writes (list cons, Buffer.add_*, blind overwrites, \
         printing to a shared channel) are findings even under a lock";
    };
    {
      id = Race.rule_rng;
      summary =
        "an Rng stream captured by a pooled closure may only parent Rng.split/Rng.split_string \
         keyed by the task's own (seed, id, index); draws from a shared stream race on its state";
    };
    { id = "missing-mli"; summary = "every library module ships a .mli interface" };
    { id = "parse-error"; summary = "the file must parse with the project's compiler" };
    {
      id = "suppression";
      summary =
        "every token of a suppression (allow) comment must name a known rule id; a typo \
         would silently suppress nothing";
    };
  ]

(* ---- hygiene rules ---------------------------------------------------- *)

let rec path_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (p, _) | Longident.Lapply (p, _) -> path_head p

let is_partial_path lid =
  match Ast_scan.last_two lid with
  | Some ("List", ("tl" | "combine")) | Some ("Option", "get") -> true
  | Some _ -> false
  | None -> (match lid with Longident.Lident _ -> false | _ -> false)

let is_bare_compare lid =
  match lid with
  | Longident.Lident "compare" -> true
  | _ -> ( match Ast_scan.last_two lid with Some ("Stdlib", "compare") -> true | _ -> false)

(* Structural literals: comparing against these with polymorphic [=] is
   the [!rejecting = []] failure mode — a match (or List.is_empty) says
   the same thing totally and without structural comparison. *)
let is_structural_literal (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident ("[]" | "::"); _ }, _) -> true
  | Pexp_record _ -> true
  | _ -> false

(* Bits functions with scalar results are safe to compare with [=]. *)
let scalar_bits = [ "length"; "to_int"; "to_string"; "get"; "equal"; "compare"; "popcount" ]

let structural_head (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Ast_scan.last_two txt with
      | Some ("Graph", (("neighbors" | "edges") as f)) -> Some ("Graph." ^ f)
      | Some ("Bits", f) when not (List.mem f scalar_bits) -> Some ("Bits." ^ f)
      | Some _ | None -> None)
  | _ -> None

(* A module-level binding holding a live Rng stream is shared by every
   domain that touches the module: concurrent draws race on its mutable
   state and break the engine's determinism contract (ANALYSIS.md).
   Streams built inside a function body are per-call and sanctioned. *)
let rng_stream_ctor f =
  match f with "create" | "split" | "split_string" -> true | _ -> false

let toplevel_rng_findings structure =
  let findings = ref [] in
  let scan_binding (vb : Parsetree.value_binding) =
    let found = ref None in
    let expr self (e : Parsetree.expression) =
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ -> () (* per-call streams are fine *)
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _) ->
          (match Ast_scan.last_two txt with
          | Some ("Rng", f) when rng_stream_ctor f -> (
              match !found with None -> found := Some loc | Some _ -> ())
          | Some _ | None -> ());
          Ast_iterator.default_iterator.expr self e
      | _ -> Ast_iterator.default_iterator.expr self e
    in
    let iter = { Ast_iterator.default_iterator with expr } in
    iter.expr iter vb.pvb_expr;
    match !found with
    | Some loc ->
        findings :=
          Report.finding ~loc ~rule:"rng"
            "module-level Rng stream is Domain-shared mutable state; derive a per-trial stream \
             (Rng.split / Rng.split_string) inside the function that consumes it"
          :: !findings
    | None -> ()
  in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> List.iter scan_binding vbs
      | _ -> ())
    structure;
  !findings

let hygiene ~filename structure =
  let findings = ref [] in
  let add ~loc rule msg = findings := Report.finding ~loc ~rule msg :: !findings in
  let in_rng_module = Filename.basename filename = "rng.ml" in
  let check_ident ~loc txt =
    let path = Ast_scan.ident_path txt in
    if path_head txt = "Obj" then
      add ~loc "obj-magic" (Printf.sprintf "`%s` defeats the type system; model the data instead" path);
    if path_head txt = "Random" && not in_rng_module then
      add ~loc "rng"
        (Printf.sprintf
           "direct `%s` breaks seeded reproducibility; draw through Rng (lib/util/rng.ml)" path);
    if is_partial_path txt then
      add ~loc "partial"
        (Printf.sprintf "`%s` raises on the empty case; destructure with a pattern match" path);
    if is_bare_compare txt then
      add ~loc "poly-compare"
        "bare polymorphic `compare`; use a typed comparison (Int.compare, String.compare, a \
         record-aware comparator, ...)"
  in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> check_ident ~loc txt
    | Pexp_apply
        ( { pexp_desc = Pexp_ident { txt = Longident.Lident (("=" | "<>" | "==" | "!=") as op); _ }; _ },
          [ (_, a); (_, b) ] ) ->
        if is_structural_literal a || is_structural_literal b then
          add ~loc:e.pexp_loc "poly-compare"
            (Printf.sprintf
               "structural `%s` against a list/record literal; pattern-match (or List.is_empty) \
                instead" op)
        else (
          match (structural_head a, structural_head b) with
          | Some p, _ | _, Some p ->
              add ~loc:e.pexp_loc "poly-compare"
                (Printf.sprintf
                   "structural `%s` on the result of `%s`; use the module's own equality \
                    (Graph.equal, Bits.equal, ...)"
                   op p)
          | None, None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let iter = { Ast_iterator.default_iterator with expr } in
  iter.structure iter structure;
  !findings @ if in_rng_module then [] else toplevel_rng_findings structure

(* ---- entry points ----------------------------------------------------- *)

let parse_error_finding ~filename exn =
  let loc =
    match exn with
    | Syntaxerr.Error err -> Syntaxerr.location_of_error err
    | Lexer.Error (_, loc) -> loc
    | _ -> Location.in_file filename
  in
  Report.finding ~loc ~rule:"parse-error" (Printexc.to_string exn)

(* Budget pass context from the file's location: its registry row (keyed
   by module basename) and whether a row is mandatory (every recording
   protocol under lib/protocols or lib/baselines must declare bounds;
   lib/dip sub-protocols and test fixtures are exempt). *)
let budget_declared filename =
  let base = Filename.remove_extension (Filename.basename filename) in
  Option.map
    (fun (r : Dipp_protocols.Bounds.row) ->
      {
        Budget.id = r.id;
        rounds = r.rounds;
        schedule =
          List.map
            (function
              | Dipp_dip.Dip.Prover_phase -> Budget.P
              | Dipp_dip.Dip.Verifier_phase -> Budget.V)
            r.schedule;
      })
    (Dipp_protocols.Bounds.find base)

let budget_required filename =
  match Filename.basename (Filename.dirname filename) with
  | "protocols" | "baselines" -> true
  | _ -> false

(* The refine-budget envelope for a file: the symbolic shape of its
   registry row, if it has one. *)
let refine_declared filename =
  let base = Filename.remove_extension (Filename.basename filename) in
  Option.map
    (fun (r : Dipp_protocols.Bounds.row) -> Refine.envelope_of_shape r.shape)
    (Dipp_protocols.Bounds.find base)

let ast_findings ?program ~filename src =
  match Ast_scan.parse_string ~filename src with
  | structure ->
      let budget =
        Budget.check_structure ?program
          ?declared:(budget_declared filename)
          ~require_declared:(budget_required filename)
          ~modname:(Typed_scan.module_name filename) structure
      in
      let annots = Refine.annotations_of_source src in
      let refine =
        Refine.annotation_findings ~filename annots
        @ Refine.check ?program ~annots
            ?declared:(refine_declared filename)
            ~filename structure
      in
      let rannots = Race.annotations_of_source src in
      let race =
        Race.annotation_findings ~filename rannots
        @ Race.check ?program ~annots:rannots ~filename structure
      in
      Locality.check structure @ Flow.check ?program structure @ budget @ refine @ race
      @ hygiene ~filename structure
  | exception exn -> [ parse_error_finding ~filename exn ]

(* Applied after filtering, so a typo'd allow list cannot silence its
   own warning. *)
let validate_suppressions ~filename supp =
  let known = "all" :: List.map (fun r -> r.id) rules in
  List.concat_map
    (fun (line, tokens) ->
      List.filter_map
        (fun tok ->
          if List.exists (String.equal tok) known then None
          else
            Some
              {
                Report.file = filename;
                line;
                col = 0;
                rule = "suppression";
                msg =
                  Printf.sprintf
                    "allow comment names unknown rule `%s` and suppresses nothing (try \
                     --list-rules)"
                    tok;
              })
        tokens)
    (Ast_scan.suppression_entries supp)

let apply_suppressions ~filename supp findings =
  List.filter
    (fun (f : Report.finding) -> not (Ast_scan.suppressed supp ~line:f.line ~rule:f.rule))
    findings
  @ validate_suppressions ~filename supp

let lint_source ~filename src =
  apply_suppressions ~filename (Ast_scan.suppressions_of_source src) (ast_findings ~filename src)

let lint_source_in ~program ~filename src =
  apply_suppressions ~filename (Ast_scan.suppressions_of_source src)
    (ast_findings ~program ~filename src)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?(check_mli = true) ?program path =
  let src = read_file path in
  let supp = Ast_scan.suppressions_of_source src in
  let mli =
    if check_mli && Filename.check_suffix path ".ml" && not (Sys.file_exists (path ^ "i")) then
      [ { Report.file = path; line = 1; col = 0; rule = "missing-mli"; msg = "module has no .mli interface; write one to pin the public surface" } ]
    else []
  in
  apply_suppressions ~filename:path supp (mli @ ast_findings ?program ~filename:path src)

let lint_tree root =
  (* One whole-program pass first, so the flow analysis can resolve
     qualified calls across the tree's modules. *)
  let program = Typed_scan.load_tree root in
  let rec walk acc path =
    if Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name <> "_build")
      |> List.fold_left (fun acc name -> walk acc (Filename.concat path name)) acc
    else if Filename.check_suffix path ".ml" then List.rev_append (lint_file ~program path) acc
    else acc
  in
  List.rev (walk [] root)
