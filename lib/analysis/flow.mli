(** The [flow-locality] rule: typed information-flow locality proofs for
    decision functions.

    Where {!Locality} audits the *syntax* of each subscript, this module
    tracks the *provenance* of the values flowing into it, over the
    lattice

    {v Local < OwnCoin < NeighborLabel < GraphGlobal v}

    [Local] — node-local arithmetic (parameters, constants, loop
    counters); [OwnCoin] — read out of a coin/randomness store;
    [NeighborLabel] — read out of a label store addressed by the node or
    a bound neighbor; [GraphGlobal] — outer-scope state that never
    passed through the node's legal view.  A finding fires when a
    [GraphGlobal] value reaches a container subscript inside a decision
    function (a [decide*]/[verify*]/[*_check] binding, or a literal
    lambda handed to [Dip.all_accept]).

    The analysis is interprocedural: let-bound helpers get summaries
    (result taint plus latent findings replayed at call sites), and
    qualified calls resolve through a {!Typed_scan.program} when one is
    supplied.  In particular it closes the laundering hole the syntactic
    rule concedes (see ANALYSIS.md, documented approximations):

    {[
      let verify v =
        let slot = Array.make 1 0 in
        slot.(0) <- leftmost_node;          (* non-local id parked locally *)
        labels.(slot.(0)) = labels.(v)      (* flagged: GraphGlobal index *)
    ]} *)

val rule_flow : string
(** ["flow-locality"] *)

type taint = Local | Own_coin | Neighbor_label | Graph_global

val join : taint -> taint -> taint
(** Least upper bound in the provenance lattice. *)

val taint_name : taint -> string
(** The paper-facing spelling: ["Local"], ["OwnCoin"], ["NeighborLabel"],
    ["GraphGlobal"]. *)

val check : ?program:Typed_scan.program -> Parsetree.structure -> Report.finding list
(** Runs the analysis over one implementation.  [program] supplies
    cross-module summaries for qualified calls (base taint only, capped
    at [Neighbor_label]); without it qualified calls resolve to the
    taint of their arguments. *)
