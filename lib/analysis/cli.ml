(* The dipp-lint command line, as a library function so the exit-code
   contract and the renderers are testable without spawning a process. *)

let usage = "dipp_lint [options] [path ...]"

type format = Text | Json | Sarif

let renderer = function
  | Text -> Report.pp_report
  | Json -> Report.pp_json
  | Sarif -> Report.pp_sarif

let run ?(out = Format.std_formatter) ?(err = Format.err_formatter) argv =
  let paths = ref [] and selected = ref [] and list_rules = ref false in
  let format = ref Text in
  let spec =
    [
      ( "--rules",
        Arg.String (fun s -> selected := !selected @ String.split_on_char ',' s),
        "r1,r2 run only the named rules (default: all)" );
      ("--list-rules", Arg.Set list_rules, " print the known rules and exit");
      ( "--format",
        Arg.Symbol
          ( [ "text"; "json"; "sarif" ],
            fun s ->
              format :=
                match s with "json" -> Json | "sarif" -> Sarif | _ -> Text ),
        " output format (default: text)" );
    ]
  in
  match Arg.parse_argv ~current:(ref 0) argv spec (fun p -> paths := p :: !paths) usage with
  | exception Arg.Bad msg ->
      Format.fprintf err "%s@?" msg;
      2
  | exception Arg.Help msg ->
      Format.fprintf out "%s@?" msg;
      0
  | () -> (
      if !list_rules then begin
        List.iter
          (fun (r : Lint_rules.rule) -> Format.fprintf out "%-20s %s@." r.id r.summary)
          Lint_rules.rules;
        0
      end
      else
        let known = List.map (fun (r : Lint_rules.rule) -> r.id) Lint_rules.rules in
        match
          List.find_opt (fun r -> not (List.exists (String.equal r) known)) !selected
        with
        | Some bad ->
            Format.fprintf err "dipp_lint: unknown rule %s (try --list-rules)@." bad;
            2
        | None -> (
            let roots = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
            match List.find_opt (fun root -> not (Sys.file_exists root)) roots with
            | Some missing ->
                Format.fprintf err "dipp_lint: no such path %s@." missing;
                2
            | None -> (
                let findings =
                  List.concat_map
                    (fun root ->
                      if Sys.is_directory root then Lint_rules.lint_tree root
                      else Lint_rules.lint_file root)
                    roots
                in
                let findings =
                  match !selected with
                  | [] -> findings
                  | sel ->
                      List.filter
                        (fun (f : Report.finding) -> List.exists (String.equal f.rule) sel)
                        findings
                in
                Format.fprintf out "%a@?" (renderer !format) findings;
                match findings with [] -> 0 | _ :: _ -> 1)))
