(* The dipp-lint command line, as a library function so the exit-code
   contract and the renderers are testable without spawning a process. *)

let usage = "dipp_lint [options] [path ...]"

type format = Text | Json | Sarif

let renderer = function
  | Text -> Report.pp_report
  | Json -> Report.pp_json
  | Sarif -> Report.pp_sarif

(* The [--refine-safe] report: every subscript/slice the refinement pass
   proved in bounds, one `file:line:col: [refine-safe] desc` line each. *)
let rec ml_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name <> "_build")
    |> List.fold_left (fun acc name -> ml_files acc (Filename.concat path name)) acc
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let index_tree roots =
  let files = List.rev (List.fold_left ml_files [] roots) in
  let program = Typed_scan.empty () in
  List.iter
    (fun file ->
      match Ast_scan.parse_file file with
      | structure ->
          Typed_scan.add_structure ~file program ~modname:(Typed_scan.module_name file) structure
      | exception _ -> ())
    files;
  (files, program)

let print_safes out roots =
  let files, program = index_tree roots in
  let total = ref 0 in
  List.iter
    (fun file ->
      match Ast_scan.parse_file file with
      | exception _ -> ()
      | structure ->
          let annots = Refine.annotations_of_source (read_file file) in
          let result = Refine.analyze ~program ~annots ~filename:file structure in
          List.iter
            (fun (s : Refine.safe) ->
              incr total;
              Format.fprintf out "%s:%d:%d: [refine-safe] %s@." s.sfile s.sline s.scol s.sdesc)
            result.safe)
    files;
  Format.fprintf out "%d subscript(s) proved safe@." !total

(* The [--race-safe] report: every shared-state site the domain-safety
   pass proved (or trusts) safe, with its proof. *)
let print_race_safes out roots =
  let files, program = index_tree roots in
  let total = ref 0 in
  List.iter
    (fun file ->
      match Ast_scan.parse_file file with
      | exception _ -> ()
      | structure ->
          let annots = Race.annotations_of_source (read_file file) in
          let result = Race.analyze ~program ~annots ~filename:file structure in
          List.iter
            (fun (s : Race.safe) ->
              incr total;
              Format.fprintf out "%s:%d:%d: [race-safe] %s@." s.rfile s.rline s.rcol s.rdesc)
            result.safe)
    files;
  Format.fprintf out "%d shared-state site(s) proved safe@." !total

let run ?(out = Format.std_formatter) ?(err = Format.err_formatter) argv =
  let paths = ref [] and selected = ref [] and list_rules = ref false in
  let refine_safe = ref false and race_safe = ref false in
  let format = ref Text in
  let spec =
    [
      ( "--rules",
        Arg.String (fun s -> selected := !selected @ String.split_on_char ',' s),
        "r1,r2 run only the named rules (default: all)" );
      ("--list-rules", Arg.Set list_rules, " print the known rules and exit");
      ( "--refine-safe",
        Arg.Set refine_safe,
        " print the subscripts the refinement pass proved in bounds and exit" );
      ( "--race-safe",
        Arg.Set race_safe,
        " print the shared-state sites the domain-safety pass proved safe and exit" );
      ( "--format",
        Arg.Symbol
          ( [ "text"; "json"; "sarif" ],
            fun s ->
              format :=
                match s with "json" -> Json | "sarif" -> Sarif | _ -> Text ),
        " output format (default: text)" );
    ]
  in
  match Arg.parse_argv ~current:(ref 0) argv spec (fun p -> paths := p :: !paths) usage with
  | exception Arg.Bad msg ->
      Format.fprintf err "%s@?" msg;
      2
  | exception Arg.Help msg ->
      Format.fprintf out "%s@?" msg;
      0
  | () -> (
      if !list_rules then begin
        List.iter
          (fun (r : Lint_rules.rule) -> Format.fprintf out "%-20s %s@." r.id r.summary)
          Lint_rules.rules;
        0
      end
      else
        let known = List.map (fun (r : Lint_rules.rule) -> r.id) Lint_rules.rules in
        match
          List.find_opt (fun r -> not (List.exists (String.equal r) known)) !selected
        with
        | Some bad ->
            Format.fprintf err "dipp_lint: unknown rule %s (try --list-rules)@." bad;
            2
        | None -> (
            let roots = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
            match List.find_opt (fun root -> not (Sys.file_exists root)) roots with
            | Some missing ->
                Format.fprintf err "dipp_lint: no such path %s@." missing;
                2
            | None when !refine_safe ->
                print_safes out roots;
                0
            | None when !race_safe ->
                print_race_safes out roots;
                0
            | None -> (
                let findings =
                  List.concat_map
                    (fun root ->
                      if Sys.is_directory root then Lint_rules.lint_tree root
                      else Lint_rules.lint_file root)
                    roots
                in
                let findings =
                  match !selected with
                  | [] -> findings
                  | sel ->
                      List.filter
                        (fun (f : Report.finding) -> List.exists (String.equal f.rule) sel)
                        findings
                in
                Format.fprintf out "%a@?" (renderer !format) findings;
                match findings with [] -> 0 | _ :: _ -> 1)))
