type finding = { file : string; line : int; col : int; rule : string; msg : string }

let finding ~loc ~rule msg =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

let compare_findings a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with 0 -> String.compare a.rule b.rule | c -> c)
      | c -> c)
  | c -> c

let compare = compare_findings

let pp ppf f = Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

let pp_report ppf findings =
  let sorted = List.sort_uniq compare_findings findings in
  List.iter (Format.fprintf ppf "%a@." pp) sorted;
  match sorted with
  | [] -> Format.fprintf ppf "dipp-lint: no findings@."
  | _ :: _ -> Format.fprintf ppf "dipp-lint: %d finding(s)@." (List.length sorted)
