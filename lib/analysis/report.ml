type finding = { file : string; line : int; col : int; rule : string; msg : string }

let finding ~loc ~rule msg =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    msg;
  }

let compare_findings a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with 0 -> String.compare a.rule b.rule | c -> c)
      | c -> c)
  | c -> c

let compare = compare_findings

let pp ppf f = Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

let pp_report ppf findings =
  let sorted = List.sort_uniq compare_findings findings in
  List.iter (Format.fprintf ppf "%a@." pp) sorted;
  match sorted with
  | [] -> Format.fprintf ppf "dipp-lint: no findings@."
  | _ :: _ -> Format.fprintf ppf "dipp-lint: %d finding(s)@." (List.length sorted)

(* ---- machine-readable renderers --------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_json ppf findings =
  let sorted = List.sort_uniq compare_findings findings in
  Format.fprintf ppf "[";
  List.iteri
    (fun i f ->
      Format.fprintf ppf "%s@.  {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \"msg\": \"%s\"}"
        (if i = 0 then "" else ",")
        (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.msg))
    sorted;
  Format.fprintf ppf "%s]@." (match sorted with [] -> "" | _ :: _ -> "\n")

let pp_sarif ppf findings =
  let sorted = List.sort_uniq compare_findings findings in
  let rule_ids = List.sort_uniq String.compare (List.map (fun f -> f.rule) sorted) in
  Format.fprintf ppf
    "{@.  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",@.  \"version\": \
     \"2.1.0\",@.  \"runs\": [{@.    \"tool\": {\"driver\": {\"name\": \"dipp-lint\", \
     \"rules\": [";
  List.iteri
    (fun i id -> Format.fprintf ppf "%s{\"id\": \"%s\"}" (if i = 0 then "" else ", ") (json_escape id))
    rule_ids;
  Format.fprintf ppf "]}},@.    \"results\": [";
  List.iteri
    (fun i f ->
      Format.fprintf ppf
        "%s@.      {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \
         \"%s\"},@.       \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
         {\"uri\": \"%s\"},@.         \"region\": {\"startLine\": %d, \"startColumn\": \
         %d}}}]}"
        (if i = 0 then "" else ",")
        (json_escape f.rule) (json_escape f.msg) (json_escape f.file) (max 1 f.line) (f.col + 1))
    sorted;
  Format.fprintf ppf "%s]@.  }]@.}@." (match sorted with [] -> "" | _ :: _ -> "\n    ")
