(** The dipp-lint rule set and entry points.

    Rules (see ANALYSIS.md for the model-level rationale):
    - [locality-traversal], [locality-index] — the DIP locality audit
      ({!Locality});
    - [flow-locality] — the typed information-flow locality audit
      ({!Flow}): no GraphGlobal-tainted value may reach a container
      subscript inside a decision function, even when laundered through
      local slots, helper functions or closures;
    - [budget] — static round/bit-budget verification ({!Budget}): a
      protocol's extracted [record_prover]/[record_verifier] schedule,
      with sub-protocol runs expanded, must realize exactly the rounds
      and phase order declared in the bounds registry
      ([lib/protocols/bounds.ml]);
    - [refine-budget], [refine-index], [refine-annotation] — the numeric
      refinement pass ({!Refine}): an interval/affine abstract
      interpretation proves every [Dip.record_prover] label width is
      within the declared proof-size envelope shape of the module's
      bounds-registry row, re-proves subscripts in decision functions,
      gates [Bits.unsafe_sub] on a static in-range proof, and rejects
      malformed [(* dipp-refine: ... *)] annotations;
    - [rng] — randomness only through [Rng] ([lib/util/rng.ml]); direct
      [Random.*] calls break seeded reproducibility of soundness-error
      estimates;
    - [obj-magic] — no [Obj.magic] (or any [Obj.*] cast);
    - [poly-compare] — no bare polymorphic [compare], and no structural
      [=]/[<>] on a dereferenced ref or on [Graph.*]/[Bits.*] values that
      carry structure (use [Graph.equal], [Bits.equal] or a match);
    - [partial] — no unguarded partial stdlib calls ([List.tl],
      [List.combine], [Option.get]); destructure with a pattern match
      instead;
    - [missing-mli] — every library module ships an interface;
    - [parse-error] — the file does not parse (reported as a finding so
      a broken tree fails the lint gate rather than crashing it);
    - [suppression] — every token of an [allow] comment must name a
      known rule (or [all]); a typo'd id would silently suppress
      nothing, so it is reported (and cannot itself be suppressed).

    Suppression: [(* dipp-lint: allow <rule> [<rule> ...] *)] on the
    finding's line or the line above ([allow all] covers every rule). *)

type rule = { id : string; summary : string }

val rules : rule list
(** Every rule this linter knows, for [--list-rules] and the docs. *)

val lint_source : filename:string -> string -> Report.finding list
(** Parses and lints one implementation given as a string; suppressions
    are applied.  The [missing-mli] check needs a filesystem context and
    is not run here; the flow analysis runs without cross-module
    summaries. *)

val lint_source_in : program:Typed_scan.program -> filename:string -> string -> Report.finding list
(** [lint_source] with a whole-program index for the flow analysis's
    cross-module summaries. *)

val lint_file : ?check_mli:bool -> ?program:Typed_scan.program -> string -> Report.finding list
(** Lints a file on disk.  With [check_mli] (default [true]) a missing
    sibling [.mli] is reported at line 1 (suppressible by an [allow]
    comment on the first line). *)

val lint_tree : string -> Report.finding list
(** Recursively lints every [.ml] under a directory root, sharing one
    whole-program index across the files. *)
